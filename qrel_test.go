package qrel_test

import (
	"bytes"
	"context"
	"math/big"
	"strings"
	"testing"

	"qrel"
)

func exampleDB(t *testing.T) *qrel.DB {
	t.Helper()
	voc := qrel.MustVocabulary(
		qrel.RelSym{Name: "E", Arity: 2},
		qrel.RelSym{Name: "S", Arity: 1},
	)
	s := qrel.MustStructure(4, voc)
	s.MustAdd("E", 0, 1)
	s.MustAdd("E", 1, 2)
	s.MustAdd("S", 0)
	db := qrel.NewDB(s)
	db.MustSetError(qrel.GroundAtom{Rel: "S", Args: qrel.Tuple{0}}, big.NewRat(1, 10))
	db.MustSetError(qrel.GroundAtom{Rel: "E", Args: qrel.Tuple{1, 2}}, big.NewRat(1, 4))
	return db
}

func TestFacadeEndToEnd(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists x y . E(x,y) & S(x)", nil)
	if got := qrel.Classify(q); got != qrel.ClassConjunctive {
		t.Errorf("Classify = %v", got)
	}
	res, err := qrel.Reliability(context.Background(), db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != qrel.Exact {
		t.Errorf("guarantee %v", res.Guarantee)
	}
	// Hand computation: the query holds iff S(0) (then E(0,1) works —
	// certain) or ... E(1,2)&S(1): S(1) certainly false. So nu = 9/10,
	// observed true, H = 1/10, R = 9/10.
	if res.H.Cmp(big.NewRat(1, 10)) != 0 {
		t.Errorf("H = %v, want 1/10", res.H)
	}
	if res.R.Cmp(big.NewRat(9, 10)) != 0 {
		t.Errorf("R = %v, want 9/10", res.R)
	}
}

func TestFacadeEngineSelection(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists x y . E(x,y) & S(x)", nil)
	exact, err := qrel.ReliabilityWith(context.Background(), qrel.EngineWorldEnum, db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bddRes, err := qrel.ReliabilityWith(context.Background(), qrel.EngineLineageBDD, db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.H.Cmp(bddRes.H) != 0 {
		t.Error("engines disagree")
	}
}

func TestFacadePerTupleAndAbsolute(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists y . E(x,y)", nil)
	per, err := qrel.ExpectedErrorPerTuple(db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("%d tuples", len(per))
	}
	abs, err := qrel.AbsoluteReliability(db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if abs.Reliable {
		t.Error("E(1,2) uncertainty should break absolute reliability of ∃y E(x,y)")
	}
}

func TestFacadeCodecRoundTrip(t *testing.T) {
	db := exampleDB(t)
	var buf bytes.Buffer
	if err := qrel.WriteDB(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := qrel.ParseDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.A.Equal(db.A) {
		t.Error("codec round trip changed database")
	}
}

func TestFacadeAnswer(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists y . E(x,y)", nil)
	ans, err := qrel.Answer(db.A, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Errorf("answer %v", ans)
	}
}

func TestFacadeSensitivityAndModality(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists x y . E(x,y) & S(x)", nil)
	ranked, err := qrel.RankSensitivities(db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked %d atoms", len(ranked))
	}
	one, err := qrel.AtomSensitivity(db, q, ranked[0].Atom, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Spread.Cmp(ranked[0].Spread) != 0 {
		t.Error("single-atom sensitivity differs from ranking")
	}
	am, err := qrel.PossibleCertainAnswers(db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Possible) < len(am.Certain) {
		t.Error("possible smaller than certain")
	}
}

func TestFacadeRareEngine(t *testing.T) {
	db := exampleDB(t)
	q := qrel.MustParseQuery("exists x y . E(x,y) & S(x)", nil)
	exact, err := qrel.ReliabilityWith(context.Background(), qrel.EngineWorldEnum, db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rare, err := qrel.ReliabilityWith(context.Background(), qrel.EngineMCRare, db, q, qrel.Options{Eps: 0.02, Delta: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d := rare.RFloat - exact.RFloat; d > 0.02 || d < -0.02 {
		t.Errorf("rare engine %v, exact %v", rare.RFloat, exact.RFloat)
	}
	safe, err := qrel.ReliabilityWith(context.Background(), qrel.EngineSafePlan, db, q, qrel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if safe.H.Cmp(exact.H) != 0 {
		t.Error("safe plan disagrees with enumeration")
	}
}
