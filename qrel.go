// Package qrel computes the reliability of database queries on
// unreliable databases, implementing the PODS 1998 paper "The
// Complexity of Query Reliability" by Grädel, Gurevich and Hirsch.
//
// An unreliable database D = (A, mu) is an observed finite relational
// database A together with an error probability mu(Rā) for each ground
// fact. D induces a probability space over possible "actual" databases
// B; the reliability of a k-ary query psi is
//
//	R_psi(D) = 1 − H_psi(D) / n^k,
//
// where H_psi(D) is the expected Hamming distance between the query
// answer on the observed and the actual database.
//
// The package exposes one engine per complexity result in the paper —
// exact polynomial-time computation for quantifier-free queries
// (Proposition 3.1), exact exponential world enumeration for arbitrary
// queries (Theorem 4.2), exact BDD-based and FPTRAS Karp–Luby lineage
// evaluation for existential/universal queries (Theorems 5.2–5.4,
// Corollary 5.5), and absolute-error Monte Carlo for every
// polynomial-time query (Theorem 5.12) — plus a dispatcher that picks
// the cheapest sound engine for the query's fragment.
//
// Quick start:
//
//	voc := qrel.MustVocabulary(qrel.RelSym{Name: "E", Arity: 2})
//	s := qrel.MustStructure(4, voc)
//	s.MustAdd("E", 0, 1)
//	db := qrel.NewDB(s)
//	db.MustSetError(qrel.GroundAtom{Rel: "E", Args: qrel.Tuple{0, 1}}, big.NewRat(1, 10))
//	q := qrel.MustParseQuery("exists x y . E(x,y)", voc)
//	res, err := qrel.Reliability(context.Background(), db, q, qrel.Options{})
//	// res.R is exact when res.Guarantee == qrel.Exact.
//
// The subpackages under internal/ contain the substrates (relational
// structures, propositional counting, BDDs, the Karp–Luby algorithms,
// the hardness reductions of Proposition 3.2 and Lemma 5.9, and the
// Section 6 metafinite model); this package is the stable surface.
package qrel

import (
	"context"
	"io"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/store"
	"qrel/internal/unreliable"
)

// Relational substrate.
type (
	// RelSym is a relation symbol (name and arity).
	RelSym = rel.RelSym
	// Vocabulary is a finite list of relation symbols and constants.
	Vocabulary = rel.Vocabulary
	// Structure is a finite relational database.
	Structure = rel.Structure
	// Tuple is a tuple of universe elements.
	Tuple = rel.Tuple
	// GroundAtom is a ground fact R(ā).
	GroundAtom = rel.GroundAtom
)

// Unreliable databases.
type (
	// DB is an unreliable database (A, mu).
	DB = unreliable.DB
)

// Queries.
type (
	// Query is a parsed first- or second-order query.
	Query = logic.Formula
	// Class is the query-language classification of the paper.
	Class = logic.Class
)

// Reliability computation.
type (
	// Options configures the engines.
	Options = core.Options
	// Result is the outcome of a reliability computation.
	Result = core.Result
	// Guarantee describes a result's error semantics.
	Guarantee = core.Guarantee
	// Engine selects a specific engine in ReliabilityWith.
	Engine = core.Engine
	// TupleError is a per-answer-tuple expected error.
	TupleError = core.TupleError
	// AbsoluteResult is the outcome of an absolute-reliability decision.
	AbsoluteResult = core.AbsoluteResult
	// Budget bounds the resources one computation may consume.
	Budget = core.Budget
	// FallbackStep is one abandoned rung of the degradation ladder.
	FallbackStep = core.FallbackStep
)

// Runtime error taxonomy: every error leaving Reliability or
// ReliabilityWith matches (errors.Is) exactly one of these sentinels or
// is an input-validation error.
var (
	// ErrCanceled: the context was canceled or a deadline passed.
	ErrCanceled = core.ErrCanceled
	// ErrBudgetExceeded: a resource budget was exhausted.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrInfeasible: no engine covers the query's fragment at this size.
	ErrInfeasible = core.ErrInfeasible
	// ErrEngineFailed: an engine crashed and was contained.
	ErrEngineFailed = core.ErrEngineFailed
	// ErrCorruptCheckpoint: every snapshot in a checkpoint store failed
	// its integrity check (torn write, bit rot, or truncation).
	ErrCorruptCheckpoint = checkpoint.ErrCorruptCheckpoint
	// ErrCheckpointMismatch: a checkpoint was taken by a different
	// computation (engine, seed, accuracy, or query differ) and resuming
	// from it would be statistically meaningless.
	ErrCheckpointMismatch = core.ErrCheckpointMismatch
)

// Checkpoint & resume: attach a CheckpointConfig to Options.Checkpoint
// and a Monte Carlo engine periodically snapshots its estimator state —
// sample counts plus the PRNG stream position — into the store. A run
// resumed from the store consumes exactly the remaining portion of the
// original sample stream, so for a fixed Options.Seed the resumed
// result is bit-identical to one that was never interrupted.
type (
	// CheckpointStore is a crash-safe snapshot store: atomic
	// write-temp+fsync+rename commits, CRC-verified loads, keep-last-N
	// retention.
	CheckpointStore = checkpoint.Store
	// CheckpointOptions configures a CheckpointStore.
	CheckpointOptions = checkpoint.Options
	// CheckpointConfig attaches a store to one computation via
	// Options.Checkpoint.
	CheckpointConfig = core.CheckpointConfig
)

// OpenCheckpointStore opens (creating the directory if needed) a
// crash-safe snapshot store.
func OpenCheckpointStore(dir string, opts CheckpointOptions) (*CheckpointStore, error) {
	return checkpoint.Open(dir, opts)
}

// Guarantee levels.
const (
	Exact         = core.Exact
	RelativeError = core.RelativeError
	AbsoluteError = core.AbsoluteError
)

// Engine names for ReliabilityWith.
const (
	EngineAuto        = core.EngineAuto
	EngineQFree       = core.EngineQFree
	EngineWorldEnum   = core.EngineWorldEnum
	EngineLineageBDD  = core.EngineLineageBDD
	EngineLineageKL   = core.EngineLineageKL
	EngineLineageKL53 = core.EngineLineageKL53
	EngineMonteCarlo  = core.EngineMonteCarlo
	EngineMCDirect    = core.EngineMCDirect
	EngineSafePlan    = core.EngineSafePlan
	EngineMCRare      = core.EngineMCRare
)

// Evaluation modes of the sampling engines (Options.Eval,
// Result.EvalMode). Compiled evaluation is bit-identical to the
// interpreter — same estimates, checkpoints, and lane digests for a
// fixed seed — so the mode is purely a throughput knob.
const (
	EvalAuto        = core.EvalAuto
	EvalCompiled    = core.EvalCompiled
	EvalInterpreted = core.EvalInterpreted
)

// KnownEvalMode reports whether m names an evaluation mode (the empty
// string reads as EvalAuto).
func KnownEvalMode(m string) bool { return core.KnownEvalMode(m) }

// Query classes.
const (
	ClassQuantifierFree = logic.ClassQuantifierFree
	ClassConjunctive    = logic.ClassConjunctive
	ClassExistential    = logic.ClassExistential
	ClassUniversal      = logic.ClassUniversal
	ClassFirstOrder     = logic.ClassFirstOrder
	ClassSecondOrder    = logic.ClassSecondOrder
)

// NewVocabulary builds a vocabulary from relation symbols.
func NewVocabulary(rels ...RelSym) (*Vocabulary, error) { return rel.NewVocabulary(rels...) }

// MustVocabulary is NewVocabulary that panics on error.
func MustVocabulary(rels ...RelSym) *Vocabulary { return rel.MustVocabulary(rels...) }

// NewStructure creates a structure with universe {0..n-1}.
func NewStructure(n int, voc *Vocabulary) (*Structure, error) { return rel.NewStructure(n, voc) }

// MustStructure is NewStructure that panics on error.
func MustStructure(n int, voc *Vocabulary) *Structure { return rel.MustStructure(n, voc) }

// NewDB wraps an observed database with zero error probabilities.
func NewDB(s *Structure) *DB { return unreliable.New(s) }

// ParseDB reads an unreliable database in the qrel text format.
func ParseDB(r io.Reader) (*DB, error) { return unreliable.ParseDB(r) }

// WriteDB writes an unreliable database in the qrel text format.
func WriteDB(w io.Writer, db *DB) error { return unreliable.WriteDB(w, db) }

// ParseQuery parses a query; identifiers matching a constant of voc
// parse as constants (voc may be nil).
func ParseQuery(src string, voc *Vocabulary) (Query, error) { return logic.Parse(src, voc) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string, voc *Vocabulary) Query { return logic.MustParse(src, voc) }

// Classify returns the most restricted syntactic class containing q.
func Classify(q Query) Class { return logic.Classify(q) }

// KnownEngine reports whether e names a selectable engine (EngineAuto
// and the empty string included).
func KnownEngine(e Engine) bool { return core.KnownEngine(e) }

// Reliability computes the reliability of q on db with the dispatcher
// described in the package documentation. The computation honors ctx
// and opts.Budget: cancellation and budget exhaustion surface as
// ErrCanceled/ErrBudgetExceeded, anytime Monte Carlo engines instead
// return a partial Result with Degraded set and an honestly widened
// Eps, and engines that fail mid-ladder are recorded in
// Result.FallbackTrail.
func Reliability(ctx context.Context, db *DB, q Query, opts Options) (Result, error) {
	return core.Reliability(ctx, db, q, opts)
}

// ReliabilityWith runs a specific engine.
func ReliabilityWith(ctx context.Context, engine Engine, db *DB, q Query, opts Options) (Result, error) {
	return core.ReliabilityWith(ctx, engine, db, q, opts)
}

// ExpectedErrorPerTuple computes the exact expected error of every
// answer tuple by world enumeration.
func ExpectedErrorPerTuple(db *DB, q Query, opts Options) ([]TupleError, error) {
	return core.ExpectedErrorPerTuple(db, q, opts)
}

// AbsoluteReliability decides whether R_q(db) = 1 (Definition 5.6).
func AbsoluteReliability(db *DB, q Query, opts Options) (AbsoluteResult, error) {
	return core.AbsoluteReliability(db, q, opts)
}

// Answer evaluates q on a concrete database, returning the satisfying
// tuples over the free variables.
func Answer(s *Structure, q Query) ([]Tuple, error) { return logic.Answer(s, q) }

// Sensitivity analysis.
type (
	// Sensitivity reports how one uncertain atom drives a query's risk.
	Sensitivity = core.Sensitivity
)

// AtomSensitivity computes the conditional expected errors of a query
// given each truth value of one uncertain atom.
func AtomSensitivity(db *DB, q Query, atom GroundAtom, opts Options) (Sensitivity, error) {
	return core.AtomSensitivity(db, q, atom, opts)
}

// RankSensitivities ranks all uncertain atoms by how strongly they
// drive the query's expected error (decreasing spread).
func RankSensitivities(db *DB, q Query, opts Options) ([]Sensitivity, error) {
	return core.RankSensitivities(db, q, opts)
}

// AnswerModality holds the certain and possible answers of a query.
type AnswerModality = core.AnswerModality

// PossibleCertainAnswers computes the certain answers (in every world)
// and possible answers (in some world) of q on db by world enumeration.
func PossibleCertainAnswers(db *DB, q Query, opts Options) (AnswerModality, error) {
	return core.PossibleCertainAnswers(db, q, opts)
}

// Paged storage engine: crash-safe heap files with checksummed pages,
// a budgeted buffer pool, and open-time journal recovery.
type (
	// Store is an open paged database file plus its intent journal.
	Store = store.Store
	// StoreOptions configures page size and buffer-pool budget.
	StoreOptions = store.Options
	// StoreVerifyStats summarises a full-file verification pass.
	StoreVerifyStats = store.VerifyStats
)

// ErrCorruptPage is returned (wrapped) whenever a page fails its
// checksum or structural validation; detect it with errors.Is.
var ErrCorruptPage = store.ErrCorruptPage

// CreateStore writes a new empty store file for the vocabulary and
// universe of a.
func CreateStore(path string, a *Structure, opts StoreOptions) (*Store, error) {
	return store.Create(path, a, opts)
}

// OpenStore opens an existing store file, first recovering its
// journal: complete commit records are replayed, torn tails rolled
// back, so a crash at any byte offset leaves a consistent database.
func OpenStore(path string, opts StoreOptions) (*Store, error) {
	return store.Open(path, opts)
}

// BuildStore ingests an unreliable database into a new store file,
// committing every batch tuples (0 = one final commit). A database
// reloaded from the store is bit-identical input to every engine.
func BuildStore(path string, db *DB, opts StoreOptions, batch int) error {
	return store.BuildFromDB(path, db, opts, batch, nil)
}
