// Benchmarks: one family per experiment of EXPERIMENTS.md (E1..E12).
// `go test -bench=. -benchmem` produces the timing series; the
// cmd/benchrel harness produces the corresponding correctness tables.
package qrel_test

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"path/filepath"
	"testing"

	"qrel/internal/bdd"
	"qrel/internal/core"
	"qrel/internal/datalog"
	"qrel/internal/karpluby"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/metafinite"
	"qrel/internal/ra"
	"qrel/internal/reductions"
	"qrel/internal/rel"
	"qrel/internal/sharpp"
	"qrel/internal/store"
	"qrel/internal/unreliable"
	"qrel/internal/vm"
	"qrel/internal/workload"
)

const benchSeed = 1998

// BenchmarkE1QuantifierFree measures Proposition 3.1's polynomial
// algorithm across universe sizes: the series must grow polynomially
// (≈ n^k per-tuple work).
func BenchmarkE1QuantifierFree(b *testing.B) {
	f := logic.MustParse("E(x,y) & (S(x) | S(y))", nil)
	for _, n := range []int{8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(benchSeed + int64(n)))
		db := workload.AddUncertainty(rng, workload.RandomStructure(rng, n, 0.2, 0.5), n/2, 10)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.QuantifierFree(context.Background(), db, f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2ConjunctiveExact measures the exact engines on the
// Proposition 3.2 reduction: world enumeration doubles per variable
// (the #P-hardness made visible) while the lineage BDD tracks the
// instance structure.
func BenchmarkE2ConjunctiveExact(b *testing.B) {
	for _, n := range []int{6, 8, 10, 12} {
		rng := rand.New(rand.NewSource(benchSeed))
		c := reductions.RandomMonotone2CNF(rng, n, n+n/2)
		inst, err := reductions.BuildMon2SatInstance(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("world-enum/vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.WorldEnum(context.Background(), inst.DB, inst.Query, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lineage-bdd/vars=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LineageBDD(context.Background(), inst.DB, inst.Query, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Oracle measures the Theorem 4.2 #P-oracle simulation as
// the number of uncertain atoms grows (2^u leaves).
func BenchmarkE3Oracle(b *testing.B) {
	query := logic.MustParse("forall x . exists y . E(x,y) | S(x)", nil)
	pred := func(s *rel.Structure) (bool, error) { return logic.EvalSentence(s, query) }
	for _, u := range []int{4, 8, 12} {
		rng := rand.New(rand.NewSource(benchSeed + int64(u)))
		db := workload.RandomUDB(rng, 4, u)
		b.Run(fmt.Sprintf("u=%d", u), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sharpp.CountAcceptingPaths(db, pred, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4KarpLuby measures the #DNF FPTRAS across ε: cost scales
// with 1/ε² at fixed instance size.
func BenchmarkE4KarpLuby(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	d := workload.RandomKDNF(rng, 30, 40, 3)
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := karpluby.CountDNF(d, eps, 0.05, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4KarpLubyPar measures the lane-split parallel #DNF FPTRAS:
// the same fixed-lane computation scheduled on 1 versus 8 workers, with
// the zero-allocation per-lane scratch, in both evaluation modes — the
// interpreted per-sample term walk versus the compiled 64-way
// bit-parallel evaluator (identical estimates by construction; the
// samples/sec metric is the compiled path's speedup). Any worker count
// produces the identical estimate; on a multi-core host the 8-worker
// rows show the wall-clock speedup, and on any host the allocs/op
// column shows the scratch reuse.
func BenchmarkE4KarpLubyPar(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	d := workload.RandomKDNF(rng, 30, 40, 3)
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		for _, workers := range []int{1, 8} {
			for _, eval := range []string{"interpreted", "compiled"} {
				count := karpluby.CountDNFPar
				if eval == "compiled" {
					count = karpluby.CountDNFParCompiled
				}
				b.Run(fmt.Sprintf("eps=%g/workers=%d/eval=%s", eps, workers, eval), func(b *testing.B) {
					b.ReportAllocs()
					samples := 0
					for i := 0; i < b.N; i++ {
						res, err := count(context.Background(), d, eps, 0.05, benchSeed, mc.Par{Workers: workers}, nil)
						if err != nil {
							b.Fatal(err)
						}
						samples += res.Samples
					}
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(samples)/s, "samples/sec")
					}
				})
			}
		}
	}
}

// BenchmarkE5Thm53Reduce measures the Theorem 5.3 binary-encoding
// construction as the probability bit-length grows.
func BenchmarkE5Thm53Reduce(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	d := workload.RandomKDNF(rng, 4, 3, 2)
	for _, q := range []int64{7, 211, 65521} {
		p := workload.RandomProbs(rng, 4, int(q))
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := karpluby.Reduce(d, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Lineage measures the Theorem 5.4 pipeline: exact BDD
// versus Karp–Luby FPTRAS on the same conjunctive query.
func BenchmarkE6Lineage(b *testing.B) {
	f := logic.MustParse("exists x y . E(x,y) & S(x) & S(y)", nil)
	for _, n := range []int{8, 16, 32} {
		rng := rand.New(rand.NewSource(benchSeed + int64(n)))
		db := workload.AddUncertainty(rng, workload.RandomStructure(rng, n, 0.2, 0.5), n, 10)
		b.Run(fmt.Sprintf("bdd/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LineageBDD(context.Background(), db, f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("karpluby/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LineageKL(context.Background(), db, f, core.Options{Eps: 0.2, Delta: 0.1, Seed: int64(i)}, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Absolute measures the absolute-reliability deciders:
// polynomial for quantifier-free queries, witness search for the
// 4-colourability reduction.
func BenchmarkE7Absolute(b *testing.B) {
	qf := logic.MustParse("S(x) & !E(x,x)", nil)
	for _, n := range []int{16, 64} {
		rng := rand.New(rand.NewSource(benchSeed + int64(n)))
		db := workload.AddUncertainty(rng, workload.RandomStructure(rng, n, 0.2, 0.5), n, 10)
		b.Run(fmt.Sprintf("qfree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AbsoluteReliability(db, qf, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{4, 5} {
		g := reductions.RandomGraph(rand.New(rand.NewSource(benchSeed)), n, 0.5)
		if g.NumEdges() == 0 {
			g.MustAddEdge(0, 1)
		}
		inst, err := reductions.BuildFourColInstance(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fourcol/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AbsoluteReliability(inst.DB, inst.Query, core.Options{MaxEnumAtoms: 12}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8MonteCarlo measures the Theorem 5.12 padded estimator
// across ε (cost ∝ 1/ε²).
func BenchmarkE8MonteCarlo(b *testing.B) {
	query := logic.MustParse("forall x . exists y . E(x,y)", nil)
	pred := func(s *rel.Structure) (bool, error) { return logic.EvalSentence(s, query) }
	rng := rand.New(rand.NewSource(benchSeed))
	db := workload.RandomUDB(rng, 4, 8)
	for _, eps := range []float64{0.2, 0.1} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mc.EstimateNuPadded(context.Background(), db, pred, 0.25, eps, 0.1, 0, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8MonteCarloPar measures the lane-split parallel padded
// estimator with the zero-allocation world buffer: 1 versus 8 workers
// over the same fixed-lane sample stream (bit-identical estimates), in
// both evaluation modes — the interpreted per-world formula walk
// versus the compiled bytecode evaluated 64 worlds per machine word.
func BenchmarkE8MonteCarloPar(b *testing.B) {
	query := logic.MustParse("forall x . exists y . E(x,y)", nil)
	pred := func(s *rel.Structure) (bool, error) { return logic.EvalSentence(s, query) }
	rng := rand.New(rand.NewSource(benchSeed))
	db := workload.RandomUDB(rng, 4, 8)
	prog, err := vm.NewCompiler(db).Compile(query, logic.Env{})
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{0.2, 0.1} {
		for _, workers := range []int{1, 8} {
			for _, eval := range []string{"interpreted", "compiled"} {
				b.Run(fmt.Sprintf("eps=%g/workers=%d/eval=%s", eps, workers, eval), func(b *testing.B) {
					b.ReportAllocs()
					samples := 0
					for i := 0; i < b.N; i++ {
						var est mc.Estimate
						var err error
						if eval == "compiled" {
							est, err = mc.EstimateNuPaddedParCompiled(context.Background(), db, prog, 0.25, eps, 0.1, 0, benchSeed, mc.Par{Workers: workers}, nil)
						} else {
							est, err = mc.EstimateNuPaddedPar(context.Background(), db, pred, 0.25, eps, 0.1, 0, benchSeed, mc.Par{Workers: workers}, nil)
						}
						if err != nil {
							b.Fatal(err)
						}
						samples += est.Samples
					}
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(samples)/s, "samples/sec")
					}
				})
			}
		}
	}
}

// BenchmarkE9Metafinite measures the Theorem 6.2 (i) polynomial
// quantifier-free engine across database sizes.
func BenchmarkE9Metafinite(b *testing.B) {
	salary := metafinite.FApp{Fn: "salary", Args: []metafinite.FOTerm{metafinite.V("x")}}
	term := metafinite.Add{L: salary, R: metafinite.NumInt(100)}
	for _, n := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(benchSeed + int64(n)))
		u, err := workload.SalaryUDB(rng, n, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("qfree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metafinite.QuantifierFree(u, term, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Ablations measures the design-choice ablations: exact
// Prob-DNF via BDD versus brute force, and weighted Karp–Luby versus
// the Theorem 5.3 route.
func BenchmarkE10Ablations(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	d := workload.RandomKDNF(rng, 16, 16, 3)
	p := workload.RandomProbs(rng, 16, 10)
	b.Run("exact-bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr := bdd.New(d.NumVars, 0)
			root, err := mgr.FromDNF(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mgr.Prob(root, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.ProbBruteForce(p, 24); err != nil {
				b.Fatal(err)
			}
		}
	})
	small := workload.RandomKDNF(rng, 6, 4, 2)
	sp := workload.RandomProbs(rng, 6, 8)
	b.Run("prob-weighted-kl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := karpluby.ProbDNF(small, sp, 0.1, 0.05, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prob-thm53-route", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := karpluby.ProbViaReduction(small, sp, 0.1, 0.05, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Datalog measures the Datalog engines on network
// reliability: exact world enumeration (exponential in uncertain
// links) versus Monte Carlo.
func BenchmarkE11Datalog(b *testing.B) {
	prog := datalog.MustParse("Reach(x,y) :- Link(x,y).\nReach(x,z) :- Reach(x,y), Link(y,z).\n")
	voc := rel.MustVocabulary(rel.RelSym{Name: "Link", Arity: 2})
	for _, links := range []int{6, 10, 14} {
		rng := rand.New(rand.NewSource(benchSeed))
		s := rel.MustStructure(6, voc)
		db := unreliable.New(s)
		for db.NumUncertain() < links {
			u, v := rng.Intn(6), rng.Intn(6)
			if u == v {
				continue
			}
			s.MustAdd("Link", u, v)
			db.MustSetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{u, v}}, big.NewRat(1, 5))
		}
		q := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.V("x"), datalog.E(0)}}
		b.Run(fmt.Sprintf("exact/links=%d", links), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Reliability(db, prog, q, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12SafePlan measures the Dalvi–Suciu safe-plan engine
// against the exact BDD lineage engine on the same hierarchical query
// as the database grows.
func BenchmarkE12SafePlan(b *testing.B) {
	f := logic.MustParse("exists x y . S(x) & E(x,y)", nil)
	for _, n := range []int{32, 128, 512} {
		s := rel.MustStructure(n, workload.GraphVoc())
		db := unreliable.New(s)
		for i := 0; i < n; i++ {
			s.MustAdd("S", i)
			db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{i}}, big.NewRat(1, 3))
			s.MustAdd("E", i, (i+1)%n)
			db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{i, (i + 1) % n}}, big.NewRat(1, 4))
		}
		b.Run(fmt.Sprintf("safe-plan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SafePlan(context.Background(), db, f, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n <= 128 {
			b.Run(fmt.Sprintf("lineage-bdd/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.LineageBDD(context.Background(), db, f, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWorldEnumParallel measures the parallel exact engine against
// the sequential one on a 2^14-world instance.
// BenchmarkE13StoreStream measures the streaming scan→filter→join
// pipeline over the two Source implementations: the memory-resident
// structure and the paged store, with the buffer-pool byte budget as
// a dimension. Small pools force evictions on every pass, so the
// paged rows price the page-fault overhead of running under a budget
// smaller than the dataset; the memory row is the floor.
func BenchmarkE13StoreStream(b *testing.B) {
	const n = 256
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	a := rel.MustStructure(n, voc)
	rng := rand.New(rand.NewSource(benchSeed))
	for i := 0; i < 60000; i++ {
		a.MustAdd("E", rng.Intn(n), rng.Intn(n))
	}
	for i := 0; i < 16; i++ {
		a.MustAdd("S", i)
	}
	query := ra.Join{
		L: ra.Select{From: ra.Base{Rel: "E", Attrs: []string{"x", "y"}}, Attr: "x", Other: "y", Elem: -1, Negate: true},
		R: ra.Base{Rel: "S", Attrs: []string{"y"}},
	}
	drain := func(b *testing.B, src ra.Source) int {
		it, _, err := ra.Build(src, query)
		if err != nil {
			b.Fatal(err)
		}
		defer it.Close()
		count := 0
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				return count
			}
			count++
		}
	}

	b.Run("source=memory", func(b *testing.B) {
		src := ra.StructureSource(a)
		for i := 0; i < b.N; i++ {
			drain(b, src)
		}
	})

	path := filepath.Join(b.TempDir(), "bench.qstore")
	if err := store.BuildFromDB(path, unreliable.New(a), store.Options{PageSize: 4096}, 0, nil); err != nil {
		b.Fatal(err)
	}
	for _, pool := range []int64{64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("source=paged/pool=%dKiB", pool>>10), func(b *testing.B) {
			s, err := store.Open(path, store.Options{PoolBytes: pool})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < b.N; i++ {
				drain(b, s)
			}
		})
	}
}

func BenchmarkWorldEnumParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	db := workload.RandomUDB(rng, 4, 14)
	f := logic.MustParse("forall x . exists y . E(x,y)", nil)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.WorldEnum(context.Background(), db, f, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.WorldEnumParallel(context.Background(), db, f, core.Options{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
