// Package cliutil gives every qrel command a uniform failure surface:
// the typed error taxonomy of the runtime maps onto distinct exit codes
// so scripts can branch on the failure mode, usage errors are
// distinguished from runtime errors, and a recover helper guarantees a
// malformed input can produce at worst a one-line error — never a panic
// stack trace.
package cliutil

import (
	"context"
	"errors"
	"fmt"

	"qrel/internal/core"
)

// Exit codes. Scripts rely on these being stable.
const (
	// ExitOK: success.
	ExitOK = 0
	// ExitFailure: any error outside the classes below (I/O, malformed
	// input files, internal faults).
	ExitFailure = 1
	// ExitUsage: bad flags or arguments (the conventional 2, matching
	// flag.ExitOnError).
	ExitUsage = 2
	// ExitCanceled: the computation was canceled or timed out
	// (core.ErrCanceled, context cancellation/deadline).
	ExitCanceled = 3
	// ExitBudget: a resource budget was exhausted (core.ErrBudgetExceeded).
	ExitBudget = 4
	// ExitInfeasible: no feasible engine covers the query
	// (core.ErrInfeasible).
	ExitInfeasible = 5
	// ExitEngine: an engine crashed and was contained (core.ErrEngineFailed).
	ExitEngine = 6
)

// errUsage marks usage errors for ExitCode.
var errUsage = errors.New("usage error")

// UsageErrorf builds an error that ExitCode maps to ExitUsage.
func UsageErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errUsage, fmt.Sprintf(format, args...))
}

// IsUsage reports whether err is a usage error.
func IsUsage(err error) bool { return errors.Is(err, errUsage) }

// ExitCode maps an error onto the command exit code: nil is ExitOK,
// usage errors are ExitUsage, the typed runtime taxonomy gets its
// dedicated codes, and everything else is ExitFailure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, errUsage):
		return ExitUsage
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ExitCanceled
	case errors.Is(err, core.ErrBudgetExceeded):
		return ExitBudget
	case errors.Is(err, core.ErrInfeasible):
		return ExitInfeasible
	case errors.Is(err, core.ErrEngineFailed):
		return ExitEngine
	default:
		return ExitFailure
	}
}

// Recover converts a panic in the calling function into *errp, so a
// command's run function can guarantee "one-line error, nonzero exit"
// even for inputs that crash a parser. Use as:
//
//	func run(...) (err error) {
//		defer cliutil.Recover(&err)
//		...
//	}
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("internal error: %v", r)
	}
}
