package cliutil

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"qrel/internal/core"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("something else"), ExitFailure},
		{UsageErrorf("need -db"), ExitUsage},
		{core.ErrCanceled, ExitCanceled},
		{fmt.Errorf("wrapped: %w", core.ErrCanceled), ExitCanceled},
		{context.DeadlineExceeded, ExitCanceled},
		{context.Canceled, ExitCanceled},
		{core.ErrBudgetExceeded, ExitBudget},
		{fmt.Errorf("x: %w", core.ErrBudgetExceeded), ExitBudget},
		{core.ErrInfeasible, ExitInfeasible},
		{core.ErrEngineFailed, ExitEngine},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestUsageErrorsAreDetectable(t *testing.T) {
	err := UsageErrorf("bad flag %q", "-x")
	if !IsUsage(err) {
		t.Error("IsUsage false for a usage error")
	}
	if IsUsage(errors.New("other")) {
		t.Error("IsUsage true for a non-usage error")
	}
}

func TestRecoverConvertsPanics(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err)
		panic("corrupt index")
	}
	err := f()
	if err == nil {
		t.Fatal("panic not converted to an error")
	}
	if ExitCode(err) != ExitFailure {
		t.Errorf("recovered panic exit code %d, want %d", ExitCode(err), ExitFailure)
	}
}
