package rel

import (
	"testing"
)

// FuzzTupleKeyRoundTrip checks the packed tuple encoding: any key
// unpacked at a legal arity repacks to the same key (restricted to the
// bits the arity can hold), and unpacking never panics.
func FuzzTupleKeyRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0x0001000200030004), uint8(4))
	f.Add(uint64(0xffff), uint8(1))
	f.Add(uint64(0xdeadbeef), uint8(2))
	f.Add(^uint64(0), uint8(4))
	f.Add(uint64(1)<<48, uint8(3))
	f.Fuzz(func(t *testing.T, k uint64, arity uint8) {
		a := int(arity) % (MaxArity + 1)
		tup := KeyToTuple(k, a)
		if len(tup) != a {
			t.Fatalf("KeyToTuple(%#x, %d) has arity %d", k, a, len(tup))
		}
		for _, e := range tup {
			if e < 0 || e >= MaxUniverse {
				t.Fatalf("KeyToTuple(%#x, %d) component %d outside [0,%d)", k, a, e, MaxUniverse)
			}
		}
		var mask uint64
		if a > 0 {
			mask = ^uint64(0) >> (64 - 16*a)
		}
		if got := tup.Key(); got != k&mask {
			t.Fatalf("round trip %#x -> %v -> %#x (want %#x)", k, tup, got, k&mask)
		}
	})
}

// FuzzGroundAtomKey checks that GroundAtom.Key and AtomKey.Atom are
// mutually inverse for every relation name and legal tuple.
func FuzzGroundAtomKey(f *testing.F) {
	f.Add("E", uint64(0x00010002), uint8(2))
	f.Add("Salary", uint64(7), uint8(1))
	f.Add("", uint64(0), uint8(0))
	f.Add("weird name\n", uint64(0xffffffffffffffff), uint8(4))
	f.Fuzz(func(t *testing.T, name string, k uint64, arity uint8) {
		a := int(arity) % (MaxArity + 1)
		atom := GroundAtom{Rel: name, Args: KeyToTuple(k, a)}
		back := atom.Key().Atom()
		if !back.Equal(atom) {
			t.Fatalf("atom %v -> key %v -> %v", atom, atom.Key(), back)
		}
	})
}
