package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabulary(t *testing.T) {
	v, err := NewVocabulary(RelSym{"E", 2}, RelSym{"S", 1})
	if err != nil {
		t.Fatalf("NewVocabulary: %v", err)
	}
	if got := v.String(); got != "E/2, S/1" {
		t.Errorf("String() = %q", got)
	}
	if _, ok := v.Rel("E"); !ok {
		t.Error("Rel(E) not found")
	}
	if _, ok := v.Rel("X"); ok {
		t.Error("Rel(X) unexpectedly found")
	}
	if err := v.AddRel(RelSym{"E", 3}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := v.AddRel(RelSym{"", 1}); err == nil {
		t.Error("empty relation name accepted")
	}
	if err := v.AddRel(RelSym{"Big", MaxArity + 1}); err == nil {
		t.Error("oversized arity accepted")
	}
	if err := v.AddConst("c"); err != nil {
		t.Errorf("AddConst: %v", err)
	}
	if err := v.AddConst("c"); err == nil {
		t.Error("duplicate constant accepted")
	}
	c := v.Clone()
	c.Rels[0].Name = "Z"
	if v.Rels[0].Name != "E" {
		t.Error("Clone shares Rels slice")
	}
}

func TestTupleKeyRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		tup := Tuple{int(a), int(b), int(c), int(d)}
		return KeyToTuple(tup.Key(), 4).Equal(tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyDistinct(t *testing.T) {
	// Keys of distinct same-arity tuples must differ.
	seen := map[uint64]Tuple{}
	ForEachTuple(7, 3, func(tp Tuple) bool {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %v and %v", prev, tp)
		}
		seen[k] = tp.Clone()
		return true
	})
	if len(seen) != 343 {
		t.Errorf("enumerated %d tuples, want 343", len(seen))
	}
}

func TestTupleKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Key() on oversized component did not panic")
		}
	}()
	Tuple{MaxUniverse}.Key()
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if r.Contains(Tuple{0, 1}) {
		t.Error("empty relation contains tuple")
	}
	r.Add(Tuple{0, 1})
	r.Add(Tuple{0, 1})
	r.Add(Tuple{2, 3})
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(Tuple{0, 1}) {
		t.Error("Contains(0,1) = false")
	}
	if r.Contains(Tuple{1, 0}) {
		t.Error("Contains(1,0) = true")
	}
	if r.Contains(Tuple{0}) {
		t.Error("wrong-arity Contains = true")
	}
	r.Remove(Tuple{0, 1})
	if r.Contains(Tuple{0, 1}) {
		t.Error("tuple present after Remove")
	}
	if got := r.Toggle(Tuple{2, 3}); got {
		t.Error("Toggle of present tuple reported true")
	}
	if got := r.Toggle(Tuple{2, 3}); !got {
		t.Error("Toggle of absent tuple reported false")
	}
	tuples := r.Tuples()
	if len(tuples) != 1 || !tuples[0].Equal(Tuple{2, 3}) {
		t.Errorf("Tuples() = %v", tuples)
	}
}

func TestRelationCloneEqual(t *testing.T) {
	r := NewRelation(2)
	r.Add(Tuple{1, 2})
	r.Add(Tuple{3, 4})
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c.Add(Tuple{5, 6})
	if r.Equal(c) {
		t.Error("clone mutation affected equality unexpectedly")
	}
	if r.Contains(Tuple{5, 6}) {
		t.Error("clone shares storage")
	}
}

func TestStructureBasics(t *testing.T) {
	voc := MustVocabulary(RelSym{"E", 2}, RelSym{"S", 1})
	voc.AddConst("c")
	s := MustStructure(5, voc)
	if err := s.Add("E", Tuple{0, 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Add("E", Tuple{0, 9}); err == nil {
		t.Error("out-of-universe element accepted")
	}
	if err := s.Add("E", Tuple{0}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.Add("X", Tuple{0}); err == nil {
		t.Error("unknown relation accepted")
	}
	if !s.Holds("E", Tuple{0, 1}) || s.Holds("E", Tuple{1, 0}) {
		t.Error("Holds wrong")
	}
	if err := s.SetConst("c", 3); err != nil {
		t.Errorf("SetConst: %v", err)
	}
	if err := s.SetConst("c", 17); err == nil {
		t.Error("expected error missing for out-of-range const")
	}
	if s.Consts["c"] != 3 {
		t.Error("failed SetConst mutated value")
	}
	if err := s.SetConst("d", 0); err == nil {
		t.Error("unknown constant accepted")
	}
}

func TestStructureCloneEqual(t *testing.T) {
	voc := MustVocabulary(RelSym{"E", 2})
	s := MustStructure(4, voc)
	s.MustAdd("E", 0, 1)
	s.MustAdd("E", 2, 3)
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not Equal")
	}
	c.MustAdd("E", 1, 1)
	if s.Equal(c) {
		t.Error("Equal after divergence")
	}
	if s.Holds("E", Tuple{1, 1}) {
		t.Error("clone shares relation storage")
	}
	if s.FactCount() != 2 || c.FactCount() != 3 {
		t.Errorf("FactCount = %d, %d", s.FactCount(), c.FactCount())
	}
}

func TestForEachTuple(t *testing.T) {
	var got []Tuple
	ForEachTuple(3, 2, func(tp Tuple) bool {
		got = append(got, tp.Clone())
		return true
	})
	if len(got) != 9 {
		t.Fatalf("got %d tuples, want 9", len(got))
	}
	if !got[0].Equal(Tuple{0, 0}) || !got[8].Equal(Tuple{2, 2}) {
		t.Errorf("order wrong: first %v last %v", got[0], got[8])
	}
	// Arity 0 yields exactly the empty tuple.
	count := 0
	ForEachTuple(3, 0, func(tp Tuple) bool {
		count++
		if len(tp) != 0 {
			t.Errorf("arity-0 tuple %v", tp)
		}
		return true
	})
	if count != 1 {
		t.Errorf("arity-0 count = %d, want 1", count)
	}
	// Empty universe with positive arity yields nothing.
	count = 0
	ForEachTuple(0, 2, func(Tuple) bool { count++; return true })
	if count != 0 {
		t.Errorf("n=0 count = %d, want 0", count)
	}
	// Early stop.
	count = 0
	ForEachTuple(3, 2, func(Tuple) bool { count++; return count < 4 })
	if count != 4 {
		t.Errorf("early-stop count = %d, want 4", count)
	}
}

func TestTupleCount(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{3, 2, 9}, {1, 5, 1}, {0, 0, 1}, {0, 3, 0}, {10, 0, 1}, {2, 10, 1024},
	}
	for _, c := range cases {
		if got := TupleCount(c.n, c.k); got != c.want {
			t.Errorf("TupleCount(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := TupleCount(1<<20, 4); got != -1 {
		t.Errorf("overflow TupleCount = %d, want -1", got)
	}
}

func TestGroundAtoms(t *testing.T) {
	voc := MustVocabulary(RelSym{"E", 2}, RelSym{"S", 1})
	s := MustStructure(3, voc)
	var atoms []GroundAtom
	s.ForEachGroundAtom(func(a GroundAtom) bool {
		atoms = append(atoms, GroundAtom{Rel: a.Rel, Args: a.Args.Clone()})
		return true
	})
	if len(atoms) != 9+3 {
		t.Fatalf("got %d ground atoms, want 12", len(atoms))
	}
	if got := s.GroundAtomCount(); got != 12 {
		t.Errorf("GroundAtomCount = %d, want 12", got)
	}
	if atoms[0].Rel != "E" || atoms[9].Rel != "S" {
		t.Error("vocabulary order not respected")
	}
	a := GroundAtom{Rel: "E", Args: Tuple{1, 2}}
	if a.String() != "E(1,2)" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Key().Atom().Equal(a) {
		t.Error("AtomKey round trip failed")
	}
	b := GroundAtom{Rel: "E", Args: Tuple{2, 1}}
	if a.Key() == b.Key() {
		t.Error("distinct atoms share key")
	}
	// Early stop.
	count := 0
	s.ForEachGroundAtom(func(GroundAtom) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early-stop count = %d", count)
	}
}

func TestAtomKeyDistinctAcrossRelations(t *testing.T) {
	a := GroundAtom{Rel: "R", Args: Tuple{1}}
	b := GroundAtom{Rel: "S", Args: Tuple{1}}
	if a.Key() == b.Key() {
		t.Error("same tuple in different relations shares key")
	}
}

func TestStructureString(t *testing.T) {
	voc := MustVocabulary(RelSym{"E", 2})
	voc.AddConst("c")
	s := MustStructure(2, voc)
	s.MustAdd("E", 0, 1)
	got := s.String()
	want := "structure(n=2; E=(0,1); c=0)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRandomizedStructureEquality(t *testing.T) {
	// Property: Clone() is Equal; mutating exactly one fact breaks Equal.
	rng := rand.New(rand.NewSource(42))
	voc := MustVocabulary(RelSym{"E", 2}, RelSym{"S", 1})
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(5)
		s := MustStructure(n, voc)
		for i := 0; i < rng.Intn(10); i++ {
			s.MustAdd("E", rng.Intn(n), rng.Intn(n))
		}
		for i := 0; i < rng.Intn(5); i++ {
			s.MustAdd("S", rng.Intn(n))
		}
		c := s.Clone()
		if !s.Equal(c) || !c.Equal(s) {
			t.Fatal("clone not equal")
		}
		c.Rel("E").Toggle(Tuple{rng.Intn(n), rng.Intn(n)})
		if s.Equal(c) {
			t.Fatal("single toggle preserved equality")
		}
	}
}

func TestRelationForEach(t *testing.T) {
	r := NewRelation(2)
	r.Add(Tuple{0, 1})
	r.Add(Tuple{2, 3})
	r.Add(Tuple{4, 5})
	seen := map[uint64]bool{}
	r.ForEach(func(tp Tuple) bool {
		seen[tp.Key()] = true
		return true
	})
	if len(seen) != 3 {
		t.Errorf("ForEach visited %d tuples", len(seen))
	}
	count := 0
	r.ForEach(func(Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}
