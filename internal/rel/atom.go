package rel

import (
	"fmt"
	"strings"
)

// GroundAtom is an atomic statement R(a1,...,ak) about a structure: a
// relation name applied to concrete universe elements. Ground atoms are
// the unit of unreliability in the paper's model — the error function mu
// assigns a probability to each of them.
type GroundAtom struct {
	Rel  string
	Args Tuple
}

// String renders the atom as "R(1,2)".
func (a GroundAtom) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = fmt.Sprint(e)
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Key returns a compact unique map key for the atom.
func (a GroundAtom) Key() AtomKey {
	return AtomKey{Rel: a.Rel, Tup: a.Args.Key(), Arity: len(a.Args)}
}

// Equal reports whether two ground atoms are identical.
func (a GroundAtom) Equal(b GroundAtom) bool {
	return a.Rel == b.Rel && a.Args.Equal(b.Args)
}

// AtomKey is a comparable key identifying a ground atom; usable as a Go
// map key.
type AtomKey struct {
	Rel   string
	Tup   uint64
	Arity int
}

// Atom reconstructs the ground atom from its key.
func (k AtomKey) Atom() GroundAtom {
	return GroundAtom{Rel: k.Rel, Args: KeyToTuple(k.Tup, k.Arity)}
}

// String renders the key's atom.
func (k AtomKey) String() string { return k.Atom().String() }

// ForEachGroundAtom calls fn for every ground atom over the structure's
// vocabulary and universe, relation symbols in vocabulary order and
// tuples in lexicographic order; it stops early if fn returns false.
// The atom's Args slice is reused between calls.
func (s *Structure) ForEachGroundAtom(fn func(GroundAtom) bool) {
	for _, sym := range s.Voc.Rels {
		stop := false
		ForEachTuple(s.N, sym.Arity, func(t Tuple) bool {
			if !fn(GroundAtom{Rel: sym.Name, Args: t}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// GroundAtomCount returns the total number of ground atoms over the
// structure's vocabulary and universe, or -1 on overflow.
func (s *Structure) GroundAtomCount() int {
	total := 0
	for _, sym := range s.Voc.Rels {
		c := TupleCount(s.N, sym.Arity)
		if c < 0 {
			return -1
		}
		total += c
		if total < 0 {
			return -1
		}
	}
	return total
}
