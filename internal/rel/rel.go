// Package rel implements finite relational structures: the databases of
// the PODS 1998 paper "The Complexity of Query Reliability".
//
// A structure has a universe {0, ..., N-1}, a vocabulary of relation
// symbols with fixed arities (plus optional named constants), and one
// finite relation per symbol. Structures are the "observed databases" A
// of an unreliable database (A, mu), and also the sampled/enumerated
// possible worlds B in the probability space Omega(D).
package rel

import (
	"fmt"
	"sort"
	"strings"
)

// MaxArity is the largest relation arity supported by the tuple encoding.
// Components are packed 16 bits each into a uint64 key.
const MaxArity = 4

// MaxUniverse is the largest universe size supported by the tuple encoding.
const MaxUniverse = 1 << 16

// RelSym is a relation symbol: a name together with an arity.
type RelSym struct {
	Name  string
	Arity int
}

// String returns the conventional Name/Arity rendering, e.g. "E/2".
func (s RelSym) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Arity) }

// Vocabulary is a finite list of relation symbols and constant names.
// The order of Rels is significant: it defines the canonical atom order
// used when enumerating ground atoms.
type Vocabulary struct {
	Rels   []RelSym
	Consts []string
}

// NewVocabulary builds a vocabulary from relation symbols, validating
// names and arities.
func NewVocabulary(rels ...RelSym) (*Vocabulary, error) {
	v := &Vocabulary{}
	for _, r := range rels {
		if err := v.AddRel(r); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// MustVocabulary is NewVocabulary that panics on error; intended for
// statically known vocabularies in tests and examples.
func MustVocabulary(rels ...RelSym) *Vocabulary {
	v, err := NewVocabulary(rels...)
	if err != nil {
		panic(err)
	}
	return v
}

// AddRel appends a relation symbol, rejecting duplicates and bad arities.
func (v *Vocabulary) AddRel(r RelSym) error {
	if r.Name == "" {
		return fmt.Errorf("rel: empty relation name")
	}
	if r.Arity < 0 || r.Arity > MaxArity {
		return fmt.Errorf("rel: relation %s: arity %d out of range [0,%d]", r.Name, r.Arity, MaxArity)
	}
	if _, ok := v.Rel(r.Name); ok {
		return fmt.Errorf("rel: duplicate relation symbol %q", r.Name)
	}
	v.Rels = append(v.Rels, r)
	return nil
}

// AddConst appends a constant name, rejecting duplicates.
func (v *Vocabulary) AddConst(name string) error {
	if name == "" {
		return fmt.Errorf("rel: empty constant name")
	}
	for _, c := range v.Consts {
		if c == name {
			return fmt.Errorf("rel: duplicate constant %q", name)
		}
	}
	v.Consts = append(v.Consts, name)
	return nil
}

// Rel looks up a relation symbol by name.
func (v *Vocabulary) Rel(name string) (RelSym, bool) {
	for _, r := range v.Rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelSym{}, false
}

// Clone returns a deep copy of the vocabulary.
func (v *Vocabulary) Clone() *Vocabulary {
	w := &Vocabulary{
		Rels:   append([]RelSym(nil), v.Rels...),
		Consts: append([]string(nil), v.Consts...),
	}
	return w
}

// String renders the vocabulary as "E/2, S/1; consts a, b".
func (v *Vocabulary) String() string {
	var b strings.Builder
	for i, r := range v.Rels {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	if len(v.Consts) > 0 {
		b.WriteString("; consts ")
		b.WriteString(strings.Join(v.Consts, ", "))
	}
	return b.String()
}

// Tuple is a tuple of universe elements.
type Tuple []int

// String renders a tuple as "(1,2,3)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = fmt.Sprint(e)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports whether two tuples have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key packs a tuple into a uint64 map key (16 bits per component).
// It panics if a component is outside [0, MaxUniverse) or the arity
// exceeds MaxArity; both limits are documented package invariants that
// constructors enforce earlier with proper errors.
func (t Tuple) Key() uint64 {
	if len(t) > MaxArity {
		panic(fmt.Sprintf("rel: tuple arity %d exceeds MaxArity %d", len(t), MaxArity))
	}
	var k uint64
	for _, e := range t {
		if e < 0 || e >= MaxUniverse {
			panic(fmt.Sprintf("rel: tuple component %d outside [0,%d)", e, MaxUniverse))
		}
		k = k<<16 | uint64(e)
	}
	return k
}

// KeyToTuple unpacks a key produced by Tuple.Key back into a tuple of the
// given arity.
func KeyToTuple(k uint64, arity int) Tuple {
	t := make(Tuple, arity)
	for i := arity - 1; i >= 0; i-- {
		t[i] = int(k & 0xffff)
		k >>= 16
	}
	return t
}

// Relation is a finite relation of fixed arity over the universe.
type Relation struct {
	Arity int
	set   map[uint64]struct{}
}

// NewRelation creates an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, set: make(map[uint64]struct{})}
}

// Contains reports whether the relation holds on t.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.Arity {
		return false
	}
	_, ok := r.set[t.Key()]
	return ok
}

// Add inserts t into the relation. Adding an existing tuple is a no-op.
func (r *Relation) Add(t Tuple) {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("rel: adding tuple of arity %d to relation of arity %d", len(t), r.Arity))
	}
	r.set[t.Key()] = struct{}{}
}

// Remove deletes t from the relation. Removing a missing tuple is a no-op.
func (r *Relation) Remove(t Tuple) {
	if len(t) != r.Arity {
		return
	}
	delete(r.set, t.Key())
}

// Toggle flips membership of t and reports the new membership value.
func (r *Relation) Toggle(t Tuple) bool {
	k := t.Key()
	if _, ok := r.set[k]; ok {
		delete(r.set, k)
		return false
	}
	r.set[k] = struct{}{}
	return true
}

// Len returns the number of tuples in the relation.
func (r *Relation) Len() int { return len(r.set) }

// ForEach calls fn for every tuple in the relation, in unspecified
// order, stopping early if fn returns false. The tuple passed to fn is
// freshly decoded and may be retained. Prefer this over Tuples in inner
// loops: it avoids the sort.
func (r *Relation) ForEach(fn func(Tuple) bool) {
	for k := range r.set {
		if !fn(KeyToTuple(k, r.Arity)) {
			return
		}
	}
}

// Tuples returns all tuples in the relation in sorted (key) order.
func (r *Relation) Tuples() []Tuple {
	keys := make([]uint64, 0, len(r.set))
	for k := range r.set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = KeyToTuple(k, r.Arity)
	}
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Arity)
	for k := range r.set {
		c.set[k] = struct{}{}
	}
	return c
}

// Equal reports whether two relations contain exactly the same tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.Arity != o.Arity || len(r.set) != len(o.set) {
		return false
	}
	for k := range r.set {
		if _, ok := o.set[k]; !ok {
			return false
		}
	}
	return true
}

// Structure is a finite relational structure: a universe {0..N-1}, a
// vocabulary, one relation per symbol, and an interpretation of the
// constants.
type Structure struct {
	N      int
	Voc    *Vocabulary
	Rels   map[string]*Relation
	Consts map[string]int
}

// NewStructure creates a structure with universe size n over voc, with
// all relations empty and all constants interpreted as element 0.
func NewStructure(n int, voc *Vocabulary) (*Structure, error) {
	if n < 0 || n > MaxUniverse {
		return nil, fmt.Errorf("rel: universe size %d out of range [0,%d]", n, MaxUniverse)
	}
	s := &Structure{
		N:      n,
		Voc:    voc,
		Rels:   make(map[string]*Relation, len(voc.Rels)),
		Consts: make(map[string]int, len(voc.Consts)),
	}
	for _, r := range voc.Rels {
		s.Rels[r.Name] = NewRelation(r.Arity)
	}
	for _, c := range voc.Consts {
		s.Consts[c] = 0
	}
	return s, nil
}

// MustStructure is NewStructure that panics on error.
func MustStructure(n int, voc *Vocabulary) *Structure {
	s, err := NewStructure(n, voc)
	if err != nil {
		panic(err)
	}
	return s
}

// Rel returns the relation for name, or nil if the symbol is unknown.
func (s *Structure) Rel(name string) *Relation { return s.Rels[name] }

// Holds reports whether the named relation holds on t. Unknown relation
// names report false.
func (s *Structure) Holds(name string, t Tuple) bool {
	r := s.Rels[name]
	return r != nil && r.Contains(t)
}

// Add inserts t into the named relation, validating element range.
func (s *Structure) Add(name string, t Tuple) error {
	r := s.Rels[name]
	if r == nil {
		return fmt.Errorf("rel: unknown relation %q", name)
	}
	if len(t) != r.Arity {
		return fmt.Errorf("rel: %s expects arity %d, got tuple %v", name, r.Arity, t)
	}
	for _, e := range t {
		if e < 0 || e >= s.N {
			return fmt.Errorf("rel: element %d outside universe [0,%d)", e, s.N)
		}
	}
	r.Add(t)
	return nil
}

// MustAdd is Add that panics on error.
func (s *Structure) MustAdd(name string, t ...int) {
	if err := s.Add(name, Tuple(t)); err != nil {
		panic(err)
	}
}

// SetConst interprets the named constant as element e.
func (s *Structure) SetConst(name string, e int) error {
	if _, ok := s.Consts[name]; !ok {
		return fmt.Errorf("rel: unknown constant %q", name)
	}
	if e < 0 || e >= s.N {
		return fmt.Errorf("rel: constant %s: element %d outside universe [0,%d)", name, e, s.N)
	}
	s.Consts[name] = e
	return nil
}

// Clone returns a deep copy of the structure (sharing the vocabulary,
// which is immutable by convention once a structure is built on it).
func (s *Structure) Clone() *Structure {
	c := &Structure{
		N:      s.N,
		Voc:    s.Voc,
		Rels:   make(map[string]*Relation, len(s.Rels)),
		Consts: make(map[string]int, len(s.Consts)),
	}
	for name, r := range s.Rels {
		c.Rels[name] = r.Clone()
	}
	for name, e := range s.Consts {
		c.Consts[name] = e
	}
	return c
}

// Equal reports whether two structures have the same universe size and
// exactly the same relations and constant interpretations. Vocabularies
// are compared by the relation contents, not by pointer.
func (s *Structure) Equal(o *Structure) bool {
	if s.N != o.N || len(s.Rels) != len(o.Rels) || len(s.Consts) != len(o.Consts) {
		return false
	}
	for name, r := range s.Rels {
		or, ok := o.Rels[name]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	for name, e := range s.Consts {
		oe, ok := o.Consts[name]
		if !ok || e != oe {
			return false
		}
	}
	return true
}

// FactCount returns the total number of tuples across all relations.
func (s *Structure) FactCount() int {
	total := 0
	for _, r := range s.Rels {
		total += r.Len()
	}
	return total
}

// String renders the structure compactly for debugging.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure(n=%d", s.N)
	names := make([]string, 0, len(s.Rels))
	for name := range s.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.Rels[name]
		fmt.Fprintf(&b, "; %s=", name)
		for i, t := range r.Tuples() {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(t.String())
		}
	}
	if len(s.Consts) > 0 {
		cs := make([]string, 0, len(s.Consts))
		for name := range s.Consts {
			cs = append(cs, name)
		}
		sort.Strings(cs)
		for _, name := range cs {
			fmt.Fprintf(&b, "; %s=%d", name, s.Consts[name])
		}
	}
	b.WriteString(")")
	return b.String()
}

// ForEachTuple calls fn for every tuple in A^arity in lexicographic
// order, stopping early if fn returns false. The tuple passed to fn is
// reused between calls; clone it if it must be retained.
func ForEachTuple(n, arity int, fn func(Tuple) bool) {
	if arity == 0 {
		fn(Tuple{})
		return
	}
	if n == 0 {
		return
	}
	t := make(Tuple, arity)
	for {
		if !fn(t) {
			return
		}
		i := arity - 1
		for i >= 0 {
			t[i]++
			if t[i] < n {
				break
			}
			t[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// TupleCount returns n^arity as an int, or -1 on overflow.
func TupleCount(n, arity int) int {
	c := 1
	for i := 0; i < arity; i++ {
		if n != 0 && c > int(^uint(0)>>1)/n {
			return -1
		}
		c *= n
	}
	return c
}
