package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestSnapshotDiffDetectsLeak: a goroutine parked past the grace window
// shows up in the diff; after it exits, the diff clears.
func TestSnapshotDiffDetectsLeak(t *testing.T) {
	baseline := Snapshot()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	leaked := LeakedSince(baseline, 100*time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("parked goroutine was not reported as leaked")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestSnapshotDiffDetectsLeak") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the leaking function:\n%s", strings.Join(leaked, "\n\n"))
	}
	close(release)
	<-done
	if leaked := LeakedSince(baseline, 2*time.Second); len(leaked) != 0 {
		t.Errorf("diff still reports leaks after the goroutine exited:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// TestGraceRetriesAbsorbSlowExit: a goroutine that exits within the
// grace window is not a leak.
func TestGraceRetriesAbsorbSlowExit(t *testing.T) {
	baseline := Snapshot()
	go func() {
		time.Sleep(50 * time.Millisecond)
	}()
	if leaked := LeakedSince(baseline, 2*time.Second); len(leaked) != 0 {
		t.Errorf("slowly exiting goroutine reported as leak:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// TestCheckGoroutineLeaksPasses: the test-facing wrapper is quiet on a
// clean test.
func TestCheckGoroutineLeaksPasses(t *testing.T) {
	CheckGoroutineLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestNormalizeStripsVolatileParts: two stacks of the same code path
// with different goroutine IDs and addresses normalize identically.
func TestNormalizeStripsVolatileParts(t *testing.T) {
	a := "goroutine 7 [chan receive]:\nmain.worker(0xc000012345)\n\t/x/main.go:10 +0x45"
	b := "goroutine 99 [select]:\nmain.worker(0xc0000abcde)\n\t/x/main.go:10 +0x99"
	if normalize(a) != normalize(b) {
		t.Errorf("normalize(a) = %q\nnormalize(b) = %q; want equal", normalize(a), normalize(b))
	}
}
