// Package testutil holds shared test infrastructure for the robustness
// line. Its centerpiece is a goroutine-leak checker: a snapshot-diff
// over normalized goroutine stacks with grace retries, usable both from
// tests (CheckGoroutineLeaks) and from the chaos campaign's end-of-run
// invariant (Snapshot / LeakedSince), which must not depend on the
// testing package.
package testutil

import (
	"regexp"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the slice of testing.TB the leak checker needs; declaring it
// here keeps the package importable from non-test code (the chaos
// campaign) without linking the testing machinery into binaries.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// uninteresting marks goroutines that belong to the runtime or the
// test harness itself — never leaks, always present or transient.
var uninteresting = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit",
	"created by runtime.gc",
	"created by runtime/trace.Start",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"sigterm.handler",
	"runtime_mcache",
	"(*loggingT).flushDaemon",
	"goroutine in C code",
	"runtime.CPUProfile",
	"testutil.Goroutines", // the snapshotting goroutine itself
}

// addrRe strips hex addresses and +0x offsets so that two stacks of the
// same code path normalize identically across snapshots.
var addrRe = regexp.MustCompile(`0x[0-9a-f]+`)

// Goroutines returns the normalized stacks of every interesting live
// goroutine. Each entry is one goroutine's stack with the header line
// (goroutine ID and scheduling state — both change run to run) dropped
// and addresses blanked, so identical code paths compare equal.
func Goroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || !interesting(g) {
			continue
		}
		out = append(out, normalize(g))
	}
	sort.Strings(out)
	return out
}

// interesting reports whether a raw stack belongs to code under test.
func interesting(stack string) bool {
	for _, marker := range uninteresting {
		if strings.Contains(stack, marker) {
			return false
		}
	}
	return true
}

// normalize drops the "goroutine N [state]:" header and blanks
// addresses.
func normalize(stack string) string {
	lines := strings.Split(stack, "\n")
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		lines = lines[1:]
	}
	return addrRe.ReplaceAllString(strings.Join(lines, "\n"), "0x?")
}

// Snapshot captures the current interesting goroutines as a multiset of
// normalized stacks — the baseline of a snapshot-diff leak check.
func Snapshot() map[string]int {
	snap := map[string]int{}
	for _, g := range Goroutines() {
		snap[g]++
	}
	return snap
}

// LeakedSince polls for up to grace, returning the normalized stacks of
// goroutines present now but absent from (or more numerous than in) the
// baseline. The retries absorb goroutines that are legitimately still
// unwinding — worker pools draining after Close, timers firing — so
// only goroutines that persist for the whole grace period count as
// leaks. An empty return means no leak.
func LeakedSince(baseline map[string]int, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := diff(baseline)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(grace / 20)
	}
}

// diff returns stacks exceeding their baseline count.
func diff(baseline map[string]int) []string {
	seen := map[string]int{}
	var leaked []string
	for _, g := range Goroutines() {
		seen[g]++
		if seen[g] > baseline[g] {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// CheckGoroutineLeaks snapshots the interesting goroutines now and, at
// test cleanup, fails the test if goroutines beyond the baseline are
// still alive after the grace retries. Call it first in a test:
//
//	func TestServer(t *testing.T) {
//		testutil.CheckGoroutineLeaks(t)
//		...
//	}
func CheckGoroutineLeaks(t TB) {
	t.Helper()
	baseline := Snapshot()
	t.Cleanup(func() {
		if leaked := LeakedSince(baseline, 2*time.Second); len(leaked) > 0 {
			t.Errorf("goroutine leak: %d goroutine(s) outlived the test:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}
