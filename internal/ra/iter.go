package ra

// Volcano-style pull iterators for the algebra. Build compiles an
// Expr into a tree of streaming operators over any Source — the
// memory-resident structure or the paged store — pulling one tuple at
// a time and emitting its lineage (the ground atoms that witness it)
// as it streams, so million-tuple relations flow through
// scan→filter→join under a fixed buffer-pool budget without ever
// being materialized whole.

import (
	"fmt"
	"sort"

	"qrel/internal/logic"
	"qrel/internal/rel"
)

// TupleIter streams the tuples of one relation. Implementations are
// not safe for concurrent use; Close must be idempotent.
type TupleIter interface {
	Next() (rel.Tuple, bool, error)
	Close() error
}

// Source is what an operator tree scans: a universe, a set of
// relation symbols, and per-relation tuple streams. *store.Store
// implements it against pages; StructureSource adapts an in-memory
// structure.
type Source interface {
	Universe() int
	Relations() []rel.RelSym
	Scan(name string) (TupleIter, error)
}

// Lineage is the set of ground atoms witnessing one output tuple: the
// tuple is in the result of every world containing all of them.
type Lineage []rel.GroundAtom

// Formula compiles the lineage to the conjunction of its atoms in
// canonical (relation name, tuple key) order, deduplicated — the same
// atom reached through both sides of a join appears once. Feeding the
// formula to a reliability engine gives the probability that this
// particular witness survives.
func (l Lineage) Formula() logic.Formula {
	atoms := append(Lineage(nil), l...)
	sort.Slice(atoms, func(i, j int) bool {
		if atoms[i].Rel != atoms[j].Rel {
			return atoms[i].Rel < atoms[j].Rel
		}
		return atoms[i].Args.Key() < atoms[j].Args.Key()
	})
	var fs logic.And
	for i, a := range atoms {
		if i > 0 && a.Equal(atoms[i-1]) {
			continue
		}
		args := make([]logic.Term, len(a.Args))
		for j, e := range a.Args {
			args[j] = logic.Elem(e)
		}
		fs = append(fs, logic.Atom{Rel: a.Rel, Args: args})
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return fs
}

// Iterator is a streaming operator: Next yields the next output tuple
// with its lineage, then (nil, nil, false, nil) at the end. Close
// releases underlying scans (and, for a store source, page pins) and
// is idempotent.
type Iterator interface {
	Next() (rel.Tuple, Lineage, bool, error)
	Close() error
}

// StructureSource adapts a memory-resident structure as a Source.
// Scans stream each relation in sorted tuple order, matching the
// ingest order store.BuildFromDB uses, so the two sources drive
// identical pipelines — including witness choice under projection.
func StructureSource(db *rel.Structure) Source { return memSource{db} }

type memSource struct{ db *rel.Structure }

func (m memSource) Universe() int           { return m.db.N }
func (m memSource) Relations() []rel.RelSym { return m.db.Voc.Rels }
func (m memSource) Scan(name string) (TupleIter, error) {
	r := m.db.Rel(name)
	if r == nil {
		return nil, fmt.Errorf("ra: unknown relation %q", name)
	}
	return &sliceIter{tuples: r.Tuples()}, nil
}

type sliceIter struct {
	tuples []rel.Tuple
	pos    int
}

func (it *sliceIter) Next() (rel.Tuple, bool, error) {
	if it.pos >= len(it.tuples) {
		return nil, false, nil
	}
	t := it.tuples[it.pos]
	it.pos++
	return t, true, nil
}

func (it *sliceIter) Close() error { it.pos = len(it.tuples); return nil }

// skeleton returns a structure carrying only the source's shape
// (universe size and relation arities) so the Expr.Schema methods —
// which read nothing else — validate expressions against any Source.
func skeleton(src Source) (*rel.Structure, error) {
	if m, ok := src.(memSource); ok {
		return m.db, nil
	}
	voc := &rel.Vocabulary{}
	for _, rs := range src.Relations() {
		if err := voc.AddRel(rs); err != nil {
			return nil, err
		}
	}
	return rel.NewStructure(src.Universe(), voc)
}

// Build compiles e into a streaming operator tree over src and
// returns it with the output schema. The tree is lazy: no tuple moves
// until Next, and the caller must Close it.
func Build(src Source, e Expr) (Iterator, []string, error) {
	skel, err := skeleton(src)
	if err != nil {
		return nil, nil, err
	}
	return build(src, skel, e)
}

func build(src Source, skel *rel.Structure, e Expr) (Iterator, []string, error) {
	schema, err := e.Schema(skel)
	if err != nil {
		return nil, nil, err
	}
	// Tuples are keyed with the packed encoding (16 bits per
	// component), which caps every operator's width.
	if len(schema) > rel.MaxArity {
		return nil, nil, fmt.Errorf("ra: schema %v has %d attributes; the tuple encoding supports at most %d",
			schema, len(schema), rel.MaxArity)
	}
	switch x := e.(type) {
	case Base:
		it, err := src.Scan(x.Rel)
		if err != nil {
			return nil, nil, err
		}
		return &scanIter{rel: x.Rel, in: it}, schema, nil
	case Select:
		in, inSchema, err := build(src, skel, x.From)
		if err != nil {
			return nil, nil, err
		}
		ri := -1
		if x.Elem < 0 {
			ri = index(inSchema, x.Other)
		}
		return &selectIter{in: in, li: index(inSchema, x.Attr), ri: ri, elem: x.Elem, negate: x.Negate}, schema, nil
	case Project:
		in, inSchema, err := build(src, skel, x.From)
		if err != nil {
			return nil, nil, err
		}
		idx := make([]int, len(x.Attrs))
		for i, a := range x.Attrs {
			idx[i] = index(inSchema, a)
		}
		return &projectIter{in: in, idx: idx, seen: map[uint64]struct{}{}}, schema, nil
	case Rename:
		// Rename changes attribute names only; the tuple stream is the
		// child's, untouched.
		in, _, err := build(src, skel, x.From)
		if err != nil {
			return nil, nil, err
		}
		return in, schema, nil
	case Join:
		l, ls, err := build(src, skel, x.L)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := build(src, skel, x.R)
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		shared := sharedAttrs(ls, rs)
		j := &joinIter{l: l, r: r}
		for _, a := range shared {
			j.lKey = append(j.lKey, index(ls, a))
			j.rKey = append(j.rKey, index(rs, a))
		}
		for i, a := range rs {
			if !has(ls, a) {
				j.rExtra = append(j.rExtra, i)
			}
		}
		return j, schema, nil
	case Union:
		l, _, err := build(src, skel, x.L)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := build(src, skel, x.R)
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		return &unionIter{l: l, r: r, seen: map[uint64]struct{}{}}, schema, nil
	case Diff:
		l, _, err := build(src, skel, x.L)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := build(src, skel, x.R)
		if err != nil {
			l.Close()
			return nil, nil, err
		}
		return &diffIter{l: l, r: r}, schema, nil
	default:
		return nil, nil, fmt.Errorf("ra: unknown expression %T", e)
	}
}

// scanIter streams a base relation; each tuple's lineage is its own
// ground atom.
type scanIter struct {
	rel string
	in  TupleIter
}

func (it *scanIter) Next() (rel.Tuple, Lineage, bool, error) {
	t, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, nil, false, err
	}
	return t, Lineage{{Rel: it.rel, Args: t}}, true, nil
}

func (it *scanIter) Close() error { return it.in.Close() }

type selectIter struct {
	in     Iterator
	li, ri int
	elem   int
	negate bool
}

func (it *selectIter) Next() (rel.Tuple, Lineage, bool, error) {
	for {
		t, lin, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, nil, false, err
		}
		rhs := it.elem
		if it.ri >= 0 {
			rhs = t[it.ri]
		}
		if (t[it.li] == rhs) != it.negate {
			return t, lin, true, nil
		}
	}
}

func (it *selectIter) Close() error { return it.in.Close() }

// projectIter narrows tuples and deduplicates; the lineage of an
// output row is the first witness seen in stream order (deterministic
// for a deterministic source).
type projectIter struct {
	in   Iterator
	idx  []int
	seen map[uint64]struct{}
}

func (it *projectIter) Next() (rel.Tuple, Lineage, bool, error) {
	for {
		t, lin, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, nil, false, err
		}
		p := make(rel.Tuple, len(it.idx))
		for i, j := range it.idx {
			p[i] = t[j]
		}
		k := p.Key()
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		return p, lin, true, nil
	}
}

func (it *projectIter) Close() error { return it.in.Close() }

// joinIter hash-joins: the right input is drained into an in-memory
// table on first Next (build side — put the smaller input on the
// right), then the left input streams through it one tuple at a time.
type joinIter struct {
	l, r   Iterator
	lKey   []int
	rKey   []int
	rExtra []int

	built   bool
	table   map[uint64][]joinRow
	pending []joinRow
	curT    rel.Tuple
	curLin  Lineage
}

type joinRow struct {
	t   rel.Tuple
	lin Lineage
}

func packKey(t rel.Tuple, idx []int) uint64 {
	var k uint64
	for _, i := range idx {
		k = k<<16 | uint64(uint16(t[i]))
	}
	return k
}

func (it *joinIter) Next() (rel.Tuple, Lineage, bool, error) {
	if !it.built {
		it.table = map[uint64][]joinRow{}
		for {
			t, lin, ok, err := it.r.Next()
			if err != nil {
				return nil, nil, false, err
			}
			if !ok {
				break
			}
			k := packKey(t, it.rKey)
			it.table[k] = append(it.table[k], joinRow{t: t, lin: lin})
		}
		if err := it.r.Close(); err != nil {
			return nil, nil, false, err
		}
		it.built = true
	}
	for {
		if len(it.pending) > 0 {
			m := it.pending[0]
			it.pending = it.pending[1:]
			joined := make(rel.Tuple, 0, len(it.curT)+len(it.rExtra))
			joined = append(joined, it.curT...)
			for _, i := range it.rExtra {
				joined = append(joined, m.t[i])
			}
			lin := make(Lineage, 0, len(it.curLin)+len(m.lin))
			lin = append(lin, it.curLin...)
			lin = append(lin, m.lin...)
			return joined, lin, true, nil
		}
		t, lin, ok, err := it.l.Next()
		if err != nil || !ok {
			return nil, nil, false, err
		}
		it.curT, it.curLin = t, lin
		it.pending = it.table[packKey(t, it.lKey)]
	}
}

func (it *joinIter) Close() error {
	err := it.l.Close()
	if e := it.r.Close(); err == nil {
		err = e
	}
	return err
}

// unionIter streams the left input (recording keys), then the right
// input minus what the left already produced.
type unionIter struct {
	l, r    Iterator
	seen    map[uint64]struct{}
	onRight bool
}

func (it *unionIter) Next() (rel.Tuple, Lineage, bool, error) {
	for {
		var t rel.Tuple
		var lin Lineage
		var ok bool
		var err error
		if !it.onRight {
			t, lin, ok, err = it.l.Next()
			if err != nil {
				return nil, nil, false, err
			}
			if !ok {
				it.onRight = true
				continue
			}
		} else {
			t, lin, ok, err = it.r.Next()
			if err != nil || !ok {
				return nil, nil, false, err
			}
		}
		k := t.Key()
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		return t, lin, true, nil
	}
}

func (it *unionIter) Close() error {
	err := it.l.Close()
	if e := it.r.Close(); err == nil {
		err = e
	}
	return err
}

// diffIter drains the right input into a key set on first Next, then
// streams left tuples absent from it. Lineage is the left witness
// (the positive part; ToFormula carries the negation for engines).
type diffIter struct {
	l, r  Iterator
	built bool
	right map[uint64]struct{}
}

func (it *diffIter) Next() (rel.Tuple, Lineage, bool, error) {
	if !it.built {
		it.right = map[uint64]struct{}{}
		for {
			t, _, ok, err := it.r.Next()
			if err != nil {
				return nil, nil, false, err
			}
			if !ok {
				break
			}
			it.right[t.Key()] = struct{}{}
		}
		if err := it.r.Close(); err != nil {
			return nil, nil, false, err
		}
		it.built = true
	}
	for {
		t, lin, ok, err := it.l.Next()
		if err != nil || !ok {
			return nil, nil, false, err
		}
		if _, drop := it.right[t.Key()]; drop {
			continue
		}
		return t, lin, true, nil
	}
}

func (it *diffIter) Close() error {
	err := it.l.Close()
	if e := it.r.Close(); err == nil {
		err = e
	}
	return err
}
