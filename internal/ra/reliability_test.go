package ra

import (
	"context"
	"math/big"
	"testing"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// TestRAReliabilityEndToEnd compiles an SPJ query to FO and runs the
// paper's reliability engines on it: the whole point of the ra package.
func TestRAReliabilityEndToEnd(t *testing.T) {
	s := companyDB()
	db := unreliable.New(s)
	// The assignment of employee 0 to dept 4 was read from a blurry scan.
	db.MustSetError(rel.GroundAtom{Rel: "Emp", Args: rel.Tuple{0, 4}}, big.NewRat(1, 5))
	// Star(1) might be a data-entry mistake.
	db.MustSetError(rel.GroundAtom{Rel: "Star", Args: rel.Tuple{1}}, big.NewRat(1, 10))

	// Query: ids of starred employees of dept 4.
	e := Project{
		From: Join{
			L: Select{From: emp(), Attr: "d", Elem: 4},
			R: star(),
		},
		Attrs: []string{"e"},
	}
	f, schema, err := ToFormula(s, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 1 {
		t.Fatalf("schema %v", schema)
	}
	// Observed answer: employee 1 (starred, dept 4).
	res, err := Eval(s, e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(rel.Tuple{1}) {
		t.Fatalf("observed answer %v", res.Rows())
	}
	// Reliability, exactly, via two engines.
	exact, err := core.WorldEnum(context.Background(), db, f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaBDD, err := core.LineageBDD(context.Background(), db, f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.H.Cmp(viaBDD.H) != 0 {
		t.Fatalf("engines disagree: %v vs %v", exact.H, viaBDD.H)
	}
	// Hand computation: answer tuple (1) flips iff Star(1) flips
	// (Emp(1,4) is certain): probability 1/10. No other tuple can enter
	// (only Emp(0,4) is uncertain and Star(0) certainly false). So
	// H = 1/10.
	if exact.H.Cmp(big.NewRat(1, 10)) != 0 {
		t.Errorf("H = %v, want 1/10", exact.H)
	}
	// The dispatcher handles the compiled query too.
	auto, err := core.Reliability(context.Background(), db, f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.H.Cmp(exact.H) != 0 {
		t.Error("dispatcher result differs")
	}
	// Class check: SPJ compiles into the existential fragment.
	if cls := logic.Classify(f); cls == logic.ClassFirstOrder || cls == logic.ClassSecondOrder {
		t.Errorf("SPJ query classified %v", cls)
	}
}
