// Package ra implements a relational algebra (select / project / rename
// / natural join / union / difference) over the relational substrate,
// with named attributes. Expressions evaluate directly on a structure
// and also compile to first-order formulas (one formula per output
// tuple shape), so every reliability engine of the core package applies
// to RA queries unchanged — SQL-style queries get the paper's
// reliability guarantees for free. Evaluation and compilation are
// cross-checked against each other in the tests.
package ra

import (
	"fmt"
	"sort"
	"strings"

	"qrel/internal/logic"
	"qrel/internal/rel"
)

// Expr is a relational algebra expression. Every expression has a
// schema: an ordered list of distinct attribute names.
type Expr interface {
	fmt.Stringer
	// Schema returns the output attribute names in order.
	Schema(db *rel.Structure) ([]string, error)
	isExpr()
}

// Base is a database relation with attribute names for its columns.
type Base struct {
	Rel   string
	Attrs []string
}

// Select filters by an equality condition between two attributes or an
// attribute and a constant element.
type Select struct {
	From Expr
	// Attr is the left-hand attribute.
	Attr string
	// Other is the right-hand attribute; used when Elem < 0.
	Other string
	// Elem is the right-hand constant element when ≥ 0.
	Elem int
	// Negate selects inequality instead.
	Negate bool
}

// Project keeps the listed attributes (deduplicating rows).
type Project struct {
	From  Expr
	Attrs []string
}

// Rename renames one attribute.
type Rename struct {
	From     Expr
	Old, New string
}

// Join is the natural join (on all shared attributes).
type Join struct {
	L, R Expr
}

// Union is set union; schemas must match exactly.
type Union struct {
	L, R Expr
}

// Diff is set difference; schemas must match exactly.
type Diff struct {
	L, R Expr
}

func (Base) isExpr()    {}
func (Select) isExpr()  {}
func (Project) isExpr() {}
func (Rename) isExpr()  {}
func (Join) isExpr()    {}
func (Union) isExpr()   {}
func (Diff) isExpr()    {}

// String renders the expression in a compact algebra syntax.
func (e Base) String() string { return e.Rel + "(" + strings.Join(e.Attrs, ",") + ")" }

func (e Select) String() string {
	op := "="
	if e.Negate {
		op = "!="
	}
	rhs := e.Other
	if e.Elem >= 0 {
		rhs = fmt.Sprint(e.Elem)
	}
	return fmt.Sprintf("select[%s%s%s](%s)", e.Attr, op, rhs, e.From)
}

func (e Project) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(e.Attrs, ","), e.From)
}

func (e Rename) String() string { return fmt.Sprintf("rename[%s->%s](%s)", e.Old, e.New, e.From) }
func (e Join) String() string   { return fmt.Sprintf("(%s join %s)", e.L, e.R) }
func (e Union) String() string  { return fmt.Sprintf("(%s union %s)", e.L, e.R) }
func (e Diff) String() string   { return fmt.Sprintf("(%s minus %s)", e.L, e.R) }

// Schema implements Expr.
func (e Base) Schema(db *rel.Structure) ([]string, error) {
	r := db.Rel(e.Rel)
	if r == nil {
		return nil, fmt.Errorf("ra: unknown relation %q", e.Rel)
	}
	if r.Arity != len(e.Attrs) {
		return nil, fmt.Errorf("ra: relation %s has arity %d, %d attributes given", e.Rel, r.Arity, len(e.Attrs))
	}
	if err := distinct(e.Attrs); err != nil {
		return nil, err
	}
	return append([]string(nil), e.Attrs...), nil
}

// Schema implements Expr.
func (e Select) Schema(db *rel.Structure) ([]string, error) {
	s, err := e.From.Schema(db)
	if err != nil {
		return nil, err
	}
	if !has(s, e.Attr) {
		return nil, fmt.Errorf("ra: select attribute %q not in schema %v", e.Attr, s)
	}
	if e.Elem < 0 {
		if !has(s, e.Other) {
			return nil, fmt.Errorf("ra: select attribute %q not in schema %v", e.Other, s)
		}
	} else if e.Elem >= db.N {
		return nil, fmt.Errorf("ra: select constant %d outside universe [0,%d)", e.Elem, db.N)
	}
	return s, nil
}

// Schema implements Expr.
func (e Project) Schema(db *rel.Structure) ([]string, error) {
	s, err := e.From.Schema(db)
	if err != nil {
		return nil, err
	}
	if err := distinct(e.Attrs); err != nil {
		return nil, err
	}
	if len(e.Attrs) == 0 {
		return nil, fmt.Errorf("ra: projection onto an empty attribute list")
	}
	for _, a := range e.Attrs {
		if !has(s, a) {
			return nil, fmt.Errorf("ra: projected attribute %q not in schema %v", a, s)
		}
	}
	return append([]string(nil), e.Attrs...), nil
}

// Schema implements Expr.
func (e Rename) Schema(db *rel.Structure) ([]string, error) {
	s, err := e.From.Schema(db)
	if err != nil {
		return nil, err
	}
	if !has(s, e.Old) {
		return nil, fmt.Errorf("ra: rename source %q not in schema %v", e.Old, s)
	}
	if has(s, e.New) {
		return nil, fmt.Errorf("ra: rename target %q already in schema %v", e.New, s)
	}
	out := make([]string, len(s))
	for i, a := range s {
		if a == e.Old {
			out[i] = e.New
		} else {
			out[i] = a
		}
	}
	return out, nil
}

// Schema implements Expr. The join schema is L's attributes followed by
// R's non-shared ones.
func (e Join) Schema(db *rel.Structure) ([]string, error) {
	ls, err := e.L.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := e.R.Schema(db)
	if err != nil {
		return nil, err
	}
	out := append([]string(nil), ls...)
	for _, a := range rs {
		if !has(ls, a) {
			out = append(out, a)
		}
	}
	return out, nil
}

// Schema implements Expr.
func (e Union) Schema(db *rel.Structure) ([]string, error) { return sameSchema(db, e.L, e.R, "union") }

// Schema implements Expr.
func (e Diff) Schema(db *rel.Structure) ([]string, error) { return sameSchema(db, e.L, e.R, "minus") }

func sameSchema(db *rel.Structure, l, r Expr, op string) ([]string, error) {
	ls, err := l.Schema(db)
	if err != nil {
		return nil, err
	}
	rs, err := r.Schema(db)
	if err != nil {
		return nil, err
	}
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("ra: %s of schemas %v and %v", op, ls, rs)
	}
	for i := range ls {
		if ls[i] != rs[i] {
			return nil, fmt.Errorf("ra: %s of schemas %v and %v", op, ls, rs)
		}
	}
	return ls, nil
}

func has(s []string, a string) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

func distinct(attrs []string) error {
	seen := map[string]struct{}{}
	for _, a := range attrs {
		if a == "" {
			return fmt.Errorf("ra: empty attribute name")
		}
		if _, dup := seen[a]; dup {
			return fmt.Errorf("ra: duplicate attribute %q", a)
		}
		seen[a] = struct{}{}
	}
	return nil
}

// Result is an evaluated expression: a schema and a set of rows.
type Result struct {
	Schema []string
	rows   map[uint64]rel.Tuple
}

// Rows returns the rows as tuples in schema order, sorted.
func (r *Result) Rows() []rel.Tuple {
	keys := make([]uint64, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]rel.Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.rows) }

// Contains reports whether the tuple (in schema order) is in the
// result.
func (r *Result) Contains(t rel.Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

func newResult(schema []string) *Result {
	return &Result{Schema: schema, rows: map[uint64]rel.Tuple{}}
}

func (r *Result) add(t rel.Tuple) { r.rows[t.Key()] = t.Clone() }

// Eval evaluates the expression on the structure. It is a thin
// materializing wrapper over the streaming iterators: the plan built
// by Build drains into a Result, so the in-memory path and the paged
// store run the identical operator code.
func Eval(db *rel.Structure, e Expr) (*Result, error) {
	return EvalOn(StructureSource(db), e)
}

// EvalOn evaluates the expression against any Source, materializing
// the streamed rows into a Result.
func EvalOn(src Source, e Expr) (*Result, error) {
	it, schema, err := Build(src, e)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := newResult(schema)
	for {
		t, _, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.add(t)
	}
}

func index(schema []string, a string) int {
	for i, x := range schema {
		if x == a {
			return i
		}
	}
	return -1
}

func sharedAttrs(l, r []string) []string {
	var out []string
	for _, a := range l {
		if has(r, a) {
			out = append(out, a)
		}
	}
	return out
}

// ToFormula compiles the expression into a first-order formula whose
// free variables are exactly the schema attributes (as logic variables
// of the same names): a tuple ā is in the RA result iff the formula
// holds under the environment mapping the schema to ā. Projection
// introduces existential quantification over the dropped attributes;
// difference introduces negation, so an RA query with Diff compiles to
// a non-conjunctive formula exactly as the theory predicts.
func ToFormula(db *rel.Structure, e Expr) (logic.Formula, []string, error) {
	schema, err := e.Schema(db)
	if err != nil {
		return nil, nil, err
	}
	f, err := toFormula(db, e)
	if err != nil {
		return nil, nil, err
	}
	return f, schema, nil
}

func toFormula(db *rel.Structure, e Expr) (logic.Formula, error) {
	switch x := e.(type) {
	case Base:
		args := make([]logic.Term, len(x.Attrs))
		for i, a := range x.Attrs {
			args[i] = logic.Var(a)
		}
		return logic.Atom{Rel: x.Rel, Args: args}, nil
	case Select:
		inner, err := toFormula(db, x.From)
		if err != nil {
			return nil, err
		}
		var rhs logic.Term
		if x.Elem >= 0 {
			rhs = logic.Elem(x.Elem)
		} else {
			rhs = logic.Var(x.Other)
		}
		var cond logic.Formula = logic.Eq{L: logic.Var(x.Attr), R: rhs}
		if x.Negate {
			cond = logic.Not{F: cond}
		}
		return logic.And{inner, cond}, nil
	case Project:
		innerSchema, err := x.From.Schema(db)
		if err != nil {
			return nil, err
		}
		inner, err := toFormula(db, x.From)
		if err != nil {
			return nil, err
		}
		var dropped []string
		for _, a := range innerSchema {
			if !has(x.Attrs, a) {
				dropped = append(dropped, a)
			}
		}
		if len(dropped) == 0 {
			return inner, nil
		}
		return logic.Exists{Vars: dropped, Body: inner}, nil
	case Rename:
		inner, err := toFormula(db, x.From)
		if err != nil {
			return nil, err
		}
		return logic.Substitute(inner, map[string]logic.Term{x.Old: logic.Var(x.New)}), nil
	case Join:
		l, err := toFormula(db, x.L)
		if err != nil {
			return nil, err
		}
		r, err := toFormula(db, x.R)
		if err != nil {
			return nil, err
		}
		return logic.And{l, r}, nil
	case Union:
		l, err := toFormula(db, x.L)
		if err != nil {
			return nil, err
		}
		r, err := toFormula(db, x.R)
		if err != nil {
			return nil, err
		}
		return logic.Or{l, r}, nil
	case Diff:
		l, err := toFormula(db, x.L)
		if err != nil {
			return nil, err
		}
		r, err := toFormula(db, x.R)
		if err != nil {
			return nil, err
		}
		return logic.And{l, logic.Not{F: r}}, nil
	default:
		return nil, fmt.Errorf("ra: unknown expression %T", e)
	}
}
