package ra

import (
	"testing"

	"qrel/internal/rel"
)

// decodeExpr consumes fuzz bytes to build an RA expression over the
// company schema. Every byte string decodes to some expression; many
// decode to deliberately invalid ones (unknown attributes, schema
// mismatches, out-of-universe constants) so the error paths are fuzzed
// alongside the happy path.
func decodeExpr(db *rel.Structure, data []byte, pos *int, depth int) Expr {
	next := func() int {
		if *pos >= len(data) {
			return 0
		}
		b := data[*pos]
		*pos++
		return int(b)
	}
	bases := []Expr{emp(), mgr(), star()}
	if depth == 0 {
		return bases[next()%3]
	}
	switch next() % 8 {
	case 0, 1:
		return bases[next()%3]
	case 2:
		from := decodeExpr(db, data, pos, depth-1)
		s := Select{From: from, Attr: pickAttr(db, from, next()), Elem: -1}
		if next()%2 == 0 {
			s.Elem = next() % 8 // may exceed the universe: an error path
		} else {
			s.Other = pickAttr(db, from, next())
		}
		s.Negate = next()%2 == 1
		return s
	case 3:
		from := decodeExpr(db, data, pos, depth-1)
		return Project{From: from, Attrs: []string{pickAttr(db, from, next())}}
	case 4:
		from := decodeExpr(db, data, pos, depth-1)
		return Rename{From: from, Old: pickAttr(db, from, next()), New: renameTarget(next())}
	case 5:
		return Join{L: decodeExpr(db, data, pos, depth-1), R: decodeExpr(db, data, pos, depth-1)}
	case 6:
		l := decodeExpr(db, data, pos, depth-1)
		return Union{L: l, R: l}
	default:
		l := decodeExpr(db, data, pos, depth-1)
		return Diff{L: l, R: l}
	}
}

// pickAttr chooses an attribute of e's schema, or a placeholder when
// the sub-expression has no valid schema (its Eval will error anyway).
func pickAttr(db *rel.Structure, e Expr, b int) string {
	s, err := e.Schema(db)
	if err != nil || len(s) == 0 {
		return "e"
	}
	return s[b%len(s)]
}

// renameTarget sometimes collides with existing attributes (an error
// path) and sometimes introduces a fresh name.
func renameTarget(b int) string {
	names := []string{"w", "e", "d", "b", "ww"}
	return names[b%len(names)]
}

// FuzzEvalMatchesFormula decodes random algebra expressions and checks
// the package's central contract: Eval never panics, and whenever it
// succeeds, the first-order compilation (ToFormula + logic.Eval over
// all candidate tuples) computes exactly the same relation.
func FuzzEvalMatchesFormula(f *testing.F) {
	seeds := [][]byte{
		{0},
		{1, 2},
		{2, 0, 0, 1, 3},
		{3, 5, 0, 1, 2},
		{4, 0, 1, 0, 3},
		{5, 0, 1},
		{6, 2},
		{7, 3, 0, 1, 5, 2, 0},
		{2, 5, 0, 1, 0, 1, 9, 1},
		{5, 4, 0, 1, 0, 0, 4, 1, 0, 1, 2},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db := companyDB()
		pos := 0
		e := decodeExpr(db, data, &pos, 3)
		res, err := Eval(db, e)
		if err != nil {
			return // invalid expressions must error, never panic
		}
		want := evalViaFormula(t, db, e)
		if res.Len() != len(want) {
			t.Fatalf("%v: Eval has %d rows, formula compilation %d", e, res.Len(), len(want))
		}
		for _, row := range res.Rows() {
			if !want[row.Key()] {
				t.Fatalf("%v: Eval row %v absent from the formula's relation", e, row)
			}
		}
	})
}
