package ra

import (
	"fmt"
	"sort"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/testutil"
)

// drain pulls an iterator dry, returning tuples and lineages in
// stream order.
func drain(t *testing.T, it Iterator) ([]rel.Tuple, []Lineage) {
	t.Helper()
	var ts []rel.Tuple
	var ls []Lineage
	for {
		tp, lin, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return ts, ls
		}
		ts = append(ts, tp)
		ls = append(ls, lin)
	}
}

func lineageKey(l Lineage) string {
	parts := make([]string, len(l))
	for i, a := range l {
		parts[i] = fmt.Sprintf("%s%v", a.Rel, a.Args)
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

func TestScanLineageIsOwnAtom(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	it, _, err := Build(StructureSource(db), emp())
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	ts, ls := drain(t, it)
	if len(ts) != 3 {
		t.Fatalf("scan yielded %d tuples", len(ts))
	}
	for i, tp := range ts {
		want := Lineage{{Rel: "Emp", Args: tp}}
		if lineageKey(ls[i]) != lineageKey(want) {
			t.Errorf("tuple %v: lineage %v, want %v", tp, ls[i], want)
		}
	}
}

func TestJoinLineageConcatenates(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	it, schema, err := Build(StructureSource(db), Join{L: emp(), R: mgr()})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if len(schema) != 3 {
		t.Fatalf("join schema %v", schema)
	}
	ts, ls := drain(t, it)
	found := false
	for i, tp := range ts {
		if tp.Equal(rel.Tuple{0, 4, 3}) {
			found = true
			want := Lineage{
				{Rel: "Emp", Args: rel.Tuple{0, 4}},
				{Rel: "Mgr", Args: rel.Tuple{4, 3}},
			}
			if lineageKey(ls[i]) != lineageKey(want) {
				t.Errorf("lineage %v, want %v", ls[i], want)
			}
		}
	}
	if !found {
		t.Fatal("join missing (0,4,3)")
	}
}

func TestProjectLineageIsFirstWitness(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	// Project Emp onto d: 4 appears for employees 0 and 1; the witness
	// must be the first in scan (= sorted) order, deterministically.
	it, _, err := Build(StructureSource(db), Project{From: emp(), Attrs: []string{"d"}})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	ts, ls := drain(t, it)
	if len(ts) != 2 {
		t.Fatalf("project yielded %v", ts)
	}
	for i, tp := range ts {
		if tp.Equal(rel.Tuple{4}) {
			want := Lineage{{Rel: "Emp", Args: rel.Tuple{0, 4}}} // (0,4) sorts before (1,4)
			if lineageKey(ls[i]) != lineageKey(want) {
				t.Errorf("witness for d=4: %v, want %v", ls[i], want)
			}
		}
	}
}

func TestLineageFormula(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	atomA := rel.GroundAtom{Rel: "Emp", Args: rel.Tuple{0, 4}}
	atomB := rel.GroundAtom{Rel: "Mgr", Args: rel.Tuple{4, 3}}
	// Duplicates collapse and order is canonical.
	f1 := Lineage{atomB, atomA, atomB}.Formula()
	f2 := Lineage{atomA, atomB}.Formula()
	if f1.String() != f2.String() {
		t.Errorf("formula not canonical: %q vs %q", f1, f2)
	}
	and, ok := f1.(logic.And)
	if !ok || len(and) != 2 {
		t.Fatalf("expected a 2-way conjunction, got %q", f1)
	}
	// A single atom stays bare.
	if _, ok := (Lineage{atomA}).Formula().(logic.And); ok {
		t.Error("singleton lineage wrapped in a conjunction")
	}
	if (Lineage{}).Formula() == nil {
		t.Error("empty lineage must still produce a formula")
	}
}

func TestEvalOnMatchesEval(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	queries := []Expr{
		emp(),
		Select{From: emp(), Attr: "d", Elem: 4},
		Select{From: emp(), Attr: "e", Other: "d", Elem: -1, Negate: true},
		Project{From: emp(), Attrs: []string{"d"}},
		Rename{From: emp(), Old: "e", New: "worker"},
		Join{L: emp(), R: mgr()},
		Join{L: Join{L: emp(), R: mgr()}, R: star()},
		Union{L: star(), R: Project{From: Select{From: emp(), Attr: "d", Elem: 5}, Attrs: []string{"e"}}},
		Diff{L: star(), R: Project{From: Select{From: emp(), Attr: "d", Elem: 5}, Attrs: []string{"e"}}},
	}
	for _, q := range queries {
		a, err := Eval(db, q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		b, err := EvalOn(StructureSource(db), q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if a.Len() != b.Len() {
			t.Errorf("%v: Eval %d rows, EvalOn %d rows", q, a.Len(), b.Len())
		}
		for _, row := range a.Rows() {
			if !b.Contains(row) {
				t.Errorf("%v: row %v missing from EvalOn result", q, row)
			}
		}
	}
}

func TestOutputsAreSets(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	queries := []Expr{
		Project{From: emp(), Attrs: []string{"d"}},
		Union{L: star(), R: star()},
		Join{L: emp(), R: mgr()},
	}
	for _, q := range queries {
		it, _, err := Build(StructureSource(db), q)
		if err != nil {
			t.Fatal(err)
		}
		ts, _ := drain(t, it)
		it.Close()
		seen := make(map[uint64]bool)
		for _, tp := range ts {
			k := tp.Key()
			if seen[k] {
				t.Errorf("%v: duplicate output tuple %v", q, tp)
			}
			seen[k] = true
		}
	}
}

func TestCloseIsIdempotentAndEarly(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	it, _, err := Build(StructureSource(db), Join{L: emp(), R: mgr()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	// Close mid-stream, then again.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := it.Next(); ok {
		t.Error("Next after Close yielded a tuple")
	}
}

func TestBuildSchemaErrors(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := companyDB()
	bad := []Expr{
		Base{Rel: "Nope", Attrs: []string{"x"}},
		Join{L: emp(), R: Base{Rel: "Nope", Attrs: []string{"x"}}},
		Union{L: emp(), R: star()},
	}
	for _, q := range bad {
		if _, _, err := Build(StructureSource(db), q); err == nil {
			t.Errorf("%v: Build accepted an invalid plan", q)
		}
	}
}
