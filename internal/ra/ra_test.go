package ra

import (
	"math/rand"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/rel"
)

// companyDB: Emp(emp, dept), Mgr(dept, boss), Star(emp).
func companyDB() *rel.Structure {
	voc := rel.MustVocabulary(
		rel.RelSym{Name: "Emp", Arity: 2},
		rel.RelSym{Name: "Mgr", Arity: 2},
		rel.RelSym{Name: "Star", Arity: 1},
	)
	s := rel.MustStructure(6, voc)
	s.MustAdd("Emp", 0, 4)
	s.MustAdd("Emp", 1, 4)
	s.MustAdd("Emp", 2, 5)
	s.MustAdd("Mgr", 4, 3)
	s.MustAdd("Mgr", 5, 0)
	s.MustAdd("Star", 1)
	s.MustAdd("Star", 2)
	return s
}

func emp() Base  { return Base{Rel: "Emp", Attrs: []string{"e", "d"}} }
func mgr() Base  { return Base{Rel: "Mgr", Attrs: []string{"d", "b"}} }
func star() Base { return Base{Rel: "Star", Attrs: []string{"e"}} }

func TestBaseAndSchemaErrors(t *testing.T) {
	db := companyDB()
	res, err := Eval(db, emp())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("Emp rows %d", res.Len())
	}
	bad := []Expr{
		Base{Rel: "Nope", Attrs: []string{"x"}},
		Base{Rel: "Emp", Attrs: []string{"x"}},
		Base{Rel: "Emp", Attrs: []string{"x", "x"}},
		Base{Rel: "Emp", Attrs: []string{"", "y"}},
		Select{From: emp(), Attr: "zz", Elem: 0},
		Select{From: emp(), Attr: "e", Other: "zz", Elem: -1},
		Select{From: emp(), Attr: "e", Elem: 99},
		Project{From: emp(), Attrs: []string{"zz"}},
		Project{From: emp(), Attrs: nil},
		Rename{From: emp(), Old: "zz", New: "w"},
		Rename{From: emp(), Old: "e", New: "d"},
		Union{L: emp(), R: star()},
		Diff{L: emp(), R: mgr()},
	}
	for _, e := range bad {
		if _, err := Eval(db, e); err == nil {
			t.Errorf("%v: expected error", e)
		}
	}
}

func TestSelectProjectJoin(t *testing.T) {
	db := companyDB()
	// Employees in department 4.
	sel, err := Eval(db, Select{From: emp(), Attr: "d", Elem: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Errorf("select rows %d", sel.Len())
	}
	// Their ids.
	proj, err := Eval(db, Project{From: Select{From: emp(), Attr: "d", Elem: 4}, Attrs: []string{"e"}})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 2 || !proj.Contains(rel.Tuple{0}) || !proj.Contains(rel.Tuple{1}) {
		t.Errorf("project rows %v", proj.Rows())
	}
	// Natural join Emp ⋈ Mgr on d: employee with their boss.
	join, err := Eval(db, Join{L: emp(), R: mgr()})
	if err != nil {
		t.Fatal(err)
	}
	if join.Len() != 3 {
		t.Errorf("join rows %v", join.Rows())
	}
	// Schema is e, d, b.
	if got := join.Schema; len(got) != 3 || got[0] != "e" || got[1] != "d" || got[2] != "b" {
		t.Errorf("join schema %v", got)
	}
	if !join.Contains(rel.Tuple{0, 4, 3}) {
		t.Error("join missing (0,4,3)")
	}
	// Self-inequality select: employees whose id differs from their dept.
	neq, err := Eval(db, Select{From: emp(), Attr: "e", Other: "d", Elem: -1, Negate: true})
	if err != nil {
		t.Fatal(err)
	}
	if neq.Len() != 3 {
		t.Errorf("neq rows %v", neq.Rows())
	}
}

func TestUnionDiffRename(t *testing.T) {
	db := companyDB()
	// Starred employees ∪ employees of dept 5 (as unary id sets).
	dept5 := Project{From: Select{From: emp(), Attr: "d", Elem: 5}, Attrs: []string{"e"}}
	u, err := Eval(db, Union{L: star(), R: dept5})
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 { // {1,2} ∪ {2} = {1,2}
		t.Errorf("union rows %v", u.Rows())
	}
	d, err := Eval(db, Diff{L: star(), R: dept5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !d.Contains(rel.Tuple{1}) {
		t.Errorf("diff rows %v", d.Rows())
	}
	// Rename then join on the renamed attribute: bosses who are
	// themselves employees. Mgr(d,b) renamed b→e joined with Star(e).
	r, err := Eval(db, Join{L: Rename{From: mgr(), Old: "b", New: "e"}, R: star()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 { // bosses are 3 and 0; stars are 1 and 2
		t.Errorf("renamed join rows %v", r.Rows())
	}
}

// evalViaFormula computes the RA result through the FO compilation.
func evalViaFormula(t *testing.T, db *rel.Structure, e Expr) map[uint64]bool {
	t.Helper()
	f, schema, err := ToFormula(db, e)
	if err != nil {
		t.Fatal(err)
	}
	// The formula's free variables must be exactly the schema.
	fv := logic.FreeVars(f)
	fvSet := map[string]bool{}
	for _, v := range fv {
		fvSet[v] = true
	}
	for _, a := range schema {
		if !fvSet[a] {
			// A schema attribute can be absent when it is unconstrained;
			// that cannot happen for our expressions (every attribute
			// comes from a base relation), so flag it.
			t.Fatalf("schema attribute %q not free in %v", a, f)
		}
	}
	out := map[uint64]bool{}
	env := logic.Env{}
	rel.ForEachTuple(db.N, len(schema), func(tp rel.Tuple) bool {
		for i, a := range schema {
			env[a] = tp[i]
		}
		ok, err := logic.Eval(db, f, env)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out[tp.Key()] = true
		}
		return true
	})
	return out
}

// randExpr builds a random RA expression over the company schema.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return emp()
		case 1:
			return mgr()
		default:
			return star()
		}
	}
	inner := randExpr(rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return Select{From: inner, Attr: "pick", Elem: rng.Intn(6)}
	case 1:
		return Project{From: inner, Attrs: []string{"pick"}}
	case 2:
		return Rename{From: inner, Old: "pick", New: "w"}
	case 3:
		return Join{L: inner, R: randExpr(rng, depth-1)}
	case 4:
		return Union{L: inner, R: cloneShape(inner)}
	default:
		return Diff{L: inner, R: cloneShape(inner)}
	}
}

// cloneShape returns an expression with the same schema as e (here just
// e itself: union/diff of an expression with itself is schema-safe and
// exercises the operators).
func cloneShape(e Expr) Expr { return e }

// fixAttrs rewrites placeholder attribute names to valid ones for the
// given expression, or reports failure.
func fixAttrs(db *rel.Structure, e Expr, rng *rand.Rand) (Expr, bool) {
	switch x := e.(type) {
	case Base:
		return x, true
	case Select:
		from, ok := fixAttrs(db, x.From, rng)
		if !ok {
			return nil, false
		}
		s, err := from.Schema(db)
		if err != nil {
			return nil, false
		}
		x.From = from
		x.Attr = s[rng.Intn(len(s))]
		x.Other = ""
		if x.Elem < 0 {
			x.Other = s[rng.Intn(len(s))]
		}
		return x, true
	case Project:
		from, ok := fixAttrs(db, x.From, rng)
		if !ok {
			return nil, false
		}
		s, err := from.Schema(db)
		if err != nil {
			return nil, false
		}
		x.From = from
		x.Attrs = []string{s[rng.Intn(len(s))]}
		return x, true
	case Rename:
		from, ok := fixAttrs(db, x.From, rng)
		if !ok {
			return nil, false
		}
		s, err := from.Schema(db)
		if err != nil {
			return nil, false
		}
		x.From = from
		x.Old = s[rng.Intn(len(s))]
		x.New = "w"
		for has(s, x.New) {
			x.New += "w"
		}
		return x, true
	case Join:
		l, ok1 := fixAttrs(db, x.L, rng)
		r, ok2 := fixAttrs(db, x.R, rng)
		if !ok1 || !ok2 {
			return nil, false
		}
		return Join{L: l, R: r}, true
	case Union:
		l, ok := fixAttrs(db, x.L, rng)
		if !ok {
			return nil, false
		}
		return Union{L: l, R: l}, true
	case Diff:
		l, ok := fixAttrs(db, x.L, rng)
		if !ok {
			return nil, false
		}
		return Diff{L: l, R: l}, true
	default:
		return nil, false
	}
}

func TestEvalMatchesFormulaCompilation(t *testing.T) {
	// Property: direct RA evaluation and the FO compilation agree on
	// every output tuple, for random expressions.
	rng := rand.New(rand.NewSource(51))
	db := companyDB()
	checked := 0
	for iter := 0; iter < 200; iter++ {
		raw := randExpr(rng, 3)
		e, ok := fixAttrs(db, raw, rng)
		if !ok {
			continue
		}
		schema, err := e.Schema(db)
		if err != nil || len(schema) > 3 {
			continue // oversized joins make the FO sweep slow
		}
		res, err := Eval(db, e)
		if err != nil {
			t.Fatalf("iter %d: eval %v: %v", iter, e, err)
		}
		viaFO := evalViaFormula(t, db, e)
		// Same set of tuples.
		if len(viaFO) != res.Len() {
			t.Fatalf("iter %d: %v: RA %d rows, FO %d rows", iter, e, res.Len(), len(viaFO))
		}
		for _, tp := range res.Rows() {
			if !viaFO[tp.Key()] {
				t.Fatalf("iter %d: %v: tuple %v in RA but not FO", iter, e, tp)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d expressions checked; generator too lossy", checked)
	}
}

func TestDiffCompilesOutOfConjunctive(t *testing.T) {
	// An RA query with difference compiles to a formula with negation —
	// outside the conjunctive fragment, as the theory requires.
	db := companyDB()
	e := Diff{L: star(), R: Project{From: emp(), Attrs: []string{"e"}}}
	f, _, err := ToFormula(db, e)
	if err != nil {
		t.Fatal(err)
	}
	if cls := logic.Classify(f); cls == logic.ClassConjunctive || cls == logic.ClassQuantifierFree {
		t.Errorf("difference classified %v", cls)
	}
	// A select-project-join query stays existential-positive.
	spj := Project{From: Join{L: emp(), R: mgr()}, Attrs: []string{"e"}}
	f2, _, err := ToFormula(db, spj)
	if err != nil {
		t.Fatal(err)
	}
	if cls := logic.Classify(f2); cls != logic.ClassConjunctive && cls != logic.ClassExistential && cls != logic.ClassQuantifierFree {
		t.Errorf("SPJ query classified %v", cls)
	}
}

func TestProjectionShadowing(t *testing.T) {
	// Join with a branch that projected away an attribute named like a
	// live one: the bound variable must shadow, not capture.
	db := companyDB()
	// Project Mgr(d,b) onto b, rename b→d: schema [d] but internally ∃d.
	inner := Rename{From: Project{From: mgr(), Attrs: []string{"b"}}, Old: "b", New: "d"}
	e := Join{L: Project{From: emp(), Attrs: []string{"d"}}, R: inner}
	res, err := Eval(db, e)
	if err != nil {
		t.Fatal(err)
	}
	viaFO := evalViaFormula(t, db, e)
	if len(viaFO) != res.Len() {
		t.Fatalf("shadowing broke compilation: RA %v, FO %d rows", res.Rows(), len(viaFO))
	}
}

func TestStrings(t *testing.T) {
	e := Diff{
		L: Project{From: Select{From: emp(), Attr: "d", Elem: 4}, Attrs: []string{"e"}},
		R: star(),
	}
	want := "(project[e](select[d=4](Emp(e,d))) minus Star(e))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	n := Select{From: emp(), Attr: "e", Other: "d", Elem: -1, Negate: true}
	if got := n.String(); got != "select[e!=d](Emp(e,d))" {
		t.Errorf("String = %q", got)
	}
	r := Rename{From: emp(), Old: "e", New: "x"}
	if got := r.String(); got != "rename[e->x](Emp(e,d))" {
		t.Errorf("String = %q", got)
	}
	u := Union{L: star(), R: star()}
	if got := u.String(); got != "(Star(e) union Star(e))" {
		t.Errorf("String = %q", got)
	}
}
