package vm_test

import (
	"math/rand"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/vm"
	"qrel/internal/workload"
)

// FuzzCompiledEval differentially tests the compiler against the tree
// interpreter: for a random query over a random unreliable database
// and a random world, the compiled program — evaluated both through
// the scalar path and through a 64-world batch carrying the world in
// every lane — must agree with logic.Eval on the materialized world.
func FuzzCompiledEval(f *testing.F) {
	f.Add(int64(1), "exists y . E(x,y) & S(y)", uint64(5))
	f.Add(int64(2), "forall x . exists y . E(x,y)", uint64(0))
	f.Add(int64(3), "S(x) & !E(x,x)", uint64(63))
	f.Add(int64(4), "x = y | E(x,y)", uint64(2))
	f.Add(int64(5), "forall x . S(x) -> exists y . E(x,y)", uint64(17))
	f.Add(int64(6), "!(S(0) <-> S(1))", uint64(40))
	f.Fuzz(func(t *testing.T, seed int64, src string, mask uint64) {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomUDB(rng, 3, 6)
		q, err := logic.Parse(src, db.A.Voc)
		if err != nil {
			return
		}
		if logic.AtomCount(q) > 32 {
			return // keep grounding and the eval oracle cheap
		}
		env := logic.Env{}
		for _, v := range logic.FreeVars(q) {
			env[v] = rng.Intn(db.A.N)
		}
		p, err := vm.Compile(db, q, env)
		if err != nil {
			return // non-compilable shapes fall back to the interpreter
		}
		u := db.NumUncertain()
		mask &= 1<<uint(u) - 1
		want, err := logic.Eval(db.World(mask), q, env)
		if err != nil {
			t.Fatalf("interpreter rejected %q after it compiled: %v", src, err)
		}
		stack := p.NewStack()
		if got := p.EvalWorld([]uint64{mask}, stack); got != want {
			t.Fatalf("%q world %b: scalar compiled %v, interpreted %v", src, mask, got, want)
		}
		// The same world in all 64 batch slots must agree in every bit.
		cols := make([]uint64, u)
		for v := 0; v < u; v++ {
			if mask>>uint(v)&1 == 1 {
				cols[v] = ^uint64(0)
			}
		}
		full := ^uint64(0)
		got := p.EvalBatch(cols, full, stack)
		if want && got != full || !want && got != 0 {
			t.Fatalf("%q world %b: batch compiled %#x, interpreted %v", src, mask, got, want)
		}
	})
}
