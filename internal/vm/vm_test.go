package vm_test

import (
	"errors"
	"math/rand"
	"testing"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/prop"
	"qrel/internal/vm"
	"qrel/internal/workload"
)

// randProp draws a random propositional formula over numVars
// variables with the given remaining depth budget.
func randProp(rng *rand.Rand, numVars, depth int) prop.Formula {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return prop.FTrue{}
		case 1:
			return prop.FFalse{}
		default:
			return prop.FVar(rng.Intn(numVars))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return prop.FNot{F: randProp(rng, numVars, depth-1)}
	case 1:
		n := 1 + rng.Intn(3)
		out := make(prop.FAnd, n)
		for i := range out {
			out[i] = randProp(rng, numVars, depth-1)
		}
		return out
	default:
		n := 1 + rng.Intn(3)
		out := make(prop.FOr, n)
		for i := range out {
			out[i] = randProp(rng, numVars, depth-1)
		}
		return out
	}
}

// assignCols packs per-world variable assignments into the column
// layout EvalBatch consumes.
func assignCols(worlds [][]bool, numVars int) []uint64 {
	cols := make([]uint64, numVars)
	for s, a := range worlds {
		for v, b := range a {
			if b {
				cols[v] |= 1 << uint(s)
			}
		}
	}
	return cols
}

// worldBits packs one assignment into the scalar world-bitset layout.
func worldBits(a []bool) []uint64 {
	w := make([]uint64, vm.WorldWords(len(a)))
	for v, b := range a {
		if b {
			w[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return w
}

func TestCompilePropMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const numVars = 11
	for trial := 0; trial < 500; trial++ {
		f := randProp(rng, numVars, 4)
		p, err := vm.CompileProp(f, numVars)
		if err != nil {
			t.Fatalf("compile %v: %v", f, err)
		}
		stack := p.NewStack()
		// A batch of m worlds, m varying over the full 1..64 range.
		m := 1 + rng.Intn(64)
		worlds := make([][]bool, m)
		for s := range worlds {
			a := make([]bool, numVars)
			for v := range a {
				a[v] = rng.Intn(2) == 0
			}
			worlds[s] = a
		}
		cols := assignCols(worlds, numVars)
		full := ^uint64(0) >> uint(64-m)
		got := p.EvalBatch(cols, full, stack)
		if got&^full != 0 {
			t.Fatalf("EvalBatch result %#x has bits outside full %#x for %v", got, full, f)
		}
		for s, a := range worlds {
			want := f.Eval(a)
			if ((got>>uint(s))&1 == 1) != want {
				t.Fatalf("EvalBatch world %d of %v: got %v, want %v", s, f, !want, want)
			}
			if sc := p.EvalWorld(worldBits(a), stack); sc != want {
				t.Fatalf("EvalWorld of %v on %v: got %v, want %v", f, a, sc, want)
			}
		}
	}
}

func TestCompilePropRejectsOutOfRangeVar(t *testing.T) {
	if _, err := vm.CompileProp(prop.FVar(3), 3); err == nil {
		t.Fatal("expected error compiling x3 over 3 variables")
	}
	if _, err := vm.CompileProp(prop.FNot{F: prop.FVar(7)}, 3); err == nil {
		t.Fatal("expected error compiling !x7 over 3 variables")
	}
}

func TestCompilePropSizeBudget(t *testing.T) {
	big := make(prop.FOr, 0, vm.MaxCode)
	for i := 0; i < vm.MaxCode; i++ {
		big = append(big, prop.FVar(0))
	}
	if _, err := vm.CompileProp(big, 1); !errors.Is(err, vm.ErrTooLarge) {
		t.Fatalf("expected vm.ErrTooLarge, got %v", err)
	}
}

// compileQueries is the formula mix the Compile-vs-interpreter tests
// walk: quantifier-free, conjunctive, nested quantifiers, equality,
// implication, and negation shapes.
var compileQueries = []string{
	"E(0,1)",
	"S(x) & !E(x,x)",
	"x = y | E(x,y)",
	"exists y . E(x,y) & S(y)",
	"forall x . exists y . E(x,y)",
	"exists x y . E(x,y) & E(y,x)",
	"forall x . S(x) -> exists y . E(x,y)",
	"!(S(0) <-> S(1))",
}

// envsFor enumerates a few environments binding the free variables of
// f to universe elements of an n-element structure.
func envsFor(f logic.Formula, n int) []logic.Env {
	fv := logic.FreeVars(f)
	if len(fv) == 0 {
		return []logic.Env{{}}
	}
	out := []logic.Env{}
	for e := 0; e < n; e++ {
		env := logic.Env{}
		for i, v := range fv {
			env[v] = (e + i) % n
		}
		out = append(out, env)
	}
	return out
}

func TestCompileMatchesLogicEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		db := workload.RandomUDB(rng, 3, 5)
		u := db.NumUncertain()
		if u > 60 {
			t.Fatalf("test db has %d uncertain atoms, want <= 60", u)
		}
		comp := vm.NewCompiler(db)
		for _, src := range compileQueries {
			f, err := logic.Parse(src, db.A.Voc)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			for _, env := range envsFor(f, db.A.N) {
				p, err := comp.Compile(f, env)
				if err != nil {
					t.Fatalf("compile %q: %v", src, err)
				}
				stack := p.NewStack()
				for mask := uint64(0); mask < 1<<uint(u) && mask < 128; mask++ {
					world := db.World(mask)
					want, err := logic.Eval(world, f, env)
					if err != nil {
						t.Fatalf("eval %q: %v", src, err)
					}
					bits := []uint64{mask}
					if got := p.EvalWorld(bits, stack); got != want {
						t.Fatalf("%q env %v world %b: compiled %v, interpreted %v", src, env, mask, got, want)
					}
					cols := make([]uint64, u)
					for v := 0; v < u; v++ {
						cols[v] = (mask >> uint(v)) & 1
					}
					if got := p.EvalBatch(cols, 1, stack) == 1; got != want {
						t.Fatalf("%q env %v world %b: batch %v, interpreted %v", src, env, mask, got, want)
					}
				}
			}
		}
	}
}

func TestCompileRejectsSecondOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := workload.RandomUDB(rng, 3, 2)
	f, err := logic.Parse("existsrel C/1 . forall x . C(x) | S(x)", db.A.Voc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := vm.Compile(db, f, nil); err == nil {
		t.Fatal("expected second-order formula to be rejected")
	}
}

func TestCompileFaultSiteForcesFallback(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(1))
	db := workload.RandomUDB(rng, 3, 2)
	f, err := logic.Parse("exists x . S(x)", db.A.Voc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	injected := errors.New("injected compile failure")
	faultinject.Enable(faultinject.SiteVMCompile, faultinject.Fault{Err: injected})
	if _, err := vm.Compile(db, f, nil); !errors.Is(err, injected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	faultinject.Reset()
	if _, err := vm.Compile(db, f, nil); err != nil {
		t.Fatalf("compile after reset: %v", err)
	}
}

func TestFirstSatisfiedHits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const numVars = 8
	for trial := 0; trial < 300; trial++ {
		d := workload.RandomKDNF(rng, numVars, 1+rng.Intn(6), 1+rng.Intn(3))
		norm := make([]prop.Term, 0, len(d.Terms))
		for _, tm := range d.Terms {
			nt, sat := tm.Normalize()
			if sat {
				norm = append(norm, nt)
			}
		}
		if len(norm) == 0 {
			continue
		}
		m := 1 + rng.Intn(64)
		worlds := make([][]bool, m)
		pickedIdx := make([]int, m)
		picked := make([]uint64, len(norm))
		for s := range worlds {
			a := make([]bool, numVars)
			for v := range a {
				a[v] = rng.Intn(2) == 0
			}
			i := rng.Intn(len(norm))
			for _, l := range norm[i] {
				a[l.Var] = !l.Neg
			}
			worlds[s] = a
			pickedIdx[s] = i
			picked[i] |= 1 << uint(s)
		}
		cols := assignCols(worlds, numVars)
		full := ^uint64(0) >> uint(64-m)
		hits := vm.FirstSatisfiedHits(norm, cols, picked, full)
		for s, a := range worlds {
			first := -1
			for i, tm := range norm {
				if tm.Eval(a) {
					first = i
					break
				}
			}
			want := first == pickedIdx[s]
			if got := (hits>>uint(s))&1 == 1; got != want {
				t.Fatalf("world %d: bit-parallel hit %v, scalar %v (first=%d picked=%d)", s, got, want, first, pickedIdx[s])
			}
		}
	}
}
