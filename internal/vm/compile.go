package vm

import (
	"fmt"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/prop"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Compiler lowers first-order formulas over one unreliable database
// to bytecode programs over its uncertain-atom index space. The
// atom-resolution maps are built once; engines that compile one
// program per answer tuple reuse them across every tuple's Compile.
type Compiler struct {
	db        *unreliable.DB
	uncertain map[rel.AtomKey]int
	sure      map[rel.AtomKey]bool
}

// NewCompiler builds a compiler for db. The database's mu assignment
// must not change between NewCompiler and the last Compile.
func NewCompiler(db *unreliable.DB) *Compiler {
	c := &Compiler{db: db, uncertain: map[rel.AtomKey]int{}, sure: map[rel.AtomKey]bool{}}
	for i, a := range db.UncertainAtoms() {
		c.uncertain[a.Key()] = i
	}
	for _, a := range db.SureFlips() {
		c.sure[a.Key()] = true
	}
	return c
}

// Compile lowers a first-order formula (under an environment binding
// its free variables) to a bytecode program. Grounding resolves every
// atom against the observed structure; atoms whose truth cannot vary
// across worlds — certain atoms and the deterministic mu = 1 flips —
// fold to constants, and each uncertain atom becomes the program
// variable of its flip bit. Because SampleWorldInto represents a
// sampled world as exactly those flip bits, a compiled program
// evaluated against the flip bitset agrees with logic.Eval on the
// materialized world.
//
// Shapes that don't compile (second-order quantifiers, grounding
// blowups past logic.MaxGroundTerms, programs past MaxCode) return an
// error; callers fall back to the interpreter and record the fallback
// in the result trail.
func (c *Compiler) Compile(f logic.Formula, env logic.Env) (*Program, error) {
	if err := faultinject.Hit(faultinject.SiteVMCompile); err != nil {
		return nil, err
	}
	if !logic.Compilable(f) {
		return nil, fmt.Errorf("vm: formula shape does not compile (second-order quantifier)")
	}
	ix := logic.NewAtomIndex()
	pf, err := logic.Ground(c.db.A, f, env, ix)
	if err != nil {
		return nil, fmt.Errorf("vm: grounding: %w", err)
	}
	pf = prop.Fold(c.remap(pf, ix), nil)
	return CompileProp(pf, c.db.NumUncertain())
}

// Compile is the one-shot form of Compiler.Compile.
func Compile(db *unreliable.DB, f logic.Formula, env logic.Env) (*Program, error) {
	return NewCompiler(db).Compile(f, env)
}

// atomFormula resolves one grounded atom to its world-space formula:
// the flip variable (possibly negated) for an uncertain atom, a
// constant otherwise.
func (c *Compiler) atomFormula(a rel.GroundAtom) prop.Formula {
	holds := c.db.A.Holds(a.Rel, a.Args)
	if i, ok := c.uncertain[a.Key()]; ok {
		// World value = observed value XOR flip bit: an atom the
		// observed structure holds is true exactly when its flip bit is
		// clear, and vice versa.
		if holds {
			return prop.FNot{F: prop.FVar(i)}
		}
		return prop.FVar(i)
	}
	if c.sure[a.Key()] {
		holds = !holds
	}
	if holds {
		return prop.FTrue{}
	}
	return prop.FFalse{}
}

// remap substitutes every grounded-atom variable (an AtomIndex id)
// with its world-space resolution. The grounder's ids and the flip
// variable space are unrelated numberings, so this must run before
// CompileProp sees the formula.
func (c *Compiler) remap(f prop.Formula, ix *logic.AtomIndex) prop.Formula {
	switch g := f.(type) {
	case prop.FVar:
		return c.atomFormula(ix.Atom(int(g)))
	case prop.FNot:
		return prop.FNot{F: c.remap(g.F, ix)}
	case prop.FAnd:
		out := make(prop.FAnd, len(g))
		for i, h := range g {
			out[i] = c.remap(h, ix)
		}
		return out
	case prop.FOr:
		out := make(prop.FOr, len(g))
		for i, h := range g {
			out[i] = c.remap(h, ix)
		}
		return out
	default:
		return f
	}
}
