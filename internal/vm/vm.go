// Package vm compiles grounded propositional formulas to a flat
// bytecode evaluated over bitset worlds, replacing the per-sample AST
// walk (logic.Eval / prop.Formula.Eval) on the sampling hot paths.
//
// A program is a stack machine over uint64 values. In scalar mode each
// value is a single truth bit (full = 1); in batch mode each value
// packs up to 64 sampled worlds, one per bit (full = the low-m-bits
// mask for a batch of m worlds), and one pass over the code evaluates
// all of them. Every operation preserves the invariant that stack
// values are subsets of full, which is what makes the short-circuit
// jumps correct in both modes: a conjunction is settled early only
// when *all* worlds in the batch already falsify it (top == 0), a
// disjunction only when all satisfy it (top == full).
//
// Compilation is one-shot per request: the estimator loops then
// evaluate millions of worlds against the same immutable program, so
// programs are safe for concurrent use by multiple lanes as long as
// each lane brings its own stack (NewStack).
package vm

import (
	"errors"
	"fmt"

	"qrel/internal/prop"
)

// Opcodes of the world VM. Operands are packed 64-world masks; the
// "subset of full" invariant above is what every op maintains.
const (
	opFalse  uint8 = iota // push 0
	opTrue                // push full
	opVar                 // push cols[arg]
	opVarNeg              // push cols[arg] ^ full
	opAnd                 // pop b, a; push a & b
	opOr                  // pop b, a; push a | b
	opNot                 // top ^= full
	opJFK                 // jump to arg if top == 0 (keep top)
	opJTK                 // jump to arg if top == full (keep top)
)

// instr is one instruction; arg is a variable index (opVar, opVarNeg)
// or an absolute jump target (opJFK, opJTK).
type instr struct {
	op  uint8
	arg int32
}

// MaxCode bounds the compiled program size; formulas that exceed it
// fall back to the interpreter rather than degrade cache behavior.
const MaxCode = 1 << 16

// ErrTooLarge reports a formula whose compiled form exceeds MaxCode.
var ErrTooLarge = errors.New("vm: compiled program exceeds size budget")

// Program is an immutable compiled formula over variables
// 0..NumVars-1 (the uncertain-atom index space of the database it was
// compiled against).
type Program struct {
	code     []instr
	numVars  int
	maxStack int
}

// NumVars returns the variable-space size the program indexes into.
func (p *Program) NumVars() int { return p.numVars }

// Len returns the instruction count (diagnostics and tests).
func (p *Program) Len() int { return len(p.code) }

// StackNeed returns the operand-stack depth any evaluation of this
// program requires (at least 1); callers evaluating several programs
// can share one stack sized to the maximum.
func (p *Program) StackNeed() int {
	if p.maxStack < 1 {
		return 1
	}
	return p.maxStack
}

// NewStack allocates an operand stack big enough for any evaluation
// of this program. Stacks are per-goroutine scratch: one per lane.
func (p *Program) NewStack() []uint64 {
	return make([]uint64, p.StackNeed())
}

// EvalBatch evaluates the program over a batch of worlds in column
// layout: cols[v] holds the truth bit of variable v in each of the
// packed worlds, full is the batch mask (bit s set iff world s is
// live, always the low-m-bits mask for a batch of m), and stack is a
// scratch stack from NewStack. Bit s of the result is the formula's
// value in world s. Bits of cols above full must be zero.
func (p *Program) EvalBatch(cols []uint64, full uint64, stack []uint64) uint64 {
	sp := 0
	for pc := 0; pc < len(p.code); pc++ {
		in := p.code[pc]
		switch in.op {
		case opFalse:
			stack[sp] = 0
			sp++
		case opTrue:
			stack[sp] = full
			sp++
		case opVar:
			stack[sp] = cols[in.arg]
			sp++
		case opVarNeg:
			stack[sp] = cols[in.arg] ^ full
			sp++
		case opAnd:
			sp--
			stack[sp-1] &= stack[sp]
		case opOr:
			sp--
			stack[sp-1] |= stack[sp]
		case opNot:
			stack[sp-1] ^= full
		case opJFK:
			if stack[sp-1] == 0 {
				pc = int(in.arg) - 1
			}
		case opJTK:
			if stack[sp-1] == full {
				pc = int(in.arg) - 1
			}
		}
	}
	return stack[0]
}

// EvalWorld evaluates the program against a single world given as a
// bitset over the variable space (bit v of world[v/64] is variable
// v's truth value) — the scalar path for shapes that batch poorly and
// the differential-testing oracle for the batch path.
func (p *Program) EvalWorld(world []uint64, stack []uint64) bool {
	sp := 0
	for pc := 0; pc < len(p.code); pc++ {
		in := p.code[pc]
		switch in.op {
		case opFalse:
			stack[sp] = 0
			sp++
		case opTrue:
			stack[sp] = 1
			sp++
		case opVar:
			stack[sp] = (world[in.arg>>6] >> (uint(in.arg) & 63)) & 1
			sp++
		case opVarNeg:
			stack[sp] = ((world[in.arg>>6] >> (uint(in.arg) & 63)) & 1) ^ 1
			sp++
		case opAnd:
			sp--
			stack[sp-1] &= stack[sp]
		case opOr:
			sp--
			stack[sp-1] |= stack[sp]
		case opNot:
			stack[sp-1] ^= 1
		case opJFK:
			if stack[sp-1] == 0 {
				pc = int(in.arg) - 1
			}
		case opJTK:
			if stack[sp-1] == 1 {
				pc = int(in.arg) - 1
			}
		}
	}
	return stack[0] != 0
}

// WorldWords returns the []uint64 length of a world bitset over n
// variables.
func WorldWords(n int) int { return (n + 63) / 64 }

// compiler accumulates code and tracks the worst-case operand stack.
type compiler struct {
	code     []instr
	depth    int
	maxDepth int
}

func (c *compiler) emit(op uint8, arg int32) error {
	if len(c.code) >= MaxCode {
		return ErrTooLarge
	}
	c.code = append(c.code, instr{op: op, arg: arg})
	switch op {
	case opFalse, opTrue, opVar, opVarNeg:
		c.depth++
		if c.depth > c.maxDepth {
			c.maxDepth = c.depth
		}
	case opAnd, opOr:
		c.depth--
	}
	return nil
}

// CompileProp compiles a propositional formula over variables
// 0..numVars-1. Variables outside the range are an error (the caller
// resolved every atom to an uncertain-tuple index or a constant
// before getting here).
func CompileProp(f prop.Formula, numVars int) (*Program, error) {
	c := &compiler{}
	if err := c.compile(f, numVars); err != nil {
		return nil, err
	}
	return &Program{code: c.code, numVars: numVars, maxStack: c.maxDepth}, nil
}

func (c *compiler) compile(f prop.Formula, numVars int) error {
	switch g := f.(type) {
	case prop.FTrue:
		return c.emit(opTrue, 0)
	case prop.FFalse:
		return c.emit(opFalse, 0)
	case prop.FVar:
		if int(g) < 0 || int(g) >= numVars {
			return fmt.Errorf("vm: variable x%d outside range [0,%d)", int(g), numVars)
		}
		return c.emit(opVar, int32(g))
	case prop.FNot:
		if v, ok := g.F.(prop.FVar); ok {
			if int(v) < 0 || int(v) >= numVars {
				return fmt.Errorf("vm: variable x%d outside range [0,%d)", int(v), numVars)
			}
			return c.emit(opVarNeg, int32(v))
		}
		if err := c.compile(g.F, numVars); err != nil {
			return err
		}
		return c.emit(opNot, 0)
	case prop.FAnd:
		return c.compileNary([]prop.Formula(g), numVars, opAnd, opJFK, opTrue)
	case prop.FOr:
		return c.compileNary([]prop.Formula(g), numVars, opOr, opJTK, opFalse)
	default:
		return fmt.Errorf("vm: cannot compile %T", f)
	}
}

// compileNary emits an n-ary AND/OR with short-circuit jumps: after
// each partial result, a keep-top jump skips the remaining operands
// once the outcome is settled for the whole batch.
func (c *compiler) compileNary(sub []prop.Formula, numVars int, fold, jump, empty uint8) error {
	if len(sub) == 0 {
		return c.emit(empty, 0)
	}
	if err := c.compile(sub[0], numVars); err != nil {
		return err
	}
	var patches []int
	for _, g := range sub[1:] {
		patches = append(patches, len(c.code))
		if err := c.emit(jump, 0); err != nil {
			return err
		}
		if err := c.compile(g, numVars); err != nil {
			return err
		}
		if err := c.emit(fold, 0); err != nil {
			return err
		}
	}
	end := int32(len(c.code))
	for _, pc := range patches {
		c.code[pc].arg = end
	}
	return nil
}

// FirstSatisfiedHits is the bit-parallel core of the Karp–Luby
// estimator: over a batch of worlds in column layout (cols, full as
// in EvalBatch), it returns the mask of worlds whose *first*
// satisfied term in terms is exactly the term that was picked for
// them (picked[i] = mask of worlds that drew term i). The sweep keeps
// a mask of worlds not yet claimed by an earlier term, so each world
// is attributed to its first satisfying term only — the same
// tie-breaking as the scalar firstSatisfied scan.
func FirstSatisfiedHits(terms []prop.Term, cols []uint64, picked []uint64, full uint64) uint64 {
	remaining := full
	var hits uint64
	for i, t := range terms {
		sat := remaining
		for _, l := range t {
			if l.Neg {
				sat &^= cols[l.Var]
			} else {
				sat &= cols[l.Var]
			}
			if sat == 0 {
				break
			}
		}
		if sat == 0 {
			continue
		}
		hits |= sat & picked[i]
		remaining &^= sat
		if remaining == 0 {
			break
		}
	}
	return hits
}
