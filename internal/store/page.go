// Package store is the crash-safe paged storage engine: slotted
// heap-file pages with per-page CRC-32C, a pinning buffer pool with
// clock eviction under a hard byte budget, and atomic durability
// through a write-ahead intent journal with open-time recovery.
//
// On-disk format (version 1, little-endian throughout):
//
//	file       = page[0] page[1] ... page[pageCount-1]
//	page       = crc u32 | type u8 | flags u8 | nslots u16 |
//	             relID u32 | next u32 | freeEnd u16 | reserved u16 |
//	             slot directory | free space | records
//	slot       = offset u16 | length u16          (one per record)
//
// The CRC-32C (Castagnoli) covers bytes [4, pageSize). Records grow
// down from the end of the page; the slot directory grows up from the
// 20-byte header; freeEnd is the lowest record offset. Page 0 is the
// meta page (magic, format version, page size, page count, catalog);
// catalogs too large for one page chain through `next` into
// continuation meta pages. Heap pages hold fixed-width tuples (two
// bytes per element — exact for rel.MaxUniverse); mu pages hold
// error-probability records (relation index, elements, big.Rat text).
//
// Versioning rule: formatVersion identifies the layout above. Any
// incompatible change (field moved, width changed, record re-encoded)
// bumps the version, and readers MUST reject versions they do not
// know rather than guess; additive changes reuse the version and park
// new fields in reserved space that writers zero.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorruptPage is the typed corruption error: CRC mismatch,
// impossible slot directory, undecodable record, or a chain pointer
// leading somewhere it cannot. Callers detect it with errors.Is and
// degrade the request instead of serving fabricated tuples.
var ErrCorruptPage = errors.New("store: corrupt page")

const (
	// formatVersion is bumped on any incompatible layout change;
	// readers reject versions they do not recognise.
	formatVersion = 1

	// DefaultPageSize is the page size Create uses unless overridden.
	DefaultPageSize = 4096
	// MinPageSize keeps room for the header, one slot, and one record.
	MinPageSize = 128
	// MaxPageSize is bounded by the u16 offsets in the slot directory.
	MaxPageSize = 32768

	pageHeaderSize = 20
	slotSize       = 4

	offCRC     = 0
	offType    = 4
	offFlags   = 5
	offNSlots  = 6
	offRelID   = 8
	offNext    = 12
	offFreeEnd = 16

	pageTypeMeta = 1
	pageTypeHeap = 2
	pageTypeMu   = 3

	// nilPage terminates a page chain.
	nilPage = ^uint32(0)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func validPageSize(n int) bool {
	return n >= MinPageSize && n <= MaxPageSize && n&(n-1) == 0
}

// initPage formats buf in place as an empty page of the given type.
func initPage(buf []byte, typ byte, relID uint32) {
	for i := range buf {
		buf[i] = 0
	}
	buf[offType] = typ
	binary.LittleEndian.PutUint32(buf[offRelID:], relID)
	binary.LittleEndian.PutUint32(buf[offNext:], nilPage)
	binary.LittleEndian.PutUint16(buf[offFreeEnd:], uint16(len(buf)))
}

func pageType(buf []byte) byte    { return buf[offType] }
func pageNSlots(buf []byte) int   { return int(binary.LittleEndian.Uint16(buf[offNSlots:])) }
func pageRelID(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[offRelID:]) }
func pageNext(buf []byte) uint32  { return binary.LittleEndian.Uint32(buf[offNext:]) }
func pageFreeEnd(buf []byte) int  { return int(binary.LittleEndian.Uint16(buf[offFreeEnd:])) }
func setPageNext(buf []byte, next uint32) {
	binary.LittleEndian.PutUint32(buf[offNext:], next)
}

// pageFreeSpace reports how many payload bytes a new record may take.
func pageFreeSpace(buf []byte) int {
	free := pageFreeEnd(buf) - (pageHeaderSize + slotSize*pageNSlots(buf)) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// pageInsert appends rec to the page, returning false when it does
// not fit. The caller must re-seal (CRC) before the page hits disk.
func pageInsert(buf []byte, rec []byte) bool {
	if len(rec) > pageFreeSpace(buf) {
		return false
	}
	n := pageNSlots(buf)
	recOff := pageFreeEnd(buf) - len(rec)
	copy(buf[recOff:], rec)
	slotOff := pageHeaderSize + slotSize*n
	binary.LittleEndian.PutUint16(buf[slotOff:], uint16(recOff))
	binary.LittleEndian.PutUint16(buf[slotOff+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(buf[offNSlots:], uint16(n+1))
	binary.LittleEndian.PutUint16(buf[offFreeEnd:], uint16(recOff))
	return true
}

// pageRecord returns the i-th record. The page must have passed
// validatePage; no bounds are re-checked here.
func pageRecord(buf []byte, i int) []byte {
	slotOff := pageHeaderSize + slotSize*i
	off := int(binary.LittleEndian.Uint16(buf[slotOff:]))
	n := int(binary.LittleEndian.Uint16(buf[slotOff+2:]))
	return buf[off : off+n]
}

// sealPage stamps the CRC; call exactly once per write-back, after
// the payload is final.
func sealPage(buf []byte) {
	binary.LittleEndian.PutUint32(buf[offCRC:], crc32.Checksum(buf[4:], castagnoli))
}

// validatePage checks the CRC and the structural invariants of the
// slot directory. Every failure wraps ErrCorruptPage.
func validatePage(buf []byte, id uint32) error {
	if want, got := binary.LittleEndian.Uint32(buf[offCRC:]), crc32.Checksum(buf[4:], castagnoli); want != got {
		return fmt.Errorf("%w: page %d: crc mismatch (stored %08x, computed %08x)", ErrCorruptPage, id, want, got)
	}
	switch pageType(buf) {
	case pageTypeMeta, pageTypeHeap, pageTypeMu:
	default:
		return fmt.Errorf("%w: page %d: unknown page type %d", ErrCorruptPage, id, pageType(buf))
	}
	n := pageNSlots(buf)
	freeEnd := pageFreeEnd(buf)
	slotDirEnd := pageHeaderSize + slotSize*n
	if freeEnd > len(buf) || slotDirEnd > freeEnd {
		return fmt.Errorf("%w: page %d: impossible slot directory (%d slots, freeEnd %d, page %d)", ErrCorruptPage, id, n, freeEnd, len(buf))
	}
	for i := 0; i < n; i++ {
		slotOff := pageHeaderSize + slotSize*i
		off := int(binary.LittleEndian.Uint16(buf[slotOff:]))
		length := int(binary.LittleEndian.Uint16(buf[slotOff+2:]))
		if off < freeEnd || off+length > len(buf) {
			return fmt.Errorf("%w: page %d: slot %d out of bounds (off %d, len %d)", ErrCorruptPage, id, i, off, length)
		}
	}
	return nil
}

// encodeTuple writes a heap record: two little-endian bytes per
// element (exact, since rel.MaxUniverse is 1<<16).
func encodeTuple(dst []byte, elems []int) []byte {
	for _, e := range elems {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(e))
	}
	return dst
}

// decodeTuple reads a heap record into elems, which the caller sizes
// to the relation's arity.
func decodeTuple(rec []byte, elems []int) error {
	if len(rec) != 2*len(elems) {
		return fmt.Errorf("record is %d bytes, arity %d needs %d", len(rec), len(elems), 2*len(elems))
	}
	for i := range elems {
		elems[i] = int(binary.LittleEndian.Uint16(rec[2*i:]))
	}
	return nil
}

// encodeMu writes a mu record: relation index, elements, then the
// error probability as a big.Rat string (a/b).
func encodeMu(dst []byte, relIdx int, elems []int, rat string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(relIdx))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(elems)))
	dst = encodeTuple(dst, elems)
	return append(dst, rat...)
}

// decodeMu splits a mu record; the probability string is validated by
// the caller against big.Rat.
func decodeMu(rec []byte) (relIdx int, elems []int, rat string, err error) {
	if len(rec) < 4 {
		return 0, nil, "", fmt.Errorf("mu record is %d bytes, need at least 4", len(rec))
	}
	relIdx = int(binary.LittleEndian.Uint16(rec))
	arity := int(binary.LittleEndian.Uint16(rec[2:]))
	if arity > 16 || len(rec) < 4+2*arity {
		return 0, nil, "", fmt.Errorf("mu record arity %d does not fit %d bytes", arity, len(rec))
	}
	elems = make([]int, arity)
	if err := decodeTuple(rec[4:4+2*arity], elems); err != nil {
		return 0, nil, "", err
	}
	return relIdx, elems, string(rec[4+2*arity:]), nil
}
