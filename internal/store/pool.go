package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"qrel/internal/faultinject"
)

// PoolStats is a point-in-time snapshot of buffer-pool behaviour.
type PoolStats struct {
	Hits        uint64 // fetches served from a resident frame
	Misses      uint64 // fetches that read the data file
	Evictions   uint64 // clean frames dropped by the clock hand
	BytesInUse  int64  // resident frame bytes right now
	MaxBytesUse int64  // high-water mark of BytesInUse
	Quarantined int    // pages pinned out as corrupt
}

// frame is one resident page.
type frame struct {
	id    uint32
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock reference bit
}

// pool caches pages of one data file under a hard byte budget. Clean
// unpinned frames are evicted by a clock hand; dirty and pinned
// frames are never evicted (the store commits the dirty set before
// it can grow past the budget). Pages that fail validation are
// quarantined: every later fetch returns the same ErrCorruptPage
// without touching the disk again.
type pool struct {
	f        *os.File
	pageSize int
	budget   int64

	mu          sync.Mutex
	frames      map[uint32]*frame
	ring        []uint32 // clock order; may contain stale ids
	hand        int
	nDirty      int
	stats       PoolStats
	quarantined map[uint32]error
}

func newPool(f *os.File, pageSize int, budget int64) *pool {
	if budget < int64(pageSize)*4 {
		budget = int64(pageSize) * 4 // room for a scan, a join build, and the meta chain
	}
	return &pool{
		f:           f,
		pageSize:    pageSize,
		budget:      budget,
		frames:      make(map[uint32]*frame),
		quarantined: make(map[uint32]error),
	}
}

// get pins page id and returns its frame, reading and validating it
// from disk on a miss. Callers must unpin when done.
func (p *pool) get(id uint32) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err, ok := p.quarantined[id]; ok {
		return nil, err
	}
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		fr.ref = true
		p.stats.Hits++
		return fr, nil
	}
	p.stats.Misses++
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// A chain pointer past the end of the file is corruption,
			// not an I/O failure.
			err = fmt.Errorf("%w: page %d: beyond end of file", ErrCorruptPage, id)
			p.quarantined[id] = err
			p.stats.Quarantined = len(p.quarantined)
			return nil, err
		}
		return nil, fmt.Errorf("store: read page %d: %w", id, err)
	}
	if ferr := faultinject.Hit(faultinject.SiteStoreBitFlip); ferr != nil {
		buf[p.pageSize/2] ^= 0x40 // a single flipped bit, as a failing disk would
	}
	if err := validatePage(buf, id); err != nil {
		p.quarantined[id] = err
		p.stats.Quarantined = len(p.quarantined)
		return nil, err
	}
	fr := &frame{id: id, buf: buf, pins: 1, ref: true}
	p.admit(fr)
	return fr, nil
}

// newFrame installs a fresh, already-formatted page (not yet on
// disk) as a pinned dirty frame.
func (p *pool) newFrame(id uint32, typ byte, relID uint32) *frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	buf := make([]byte, p.pageSize)
	initPage(buf, typ, relID)
	fr := &frame{id: id, buf: buf, pins: 1, dirty: true, ref: true}
	p.nDirty++
	p.admit(fr)
	return fr
}

// admit evicts clean unpinned frames until fr fits, then inserts it.
// Caller holds p.mu.
func (p *pool) admit(fr *frame) {
	// Clock sweep: second-chance over clean unpinned frames, making
	// room for the incoming frame before it lands.
	for int64(len(p.frames)+1)*int64(p.pageSize) > p.budget {
		evicted := false
		for sweep := 0; sweep < 2*len(p.ring); sweep++ {
			if len(p.ring) == 0 {
				break
			}
			p.hand %= len(p.ring)
			id := p.ring[p.hand]
			cand, ok := p.frames[id]
			if !ok { // stale ring slot from a prior eviction
				p.ring = append(p.ring[:p.hand], p.ring[p.hand+1:]...)
				continue
			}
			if cand.pins > 0 || cand.dirty {
				p.hand++
				continue
			}
			if cand.ref {
				cand.ref = false
				p.hand++
				continue
			}
			delete(p.frames, id)
			p.ring = append(p.ring[:p.hand], p.ring[p.hand+1:]...)
			p.stats.Evictions++
			evicted = true
			break
		}
		if !evicted {
			break // everything pinned or dirty; budget is enforced upstream by committing
		}
	}
	p.frames[fr.id] = fr
	p.ring = append(p.ring, fr.id)
	p.stats.BytesInUse = int64(len(p.frames)) * int64(p.pageSize)
	if p.stats.BytesInUse > p.stats.MaxBytesUse {
		p.stats.MaxBytesUse = p.stats.BytesInUse
	}
}

func (p *pool) unpin(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins > 0 {
		fr.pins--
	}
}

func (p *pool) markDirty(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !fr.dirty {
		fr.dirty = true
		p.nDirty++
	}
}

// dirtyFrames returns the dirty set ordered by page id — the commit
// unit the journal records.
func (p *pool) dirtyFrames() []*frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*frame
	for _, fr := range p.frames {
		if fr.dirty {
			out = append(out, fr)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].id > out[j].id; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (p *pool) dirtyBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.nDirty) * int64(p.pageSize)
}

func (p *pool) markClean(frames []*frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range frames {
		if fr.dirty {
			fr.dirty = false
			p.nDirty--
		}
	}
}

// invalidate drops every frame and quarantine entry — used after
// recovery rewrites the data file underneath the pool.
func (p *pool) invalidate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[uint32]*frame)
	p.ring = nil
	p.hand = 0
	p.nDirty = 0
	p.quarantined = make(map[uint32]error)
	p.stats.BytesInUse = 0
}

func (p *pool) snapshotStats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
