package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"sync"

	"qrel/internal/checkpoint"
	"qrel/internal/faultinject"
	"qrel/internal/ra"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

const (
	storeMagic = "QRELSTO1"
	// DefaultPoolBytes is the buffer-pool budget when Options leaves it
	// zero: enough to keep a scan, a join build side, and the meta
	// chain resident for small stores, small enough that million-tuple
	// files actually page.
	DefaultPoolBytes = 1 << 20

	// meta page 0 carries magic(8) + version(4) + pageSize(4) + catLen(4)
	// before the first catalog chunk.
	metaFixedSize = 20
)

// Options configures Create and Open.
type Options struct {
	// PageSize is used by Create only (Open reads it from the file).
	// Zero means DefaultPageSize; it must be a power of two in
	// [MinPageSize, MaxPageSize].
	PageSize int
	// PoolBytes is the hard buffer-pool budget. Zero means
	// DefaultPoolBytes. The pool clamps it to at least four pages.
	PoolBytes int64
}

// catRel is the catalog entry for one relation: its heap-page chain
// and counters.
type catRel struct {
	Name   string `json:"name"`
	Arity  int    `json:"arity"`
	Head   uint32 `json:"head"`
	Tail   uint32 `json:"tail"`
	Pages  uint32 `json:"pages"`
	Tuples uint64 `json:"tuples"`
}

// catConst preserves vocabulary constant order (a map would not).
type catConst struct {
	Name string `json:"name"`
	Elem int    `json:"elem"`
}

// catalog is the store's root metadata, JSON-encoded into the meta
// page chain.
type catalog struct {
	N         int        `json:"n"`
	Rels      []catRel   `json:"rels"`
	Consts    []catConst `json:"consts,omitempty"`
	MuHead    uint32     `json:"muHead"`
	MuTail    uint32     `json:"muTail"`
	MuPages   uint32     `json:"muPages"`
	MuCount   uint64     `json:"muCount"`
	PageCount uint32     `json:"pageCount"`
}

// Store is one paged database file plus its intent journal. A Store
// is a single-writer object: interleaving mutation with open scans is
// not supported, but concurrent reads are safe.
type Store struct {
	path        string
	journalPath string
	f           *os.File
	pageSize    int
	pool        *pool

	mu        sync.Mutex
	cat       catalog
	relIdx    map[string]int
	metaPages []uint32 // page 0 plus continuation pages, in chain order
	seq       uint64
	// journalDirty is set while the journal may be out of step with
	// the data file because a commit attempt failed part-way: it may
	// hold a complete record whose pages were never fully applied, a
	// torn tail from an append that died mid-write, or both. The next
	// commit re-runs open-time recovery before appending — complete
	// records are re-applied and only then truncated — so a durable
	// record is never thrown away while torn data pages depend on it,
	// and a torn leftover can never shadow the fresh record.
	journalDirty bool
}

// Create writes a new empty store for the vocabulary and universe of
// a (its relations are NOT copied — use BuildFromDB to ingest). The
// initial file is written with checkpoint.WriteFileAtomic, so a crash
// during creation leaves either no store or a complete empty one.
func Create(path string, a *rel.Structure, opts Options) (*Store, error) {
	pageSize := opts.PageSize
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if !validPageSize(pageSize) {
		return nil, fmt.Errorf("store: page size %d not a power of two in [%d,%d]", pageSize, MinPageSize, MaxPageSize)
	}
	cat := catalog{N: a.N}
	for _, rs := range a.Voc.Rels {
		cat.Rels = append(cat.Rels, catRel{Name: rs.Name, Arity: rs.Arity, Head: nilPage, Tail: nilPage})
	}
	for _, c := range a.Voc.Consts {
		cat.Consts = append(cat.Consts, catConst{Name: c, Elem: a.Consts[c]})
	}
	cat.MuHead, cat.MuTail = nilPage, nilPage

	// Size the meta chain: adding a page grows the serialized catalog
	// (PageCount changes), so iterate to a fixed point.
	var blob []byte
	metaCount := 1
	for i := 0; i < 8; i++ {
		cat.PageCount = uint32(metaCount)
		var err error
		blob, err = json.Marshal(&cat)
		if err != nil {
			return nil, fmt.Errorf("store: encode catalog: %w", err)
		}
		need := metaChainLen(len(blob), pageSize)
		if need <= metaCount {
			break
		}
		metaCount = need
	}
	file := make([]byte, metaCount*pageSize)
	for i := 0; i < metaCount; i++ {
		buf := file[i*pageSize : (i+1)*pageSize]
		initPage(buf, pageTypeMeta, 0)
		if i+1 < metaCount {
			setPageNext(buf, uint32(i+1))
		}
	}
	writeMetaPayload(file, pageSize, metaSeq(metaCount), blob)
	for i := 0; i < metaCount; i++ {
		sealPage(file[i*pageSize : (i+1)*pageSize])
	}
	// A journal left behind by a previous store incarnation at this
	// path must never replay into the file about to be written: remove
	// it before the new file lands, so no crash point can pair the
	// fresh store with the stale journal. Create's contract is
	// destructive — any pending commit of the old store dies with it.
	if err := os.Remove(path + ".journal"); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: create %s: clear stale journal: %w", path, err)
	}
	if err := checkpoint.WriteFileAtomic(path, file); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", path, err)
	}
	return Open(path, opts)
}

// metaSeq returns [0, 1, ..., n-1]: Create's meta chain is a prefix
// of the page space.
func metaSeq(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}

// metaChainLen reports how many meta pages a catalog blob needs.
func metaChainLen(blobLen, pageSize int) int {
	cap0 := pageSize - pageHeaderSize - metaFixedSize
	capN := pageSize - pageHeaderSize
	if blobLen <= cap0 {
		return 1
	}
	rest := blobLen - cap0
	return 1 + (rest+capN-1)/capN
}

// writeMetaPayload lays the catalog blob across the meta chain whose
// pages live in file at the given ids (page buffers must already be
// initialised; the caller seals).
func writeMetaPayload(file []byte, pageSize int, ids []uint32, blob []byte) {
	for i, id := range ids {
		buf := file[int(id)*pageSize : (int(id)+1)*pageSize]
		body := buf[pageHeaderSize:]
		if i == 0 {
			copy(body, storeMagic)
			binary.LittleEndian.PutUint32(body[8:], formatVersion)
			binary.LittleEndian.PutUint32(body[12:], uint32(pageSize))
			binary.LittleEndian.PutUint32(body[16:], uint32(len(blob)))
			body = body[metaFixedSize:]
		}
		n := copy(body, blob)
		for j := n; j < len(body); j++ {
			body[j] = 0
		}
		blob = blob[n:]
	}
}

// Open opens an existing store: first it recovers the journal
// (replaying complete records, discarding a torn tail), then reads
// and validates the meta chain.
func Open(path string, opts Options) (*Store, error) {
	if err := recoverJournal(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s, err := openFile(f, path, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func openFile(f *os.File, path string, opts Options) (*Store, error) {
	// Bootstrap: the page size lives at a fixed offset of page 0.
	head := make([]byte, pageHeaderSize+metaFixedSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("%w: %s: file too small for a meta page", ErrCorruptPage, path)
	}
	if string(head[pageHeaderSize:pageHeaderSize+8]) != storeMagic {
		return nil, fmt.Errorf("%w: %s: bad magic (not a store file?)", ErrCorruptPage, path)
	}
	version := int(binary.LittleEndian.Uint32(head[pageHeaderSize+8:]))
	if version != formatVersion {
		return nil, fmt.Errorf("store: %s: format version %d not supported (this build reads version %d)", path, version, formatVersion)
	}
	pageSize := int(binary.LittleEndian.Uint32(head[pageHeaderSize+12:]))
	if !validPageSize(pageSize) {
		return nil, fmt.Errorf("%w: %s: impossible page size %d", ErrCorruptPage, path, pageSize)
	}
	poolBytes := opts.PoolBytes
	if poolBytes == 0 {
		poolBytes = DefaultPoolBytes
	}
	s := &Store{
		path:        path,
		journalPath: path + ".journal",
		f:           f,
		pageSize:    pageSize,
		pool:        newPool(f, pageSize, poolBytes),
		seq:         1,
	}
	// Walk the meta chain and reassemble the catalog blob.
	catLen := int(binary.LittleEndian.Uint32(head[pageHeaderSize+16:]))
	if catLen < 0 || catLen > 1<<26 {
		return nil, fmt.Errorf("%w: %s: impossible catalog length %d", ErrCorruptPage, path, catLen)
	}
	blob := make([]byte, 0, catLen)
	id := uint32(0)
	for len(blob) < catLen {
		if id == nilPage {
			return nil, fmt.Errorf("%w: %s: meta chain ends with %d of %d catalog bytes", ErrCorruptPage, path, len(blob), catLen)
		}
		fr, err := s.pool.get(id)
		if err != nil {
			return nil, err
		}
		if pageType(fr.buf) != pageTypeMeta {
			s.pool.unpin(fr)
			return nil, fmt.Errorf("%w: %s: meta chain reaches page %d of type %d", ErrCorruptPage, path, id, pageType(fr.buf))
		}
		body := fr.buf[pageHeaderSize:]
		if id == 0 {
			body = body[metaFixedSize:]
		}
		take := catLen - len(blob)
		if take > len(body) {
			take = len(body)
		}
		blob = append(blob, body[:take]...)
		s.metaPages = append(s.metaPages, id)
		id = pageNext(fr.buf)
		s.pool.unpin(fr)
	}
	if err := json.Unmarshal(blob, &s.cat); err != nil {
		return nil, fmt.Errorf("%w: %s: catalog does not decode: %v", ErrCorruptPage, path, err)
	}
	if s.cat.N < 0 || s.cat.N > rel.MaxUniverse {
		return nil, fmt.Errorf("%w: %s: catalog universe %d out of range", ErrCorruptPage, path, s.cat.N)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() != int64(s.cat.PageCount)*int64(pageSize) {
		return nil, fmt.Errorf("%w: %s: file is %d bytes, catalog says %d pages of %d", ErrCorruptPage, path, fi.Size(), s.cat.PageCount, pageSize)
	}
	s.relIdx = make(map[string]int, len(s.cat.Rels))
	for i, r := range s.cat.Rels {
		if r.Arity < 0 || r.Arity > rel.MaxArity {
			return nil, fmt.Errorf("%w: %s: relation %s has impossible arity %d", ErrCorruptPage, path, r.Name, r.Arity)
		}
		s.relIdx[r.Name] = i
	}
	return s, nil
}

// recoverJournal replays every complete journal record into the data
// file and truncates the journal. Full-page images are idempotent, so
// replaying a journal that was already partially applied is safe; a
// torn tail is the commit that never happened and is discarded.
func recoverJournal(path string) error {
	jpath := path + ".journal"
	data, err := os.ReadFile(jpath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	if len(data) < journalHeaderSize || string(data[:8]) != journalMagic {
		// Garbage or a tail torn before the header completed: the
		// commit never happened.
		return resetJournal(jpath)
	}
	pageSize := int(binary.LittleEndian.Uint32(data[20:]))
	if !validPageSize(pageSize) {
		return resetJournal(jpath)
	}
	// Cross-check the data file before trusting the journal: a journal
	// copied or renamed next to a store it does not belong to passes
	// its own CRC yet would replay at wrong offsets. If the data
	// file's meta page yields a valid page size that disagrees, refuse
	// to touch either file. A torn or flipped meta head reads as
	// invalid and does not block replay — the journal may be exactly
	// what heals it.
	if ds, ok := dataFilePageSize(path); ok && ds != pageSize {
		return fmt.Errorf("%w: %s: journal page size %d does not match store page size %d (journal from another store?)", ErrCorruptPage, jpath, pageSize, ds)
	}
	recs := decodeJournal(data, pageSize)
	if len(recs) > 0 {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			for _, im := range rec.images {
				if _, err := f.WriteAt(im.data, int64(im.id)*int64(pageSize)); err != nil {
					f.Close()
					return fmt.Errorf("store: recovery replay page %d: %w", im.id, err)
				}
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return resetJournal(jpath)
}

// dataFilePageSize reads the page size recorded in the data file's
// meta page. ok is false when the file is missing or its head does
// not parse as a store meta page (the field sits in the first half of
// page 0, so even a half-page tear leaves it readable).
func dataFilePageSize(path string) (int, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	head := make([]byte, pageHeaderSize+metaFixedSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return 0, false
	}
	if string(head[pageHeaderSize:pageHeaderSize+8]) != storeMagic {
		return 0, false
	}
	ps := int(binary.LittleEndian.Uint32(head[pageHeaderSize+12:]))
	if !validPageSize(ps) {
		return 0, false
	}
	return ps, true
}

// Close releases the file without committing: uncommitted mutations
// are discarded, exactly as a crash would discard them.
func (s *Store) Close() error { return s.f.Close() }

// Path returns the data file path.
func (s *Store) Path() string { return s.path }

// PageSize returns the page size recorded in the meta page.
func (s *Store) PageSize() int { return s.pageSize }

// PageCount returns the number of pages in the file (including
// uncommitted allocations).
func (s *Store) PageCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.cat.PageCount)
}

// Stats returns a snapshot of buffer-pool behaviour.
func (s *Store) Stats() PoolStats { return s.pool.snapshotStats() }

// Universe returns the universe size; with Arity and Scan it makes
// *Store an ra.Source, so the Volcano operators pull tuples straight
// off the pages.
func (s *Store) Universe() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat.N
}

// Relations returns the relation symbols in vocabulary order.
func (s *Store) Relations() []rel.RelSym {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rel.RelSym, len(s.cat.Rels))
	for i, cr := range s.cat.Rels {
		out[i] = rel.RelSym{Name: cr.Name, Arity: cr.Arity}
	}
	return out
}

// Arity reports the arity of a named relation.
func (s *Store) Arity(name string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.relIdx[name]
	if !ok {
		return 0, false
	}
	return s.cat.Rels[i].Arity, true
}

// Tuples returns the committed-plus-pending tuple count of a relation.
func (s *Store) Tuples(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.relIdx[name]
	if !ok {
		return 0
	}
	return s.cat.Rels[i].Tuples
}

// AddTuple appends t to the named relation. The write lands in the
// buffer pool; Commit makes it durable. When the dirty set approaches
// the pool budget the store commits automatically, keeping the budget
// hard.
func (s *Store) AddTuple(name string, t rel.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.relIdx[name]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", name)
	}
	cr := &s.cat.Rels[i]
	if len(t) != cr.Arity {
		return fmt.Errorf("store: relation %s/%d: tuple has arity %d", cr.Name, cr.Arity, len(t))
	}
	for _, e := range t {
		if e < 0 || e >= s.cat.N {
			return fmt.Errorf("store: relation %s: element %d outside universe [0,%d)", cr.Name, e, s.cat.N)
		}
	}
	var scratch [2 * rel.MaxArity]byte
	rec := encodeTuple(scratch[:0], t)
	return s.appendRecord(rec, pageTypeHeap, uint32(i), &cr.Head, &cr.Tail, &cr.Pages, func() { cr.Tuples++ })
}

// SetError records mu(atom) = p for the unreliable database stored in
// the mu chain. p must be in (0, 1]; presence of the atom in the heap
// decides observed-vs-absent exactly as unreliable.DB does.
func (s *Store) SetError(name string, t rel.Tuple, p *big.Rat) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.relIdx[name]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", name)
	}
	cr := &s.cat.Rels[i]
	if len(t) != cr.Arity {
		return fmt.Errorf("store: relation %s/%d: atom has arity %d", cr.Name, cr.Arity, len(t))
	}
	for _, e := range t {
		if e < 0 || e >= s.cat.N {
			return fmt.Errorf("store: relation %s: element %d outside universe [0,%d)", cr.Name, e, s.cat.N)
		}
	}
	if p == nil || p.Sign() <= 0 || p.Cmp(big.NewRat(1, 1)) > 0 {
		return fmt.Errorf("store: mu(%s%v) = %v outside (0,1]", name, t, p)
	}
	rec := encodeMu(nil, i, t, p.RatString())
	if len(rec) > s.pageSize-pageHeaderSize-slotSize {
		return fmt.Errorf("store: mu record (%d bytes) does not fit a %d-byte page", len(rec), s.pageSize)
	}
	return s.appendRecord(rec, pageTypeMu, nilPage, &s.cat.MuHead, &s.cat.MuTail, &s.cat.MuPages, func() { s.cat.MuCount++ })
}

// appendRecord inserts rec at the tail of a page chain, allocating
// and linking a new page when the tail is full. Caller holds s.mu.
func (s *Store) appendRecord(rec []byte, typ byte, relID uint32, head, tail, pages *uint32, onInsert func()) error {
	// Refuse a record that cannot fit even an empty page before any
	// allocation: past this point a fresh page admitted to the dirty
	// set would be journaled at the next commit as an unreferenced
	// orphan that inflates the file.
	if len(rec) > s.pageSize-pageHeaderSize-slotSize {
		return fmt.Errorf("store: record of %d bytes does not fit an empty %d-byte page", len(rec), s.pageSize)
	}
	// Keep the budget hard: committing dirties the meta chain too, so
	// flush while that chain plus a fresh page and its link still fit.
	if s.pool.dirtyBytes()+int64(len(s.metaPages)+2)*int64(s.pageSize) > s.pool.budget {
		if err := s.commitLocked(); err != nil {
			return err
		}
	}
	if *tail != nilPage {
		fr, err := s.pool.get(*tail)
		if err != nil {
			return err
		}
		if pageInsert(fr.buf, rec) {
			s.pool.markDirty(fr)
			s.pool.unpin(fr)
			onInsert()
			return nil
		}
		s.pool.unpin(fr)
	}
	// Allocate a fresh page and link it at the tail.
	id := s.cat.PageCount
	s.cat.PageCount++
	fr := s.pool.newFrame(id, typ, relID)
	if !pageInsert(fr.buf, rec) {
		s.pool.unpin(fr)
		return fmt.Errorf("store: record of %d bytes does not fit an empty %d-byte page", len(rec), s.pageSize)
	}
	s.pool.unpin(fr)
	if *tail != nilPage {
		prev, err := s.pool.get(*tail)
		if err != nil {
			return err
		}
		setPageNext(prev.buf, id)
		s.pool.markDirty(prev)
		s.pool.unpin(prev)
	} else {
		*head = id
	}
	*tail = id
	*pages++
	onInsert()
	return nil
}

// Commit makes every buffered mutation durable: catalog meta pages
// are rewritten, the dirty set is journaled and fsynced, applied to
// the data file, fsynced again, and only then is the journal
// truncated. If Commit returns an error the on-disk state is either
// the previous commit or (after reopening) this one — never a blend.
func (s *Store) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

func (s *Store) commitLocked() error {
	if s.pool.dirtyBytes() == 0 {
		// Catalog counters only change alongside page mutations, so a
		// clean pool means nothing to write.
		return nil
	}
	if s.journalDirty {
		// A prior commit failed part-way. Re-running open-time recovery
		// re-applies any complete journal record — healing data pages a
		// short write tore — and discards a torn tail; only after both
		// is the journal truncated, so this commit's record starts on
		// an empty journal without ever destroying a durable record the
		// data file still needs. Resident frames stay coherent: every
		// page in the old record is still dirty in the pool (markClean
		// only runs on success), so the pool holds content at least as
		// new as the replayed images.
		if err := recoverJournal(s.path); err != nil {
			return err
		}
		s.journalDirty = false
	}
	if err := s.writeCatalogLocked(); err != nil {
		return err
	}
	frames := s.pool.dirtyFrames()
	images := make([]pageImage, 0, len(frames))
	for _, fr := range frames {
		sealPage(fr.buf)
		images = append(images, pageImage{id: fr.id, data: fr.buf})
	}
	rec := encodeJournalRecord(s.seq, s.pageSize, images)
	s.journalDirty = true
	if err := appendJournal(s.journalPath, rec); err != nil {
		return err
	}
	if ferr := faultinject.Hit(faultinject.SiteStoreCrash); ferr != nil {
		// Crash window between journal fsync and page apply: the
		// journal is durable, so recovery will complete this commit.
		return fmt.Errorf("store: commit: %w", ferr)
	}
	for _, im := range images {
		off := int64(im.id) * int64(s.pageSize)
		if ferr := faultinject.Hit(faultinject.SiteStoreShortWrite); ferr != nil {
			s.f.WriteAt(im.data[:s.pageSize/2], off)
			s.f.Sync()
			return fmt.Errorf("store: apply page %d: %w", im.id, ferr)
		}
		if _, err := s.f.WriteAt(im.data, off); err != nil {
			return fmt.Errorf("store: apply page %d: %w", im.id, err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	if err := resetJournal(s.journalPath); err != nil {
		return err
	}
	s.journalDirty = false
	s.pool.markClean(frames)
	s.seq++
	return nil
}

// writeCatalogLocked serializes the catalog into the meta chain,
// growing the chain (and therefore the catalog) to a fixed point.
func (s *Store) writeCatalogLocked() error {
	var blob []byte
	for i := 0; i < 8; i++ {
		var err error
		blob, err = json.Marshal(&s.cat)
		if err != nil {
			return fmt.Errorf("store: encode catalog: %w", err)
		}
		need := metaChainLen(len(blob), s.pageSize)
		if need <= len(s.metaPages) {
			break
		}
		// Grow the chain; the new page id changes the catalog, so loop.
		id := s.cat.PageCount
		s.cat.PageCount++
		fr := s.pool.newFrame(id, pageTypeMeta, 0)
		s.pool.unpin(fr)
		s.metaPages = append(s.metaPages, id)
	}
	for i, id := range s.metaPages {
		fr, err := s.pool.get(id)
		if err != nil {
			return err
		}
		initPage(fr.buf, pageTypeMeta, 0)
		if i+1 < len(s.metaPages) {
			setPageNext(fr.buf, s.metaPages[i+1])
		}
		s.pool.markDirty(fr)
		s.pool.unpin(fr)
	}
	// Lay the blob across the chain through a contiguous view of the
	// frames (they stay pinned only one at a time above; re-fetch).
	rest := blob
	for i, id := range s.metaPages {
		fr, err := s.pool.get(id)
		if err != nil {
			return err
		}
		body := fr.buf[pageHeaderSize:]
		if i == 0 {
			copy(body, storeMagic)
			binary.LittleEndian.PutUint32(body[8:], formatVersion)
			binary.LittleEndian.PutUint32(body[12:], uint32(s.pageSize))
			binary.LittleEndian.PutUint32(body[16:], uint32(len(blob)))
			body = body[metaFixedSize:]
		}
		n := copy(body, rest)
		for j := n; j < len(body); j++ {
			body[j] = 0
		}
		rest = rest[n:]
		s.pool.unpin(fr)
	}
	return nil
}

// scan streams one page chain in insertion order.
type scan struct {
	s      *Store
	relIdx int // -1 for the mu chain
	arity  int
	next   uint32
	fr     *frame
	slot   int
	closed bool
}

// Scan returns a streaming iterator over the named relation in
// insertion order. It satisfies ra.TupleIter, so relational plans
// pull straight from the pages; at most one page is pinned at a time.
func (s *Store) Scan(name string) (ra.TupleIter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.relIdx[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown relation %q", name)
	}
	return &scan{s: s, relIdx: i, arity: s.cat.Rels[i].Arity, next: s.cat.Rels[i].Head}, nil
}

func (sc *scan) Next() (rel.Tuple, bool, error) {
	for {
		if sc.fr == nil {
			if sc.closed || sc.next == nilPage {
				return nil, false, nil
			}
			fr, err := sc.s.pool.get(sc.next)
			if err != nil {
				sc.closed = true
				return nil, false, err
			}
			wantType, wantRel := byte(pageTypeHeap), uint32(sc.relIdx)
			if sc.relIdx < 0 {
				wantType, wantRel = pageTypeMu, nilPage
			}
			if pageType(fr.buf) != wantType || pageRelID(fr.buf) != wantRel {
				id := fr.id
				sc.s.pool.unpin(fr)
				sc.closed = true
				return nil, false, fmt.Errorf("%w: page %d: chain reaches page of type %d rel %d", ErrCorruptPage, id, pageType(fr.buf), pageRelID(fr.buf))
			}
			sc.fr = fr
			sc.slot = 0
		}
		if sc.slot < pageNSlots(sc.fr.buf) {
			rec := pageRecord(sc.fr.buf, sc.slot)
			sc.slot++
			t := make(rel.Tuple, sc.arity)
			if err := decodeTuple(rec, t); err != nil {
				id := sc.fr.id
				sc.Close()
				return nil, false, fmt.Errorf("%w: page %d: %v", ErrCorruptPage, id, err)
			}
			for _, e := range t {
				if e < 0 || e >= sc.s.cat.N {
					id := sc.fr.id
					sc.Close()
					return nil, false, fmt.Errorf("%w: page %d: element %d outside universe", ErrCorruptPage, id, e)
				}
			}
			return t, true, nil
		}
		next := pageNext(sc.fr.buf)
		sc.s.pool.unpin(sc.fr)
		sc.fr = nil
		sc.next = next
	}
}

func (sc *scan) Close() error {
	if sc.fr != nil {
		sc.s.pool.unpin(sc.fr)
		sc.fr = nil
	}
	sc.closed = true
	return nil
}

// forEachMu streams the mu chain, decoding each record.
func (s *Store) forEachMu(fn func(relIdx int, t rel.Tuple, p *big.Rat) error) error {
	s.mu.Lock()
	sc := &scan{s: s, relIdx: -1, next: s.cat.MuHead}
	nRels := len(s.cat.Rels)
	s.mu.Unlock()
	defer sc.Close()
	for {
		if sc.fr == nil {
			if sc.closed || sc.next == nilPage {
				return nil
			}
			fr, err := s.pool.get(sc.next)
			if err != nil {
				return err
			}
			if pageType(fr.buf) != pageTypeMu {
				id := fr.id
				s.pool.unpin(fr)
				return fmt.Errorf("%w: page %d: mu chain reaches page of type %d", ErrCorruptPage, id, pageType(fr.buf))
			}
			sc.fr = fr
			sc.slot = 0
		}
		if sc.slot >= pageNSlots(sc.fr.buf) {
			next := pageNext(sc.fr.buf)
			s.pool.unpin(sc.fr)
			sc.fr = nil
			sc.next = next
			continue
		}
		rec := pageRecord(sc.fr.buf, sc.slot)
		sc.slot++
		relIdx, elems, ratStr, err := decodeMu(rec)
		if err != nil {
			return fmt.Errorf("%w: page %d: %v", ErrCorruptPage, sc.fr.id, err)
		}
		if relIdx >= nRels {
			return fmt.Errorf("%w: page %d: mu record names relation %d of %d", ErrCorruptPage, sc.fr.id, relIdx, nRels)
		}
		p, ok := new(big.Rat).SetString(ratStr)
		if !ok || p.Sign() <= 0 || p.Cmp(big.NewRat(1, 1)) > 0 {
			return fmt.Errorf("%w: page %d: mu record probability %q outside (0,1]", ErrCorruptPage, sc.fr.id, ratStr)
		}
		if err := fn(relIdx, rel.Tuple(elems), p); err != nil {
			return err
		}
	}
}

// LoadDB materializes the stored unreliable database. The relations
// are rebuilt in catalog (= vocabulary) order and mu entries in
// journal order, so a database written by BuildFromDB round-trips to
// an unreliable.DB whose canonical atom order — and therefore every
// engine's estimate for a fixed seed — is bit-identical to the
// original.
func (s *Store) LoadDB() (*unreliable.DB, error) {
	s.mu.Lock()
	voc := &rel.Vocabulary{}
	for _, cr := range s.cat.Rels {
		if err := voc.AddRel(rel.RelSym{Name: cr.Name, Arity: cr.Arity}); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: catalog: %v", ErrCorruptPage, err)
		}
	}
	for _, c := range s.cat.Consts {
		if err := voc.AddConst(c.Name); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: catalog: %v", ErrCorruptPage, err)
		}
	}
	n := s.cat.N
	consts := append([]catConst(nil), s.cat.Consts...)
	names := make([]string, len(s.cat.Rels))
	for i, cr := range s.cat.Rels {
		names[i] = cr.Name
	}
	s.mu.Unlock()

	a, err := rel.NewStructure(n, voc)
	if err != nil {
		return nil, fmt.Errorf("%w: catalog: %v", ErrCorruptPage, err)
	}
	for _, c := range consts {
		if err := a.SetConst(c.Name, c.Elem); err != nil {
			return nil, fmt.Errorf("%w: catalog constant %s: %v", ErrCorruptPage, c.Name, err)
		}
	}
	for _, name := range names {
		it, err := s.Scan(name)
		if err != nil {
			return nil, err
		}
		for {
			t, ok, err := it.Next()
			if err != nil {
				it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			if err := a.Add(name, t); err != nil {
				it.Close()
				return nil, fmt.Errorf("%w: relation %s: %v", ErrCorruptPage, name, err)
			}
		}
		it.Close()
	}
	db := unreliable.New(a)
	err = s.forEachMu(func(relIdx int, t rel.Tuple, p *big.Rat) error {
		return db.SetError(rel.GroundAtom{Rel: names[relIdx], Args: t}, p)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// VerifyStats summarises a full-file verification pass.
type VerifyStats struct {
	Pages     int
	MetaPages int
	HeapPages int
	MuPages   int
	Tuples    uint64
	MuRecords uint64
}

// Verify reads and validates every page and re-walks every chain,
// cross-checking the catalog counters. It is the `mkdb -check`
// backend and the chaos campaign's post-recovery oracle.
func (s *Store) Verify() (VerifyStats, error) {
	s.mu.Lock()
	cat := s.cat
	metaPages := append([]uint32(nil), s.metaPages...)
	names := make([]string, len(cat.Rels))
	for i := range cat.Rels {
		names[i] = cat.Rels[i].Name
	}
	s.mu.Unlock()

	var st VerifyStats
	st.Pages = int(cat.PageCount)
	seen := make(map[uint32]byte, cat.PageCount)
	for id := uint32(0); id < cat.PageCount; id++ {
		fr, err := s.pool.get(id)
		if err != nil {
			return st, err
		}
		seen[id] = pageType(fr.buf)
		switch pageType(fr.buf) {
		case pageTypeMeta:
			st.MetaPages++
		case pageTypeHeap:
			st.HeapPages++
		case pageTypeMu:
			st.MuPages++
		}
		s.pool.unpin(fr)
	}
	for _, id := range metaPages {
		if seen[id] != pageTypeMeta {
			return st, fmt.Errorf("%w: page %d: meta chain reaches a type-%d page", ErrCorruptPage, id, seen[id])
		}
	}
	for i, name := range names {
		it, err := s.Scan(name)
		if err != nil {
			return st, err
		}
		var count uint64
		for {
			_, ok, err := it.Next()
			if err != nil {
				it.Close()
				return st, err
			}
			if !ok {
				break
			}
			count++
		}
		it.Close()
		if count != cat.Rels[i].Tuples {
			return st, fmt.Errorf("%w: relation %s: chain holds %d tuples, catalog says %d", ErrCorruptPage, name, count, cat.Rels[i].Tuples)
		}
		st.Tuples += count
	}
	var muCount uint64
	if err := s.forEachMu(func(int, rel.Tuple, *big.Rat) error { muCount++; return nil }); err != nil {
		return st, err
	}
	if muCount != cat.MuCount {
		return st, fmt.Errorf("%w: mu chain holds %d records, catalog says %d", ErrCorruptPage, muCount, cat.MuCount)
	}
	st.MuRecords = muCount
	return st, nil
}

// BuildFromDB ingests an unreliable database into a new store file at
// path: tuples in vocabulary order (sorted within each relation, so a
// later LoadDB streams them in the same order a memory-resident
// Source would), then mu entries in canonical atom order, committing
// every batch tuples (0 means one final commit). onBatch, if non-nil,
// runs after each intermediate commit — the ingest smoke test uses it
// to widen the SIGKILL window.
func BuildFromDB(path string, db *unreliable.DB, opts Options, batch int, onBatch func()) error {
	s, err := Create(path, db.A, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	count := 0
	for _, rs := range db.A.Voc.Rels {
		for _, t := range db.A.Rel(rs.Name).Tuples() {
			if err := s.AddTuple(rs.Name, t); err != nil {
				return err
			}
			count++
			if batch > 0 && count%batch == 0 {
				if err := s.Commit(); err != nil {
					return err
				}
				if onBatch != nil {
					onBatch()
				}
			}
		}
	}
	for _, atom := range db.UncertainAtoms() {
		if err := s.SetError(atom.Rel, atom.Args, db.ErrorProb(atom)); err != nil {
			return err
		}
	}
	for _, atom := range db.SureFlips() {
		if err := s.SetError(atom.Rel, atom.Args, db.ErrorProb(atom)); err != nil {
			return err
		}
	}
	return s.Commit()
}
