package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/ra"
	"qrel/internal/rel"
	"qrel/internal/testutil"
	"qrel/internal/unreliable"
	"qrel/internal/workload"
)

// testDB builds a deterministic unreliable database large enough to
// span several pages at small page sizes.
func testDB(t *testing.T, n, uncertain int) *unreliable.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return workload.AddUncertainty(rng, workload.RandomStructure(rng, n, 0.3, 0.5), uncertain, 10)
}

// dbText renders a DB in the canonical text format; two DBs with
// equal text are bit-identical inputs to every engine.
func dbText(t *testing.T, db *unreliable.DB) string {
	t.Helper()
	var buf bytes.Buffer
	if err := unreliable.WriteDB(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRoundTripAcrossPageSizes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 24, 8)
	want := dbText(t, db)
	for _, pageSize := range []int{128, 256, 4096} {
		path := filepath.Join(t.TempDir(), "db.qstore")
		opts := Options{PageSize: pageSize, PoolBytes: int64(pageSize) * 8}
		if err := BuildFromDB(path, db, opts, 16, nil); err != nil {
			t.Fatalf("page size %d: build: %v", pageSize, err)
		}
		s, err := Open(path, opts)
		if err != nil {
			t.Fatalf("page size %d: open: %v", pageSize, err)
		}
		loaded, err := s.LoadDB()
		if err != nil {
			t.Fatalf("page size %d: load: %v", pageSize, err)
		}
		if got := dbText(t, loaded); got != want {
			t.Errorf("page size %d: loaded database differs from original:\n got: %s\nwant: %s", pageSize, got, want)
		}
		if st, err := s.Verify(); err != nil {
			t.Errorf("page size %d: verify: %v (%+v)", pageSize, err, st)
		}
		s.Close()
	}
}

func TestRoundTripEngineBitIdentity(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 12, 6)
	path := filepath.Join(t.TempDir(), "db.qstore")
	if err := BuildFromDB(path, db, Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	loaded, err := s.LoadDB()
	if err != nil {
		t.Fatal(err)
	}
	f := logic.MustParse("exists x . exists y . E(x,y) & S(y)", nil)
	opts := core.Options{Eps: 0.2, Delta: 0.1, Seed: 7}
	for _, engine := range []core.Engine{core.EngineWorldEnum, core.EngineMCDirect} {
		a, err := core.ReliabilityWith(context.Background(), engine, db, f, opts)
		if err != nil {
			t.Fatalf("%s on original: %v", engine, err)
		}
		b, err := core.ReliabilityWith(context.Background(), engine, loaded, f, opts)
		if err != nil {
			t.Fatalf("%s on loaded: %v", engine, err)
		}
		if a.RFloat != b.RFloat || a.Samples != b.Samples {
			t.Errorf("%s: estimate diverged across the store round trip: %v/%d vs %v/%d",
				engine, a.RFloat, a.Samples, b.RFloat, b.Samples)
		}
	}
}

func TestScanStreamsInsertionOrderAndSatisfiesSource(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 16, 4)
	path := filepath.Join(t.TempDir(), "db.qstore")
	if err := BuildFromDB(path, db, Options{PageSize: 128}, 0, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{PoolBytes: 128 * 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var _ ra.Source = s // compile-time and doc: Store is a Source

	it, err := s.Scan("E")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	want := db.A.Rel("E").Tuples() // sorted; BuildFromDB ingests in this order
	for i, wt := range want {
		got, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("tuple %d: ok=%v err=%v", i, ok, err)
		}
		if !got.Equal(wt) {
			t.Fatalf("tuple %d: got %v want %v", i, got, wt)
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("scan yielded more tuples than the relation holds")
	}
	if _, err := s.Scan("NoSuchRel"); err == nil {
		t.Error("scan of unknown relation succeeded")
	}
}

func TestBitFlipOnDiskIsDetectedAndQuarantined(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 16, 4)
	path := filepath.Join(t.TempDir(), "db.qstore")
	if err := BuildFromDB(path, db, Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Locate the first heap page of E from the catalog, then flip one
	// bit in the middle of it.
	probe, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heap := int(probe.cat.Rels[probe.relIdx["E"]].Head)
	probe.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[heap*256+128] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.LoadDB()
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("LoadDB on a bit-flipped page: got %v, want ErrCorruptPage", err)
	}
	// Quarantine: the second read fails identically without re-reading.
	before := s.Stats()
	_, err2 := s.LoadDB()
	if !errors.Is(err2, ErrCorruptPage) {
		t.Fatalf("second LoadDB: got %v, want ErrCorruptPage", err2)
	}
	after := s.Stats()
	if after.Quarantined == 0 {
		t.Error("corrupt page was not quarantined")
	}
	if after.Misses != before.Misses {
		t.Errorf("quarantined page was re-read from disk (misses %d -> %d)", before.Misses, after.Misses)
	}
	if _, err := s.Verify(); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("Verify: got %v, want ErrCorruptPage", err)
	}
}

func TestImpossibleSlotDirectoryIsCorrupt(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 16, 0)
	path := filepath.Join(t.TempDir(), "db.qstore")
	if err := BuildFromDB(path, db, Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	probe, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heap := int(probe.cat.Rels[probe.relIdx["E"]].Head)
	probe.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Forge E's head heap page: an absurd slot count with a freshly
	// sealed CRC, so only the structural validation can catch it.
	pg := raw[heap*256 : (heap+1)*256]
	binary.LittleEndian.PutUint16(pg[offNSlots:], 9999)
	sealPage(pg)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.LoadDB(); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("LoadDB over an impossible slot directory: got %v, want ErrCorruptPage", err)
	}
}

func TestUnknownFormatVersionRejected(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	db := testDB(t, 8, 0)
	path := filepath.Join(t.TempDir(), "db.qstore")
	if err := BuildFromDB(path, db, Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[pageHeaderSize+8:], formatVersion+1)
	sealPage(raw[:256])
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, Options{})
	if err == nil {
		t.Fatal("opened a store with an unknown format version")
	}
	if errors.Is(err, ErrCorruptPage) {
		t.Errorf("version rejection should be a clean refusal, not corruption: %v", err)
	}
}

func TestMutationValidation(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a := rel.MustStructure(4, rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}))
	path := filepath.Join(t.TempDir(), "db.qstore")
	s, err := Create(path, a, Options{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []error{
		s.AddTuple("Nope", rel.Tuple{0, 1}),
		s.AddTuple("E", rel.Tuple{0}),
		s.AddTuple("E", rel.Tuple{0, 99}),
		s.SetError("E", rel.Tuple{0, 1}, big.NewRat(3, 2)),
		s.SetError("E", rel.Tuple{0, 1}, new(big.Rat)),
		s.SetError("Nope", rel.Tuple{0}, big.NewRat(1, 2)),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: invalid mutation accepted", i)
		}
	}
	if err := s.AddTuple("E", rel.Tuple{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetError("E", rel.Tuple{0, 1}, big.NewRat(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Tuples("E"); got != 1 {
		t.Errorf("Tuples(E) = %d, want 1", got)
	}
}

func TestCreateRejectsBadPageSize(t *testing.T) {
	a := rel.MustStructure(4, rel.MustVocabulary())
	for _, ps := range []int{64, 100, 1 << 16} {
		if _, err := Create(filepath.Join(t.TempDir(), "x.qstore"), a, Options{PageSize: ps}); err == nil {
			t.Errorf("page size %d accepted", ps)
		}
	}
}

func TestOpenGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.qstore")
	if err := os.WriteFile(path, []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("open of garbage: got %v, want ErrCorruptPage", err)
	}
}
