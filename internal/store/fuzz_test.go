package store

import (
	"bytes"
	"testing"
)

// FuzzPage throws arbitrary bytes at the page validator and, when a
// page passes, at the record accessors: validation must never panic,
// and every page it accepts must have an in-bounds slot directory so
// pageRecord cannot slice out of range.
func FuzzPage(f *testing.F) {
	seed := make([]byte, MinPageSize)
	initPage(seed, pageTypeHeap, 0)
	pageInsert(seed, encodeTuple(nil, []int{1, 2}))
	sealPage(seed)
	f.Add(seed)
	unsealed := make([]byte, MinPageSize)
	initPage(unsealed, pageTypeMu, nilPage)
	f.Add(unsealed)
	f.Add(bytes.Repeat([]byte{0xFF}, MinPageSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		if !validPageSize(len(data)) {
			return
		}
		if err := validatePage(data, 0); err != nil {
			return
		}
		// Accepted: every record must be reachable without panicking.
		for i := 0; i < pageNSlots(data); i++ {
			rec := pageRecord(data, i)
			switch pageType(data) {
			case pageTypeHeap:
				if len(rec)%2 == 0 && len(rec) <= 8 {
					elems := make([]int, len(rec)/2)
					_ = decodeTuple(rec, elems)
				}
			case pageTypeMu:
				_, _, _, _ = decodeMu(rec)
			}
		}
	})
}

// FuzzJournal feeds arbitrary bytes to the journal decoder: it must
// never panic, must only yield records whose checksum verifies, and
// must be a prefix-decoder (truncating the input never yields records
// the full input did not).
func FuzzJournal(f *testing.F) {
	img := make([]byte, MinPageSize)
	initPage(img, pageTypeHeap, 0)
	sealPage(img)
	rec := encodeJournalRecord(1, MinPageSize, []pageImage{{id: 3, data: img}})
	f.Add(rec, MinPageSize)
	f.Add(append(rec, rec...), MinPageSize)
	f.Add(rec[:len(rec)-5], MinPageSize)
	f.Add([]byte(journalMagic), MinPageSize)
	f.Fuzz(func(t *testing.T, data []byte, pageSize int) {
		if !validPageSize(pageSize) {
			return
		}
		recs := decodeJournal(data, pageSize)
		for _, r := range recs {
			for _, im := range r.images {
				if len(im.data) != pageSize {
					t.Fatalf("decoded image of %d bytes from a %d-byte-page journal", len(im.data), pageSize)
				}
			}
		}
		if len(data) > 0 {
			prefix := decodeJournal(data[:len(data)-1], pageSize)
			if len(prefix) > len(recs) {
				t.Fatalf("truncating the journal grew the record count: %d -> %d", len(recs), len(prefix))
			}
		}
	})
}
