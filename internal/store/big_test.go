package store

import (
	"path/filepath"
	"runtime"
	"testing"

	"qrel/internal/ra"
	"qrel/internal/rel"
	"qrel/internal/testutil"
)

// TestMillionTupleStreamUnderBudget is the streaming acceptance test:
// a million tuples flow through scan → filter → join out of a paged
// file whose buffer pool is far smaller than the data, and the
// pipeline neither materializes the relation nor busts the pool.
func TestMillionTupleStreamUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("million-tuple ingest in -short mode")
	}
	testutil.CheckGoroutineLeaks(t)

	const (
		n       = 1024
		nTuples = 1_000_000
		budget  = 256 << 10 // 256 KiB pool vs ~4 MB of heap pages
	)
	a := rel.MustStructure(n, rel.MustVocabulary(
		rel.RelSym{Name: "E", Arity: 2},
		rel.RelSym{Name: "S", Arity: 1},
	))
	path := filepath.Join(t.TempDir(), "big.qstore")
	s, err := Create(path, a, Options{PageSize: 4096, PoolBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// E = {(i/n, i%n)} for i < nTuples — all distinct; S = {0..7}.
	for i := 0; i < nTuples; i++ {
		if err := s.AddTuple("E", rel.Tuple{i / n, i % n}); err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
	}
	for y := 0; y < 8; y++ {
		if err := s.AddTuple("S", rel.Tuple{y}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	dataBytes := int64(s.PageCount()) * int64(s.PageSize())
	if dataBytes <= budget*4 {
		t.Fatalf("dataset (%d bytes) is not decisively larger than the pool budget (%d)", dataBytes, budget)
	}

	// σ[x≠y](E) ⋈ S(y): every E tuple streams through the filter; the
	// hash build side is tiny.
	q := ra.Join{
		L: ra.Select{From: ra.Base{Rel: "E", Attrs: []string{"x", "y"}}, Attr: "x", Other: "y", Elem: -1, Negate: true},
		R: ra.Base{Rel: "S", Attrs: []string{"y"}},
	}
	it, schema, err := ra.Build(s, q)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if len(schema) != 2 {
		t.Fatalf("join schema %v, want 2 attributes", schema)
	}

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	const heapSlack = 64 << 20 // streaming, not materializing ~12 MB of rel.Tuple + lineage

	count := 0
	for {
		tp, lin, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(lin) != 2 {
			t.Fatalf("joined tuple %v carries %d lineage atoms, want 2", tp, len(lin))
		}
		count++
		if count%200_000 == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > base.HeapAlloc+heapSlack {
				t.Fatalf("after %d tuples: heap grew from %d to %d — pipeline is materializing", count, base.HeapAlloc, ms.HeapAlloc)
			}
		}
	}
	// Expected count, analytically: tuples (x,y) with y<8 and x≠y.
	// i%n < 8 happens 8 times per full block of n and for the first 8
	// of the remainder; x==y removed when i/n == i%n < 8.
	want := 0
	for i := 0; i < nTuples; i++ {
		if i%n < 8 && i/n != i%n {
			want++
		}
	}
	if count != want {
		t.Errorf("streamed join yielded %d tuples, want %d", count, want)
	}
	st := s.Stats()
	if st.MaxBytesUse > budget {
		t.Errorf("pool high-water mark %d exceeds budget %d", st.MaxBytesUse, budget)
	}
	if st.Evictions == 0 {
		t.Error("a scan 16x the pool budget evicted nothing")
	}
}
