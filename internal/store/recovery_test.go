package store

import (
	"bytes"
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"qrel/internal/faultinject"
	"qrel/internal/rel"
	"qrel/internal/testutil"
)

// buildBase writes a committed store and returns its data-file bytes.
func buildBase(t *testing.T, path string) []byte {
	t.Helper()
	db := testDB(t, 16, 4)
	if err := BuildFromDB(path, db, Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// stageBatch opens the store at path, buffers a batch of mutations,
// and arms-then-commits so the commit dies in the crash window: the
// journal holds the complete record, the data file is untouched. It
// returns the journal record bytes.
func stageBatch(t *testing.T, path string) []byte {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.AddTuple("E", rel.Tuple{i % 16, (i * 3) % 16}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetError("E", rel.Tuple{0, 0}, big.NewRat(1, 7)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash window")
	faultinject.Enable(faultinject.SiteStoreCrash, faultinject.Fault{Err: boom, Times: 1})
	defer faultinject.Reset()
	if err := s.Commit(); !errors.Is(err, boom) {
		t.Fatalf("commit under crash-window fault: got %v", err)
	}
	rec, err := os.ReadFile(path + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) == 0 {
		t.Fatal("crash-window commit left an empty journal")
	}
	return rec
}

// TestCrashAtEveryJournalOffset is the crash-safety property test:
// for every truncation offset of the journal record, reopening the
// store yields a state byte-identical to either the pre-commit file
// (torn record: clean rollback) or the fully committed file (complete
// record: replay) — never a blend — and the database loads.
func TestCrashAtEveryJournalOffset(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.qstore")
	pre := buildBase(t, base)
	rec := stageBatch(t, base)

	// Compute the committed ("post") state by letting recovery replay
	// the full record once.
	postPath := filepath.Join(dir, "post.qstore")
	if err := os.WriteFile(postPath, pre, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(postPath+".journal", rec, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(postPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("replayed store fails verification: %v", err)
	}
	s.Close()
	post, err := os.ReadFile(postPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pre, post) {
		t.Fatal("replay did not change the data file; the property test would be vacuous")
	}

	victim := filepath.Join(dir, "victim.qstore")
	for k := 0; k <= len(rec); k++ {
		if err := os.WriteFile(victim, pre, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(victim+".journal", rec[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(victim, Options{})
		if err != nil {
			t.Fatalf("offset %d: reopen failed: %v", k, err)
		}
		if _, err := s.LoadDB(); err != nil {
			t.Fatalf("offset %d: recovered store does not load: %v", k, err)
		}
		s.Close()
		got, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case k < len(rec):
			if !bytes.Equal(got, pre) {
				t.Fatalf("offset %d: torn journal did not roll back to the pre-commit state", k)
			}
		default:
			if !bytes.Equal(got, post) {
				t.Fatalf("offset %d: complete journal did not replay to the committed state", k)
			}
		}
		// Recovery must consume the journal either way.
		if j, err := os.ReadFile(victim + ".journal"); err != nil || len(j) != 0 {
			t.Fatalf("offset %d: journal not truncated after recovery (len %d, err %v)", k, len(j), err)
		}
	}
}

// TestRecoveryRepairsTornPageApply simulates a crash mid-apply: the
// journal is complete but the data file holds garbage half-pages.
// Replay must repair every one of them.
func TestRecoveryRepairsTornPageApply(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.qstore")
	pre := buildBase(t, base)
	rec := stageBatch(t, base)

	// Reference committed state.
	postPath := filepath.Join(dir, "post.qstore")
	os.WriteFile(postPath, pre, 0o644)
	os.WriteFile(postPath+".journal", rec, 0o644)
	s, err := Open(postPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	post, _ := os.ReadFile(postPath)

	// Victim: full journal, and the data file torn as if the apply loop
	// died halfway through a page write.
	torn := append([]byte(nil), pre...)
	images := decodeJournal(rec, 256)
	if len(images) != 1 {
		t.Fatalf("expected one journal record, got %d", len(images))
	}
	for _, im := range images[0].images {
		off := int(im.id) * 256
		for len(torn) < off+256 {
			torn = append(torn, 0)
		}
		copy(torn[off:off+128], im.data[:128]) // half the new page, then garbage
		for i := off + 128; i < off+256; i++ {
			torn[i] = 0xAA
		}
	}
	victim := filepath.Join(dir, "victim.qstore")
	os.WriteFile(victim, torn, 0o644)
	os.WriteFile(victim+".journal", rec, 0o644)
	s, err = Open(victim, Options{})
	if err != nil {
		t.Fatalf("reopen over torn pages: %v", err)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	s.Close()
	got, _ := os.ReadFile(victim)
	if !bytes.Equal(got, post) {
		t.Fatal("recovery did not repair the torn page apply to the committed state")
	}
}

// TestCommitFaultSites drives each commit-path fault site and checks
// the recovery outcome it advertises: journal-tear rolls back,
// crash-window and short-write replay forward.
func TestCommitFaultSites(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	boom := errors.New("injected")
	cases := []struct {
		site       string
		wantCommit bool // state after reopen: true = batch applied
	}{
		{faultinject.SiteStoreJournalTear, false},
		{faultinject.SiteStoreCrash, true},
		{faultinject.SiteStoreShortWrite, true},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			defer faultinject.Reset()
			path := filepath.Join(t.TempDir(), "db.qstore")
			buildBase(t, path)
			s, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			preTuples := s.Tuples("E")
			for i := 0; i < 10; i++ {
				if err := s.AddTuple("E", rel.Tuple{i, i}); err != nil {
					t.Fatal(err)
				}
			}
			faultinject.Enable(tc.site, faultinject.Fault{Err: boom, Times: 1})
			if err := s.Commit(); !errors.Is(err, boom) {
				t.Fatalf("commit under %s: got %v, want injected error", tc.site, err)
			}
			s.Close() // crash: abandon in-memory state
			faultinject.Reset()

			r, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.site, err)
			}
			defer r.Close()
			if _, err := r.Verify(); err != nil {
				t.Fatalf("verify after %s: %v", tc.site, err)
			}
			want := preTuples
			if tc.wantCommit {
				want += 10
			}
			if got := r.Tuples("E"); got != want {
				t.Errorf("after %s: %d tuples, want %d", tc.site, got, want)
			}
		})
	}
}

// TestCommitRetryAfterTear: a failed commit attempt must not poison
// the journal for the retry.
func TestCommitRetryAfterTear(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	defer faultinject.Reset()
	boom := errors.New("injected")
	path := filepath.Join(t.TempDir(), "db.qstore")
	buildBase(t, path)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pre := s.Tuples("E")
	for i := 0; i < 5; i++ {
		if err := s.AddTuple("E", rel.Tuple{i, (i + 1) % 16}); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Enable(faultinject.SiteStoreJournalTear, faultinject.Fault{Err: boom, Times: 1})
	if err := s.Commit(); !errors.Is(err, boom) {
		t.Fatalf("first commit: got %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	s.Close()
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Tuples("E"); got != pre+5 {
		t.Errorf("after retry: %d tuples, want %d", got, pre+5)
	}
	if _, err := r.Verify(); err != nil {
		t.Errorf("verify after retry: %v", err)
	}
}

// TestCreateClearsStaleJournal: Create at a path where a previous
// store incarnation crashed mid-commit must not let the dead store's
// journal replay into the fresh file — that would graft the old
// store's pages (and later, duplicate chains) onto the new one.
func TestCreateClearsStaleJournal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qstore")
	buildBase(t, path)
	stageBatch(t, path) // leaves a complete, durable record in the journal
	db := testDB(t, 16, 4)
	s, err := Create(path, db.A, Options{PageSize: 256})
	if err != nil {
		t.Fatalf("create over crashed store: %v", err)
	}
	defer s.Close()
	if got := s.Tuples("E"); got != 0 {
		t.Errorf("fresh store holds %d tuples in E; the stale journal replayed", got)
	}
	if _, err := s.Verify(); err != nil {
		t.Errorf("verify fresh store: %v", err)
	}
	if j, err := os.ReadFile(path + ".journal"); err == nil && len(j) != 0 {
		t.Errorf("stale journal survived Create (%d bytes)", len(j))
	}
}

// TestCommitRepairsBeforeTruncatingJournal: after a commit dies
// mid-apply (journal record durable, data page torn), the next commit
// must re-apply that record before truncating the journal. If it
// truncated first and its own append then tore, a crash would leave a
// torn data page with an empty journal — unrecoverable.
func TestCommitRepairsBeforeTruncatingJournal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	defer faultinject.Reset()
	boom := errors.New("injected")
	path := filepath.Join(t.TempDir(), "db.qstore")
	buildBase(t, path)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre := s.Tuples("E")
	for i := 0; i < 10; i++ {
		if err := s.AddTuple("E", rel.Tuple{i, i}); err != nil {
			t.Fatal(err)
		}
	}
	// First commit: the journal lands durably, then the page apply tears.
	faultinject.Enable(faultinject.SiteStoreShortWrite, faultinject.Fault{Err: boom, Times: 1})
	if err := s.Commit(); !errors.Is(err, boom) {
		t.Fatalf("commit under short-write: got %v", err)
	}
	// Second commit: the journal append itself tears. The durable first
	// record must have healed the torn page before it was truncated.
	faultinject.Reset()
	faultinject.Enable(faultinject.SiteStoreJournalTear, faultinject.Fault{Err: boom, Times: 1})
	if err := s.Commit(); !errors.Is(err, boom) {
		t.Fatalf("commit under journal-tear: got %v", err)
	}
	s.Close() // crash: abandon in-memory state
	faultinject.Reset()

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after tear-after-short-write: %v", err)
	}
	defer r.Close()
	if _, err := r.Verify(); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
	if got := r.Tuples("E"); got != pre+10 {
		t.Errorf("after repair: %d tuples, want %d", got, pre+10)
	}
}

// TestRecoveryRefusesForeignJournal: a journal whose page size does
// not match the data file's meta page belongs to another store;
// recovery must refuse rather than replay at wrong offsets.
func TestRecoveryRefusesForeignJournal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	dir := t.TempDir()
	small := filepath.Join(dir, "small.qstore")
	buildBase(t, small) // page size 256
	rec := stageBatch(t, small)

	victim := filepath.Join(dir, "victim.qstore")
	if err := BuildFromDB(victim, testDB(t, 16, 4), Options{PageSize: 512}, 0, nil); err != nil {
		t.Fatal(err)
	}
	pre, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim+".journal", rec, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(victim, Options{}); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("open with foreign journal: got %v, want ErrCorruptPage", err)
	}
	got, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pre) {
		t.Error("foreign journal was replayed into the data file")
	}
}

// TestAppendRecordOversizeLeavesNoOrphan: a record too large for even
// an empty page must be rejected before a page is allocated — an
// admitted orphan would be journaled at the next commit and inflate
// the file as an unreferenced page.
func TestAppendRecordOversizeLeavesNoOrphan(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	path := filepath.Join(t.TempDir(), "db.qstore")
	buildBase(t, path)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prePages := s.PageCount()
	rec := make([]byte, s.PageSize()) // cannot fit any page
	s.mu.Lock()
	i := s.relIdx["E"]
	cr := &s.cat.Rels[i]
	err = s.appendRecord(rec, pageTypeHeap, uint32(i), &cr.Head, &cr.Tail, &cr.Pages, func() { cr.Tuples++ })
	s.mu.Unlock()
	if err == nil {
		t.Fatal("oversize record accepted")
	}
	if got := s.PageCount(); got != prePages {
		t.Errorf("oversize record allocated a page: %d pages, want %d", got, prePages)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Verify(); err != nil {
		t.Errorf("verify after rejected record: %v", err)
	}
}

// TestBitFlipFaultSite arms the read-path flip: every fetch that
// fires the site must surface ErrCorruptPage, and once the fault is
// gone the intact disk state serves again (after a fresh open —
// quarantine is per-session and deliberately sticky).
func TestBitFlipFaultSite(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "db.qstore")
	buildBase(t, path)
	boom := errors.New("flip")
	faultinject.Enable(faultinject.SiteStoreBitFlip, faultinject.Fault{Err: boom, Times: 1})
	s, err := Open(path, Options{})
	if err == nil {
		// The flip may land on a data page instead of the meta chain.
		_, err = s.LoadDB()
		s.Close()
	}
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("with bit-flip armed: got %v, want ErrCorruptPage", err)
	}
	faultinject.Reset()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen with fault cleared: %v", err)
	}
	defer s2.Close()
	if _, err := s2.LoadDB(); err != nil {
		t.Errorf("load with fault cleared: %v", err)
	}
}
