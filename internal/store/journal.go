package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"qrel/internal/faultinject"
)

// The write-ahead intent journal sits next to the data file as
// <path>.journal. A commit appends one record holding full images of
// every dirty page, fsyncs it, applies the images to the data file,
// fsyncs that, and truncates the journal. Recovery on open replays
// every complete record in order (full-page images are idempotent)
// and discards a torn tail — so a SIGKILL at any byte offset yields
// either the whole commit or a clean rollback, never a torn page.

const (
	journalMagic      = "QRELJRN1"
	journalHeaderSize = 8 + 8 + 4 + 4 + 4 // magic, seq, npages, pageSize, payload crc
)

type pageImage struct {
	id   uint32
	data []byte
}

// encodeJournalRecord frames a commit: header then npages images of
// (pageID u32, page bytes). The CRC covers the payload only; the
// fixed-width header fields are validated structurally.
func encodeJournalRecord(seq uint64, pageSize int, images []pageImage) []byte {
	payload := make([]byte, 0, len(images)*(4+pageSize))
	for _, im := range images {
		payload = binary.LittleEndian.AppendUint32(payload, im.id)
		payload = append(payload, im.data...)
	}
	rec := make([]byte, 0, journalHeaderSize+len(payload))
	rec = append(rec, journalMagic...)
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(images)))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(pageSize))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

// decodeJournal walks the journal bytes and returns every complete,
// checksummed record. Anything after the last complete record — a
// torn tail from a crash mid-append, or garbage — is ignored: that
// commit never happened.
func decodeJournal(data []byte, pageSize int) []journalRecord {
	var recs []journalRecord
	for len(data) >= journalHeaderSize {
		if string(data[:8]) != journalMagic {
			break
		}
		seq := binary.LittleEndian.Uint64(data[8:])
		npages := int(binary.LittleEndian.Uint32(data[16:]))
		recPageSize := int(binary.LittleEndian.Uint32(data[20:]))
		wantCRC := binary.LittleEndian.Uint32(data[24:])
		if recPageSize != pageSize || npages < 0 || npages > 1<<20 {
			break
		}
		payloadLen := npages * (4 + pageSize)
		if len(data) < journalHeaderSize+payloadLen {
			break // torn tail
		}
		payload := data[journalHeaderSize : journalHeaderSize+payloadLen]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			break
		}
		rec := journalRecord{seq: seq}
		for i := 0; i < npages; i++ {
			off := i * (4 + pageSize)
			rec.images = append(rec.images, pageImage{
				id:   binary.LittleEndian.Uint32(payload[off:]),
				data: payload[off+4 : off+4+pageSize],
			})
		}
		recs = append(recs, rec)
		data = data[journalHeaderSize+payloadLen:]
	}
	return recs
}

type journalRecord struct {
	seq    uint64
	images []pageImage
}

// appendJournal durably appends rec to the journal file. The
// store/journal-tear fault site leaves a torn prefix on disk — the
// crash the decoder's torn-tail handling exists for.
func appendJournal(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if ferr := faultinject.Hit(faultinject.SiteStoreJournalTear); ferr != nil {
		f.Write(rec[:len(rec)/2])
		f.Sync()
		return fmt.Errorf("store: journal append: %w", ferr)
	}
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return f.Sync()
}

// resetJournal truncates the journal after its record has been fully
// applied (or after recovery replayed it).
func resetJournal(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
