package store

import (
	"path/filepath"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/testutil"
)

// buildWide creates a store whose E chain spans many pages, returning
// the open store and the number of heap pages.
func buildWide(t *testing.T, poolBytes int64) *Store {
	t.Helper()
	a := rel.MustStructure(256, rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}))
	path := filepath.Join(t.TempDir(), "db.qstore")
	s, err := Create(path, a, Options{PageSize: 128, PoolBytes: poolBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if err := s.AddTuple("E", rel.Tuple{i % 256, (i * 7) % 256}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s, err = Open(path, Options{PoolBytes: poolBytes})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPoolBudgetIsHard scans a many-page chain through a pool that
// holds only a handful of frames: the high-water mark must never
// exceed the (clamped) budget, and evictions must actually happen.
func TestPoolBudgetIsHard(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	const budget = 128 * 4 // minimum: four frames
	s := buildWide(t, budget)
	defer s.Close()
	if s.PageCount() < 20 {
		t.Fatalf("store too small (%d pages) for an eviction test", s.PageCount())
	}
	for pass := 0; pass < 3; pass++ {
		it, err := s.Scan("E")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		it.Close()
		if n != 600 {
			t.Fatalf("pass %d: scanned %d tuples, want 600", pass, n)
		}
	}
	st := s.Stats()
	if st.MaxBytesUse > budget {
		t.Errorf("pool high-water mark %d exceeds budget %d", st.MaxBytesUse, budget)
	}
	if st.Evictions == 0 {
		t.Error("scanning a chain larger than the pool evicted nothing")
	}
	if st.Misses < uint64(s.PageCount()) {
		t.Errorf("three passes over an evicting pool missed only %d times for %d pages", st.Misses, s.PageCount())
	}
	// A back-to-back fetch of the same page is served from the frame.
	fr, err := s.pool.get(s.cat.Rels[0].Head)
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := s.pool.get(s.cat.Rels[0].Head)
	if err != nil {
		t.Fatal(err)
	}
	if fr2 != fr {
		t.Error("second fetch of a resident page returned a different frame")
	}
	if got := s.Stats(); got.Hits != st.Hits+1 {
		t.Errorf("resident re-fetch was not counted as a hit (%d -> %d)", st.Hits, got.Hits)
	}
	s.pool.unpin(fr)
	s.pool.unpin(fr2)
}

// TestPoolPinnedFramesSurviveEviction holds a pin on one page while a
// scan churns the rest of the pool; the pinned frame's buffer must
// stay valid (same backing data) throughout.
func TestPoolPinnedFramesSurviveEviction(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := buildWide(t, 128*4)
	defer s.Close()
	head := s.cat.Rels[0].Head
	fr, err := s.pool.get(head)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), fr.buf...)
	it, err := s.Scan("E")
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	it.Close()
	if fr2, ok := s.pool.frames[head]; !ok || fr2 != fr {
		t.Fatal("pinned frame was evicted")
	}
	for i := range want {
		if fr.buf[i] != want[i] {
			t.Fatalf("pinned frame byte %d changed under churn", i)
		}
	}
	s.pool.unpin(fr)
}

// TestPoolDirtyFramesNeverEvicted buffers uncommitted mutations, then
// scans to force eviction pressure: every dirty page must still be in
// the pool afterwards (eviction would lose the write).
func TestPoolDirtyFramesNeverEvicted(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := buildWide(t, 128*4)
	defer s.Close()
	if err := s.AddTuple("E", rel.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	var dirty []uint32
	for id, fr := range s.pool.frames {
		if fr.dirty {
			dirty = append(dirty, id)
		}
	}
	if len(dirty) == 0 {
		t.Fatal("AddTuple left no dirty frame")
	}
	it, _ := s.Scan("E")
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	it.Close()
	for _, id := range dirty {
		if fr, ok := s.pool.frames[id]; !ok || !fr.dirty {
			t.Errorf("dirty page %d was evicted or cleaned without a commit", id)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCommitKeepsBudget ingests far more than the pool budget in
// one uncommitted burst; appendRecord must auto-commit so the dirty
// set never outgrows the pool.
func TestAutoCommitKeepsBudget(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	a := rel.MustStructure(256, rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}))
	path := filepath.Join(t.TempDir(), "db.qstore")
	const budget = 128 * 6
	s, err := Create(path, a, Options{PageSize: 128, PoolBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := s.AddTuple("E", rel.Tuple{i % 256, (i * 3) % 256}); err != nil {
			t.Fatal(err)
		}
		if db := s.pool.dirtyBytes(); db > budget {
			t.Fatalf("after tuple %d: dirty set %d bytes exceeds budget %d", i, db, budget)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MaxBytesUse > budget {
		t.Errorf("pool high-water mark %d exceeds budget %d", st.MaxBytesUse, budget)
	}
	s.Close()
	s, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Tuples("E"); got != 2000 {
		t.Errorf("reopened store holds %d tuples, want 2000", got)
	}
	if _, err := s.Verify(); err != nil {
		t.Error(err)
	}
}
