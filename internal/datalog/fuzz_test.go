package datalog

import "testing"

// FuzzParse checks the Datalog parser never panics and that parsed
// programs print/parse stably.
func FuzzParse(f *testing.F) {
	seeds := []string{
		reachProgram,
		"P(x) :- Node(x), not Q(x).\nQ(x) :- Node(x), not P(x).\n",
		"Fact(1).",
		"A(x) :- B(x,",
		"% only a comment",
		"A(x) : B(x).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n%s", err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("print/parse unstable")
		}
	})
}
