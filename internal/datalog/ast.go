// Package datalog implements Datalog with stratified negation over the
// relational substrate: parser, safety and stratification checks, and
// semi-naive bottom-up evaluation. Datalog queries are among the
// polynomial-time evaluable queries covered by Theorem 4.2 (the case de
// Rougemont had proved) and Theorem 5.12; the package also provides the
// corresponding reliability engines — exact world enumeration and
// absolute-error Monte Carlo — over unreliable EDBs. The flagship
// application is network reliability: the probability that a
// reachability fact survives random edge failures (the problem that
// motivated Karp & Luby's original Monte Carlo work).
package datalog

import (
	"fmt"
	"strings"
)

// Term is a Datalog term: a variable or a universe element.
type Term struct {
	// Var is non-empty for a variable.
	Var string
	// Elem is the universe element when Var is empty.
	Elem int
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// E makes an element term.
func E(e int) Term { return Term{Elem: e} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprint(t.Elem)
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom as "Reach(x,y)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Vars returns the distinct variables of the atom in order.
func (a Atom) Vars() []string {
	var out []string
	seen := map[string]struct{}{}
	for _, t := range a.Args {
		if t.IsVar() {
			if _, ok := seen[t.Var]; !ok {
				seen[t.Var] = struct{}{}
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// Literal is an atom or its negation.
type Literal struct {
	Atom    Atom
	Negated bool
}

// String renders the literal as "not Reach(x,y)" when negated.
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is a Horn rule with optional negated body literals.
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule as "H(x) :- B1(x), not B2(x).".
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a list of rules. IDB predicates are those appearing in
// some head; all other predicates are EDB and must exist in the input
// structure.
type Program struct {
	Rules []Rule
}

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IDBPreds returns the head predicates in first-appearance order.
func (p *Program) IDBPreds() []string {
	var out []string
	seen := map[string]struct{}{}
	for _, r := range p.Rules {
		if _, ok := seen[r.Head.Pred]; !ok {
			seen[r.Head.Pred] = struct{}{}
			out = append(out, r.Head.Pred)
		}
	}
	return out
}

// isIDB reports whether pred appears in some head.
func (p *Program) isIDB(pred string) bool {
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			return true
		}
	}
	return false
}

// Validate checks arities are used consistently and every rule is safe:
// every head variable and every variable in a negated literal must
// occur in a positive body literal.
func (p *Program) Validate() error {
	arity := map[string]int{}
	note := func(a Atom) error {
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for i, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return err
		}
		positive := map[string]struct{}{}
		for _, l := range r.Body {
			if err := note(l.Atom); err != nil {
				return err
			}
			if !l.Negated {
				for _, v := range l.Atom.Vars() {
					positive[v] = struct{}{}
				}
			}
		}
		for _, v := range r.Head.Vars() {
			if _, ok := positive[v]; !ok {
				return fmt.Errorf("datalog: rule %d (%s): head variable %q not bound by a positive body literal", i, r, v)
			}
		}
		for _, l := range r.Body {
			if !l.Negated {
				continue
			}
			for _, v := range l.Atom.Vars() {
				if _, ok := positive[v]; !ok {
					return fmt.Errorf("datalog: rule %d (%s): variable %q in negated literal not bound positively", i, r, v)
				}
			}
		}
	}
	return nil
}
