package datalog

import (
	"fmt"

	"qrel/internal/rel"
)

// MaxIterations caps the fix-point loop as a defensive bound; the
// semi-naive iteration terminates after at most n^arity rounds per
// stratum on well-formed inputs.
const MaxIterations = 1 << 20

// Eval computes the IDB relations of the program on the given EDB
// structure by stratum-wise semi-naive bottom-up evaluation. Every
// non-head predicate must exist in the EDB with matching arity; IDB
// predicates may not shadow EDB relations.
func (p *Program) Eval(edb *rel.Structure) (map[string]*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arity := map[string]int{}
	for _, r := range p.Rules {
		arity[r.Head.Pred] = len(r.Head.Args)
		for _, l := range r.Body {
			arity[l.Atom.Pred] = len(l.Atom.Args)
		}
	}
	// Check EDB predicates and IDB shadowing.
	for pred, k := range arity {
		if p.isIDB(pred) {
			if edb.Rel(pred) != nil {
				return nil, fmt.Errorf("datalog: IDB predicate %s shadows an EDB relation", pred)
			}
			continue
		}
		r := edb.Rel(pred)
		if r == nil {
			return nil, fmt.Errorf("datalog: EDB relation %q not in database", pred)
		}
		if r.Arity != k {
			return nil, fmt.Errorf("datalog: EDB relation %s has arity %d, program uses %d", pred, r.Arity, k)
		}
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	idb := map[string]*rel.Relation{}
	for _, r := range p.Rules {
		if idb[r.Head.Pred] == nil {
			idb[r.Head.Pred] = rel.NewRelation(len(r.Head.Args))
		}
	}
	ev := &evaluator{edb: edb, idb: idb}
	for _, layer := range strata {
		inStratum := map[string]bool{}
		for _, pred := range layer {
			inStratum[pred] = true
		}
		var rules []Rule
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := ev.fixpoint(rules, inStratum); err != nil {
			return nil, err
		}
	}
	return idb, nil
}

type evaluator struct {
	edb *rel.Structure
	idb map[string]*rel.Relation
}

// relation resolves a predicate to its current relation.
func (ev *evaluator) relation(pred string) *rel.Relation {
	if r, ok := ev.idb[pred]; ok {
		return r
	}
	return ev.edb.Rel(pred)
}

// fixpoint runs semi-naive iteration for one stratum's rules.
func (ev *evaluator) fixpoint(rules []Rule, inStratum map[string]bool) error {
	// Round 0: evaluate every rule against the full current relations.
	delta := map[string]*rel.Relation{}
	addDelta := func(pred string, t rel.Tuple) {
		full := ev.idb[pred]
		if full.Contains(t) {
			return
		}
		full.Add(t)
		if delta[pred] == nil {
			delta[pred] = rel.NewRelation(len(t))
		}
		delta[pred].Add(t)
	}
	for _, r := range rules {
		if err := ev.applyRule(r, -1, nil, addDelta); err != nil {
			return err
		}
	}
	// Delta rounds: any new derivation must use at least one tuple from
	// the previous round's delta in some in-stratum positive position.
	for iter := 0; len(delta) > 0; iter++ {
		if iter > MaxIterations {
			return fmt.Errorf("datalog: fixpoint exceeded %d iterations", MaxIterations)
		}
		prev := delta
		delta = map[string]*rel.Relation{}
		addDelta = func(pred string, t rel.Tuple) {
			full := ev.idb[pred]
			if full.Contains(t) {
				return
			}
			full.Add(t)
			if delta[pred] == nil {
				delta[pred] = rel.NewRelation(len(t))
			}
			delta[pred].Add(t)
		}
		for _, r := range rules {
			for i, l := range r.Body {
				if l.Negated || !inStratum[l.Atom.Pred] {
					continue
				}
				d := prev[l.Atom.Pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				if err := ev.applyRule(r, i, d, addDelta); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// applyRule enumerates the satisfying bindings of the rule body and
// emits head tuples. When deltaPos >= 0, the literal at that index
// ranges over deltaRel instead of its full relation.
func (ev *evaluator) applyRule(r Rule, deltaPos int, deltaRel *rel.Relation, emit func(string, rel.Tuple)) error {
	bind := map[string]int{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(r.Body) {
			t := make(rel.Tuple, len(r.Head.Args))
			for j, arg := range r.Head.Args {
				if arg.IsVar() {
					t[j] = bind[arg.Var]
				} else {
					if arg.Elem < 0 || arg.Elem >= ev.edb.N {
						return fmt.Errorf("datalog: element %d outside universe [0,%d)", arg.Elem, ev.edb.N)
					}
					t[j] = arg.Elem
				}
			}
			emit(r.Head.Pred, t)
			return nil
		}
		l := r.Body[i]
		if l.Negated {
			// Safety guarantees all variables are bound.
			t := make(rel.Tuple, len(l.Atom.Args))
			for j, arg := range l.Atom.Args {
				if arg.IsVar() {
					t[j] = bind[arg.Var]
				} else {
					t[j] = arg.Elem
				}
			}
			if ev.relation(l.Atom.Pred).Contains(t) {
				return nil
			}
			return rec(i + 1)
		}
		src := ev.relation(l.Atom.Pred)
		if i == deltaPos {
			src = deltaRel
		}
		var innerErr error
		src.ForEach(func(t rel.Tuple) bool {
			var bound []string
			ok := true
			for j, arg := range l.Atom.Args {
				if !arg.IsVar() {
					if t[j] != arg.Elem {
						ok = false
						break
					}
					continue
				}
				if v, exists := bind[arg.Var]; exists {
					if v != t[j] {
						ok = false
						break
					}
					continue
				}
				bind[arg.Var] = t[j]
				bound = append(bound, arg.Var)
			}
			if ok {
				if err := rec(i + 1); err != nil {
					innerErr = err
					return false
				}
			}
			for _, v := range bound {
				delete(bind, v)
			}
			return true
		})
		return innerErr
	}
	return rec(0)
}

// Query evaluates the program and returns the tuples of the query
// atom's predicate matching its pattern (variables are wildcards that
// must agree on repetition; elements must match exactly).
func (p *Program) Query(edb *rel.Structure, q Atom) ([]rel.Tuple, error) {
	idb, err := p.Eval(edb)
	if err != nil {
		return nil, err
	}
	r, ok := idb[q.Pred]
	if !ok {
		if r = edb.Rel(q.Pred); r == nil {
			return nil, fmt.Errorf("datalog: unknown predicate %q", q.Pred)
		}
	}
	if r.Arity != len(q.Args) {
		return nil, fmt.Errorf("datalog: %s has arity %d, pattern has %d", q.Pred, r.Arity, len(q.Args))
	}
	var out []rel.Tuple
	for _, t := range r.Tuples() {
		bind := map[string]int{}
		ok := true
		for j, arg := range q.Args {
			if arg.IsVar() {
				if v, exists := bind[arg.Var]; exists && v != t[j] {
					ok = false
					break
				}
				bind[arg.Var] = t[j]
				continue
			}
			if t[j] != arg.Elem {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

// Holds evaluates the program and reports whether the ground query atom
// is derived.
func (p *Program) Holds(edb *rel.Structure, q Atom) (bool, error) {
	for _, t := range q.Args {
		if t.IsVar() {
			return false, fmt.Errorf("datalog: Holds requires a ground atom, got %s", q)
		}
	}
	matches, err := p.Query(edb, q)
	if err != nil {
		return false, err
	}
	return len(matches) > 0, nil
}
