package datalog

import (
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Result is the outcome of a Datalog reliability computation, in the
// paper's terms: H is the expected Hamming distance between the query
// answer on the observed EDB and on the actual EDB; R = 1 − H/n^k where
// k is the number of distinct variables in the query pattern.
type Result struct {
	// H and R are exact (nil for the Monte Carlo engine).
	H, R *big.Rat
	// HFloat and RFloat are always populated.
	HFloat, RFloat float64
	// Arity is the number of distinct pattern variables.
	Arity int
	// Engine names the engine.
	Engine string
	// Samples counts sampled worlds (0 for the exact engine).
	Samples int
}

// answerSet evaluates the query pattern and returns the set of variable
// assignments (as tuple keys over the distinct pattern variables, in
// first-occurrence order).
func answerSet(prog *Program, edb *rel.Structure, q Atom) (map[uint64]struct{}, error) {
	matches, err := prog.Query(edb, q)
	if err != nil {
		return nil, err
	}
	vars := q.Vars()
	out := make(map[uint64]struct{}, len(matches))
	for _, m := range matches {
		a := make(rel.Tuple, len(vars))
		for vi, v := range vars {
			for j, arg := range q.Args {
				if arg.IsVar() && arg.Var == v {
					a[vi] = m[j]
					break
				}
			}
		}
		out[a.Key()] = struct{}{}
	}
	return out, nil
}

func symDiff(a, b map[uint64]struct{}) int {
	d := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			d++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			d++
		}
	}
	return d
}

// Reliability computes the exact expected error and reliability of the
// Datalog query on the unreliable EDB by world enumeration — Datalog
// queries are polynomial-time evaluable, so this instantiates Theorem
// 4.2 exactly as de Rougemont's result promised. budget caps the number
// of uncertain atoms.
func Reliability(db *unreliable.DB, prog *Program, q Atom, budget int) (Result, error) {
	observed, err := answerSet(prog, db.A, q)
	if err != nil {
		return Result{}, err
	}
	k := len(q.Vars())
	h := new(big.Rat)
	var evalErr error
	err = db.ForEachWorld(budget, func(b *rel.Structure, nu *big.Rat) bool {
		actual, err := answerSet(prog, b, q)
		if err != nil {
			evalErr = err
			return false
		}
		if d := symDiff(observed, actual); d > 0 {
			h.Add(h, new(big.Rat).Mul(nu, big.NewRat(int64(d), 1)))
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if evalErr != nil {
		return Result{}, evalErr
	}
	norm := big.NewRat(1, 1)
	for i := 0; i < k; i++ {
		norm.Mul(norm, big.NewRat(int64(db.A.N), 1))
	}
	r := new(big.Rat).Quo(h, norm)
	r.Sub(big.NewRat(1, 1), r)
	hf, _ := h.Float64()
	rf, _ := r.Float64()
	return Result{H: h, R: r, HFloat: hf, RFloat: rf, Arity: k, Engine: "datalog-world-enum"}, nil
}

// ReliabilityMC estimates the reliability with absolute error eps and
// confidence 1−delta by direct Hamming-distance sampling over worlds
// (the Theorem 5.12 regime: Datalog evaluation is polynomial, exact
// computation is #P-hard already for one conjunctive rule).
func ReliabilityMC(db *unreliable.DB, prog *Program, q Atom, eps, delta float64, rng *rand.Rand) (Result, error) {
	observed, err := answerSet(prog, db.A, q)
	if err != nil {
		return Result{}, err
	}
	k := len(q.Vars())
	samples, err := mc.HoeffdingSampleSize(eps, delta)
	if err != nil {
		return Result{}, err
	}
	norm := 1.0
	for i := 0; i < k; i++ {
		norm *= float64(db.A.N)
	}
	sum := 0.0
	for i := 0; i < samples; i++ {
		b := db.SampleWorld(rng)
		actual, err := answerSet(prog, b, q)
		if err != nil {
			return Result{}, fmt.Errorf("datalog: evaluating sample %d: %w", i, err)
		}
		sum += float64(symDiff(observed, actual)) / norm
	}
	hNorm := sum / float64(samples)
	return Result{
		HFloat:  hNorm * norm,
		RFloat:  1 - hNorm,
		Arity:   k,
		Engine:  "datalog-monte-carlo",
		Samples: samples,
	}, nil
}
