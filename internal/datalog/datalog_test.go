package datalog

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

const reachProgram = `
% transitive closure
Reach(x,y) :- E(x,y).
Reach(x,z) :- Reach(x,y), E(y,z).
`

func graphEDB(n int, edges [][2]int) *rel.Structure {
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "Node", Arity: 1})
	s := rel.MustStructure(n, voc)
	for i := 0; i < n; i++ {
		s.MustAdd("Node", i)
	}
	for _, e := range edges {
		s.MustAdd("E", e[0], e[1])
	}
	return s
}

func TestParseAndPrint(t *testing.T) {
	p := MustParse(reachProgram)
	if len(p.Rules) != 2 {
		t.Fatalf("parsed %d rules", len(p.Rules))
	}
	printed := p.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if p2.String() != printed {
		t.Error("print/parse not stable")
	}
	if preds := p.IDBPreds(); len(preds) != 1 || preds[0] != "Reach" {
		t.Errorf("IDBPreds = %v", preds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Reach(x,y)",                        // missing period
		"Reach(x,y) :- E(x,y)",              // missing period
		"Reach(x,y).",                       // non-ground fact
		"Reach(x,y) :- .",                   // empty body
		"R(x) :- not E(x,x).",               // unsafe: x only under negation
		"R(x) :- E(x,y), not Q(z).",         // unsafe negated variable
		"R(x,y) :- E(x,y). R(x) :- E(x,x).", // arity clash
		"R(x) :- E(x,@).",
		"R(x) : E(x,x).",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestReachability(t *testing.T) {
	p := MustParse(reachProgram)
	// Path 0→1→2→3 plus an isolated 4.
	edb := graphEDB(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	idb, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	reach := idb["Reach"]
	if reach.Len() != 6 { // (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
		t.Errorf("Reach has %d tuples: %v", reach.Len(), reach.Tuples())
	}
	if !reach.Contains(rel.Tuple{0, 3}) || reach.Contains(rel.Tuple{3, 0}) {
		t.Error("reachability wrong")
	}
	ok, err := p.Holds(edb, Atom{Pred: "Reach", Args: []Term{E(0), E(3)}})
	if err != nil || !ok {
		t.Errorf("Holds(Reach(0,3)) = %v, %v", ok, err)
	}
	ok, err = p.Holds(edb, Atom{Pred: "Reach", Args: []Term{E(0), E(4)}})
	if err != nil || ok {
		t.Errorf("Holds(Reach(0,4)) = %v, %v", ok, err)
	}
}

func TestCycleReachability(t *testing.T) {
	p := MustParse(reachProgram)
	edb := graphEDB(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	idb, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if idb["Reach"].Len() != 9 {
		t.Errorf("cycle closure has %d tuples, want 9", idb["Reach"].Len())
	}
}

func TestStratifiedNegation(t *testing.T) {
	src := reachProgram + `
Blocked(x) :- Node(x), not Reach(0,x).
`
	p := MustParse(src)
	strata, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %v, want 2 layers", strata)
	}
	edb := graphEDB(5, [][2]int{{0, 1}, {1, 2}})
	idb, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	blocked := idb["Blocked"]
	// 0 does not reach itself (no self-loop), so Blocked = {0, 3, 4}.
	want := []int{0, 3, 4}
	if blocked.Len() != len(want) {
		t.Fatalf("Blocked = %v", blocked.Tuples())
	}
	for _, e := range want {
		if !blocked.Contains(rel.Tuple{e}) {
			t.Errorf("Blocked missing %d", e)
		}
	}
}

func TestUnstratifiable(t *testing.T) {
	src := `
P(x) :- Node(x), not Q(x).
Q(x) :- Node(x), not P(x).
`
	p := MustParse(src)
	if _, err := p.Stratify(); err == nil {
		t.Error("negation through recursion accepted")
	}
	if _, err := p.Eval(graphEDB(2, nil)); err == nil {
		t.Error("Eval accepted unstratifiable program")
	}
}

func TestFactsAndConstants(t *testing.T) {
	src := `
Special(2).
Good(x) :- E(x,y), Special(y).
`
	p := MustParse(src)
	edb := graphEDB(4, [][2]int{{0, 2}, {1, 3}})
	idb, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["Good"].Contains(rel.Tuple{0}) || idb["Good"].Contains(rel.Tuple{1}) {
		t.Errorf("Good = %v", idb["Good"].Tuples())
	}
}

func TestEvalErrors(t *testing.T) {
	p := MustParse("R(x) :- Missing(x).")
	if _, err := p.Eval(graphEDB(2, nil)); err == nil {
		t.Error("missing EDB relation accepted")
	}
	// Arity mismatch against the structure.
	p2 := MustParse("R(x) :- E(x).")
	if _, err := p2.Eval(graphEDB(2, nil)); err == nil {
		t.Error("EDB arity mismatch accepted")
	}
	// IDB shadowing an EDB relation.
	p3 := MustParse("E(x,y) :- E(y,x).")
	if _, err := p3.Eval(graphEDB(2, nil)); err == nil {
		t.Error("IDB shadowing EDB accepted")
	}
	// Fact element outside the universe.
	p4 := MustParse("Special(9). Good(x) :- E(x,y), Special(y).")
	if _, err := p4.Eval(graphEDB(2, nil)); err == nil {
		t.Error("out-of-universe fact accepted")
	}
}

func TestQueryPattern(t *testing.T) {
	p := MustParse(reachProgram)
	edb := graphEDB(4, [][2]int{{0, 1}, {1, 2}, {0, 3}})
	// Who reaches 2?
	matches, err := p.Query(edb, Atom{Pred: "Reach", Args: []Term{V("x"), E(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 { // 0 and 1
		t.Errorf("matches = %v", matches)
	}
	// Repeated variable: self-reachability (none in a DAG).
	matches, err = p.Query(edb, Atom{Pred: "Reach", Args: []Term{V("x"), V("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("self-reach matches = %v", matches)
	}
	// EDB predicate can also be queried.
	matches, err = p.Query(edb, Atom{Pred: "E", Args: []Term{E(0), V("y")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Errorf("EDB query matches = %v", matches)
	}
	if _, err := p.Query(edb, Atom{Pred: "Nope", Args: []Term{V("x")}}); err == nil {
		t.Error("unknown predicate accepted")
	}
	if _, err := p.Holds(edb, Atom{Pred: "Reach", Args: []Term{V("x"), E(0)}}); err == nil {
		t.Error("non-ground Holds accepted")
	}
}

// naiveEval recomputes the IDB by brute-force iteration (no deltas) to
// cross-check the semi-naive implementation.
func naiveEval(t *testing.T, p *Program, edb *rel.Structure) map[string]*rel.Relation {
	t.Helper()
	// Naive = run Eval of a program whose evaluation we trust only on
	// the invariant below; instead we recompute reachability with
	// Floyd-Warshall for graph programs in the callers. Here: iterate
	// applyRule-like substitution using the public API only — evaluate
	// repeatedly on growing structures is not expressible, so we settle
	// for the specialized cross-checks in the calling tests.
	idb, err := p.Eval(edb)
	if err != nil {
		t.Fatal(err)
	}
	return idb
}

func TestSemiNaiveMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := MustParse(reachProgram)
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(6)
		var edges [][2]int
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, [2]int{u, v})
			adj[u][v] = true
		}
		// Floyd–Warshall transitive closure (of length ≥ 1 paths).
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		idb := naiveEval(t, p, graphEDB(n, edges))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if idb["Reach"].Contains(rel.Tuple{i, j}) != reach[i][j] {
					t.Fatalf("iter %d: Reach(%d,%d) mismatch", iter, i, j)
				}
			}
		}
	}
}

func TestSameGeneration(t *testing.T) {
	// The classic non-linear recursion.
	src := `
SG(x,y) :- Sib(x,y).
SG(x,y) :- Par(x,u), SG(u,v), Par(y,v).
`
	p := MustParse(src)
	voc := rel.MustVocabulary(rel.RelSym{Name: "Sib", Arity: 2}, rel.RelSym{Name: "Par", Arity: 2})
	s := rel.MustStructure(6, voc)
	// Tree: 4,5 siblings; 2→4, 3→5 (Par(child,parent)); 0→2, 1→3.
	s.MustAdd("Sib", 4, 5)
	s.MustAdd("Sib", 5, 4)
	s.MustAdd("Par", 2, 4)
	s.MustAdd("Par", 3, 5)
	s.MustAdd("Par", 0, 2)
	s.MustAdd("Par", 1, 3)
	idb, err := p.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	sg := idb["SG"]
	if !sg.Contains(rel.Tuple{2, 3}) || !sg.Contains(rel.Tuple{0, 1}) {
		t.Errorf("SG = %v", sg.Tuples())
	}
	if sg.Contains(rel.Tuple{0, 3}) {
		t.Error("different generations matched")
	}
}

func TestDatalogReliabilityNetworkHand(t *testing.T) {
	// Two parallel 1-edge routes 0→1, each failing with probability 1/2:
	// Pr[Reach(0,1)] = 3/4 ... but parallel identical edges collapse in a
	// set-based EDB, so use a 2-path: 0→1 direct (p fail 1/2) and
	// 0→2→1 (each certain). Then Reach(0,1) is certain. Instead make the
	// relay edges uncertain too and hand-compute.
	p := MustParse(reachProgram)
	edb := graphEDB(3, [][2]int{{0, 1}, {0, 2}, {2, 1}})
	db := unreliable.New(edb)
	half := big.NewRat(1, 2)
	db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{0, 1}}, half)
	db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{0, 2}}, half)
	db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{2, 1}}, half)
	q := Atom{Pred: "Reach", Args: []Term{E(0), E(1)}}
	res, err := Reliability(db, p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Pr[connected] = 1 − Pr[direct fails]·Pr[relay fails]
	//              = 1 − (1/2)(1 − 1/4) = 5/8. Observed: connected.
	// H = 1 − 5/8 = 3/8; R = 1 − 3/8 = 5/8 (k = 0).
	if res.H.Cmp(big.NewRat(3, 8)) != 0 {
		t.Errorf("H = %v, want 3/8", res.H)
	}
	if res.R.Cmp(big.NewRat(5, 8)) != 0 {
		t.Errorf("R = %v, want 5/8", res.R)
	}
	if res.Arity != 0 {
		t.Errorf("arity %d", res.Arity)
	}
}

func TestDatalogReliabilityPattern(t *testing.T) {
	// Unary pattern Reach(0, x): per-target reliability.
	p := MustParse(reachProgram)
	edb := graphEDB(3, [][2]int{{0, 1}, {1, 2}})
	db := unreliable.New(edb)
	db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{1, 2}}, big.NewRat(1, 4))
	q := Atom{Pred: "Reach", Args: []Term{E(0), V("x")}}
	res, err := Reliability(db, p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Only the answer "2" is at risk: flips with probability 1/4.
	if res.H.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("H = %v, want 1/4", res.H)
	}
	want := new(big.Rat).Sub(big.NewRat(1, 1), big.NewRat(1, 12))
	if res.R.Cmp(want) != 0 {
		t.Errorf("R = %v, want %v", res.R, want)
	}
	if res.Arity != 1 {
		t.Errorf("arity %d", res.Arity)
	}
}

func TestDatalogReliabilityMC(t *testing.T) {
	p := MustParse(reachProgram)
	rng := rand.New(rand.NewSource(99))
	edb := graphEDB(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	db := unreliable.New(edb)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{e[0], e[1]}}, big.NewRat(1, 3))
	}
	q := Atom{Pred: "Reach", Args: []Term{E(0), E(3)}}
	exact, err := Reliability(db, p, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ReliabilityMC(db, p, q, 0.03, 0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	if diff := est.RFloat - exact.RFloat; diff > 0.03 || diff < -0.03 {
		t.Errorf("MC R %v, exact %v", est.RFloat, exact.RFloat)
	}
	if _, err := ReliabilityMC(db, p, q, 0, 0.5, rng); err == nil {
		t.Error("bad eps accepted")
	}
}

func TestReliabilityBudget(t *testing.T) {
	p := MustParse(reachProgram)
	edb := graphEDB(3, [][2]int{{0, 1}})
	db := unreliable.New(edb)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{i, j}}, big.NewRat(1, 2))
		}
	}
	q := Atom{Pred: "Reach", Args: []Term{E(0), E(1)}}
	if _, err := Reliability(db, p, q, 4); err == nil {
		t.Error("budget not enforced")
	}
}
