package datalog

import (
	"fmt"
	"sort"
)

// Stratify partitions the IDB predicates into strata such that a
// predicate's rules only use predicates of strictly lower strata under
// negation, and of lower-or-equal strata positively. It returns the
// strata (each a sorted list of predicates, lowest first) or an error
// when no stratification exists (negation through a cycle).
func (p *Program) Stratify() ([][]string, error) {
	idb := map[string]struct{}{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = struct{}{}
	}
	// stratum number per IDB predicate; iterate to a fixed point (the
	// classical algorithm: at most |idb| rounds, otherwise a negative
	// cycle exists).
	stratum := map[string]int{}
	for pred := range idb {
		stratum[pred] = 0
	}
	for round := 0; ; round++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				b := l.Atom.Pred
				if _, isIDB := idb[b]; !isIDB {
					continue
				}
				want := stratum[b]
				if l.Negated {
					want++
				}
				if stratum[h] < want {
					stratum[h] = want
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if round > len(idb) {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]string, maxS+1)
	for pred, s := range stratum {
		out[s] = append(out[s], pred)
	}
	for _, layer := range out {
		sort.Strings(layer)
	}
	return out, nil
}
