package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a Datalog program:
//
//	% reachability over uncertain edges
//	Reach(x,y) :- E(x,y).
//	Reach(x,z) :- Reach(x,y), E(y,z).
//	Blocked(x) :- Node(x), not Reach(0,x).
//
// One rule per '.'; '%' starts a comment to end of line; numbers are
// universe elements; identifiers are variables inside rules (predicates
// are the names applied to argument lists). Facts (empty bodies) are
// allowed but must be ground.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.eof() {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type dtok struct {
	kind string // ident number ( ) , . :- not
	text string
	pos  int
}

func lex(src string) ([]dtok, error) {
	var toks []dtok
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, dtok{"(", "(", i})
			i++
		case c == ')':
			toks = append(toks, dtok{")", ")", i})
			i++
		case c == ',':
			toks = append(toks, dtok{",", ",", i})
			i++
		case c == '.':
			toks = append(toks, dtok{".", ".", i})
			i++
		case c == ':':
			if strings.HasPrefix(src[i:], ":-") {
				toks = append(toks, dtok{":-", ":-", i})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: position %d: stray ':'", i)
			}
		case unicode.IsDigit(c):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, dtok{"number", src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			if word == "not" {
				toks = append(toks, dtok{"not", word, i})
			} else {
				toks = append(toks, dtok{"ident", word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("datalog: position %d: unexpected character %q", i, c)
		}
	}
	return toks, nil
}

type parser struct {
	toks []dtok
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) expect(kind string) (dtok, error) {
	if p.eof() {
		return dtok{}, fmt.Errorf("datalog: unexpected end of program, expected %s", kind)
	}
	t := p.toks[p.pos]
	if t.kind != kind {
		return dtok{}, fmt.Errorf("datalog: position %d: expected %s, found %q", t.pos, kind, t.text)
	}
	p.pos++
	return t, nil
}

func (p *parser) accept(kind string) bool {
	if !p.eof() && p.toks[p.pos].kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) rule() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	r := Rule{Head: head}
	if p.accept(":-") {
		for {
			neg := p.accept("not")
			a, err := p.atom()
			if err != nil {
				return Rule{}, err
			}
			r.Body = append(r.Body, Literal{Atom: a, Negated: neg})
			if !p.accept(",") {
				break
			}
		}
	} else {
		// A fact: must be ground.
		for _, t := range head.Args {
			if t.IsVar() {
				return Rule{}, fmt.Errorf("datalog: fact %s must be ground", head)
			}
		}
	}
	if _, err := p.expect("."); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func (p *parser) atom() (Atom, error) {
	name, err := p.expect("ident")
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name.text}
	if _, err := p.expect("("); err != nil {
		return Atom{}, err
	}
	if p.accept(")") {
		return a, nil
	}
	for {
		if p.eof() {
			return Atom{}, fmt.Errorf("datalog: unexpected end of program inside %s(...)", a.Pred)
		}
		t := p.toks[p.pos]
		switch t.kind {
		case "ident":
			a.Args = append(a.Args, V(t.text))
			p.pos++
		case "number":
			e, err := strconv.Atoi(t.text)
			if err != nil {
				return Atom{}, fmt.Errorf("datalog: bad element %q", t.text)
			}
			a.Args = append(a.Args, E(e))
			p.pos++
		default:
			return Atom{}, fmt.Errorf("datalog: position %d: expected term, found %q", t.pos, t.text)
		}
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(")"); err != nil {
			return Atom{}, err
		}
		return a, nil
	}
}
