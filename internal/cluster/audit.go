package cluster

// Sampled audits: the trust-but-verify layer. A lane range is a pure
// function of (seed, range, accuracy), so two replicas that execute the
// same range MUST produce bit-identical lane aggregates — determinism
// turns cross-replica checking from a statistical test into an exact
// one. The coordinator exploits that by re-executing a deterministic
// sample of completed ranges (Config.AuditFrac, selection seeded from
// the request so reruns audit the same ranges) on a different replica
// and byte-comparing the attestation digests. Agreement is proof of
// correctness for that range; disagreement triggers a tie-break on a
// third replica, the odd one out is the liar, it is quarantined
// immediately, and every range it won is repaired before the merge —
// so a corrupted aggregate never reaches a served estimate. With no
// third replica available the fan-out is refused rather than served
// unverified.
//
// Audits always re-execute synchronously (never through the jobs API:
// an idempotency-keyed sub-job would re-attach to the original result
// instead of recomputing it) and never plant resume frames (a frame
// shipped by the replica under audit would launder its corruption into
// the audit run).

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/mc"
	"qrel/internal/server"
)

// ErrAuditUnresolved is returned (wrapped) when an audit caught two
// replicas disagreeing on a deterministic range and no third replica
// could tie-break. Serving would mean guessing which half of the
// cluster is lying, so the coordinator refuses instead.
var ErrAuditUnresolved = errors.New("cluster: audit mismatch unresolved; refusing to serve an unverified estimate")

// Audit verdicts recorded in the fan-out journal.
const (
	AuditOK         = "ok"
	AuditMismatch   = "mismatch"
	AuditLiar       = "liar"
	AuditUnresolved = "unresolved"
	AuditSkipped    = "skipped"
)

// AuditRecord is one audit's durable row in the fan-out journal —
// enough to reconstruct after the fact which ranges were verified, by
// whom, and what the verdict was.
type AuditRecord struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
	// Original is the replica whose sub-response was audited; Auditor
	// re-executed the range.
	Original string `json:"original"`
	Auditor  string `json:"auditor,omitempty"`
	// Verdict is one of the Audit* constants.
	Verdict string `json:"verdict"`
	// Liar names the replica the tie-break identified as divergent
	// (verdict "liar" only).
	Liar string `json:"liar,omitempty"`
	// Digest and AuditorDigest are the two attestation digests compared.
	Digest        string `json:"digest,omitempty"`
	AuditorDigest string `json:"auditor_digest,omitempty"`
	// Err carries why an audit was skipped.
	Err string `json:"err,omitempty"`
}

// verifyAttestation recomputes the digest over a sub-response's lane
// aggregates and compares it to the replica's attestation. Responses
// without lane aggregates (proxied whole requests) trivially pass.
func verifyAttestation(res *server.Response) (string, bool) {
	if res.LaneRange == nil {
		return "", true
	}
	d := mc.RangeDigest(res.LaneRange.Lanes)
	return d, res.LaneDigest == d
}

// auditSeed derives the audit-selection seed from the fields that
// identify the computation, so re-running the same request audits the
// same ranges — reproducibility extends to the audit schedule itself.
func auditSeed(req server.Request) int64 {
	h := fnv.New64a()
	if req.IdempotencyKey != "" {
		h.Write([]byte(req.IdempotencyKey))
	} else {
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d", req.DB, req.DBText, req.Query, req.Seed)
	}
	return int64(h.Sum64())
}

// auditFanout runs the sampled audits of one completed fan-out, after
// every range succeeded and before the merge. subs and froms are the
// per-range sub-responses and the replicas that produced them; both may
// be rewritten when a liar's ranges are repaired. Returns the audit
// trail and a non-nil error when the fan-out must not be served.
func (c *Coordinator) auditFanout(ctx context.Context, req server.Request, ranges []mc.Range, subs []*server.Response, froms []string, j *fanoutJournal) ([]server.ClusterStep, error) {
	if c.cfg.AuditFrac <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(auditSeed(req)))
	var trail []server.ClusterStep
	for i := range ranges {
		// Draw for every range unconditionally so the selection of range
		// k never depends on what earlier audits did.
		if rng.Float64() >= c.cfg.AuditFrac {
			continue
		}
		t, err := c.auditRange(ctx, req, ranges, i, subs, froms, j)
		trail = append(trail, t...)
		if err != nil {
			return trail, err
		}
	}
	return trail, nil
}

// auditRange audits one range: re-execute on a different replica,
// compare digests, tie-break a mismatch, quarantine the liar, repair
// its ranges.
func (c *Coordinator) auditRange(ctx context.Context, req server.Request, ranges []mc.Range, i int, subs []*server.Response, froms []string, j *fanoutJournal) ([]server.ClusterStep, error) {
	rg, sub, orig := ranges[i], subs[i], froms[i]
	rec := AuditRecord{Lo: rg.Lo, Hi: rg.Hi, Total: rg.Total, Original: orig, Digest: sub.LaneDigest}
	var trail []server.ClusterStep
	if sub.Degraded {
		// A degraded original stopped early; a full re-execution would
		// legitimately disagree. The widened guarantee already reports the
		// shortfall honestly — nothing to verify.
		c.nAuditsSkipped.Add(1)
		rec.Verdict, rec.Err = AuditSkipped, "degraded original"
		j.addAudit(rec)
		return append(trail, server.ClusterStep{Replica: orig, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-skipped", Err: "degraded original"}), nil
	}

	ares, auditor, t := c.auditExec(ctx, req, rg, orig)
	trail = append(trail, t...)
	if ares == nil {
		c.nAuditsSkipped.Add(1)
		rec.Verdict, rec.Err = AuditSkipped, "no eligible auditor"
		j.addAudit(rec)
		return append(trail, server.ClusterStep{Replica: orig, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-skipped", Err: "no eligible auditor"}), nil
	}
	c.nAudits.Add(1)
	rec.Auditor, rec.AuditorDigest = auditor.url, ares.LaneDigest

	if ares.LaneDigest == sub.LaneDigest {
		rec.Verdict = AuditOK
		j.addAudit(rec)
		trail = append(trail, server.ClusterStep{Replica: auditor.url, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-ok", Source: orig, Digest: ares.LaneDigest})
		// Exact agreement vouches for both parties.
		trail = c.appendHealth(trail, orig, func(f *healthFSM) string { return f.RecordClean(time.Now(), c.cfg.ProbationAudits) })
		trail = c.appendHealth(trail, auditor.url, func(f *healthFSM) string { return f.RecordClean(time.Now(), c.cfg.ProbationAudits) })
		return trail, nil
	}

	c.nAuditMismatches.Add(1)
	trail = append(trail, server.ClusterStep{Replica: auditor.url, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-mismatch", Source: orig, Digest: ares.LaneDigest,
		Err: fmt.Sprintf("lane aggregates diverge from %s", orig)})

	// Tie-break on a third replica. The range is deterministic, so the
	// majority digest is the truth and the odd one out is the liar.
	tres, tie, tt := c.auditExec(ctx, req, rg, orig, auditor.url)
	trail = append(trail, tt...)
	var liar string
	var truth []mc.LaneAgg
	switch {
	case tres == nil:
		// Two replicas disagree on a deterministic computation and nobody
		// can break the tie: both become suspect and the fan-out is
		// refused rather than served on a guess.
		rec.Verdict = AuditUnresolved
		j.addAudit(rec)
		trail = append(trail, server.ClusterStep{Replica: orig, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-unresolved", Source: auditor.url})
		trail = c.appendHealth(trail, orig, func(f *healthFSM) string { return f.RecordBad(time.Now()) })
		trail = c.appendHealth(trail, auditor.url, func(f *healthFSM) string { return f.RecordBad(time.Now()) })
		return trail, fmt.Errorf("cluster: range %s: %s and %s disagree: %w", rg, orig, auditor.url, ErrAuditUnresolved)
	case tres.LaneDigest == sub.LaneDigest:
		liar, truth = auditor.url, sub.LaneRange.Lanes
	case tres.LaneDigest == ares.LaneDigest:
		liar, truth = orig, ares.LaneRange.Lanes
	default:
		// Three distinct answers to one deterministic range — no majority
		// exists. Suspect everyone involved and refuse.
		rec.Verdict = AuditUnresolved
		j.addAudit(rec)
		trail = append(trail, server.ClusterStep{Replica: orig, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-unresolved", Source: auditor.url, Digest: tres.LaneDigest})
		for _, u := range []string{orig, auditor.url, tie.url} {
			trail = c.appendHealth(trail, u, func(f *healthFSM) string { return f.RecordBad(time.Now()) })
		}
		return trail, fmt.Errorf("cluster: range %s: three-way digest disagreement: %w", rg, ErrAuditUnresolved)
	}

	rec.Verdict, rec.Liar = AuditLiar, liar
	j.addAudit(rec)
	majority := mc.RangeDigest(truth)
	trail = append(trail, server.ClusterStep{Replica: liar, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-liar", Source: tie.url, Digest: majority})
	trail = c.appendHealth(trail, liar, func(f *healthFSM) string { return f.RecordLiar(time.Now()) })
	// The two agreeing parties proved themselves on this range.
	for _, u := range []string{orig, auditor.url, tie.url} {
		if u != liar {
			trail = c.appendHealth(trail, u, func(f *healthFSM) string { return f.RecordClean(time.Now(), c.cfg.ProbationAudits) })
		}
	}

	rt, err := c.repairLiar(ctx, req, ranges, subs, froms, liar, i, truth, j)
	return append(trail, rt...), err
}

// appendHealth applies one health transition to the replica named by
// url and appends the emitted trail event, if any.
func (c *Coordinator) appendHealth(trail []server.ClusterStep, url string, apply func(*healthFSM) string) []server.ClusterStep {
	if ev := c.healthEvent(c.indexOf(url), apply); ev != "" {
		trail = append(trail, server.ClusterStep{Replica: url, Event: ev})
	}
	return trail
}

// auditExec re-executes one lane range for audit purposes on the first
// eligible replica not in exclude — synchronously, with no resume
// frame, and with the response attested and completeness-checked.
// Probation replicas are tried first: supervised re-execution is
// exactly the work that can earn them readmission. Returns (nil, nil,
// trail) when no candidate produced a usable answer; candidates that
// fail are simply passed over (the audit is an extra check, not a
// liveness decision — except that an attestation failure still counts
// against the candidate).
func (c *Coordinator) auditExec(ctx context.Context, req server.Request, rg mc.Range, exclude ...string) (*server.Response, *replica, []server.ClusterStep) {
	sub := req
	sub.Engine = string(core.EngineMCDirect)
	sub.Lanes = &server.LaneRange{Lo: rg.Lo, Hi: rg.Hi, Total: rg.Total}
	sub.IdempotencyKey = ""
	sub.Resume = nil
	var trail []server.ClusterStep
	for _, r := range c.auditCandidates(&trail, exclude) {
		if err := faultinject.Hit(faultinject.SiteClusterAudit); err != nil {
			trail = append(trail, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-skipped", Err: err.Error()})
			continue
		}
		sctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
		res, err := r.client.Reliability(sctx, sub)
		cancel()
		if err != nil {
			trail = append(trail, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-skipped", Err: err.Error()})
			continue
		}
		if d, ok := verifyAttestation(res); !ok {
			c.nAttestFails.Add(1)
			trail = append(trail, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "attest-fail", Digest: d})
			trail = c.appendHealth(trail, r.url, func(f *healthFSM) string { return f.RecordBad(time.Now()) })
			continue
		}
		lr := res.LaneRange
		if res.Degraded || lr == nil || lr.Lo != rg.Lo || lr.Hi != rg.Hi || lr.Total != rg.Total {
			// An incomplete or mismatched re-execution cannot be compared
			// byte-for-byte; try the next candidate.
			trail = append(trail, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "audit-skipped", Err: "incomplete audit execution"})
			continue
		}
		return res, r, trail
	}
	return nil, nil, trail
}

// auditCandidates lists the replicas eligible to execute an audit, in
// preference order: probation replicas first (ring order), then the
// workable ones. Quarantined and down replicas never audit. Lazy
// quarantine→probation promotions performed here are appended to trail.
func (c *Coordinator) auditCandidates(trail *[]server.ClusterStep, exclude []string) []*replica {
	excluded := func(url string) bool {
		for _, e := range exclude {
			if e == url {
				return true
			}
		}
		return false
	}
	var probation, rest []*replica
	for i, r := range c.replicas {
		if excluded(r.url) || !r.up.Load() {
			continue
		}
		st, _, ev := c.healthSnapshot(i)
		if ev != "" {
			*trail = append(*trail, server.ClusterStep{Replica: r.url, Event: ev})
		}
		switch st {
		case HealthProbation:
			probation = append(probation, r)
		case HealthQuarantined:
		default:
			rest = append(rest, r)
		}
	}
	return append(probation, rest...)
}

// repairLiar makes the pending merge honest after a liar was
// identified: the audited range is replaced by the majority aggregates
// already in hand, and every other range the liar won is re-executed
// from scratch on an honest replica ("audit-replant" — the shipped
// frames the liar produced are not trusted either). An unrepairable
// range fails the fan-out: the estimate is never served with a known
// liar's aggregates in it.
func (c *Coordinator) repairLiar(ctx context.Context, req server.Request, ranges []mc.Range, subs []*server.Response, froms []string, liar string, auditedIdx int, truth []mc.LaneAgg, j *fanoutJournal) ([]server.ClusterStep, error) {
	var trail []server.ClusterStep
	for k := range ranges {
		if froms[k] != liar {
			continue
		}
		if k == auditedIdx {
			subs[k].LaneRange.Lanes = truth
			subs[k].LaneDigest = mc.RangeDigest(truth)
			froms[k] = ""
			j.setDone(k, subs[k].LaneDigest)
			continue
		}
		res, w, t := c.auditExec(ctx, req, ranges[k], liar)
		trail = append(trail, t...)
		if res == nil {
			return trail, fmt.Errorf("cluster: range %s: no honest replica to re-execute a range won by quarantined %s: %w", ranges[k], liar, ErrNoReplicas)
		}
		c.nAuditReplants.Add(1)
		trail = append(trail, server.ClusterStep{Replica: w.url, Lo: ranges[k].Lo, Hi: ranges[k].Hi, Event: "audit-replant", Source: liar, Digest: res.LaneDigest})
		subs[k], froms[k] = res, w.url
		j.setDone(k, res.LaneDigest)
	}
	return trail, nil
}
