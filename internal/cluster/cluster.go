// Package cluster is the sharded-qreld coordinator: it registers a
// static set of qreld replicas, health-probes them, and serves the same
// POST /v1/reliability API by either proxying a request whole to one
// replica (consistent hashing) or — for explicitly parallel
// monte-carlo-direct requests — fanning the estimation out as disjoint
// lane ranges of the DefaultLanes-lane split, one range per live
// replica, and merging the raw per-lane aggregates in fixed lane order.
//
// Because lanes (not workers, not replicas) determine the estimate, the
// merged answer is bit-identical to running the same request with
// Workers=N on one machine, for any replica count and any assignment of
// ranges to replicas — including assignments that change mid-run when a
// replica dies and its range is reassigned to a survivor. That identity
// is the package's central invariant; the chaos campaign
// (internal/chaos) checks it under replica kills, partitions, slow
// replicas, and coordinator restarts.
//
// Robustness machinery per sub-request: a per-replica circuit breaker
// (the same state machine that guards engine rungs in internal/server),
// bounded retries with jittered exponential backoff, optional hedging
// (duplicate the sub-request to the next live replica after HedgeAfter;
// first success wins — safe precisely because the lane range is
// deterministic and, in jobs mode, idempotency-keyed), and reassignment
// to the next live replica in ring order when a target fails. Every
// assign / retry / hedge / reassign / breaker-skip is recorded in the
// response's ClusterTrail.
//
// On top of that sits work conservation (ship.go, journal.go):
// replicas ship CRC-framed mid-run checkpoints of their lane ranges,
// the coordinator validates and keeps the freshest frame per range,
// and a reassigned range resumes from the shipped state instead of
// restarting — so losing a replica costs at most one shipping interval
// of samples while the answer stays bit-identical. With a JournalDir
// configured, keyed fan-outs are additionally journaled durably, and a
// coordinator restarted after a crash recovers them (Recover) and
// completes the merge. Resume provenance ("resume" /
// "resume-rejected" events naming the shipping replica and sequence
// number) joins the ClusterTrail vocabulary.
//
// Finally, the trust-but-verify layer (audit.go, health.go) assumes
// replicas can lie, not just die: every sub-response carries an
// attestation digest over its raw lane aggregates (verified before
// acceptance), a configurable fraction of completed ranges is
// re-executed on a different replica and byte-compared (exact, because
// the range is deterministic), a tie-break on a third replica
// identifies the liar on mismatch, and a per-replica quarantine state
// machine drains untrusted replicas from the pool and readmits them
// only after consecutive clean probation audits. A corrupted aggregate
// is either repaired before the merge or fails the fan-out — never
// served unflagged.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/mc"
	"qrel/internal/server"
	"qrel/internal/server/client"
)

// Config tunes a Coordinator. The zero value of every field has a
// usable default except Replicas, which must name at least one qreld
// base URL.
type Config struct {
	// Replicas are the qreld base URLs (e.g. "http://127.0.0.1:8081").
	// They are sorted, so the hash ring and the range assignment are
	// independent of declaration order.
	Replicas []string
	// ProbeInterval is the /readyz health-probe cadence (default 2s);
	// ProbeTimeout bounds one probe (default 1s). ProbeFailThreshold
	// consecutive probe failures mark a replica down (default 2); one
	// success marks it up again.
	ProbeInterval      time.Duration
	ProbeTimeout       time.Duration
	ProbeFailThreshold int
	// MaxAttempts bounds tries per lane range (and per proxied request),
	// the first included (default 6 — it must absorb a dead replica plus
	// an injected reassignment fault and still land on a survivor).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the jittered exponential delay
	// between attempts (defaults 25ms / 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter, when positive, duplicates a still-unanswered
	// sub-request to the next live replica after this long; the first
	// success wins. Zero disables hedging.
	HedgeAfter time.Duration
	// RequestTimeout bounds one sub-request end to end (default 60s).
	RequestTimeout time.Duration
	// Breaker tunes the per-replica circuit breakers.
	Breaker server.BreakerConfig
	// MaxFanout caps how many replicas one estimation is split across
	// (default mc.DefaultLanes — more ranges than lanes cannot exist).
	MaxFanout int
	// UseJobs routes sub-requests through POST /v1/jobs with an
	// idempotency key derived from the parent request's key and the lane
	// range, so a retried or reassigned sub-request re-attaches to the
	// replica's journaled job instead of starting a duplicate. Requires
	// the parent request to carry an IdempotencyKey and the replicas to
	// have jobs enabled. JobPoll is the initial poll interval while
	// waiting on a sub-job (default 50ms).
	UseJobs bool
	JobPoll time.Duration
	// CheckpointPoll is how often, while waiting on a sub-job, the
	// coordinator polls the replica's GET /v1/jobs/{id}/checkpoint for
	// the freshest shipped frame (default 100ms). When the replica dies
	// mid-job, the range is re-planted on a survivor from that frame, so
	// at most one polling interval of work is lost.
	CheckpointPoll time.Duration
	// JournalDir, when non-empty, enables the fan-out journal: every
	// keyed fan-out durably records its split, per-range assignments,
	// and latest shipped checkpoints, so a coordinator restarted after a
	// crash can Recover the run and complete the merge (see journal.go).
	JournalDir string
	// AuditFrac is the fraction of completed lane ranges the coordinator
	// re-executes on a different replica and byte-compares before
	// serving a fan-out (see audit.go). Selection is deterministic per
	// request. Zero (the default) disables audits entirely — the
	// attestation check still runs, and costs one digest per
	// sub-response.
	AuditFrac float64
	// ProbationAudits is how many consecutive clean audits a probation
	// replica needs to be readmitted to the work pool (default 3).
	ProbationAudits int
	// QuarantineCooldown is how long a quarantined replica stays fully
	// drained before it may re-enter as a probation auditor (default
	// 30s).
	QuarantineCooldown time.Duration
	// Seed seeds the coordinator's private backoff-jitter RNG, making
	// retry timing reproducible in tests. Zero uses the wall clock.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeFailThreshold <= 0 {
		c.ProbeFailThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxFanout <= 0 || c.MaxFanout > mc.DefaultLanes {
		c.MaxFanout = mc.DefaultLanes
	}
	if c.JobPoll <= 0 {
		c.JobPoll = 50 * time.Millisecond
	}
	if c.CheckpointPoll <= 0 {
		c.CheckpointPoll = 100 * time.Millisecond
	}
	if c.ProbationAudits <= 0 {
		c.ProbationAudits = 3
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// ErrNoReplicas is returned (wrapped) when every replica is down or
// breaker-vetoed for the whole retry budget — the coordinator's view of
// a full partition. The HTTP handler maps it to 503 so clients retry.
var ErrNoReplicas = errors.New("cluster: no live replicas")

// replica is the coordinator's record of one qreld instance.
type replica struct {
	url    string
	client *client.Client
	// up is the probe verdict; requests are only routed to up replicas.
	// Replicas start up so the coordinator is usable before the first
	// probe round completes.
	up    atomic.Bool
	fails atomic.Int64 // consecutive probe failures
}

// Coordinator fans reliability requests out over a replica set. Build
// with New; Close stops the probers.
type Coordinator struct {
	cfg      Config
	replicas []*replica // sorted by URL: the hash ring
	// health holds the per-replica integrity state machines, parallel to
	// replicas (see health.go).
	health   []*replicaHealth
	breakers *server.Breakers
	probeCli *http.Client

	jmu sync.Mutex
	rng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	nFanouts   atomic.Int64
	nProxied   atomic.Int64
	nRetries   atomic.Int64
	nHedges    atomic.Int64
	nReassigns atomic.Int64
	// Checkpoint-shipping and journal counters (see ship.go,
	// journal.go): frames accepted/rejected, resumes planted on
	// replicas and rejected by them, journal write outcomes, and
	// fan-outs completed by Recover.
	nCkptShipped     atomic.Int64
	nCkptRejected    atomic.Int64
	nResumes         atomic.Int64
	nResumesRejected atomic.Int64
	nJournalWrites   atomic.Int64
	nJournalErrors   atomic.Int64
	nRecovered       atomic.Int64
	// Integrity counters (see audit.go, health.go): audits executed /
	// skipped, digest mismatches between replicas, ranges re-executed
	// away from a liar, attestation failures, quarantine transitions,
	// and replicas passed over in target selection for health reasons.
	nAudits          atomic.Int64
	nAuditsSkipped   atomic.Int64
	nAuditMismatches atomic.Int64
	nAuditReplants   atomic.Int64
	nAttestFails     atomic.Int64
	nQuarantines     atomic.Int64
	nQuarantineSkips atomic.Int64

	start time.Time
}

// New builds a coordinator over the configured replica set and starts
// its health probers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	urls := append([]string(nil), cfg.Replicas...)
	sort.Strings(urls)
	c := &Coordinator{
		cfg:      cfg,
		breakers: server.NewBreakers(cfg.Breaker),
		probeCli: &http.Client{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
		start:    time.Now(),
	}
	for _, u := range urls {
		cl := client.New(u)
		// The coordinator owns the retry policy (it must see every
		// failure to reassign and record the trail), so replica clients
		// make exactly one attempt per call.
		cl.MaxAttempts = 1
		cl.MaxBackoff = cfg.MaxBackoff
		r := &replica{url: u, client: cl}
		r.up.Store(true)
		c.replicas = append(c.replicas, r)
		c.health = append(c.health, &replicaHealth{})
	}
	for _, r := range c.replicas {
		c.wg.Add(1)
		go c.probeLoop(r)
	}
	return c, nil
}

// Close stops the health probers and drops their idle connections.
// In-flight Do calls are unaffected. Idempotent: a handover path that
// closes a coordinator it built may race a deferred Close.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	c.probeCli.CloseIdleConnections()
}

// probeLoop probes one replica immediately and then every
// ProbeInterval until Close.
func (c *Coordinator) probeLoop(r *replica) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.probeOnce(r)
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
	}
}

// probeOnce runs one /readyz probe and updates the replica's verdict.
// An armed SiteClusterProbe fault reads as a failed probe — how the
// chaos campaign simulates a probe-visible partition without touching
// the network stack.
func (c *Coordinator) probeOnce(r *replica) {
	err := faultinject.Hit(faultinject.SiteClusterProbe)
	if err == nil {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		err = c.ready(ctx, r)
		cancel()
	}
	if err != nil {
		if r.fails.Add(1) >= int64(c.cfg.ProbeFailThreshold) {
			r.up.Store(false)
		}
		return
	}
	r.fails.Store(0)
	r.up.Store(true)
}

// ready performs one GET /readyz.
func (c *Coordinator) ready(ctx context.Context, r *replica) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.probeCli.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s/readyz: %s", r.url, resp.Status)
	}
	return nil
}

// Do serves one reliability request against the cluster. Explicitly
// parallel monte-carlo-direct requests fan out as lane ranges across
// the live replicas; everything else (other engines, auto dispatch,
// sequential runs, and lane-range sub-requests arriving from an outer
// coordinator) proxies whole to the hash-ring replica, with failover.
//
// A sequential run (Workers == 0) is deliberately ineligible for
// fan-out: its single-stream estimate differs from the lane-split one,
// and the coordinator must answer exactly what the replica the client
// hashed to would have answered.
func (c *Coordinator) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	if req.Engine == string(core.EngineMCDirect) && req.Workers > 0 && req.Lanes == nil {
		// A keyed fan-out the journal already saw to completion (e.g. by
		// a pre-crash process or by Recover) is served from the record —
		// the coordinator-level idempotency that makes "crash, restart,
		// re-POST" indistinguishable from one uninterrupted call.
		if res := c.journaledResult(req); res != nil {
			return res, nil
		}
		if live := c.liveIndexes(); len(live) >= 2 {
			return c.fanOut(ctx, req, live)
		}
	}
	return c.proxy(ctx, req)
}

// liveIndexes returns the ring indexes of the replicas currently
// eligible for work: up by probe verdict AND workable by integrity
// health (quarantined and probation replicas are drained; see
// health.go).
func (c *Coordinator) liveIndexes() []int {
	var out []int
	for i, r := range c.replicas {
		if r.up.Load() && c.workable(i) {
			out = append(out, i)
		}
	}
	return out
}

// fanOut splits the DefaultLanes-lane estimation into one contiguous
// lane range per live replica (capped at MaxFanout), runs the ranges
// concurrently with per-range retry/reassignment, and merges the raw
// lane aggregates in lane-index order into the single-node answer.
func (c *Coordinator) fanOut(ctx context.Context, req server.Request, live []int) (*server.Response, error) {
	parts := len(live)
	if parts > c.cfg.MaxFanout {
		parts = c.cfg.MaxFanout
	}
	ranges := mc.SplitRanges(mc.DefaultLanes, parts)
	starts := make([]int, len(ranges))
	for i := range ranges {
		starts[i] = live[i%len(live)]
	}
	c.nFanouts.Add(1)
	return c.runRanges(ctx, req, ranges, starts, time.Now())
}

// runRanges drives a fixed set of lane ranges to completion and merges
// them — the shared engine behind fanOut and Recover. When journaling
// is on for the request, the fan-out is recorded durably and each
// range's tracker is pre-seeded with its journaled shipped checkpoint.
func (c *Coordinator) runRanges(ctx context.Context, req server.Request, ranges []mc.Range, starts []int, began time.Time) (*server.Response, error) {
	j := c.openJournal(req, ranges)
	type outcome struct {
		res   *server.Response
		from  string
		trail []server.ClusterStep
		err   error
	}
	results := make([]outcome, len(ranges))
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, rg := range ranges {
		ship := &shipTracker{c: c, seed: req.Seed, rg: rg, j: j, idx: i}
		if frame, from := j.checkpointOf(i); frame != nil {
			ship.preload(frame, from)
		}
		wg.Add(1)
		go func(i int, rg mc.Range, ship *shipTracker) {
			defer wg.Done()
			res, from, trail, err := c.runRange(fctx, req, rg, starts[i], ship)
			results[i] = outcome{res, from, trail, err}
			if err != nil {
				cancel() // a lost range dooms the merge; stop the siblings
			} else {
				j.setDone(i, res.LaneDigest)
			}
		}(i, rg, ship)
	}
	wg.Wait()

	var trail []server.ClusterStep
	subs := make([]*server.Response, 0, len(results))
	froms := make([]string, 0, len(results))
	for i, o := range results {
		if o.err != nil {
			// Prefer the originating failure over the ctx errors the
			// sibling cancellation induced.
			for _, p := range results {
				if p.err != nil && !errors.Is(p.err, context.Canceled) {
					return nil, p.err
				}
			}
			return nil, results[i].err
		}
		trail = append(trail, o.trail...)
		subs = append(subs, o.res)
		froms = append(froms, o.from)
	}
	// Sampled audits run after every range succeeded and before the
	// merge: a corrupted aggregate either gets repaired here or fails
	// the fan-out — it is never served unflagged.
	atrail, err := c.auditFanout(ctx, req, ranges, subs, froms, j)
	trail = append(trail, atrail...)
	if err != nil {
		return nil, err
	}
	res, err := c.merge(req, ranges, subs, trail, began)
	if err != nil {
		return nil, err
	}
	j.finish(res)
	return res, nil
}

// merge folds the per-range lane aggregates into the whole-run
// estimate, reproducing the single-node monte-carlo-direct response
// expression for expression (bit-identity is test-enforced).
func (c *Coordinator) merge(req server.Request, ranges []mc.Range, subs []*server.Response, trail []server.ClusterStep, began time.Time) (*server.Response, error) {
	total := mc.DefaultLanes
	// The replicas ran under core's defaulted accuracy; MergeMean must
	// recompute the identical sample plan, so default exactly as
	// core.Options does.
	effEps, effDelta := req.Eps, req.Delta
	if effEps == 0 {
		effEps = core.DefaultEps
	}
	if effDelta == 0 {
		effDelta = core.DefaultDelta
	}
	var aggs []mc.LaneAgg
	requested, normF := -1, 0.0
	resumed := false
	for i, sub := range subs {
		lr := sub.LaneRange
		if lr == nil {
			return nil, fmt.Errorf("cluster: range %s replica answered without lane aggregates", ranges[i])
		}
		if lr.Lo != ranges[i].Lo || lr.Hi != ranges[i].Hi || lr.Total != total {
			return nil, fmt.Errorf("cluster: range %s replica answered for %d-%d/%d", ranges[i], lr.Lo, lr.Hi, lr.Total)
		}
		if requested == -1 {
			requested, normF = lr.Requested, lr.NormF
		} else if lr.Requested != requested || lr.NormF != normF {
			return nil, fmt.Errorf("cluster: range %s disagrees on the sample plan (requested %d vs %d, norm %v vs %v)",
				ranges[i], lr.Requested, requested, lr.NormF, normF)
		}
		aggs = append(aggs, lr.Lanes...)
		resumed = resumed || sub.Resumed
	}
	est, err := mc.MergeMean(aggs, total, effEps, effDelta, req.MaxSamples)
	if err != nil {
		return nil, fmt.Errorf("cluster: merging lane aggregates: %w", err)
	}
	if est.Requested != requested {
		return nil, fmt.Errorf("cluster: merge recomputed %d requested samples, replicas planned %d", est.Requested, requested)
	}
	return &server.Response{
		R:            1 - est.Value,
		H:            est.Value * normF,
		Engine:       subs[0].Engine,
		Guarantee:    subs[0].Guarantee,
		Eps:          est.Eps,
		Delta:        effDelta,
		Samples:      est.Samples,
		Class:        subs[0].Class,
		Degraded:     est.Partial,
		Seed:         req.Seed,
		Resumed:      resumed,
		ClusterTrail: trail,
		ElapsedMS:    time.Since(began).Milliseconds(),
	}, nil
}

// runRange drives one lane range to completion: pick a live replica
// (ring order from startIdx), send, and on transient failure back off
// and reassign to the next live replica — recording every event. Every
// attempt plants the freshest shipped checkpoint (when the tracker
// holds one) so the target resumes the range instead of redoing the
// dead replica's work; a target that rejects the planted snapshot
// (fingerprint mismatch or corrupt frame, HTTP 409 kind "checkpoint")
// costs the frame, never the range — the next attempt restarts clean.
//
// Every successful sub-response is attestation-checked before it is
// accepted: the coordinator recomputes mc.RangeDigest over the lane
// aggregates it received and compares it to the replica's LaneDigest. A
// mismatch means the aggregates were perturbed between the replica's
// sampling loop and this process (wire or memory corruption) — the
// attempt is discarded, the replica takes a health strike, and the
// range retries elsewhere. The second return value names the replica
// whose aggregates were accepted (the audit layer's hook).
func (c *Coordinator) runRange(ctx context.Context, req server.Request, rg mc.Range, startIdx int, ship *shipTracker) (*server.Response, string, []server.ClusterStep, error) {
	sub := req
	sub.Engine = string(core.EngineMCDirect)
	sub.Lanes = &server.LaneRange{Lo: rg.Lo, Hi: rg.Hi, Total: rg.Total}
	if c.cfg.UseJobs && req.IdempotencyKey != "" {
		sub.IdempotencyKey = subKey(req.IdempotencyKey, rg)
	} else {
		sub.IdempotencyKey = ""
	}
	var trail []server.ClusterStep
	var lastErr error
	var degraded *server.Response // freshest partial answer, returned if attempts run out
	var degradedFrom string
	idx, prev := startIdx, -1
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.nRetries.Add(1)
			if err := c.sleep(ctx, attempt-1); err != nil {
				return nil, "", trail, err
			}
		}
		target, tIdx, skips := c.pickTarget(idx, rg)
		trail = append(trail, skips...)
		if target == nil {
			lastErr = ErrNoReplicas
			continue // a probe may mark someone up before the next attempt
		}
		event := "retry"
		switch {
		case attempt == 0:
			event = "assign"
		case tIdx != prev:
			event = "reassign"
		}
		prev, idx = tIdx, tIdx+1
		if event == "reassign" {
			c.nReassigns.Add(1)
			if err := faultinject.Hit(faultinject.SiteClusterReassign); err != nil {
				trail = append(trail, server.ClusterStep{Replica: target.url, Lo: rg.Lo, Hi: rg.Hi, Event: event, Err: err.Error()})
				lastErr = err
				continue
			}
		}
		if ship != nil {
			ship.j.setAssigned(ship.idx, target.url)
		}
		// Plant the freshest shipped checkpoint, recording its
		// provenance (shipping replica + sequence number) in the trail.
		sub.Resume = nil
		resumeSeq, resumeFrom := 0, ""
		if frame, seq, from := ship.latest(); frame != nil {
			sub.Resume = frame
			resumeSeq, resumeFrom = seq, from
			c.nResumes.Add(1)
			trail = append(trail, server.ClusterStep{Replica: target.url, Lo: rg.Lo, Hi: rg.Hi, Event: "resume", Source: from, Seq: seq})
		}
		// Capture the backup once: probes may flip replicas down while
		// the race runs, so a second hedgeTarget call could return nil
		// (or a different replica than the one actually hedged to).
		backup := c.hedgeTarget(tIdx)
		res, winner, hedged, err := c.raceSend(ctx, target, backup, sub, ship)
		step := server.ClusterStep{Replica: target.url, Lo: rg.Lo, Hi: rg.Hi, Event: event}
		if err != nil {
			step.Err = err.Error()
		}
		trail = append(trail, step)
		if hedged {
			trail = append(trail, server.ClusterStep{Replica: backup.url, Lo: rg.Lo, Hi: rg.Hi, Event: "hedge"})
		}
		if err == nil {
			// Verify the winner's attestation before accepting anything
			// from the response — including its shipped checkpoint.
			if d, ok := verifyAttestation(res); !ok {
				c.nAttestFails.Add(1)
				trail = append(trail, server.ClusterStep{Replica: winner.url, Lo: rg.Lo, Hi: rg.Hi, Event: "attest-fail", Digest: d,
					Err: "lane digest disagrees with aggregates"})
				trail = c.appendHealth(trail, winner.url, func(f *healthFSM) string { return f.RecordBad(time.Now()) })
				lastErr = fmt.Errorf("cluster: range %s: %s attestation failed", rg, winner.url)
				continue
			} else if res.LaneRange != nil {
				trail = append(trail, server.ClusterStep{Replica: winner.url, Lo: rg.Lo, Hi: rg.Hi, Event: "attest", Digest: res.LaneDigest})
			}
			if len(res.Checkpoint) > 0 {
				ship.accept(res.Checkpoint, winner.url)
			}
			// A degraded answer (the replica stopped early) whose final
			// checkpoint is fresher than what this attempt resumed from
			// is progress: retry-resume to finish the range instead of
			// settling for widened error bars. No progress (e.g. the
			// sample cap itself stopped the run) ends the loop.
			if res.Degraded && attempt+1 < c.cfg.MaxAttempts {
				if _, seq, _ := ship.latest(); seq > resumeSeq {
					degraded, degradedFrom = res, winner.url
					lastErr = nil
					idx = tIdx // the replica is healthy; retry-resume there
					continue
				}
			}
			trail = append(trail, server.ClusterStep{Replica: winner.url, Lo: rg.Lo, Hi: rg.Hi, Event: "done"})
			return res, winner.url, trail, nil
		}
		lastErr = err
		// A replica that rejects the planted snapshot answers 409 kind
		// "checkpoint" — not retryable as-is (every replica would refuse
		// the same frame), but perfectly retryable clean. Drop the frame
		// and go around before the transient gate can abort the range;
		// the fallback costs the conserved work, never the answer.
		var apiErr *client.APIError
		if len(sub.Resume) > 0 && errors.As(err, &apiErr) && apiErr.Kind == server.KindCheckpoint {
			c.nResumesRejected.Add(1)
			ship.drop()
			trail = append(trail, server.ClusterStep{Replica: target.url, Lo: rg.Lo, Hi: rg.Hi, Event: "resume-rejected", Source: resumeFrom, Seq: resumeSeq, Err: err.Error()})
			continue
		}
		if !transient(ctx, err) {
			return nil, "", trail, err
		}
	}
	if degraded != nil {
		trail = append(trail, server.ClusterStep{Replica: degradedFrom, Lo: rg.Lo, Hi: rg.Hi, Event: "done"})
		return degraded, degradedFrom, trail, nil
	}
	return nil, "", trail, fmt.Errorf("cluster: range %s: giving up after %d attempts: %w", rg, c.cfg.MaxAttempts, lastErr)
}

// pickTarget scans the ring from `from` for an up, workable replica
// whose breaker admits a request, recording breaker-vetoed live
// replicas as breaker-skip and health-drained ones as quarantine-skip
// trail steps.
func (c *Coordinator) pickTarget(from int, rg mc.Range) (*replica, int, []server.ClusterStep) {
	n := len(c.replicas)
	var skips []server.ClusterStep
	for i := 0; i < n; i++ {
		j := ((from+i)%n + n) % n
		r := c.replicas[j]
		if !r.up.Load() {
			continue
		}
		if !c.workable(j) {
			c.nQuarantineSkips.Add(1)
			skips = append(skips, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "quarantine-skip"})
			continue
		}
		if !c.breakers.Allow(core.Engine(r.url)) {
			skips = append(skips, server.ClusterStep{Replica: r.url, Lo: rg.Lo, Hi: rg.Hi, Event: "breaker-skip"})
			continue
		}
		return r, j, skips
	}
	return nil, -1, skips
}

// hedgeTarget returns the next up, workable replica after ring index i,
// or nil when no distinct one exists (a cluster of one cannot hedge).
func (c *Coordinator) hedgeTarget(i int) *replica {
	n := len(c.replicas)
	for k := 1; k < n; k++ {
		j := (i + k) % n
		r := c.replicas[j]
		if r.up.Load() && c.workable(j) {
			return r
		}
	}
	return nil
}

// sendOutcome is one raceSend arm's result.
type sendOutcome struct {
	res  *server.Response
	from *replica
	err  error
}

// raceSend sends the sub-request to primary and, when hedging is on
// and a distinct backup exists, duplicates it to backup after
// HedgeAfter. The first success wins and cancels the loser; both
// failing returns the primary's (first) error. Duplicating is safe:
// the lane range is a pure function of (seed, range), and in jobs mode
// both arms share the sub-job idempotency key.
func (c *Coordinator) raceSend(ctx context.Context, primary, backup *replica, sub server.Request, ship *shipTracker) (*server.Response, *replica, bool, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make(chan sendOutcome, 2)
	send := func(r *replica) {
		res, err := c.sendSub(rctx, r, sub, ship)
		c.report(r, err)
		out <- sendOutcome{res, r, err}
	}
	go send(primary)
	inFlight := 1
	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 && backup != nil && backup != primary {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			hedged = true
			c.nHedges.Add(1)
			inFlight++
			go send(backup)
		case o := <-out:
			inFlight--
			if o.err == nil {
				return o.res, o.from, hedged, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inFlight == 0 {
				return nil, nil, hedged, firstErr
			}
		}
	}
}

// sendSub performs one sub-request against one replica — sync by
// default, via the durable-jobs API when the coordinator runs in jobs
// mode and the sub-request carries a derived key. An armed
// SiteClusterSend fault reads as a transport failure (Err) or a slow
// replica (Delay).
func (c *Coordinator) sendSub(ctx context.Context, r *replica, sub server.Request, ship *shipTracker) (*server.Response, error) {
	if err := faultinject.Hit(faultinject.SiteClusterSend); err != nil {
		return nil, fmt.Errorf("cluster: send to %s: %w", r.url, err)
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	if c.cfg.UseJobs && sub.IdempotencyKey != "" {
		st, err := r.client.SubmitJob(ctx, sub)
		if err != nil {
			return nil, err
		}
		if st, err = c.waitSub(ctx, r, st, ship); err != nil {
			return nil, err
		}
		if st.State == server.JobDone {
			if st.Result != nil && len(st.Result.Checkpoint) > 0 {
				ship.accept(st.Result.Checkpoint, r.url)
			}
			return st.Result, nil
		}
		apiErr := &client.APIError{Status: http.StatusInternalServerError, Kind: server.KindEngineFailed,
			Message: fmt.Sprintf("sub-job %s failed", st.ID)}
		if st.Error != nil {
			apiErr.Kind, apiErr.Message = st.Error.Kind, st.Error.Error
		}
		return nil, apiErr
	}
	return r.client.Reliability(ctx, sub)
}

// waitSub polls one sub-job to a terminal state, interleaving
// checkpoint polls at the CheckpointPoll cadence — the coordinator
// always holds a recent shipped frame for the range, so a replica that
// dies mid-job loses at most one polling interval of work. Checkpoint
// poll failures are ignored: the frame is an accelerator, the job
// status is the answer.
func (c *Coordinator) waitSub(ctx context.Context, r *replica, st *server.JobStatus, ship *shipTracker) (*server.JobStatus, error) {
	poll := c.cfg.JobPoll
	var lastCkpt time.Time
	for st.State == server.JobRunning {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
		if ship != nil && time.Since(lastCkpt) >= c.cfg.CheckpointPoll {
			lastCkpt = time.Now()
			if ck, err := r.client.JobCheckpoint(ctx, st.ID); err == nil && ck != nil {
				ship.accept(ck.Frame, r.url)
			}
		}
		var err error
		if st, err = r.client.GetJob(ctx, st.ID); err != nil {
			return nil, err
		}
		if poll *= 2; poll > c.cfg.CheckpointPoll {
			poll = c.cfg.CheckpointPoll
		}
	}
	return st, nil
}

// subKey derives a lane range's sub-job idempotency key from the
// parent's, so re-submissions of the same range re-attach wherever
// they land while distinct ranges never collide.
func subKey(parent string, rg mc.Range) string {
	return fmt.Sprintf("%s/lanes-%d-%d-%d", parent, rg.Lo, rg.Hi, rg.Total)
}

// transient classifies an error as retryable-elsewhere: transport
// failures and 503 sheds are; any other server answer (the request is
// bad, the computation infeasible, ...) would fail identically on every
// replica. Context errors are ambiguous — sendSub wraps every
// sub-request in the coordinator's own RequestTimeout, so a hung (not
// crashed) replica surfaces as DeadlineExceeded — and are classified by
// the caller's context: still live means the per-sub-request deadline
// (or a hedge-race cancel) fired and the work can move to another
// replica; ended means the caller is gone and retrying is pointless.
//
// A reply that dies mid-body — the replica was killed while writing
// the response, so the client sees io.ErrUnexpectedEOF or a truncated
// JSON document — is NOT an *client.APIError (the client only builds
// those from complete, decodable error responses); it falls through to
// the default below and is correctly retried elsewhere, exactly like
// the connection reset it almost is. TestTransientTruncatedBody pins
// that classification.
func transient(ctx context.Context, err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ctx.Err() == nil
	}
	return true
}

// report feeds one send outcome to the target replica's breaker.
// Context errors are skipped entirely: a cancelled hedge-race loser or
// an expired per-sub-request deadline is evidence of neither health nor
// failure, and recording a success there could close a half-open
// breaker a replica has not earned.
func (c *Coordinator) report(r *replica, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	c.breakers.Report(core.Engine(r.url), breakerErr(err))
}

// breakerErr maps a send outcome to the breaker's vocabulary: only
// transport failures and sheds count against a replica; any other
// served error response is proof of health. Context errors never reach
// here (report drops them).
func breakerErr(err error) error {
	if err == nil {
		return nil
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Status != http.StatusServiceUnavailable {
		return nil
	}
	return fmt.Errorf("%w: %v", core.ErrEngineFailed, err)
}

// sleep blocks for the jittered exponential delay of retry `attempt`
// (0-based), or until ctx ends.
func (c *Coordinator) sleep(ctx context.Context, attempt int) error {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.jmu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d))) + 1
	c.jmu.Unlock()
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// proxy routes a request whole to its hash-ring replica, failing over
// to the next live replica on transient errors.
func (c *Coordinator) proxy(ctx context.Context, req server.Request) (*server.Response, error) {
	began := time.Now()
	c.nProxied.Add(1)
	var trail []server.ClusterStep
	var lastErr error
	idx := c.hashIndex(req)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.nRetries.Add(1)
			if err := c.sleep(ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		target, tIdx, skips := c.pickTarget(idx, mc.Range{})
		trail = append(trail, skips...)
		if target == nil {
			lastErr = ErrNoReplicas
			continue
		}
		idx = tIdx + 1
		res, err := c.sendSub(ctx, target, req, nil)
		c.report(target, err)
		if err == nil {
			res.ClusterTrail = append(trail, server.ClusterStep{Replica: target.url, Event: "proxy"})
			res.ElapsedMS = time.Since(began).Milliseconds()
			return res, nil
		}
		trail = append(trail, server.ClusterStep{Replica: target.url, Event: "proxy", Err: err.Error()})
		lastErr = err
		if !transient(ctx, err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("cluster: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// hashIndex picks the home replica of a request: a stable hash of the
// fields that identify the computation, so the same request (and in
// jobs mode the same idempotency key) keeps landing on the same
// replica while it is live.
func (c *Coordinator) hashIndex(req server.Request) int {
	h := fnv.New32a()
	if req.IdempotencyKey != "" {
		h.Write([]byte(req.IdempotencyKey))
	} else {
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d", req.DB, req.DBText, req.Query, req.Seed)
	}
	return int(h.Sum32() % uint32(len(c.replicas)))
}

// ReplicaStatz is one replica's row in the coordinator's /statz.
type ReplicaStatz struct {
	URL string `json:"url"`
	Up  bool   `json:"up"`
	// ProbeFailures is the current consecutive-failure streak.
	ProbeFailures int64 `json:"probe_failures"`
	// Health is the replica's integrity state: "healthy", "suspect",
	// "quarantined", or "probation" (see health.go). CleanAudits is its
	// consecutive clean-audit streak while on probation.
	Health      HealthState `json:"health"`
	CleanAudits int         `json:"clean_audits,omitempty"`
}

// Statz is the JSON body of the coordinator's GET /statz.
type Statz struct {
	Replicas     []ReplicaStatz                 `json:"replicas"`
	LiveReplicas int                            `json:"live_replicas"`
	Breakers     map[string]server.BreakerStatz `json:"breakers"`
	Fanouts      int64                          `json:"fanouts"`
	Proxied      int64                          `json:"proxied"`
	Retries      int64                          `json:"retries"`
	Hedges       int64                          `json:"hedges"`
	Reassigns    int64                          `json:"reassigns"`
	// Checkpoint-shipping counters: frames accepted from replicas,
	// frames rejected by coordinator-side validation, resumes planted on
	// replicas, and resumes a replica refused (fingerprint mismatch).
	CheckpointsShipped  int64 `json:"checkpoints_shipped"`
	CheckpointsRejected int64 `json:"checkpoints_rejected"`
	Resumes             int64 `json:"resumes"`
	ResumesRejected     int64 `json:"resumes_rejected"`
	// Fan-out journal counters: successful writes, failed writes, and
	// fan-outs completed by Recover.
	JournalWrites    int64 `json:"journal_writes"`
	JournalErrors    int64 `json:"journal_errors"`
	RecoveredFanouts int64 `json:"recovered_fanouts"`
	// Integrity counters: audit re-executions run / skipped, digest
	// mismatches caught, ranges re-executed away from a liar,
	// attestation failures, quarantine transitions, and replicas passed
	// over in target selection for health reasons.
	Audits          int64 `json:"audits"`
	AuditsSkipped   int64 `json:"audits_skipped"`
	AuditMismatches int64 `json:"audit_mismatches"`
	AuditReplants   int64 `json:"audit_replants"`
	AttestFailures  int64 `json:"attest_failures"`
	Quarantines     int64 `json:"quarantines"`
	QuarantineSkips int64 `json:"quarantine_skips"`
	UptimeMS        int64 `json:"uptime_ms"`
}

// Statz snapshots the coordinator state.
func (c *Coordinator) Statz() Statz {
	st := Statz{
		Breakers:            c.breakers.Snapshot(),
		Fanouts:             c.nFanouts.Load(),
		Proxied:             c.nProxied.Load(),
		Retries:             c.nRetries.Load(),
		Hedges:              c.nHedges.Load(),
		Reassigns:           c.nReassigns.Load(),
		CheckpointsShipped:  c.nCkptShipped.Load(),
		CheckpointsRejected: c.nCkptRejected.Load(),
		Resumes:             c.nResumes.Load(),
		ResumesRejected:     c.nResumesRejected.Load(),
		JournalWrites:       c.nJournalWrites.Load(),
		JournalErrors:       c.nJournalErrors.Load(),
		RecoveredFanouts:    c.nRecovered.Load(),
		Audits:              c.nAudits.Load(),
		AuditsSkipped:       c.nAuditsSkipped.Load(),
		AuditMismatches:     c.nAuditMismatches.Load(),
		AuditReplants:       c.nAuditReplants.Load(),
		AttestFailures:      c.nAttestFails.Load(),
		Quarantines:         c.nQuarantines.Load(),
		QuarantineSkips:     c.nQuarantineSkips.Load(),
		UptimeMS:            time.Since(c.start).Milliseconds(),
	}
	for i, r := range c.replicas {
		up := r.up.Load()
		if up {
			st.LiveReplicas++
		}
		health, streak, _ := c.healthSnapshot(i)
		st.Replicas = append(st.Replicas, ReplicaStatz{URL: r.url, Up: up, ProbeFailures: r.fails.Load(),
			Health: health, CleanAudits: streak})
	}
	return st
}

// Handler returns the coordinator's HTTP surface: the same
// POST /v1/reliability as a single qreld (so clients are oblivious to
// the cluster), plus /healthz, /readyz (ready iff at least one replica
// is up), and /statz.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reliability", c.handleReliability)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if len(c.liveIndexes()) == 0 {
			http.Error(w, "no live replicas", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Statz())
	})
	return mux
}

func (c *Coordinator) handleReliability(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "use POST", Kind: server.KindBadRequest})
		return
	}
	var req server.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error(), Kind: server.KindBadRequest})
		return
	}
	res, err := c.Do(r.Context(), req)
	if err != nil {
		status, kind := http.StatusBadGateway, server.KindEngineFailed
		var apiErr *client.APIError
		switch {
		case errors.As(err, &apiErr):
			status, kind = apiErr.Status, apiErr.Kind
		case errors.Is(err, ErrNoReplicas):
			status, kind = http.StatusServiceUnavailable, server.KindShedding
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status, kind = http.StatusRequestTimeout, server.KindCanceled
		}
		writeJSON(w, status, server.ErrorResponse{Error: err.Error(), Kind: kind})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
