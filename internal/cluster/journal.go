package cluster

// The fan-out journal makes the coordinator itself crash-recoverable.
// With Config.JournalDir set, every keyed fan-out writes a durable
// record — the request, the lane-range split, per-range assignments,
// and the freshest shipped checkpoint per range — through the same
// atomic write-temp + fsync + rename protocol the replicas' snapshot
// stores use. A coordinator restarted after a crash scans the journal
// (Recover), re-runs each fan-out left running, and completes the
// merge: live sub-jobs re-attach by idempotency key, dead ranges
// resume from their journaled shipped state, and the final estimate is
// bit-identical to the run the crash interrupted.
//
// Journal writes are deliberately non-fatal: the journal is a recovery
// accelerator, and losing a write can cost redone work after a crash,
// never correctness. Torn files (a crash mid-write, simulated by the
// SiteClusterJournalCrash fault) read as absent.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/faultinject"
	"qrel/internal/mc"
	"qrel/internal/server"
)

// Fan-out journal record states.
const (
	fanoutRunning = "running"
	fanoutDone    = "done"
)

// RangeRecord is one lane range's row in a FanoutRecord.
type RangeRecord struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
	// SubKey is the range's derived sub-job idempotency key (jobs mode
	// only) — the handle recovery re-attaches with.
	SubKey string `json:"sub_key,omitempty"`
	// Replica is the last replica the range was assigned to.
	Replica string `json:"replica,omitempty"`
	// Checkpoint is the freshest accepted shipped frame for the range;
	// CheckpointSeq its sample count, CheckpointFrom the replica that
	// shipped it. Recovery resumes the range from here when the owning
	// replica is gone.
	Checkpoint     []byte `json:"checkpoint,omitempty"`
	CheckpointSeq  int    `json:"checkpoint_seq,omitempty"`
	CheckpointFrom string `json:"checkpoint_from,omitempty"`
	// Done marks the range's sub-response as received (observability;
	// recovery re-attaches regardless, which is cheap and idempotent).
	Done bool `json:"done,omitempty"`
	// Digest is the attestation digest (mc.RangeDigest) of the lane
	// aggregates that entered — or will enter — the merge for this
	// range, recorded when Done is set and updated if an audit replaces
	// the aggregates.
	Digest string `json:"digest,omitempty"`
}

// FanoutRecord is the journal's durable record of one keyed fan-out.
type FanoutRecord struct {
	// Key is the parent request's idempotency key (the journal file is
	// named by its hash).
	Key     string         `json:"key"`
	Request server.Request `json:"request"`
	// State is "running" until the merge completes, then "done".
	State  string        `json:"state"`
	Ranges []RangeRecord `json:"ranges"`
	// Result is the merged response, set once State is "done"; a re-POST
	// of the same key is served from it without touching the replicas.
	Result *server.Response `json:"result,omitempty"`
	// Audits accumulates every audit the coordinator ran on this
	// fan-out — the durable twin of the ClusterTrail's audit events.
	Audits    []AuditRecord `json:"audits,omitempty"`
	UpdatedMS int64         `json:"updated_ms"`
}

// journalPath names a key's journal file under dir. The key is
// content-addressed by hash so arbitrary key bytes cannot escape the
// directory.
func journalPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "fanout-"+hex.EncodeToString(sum[:8])+".json")
}

func (c *Coordinator) journalPath(key string) string {
	return journalPath(c.cfg.JournalDir, key)
}

// LoadFanout reads the journal record of one keyed fan-out, nil when
// absent (or torn). Exported for tests, chaos invariants, and operator
// tooling that inspect a coordinator's journal from outside the
// process.
func LoadFanout(dir, key string) *FanoutRecord {
	if dir == "" || key == "" {
		return nil
	}
	return loadRecord(journalPath(dir, key))
}

// loadRecord reads and decodes one journal file. A missing or torn
// (crash-truncated) file reads as absent.
func loadRecord(path string) *FanoutRecord {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rec FanoutRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil
	}
	return &rec
}

// writeJournalFile persists one journal file atomically. The
// SiteClusterJournalCrash fault simulates a crash mid-write: half the
// bytes reach the final path non-atomically and the write reports
// failure — later loads must tolerate the torn file.
func (c *Coordinator) writeJournalFile(path string, data []byte) error {
	if err := faultinject.Hit(faultinject.SiteClusterJournalCrash); err != nil {
		os.WriteFile(path, data[:len(data)/2], 0o644)
		return fmt.Errorf("cluster: journal write %s: %w", path, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, data)
}

// fanoutJournal is the live handle on one fan-out's journal record.
// A nil *fanoutJournal (journaling off) is valid and inert.
type fanoutJournal struct {
	c    *Coordinator
	path string

	mu  sync.Mutex
	rec FanoutRecord
}

// openJournal starts (or resumes) the journal record of one fan-out,
// returning nil when journaling is off or the request carries no
// idempotency key. An existing running record for the same key and
// split seeds the per-range checkpoints, so a coordinator restarted
// mid-fan-out resumes from the last shipped state instead of redoing
// the work.
func (c *Coordinator) openJournal(req server.Request, ranges []mc.Range) *fanoutJournal {
	if c.cfg.JournalDir == "" || req.IdempotencyKey == "" {
		return nil
	}
	j := &fanoutJournal{c: c, path: c.journalPath(req.IdempotencyKey)}
	j.rec = FanoutRecord{Key: req.IdempotencyKey, Request: req, State: fanoutRunning}
	for _, rg := range ranges {
		rr := RangeRecord{Lo: rg.Lo, Hi: rg.Hi, Total: rg.Total}
		if c.cfg.UseJobs {
			rr.SubKey = subKey(req.IdempotencyKey, rg)
		}
		j.rec.Ranges = append(j.rec.Ranges, rr)
	}
	if prev := loadRecord(j.path); prev != nil && prev.Key == req.IdempotencyKey && sameRanges(prev.Ranges, ranges) {
		for i := range j.rec.Ranges {
			j.rec.Ranges[i].Checkpoint = prev.Ranges[i].Checkpoint
			j.rec.Ranges[i].CheckpointSeq = prev.Ranges[i].CheckpointSeq
			j.rec.Ranges[i].CheckpointFrom = prev.Ranges[i].CheckpointFrom
		}
	}
	j.update(func(*FanoutRecord) {})
	return j
}

// sameRanges reports whether a journaled split matches a freshly
// computed one (same ranges in the same order).
func sameRanges(rrs []RangeRecord, ranges []mc.Range) bool {
	if len(rrs) != len(ranges) {
		return false
	}
	for i, rg := range ranges {
		if rrs[i].Lo != rg.Lo || rrs[i].Hi != rg.Hi || rrs[i].Total != rg.Total {
			return false
		}
	}
	return true
}

// update applies f to the record under the journal lock and persists
// it. Failures are counted, never fatal.
func (j *fanoutJournal) update(f func(*FanoutRecord)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f(&j.rec)
	j.rec.UpdatedMS = time.Now().UnixMilli()
	data, err := json.Marshal(&j.rec)
	if err == nil {
		err = j.c.writeJournalFile(j.path, data)
	}
	if err != nil {
		j.c.nJournalErrors.Add(1)
		return
	}
	j.c.nJournalWrites.Add(1)
}

// setAssigned records which replica a range was (re)assigned to.
func (j *fanoutJournal) setAssigned(idx int, replica string) {
	j.update(func(r *FanoutRecord) { r.Ranges[idx].Replica = replica })
}

// setCheckpoint mirrors an accepted shipped frame into the record,
// keeping the freshest per range.
func (j *fanoutJournal) setCheckpoint(idx int, frame []byte, seq int, from string) {
	j.update(func(r *FanoutRecord) {
		rr := &r.Ranges[idx]
		if rr.Checkpoint == nil || seq > rr.CheckpointSeq {
			rr.Checkpoint, rr.CheckpointSeq, rr.CheckpointFrom = frame, seq, from
		}
	})
}

// setDone marks one range's sub-response as received and records the
// attestation digest of the aggregates bound for the merge. Audits call
// it again when they replace a liar's aggregates — the journal always
// names the digest that was actually merged.
func (j *fanoutJournal) setDone(idx int, digest string) {
	j.update(func(r *FanoutRecord) {
		r.Ranges[idx].Done = true
		r.Ranges[idx].Digest = digest
	})
}

// addAudit appends one audit's durable record.
func (j *fanoutJournal) addAudit(rec AuditRecord) {
	j.update(func(r *FanoutRecord) { r.Audits = append(r.Audits, rec) })
}

// checkpointOf returns range idx's journaled checkpoint, if any.
func (j *fanoutJournal) checkpointOf(idx int) (frame []byte, from string) {
	if j == nil {
		return nil, ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.Ranges[idx].Checkpoint, j.rec.Ranges[idx].CheckpointFrom
}

// finish marks the fan-out done and journals the merged result.
func (j *fanoutJournal) finish(res *server.Response) {
	j.update(func(r *FanoutRecord) {
		r.State = fanoutDone
		r.Result = res
	})
}

// journaledResult returns the journaled merged response when the
// journal already holds a completed fan-out for this request's key —
// the idempotent fast path after a coordinator restart. A key whose
// journaled request differs in the fields that determine the estimate
// is ignored (key reuse): recomputing beats serving a wrong cached
// answer.
func (c *Coordinator) journaledResult(req server.Request) *server.Response {
	if c.cfg.JournalDir == "" || req.IdempotencyKey == "" {
		return nil
	}
	rec := loadRecord(c.journalPath(req.IdempotencyKey))
	if rec == nil || rec.Key != req.IdempotencyKey || rec.State != fanoutDone || rec.Result == nil {
		return nil
	}
	jr := rec.Request
	if jr.Seed != req.Seed || jr.Query != req.Query || jr.DB != req.DB || jr.DBText != req.DBText ||
		jr.Eps != req.Eps || jr.Delta != req.Delta || jr.MaxSamples != req.MaxSamples {
		return nil
	}
	return rec.Result
}

// Recover scans the journal for fan-outs a previous coordinator
// process left running and drives each to completion: journaled ranges
// are reused verbatim (never re-split — the record's split is the
// truth), live sub-jobs re-attach by their journaled idempotency keys,
// and dead ranges resume from their journaled shipped checkpoints. It
// returns how many fan-outs were completed; records that fail to
// recover are left running for a later attempt and surface as the
// first error. Safe to run concurrently with clients re-POSTing the
// same keys — both paths converge on the replicas' job journals.
func (c *Coordinator) Recover(ctx context.Context) (int, error) {
	if c.cfg.JournalDir == "" {
		return 0, nil
	}
	ents, err := os.ReadDir(c.cfg.JournalDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	recovered := 0
	var firstErr error
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "fanout-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		rec := loadRecord(filepath.Join(c.cfg.JournalDir, e.Name()))
		if rec == nil || rec.State != fanoutRunning {
			continue // done, or torn by a crash mid-write
		}
		if _, err := c.recoverOne(ctx, rec); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: recovering fan-out %q: %w", rec.Key, err)
			}
			continue
		}
		recovered++
		c.nRecovered.Add(1)
	}
	return recovered, firstErr
}

// recoverOne re-runs one journaled fan-out through the shared
// runRanges path (openJournal re-seeds the shipped checkpoints from
// the record).
func (c *Coordinator) recoverOne(ctx context.Context, rec *FanoutRecord) (*server.Response, error) {
	ranges := make([]mc.Range, len(rec.Ranges))
	for i, rr := range rec.Ranges {
		ranges[i] = mc.Range{Lo: rr.Lo, Hi: rr.Hi, Total: rr.Total}
	}
	live := c.liveIndexes()
	starts := make([]int, len(ranges))
	for i := range starts {
		if len(live) > 0 {
			starts[i] = live[i%len(live)]
		}
	}
	c.nFanouts.Add(1)
	return c.runRanges(ctx, rec.Request, ranges, starts, time.Now())
}
