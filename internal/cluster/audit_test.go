package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strconv"
	"testing"
	"time"

	"qrel/internal/faultinject"
	"qrel/internal/server"
	"qrel/internal/testutil"
)

// healthOf finds one replica's integrity state in a Statz snapshot.
func healthOf(stz Statz, url string) HealthState {
	for _, r := range stz.Replicas {
		if r.URL == url {
			return r.Health
		}
	}
	return ""
}

// trailHas reports whether the response trail carries the event.
func trailHas(res *server.Response, event string) bool {
	if res == nil {
		return false
	}
	for _, s := range res.ClusterTrail {
		if s.Event == event {
			return true
		}
	}
	return false
}

// TestAuditCatchesPersistentLiar is the headline trust-but-verify test:
// replica 0 silently perturbs every lane aggregate it computes
// (attestation still passes — the digest is computed over the corrupted
// aggregates), and a full audit (AuditFrac 1) must catch it via
// cross-replica re-execution, tie-break it as the liar, quarantine it,
// repair its ranges, and still serve the estimate bit-identical to the
// single-node reference — with the evidence in both the trail and the
// fan-out journal.
func TestAuditCatchesPersistentLiar(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)

	f := startFleet(t, 3, func(i int) server.Config {
		return server.Config{ComputeCorrupt: i == 0}
	})
	jdir := t.TempDir()
	c := fastCoord(t, f.urls, func(cfg *Config) {
		cfg.AuditFrac = 1
		cfg.JournalDir = jdir
		cfg.QuarantineCooldown = time.Hour // no readmission inside the test
	})
	kreq := req
	kreq.IdempotencyKey = "audit-persistent-liar"
	res, err := c.Do(context.Background(), kreq)
	if err != nil {
		t.Fatalf("Do with a lying replica under full audit: %v", err)
	}
	if got := estOf(res); got != want {
		t.Fatalf("estimate diverged from single-node reference:\n got %+v\nwant %+v", got, want)
	}
	if !trailHas(res, "audit-liar") || !trailHas(res, "quarantine") {
		t.Fatalf("trail carries no audit-liar/quarantine evidence: %+v", res.ClusterTrail)
	}
	stz := c.Statz()
	if stz.AuditMismatches < 1 || stz.Quarantines < 1 {
		t.Fatalf("statz = mismatches %d, quarantines %d; want >= 1 each", stz.AuditMismatches, stz.Quarantines)
	}
	if h := healthOf(stz, f.urls[0]); h != HealthQuarantined {
		t.Fatalf("lying replica health = %q, want %q", h, HealthQuarantined)
	}

	rec := LoadFanout(jdir, kreq.IdempotencyKey)
	if rec == nil {
		t.Fatal("fan-out journal record missing")
	}
	liars := 0
	for _, a := range rec.Audits {
		if a.Verdict == AuditLiar && a.Liar == f.urls[0] {
			liars++
		}
	}
	if liars < 1 {
		t.Fatalf("journal carries no liar verdict against %s: %+v", f.urls[0], rec.Audits)
	}
	for i, rr := range rec.Ranges {
		if !rr.Done || rr.Digest == "" {
			t.Fatalf("journaled range %d not done with a digest: %+v", i, rr)
		}
	}
}

// TestAuditFracZeroAttestationOnly pins the -audit-frac 0 contract: no
// audit re-executions at all, but every fanned-out range still arrives
// attested and verified.
func TestAuditFracZeroAttestationOnly(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)

	f := startFleet(t, 2, nil)
	c := fastCoord(t, f.urls, nil) // AuditFrac zero value
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Fatalf("estimate diverged: got %+v want %+v", got, want)
	}
	if !trailHas(res, "attest") {
		t.Fatalf("no attest events in trail: %+v", res.ClusterTrail)
	}
	stz := c.Statz()
	if stz.Audits != 0 || stz.AuditMismatches != 0 || stz.AttestFailures != 0 {
		t.Fatalf("audits-off statz = %+v, want zero audit activity", stz)
	}
}

// tamperFront fronts a replica with a reverse proxy that corrupts the
// lane-digest attestation in every lane-range response body — the
// wire-level lie the attestation check exists to catch (the aggregates
// no longer match the digest the replica signed them with).
func tamperFront(t *testing.T, backend string) string {
	t.Helper()
	u, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.ModifyResponse = func(resp *http.Response) error {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		resp.Body.Close()
		b = bytes.Replace(b, []byte(`"lane_digest":"`), []byte(`"lane_digest":"bad`), 1)
		resp.Body = io.NopCloser(bytes.NewReader(b))
		resp.ContentLength = int64(len(b))
		resp.Header.Set("Content-Length", strconv.Itoa(len(b)))
		return nil
	}
	ts := httptest.NewServer(rp)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestAttestationFailureRejected: a replica whose responses fail
// attestation never contributes to an estimate — the coordinator
// records the failure, counts strikes against the replica, and (with no
// honest replica to fail over to, both fronts tampered) refuses the
// fan-out rather than merging unattested aggregates.
func TestAttestationFailureRejected(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	f := startFleet(t, 2, nil)
	tampered := []string{tamperFront(t, f.urls[0]), tamperFront(t, f.urls[1])}
	c := fastCoord(t, tampered, func(cfg *Config) { cfg.MaxAttempts = 3 })

	_, err := c.Do(context.Background(), mcReq())
	if err == nil {
		t.Fatal("Do succeeded through a tampered attestation")
	}
	stz := c.Statz()
	if stz.AttestFailures < 1 {
		t.Fatalf("attestation failures = %d, want >= 1", stz.AttestFailures)
	}
	unhealthy := 0
	for _, u := range tampered {
		if healthOf(stz, u) != HealthHealthy {
			unhealthy++
		}
	}
	if unhealthy == 0 {
		t.Fatalf("both tampered replicas still read healthy after attestation failures: %+v", stz.Replicas)
	}
}

// TestAuditUnresolvedRefused: two replicas disagree on a deterministic
// range and no third exists to break the tie — serving would mean
// guessing which one lies, so the fan-out must be refused with the
// typed error and both parties marked suspect.
func TestAuditUnresolvedRefused(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	f := startFleet(t, 2, func(i int) server.Config {
		return server.Config{ComputeCorrupt: i == 0}
	})
	c := fastCoord(t, f.urls, func(cfg *Config) { cfg.AuditFrac = 1 })

	_, err := c.Do(context.Background(), mcReq())
	if !errors.Is(err, ErrAuditUnresolved) {
		t.Fatalf("Do error = %v, want ErrAuditUnresolved", err)
	}
	stz := c.Statz()
	for _, u := range f.urls {
		if h := healthOf(stz, u); h != HealthSuspect {
			t.Errorf("replica %s health = %q, want %q (unresolved mismatch suspects both)", u, h, HealthSuspect)
		}
	}
}

// TestQuarantineReadmission drives the full lifecycle: a one-shot
// injected corruption gets one replica quarantined (the estimate stays
// correct via repair), the cooldown promotes it to probation, probation
// audits are clean — the replica computes honestly now — and after
// ProbationAudits of them it is readmitted to full health.
func TestQuarantineReadmission(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)

	f := startFleet(t, 3, nil)
	c := fastCoord(t, f.urls, func(cfg *Config) {
		cfg.AuditFrac = 1
		cfg.ProbationAudits = 2
		cfg.QuarantineCooldown = 50 * time.Millisecond
	})

	faultinject.Enable(faultinject.SiteClusterComputeCorrupt, faultinject.Fault{Err: errors.New("injected"), Times: 1})
	res, err := c.Do(context.Background(), req)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("Do with a one-shot corruption: %v", err)
	}
	if got := estOf(res); got != want {
		t.Fatalf("repaired estimate diverged: got %+v want %+v", got, want)
	}
	stz := c.Statz()
	if stz.Quarantines < 1 {
		t.Fatalf("one-shot lie produced no quarantine (statz %+v)", stz)
	}
	var liar string
	for _, r := range stz.Replicas {
		if r.Health == HealthQuarantined {
			liar = r.URL
		}
	}
	if liar == "" {
		t.Fatalf("no replica reads quarantined: %+v", stz.Replicas)
	}

	time.Sleep(80 * time.Millisecond) // past the cooldown: next touch promotes to probation
	res, err = c.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("post-cooldown Do: %v", err)
	}
	if got := estOf(res); got != want {
		t.Fatalf("post-cooldown estimate diverged: got %+v want %+v", got, want)
	}
	if !trailHas(res, "readmit") {
		t.Fatalf("probation audits produced no readmit event: %+v", res.ClusterTrail)
	}
	stz = c.Statz()
	if h := healthOf(stz, liar); h != HealthHealthy {
		t.Fatalf("readmitted replica health = %q, want %q", h, HealthHealthy)
	}
}
