package cluster

import (
	"math"
	"math/rand"
	"testing"

	"qrel/internal/checkpoint"
	"qrel/internal/mc"
)

// FuzzCheckShipped hammers the coordinator-side frame decoder with
// arbitrary bytes: a shipped checkpoint crosses a process boundary, so
// every malformed shape — truncated frames, bad CRCs, undecodable
// payloads, lane-count lies — must come back as an error, never a
// panic, and an accepted frame must report a non-negative sequence.
func FuzzCheckShipped(f *testing.F) {
	rg := mc.Range{Lo: 4, Hi: 8, Total: 8}
	valid := validFrame(42, rg, 1000)
	f.Add([]byte(nil), int64(42), 4, 8, 8)
	f.Add(valid, int64(42), 4, 8, 8)
	f.Add(valid, int64(43), 4, 8, 8)                // wrong seed
	f.Add(valid, int64(42), 0, 4, 8)                // wrong range
	f.Add(valid[:len(valid)/2], int64(42), 4, 8, 8) // truncated
	f.Add(checkpoint.EncodeFrame([]byte("notjson")), int64(42), 4, 8, 8)
	f.Add(checkpoint.EncodeFrame([]byte(`{"engine":"monte-carlo-direct","seed":42,"lanes":8,"samples":9,"loop":{"method":"hoeffding@4-8/8","drawn":9,"lane_count":17}}`)), int64(42), 4, 8, 8)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)/2] ^= 0xff
	f.Add(badCRC, int64(42), 4, 8, 8)

	f.Fuzz(func(t *testing.T, frame []byte, seed int64, lo, hi, total int) {
		seq, err := checkShipped(frame, seed, mc.Range{Lo: lo, Hi: hi, Total: total})
		if err == nil && seq < 0 {
			t.Fatalf("checkShipped accepted a frame with negative sequence %d", seq)
		}
	})
}

// FuzzLaneDigest pins the two properties the audit layer stands on:
// the attestation digest is a pure function of the lane aggregates
// (recomputing over a copy round-trips, and computing it never mutates
// its input), and it is injective enough to audit with — perturbing any
// single field of any lane, by as little as one ulp of a sum, yields a
// different digest.
func FuzzLaneDigest(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(0))
	f.Add(int64(42), uint8(8), uint8(3), uint8(1))
	f.Add(int64(-7), uint8(1), uint8(0), uint8(2))
	f.Add(int64(0), uint8(5), uint8(4), uint8(3))

	f.Fuzz(func(t *testing.T, seed int64, n, which, field uint8) {
		rng := rand.New(rand.NewSource(seed))
		lanes := make([]mc.LaneAgg, int(n%8)+1)
		for i := range lanes {
			quota := 1 + rng.Intn(1000)
			drawn := rng.Intn(quota + 1)
			lanes[i] = mc.LaneAgg{
				Idx:   i,
				Quota: quota,
				Drawn: drawn,
				Hits:  rng.Intn(drawn + 1),
				Sum:   rng.Float64() * float64(drawn),
			}
		}
		orig := append([]mc.LaneAgg(nil), lanes...)
		d1 := mc.RangeDigest(lanes)
		if d2 := mc.RangeDigest(append([]mc.LaneAgg(nil), lanes...)); d2 != d1 {
			t.Fatalf("digest of a copy diverged: %s vs %s", d1, d2)
		}
		for i := range lanes {
			if lanes[i] != orig[i] {
				t.Fatalf("RangeDigest mutated its input at lane %d", i)
			}
		}

		mut := append([]mc.LaneAgg(nil), lanes...)
		k := int(which) % len(mut)
		switch field % 4 {
		case 0:
			mut[k].Sum = math.Nextafter(mut[k].Sum, math.Inf(1))
		case 1:
			mut[k].Quota++
		case 2:
			mut[k].Drawn++
		case 3:
			mut[k].Hits++
		}
		if dm := mc.RangeDigest(mut); dm == d1 {
			t.Fatalf("perturbing lane %d field %d left the digest unchanged (%s)", k, field%4, d1)
		}
		if dt := mc.RangeDigest(append(mut[:0:0], mut...)); dt != mc.RangeDigest(mut) {
			t.Fatalf("perturbed digest not deterministic")
		}
	})
}
