package cluster

import (
	"testing"

	"qrel/internal/checkpoint"
	"qrel/internal/mc"
)

// FuzzCheckShipped hammers the coordinator-side frame decoder with
// arbitrary bytes: a shipped checkpoint crosses a process boundary, so
// every malformed shape — truncated frames, bad CRCs, undecodable
// payloads, lane-count lies — must come back as an error, never a
// panic, and an accepted frame must report a non-negative sequence.
func FuzzCheckShipped(f *testing.F) {
	rg := mc.Range{Lo: 4, Hi: 8, Total: 8}
	valid := validFrame(42, rg, 1000)
	f.Add([]byte(nil), int64(42), 4, 8, 8)
	f.Add(valid, int64(42), 4, 8, 8)
	f.Add(valid, int64(43), 4, 8, 8)                // wrong seed
	f.Add(valid, int64(42), 0, 4, 8)                // wrong range
	f.Add(valid[:len(valid)/2], int64(42), 4, 8, 8) // truncated
	f.Add(checkpoint.EncodeFrame([]byte("notjson")), int64(42), 4, 8, 8)
	f.Add(checkpoint.EncodeFrame([]byte(`{"engine":"monte-carlo-direct","seed":42,"lanes":8,"samples":9,"loop":{"method":"hoeffding@4-8/8","drawn":9,"lane_count":17}}`)), int64(42), 4, 8, 8)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)/2] ^= 0xff
	f.Add(badCRC, int64(42), 4, 8, 8)

	f.Fuzz(func(t *testing.T, frame []byte, seed int64, lo, hi, total int) {
		seq, err := checkShipped(frame, seed, mc.Range{Lo: lo, Hi: hi, Total: total})
		if err == nil && seq < 0 {
			t.Fatalf("checkShipped accepted a frame with negative sequence %d", seq)
		}
	})
}
