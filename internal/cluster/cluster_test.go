package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qrel/internal/faultinject"
	"qrel/internal/rel"
	"qrel/internal/server"
	"qrel/internal/server/client"
	"qrel/internal/testutil"
	"qrel/internal/unreliable"
)

// testDB builds the same small graph database on every replica.
func testDB(t *testing.T, n, uncertain int) *unreliable.DB {
	t.Helper()
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	s.MustAdd("S", 0)
	rng := rand.New(rand.NewSource(1))
	db := unreliable.New(s)
	added := 0
	for added < uncertain {
		a, b := rng.Intn(n), rng.Intn(n)
		atom := rel.GroundAtom{Rel: "E", Args: rel.Tuple{a, b}}
		if db.ErrorProb(atom).Sign() != 0 {
			continue
		}
		db.MustSetError(atom, big.NewRat(1, 4))
		added++
	}
	return db
}

// fleet is a set of in-process qreld replicas plus their URLs.
type fleet struct {
	servers []*server.Server
	fronts  []*httptest.Server
	urls    []string
}

// startFleet boots n replicas, each with the "g" database registered.
func startFleet(t *testing.T, n int, cfg func(i int) server.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		c := server.Config{}
		if cfg != nil {
			c = cfg(i)
		}
		if c.ReplicaID == "" {
			c.ReplicaID = fmt.Sprintf("replica-%d", i)
		}
		s := server.New(c)
		s.Register("g", testDB(t, 4, 3))
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.fronts = append(f.fronts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for i := range f.fronts {
			f.fronts[i].Close()
			f.servers[i].Close()
		}
	})
	return f
}

// kill shuts replica i down hard: in-flight connections are severed,
// new ones refused.
func (f *fleet) kill(i int) {
	f.fronts[i].CloseClientConnections()
	f.fronts[i].Close()
	f.servers[i].Close()
}

// fastCoord builds a coordinator over urls with test-speed timings.
func fastCoord(t *testing.T, urls []string, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Replicas:           urls,
		ProbeInterval:      5 * time.Millisecond,
		ProbeTimeout:       250 * time.Millisecond,
		ProbeFailThreshold: 2,
		BaseBackoff:        time.Millisecond,
		MaxBackoff:         10 * time.Millisecond,
		JobPoll:            2 * time.Millisecond,
		Seed:               1,
		Breaker:            server.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// estimate is the estimate-defining subset of a Response: every field
// that must be bit-identical between a cluster answer and the
// single-node reference. Trails and timings are deliberately excluded.
type estimate struct {
	R, H       float64
	Eps, Delta float64
	Samples    int
	Engine     string
	Guarantee  string
	Class      string
	Seed       int64
	Degraded   bool
}

func estOf(res *server.Response) estimate {
	return estimate{R: res.R, H: res.H, Eps: res.Eps, Delta: res.Delta, Samples: res.Samples,
		Engine: res.Engine, Guarantee: res.Guarantee, Class: res.Class, Seed: res.Seed, Degraded: res.Degraded}
}

// mcReq is the canonical fan-out-eligible request of these tests.
func mcReq() server.Request {
	return server.Request{
		DB:      "g",
		Query:   "exists x y . E(x,y)",
		Engine:  "monte-carlo-direct",
		Eps:     0.02,
		Seed:    42,
		Workers: 4,
	}
}

// singleNodeRef computes the one-machine Workers=4 reference answer on
// a dedicated replica.
func singleNodeRef(t *testing.T, req server.Request) estimate {
	t.Helper()
	f := startFleet(t, 1, nil)
	res, err := client.New(f.urls[0]).Reliability(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return estOf(res)
}

// TestClusterDeterminismMatrix is the cross-topology bit-identity
// check: the same seeded request answered by a 1-replica proxy, a
// 2-replica fan-out, and a 4-replica fan-out — plus a 4-replica run
// with one replica hard-killed mid-estimation — must all equal the
// single-node Workers=4 reference, field for field.
func TestClusterDeterminismMatrix(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("replicas-%d", n), func(t *testing.T) {
			f := startFleet(t, n, nil)
			c := fastCoord(t, f.urls, nil)
			res, err := c.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got := estOf(res); got != want {
				t.Errorf("cluster estimate %+v,\nwant single-node %+v", got, want)
			}
			st := c.Statz()
			if n >= 2 && st.Fanouts != 1 {
				t.Errorf("fanouts = %d, want 1", st.Fanouts)
			}
			if n == 1 && st.Proxied != 1 {
				t.Errorf("proxied = %d, want 1 (single replica cannot fan out)", st.Proxied)
			}
		})
	}

	t.Run("replicas-4-mid-run-kill", func(t *testing.T) {
		defer faultinject.Reset()
		f := startFleet(t, 4, nil)
		c := fastCoord(t, f.urls, nil)
		// Hold every sub-request send for 50ms, then kill one replica
		// inside that window: its range's first attempt targets a replica
		// that is gone by the time the connection opens, forcing a real
		// reassignment to a survivor.
		faultinject.Enable(faultinject.SiteClusterSend, faultinject.Fault{Delay: 50 * time.Millisecond})
		type out struct {
			res *server.Response
			err error
		}
		done := make(chan out, 1)
		go func() {
			res, err := c.Do(context.Background(), req)
			done <- out{res, err}
		}()
		time.Sleep(10 * time.Millisecond)
		f.kill(0)
		o := <-done
		if o.err != nil {
			t.Fatal(o.err)
		}
		if got := estOf(o.res); got != want {
			t.Errorf("post-kill estimate %+v,\nwant single-node %+v", got, want)
		}
		if c.Statz().Reassigns == 0 {
			t.Error("reassigns = 0, want at least one (the killed replica's range must move)")
		}
		var sawReassign bool
		for _, s := range o.res.ClusterTrail {
			if s.Event == "reassign" {
				sawReassign = true
			}
		}
		if !sawReassign {
			t.Errorf("trail %+v records no reassign", o.res.ClusterTrail)
		}
	})
}

// TestClusterMixedEvalModes is the mixed-version-fleet check: replicas
// that disagree on evaluation mode (one forced to the interpreter, one
// to the compiled bytecode path, one on the default) must produce the
// same per-lane aggregates — the merged estimate, and every lane
// digest the coordinator attests, are bit-identical to a single node
// running pure interpreted.
func TestClusterMixedEvalModes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	interp := req
	interp.Eval = "interpreted"
	want := singleNodeRef(t, interp)

	modes := []string{"interpreted", "compiled", ""}
	f := startFleet(t, 3, func(i int) server.Config {
		return server.Config{DefaultEval: modes[i]}
	})
	c := fastCoord(t, f.urls, nil)
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("mixed-eval cluster estimate %+v,\nwant interpreted single-node %+v", got, want)
	}
	for _, s := range res.ClusterTrail {
		if s.Event == "attest-fail" {
			t.Errorf("attestation failed across eval modes: %+v", s)
		}
	}
}

// TestClusterProxiesNonParallel checks that anything not eligible for
// lane fan-out — here an auto-dispatched exact query — proxies whole to
// one replica, answer unchanged.
func TestClusterProxiesNonParallel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	f := startFleet(t, 3, nil)
	c := fastCoord(t, f.urls, nil)
	res, err := c.Do(context.Background(), server.Request{DB: "g", Query: "exists x y . E(x,y)"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RExact == "" || res.Guarantee != "exact" {
		t.Errorf("proxied exact answer %+v, want an exact guarantee", res)
	}
	if len(res.ClusterTrail) == 0 || res.ClusterTrail[len(res.ClusterTrail)-1].Event != "proxy" {
		t.Errorf("trail %+v, want a closing proxy step", res.ClusterTrail)
	}
	if st := c.Statz(); st.Proxied != 1 || st.Fanouts != 0 {
		t.Errorf("statz proxied=%d fanouts=%d, want 1/0", st.Proxied, st.Fanouts)
	}
}

// TestClusterHedgesSlowReplica arms a one-shot send delay much larger
// than HedgeAfter: the slow range must be duplicated to the next live
// replica, the fast copy wins, and the merged answer is unchanged.
func TestClusterHedgesSlowReplica(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	f := startFleet(t, 2, nil)
	c := fastCoord(t, f.urls, func(cfg *Config) { cfg.HedgeAfter = 15 * time.Millisecond })
	faultinject.Enable(faultinject.SiteClusterSend, faultinject.Fault{Delay: 400 * time.Millisecond, Times: 1})
	start := time.Now()
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("hedged estimate %+v,\nwant %+v", got, want)
	}
	if c.Statz().Hedges == 0 {
		t.Error("hedges = 0, want at least one")
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("request took %v: the hedge did not cut the slow replica short", elapsed)
	}
	var sawHedge bool
	for _, s := range res.ClusterTrail {
		if s.Event == "hedge" {
			sawHedge = true
		}
	}
	if !sawHedge {
		t.Errorf("trail %+v records no hedge", res.ClusterTrail)
	}
}

// TestClusterReassignsHungReplica covers the hung-not-crashed failure
// mode: a replica that answers /readyz but never answers the
// sub-request. The coordinator's own RequestTimeout surfaces that as
// context.DeadlineExceeded while the caller's context is still live, so
// the coordinator must treat it as transient, reassign the lane range
// to the survivor, and still produce the bit-identical merged answer —
// not abort the whole fan-out.
func TestClusterReassignsHungReplica(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	f := startFleet(t, 1, nil)
	hungMux := http.NewServeMux()
	hungMux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// The handler hangs until the test ends (released by stop — with the
	// request body unread the server never notices the coordinator
	// abandoning the connection, so waiting on r.Context() would deadlock
	// hung.Close).
	stop := make(chan struct{})
	hungMux.HandleFunc("/v1/reliability", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	})
	hung := httptest.NewServer(hungMux)
	defer hung.Close()
	defer close(stop)

	c := fastCoord(t, append([]string{hung.URL}, f.urls...), func(cfg *Config) {
		cfg.RequestTimeout = 75 * time.Millisecond
	})
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("post-hang estimate %+v,\nwant single-node %+v", got, want)
	}
	if c.Statz().Reassigns == 0 {
		t.Error("reassigns = 0, want at least one (the hung replica's range must move)")
	}
	var sawReassign bool
	for _, s := range res.ClusterTrail {
		sawReassign = sawReassign || s.Event == "reassign"
	}
	if !sawReassign {
		t.Errorf("trail %+v records no reassign", res.ClusterTrail)
	}
}

// TestClusterHedgeSurvivesBackupMarkedDown reproduces the
// hedge-then-replicas-die window: one primary send is slowed long
// enough for injected probe failures to mark every replica down while
// the hedge race is still in flight. The hedge must go to (and be
// logged against) the backup captured at assign time — re-resolving the
// hedge target after the race would find no live replica and panic.
func TestClusterHedgeSurvivesBackupMarkedDown(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	f := startFleet(t, 2, nil)
	c := fastCoord(t, f.urls, func(cfg *Config) { cfg.HedgeAfter = 40 * time.Millisecond })

	faultinject.Enable(faultinject.SiteClusterSend, faultinject.Fault{Delay: 300 * time.Millisecond, Times: 1})
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Do(context.Background(), req)
		done <- out{res, err}
	}()
	time.Sleep(10 * time.Millisecond)
	faultinject.Enable(faultinject.SiteClusterProbe, faultinject.Fault{Err: errors.New("injected partition")})
	deadline := time.Now().Add(5 * time.Second)
	for c.Statz().LiveReplicas != 0 {
		if time.Now().After(deadline) {
			t.Fatal("replicas never read down under a fully failing probe")
		}
		time.Sleep(2 * time.Millisecond)
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := estOf(o.res); got != want {
		t.Errorf("hedged estimate %+v,\nwant %+v", got, want)
	}
	if c.Statz().Hedges == 0 {
		t.Error("hedges = 0, want at least one (the slow primary must be hedged)")
	}
}

// TestClusterPartitionAndHeal drives every probe into failure until the
// whole replica set reads down, checks requests fail with the typed
// no-replicas error, then heals the partition and checks the cluster
// recovers to bit-identical answers.
func TestClusterPartitionAndHeal(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	f := startFleet(t, 3, nil)
	c := fastCoord(t, f.urls, func(cfg *Config) { cfg.MaxAttempts = 2 })

	faultinject.Enable(faultinject.SiteClusterProbe, faultinject.Fault{Err: errors.New("injected partition")})
	deadline := time.Now().Add(5 * time.Second)
	for c.Statz().LiveReplicas != 0 {
		if time.Now().After(deadline) {
			t.Fatal("replicas never read down under a fully failing probe")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := c.Do(context.Background(), req)
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("partitioned Do error = %v, want ErrNoReplicas", err)
	}

	faultinject.Reset()
	for c.Statz().LiveReplicas != 3 {
		if time.Now().After(deadline) {
			t.Fatal("replicas never healed after the probe fault was disarmed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("post-heal estimate %+v,\nwant %+v", got, want)
	}
}

// TestClusterJobsModeConservation runs the fan-out through the durable
// jobs API twice under one parent idempotency key: the second run must
// re-attach to every sub-job (no lost or duplicated jobs — submitted
// count stays at one job per range) and answer identically.
func TestClusterJobsModeConservation(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	req.IdempotencyKey = "parent-job-1"
	want := singleNodeRef(t, req)
	f := startFleet(t, 2, func(i int) server.Config {
		return server.Config{CheckpointDir: t.TempDir()}
	})
	c := fastCoord(t, f.urls, func(cfg *Config) { cfg.UseJobs = true })

	first, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if estOf(first) != want || estOf(second) != want {
		t.Errorf("jobs-mode estimates %+v / %+v,\nwant %+v", estOf(first), estOf(second), want)
	}
	var submitted int64
	for _, s := range f.servers {
		if js := s.Statz().Jobs; js != nil {
			submitted += js.Submitted
		}
	}
	if submitted != 2 {
		t.Errorf("replicas accepted %d sub-jobs across two identical fan-outs, want exactly 2 (one per range, re-attached on rerun)", submitted)
	}
}

// TestCoordinatorHTTP exercises the coordinator's own HTTP surface:
// clients talk to it exactly as they would to a single qreld.
func TestCoordinatorHTTP(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	f := startFleet(t, 3, nil)
	c := fastCoord(t, f.urls, nil)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	res, err := client.New(front.URL).Reliability(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("HTTP estimate %+v,\nwant %+v", got, want)
	}
	if len(res.ClusterTrail) == 0 {
		t.Error("HTTP response carries no cluster trail")
	}
	for _, path := range []string{"/healthz", "/readyz", "/statz"} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// Unknown wire fields are rejected just like a single qreld does.
	resp, err := http.Post(front.URL+"/v1/reliability", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus field status = %d, want 400", resp.StatusCode)
	}
}
