package cluster

import (
	"math/rand"
	"testing"
	"time"
)

// fsmStep is one operation applied to a healthFSM in a transition-table
// test, with the event and state expected afterwards.
type fsmStep struct {
	op    string // "clean", "bad", "liar", "wait", "promote"
	event string
	state HealthState
}

// TestHealthFSMTransitions walks the documented transition table edge
// by edge. The clock is explicit: "wait" advances it past the
// quarantine cooldown, "promote" applies the lazy time-driven
// transition without advancing it.
func TestHealthFSMTransitions(t *testing.T) {
	const need = 3
	const cooldown = time.Minute
	cases := []struct {
		name  string
		steps []fsmStep
	}{
		{"clean-on-healthy-noop", []fsmStep{
			{"clean", "", HealthHealthy},
		}},
		{"one-strike-suspect-then-cleared", []fsmStep{
			{"bad", "suspect", HealthSuspect},
			{"clean", "readmit", HealthHealthy},
		}},
		{"two-strikes-quarantine", []fsmStep{
			{"bad", "suspect", HealthSuspect},
			{"bad", "quarantine", HealthQuarantined},
		}},
		{"liar-quarantined-from-healthy", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
		}},
		{"liar-quarantined-from-suspect", []fsmStep{
			{"bad", "suspect", HealthSuspect},
			{"liar", "quarantine", HealthQuarantined},
		}},
		{"bad-on-quarantined-noop", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"bad", "", HealthQuarantined},
		}},
		{"clean-on-quarantined-noop", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"clean", "", HealthQuarantined},
		}},
		{"cooldown-probation-then-readmit", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"promote", "", HealthQuarantined}, // too early
			{"wait", "", HealthQuarantined},
			{"promote", "probation", HealthProbation},
			{"clean", "", HealthProbation},
			{"clean", "", HealthProbation},
			{"clean", "readmit", HealthHealthy},
		}},
		{"probation-bad-requarantines", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"wait", "", HealthQuarantined},
			{"promote", "probation", HealthProbation},
			{"clean", "", HealthProbation},
			{"bad", "quarantine", HealthQuarantined},
		}},
		{"probation-liar-requarantines-and-resets-streak", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"wait", "", HealthQuarantined},
			{"promote", "probation", HealthProbation},
			{"clean", "", HealthProbation},
			{"clean", "", HealthProbation},
			{"liar", "quarantine", HealthQuarantined},
			{"wait", "", HealthQuarantined},
			{"promote", "probation", HealthProbation},
			// The earlier streak of 2 must not carry over.
			{"clean", "", HealthProbation},
			{"clean", "", HealthProbation},
			{"clean", "readmit", HealthHealthy},
		}},
		{"liar-while-quarantined-restarts-cooldown", []fsmStep{
			{"liar", "quarantine", HealthQuarantined},
			{"wait", "", HealthQuarantined},
			{"liar", "", HealthQuarantined}, // Since restarted at the new now
			{"promote", "", HealthQuarantined},
			{"wait", "", HealthQuarantined},
			{"promote", "probation", HealthProbation},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f healthFSM
			now := time.Unix(0, 0)
			for i, s := range tc.steps {
				var ev string
				switch s.op {
				case "clean":
					ev = f.RecordClean(now, need)
				case "bad":
					ev = f.RecordBad(now)
				case "liar":
					ev = f.RecordLiar(now)
				case "wait":
					now = now.Add(cooldown)
				case "promote":
					ev = f.Promote(now, cooldown)
				default:
					t.Fatalf("unknown op %q", s.op)
				}
				if ev != s.event {
					t.Fatalf("step %d (%s): event = %q, want %q", i, s.op, ev, s.event)
				}
				if got := f.state(); got != s.state {
					t.Fatalf("step %d (%s): state = %q, want %q", i, s.op, got, s.state)
				}
			}
		})
	}
}

// TestHealthFSMWorkableAuditable pins the drain policy to the states:
// only healthy and suspect replicas take regular work, only quarantined
// replicas are barred from auditing.
func TestHealthFSMWorkableAuditable(t *testing.T) {
	now := time.Unix(0, 0)
	mk := func(s HealthState) *healthFSM { return &healthFSM{State: s, Since: now} }
	for _, tc := range []struct {
		state               HealthState
		workable, auditable bool
	}{
		{HealthHealthy, true, true},
		{HealthSuspect, true, true},
		{HealthQuarantined, false, false},
		{HealthProbation, false, true},
	} {
		f := mk(tc.state)
		if got := f.Workable(); got != tc.workable {
			t.Errorf("%s: Workable = %v, want %v", tc.state, got, tc.workable)
		}
		if got := f.Auditable(); got != tc.auditable {
			t.Errorf("%s: Auditable = %v, want %v", tc.state, got, tc.auditable)
		}
	}
	var zero healthFSM
	if !zero.Workable() || zero.state() != HealthHealthy {
		t.Errorf("zero FSM = %q workable=%v, want healthy/workable", zero.state(), zero.Workable())
	}
}

// TestHealthFSMNoEarlyReadmit is the seeded property test behind the
// quarantine guarantee: across random interleavings of verdicts and
// clock advances, a replica that was quarantined never reaches healthy
// except through probation with ProbationAudits consecutive clean
// audits — no sequence of events readmits it early, and it never jumps
// from quarantined straight to healthy.
func TestHealthFSMNoEarlyReadmit(t *testing.T) {
	const need = 3
	const cooldown = time.Minute
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var f healthFSM
		now := time.Unix(0, 0)
		streak := 0 // clean audits observed since (re-)entering probation
		for i := 0; i < 400; i++ {
			now = now.Add(time.Duration(rng.Intn(int(cooldown/time.Second*2))) * time.Second)
			before := f.state()
			var ev string
			switch rng.Intn(4) {
			case 0:
				ev = f.RecordClean(now, need)
				if before == HealthProbation {
					streak++
				}
			case 1:
				ev = f.RecordBad(now)
				streak = 0
			case 2:
				ev = f.RecordLiar(now)
				streak = 0
			case 3:
				ev = f.Promote(now, cooldown)
				if ev == "probation" {
					streak = 0
				}
			}
			after := f.state()
			switch after {
			case HealthHealthy, HealthSuspect, HealthQuarantined, HealthProbation:
			default:
				t.Fatalf("seed %d step %d: impossible state %q", seed, i, after)
			}
			if before == HealthQuarantined && after == HealthHealthy {
				t.Fatalf("seed %d step %d: quarantined jumped straight to healthy (event %q)", seed, i, ev)
			}
			if before == HealthProbation && after == HealthHealthy && streak < need {
				t.Fatalf("seed %d step %d: readmitted after %d clean probation audits, want >= %d",
					seed, i, streak, need)
			}
			if (f.state() == HealthHealthy || f.state() == HealthSuspect) != f.Workable() {
				t.Fatalf("seed %d step %d: Workable disagrees with state %q", seed, i, f.state())
			}
		}
	}
}
