package cluster

// Tests for the work-conserving recovery layer: shipped-checkpoint
// validation, mid-run replica kills resumed from shipped state, the
// resume-rejected clean-restart fallback, and coordinator crash
// recovery through the fan-out journal.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/mc"
	"qrel/internal/server"
	"qrel/internal/server/client"
	"qrel/internal/testutil"
)

// slowReq is a run long enough to kill a replica in the middle of.
func slowReq() server.Request {
	r := mcReq()
	r.Eps = 0.004
	r.Seed = 77
	return r
}

// shipFleet boots n jobs-enabled replicas with a dense checkpoint
// cadence and a coordinator in jobs mode with fast checkpoint polling.
func shipFleet(t *testing.T, n int, mutate func(*Config)) (*fleet, *Coordinator) {
	t.Helper()
	f := startFleet(t, n, func(i int) server.Config {
		return server.Config{CheckpointDir: t.TempDir(), CheckpointEvery: 1000}
	})
	c := fastCoord(t, f.urls, func(cfg *Config) {
		cfg.UseJobs = true
		cfg.MaxAttempts = 8
		cfg.JobPoll = time.Millisecond
		cfg.CheckpointPoll = time.Millisecond
		if mutate != nil {
			mutate(cfg)
		}
	})
	return f, c
}

// waitShipped polls until the coordinator has accepted n shipped
// frames.
func waitShipped(t *testing.T, c *Coordinator, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Statz().CheckpointsShipped < n {
		if time.Now().After(deadline) {
			t.Fatalf("no %d shipped checkpoints before the run finished (got %d)", n, c.Statz().CheckpointsShipped)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// validFrame builds a shipped frame that passes checkShipped for
// (seed, rg).
func validFrame(seed int64, rg mc.Range, samples int) []byte {
	n := rg.Hi - rg.Lo
	st := shippedSnapshot{
		Engine:  string(core.EngineMCDirect),
		Seed:    seed,
		Lanes:   rg.Total,
		Samples: samples,
		Loop: &mc.LoopState{
			Method:    mc.RangeMethod("hoeffding", rg),
			Drawn:     samples,
			LaneCount: n,
			Lanes:     make([]mc.LaneState, n),
		},
	}
	payload, err := json.Marshal(st)
	if err != nil {
		panic(err)
	}
	return checkpoint.EncodeFrame(payload)
}

// TestCheckShipped pins the coordinator-side frame validation: the one
// accepting case, and every malformed shape rejecting with an error
// (never a panic).
func TestCheckShipped(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rg := mc.Range{Lo: 4, Hi: 8, Total: 8}
	good := validFrame(42, rg, 1000)
	if seq, err := checkShipped(good, 42, rg); err != nil || seq != 1000 {
		t.Fatalf("checkShipped(valid) = (%d, %v), want (1000, nil)", seq, err)
	}
	one := mc.Range{Lo: 0, Hi: 1, Total: 8}
	legacy := func() []byte {
		st := shippedSnapshot{
			Engine: string(core.EngineMCDirect), Seed: 42, Lanes: 8, Samples: 7,
			Loop: &mc.LoopState{Method: mc.RangeMethod("hoeffding", one), Drawn: 7},
		}
		payload, _ := json.Marshal(st)
		return checkpoint.EncodeFrame(payload)
	}()
	if seq, err := checkShipped(legacy, 42, one); err != nil || seq != 7 {
		t.Fatalf("checkShipped(legacy single-lane) = (%d, %v), want (7, nil)", seq, err)
	}

	badCRC := append([]byte(nil), good...)
	badCRC[len(badCRC)/2] ^= 0xff
	otherRange := mc.Range{Lo: 0, Hi: 4, Total: 8}
	cases := []struct {
		name  string
		frame []byte
		seed  int64
		rg    mc.Range
	}{
		{"empty", nil, 42, rg},
		{"truncated", good[:len(good)/2], 42, rg},
		{"bad-crc", badCRC, 42, rg},
		{"not-json", checkpoint.EncodeFrame([]byte("notjson")), 42, rg},
		{"wrong-seed", good, 43, rg},
		{"wrong-range", good, 42, otherRange},
		{"wrong-total", good, 42, mc.Range{Lo: 4, Hi: 8, Total: 16}},
		{"legacy-multi-lane", legacy, 42, rg},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if seq, err := checkShipped(tc.frame, tc.seed, tc.rg); err == nil {
				t.Errorf("checkShipped accepted a %s frame (seq %d)", tc.name, seq)
			}
		})
	}
}

// TestTransientTruncatedBody pins the retry classification of a
// response body severed mid-JSON: the decode failure is not an
// APIError, so the coordinator must treat it as transient and reassign
// the range — a replica that died while streaming its answer is
// exactly a dead replica.
func TestTransientTruncatedBody(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)

	// A "replica" that reports ready but truncates every answer body.
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/v1/reliability", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "4096")
		fmt.Fprint(w, `{"r": 0.5, "h": 0.`)
	})
	trunc := httptest.NewServer(mux)
	defer trunc.Close()

	// The classification itself: the client surfaces the truncation as a
	// plain decode error, which transient() must retry.
	_, err := client.New(trunc.URL).Reliability(context.Background(), req)
	if err == nil {
		t.Fatal("truncated body decoded without error")
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("truncated body surfaced as APIError %v; the transient default no longer covers it", err)
	}
	if !transient(context.Background(), err) {
		t.Fatalf("transient(%v) = false; a truncated body must be retried", err)
	}

	// End to end: a fan-out with the truncating replica in the ring must
	// move its range to the healthy replica and still answer
	// bit-identically.
	f := startFleet(t, 1, nil)
	c := fastCoord(t, append([]string{trunc.URL}, f.urls...), nil)
	res, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("estimate with a truncating replica %+v,\nwant %+v", got, want)
	}
}

// TestClusterShipResume is the work-conservation drill: a replica is
// hard-killed mid-estimation after shipping checkpoints; the survivor
// must resume the dead range from the shipped state (a resume event
// with a positive sequence in the trail) and the merged answer must be
// bit-identical to an unkilled single-node run.
func TestClusterShipResume(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := slowReq()
	want := singleNodeRef(t, req)
	f, c := shipFleet(t, 2, nil)

	req.IdempotencyKey = "ship-resume-1"
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Do(context.Background(), req)
		done <- out{res, err}
	}()
	waitShipped(t, c, 3)
	time.Sleep(3 * time.Millisecond)
	f.kill(0)
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := estOf(o.res); got != want {
		t.Errorf("post-kill estimate %+v,\nwant single-node %+v", got, want)
	}
	st := c.Statz()
	if st.CheckpointsShipped == 0 || st.Resumes == 0 {
		t.Errorf("shipped=%d resumes=%d, want both > 0", st.CheckpointsShipped, st.Resumes)
	}
	maxSeq := 0
	for _, s := range o.res.ClusterTrail {
		if s.Event == "resume" && s.Seq > maxSeq {
			maxSeq = s.Seq
		}
	}
	if !o.res.Resumed || maxSeq == 0 {
		t.Errorf("resumed=%v maxSeq=%d: the killed range was not resumed from shipped state (trail %+v)",
			o.res.Resumed, maxSeq, o.res.ClusterTrail)
	}
}

// TestClusterResumeRejectedCleanRestart arms the ckpt-ship fault, which
// corrupts every shipped frame's fingerprint in flight: the survivor
// must reject the planted resume at admission (409, before any durable
// job is registered under the sub-key) and the coordinator must fall
// back to a clean restart with the bit-identical answer — corruption
// costs work, never correctness.
func TestClusterResumeRejectedCleanRestart(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := slowReq()
	want := singleNodeRef(t, req)
	f, c := shipFleet(t, 2, nil)

	faultinject.Enable(faultinject.SiteClusterCkptShip, faultinject.Fault{Err: fmt.Errorf("injected frame corruption")})
	req.IdempotencyKey = "ship-reject-1"
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Do(context.Background(), req)
		done <- out{res, err}
	}()
	waitShipped(t, c, 3)
	time.Sleep(3 * time.Millisecond)
	f.kill(0)
	o := <-done
	faultinject.Reset()
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := estOf(o.res); got != want {
		t.Errorf("post-rejection estimate %+v,\nwant single-node %+v", got, want)
	}
	rejected := false
	for _, s := range o.res.ClusterTrail {
		if s.Event == "resume-rejected" {
			rejected = true
		}
	}
	if !rejected || c.Statz().ResumesRejected == 0 {
		t.Errorf("trail rejected=%v statz=%d: the tampered frame was not replica-rejected (trail %+v)",
			rejected, c.Statz().ResumesRejected, o.res.ClusterTrail)
	}
}

// TestCoordinatorCrashRecovery is the coordinator-loss drill: a keyed
// journaled fan-out is abandoned mid-run, a successor coordinator on
// the same journal dir recovers it to completion, a re-POST of the key
// is served the journaled result bit-identically, and exactly one
// durable sub-job per range was ever submitted (recovery re-attaches).
func TestCoordinatorCrashRecovery(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	req := slowReq()
	want := singleNodeRef(t, req)
	jdir := t.TempDir()
	f, first := shipFleet(t, 2, func(cfg *Config) { cfg.JournalDir = jdir })

	req.IdempotencyKey = "crash-recovery-1"
	dctx, cancel := context.WithCancel(context.Background())
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := first.Do(dctx, req)
		done <- out{res, err}
	}()
	waitShipped(t, first, 2)
	cancel() // the crash: the journal record stays running, the sub-jobs keep going
	<-done
	first.Close()

	second := fastCoord(t, f.urls, func(cfg *Config) {
		cfg.UseJobs = true
		cfg.MaxAttempts = 8
		cfg.JobPoll = time.Millisecond
		cfg.CheckpointPoll = time.Millisecond
		cfg.JournalDir = jdir
	})
	n, err := second.Recover(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("Recover = (%d, %v), want (1, nil)", n, err)
	}
	res, err := second.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("recovered estimate %+v,\nwant single-node %+v", got, want)
	}
	var submitted int64
	for _, s := range f.servers {
		if js := s.Statz().Jobs; js != nil {
			submitted += js.Submitted
		}
	}
	if submitted != 2 {
		t.Errorf("replicas accepted %d sub-jobs across crash and recovery, want exactly 2 (one per range)", submitted)
	}

	// Key reuse with a different computation must recompute, not serve
	// the journaled result of the old one.
	reused := req
	reused.Seed = req.Seed + 1
	res2, err := second.Do(context.Background(), reused)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seed != reused.Seed {
		t.Errorf("reused key served the journaled result of seed %d, want a fresh run with seed %d", res2.Seed, reused.Seed)
	}
}

// TestJournalWriteFailureNonFatal arms the journal-crash fault (one
// torn, failed journal write): the fan-out must answer bit-identically
// anyway — the journal is a recovery accelerator, never in the
// correctness path — and the torn file must read as absent to Recover.
func TestJournalWriteFailureNonFatal(t *testing.T) {
	defer faultinject.Reset()
	testutil.CheckGoroutineLeaks(t)
	req := mcReq()
	want := singleNodeRef(t, req)
	jdir := t.TempDir()
	f, c := shipFleet(t, 2, func(cfg *Config) { cfg.JournalDir = jdir })
	_ = f

	faultinject.Enable(faultinject.SiteClusterJournalCrash, faultinject.Fault{Err: fmt.Errorf("injected journal crash"), Times: 1})
	req.IdempotencyKey = "journal-torn-1"
	res, err := c.Do(context.Background(), req)
	faultinject.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if got := estOf(res); got != want {
		t.Errorf("estimate under a torn journal write %+v,\nwant %+v", got, want)
	}
	if c.Statz().JournalErrors == 0 {
		t.Error("journal_errors = 0, want at least the armed torn write")
	}
	n, err := c.Recover(context.Background())
	if err != nil || n != 0 {
		t.Errorf("Recover over a completed journal = (%d, %v), want (0, nil)", n, err)
	}
}
