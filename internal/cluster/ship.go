package cluster

// Coordinator-side checkpoint shipping. Replicas running a lane range
// publish CRC-framed snapshots of the estimator loop mid-run (see
// internal/server's shipping layer); the coordinator collects the
// freshest frame per range — from job checkpoint polls and from
// response bodies — and, when the replica owning the range dies,
// re-plants the frame on the survivor the range is reassigned to. The
// survivor resumes the deterministic sampling stream exactly where the
// dead replica left it: the work already done is conserved and the
// final estimate stays bit-identical to an uninterrupted run.
//
// A shipped frame crosses a process boundary, so the coordinator never
// trusts it: checkShipped re-validates the CRC frame and holds the
// snapshot to the lane range it is about to resume. A frame that fails
// validation is dropped (counted, never fatal) and the range restarts
// clean — a corrupt checkpoint can cost work, never correctness.

import (
	"encoding/json"
	"fmt"
	"sync"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/mc"
)

// shippedSnapshot mirrors the fields of the engine snapshot payload
// (internal/core's engineState JSON) that the coordinator can verify
// without re-parsing the query. The full fingerprint — query text,
// accuracy — is re-checked by the replica that resumes the frame; the
// coordinator's job is to reject frames that are corrupt or belong to
// a different range before wasting a round-trip on them.
type shippedSnapshot struct {
	Engine  string        `json:"engine"`
	Seed    int64         `json:"seed"`
	Lanes   int           `json:"lanes"`
	Samples int           `json:"samples"`
	Loop    *mc.LoopState `json:"loop"`
}

// checkShipped validates one shipped checkpoint frame against the lane
// range it is supposed to resume and returns the snapshot's sample
// count (the shipping sequence number). It must return an error —
// never panic — on arbitrary input; FuzzCheckShipped enforces that.
func checkShipped(frame []byte, seed int64, rg mc.Range) (int, error) {
	payload, err := checkpoint.DecodeFrame(frame)
	if err != nil {
		return 0, err
	}
	var st shippedSnapshot
	if err := json.Unmarshal(payload, &st); err != nil {
		return 0, fmt.Errorf("cluster: undecodable shipped snapshot: %w", err)
	}
	if st.Engine != string(core.EngineMCDirect) {
		return 0, fmt.Errorf("cluster: shipped snapshot is for engine %q, want %q", st.Engine, core.EngineMCDirect)
	}
	if st.Seed != seed {
		return 0, fmt.Errorf("cluster: shipped snapshot is for seed %d, this run uses %d", st.Seed, seed)
	}
	if st.Lanes != rg.Total {
		return 0, fmt.Errorf("cluster: shipped snapshot splits %d lanes, this run splits %d", st.Lanes, rg.Total)
	}
	if st.Loop == nil {
		return 0, fmt.Errorf("cluster: shipped snapshot carries no estimator loop state")
	}
	if want := mc.RangeMethod("hoeffding", rg); st.Loop.Method != want {
		return 0, fmt.Errorf("cluster: shipped snapshot is from estimator %q, range %s needs %q", st.Loop.Method, rg, want)
	}
	n := rg.Hi - rg.Lo
	switch {
	case st.Loop.LaneCount == 0:
		// Legacy single-lane schema: only a one-lane range writes it.
		if n != 1 {
			return 0, fmt.Errorf("cluster: single-lane snapshot cannot resume a %d-lane range %s", n, rg)
		}
	case st.Loop.LaneCount != n:
		return 0, fmt.Errorf("cluster: shipped snapshot holds %d lane states, range %s needs %d", st.Loop.LaneCount, rg, n)
	}
	if len(st.Loop.Lanes) != st.Loop.LaneCount {
		return 0, fmt.Errorf("cluster: shipped snapshot declares %d lanes but carries %d states", st.Loop.LaneCount, len(st.Loop.Lanes))
	}
	if st.Samples < 0 || st.Loop.Drawn != st.Samples {
		return 0, fmt.Errorf("cluster: shipped snapshot sample counts disagree (%d vs loop %d)", st.Samples, st.Loop.Drawn)
	}
	return st.Samples, nil
}

// shipTracker accumulates the freshest validated checkpoint frame for
// one lane range across every replica that runs it. All methods are
// nil-safe (a nil tracker means shipping is off for the call).
type shipTracker struct {
	c    *Coordinator
	seed int64
	rg   mc.Range
	j    *fanoutJournal // nil when this fan-out is not journaled
	idx  int            // this range's index in the journal record

	mu    sync.Mutex
	frame []byte
	seq   int
	from  string
}

// accept validates a frame shipped by a replica and keeps it when it
// is fresher than the current one, mirroring the accepted frame into
// the fan-out journal. An armed SiteClusterCkptShip fault corrupts the
// frame in flight: the tamper rewrites the snapshot's accuracy
// fingerprint, which the coordinator deliberately does not verify, so
// the frame is only caught by the replica it is later planted on — the
// chaos campaign's proof that a replica-rejected resume degrades to a
// clean restart, never a wrong answer.
func (t *shipTracker) accept(frame []byte, from string) {
	if t == nil || len(frame) == 0 {
		return
	}
	if err := faultinject.Hit(faultinject.SiteClusterCkptShip); err != nil {
		frame = tamperFrame(frame)
	}
	seq, err := checkShipped(frame, t.seed, t.rg)
	if err != nil {
		t.c.nCkptRejected.Add(1)
		return
	}
	t.mu.Lock()
	fresher := t.frame == nil || seq > t.seq
	if fresher {
		t.frame, t.seq, t.from = frame, seq, from
	}
	t.mu.Unlock()
	if !fresher {
		return
	}
	t.c.nCkptShipped.Add(1)
	t.j.setCheckpoint(t.idx, frame, seq, from)
}

// tamperFrame is the SiteClusterCkptShip corruption: it rewrites the
// snapshot's eps fingerprint field (leaving everything the coordinator
// validates intact, via RawMessage round-trip) and re-frames the
// payload, falling back to a CRC-breaking byte flip when the frame is
// not even decodable.
func tamperFrame(frame []byte) []byte {
	var m map[string]json.RawMessage
	payload, err := checkpoint.DecodeFrame(frame)
	if err == nil {
		err = json.Unmarshal(payload, &m)
	}
	if err == nil {
		m["eps"] = json.RawMessage("2")
		if tampered, merr := json.Marshal(m); merr == nil {
			return checkpoint.EncodeFrame(tampered)
		}
	}
	cp := append([]byte(nil), frame...)
	cp[len(cp)/2] ^= 0xff
	return cp
}

// preload seeds the tracker from a journaled frame (validated, but
// outside the fault site and the shipped counter — the frame was
// already accepted by the process that journaled it).
func (t *shipTracker) preload(frame []byte, from string) {
	if t == nil || len(frame) == 0 {
		return
	}
	seq, err := checkShipped(frame, t.seed, t.rg)
	if err != nil {
		t.c.nCkptRejected.Add(1)
		return
	}
	t.mu.Lock()
	if t.frame == nil || seq > t.seq {
		t.frame, t.seq, t.from = frame, seq, from
	}
	t.mu.Unlock()
}

// latest returns the freshest accepted frame, its sequence number, and
// the replica it came from (nil frame when none).
func (t *shipTracker) latest() ([]byte, int, string) {
	if t == nil {
		return nil, 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frame, t.seq, t.from
}

// drop discards the held frame after a replica rejected it, so the
// next attempt restarts clean instead of replaying a doomed resume.
func (t *shipTracker) drop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.frame, t.seq, t.from = nil, 0, ""
	t.mu.Unlock()
}
