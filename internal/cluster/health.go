package cluster

// Replica integrity health: the quarantine state machine behind
// trust-but-verify. Liveness (replica.up, fed by /readyz probes) answers
// "is it responding"; health answers "can its answers be trusted" —
// fed by attestation failures and audit verdicts instead of probes.
//
//	healthy ──bad──▶ suspect ──bad──▶ quarantined
//	suspect ──clean──▶ healthy
//	quarantined ──cooldown──▶ probation
//	probation ──N clean──▶ healthy ("readmit")
//	probation ──bad──▶ quarantined
//	any ──liar──▶ quarantined
//
// Quarantined and probation replicas are drained from the fan-out pool
// and the proxy ring (pickTarget records "quarantine-skip"); probation
// replicas earn their way back by serving as preferred audit executors,
// where every answer is checked against a trusted one. Only
// Config.ProbationAudits consecutive clean audits readmit a replica —
// a single clean answer after a confirmed lie is not trust.

import (
	"sync"
	"time"
)

// HealthState is a replica's integrity state.
type HealthState string

// The four integrity states. The zero value ("") reads as healthy.
const (
	HealthHealthy     HealthState = "healthy"
	HealthSuspect     HealthState = "suspect"
	HealthQuarantined HealthState = "quarantined"
	HealthProbation   HealthState = "probation"
)

// healthFSM is the pure per-replica state machine. It is deliberately
// free of clocks and locks — every transition takes the current time as
// an argument — so the transition table is directly testable. The zero
// value is a healthy replica.
type healthFSM struct {
	// State is the current integrity state ("" = healthy).
	State HealthState
	// CleanStreak counts consecutive clean audits while on probation.
	CleanStreak int
	// Since is when State was entered (zero for the initial state).
	Since time.Time
}

func (f *healthFSM) state() HealthState {
	if f.State == "" {
		return HealthHealthy
	}
	return f.State
}

func (f *healthFSM) to(s HealthState, now time.Time) {
	f.State, f.Since, f.CleanStreak = s, now, 0
}

// Promote applies the one time-driven transition: a replica quarantined
// at least cooldown ago enters probation. Called lazily before every
// read, so no background timer is needed. Returns the emitted trail
// event ("probation") or "".
func (f *healthFSM) Promote(now time.Time, cooldown time.Duration) string {
	if f.state() == HealthQuarantined && now.Sub(f.Since) >= cooldown {
		f.to(HealthProbation, now)
		return "probation"
	}
	return ""
}

// RecordClean applies a clean audit verdict. A suspect replica is
// cleared immediately (suspicion was circumstantial); a probation
// replica needs `need` consecutive clean audits to be readmitted.
// Returns "readmit" when the replica regains full trust, else "".
func (f *healthFSM) RecordClean(now time.Time, need int) string {
	switch f.state() {
	case HealthSuspect:
		f.to(HealthHealthy, now)
		return "readmit"
	case HealthProbation:
		f.CleanStreak++
		if f.CleanStreak >= need {
			f.to(HealthHealthy, now)
			return "readmit"
		}
	}
	return ""
}

// RecordBad applies circumstantial evidence against a replica — an
// attestation failure or an unresolved audit mismatch, where the fault
// could not be pinned on one party. One strike makes a healthy replica
// suspect; a second (or any strike on probation) quarantines it.
// Returns the emitted trail event ("suspect", "quarantine") or "".
func (f *healthFSM) RecordBad(now time.Time) string {
	switch f.state() {
	case HealthHealthy:
		f.to(HealthSuspect, now)
		return "suspect"
	case HealthSuspect, HealthProbation:
		f.to(HealthQuarantined, now)
		return "quarantine"
	}
	return "" // already quarantined
}

// RecordLiar applies a confirmed lie — a tie-break identified this
// replica's aggregates as the divergent ones. Quarantine is immediate
// from any state, and an already-quarantined liar has its cooldown
// restarted. Returns "quarantine" on transition, else "".
func (f *healthFSM) RecordLiar(now time.Time) string {
	if f.state() == HealthQuarantined {
		f.Since = now
		return ""
	}
	f.to(HealthQuarantined, now)
	return "quarantine"
}

// Workable reports whether the replica may receive regular work. A
// suspect replica still works (one strike is not proof); quarantined
// and probation replicas are drained — probation earns trust through
// audits only.
func (f *healthFSM) Workable() bool {
	s := f.state()
	return s == HealthHealthy || s == HealthSuspect
}

// Auditable reports whether the replica may execute audit
// re-executions. Everyone but the quarantined — probation replicas are
// in fact the preferred auditors, since an audit is exactly the
// supervised work that can readmit them.
func (f *healthFSM) Auditable() bool {
	return f.state() != HealthQuarantined
}

// replicaHealth is the coordinator's lock wrapper around one replica's
// FSM.
type replicaHealth struct {
	mu  sync.Mutex
	fsm healthFSM
}

// workable reports whether ring index i may receive regular work,
// applying the lazy probation promotion first.
func (c *Coordinator) workable(i int) bool {
	h := c.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fsm.Promote(time.Now(), c.cfg.QuarantineCooldown)
	return h.fsm.Workable()
}

// healthSnapshot returns ring index i's current state and probation
// streak, applying the lazy promotion. The returned event is
// "probation" when the snapshot itself performed the promotion.
func (c *Coordinator) healthSnapshot(i int) (HealthState, int, string) {
	h := c.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	ev := h.fsm.Promote(time.Now(), c.cfg.QuarantineCooldown)
	return h.fsm.state(), h.fsm.CleanStreak, ev
}

// healthEvent applies one FSM transition to ring index i under its
// lock, maintains the quarantine counter, and returns the trail event
// the transition emitted ("" for none). A negative index (an URL that
// left the ring) is a no-op.
func (c *Coordinator) healthEvent(i int, apply func(*healthFSM) string) string {
	if i < 0 {
		return ""
	}
	h := c.health[i]
	h.mu.Lock()
	ev := apply(&h.fsm)
	h.mu.Unlock()
	if ev == "quarantine" {
		c.nQuarantines.Add(1)
	}
	return ev
}

// indexOf resolves a replica URL to its ring index, -1 if unknown.
func (c *Coordinator) indexOf(url string) int {
	for i, r := range c.replicas {
		if r.url == url {
			return i
		}
	}
	return -1
}
