package chaos

import (
	"reflect"
	"testing"

	"qrel/internal/faultinject"
)

// TestPlanDeterministic: the schedule is a pure function of the
// config.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 17, Steps: 6, Dir: t.TempDir()}
	a, err := PlanCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from the same config differ")
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("schedule hashes differ: %s vs %s", a.Hash(), b.Hash())
	}
	c, err := PlanCampaign(Config{Seed: 18, Steps: 6, Dir: cfg.Dir})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds produced the same schedule hash")
	}
}

// TestPlanCoversEverySite: with no site filter, every registered site
// appears in the schedule.
func TestPlanCoversEverySite(t *testing.T) {
	p, err := PlanCampaign(Config{Seed: 5, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	scheduled := map[string]bool{}
	for _, site := range scheduledSites(p.Steps) {
		scheduled[site] = true
	}
	for _, site := range faultinject.Sites() {
		if !scheduled[site] {
			t.Errorf("site %s missing from the schedule", site)
		}
	}
}

// TestPlanRejectsUnknownSite: a typo'd site filter is a setup error,
// not a silently empty campaign.
func TestPlanRejectsUnknownSite(t *testing.T) {
	if _, err := PlanCampaign(Config{Seed: 1, Sites: []string{"engine/no-such"}}); err == nil {
		t.Fatal("unknown site accepted")
	}
}

// TestPlanSeparatesAbortingCkptFaults: crash-window and rename faults
// abort Store.Save before later protocol sites are reached, so the
// planner must never co-locate them in one step.
func TestPlanSeparatesAbortingCkptFaults(t *testing.T) {
	p, err := PlanCampaign(Config{Seed: 3, Steps: 2, Sites: []string{
		faultinject.SiteCkptCrash, faultinject.SiteCkptRename,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range p.Steps {
		crash, rename := hasFault(st.CkptFaults, faultinject.SiteCkptCrash), hasFault(st.CkptFaults, faultinject.SiteCkptRename)
		if crash && rename {
			t.Fatalf("step %d schedules both aborting ckpt faults", st.Index)
		}
	}
	if _, err := PlanCampaign(Config{Seed: 3, Steps: 1, Sites: []string{
		faultinject.SiteCkptCrash, faultinject.SiteCkptRename,
	}}); err == nil {
		t.Fatal("1-step plan with both aborting ckpt faults accepted")
	}
}

// TestCampaignAllSitesPasses is the big one: a full fixed-seed
// campaign over every site must hold every invariant, and every
// scheduled site must actually have fired.
func TestCampaignAllSitesPasses(t *testing.T) {
	rep, err := Run(Config{Seed: 1, Steps: 6, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("campaign failed:\n%s", failureSummary(rep))
	}
	if rep.StepsRun != 6 {
		t.Fatalf("StepsRun = %d, want 6", rep.StepsRun)
	}
	for _, site := range rep.Scheduled {
		if rep.Sites[site].Fires == 0 {
			t.Errorf("scheduled site %s never fired", site)
		}
	}
	for _, name := range InvariantNames() {
		if rep.Invariants[name] == nil {
			t.Errorf("invariant %s missing from the report", name)
		}
	}
	// The core oracles must actually have been exercised.
	for _, inv := range []string{InvExactAgree, InvEpsBound, InvTypedErrors, InvResume, InvBreaker, InvCluster, InvCoverage} {
		if rep.Invariants[inv].Checks == 0 {
			t.Errorf("invariant %s was never checked", inv)
		}
	}
}

// TestCampaignReproducible: same seed, same schedule hash, same
// per-invariant verdicts — the reproducibility contract.
func TestCampaignReproducible(t *testing.T) {
	cfg := Config{Seed: 42, Steps: 3}
	cfg.Dir = t.TempDir()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dir = t.TempDir()
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleHash != b.ScheduleHash {
		t.Fatalf("schedule hashes differ: %s vs %s", a.ScheduleHash, b.ScheduleHash)
	}
	if !reflect.DeepEqual(a.Verdicts, b.Verdicts) {
		t.Fatalf("verdicts differ:\nA: %v\nB: %v", a.Verdicts, b.Verdicts)
	}
	if !a.Passed || !b.Passed {
		t.Fatalf("campaigns failed:\nA:\n%s\nB:\n%s", failureSummary(a), failureSummary(b))
	}
}

// TestEpsSkewDetected: shrinking the allowed eps to 1% of what the
// engines honestly report must make the campaign fail — proof the
// harness can detect accuracy violations at all.
func TestEpsSkewDetected(t *testing.T) {
	rep, err := Run(Config{Seed: 7, Steps: 2, EpsSkew: 0.01, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("campaign with a 100x-tightened oracle still passed; the harness cannot detect violations")
	}
	if rep.Invariants[InvEpsBound].Failures == 0 {
		t.Fatal("eps-bound recorded no failures under a skewed oracle")
	}
}

// TestCampaignStoreSites: a campaign restricted to the paged-store
// fault sites must exercise both storage invariants — crash recovery
// to a pre-or-post image, and typed corruption detection — with every
// scheduled site firing.
func TestCampaignStoreSites(t *testing.T) {
	rep, err := Run(Config{Seed: 11, Steps: 2, Dir: t.TempDir(), Logf: t.Logf, Sites: []string{
		faultinject.SiteStoreJournalTear,
		faultinject.SiteStoreCrash,
		faultinject.SiteStoreShortWrite,
		faultinject.SiteStoreBitFlip,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("store campaign failed:\n%s", failureSummary(rep))
	}
	for _, inv := range []string{InvStoreRecovery, InvStoreCorrupt} {
		if rep.Invariants[inv].Checks == 0 {
			t.Errorf("invariant %s was never checked", inv)
		}
	}
	for _, site := range rep.Scheduled {
		if rep.Sites[site].Fires == 0 {
			t.Errorf("scheduled site %s never fired", site)
		}
	}
}

func failureSummary(rep *Report) string {
	out := ""
	for _, name := range InvariantNames() {
		s := rep.Invariants[name]
		if s == nil || s.Failures == 0 {
			continue
		}
		out += name + ":\n"
		for _, e := range s.Examples {
			out += "  " + e + "\n"
		}
	}
	return out
}
