package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/store"
	"qrel/internal/unreliable"
)

// storePageSize keeps the phase's stores many pages long so every
// fault scenario crosses page and chain boundaries.
const storePageSize = 256

// storePhase drives the paged storage engine through its crash and
// corruption scenarios, one scheduled fault at a time against a
// private store file.
//
// Write-path faults (journal tear, crash window, torn page
// write-back) stage a batch of mutations, let the fault kill the
// commit, abandon the handle, and reopen: recovery must leave the
// data file byte-identical to either the pre-batch image or the
// cleanly committed one — never a blend — and the recovered store
// must verify and load (InvStoreRecovery).
//
// The read-path bit flip must surface as a typed ErrCorruptPage while
// armed, and once cleared the very same file must yield a reliability
// bit-identical to the in-memory reference (InvStoreCorrupt): the
// checksum turns silent corruption into a refusal, never into a
// different estimate.
func (c *campaign) storePhase(ctx context.Context, st *Step, db *unreliable.DB, f logic.Formula, opts core.Options) {
	stepDir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "store")
	for _, pf := range st.StoreFaults {
		faultinject.Reset()
		dir := filepath.Join(stepDir, strings.ReplaceAll(pf.Site, "/", "-"))
		if err := os.MkdirAll(dir, 0o777); err != nil {
			c.check(InvStoreRecovery, false, "step %d: creating %s: %v", st.Index, dir, err)
			continue
		}
		if pf.Site == faultinject.SiteStoreBitFlip {
			c.storeCorruptScenario(ctx, st, db, f, opts, dir, pf)
		} else {
			c.storeRecoveryScenario(st, db, dir, pf)
		}
		faultinject.Reset()
	}
}

// storeBatch stages a deterministic batch of uncommitted appends.
// Appends land physically even for logically duplicate tuples, so the
// committed image always differs from the pre-batch one.
func storeBatch(s *store.Store, n int) error {
	for i := 0; i < 24; i++ {
		if err := s.AddTuple("E", rel.Tuple{i % n, (i * 5) % n}); err != nil {
			return err
		}
	}
	return nil
}

// copyStore clones a committed store file to dst with an empty
// journal, the on-disk state a clean shutdown leaves behind.
func copyStore(dst string, data []byte) error {
	if err := os.WriteFile(dst, data, 0o666); err != nil {
		return err
	}
	return os.WriteFile(dst+".journal", nil, 0o666)
}

func (c *campaign) storeRecoveryScenario(st *Step, db *unreliable.DB, dir string, pf PlannedFault) {
	base := filepath.Join(dir, "base.qstore")
	if err := store.BuildFromDB(base, db, store.Options{PageSize: storePageSize}, 0, nil); err != nil {
		c.check(InvStoreRecovery, false, "step %d: building base store: %v", st.Index, err)
		return
	}
	pre, err := os.ReadFile(base)
	if err != nil {
		c.check(InvStoreRecovery, false, "step %d: reading base store: %v", st.Index, err)
		return
	}

	// Clean reference: the same batch committed without faults. A
	// recovered commit applies the same full-page images the journal
	// carries, so its data file must match this one byte for byte.
	refPath := filepath.Join(dir, "ref.qstore")
	post, ok := c.commitBatch(st, refPath, pre, db.A.N, nil)
	if !ok {
		return
	}
	if bytes.Equal(pre, post) {
		c.check(InvStoreRecovery, false, "step %d: reference commit left the file unchanged; the scenario would be vacuous", st.Index)
		return
	}

	// Victim: same batch, fault armed, commit dies, handle abandoned.
	victim := filepath.Join(dir, "victim.qstore")
	if _, ok := c.commitBatch(st, victim, pre, db.A.N, &pf); !ok {
		return
	}

	s, err := store.Open(victim, store.Options{})
	if err != nil {
		c.check(InvStoreRecovery, false, "step %d: %s: reopen after faulted commit failed: %v", st.Index, pf.Site, err)
		return
	}
	if _, err := s.Verify(); err != nil {
		c.check(InvStoreRecovery, false, "step %d: %s: recovered store fails verification: %v", st.Index, pf.Site, err)
		s.Close()
		return
	}
	if _, err := s.LoadDB(); err != nil {
		c.check(InvStoreRecovery, false, "step %d: %s: recovered store does not load: %v", st.Index, pf.Site, err)
		s.Close()
		return
	}
	s.Close()
	got, err := os.ReadFile(victim)
	if err != nil {
		c.check(InvStoreRecovery, false, "step %d: reading recovered store: %v", st.Index, err)
		return
	}
	c.check(InvStoreRecovery, bytes.Equal(got, pre) || bytes.Equal(got, post),
		"step %d: %s: recovered data file (%d bytes) matches neither the pre-batch (%d bytes) nor the committed (%d bytes) image — a torn state survived recovery",
		st.Index, pf.Site, len(got), len(pre), len(post))
}

// commitBatch clones the pre image to path, stages the batch, and
// commits — with pf armed when non-nil, in which case the injected
// failure is expected and the handle is simply abandoned. It returns
// the resulting data-file bytes.
func (c *campaign) commitBatch(st *Step, path string, pre []byte, n int, pf *PlannedFault) ([]byte, bool) {
	if err := copyStore(path, pre); err != nil {
		c.check(InvStoreRecovery, false, "step %d: cloning store: %v", st.Index, err)
		return nil, false
	}
	s, err := store.Open(path, store.Options{})
	if err != nil {
		c.check(InvStoreRecovery, false, "step %d: opening clone: %v", st.Index, err)
		return nil, false
	}
	defer s.Close()
	if err := storeBatch(s, n); err != nil {
		c.check(InvStoreRecovery, false, "step %d: staging batch: %v", st.Index, err)
		return nil, false
	}
	if pf != nil {
		c.armFaults([]PlannedFault{*pf})
		if err := s.Commit(); err != nil {
			c.check(InvTypedErrors, acceptableErr(err),
				"step %d: commit under %s: error outside the taxonomy: %v", st.Index, pf.Site, err)
		}
		faultinject.Reset()
		return nil, true
	}
	if err := s.Commit(); err != nil {
		c.check(InvStoreRecovery, false, "step %d: clean reference commit failed: %v", st.Index, err)
		return nil, false
	}
	s.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		c.check(InvStoreRecovery, false, "step %d: reading committed store: %v", st.Index, err)
		return nil, false
	}
	return got, true
}

func (c *campaign) storeCorruptScenario(ctx context.Context, st *Step, db *unreliable.DB, f logic.Formula, opts core.Options, dir string, pf PlannedFault) {
	path := filepath.Join(dir, "flip.qstore")
	if err := store.BuildFromDB(path, db, store.Options{PageSize: storePageSize}, 0, nil); err != nil {
		c.check(InvStoreCorrupt, false, "step %d: building store: %v", st.Index, err)
		return
	}
	ref, err := core.ReliabilityWith(ctx, core.EngineWorldEnum, db, f, opts)
	if err != nil {
		c.check(InvStoreCorrupt, false, "step %d: in-memory reference failed: %v", st.Index, err)
		return
	}

	// Armed: every page fetched through the pool is flipped, so the
	// load must refuse with the typed corruption error. The flip may
	// already hit the catalog pages at Open.
	c.armFaults([]PlannedFault{pf})
	loadErr := error(nil)
	if s, err := store.Open(path, store.Options{}); err != nil {
		loadErr = err
	} else {
		_, loadErr = s.LoadDB()
		s.Close()
	}
	faultinject.Reset()
	c.check(InvStoreCorrupt, errors.Is(loadErr, store.ErrCorruptPage),
		"step %d: bit-flipped read surfaced as %v, want ErrCorruptPage — corruption must never pass silently", st.Index, loadErr)

	// Cleared: the same file is intact on disk, and its estimate must
	// be bit-identical to the in-memory reference.
	s, err := store.Open(path, store.Options{})
	if err != nil {
		c.check(InvStoreCorrupt, false, "step %d: reopen after clearing the flip failed: %v", st.Index, err)
		return
	}
	db2, err := s.LoadDB()
	s.Close()
	if err != nil {
		c.check(InvStoreCorrupt, false, "step %d: load after clearing the flip failed: %v", st.Index, err)
		return
	}
	res, err := core.ReliabilityWith(ctx, core.EngineWorldEnum, db2, f, opts)
	ok := err == nil && res.R != nil && res.R.Cmp(ref.R) == 0
	c.check(InvStoreCorrupt, ok,
		"step %d: store-loaded reliability (err=%v) is not bit-identical to the in-memory reference %s", st.Index, err, ratStr(ref.R))
}
