package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"qrel/internal/faultinject"
	"qrel/internal/mc"
)

// FaultKind names one way a planned fault manifests.
type FaultKind string

// Fault kinds the planner schedules.
const (
	// KindErr makes Hit return the injected sentinel error.
	KindErr FaultKind = "err"
	// KindPanic makes Hit panic (engine entry sites only — worker
	// goroutines and the serving layer have no recovery barrier there).
	KindPanic FaultKind = "panic"
	// KindDelay makes Hit sleep briefly.
	KindDelay FaultKind = "delay"
	// KindProbErr is KindErr behind a seeded probabilistic draw,
	// scheduled only at high-frequency sites so coverage stays
	// deterministic.
	KindProbErr FaultKind = "prob-err"
)

// PlannedFault is one scheduled fault activation.
type PlannedFault struct {
	Site string    `json:"site"`
	Kind FaultKind `json:"kind"`
	// Prob/Seed parameterize KindProbErr (see faultinject.Fault).
	Prob float64 `json:"prob,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	// Times bounds fires (0 = until disarmed).
	Times int `json:"times,omitempty"`
	// DelayMS is the KindDelay sleep.
	DelayMS int `json:"delay_ms,omitempty"`
}

// Step is one planned campaign step: a generated instance, the faults
// armed over it, and which heavyweight phases (checkpoint resume,
// service/jobs) run.
type Step struct {
	Index int `json:"index"`
	// N and Uncertain parameterize workload.RandomUDB; Uncertain stays
	// well under the world-enumeration cap so the exact reference is
	// always available.
	N         int    `json:"n"`
	Uncertain int    `json:"uncertain"`
	Query     string `json:"query"`
	// Workers selects the lane-split parallel runtime (and the parallel
	// world-enum path) when > 0.
	Workers int `json:"workers,omitempty"`
	// Seed drives the step's instance generation and engine runs.
	Seed int64 `json:"seed"`
	// EngineFaults are armed during the fault phase (engine, eval and
	// lane sites); CkptFaults during the resume phase (disk sites);
	// ServerFaults during the service fault sub-phase; ClusterFaults
	// select the multi-node phase's fault scenarios (partition, lost
	// send / slow replica, reassignment failure); StoreFaults drive the
	// paged-store crash/corruption phase, one fault per scenario.
	EngineFaults  []PlannedFault `json:"engine_faults,omitempty"`
	CkptFaults    []PlannedFault `json:"ckpt_faults,omitempty"`
	ServerFaults  []PlannedFault `json:"server_faults,omitempty"`
	ClusterFaults []PlannedFault `json:"cluster_faults,omitempty"`
	StoreFaults   []PlannedFault `json:"store_faults,omitempty"`
	// Resume runs the interrupt/resume bit-identity phase; Service the
	// in-process qreld phase; Kill picks the crash-window journal
	// rewind variant over the graceful mid-flight drain; Cluster runs
	// the multi-node coordinator phase; Store the paged-store phase.
	Resume  bool `json:"resume,omitempty"`
	Service bool `json:"service,omitempty"`
	Kill    bool `json:"kill,omitempty"`
	Cluster bool `json:"cluster,omitempty"`
	Store   bool `json:"store,omitempty"`
}

// Plan is a fully materialized campaign schedule — a pure function of
// Config, computed before anything runs.
type Plan struct {
	Seed  int64  `json:"seed"`
	Steps []Step `json:"steps"`
}

// Hash fingerprints the schedule. Two campaigns with the same Config
// produce the same hash; the reproducibility tests compare it.
func (p *Plan) Hash() string {
	b, err := json.Marshal(p)
	if err != nil {
		return "unhashable: " + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// stepQueries is the query mix over the workload graph vocabulary
// (E/2, S/1). All are quantifier-free so the exact reference always
// applies; they differ in class so different dispatch rungs engage.
var stepQueries = []string{
	"E(x,y) & S(x)",
	"E(x,x) | S(x)",
	"S(x) & S(y)",
	"E(x,y)",
}

// siteClass buckets a site by which phase can reach it and which fault
// kinds are safe there.
func siteClass(site string) string {
	switch {
	case site == faultinject.SiteLaneWorker:
		return "lane"
	case strings.HasPrefix(site, "engine/"):
		return "engine"
	case strings.HasPrefix(site, "eval/"):
		return "eval"
	case strings.HasPrefix(site, "vm/"):
		return "vm"
	case strings.HasPrefix(site, "server/"):
		return "server"
	case strings.HasPrefix(site, "ckpt/"):
		return "ckpt"
	case strings.HasPrefix(site, "cluster/"):
		return "cluster"
	case strings.HasPrefix(site, "store/"):
		return "store"
	}
	return ""
}

// abortingCkptSite reports whether a firing fault at the site aborts
// Store.Save before later sites in the commit protocol are reached.
// Two such sites in one step would shadow each other, so the planner
// keeps them in separate steps.
func abortingCkptSite(site string) bool {
	return site == faultinject.SiteCkptCrash || site == faultinject.SiteCkptRename
}

// probFriendlySites are hit many times per engine run, so a seeded
// probabilistic fault there still fires deterministically within a
// step. Engine entry sites are hit once per run and get deterministic
// kinds only.
var probFriendlySites = []string{
	faultinject.SiteAnswerSet,
	faultinject.SiteWorldWorker,
	faultinject.SiteLaneWorker,
}

// selectSites validates and sorts the configured site subset,
// defaulting to every registered site.
func selectSites(sites []string) ([]string, error) {
	if len(sites) == 0 {
		return faultinject.Sites(), nil
	}
	out := make([]string, 0, len(sites))
	seen := map[string]bool{}
	for _, s := range sites {
		if !faultinject.KnownSite(s) {
			return nil, fmt.Errorf("chaos: unknown fault site %q (see faultinject.Sites())", s)
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out, nil
}

// PlanCampaign materializes the full fault schedule from cfg. It is
// deterministic: every draw comes from one xoshiro stream seeded by
// cfg.Seed, consumed in a fixed order.
func PlanCampaign(cfg Config) (*Plan, error) {
	steps := cfg.Steps
	if steps <= 0 {
		steps = DefaultSteps
	}
	sites, err := selectSites(cfg.Sites)
	if err != nil {
		return nil, err
	}
	rng := mc.NewRand(cfg.Seed)
	p := &Plan{Seed: cfg.Seed, Steps: make([]Step, steps)}
	for i := range p.Steps {
		st := &p.Steps[i]
		st.Index = i
		st.N = 3 + rng.Intn(2)
		st.Uncertain = 4 + rng.Intn(4)
		st.Query = stepQueries[rng.Intn(len(stepQueries))]
		st.Seed = int64(rng.Uint64() >> 1)
		if rng.Intn(2) == 0 {
			st.Workers = 2
		}
		st.Resume = rng.Intn(3) == 0
		st.Service = rng.Intn(3) == 0
		st.Kill = rng.Intn(2) == 0
	}

	// Every selected site gets one deterministic fault, spread
	// round-robin over the steps. Assignments force the capabilities
	// the site needs: parallel workers for the lane/world-worker paths,
	// a resume phase for disk sites, a service phase for serving sites.
	aborting := make([]bool, steps)
	for idx, site := range sites {
		st := &p.Steps[idx%steps]
		switch siteClass(site) {
		case "engine":
			kind := [...]FaultKind{KindErr, KindErr, KindPanic, KindDelay}[rng.Intn(4)]
			pf := PlannedFault{Site: site, Kind: kind}
			if kind == KindDelay {
				pf.DelayMS = 1
			}
			st.EngineFaults = append(st.EngineFaults, pf)
		case "eval":
			st.EngineFaults = append(st.EngineFaults, PlannedFault{Site: site, Kind: KindErr})
			if site == faultinject.SiteWorldWorker {
				st.Workers = 2
			}
		case "vm":
			// A compile fault is absorbed, not surfaced: every sampling
			// engine falls back to the interpreter mid-campaign and its
			// estimate must still satisfy the eps-bound oracle.
			st.EngineFaults = append(st.EngineFaults, PlannedFault{Site: site, Kind: KindErr})
		case "lane":
			st.EngineFaults = append(st.EngineFaults, PlannedFault{Site: site, Kind: KindErr})
			st.Workers = 2
		case "server":
			st.Service = true
			pf := PlannedFault{Site: site, Kind: KindErr, Times: 2}
			if rng.Intn(2) == 0 {
				pf = PlannedFault{Site: site, Kind: KindDelay, Times: 2, DelayMS: 2}
			}
			st.ServerFaults = append(st.ServerFaults, pf)
		case "cluster":
			st.Cluster = true
			pf := PlannedFault{Site: site, Kind: KindErr, Times: 1}
			switch site {
			case faultinject.SiteClusterProbe:
				// The partition scenario needs the probe to keep failing
				// until the phase heals it, so no Times bound.
				pf = PlannedFault{Site: site, Kind: KindErr}
			case faultinject.SiteClusterSend:
				if rng.Intn(2) == 0 {
					// A slow replica instead of a lost send: the phase
					// turns hedging on and the delay must trip it.
					pf = PlannedFault{Site: site, Kind: KindDelay, Times: 1, DelayMS: 40}
				}
			case faultinject.SiteClusterCkptShip:
				// The ship scenario tampers every frame accepted while the
				// fault is armed, so the one that ends up planted on a
				// survivor is guaranteed to be replica-rejected; no Times
				// bound.
				pf = PlannedFault{Site: site, Kind: KindErr}
			}
			st.ClusterFaults = append(st.ClusterFaults, pf)
		case "store":
			// The store phase arms each fault by itself against a private
			// store file, so several scenarios can share one step. Write-
			// path faults fire once per batch; the read-path bit flip
			// stays armed so every page fetched through the pool is hit.
			st.Store = true
			pf := PlannedFault{Site: site, Kind: KindErr, Times: 1}
			if site == faultinject.SiteStoreBitFlip {
				pf.Times = 0
			}
			st.StoreFaults = append(st.StoreFaults, pf)
		case "ckpt":
			target := st
			if abortingCkptSite(site) {
				// Find a step without another save-aborting fault.
				j := idx
				for aborting[j%steps] {
					j++
					if j-idx >= steps {
						return nil, fmt.Errorf("chaos: need at least 2 steps to schedule both %s and %s",
							faultinject.SiteCkptCrash, faultinject.SiteCkptRename)
					}
				}
				target = &p.Steps[j%steps]
				aborting[j%steps] = true
			}
			target.Resume = true
			target.CkptFaults = append(target.CkptFaults, PlannedFault{Site: site, Kind: KindErr, Times: 1})
		}
	}

	// Extra seeded probabilistic faults at high-frequency sites, and a
	// filler fault for steps the round-robin left empty.
	selected := map[string]bool{}
	for _, s := range sites {
		selected[s] = true
	}
	var probSites []string
	for _, s := range probFriendlySites {
		if selected[s] {
			probSites = append(probSites, s)
		}
	}
	var engineSites []string
	for _, s := range sites {
		if siteClass(s) == "engine" {
			engineSites = append(engineSites, s)
		}
	}
	for i := range p.Steps {
		st := &p.Steps[i]
		if len(st.EngineFaults)+len(st.CkptFaults)+len(st.ServerFaults) == 0 && len(engineSites) > 0 {
			st.EngineFaults = append(st.EngineFaults,
				PlannedFault{Site: engineSites[rng.Intn(len(engineSites))], Kind: KindErr})
		}
		if len(probSites) == 0 || rng.Intn(2) == 0 {
			continue
		}
		site := probSites[rng.Intn(len(probSites))]
		if hasFault(st.EngineFaults, site) {
			continue
		}
		st.EngineFaults = append(st.EngineFaults, PlannedFault{
			Site: site, Kind: KindProbErr, Prob: 0.5, Seed: int64(rng.Uint64() >> 1),
		})
		if site != faultinject.SiteAnswerSet {
			st.Workers = 2
		}
	}
	return p, nil
}

func hasFault(fs []PlannedFault, site string) bool {
	for _, f := range fs {
		if f.Site == site {
			return true
		}
	}
	return false
}
