package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/cluster"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/server"
	"qrel/internal/server/client"
	"qrel/internal/unreliable"
)

// clusterEstimate is the estimate-defining subset of a Response: the
// fields the multi-node invariant holds bit-identical between a
// coordinator-merged answer and the single-node reference. Trails and
// timings are deliberately excluded.
type clusterEstimate struct {
	R, H       float64
	Eps, Delta float64
	Samples    int
	Engine     string
	Guarantee  string
	Class      string
	Seed       int64
	Degraded   bool
}

func clusterEstOf(res *server.Response) clusterEstimate {
	return clusterEstimate{R: res.R, H: res.H, Eps: res.Eps, Delta: res.Delta, Samples: res.Samples,
		Engine: res.Engine, Guarantee: res.Guarantee, Class: res.Class, Seed: res.Seed, Degraded: res.Degraded}
}

// chaosFleet is a set of in-process qreld replicas the cluster phase
// drives a coordinator against, all serving the step's database.
type chaosFleet struct {
	servers []*server.Server
	fronts  []*httptest.Server
	urls    []string
}

func startChaosFleet(db *unreliable.DB, n int, cfg func(i int) server.Config) *chaosFleet {
	f := &chaosFleet{}
	for i := 0; i < n; i++ {
		c := server.Config{Workers: 2, DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second}
		if cfg != nil {
			c = cfg(i)
		}
		if c.ReplicaID == "" {
			c.ReplicaID = fmt.Sprintf("chaos-replica-%d", i)
		}
		s := server.New(c)
		s.Register("g", db)
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.fronts = append(f.fronts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

// close is idempotent with kill: both layers tolerate double closes.
func (f *chaosFleet) close() {
	for i := range f.fronts {
		f.fronts[i].Close()
		f.servers[i].Close()
	}
}

// kill shuts replica i down hard, severing in-flight connections.
func (f *chaosFleet) kill(i int) {
	f.fronts[i].CloseClientConnections()
	f.fronts[i].Close()
	f.servers[i].Close()
}

// clusterCoord builds a campaign-speed coordinator over urls.
func (c *campaign) clusterCoord(urls []string, mutate func(*cluster.Config)) (*cluster.Coordinator, error) {
	cfg := cluster.Config{
		Replicas:           urls,
		ProbeInterval:      5 * time.Millisecond,
		ProbeTimeout:       250 * time.Millisecond,
		ProbeFailThreshold: 2,
		BaseBackoff:        time.Millisecond,
		MaxBackoff:         10 * time.Millisecond,
		JobPoll:            2 * time.Millisecond,
		Seed:               c.cfg.Seed + 9,
		Breaker:            server.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cluster.New(cfg)
}

// waitLive polls the coordinator until its live-replica count matches.
func waitLive(coord *cluster.Coordinator, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if coord.Statz().LiveReplicas == want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// clusterPhase is the multi-node arm of the campaign: a coordinator
// over in-process replica fleets must answer the step's parallel
// monte-carlo request bit-identically to a single node across replica
// counts, coordinator restarts, and the step's scheduled fault
// scenarios (probe-visible partition, lost send / slow replica with
// hedging, mid-run replica kill with reassignment), and durable
// sub-jobs must be conserved across repeated fan-outs.
func (c *campaign) clusterPhase(ctx context.Context, st *Step, db *unreliable.DB) {
	faultinject.Reset()
	req := server.Request{
		DB: "g", Query: st.Query, Engine: string(core.EngineMCDirect),
		Eps: 0.05, Delta: 0.05, Seed: st.Seed + 3, Workers: 2,
	}

	// Single-node Workers=2 reference on a dedicated replica.
	ref := startChaosFleet(db, 1, nil)
	refRes, err := client.New(ref.urls[0]).Reliability(ctx, req)
	ref.close()
	if err != nil {
		c.check(InvCluster, false, "step %d: single-node reference run failed: %v", st.Index, err)
		return
	}
	want := clusterEstOf(refRes)

	c.clusterTopologyMatrix(ctx, st, db, req, want)
	c.clusterEvalMixScenario(ctx, st, db, req, want)
	c.clusterRestart(ctx, st, db, req, want)
	c.clusterJobsConservation(ctx, st, db, req, want)

	// The work-conservation scenarios need a run long enough to kill a
	// replica (or the coordinator) in the middle of: a tighter eps and a
	// dense checkpoint cadence. Its single-node reference is computed
	// once and shared.
	slowReq := server.Request{
		DB: "g", Query: st.Query, Engine: string(core.EngineMCDirect),
		Eps: 0.004, Delta: 0.05, Seed: st.Seed + 5, Workers: 2,
	}
	var slowWant clusterEstimate
	slowRef := false
	for _, pf := range st.ClusterFaults {
		if pf.Site == faultinject.SiteClusterCkptShip || pf.Site == faultinject.SiteClusterJournalCrash {
			ref := startChaosFleet(db, 1, nil)
			refRes, err := client.New(ref.urls[0]).Reliability(ctx, slowReq)
			ref.close()
			if err != nil {
				c.check(InvClusterResume, false, "step %d: slow single-node reference run failed: %v", st.Index, err)
				return
			}
			slowWant, slowRef = clusterEstOf(refRes), true
			break
		}
	}

	for _, pf := range st.ClusterFaults {
		switch pf.Site {
		case faultinject.SiteClusterProbe:
			c.clusterPartitionScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterSend:
			c.clusterSendScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterReassign:
			c.clusterKillScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterCkptShip:
			if slowRef {
				c.clusterShipScenario(ctx, st, db, slowReq, slowWant, pf)
			}
		case faultinject.SiteClusterJournalCrash:
			if slowRef {
				c.clusterJournalScenario(ctx, st, db, req, want, pf)
				c.clusterCrashRecoveryScenario(ctx, st, db, slowReq, slowWant)
			}
		case faultinject.SiteClusterComputeCorrupt:
			c.clusterCorruptScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterAudit:
			c.clusterAuditFaultScenario(ctx, st, db, req, want, pf)
		}
	}
	faultinject.Reset()
}

// clusterTopologyMatrix checks bit-identity for 1 (pure proxy), 2, and
// 3 replica fan-outs of the same seeded request.
func (c *campaign) clusterTopologyMatrix(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	for _, n := range []int{1, 2, 3} {
		f := startChaosFleet(db, n, nil)
		coord, err := c.clusterCoord(f.urls, nil)
		if err != nil {
			c.check(InvCluster, false, "step %d: building %d-replica coordinator: %v", st.Index, n, err)
			f.close()
			continue
		}
		res, err := coord.Do(ctx, req)
		ok := err == nil && clusterEstOf(res) == want
		c.check(InvCluster, ok,
			"step %d: %d-replica merged estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, n, err, estOrNil(res), want)
		coord.Close()
		f.close()
	}
}

// clusterEvalMixScenario fans the request out over replicas that
// disagree on evaluation mode — one forces the interpreter, one the
// compiled bytecode path — and holds the merged estimate to the
// single-node reference. The modes are bit-identical per lane, so a
// mixed-version fleet must merge (and pass attestation) exactly like a
// homogeneous one; the run is repeated with a vm/compile fault armed,
// which demotes the compiled replica to the interpreter mid-campaign
// without changing a single bit of the answer.
func (c *campaign) clusterEvalMixScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	modes := []string{string(core.EvalInterpreted), string(core.EvalCompiled)}
	f := startChaosFleet(db, 2, func(i int) server.Config {
		return server.Config{Workers: 2, DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
			DefaultEval: modes[i]}
	})
	defer f.close()
	coord, err := c.clusterCoord(f.urls, nil)
	if err != nil {
		c.check(InvCluster, false, "step %d: building eval-mix coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	for _, armed := range []bool{false, true} {
		label := "mixed eval modes"
		if armed {
			label = "mixed eval modes + vm/compile fault"
			faultinject.Enable(faultinject.SiteVMCompile, faultinject.Fault{Err: fmt.Errorf("%w at %s", errInjected, faultinject.SiteVMCompile)})
		}
		res, err := coord.Do(ctx, req)
		if armed {
			faultinject.Reset()
		}
		ok := err == nil && clusterEstOf(res) == want
		c.check(InvCluster, ok,
			"step %d: %s: merged estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, label, err, estOrNil(res), want)
	}
}

// clusterRestart rebuilds a coordinator from the same config mid-life:
// the successor must answer identically — the coordinator holds no
// state the estimate depends on.
func (c *campaign) clusterRestart(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	for run := 0; run < 2; run++ {
		coord, err := c.clusterCoord(f.urls, nil)
		if err != nil {
			c.check(InvCluster, false, "step %d: coordinator restart %d: %v", st.Index, run, err)
			return
		}
		res, err := coord.Do(ctx, req)
		ok := err == nil && clusterEstOf(res) == want
		c.check(InvCluster, ok,
			"step %d: coordinator incarnation %d diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, run, err, estOrNil(res), want)
		coord.Close()
	}
}

// clusterJobsConservation fans the same keyed request out twice through
// the durable-jobs API: both answers must match the reference and the
// replicas must have journaled exactly one sub-job per lane range — the
// second fan-out re-attaches, nothing is lost or duplicated.
func (c *campaign) clusterJobsConservation(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	dir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "cluster-jobs")
	f := startChaosFleet(db, 2, func(i int) server.Config {
		return server.Config{
			Workers: 2, QueueDepth: 16,
			DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
			CheckpointDir: filepath.Join(dir, strconv.Itoa(i)), CheckpointEvery: 2000,
		}
	})
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.UseJobs = true })
	if err != nil {
		c.check(InvCluster, false, "step %d: building jobs-mode coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	jreq := req
	jreq.IdempotencyKey = fmt.Sprintf("chaos-cluster-%d-%d", c.cfg.Seed, st.Index)
	first, err1 := coord.Do(ctx, jreq)
	second, err2 := coord.Do(ctx, jreq)
	ok := err1 == nil && err2 == nil && clusterEstOf(first) == want && clusterEstOf(second) == want
	c.check(InvCluster, ok,
		"step %d: jobs-mode fan-outs diverged (err1=%v, err2=%v, first=%+v, second=%+v, want=%+v)",
		st.Index, err1, err2, estOrNil(first), estOrNil(second), want)
	var submitted int64
	for _, s := range f.servers {
		if js := s.Statz().Jobs; js != nil {
			submitted += js.Submitted
		}
	}
	c.check(InvCluster, submitted == 2,
		"step %d: two identical fan-outs journaled %d sub-jobs, want exactly 2 (one per range, re-attached on rerun)",
		st.Index, submitted)
}

// clusterPartitionScenario arms the planned probe fault (unbounded, so
// every probe fails) until the whole replica set reads down, requires
// the typed no-replicas error, then heals and requires a bit-identical
// answer.
func (c *campaign) clusterPartitionScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.MaxAttempts = 2 })
	if err != nil {
		c.check(InvCluster, false, "step %d: building partition coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()

	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	if !waitLive(coord, 0, 5*time.Second) {
		c.check(InvCluster, false, "step %d: replicas never read down under a fully failing probe", st.Index)
		faultinject.Reset()
		return
	}
	_, err = coord.Do(ctx, req)
	c.check(InvCluster, errors.Is(err, cluster.ErrNoReplicas),
		"step %d: partitioned Do error = %v, want ErrNoReplicas", st.Index, err)

	faultinject.Reset()
	if !waitLive(coord, 2, 5*time.Second) {
		c.check(InvCluster, false, "step %d: replicas never healed after the probe fault cleared", st.Index)
		return
	}
	res, err := coord.Do(ctx, req)
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvCluster, ok,
		"step %d: post-heal estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
}

// clusterSendScenario arms the planned send fault on a two-replica
// fan-out. A one-shot error must be absorbed by retry/reassignment; a
// one-shot delay must trip the hedge (the scenario turns hedging on and
// the fast duplicate must win). Either way the answer is bit-identical.
func (c *campaign) clusterSendScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) {
		if pf.Kind == KindDelay {
			cfg.HedgeAfter = 10 * time.Millisecond
		}
	})
	if err != nil {
		c.check(InvCluster, false, "step %d: building send-fault coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	res, err := coord.Do(ctx, req)
	faultinject.Reset()
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvCluster, ok,
		"step %d: estimate under a %s send fault diverged (err=%v, got=%+v, want=%+v)",
		st.Index, pf.Kind, err, estOrNil(res), want)
	stz := coord.Statz()
	if pf.Kind == KindDelay {
		c.check(InvCluster, stz.Hedges >= 1,
			"step %d: a %dms send delay with hedging on produced no hedge", st.Index, pf.DelayMS)
	} else {
		c.check(InvCluster, stz.Retries >= 1,
			"step %d: an injected send error produced no retry", st.Index)
	}
}

// clusterKillScenario is the replica-loss drill: every send is held
// open briefly, one replica is hard-killed inside that window, and the
// planned reassignment fault makes the first reassignment itself fail —
// the retry budget must still land the orphaned range on a survivor
// with the merged answer unchanged. The armed fault firing is what
// proves (via the campaign coverage invariant) that the kill path ran.
func (c *campaign) clusterKillScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 3, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.MaxAttempts = 8 })
	if err != nil {
		c.check(InvCluster, false, "step %d: building kill-scenario coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()

	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	faultinject.Enable(faultinject.SiteClusterSend, faultinject.Fault{Delay: 40 * time.Millisecond})
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, doErr := coord.Do(ctx, req)
		done <- out{res, doErr}
	}()
	time.Sleep(10 * time.Millisecond)
	f.kill(0)
	o := <-done
	faultinject.Reset()

	ok := o.err == nil && clusterEstOf(o.res) == want
	c.check(InvCluster, ok,
		"step %d: post-kill merged estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
		st.Index, o.err, estOrNil(o.res), want)
	c.check(InvCluster, coord.Statz().Reassigns >= 1,
		"step %d: killing a replica mid-fan-out forced no reassignment", st.Index)
}

// shipFleet starts a jobs-enabled two-replica fleet with a dense
// checkpoint cadence under dir, and a work-conserving coordinator over
// it (jobs mode, fast checkpoint polling, mutate applied last).
func (c *campaign) shipFleet(db *unreliable.DB, dir string, mutate func(*cluster.Config)) (*chaosFleet, *cluster.Coordinator, error) {
	f := startChaosFleet(db, 2, func(i int) server.Config {
		return server.Config{
			Workers: 2, QueueDepth: 16,
			DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
			CheckpointDir: filepath.Join(dir, strconv.Itoa(i)), CheckpointEvery: 1000,
		}
	})
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) {
		cfg.UseJobs = true
		cfg.MaxAttempts = 8
		cfg.JobPoll = time.Millisecond
		cfg.CheckpointPoll = time.Millisecond
		if mutate != nil {
			mutate(cfg)
		}
	})
	if err != nil {
		f.close()
		return nil, nil, err
	}
	return f, coord, nil
}

// maxJobSamples reads a replica's on-disk job snapshot stores and
// returns the largest checkpointed sample count — the replica's true
// durable progress, readable even after the replica is dead.
func maxJobSamples(ckptDir string) int {
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		return 0
	}
	best := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		store, err := checkpoint.Open(filepath.Join(ckptDir, e.Name(), "ckpt"), checkpoint.Options{})
		if err != nil {
			continue
		}
		payload, err := store.LoadLatest()
		if err != nil {
			continue
		}
		var st struct {
			Samples int `json:"samples"`
		}
		if json.Unmarshal(payload, &st) == nil && st.Samples > best {
			best = st.Samples
		}
	}
	return best
}

// waitShipped polls the coordinator until at least n checkpoint frames
// have been accepted (both ranges checkpoint on the same cadence, so a
// small n implies every range has shipped).
func waitShipped(coord *cluster.Coordinator, n int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if coord.Statz().CheckpointsShipped >= n {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return false
}

// clusterShipScenario is the work-conservation drill. Part A (no fault
// armed): kill a replica once its range has shipped a checkpoint; the
// survivor must resume from the shipped state, the merged answer must
// stay bit-identical, and the waste — the dead replica's durable
// progress beyond the resumed sequence — must stay within a few
// shipping intervals. Part B (the planned fault armed, which tampers
// every accepted frame's fingerprint): the same kill must degrade to a
// replica-rejected resume (resume-rejected in the trail) and a clean
// restart with the identical answer — corruption costs work, never
// correctness.
func (c *campaign) clusterShipScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	type out struct {
		res *server.Response
		err error
	}
	run := func(part string, key string, arm bool) (*server.Response, *cluster.Coordinator, int, bool) {
		dir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "cluster-ship-"+part)
		f, coord, err := c.shipFleet(db, dir, nil)
		if err != nil {
			c.check(InvClusterResume, false, "step %d: building ship-scenario fleet: %v", st.Index, err)
			return nil, nil, 0, false
		}
		defer f.close()
		faultinject.Reset()
		if arm {
			c.armFaults([]PlannedFault{pf})
		}
		kreq := req
		kreq.IdempotencyKey = key
		done := make(chan out, 1)
		go func() {
			res, doErr := coord.Do(ctx, kreq)
			done <- out{res, doErr}
		}()
		if !waitShipped(coord, 3, 10*time.Second) {
			c.check(InvClusterResume, false, "step %d: %s: no checkpoint shipped before the run finished", st.Index, part)
			coord.Close()
			return nil, nil, 0, false
		}
		time.Sleep(3 * time.Millisecond) // let the slower range's frame land too
		f.kill(0)
		o := <-done
		faultinject.Reset()
		ok := o.err == nil && clusterEstOf(o.res) == want
		c.check(InvClusterResume, ok,
			"step %d: %s: post-kill estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, part, o.err, estOrNil(o.res), want)
		return o.res, coord, maxJobSamples(filepath.Join(dir, "0")), ok
	}

	// Part A: honest shipping — the survivor resumes the killed range.
	res, coord, progress, ok := run("resume", fmt.Sprintf("chaos-ship-%d-%d", c.cfg.Seed, st.Index), false)
	if coord != nil {
		stz := coord.Statz()
		coord.Close()
		if ok {
			c.check(InvClusterWork, stz.CheckpointsShipped >= 1 && stz.Resumes >= 1,
				"step %d: kill with shipping on produced no resume (shipped=%d resumes=%d)",
				st.Index, stz.CheckpointsShipped, stz.Resumes)
			maxSeq := 0
			for _, s := range res.ClusterTrail {
				if s.Event == "resume" && s.Seq > maxSeq {
					maxSeq = s.Seq
				}
			}
			c.check(InvClusterWork, res.Resumed && maxSeq > 0,
				"step %d: resumed response carries no positive resume sequence (resumed=%v seq=%d)",
				st.Index, res.Resumed, maxSeq)
			c.check(InvClusterWork, maxSeq <= progress,
				"step %d: resume sequence %d exceeds the killed replica's durable progress %d",
				st.Index, maxSeq, progress)
			c.check(InvClusterWork, progress-maxSeq <= 8*1000,
				"step %d: kill wasted %d samples (progress %d, resumed at %d), more than 8 shipping intervals",
				st.Index, progress-maxSeq, progress, maxSeq)
		}
	}

	// Part B: every shipped frame is tampered in flight — the planted
	// resume must be rejected by the survivor and the range restarted
	// clean, with the answer unchanged.
	res, coord, _, ok = run("reject", fmt.Sprintf("chaos-ship-reject-%d-%d", c.cfg.Seed, st.Index), true)
	if coord != nil {
		stz := coord.Statz()
		coord.Close()
		if ok {
			rejected := false
			for _, s := range res.ClusterTrail {
				if s.Event == "resume-rejected" {
					rejected = true
				}
			}
			c.check(InvClusterResume, rejected && stz.ResumesRejected >= 1,
				"step %d: tampered shipped checkpoint was not replica-rejected (trail=%v statz=%d)",
				st.Index, rejected, stz.ResumesRejected)
		}
	}
}

// clusterJournalScenario arms the planned journal-crash fault (one torn
// journal write) on a journaled jobs-mode fan-out: the answer must be
// unaffected — the journal is a recovery accelerator, never in the
// correctness path — the failure must be counted, and a later Recover
// must tolerate both the repaired record and a deliberately torn one.
func (c *campaign) clusterJournalScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	base := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index))
	jdir := filepath.Join(base, "cluster-journal")
	f, coord, err := c.shipFleet(db, filepath.Join(base, "cluster-journal-ckpt"), func(cfg *cluster.Config) {
		cfg.JournalDir = jdir
	})
	if err != nil {
		c.check(InvClusterResume, false, "step %d: building journal-scenario fleet: %v", st.Index, err)
		return
	}
	defer f.close()
	defer coord.Close()

	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	jreq := req
	jreq.IdempotencyKey = fmt.Sprintf("chaos-journal-%d-%d", c.cfg.Seed, st.Index)
	res, err := coord.Do(ctx, jreq)
	faultinject.Reset()
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvClusterResume, ok,
		"step %d: estimate under a torn journal write diverged (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
	c.check(InvClusterResume, coord.Statz().JournalErrors >= 1,
		"step %d: the armed journal-crash fault tore no write", st.Index)

	// A deliberately torn record (a crash mid-write the fault did not
	// repair) must read as absent: Recover skips it without error.
	if err := os.WriteFile(filepath.Join(jdir, "fanout-deadbeefdeadbeef.json"), []byte(`{"key":"torn`), 0o644); err == nil {
		n, rerr := coord.Recover(ctx)
		c.check(InvClusterResume, rerr == nil && n == 0,
			"step %d: Recover over a completed journal with a torn record = (%d, %v), want (0, nil)",
			st.Index, n, rerr)
	}
}

// clusterCrashRecoveryScenario is the coordinator-loss drill: a keyed
// journaled fan-out is abandoned mid-run (the coordinator "crashes" —
// its context is canceled and it is closed), a successor coordinator on
// the same journal dir Recovers the run to completion, and a client
// re-POST of the same key is served the bit-identical journaled result.
// Work conservation: recovery re-attaches to the replicas' durable
// sub-jobs by their journaled keys — exactly one sub-job per lane range
// is ever submitted.
func (c *campaign) clusterCrashRecoveryScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	base := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index))
	jdir := filepath.Join(base, "cluster-crash-journal")
	mutate := func(cfg *cluster.Config) { cfg.JournalDir = jdir }
	f, coordA, err := c.shipFleet(db, filepath.Join(base, "cluster-crash-ckpt"), mutate)
	if err != nil {
		c.check(InvClusterResume, false, "step %d: building crash-scenario fleet: %v", st.Index, err)
		return
	}
	defer f.close()

	faultinject.Reset()
	kreq := req
	kreq.IdempotencyKey = fmt.Sprintf("chaos-crash-%d-%d", c.cfg.Seed, st.Index)
	dctx, cancel := context.WithCancel(ctx)
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, doErr := coordA.Do(dctx, kreq)
		done <- out{res, doErr}
	}()
	if !waitShipped(coordA, 2, 10*time.Second) {
		cancel()
		<-done
		coordA.Close()
		c.check(InvClusterResume, false, "step %d: crash drill: nothing shipped before the run finished", st.Index)
		return
	}
	cancel() // the crash: the merge never completes, the journal record stays running
	<-done
	coordA.Close()

	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) {
		cfg.UseJobs = true
		cfg.MaxAttempts = 8
		cfg.JobPoll = time.Millisecond
		cfg.CheckpointPoll = time.Millisecond
		mutate(cfg)
	})
	if err != nil {
		c.check(InvClusterResume, false, "step %d: building successor coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	n, err := coord.Recover(ctx)
	c.check(InvClusterResume, err == nil && n == 1,
		"step %d: successor Recover = (%d, %v), want (1, nil)", st.Index, n, err)
	res, err := coord.Do(ctx, kreq)
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvClusterResume, ok,
		"step %d: recovered estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
	var submitted int64
	for _, s := range f.servers {
		if js := s.Statz().Jobs; js != nil {
			submitted += js.Submitted
		}
	}
	c.check(InvClusterWork, submitted == 2,
		"step %d: crash recovery submitted %d sub-jobs across the fleet, want exactly 2 (one per range, recovery re-attaches)",
		st.Index, submitted)
}

// hasTrailEvent reports whether the response's cluster trail carries
// at least one step with the named event.
func hasTrailEvent(res *server.Response, event string) bool {
	if res == nil {
		return false
	}
	for _, s := range res.ClusterTrail {
		if s.Event == event {
			return true
		}
	}
	return false
}

// clusterCorruptScenario is the trust-but-verify drill, in two parts.
// Part A arms the planned compute-corrupt fault — one lane aggregate
// somewhere in the fleet is silently perturbed after the computation,
// so the attestation digest still matches and only a cross-replica
// audit can notice — under a full audit (AuditFrac 1): the mismatch
// must be caught, tie-broken on the third replica, and the liar's
// ranges repaired, with the served estimate bit-identical to the
// single-node reference. Part B rebuilds the fleet with replica 0
// configured as a persistent liar (Config.ComputeCorrupt): the
// coordinator must quarantine it, keep serving the bit-identical
// estimate from the honest survivors, and record the audit evidence in
// both the cluster trail and the fan-out journal.
func (c *campaign) clusterCorruptScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	// Part A: a one-shot injected corruption.
	f := startChaosFleet(db, 3, nil)
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.AuditFrac = 1 })
	if err != nil {
		c.check(InvClusterAudit, false, "step %d: building audit coordinator: %v", st.Index, err)
		f.close()
		return
	}
	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	res, err := coord.Do(ctx, req)
	faultinject.Reset()
	var corrupted int64
	for _, s := range f.servers {
		corrupted += s.Statz().ComputeCorrupted
	}
	stz := coord.Statz()
	coord.Close()
	f.close()
	c.check(InvClusterAudit, corrupted >= 1,
		"step %d: the armed compute-corrupt fault perturbed no lane-range result", st.Index)
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvClusterAudit, ok,
		"step %d: estimate with a corrupted range under full audit diverged (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
	if ok && corrupted >= 1 {
		c.check(InvClusterAudit, stz.AuditMismatches >= 1 && hasTrailEvent(res, "audit-liar"),
			"step %d: a corrupted range survived a full audit undetected (mismatches=%d)",
			st.Index, stz.AuditMismatches)
	}

	// Part B: replica 0 lies on every lane range it computes.
	jdir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "cluster-audit-journal")
	f = startChaosFleet(db, 3, func(i int) server.Config {
		return server.Config{
			Workers: 2, DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
			ComputeCorrupt: i == 0,
		}
	})
	defer f.close()
	coord, err = c.clusterCoord(f.urls, func(cfg *cluster.Config) {
		cfg.AuditFrac = 1
		cfg.JournalDir = jdir
		// No readmission inside the drill: the liar must still read
		// quarantined when the assertions run.
		cfg.QuarantineCooldown = time.Hour
	})
	if err != nil {
		c.check(InvClusterQuarantine, false, "step %d: building quarantine coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	kreq := req
	kreq.IdempotencyKey = fmt.Sprintf("chaos-audit-%d-%d", c.cfg.Seed, st.Index)
	res, err = coord.Do(ctx, kreq)
	ok = err == nil && clusterEstOf(res) == want
	c.check(InvClusterQuarantine, ok,
		"step %d: estimate with a persistently lying replica diverged (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
	if !ok {
		return
	}
	stz = coord.Statz()
	var liarHealth cluster.HealthState
	for _, r := range stz.Replicas {
		if r.URL == f.urls[0] {
			liarHealth = r.Health
		}
	}
	c.check(InvClusterQuarantine, liarHealth == cluster.HealthQuarantined && stz.Quarantines >= 1,
		"step %d: lying replica health = %q (quarantines=%d), want quarantined",
		st.Index, liarHealth, stz.Quarantines)
	c.check(InvClusterQuarantine, hasTrailEvent(res, "audit-liar") && hasTrailEvent(res, "quarantine"),
		"step %d: cluster trail carries no audit-liar/quarantine evidence", st.Index)
	rec := cluster.LoadFanout(jdir, kreq.IdempotencyKey)
	liarAudits := 0
	if rec != nil {
		for _, a := range rec.Audits {
			if a.Verdict == cluster.AuditLiar && a.Liar == f.urls[0] {
				liarAudits++
			}
		}
	}
	c.check(InvClusterQuarantine, liarAudits >= 1,
		"step %d: fan-out journal carries no liar verdict against the corrupt replica (journaled=%v)",
		st.Index, rec != nil)
}

// clusterAuditFaultScenario arms the planned audit fault on a fully
// audited honest fleet: the audit machinery itself failing must cost at
// most coverage — the affected audit falls to the next candidate or is
// skipped outright, the estimate is untouched, and nobody is
// quarantined over an infrastructure failure.
func (c *campaign) clusterAuditFaultScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 3, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.AuditFrac = 1 })
	if err != nil {
		c.check(InvClusterAudit, false, "step %d: building audit-fault coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	res, err := coord.Do(ctx, req)
	faultinject.Reset()
	stz := coord.Statz()
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvClusterAudit, ok,
		"step %d: estimate under an audit fault diverged (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
	c.check(InvClusterAudit, hasTrailEvent(res, "audit-skipped"),
		"step %d: the armed audit fault skipped no audit candidate", st.Index)
	c.check(InvClusterAudit, stz.AuditMismatches == 0 && stz.Quarantines == 0,
		"step %d: an honest fleet under an audit fault read mismatches=%d quarantines=%d, want none",
		st.Index, stz.AuditMismatches, stz.Quarantines)
}

// estOrNil formats a response's estimate subset for failure messages.
func estOrNil(res *server.Response) any {
	if res == nil {
		return "<nil>"
	}
	return clusterEstOf(res)
}
