package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"time"

	"qrel/internal/cluster"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/server"
	"qrel/internal/server/client"
	"qrel/internal/unreliable"
)

// clusterEstimate is the estimate-defining subset of a Response: the
// fields the multi-node invariant holds bit-identical between a
// coordinator-merged answer and the single-node reference. Trails and
// timings are deliberately excluded.
type clusterEstimate struct {
	R, H       float64
	Eps, Delta float64
	Samples    int
	Engine     string
	Guarantee  string
	Class      string
	Seed       int64
	Degraded   bool
}

func clusterEstOf(res *server.Response) clusterEstimate {
	return clusterEstimate{R: res.R, H: res.H, Eps: res.Eps, Delta: res.Delta, Samples: res.Samples,
		Engine: res.Engine, Guarantee: res.Guarantee, Class: res.Class, Seed: res.Seed, Degraded: res.Degraded}
}

// chaosFleet is a set of in-process qreld replicas the cluster phase
// drives a coordinator against, all serving the step's database.
type chaosFleet struct {
	servers []*server.Server
	fronts  []*httptest.Server
	urls    []string
}

func startChaosFleet(db *unreliable.DB, n int, cfg func(i int) server.Config) *chaosFleet {
	f := &chaosFleet{}
	for i := 0; i < n; i++ {
		c := server.Config{Workers: 2, DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second}
		if cfg != nil {
			c = cfg(i)
		}
		if c.ReplicaID == "" {
			c.ReplicaID = fmt.Sprintf("chaos-replica-%d", i)
		}
		s := server.New(c)
		s.Register("g", db)
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.fronts = append(f.fronts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

// close is idempotent with kill: both layers tolerate double closes.
func (f *chaosFleet) close() {
	for i := range f.fronts {
		f.fronts[i].Close()
		f.servers[i].Close()
	}
}

// kill shuts replica i down hard, severing in-flight connections.
func (f *chaosFleet) kill(i int) {
	f.fronts[i].CloseClientConnections()
	f.fronts[i].Close()
	f.servers[i].Close()
}

// clusterCoord builds a campaign-speed coordinator over urls.
func (c *campaign) clusterCoord(urls []string, mutate func(*cluster.Config)) (*cluster.Coordinator, error) {
	cfg := cluster.Config{
		Replicas:           urls,
		ProbeInterval:      5 * time.Millisecond,
		ProbeTimeout:       250 * time.Millisecond,
		ProbeFailThreshold: 2,
		BaseBackoff:        time.Millisecond,
		MaxBackoff:         10 * time.Millisecond,
		JobPoll:            2 * time.Millisecond,
		Seed:               c.cfg.Seed + 9,
		Breaker:            server.BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cluster.New(cfg)
}

// waitLive polls the coordinator until its live-replica count matches.
func waitLive(coord *cluster.Coordinator, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if coord.Statz().LiveReplicas == want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// clusterPhase is the multi-node arm of the campaign: a coordinator
// over in-process replica fleets must answer the step's parallel
// monte-carlo request bit-identically to a single node across replica
// counts, coordinator restarts, and the step's scheduled fault
// scenarios (probe-visible partition, lost send / slow replica with
// hedging, mid-run replica kill with reassignment), and durable
// sub-jobs must be conserved across repeated fan-outs.
func (c *campaign) clusterPhase(ctx context.Context, st *Step, db *unreliable.DB) {
	faultinject.Reset()
	req := server.Request{
		DB: "g", Query: st.Query, Engine: string(core.EngineMCDirect),
		Eps: 0.05, Delta: 0.05, Seed: st.Seed + 3, Workers: 2,
	}

	// Single-node Workers=2 reference on a dedicated replica.
	ref := startChaosFleet(db, 1, nil)
	refRes, err := client.New(ref.urls[0]).Reliability(ctx, req)
	ref.close()
	if err != nil {
		c.check(InvCluster, false, "step %d: single-node reference run failed: %v", st.Index, err)
		return
	}
	want := clusterEstOf(refRes)

	c.clusterTopologyMatrix(ctx, st, db, req, want)
	c.clusterRestart(ctx, st, db, req, want)
	c.clusterJobsConservation(ctx, st, db, req, want)
	for _, pf := range st.ClusterFaults {
		switch pf.Site {
		case faultinject.SiteClusterProbe:
			c.clusterPartitionScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterSend:
			c.clusterSendScenario(ctx, st, db, req, want, pf)
		case faultinject.SiteClusterReassign:
			c.clusterKillScenario(ctx, st, db, req, want, pf)
		}
	}
	faultinject.Reset()
}

// clusterTopologyMatrix checks bit-identity for 1 (pure proxy), 2, and
// 3 replica fan-outs of the same seeded request.
func (c *campaign) clusterTopologyMatrix(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	for _, n := range []int{1, 2, 3} {
		f := startChaosFleet(db, n, nil)
		coord, err := c.clusterCoord(f.urls, nil)
		if err != nil {
			c.check(InvCluster, false, "step %d: building %d-replica coordinator: %v", st.Index, n, err)
			f.close()
			continue
		}
		res, err := coord.Do(ctx, req)
		ok := err == nil && clusterEstOf(res) == want
		c.check(InvCluster, ok,
			"step %d: %d-replica merged estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, n, err, estOrNil(res), want)
		coord.Close()
		f.close()
	}
}

// clusterRestart rebuilds a coordinator from the same config mid-life:
// the successor must answer identically — the coordinator holds no
// state the estimate depends on.
func (c *campaign) clusterRestart(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	for run := 0; run < 2; run++ {
		coord, err := c.clusterCoord(f.urls, nil)
		if err != nil {
			c.check(InvCluster, false, "step %d: coordinator restart %d: %v", st.Index, run, err)
			return
		}
		res, err := coord.Do(ctx, req)
		ok := err == nil && clusterEstOf(res) == want
		c.check(InvCluster, ok,
			"step %d: coordinator incarnation %d diverged from single-node (err=%v, got=%+v, want=%+v)",
			st.Index, run, err, estOrNil(res), want)
		coord.Close()
	}
}

// clusterJobsConservation fans the same keyed request out twice through
// the durable-jobs API: both answers must match the reference and the
// replicas must have journaled exactly one sub-job per lane range — the
// second fan-out re-attaches, nothing is lost or duplicated.
func (c *campaign) clusterJobsConservation(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate) {
	dir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "cluster-jobs")
	f := startChaosFleet(db, 2, func(i int) server.Config {
		return server.Config{
			Workers: 2, QueueDepth: 16,
			DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
			CheckpointDir: filepath.Join(dir, strconv.Itoa(i)), CheckpointEvery: 2000,
		}
	})
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.UseJobs = true })
	if err != nil {
		c.check(InvCluster, false, "step %d: building jobs-mode coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	jreq := req
	jreq.IdempotencyKey = fmt.Sprintf("chaos-cluster-%d-%d", c.cfg.Seed, st.Index)
	first, err1 := coord.Do(ctx, jreq)
	second, err2 := coord.Do(ctx, jreq)
	ok := err1 == nil && err2 == nil && clusterEstOf(first) == want && clusterEstOf(second) == want
	c.check(InvCluster, ok,
		"step %d: jobs-mode fan-outs diverged (err1=%v, err2=%v, first=%+v, second=%+v, want=%+v)",
		st.Index, err1, err2, estOrNil(first), estOrNil(second), want)
	var submitted int64
	for _, s := range f.servers {
		if js := s.Statz().Jobs; js != nil {
			submitted += js.Submitted
		}
	}
	c.check(InvCluster, submitted == 2,
		"step %d: two identical fan-outs journaled %d sub-jobs, want exactly 2 (one per range, re-attached on rerun)",
		st.Index, submitted)
}

// clusterPartitionScenario arms the planned probe fault (unbounded, so
// every probe fails) until the whole replica set reads down, requires
// the typed no-replicas error, then heals and requires a bit-identical
// answer.
func (c *campaign) clusterPartitionScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.MaxAttempts = 2 })
	if err != nil {
		c.check(InvCluster, false, "step %d: building partition coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()

	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	if !waitLive(coord, 0, 5*time.Second) {
		c.check(InvCluster, false, "step %d: replicas never read down under a fully failing probe", st.Index)
		faultinject.Reset()
		return
	}
	_, err = coord.Do(ctx, req)
	c.check(InvCluster, errors.Is(err, cluster.ErrNoReplicas),
		"step %d: partitioned Do error = %v, want ErrNoReplicas", st.Index, err)

	faultinject.Reset()
	if !waitLive(coord, 2, 5*time.Second) {
		c.check(InvCluster, false, "step %d: replicas never healed after the probe fault cleared", st.Index)
		return
	}
	res, err := coord.Do(ctx, req)
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvCluster, ok,
		"step %d: post-heal estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
		st.Index, err, estOrNil(res), want)
}

// clusterSendScenario arms the planned send fault on a two-replica
// fan-out. A one-shot error must be absorbed by retry/reassignment; a
// one-shot delay must trip the hedge (the scenario turns hedging on and
// the fast duplicate must win). Either way the answer is bit-identical.
func (c *campaign) clusterSendScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 2, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) {
		if pf.Kind == KindDelay {
			cfg.HedgeAfter = 10 * time.Millisecond
		}
	})
	if err != nil {
		c.check(InvCluster, false, "step %d: building send-fault coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()
	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	res, err := coord.Do(ctx, req)
	faultinject.Reset()
	ok := err == nil && clusterEstOf(res) == want
	c.check(InvCluster, ok,
		"step %d: estimate under a %s send fault diverged (err=%v, got=%+v, want=%+v)",
		st.Index, pf.Kind, err, estOrNil(res), want)
	stz := coord.Statz()
	if pf.Kind == KindDelay {
		c.check(InvCluster, stz.Hedges >= 1,
			"step %d: a %dms send delay with hedging on produced no hedge", st.Index, pf.DelayMS)
	} else {
		c.check(InvCluster, stz.Retries >= 1,
			"step %d: an injected send error produced no retry", st.Index)
	}
}

// clusterKillScenario is the replica-loss drill: every send is held
// open briefly, one replica is hard-killed inside that window, and the
// planned reassignment fault makes the first reassignment itself fail —
// the retry budget must still land the orphaned range on a survivor
// with the merged answer unchanged. The armed fault firing is what
// proves (via the campaign coverage invariant) that the kill path ran.
func (c *campaign) clusterKillScenario(ctx context.Context, st *Step, db *unreliable.DB, req server.Request, want clusterEstimate, pf PlannedFault) {
	f := startChaosFleet(db, 3, nil)
	defer f.close()
	coord, err := c.clusterCoord(f.urls, func(cfg *cluster.Config) { cfg.MaxAttempts = 8 })
	if err != nil {
		c.check(InvCluster, false, "step %d: building kill-scenario coordinator: %v", st.Index, err)
		return
	}
	defer coord.Close()

	faultinject.Reset()
	c.armFaults([]PlannedFault{pf})
	faultinject.Enable(faultinject.SiteClusterSend, faultinject.Fault{Delay: 40 * time.Millisecond})
	type out struct {
		res *server.Response
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, doErr := coord.Do(ctx, req)
		done <- out{res, doErr}
	}()
	time.Sleep(10 * time.Millisecond)
	f.kill(0)
	o := <-done
	faultinject.Reset()

	ok := o.err == nil && clusterEstOf(o.res) == want
	c.check(InvCluster, ok,
		"step %d: post-kill merged estimate diverged from single-node (err=%v, got=%+v, want=%+v)",
		st.Index, o.err, estOrNil(o.res), want)
	c.check(InvCluster, coord.Statz().Reassigns >= 1,
		"step %d: killing a replica mid-fan-out forced no reassignment", st.Index)
}

// estOrNil formats a response's estimate subset for failure messages.
func estOrNil(res *server.Response) any {
	if res == nil {
		return "<nil>"
	}
	return clusterEstOf(res)
}
