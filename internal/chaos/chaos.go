// Package chaos is a seeded, fully deterministic chaos campaign engine
// for the reliability stack. From a single seed it plans a randomized
// schedule of fault activations across every registered faultinject
// site — injected errors, forced panics, delays, disk faults on the
// checkpoint commit protocol, and seeded probabilistic variants — and
// drives a mixed workload of generated (A, mu, psi) instances through
// the core dispatch ladder and a live in-process qreld server (plain
// requests, durable jobs, drains, restarts, crash-window journal
// rewinds).
//
// After every action the campaign checks invariants against a
// differential oracle: the nine engines all compute or approximate the
// same quantity, so the exact engines must agree bit-for-bit on the
// big.Rat reliability, and the randomized engines must land within
// their (honestly widened) eps of the exact value. Failures under
// injected faults must stay inside the typed error taxonomy, resumed
// runs must be bit-identical to uninterrupted ones, no durable job may
// be lost or double-finalized across a drain or restart, circuit
// breakers must re-close once faults clear, and the campaign must leak
// neither goroutines nor checkpoint temp files.
//
// Reproducibility contract: the fault schedule is a pure function of
// Config (hash it via Plan.Hash, reported as Report.ScheduleHash), and
// the per-invariant verdicts are deterministic for a fixed seed — the
// per-site randomness rides on splitmix64/xoshiro streams derived from
// the campaign seed, never on wall-clock time. Tallies that depend on
// scheduling (how many jobs were suspended mid-flight, say) may vary;
// the pass/fail verdict per invariant may not.
//
// The campaign arms the process-global faultinject registry and its
// hit/fire counters; do not run it concurrently with other fault
// injection users.
package chaos

import (
	"time"

	"qrel/internal/faultinject"
)

// Config parameterizes one campaign. Seed fully determines the
// schedule; Dir is scratch space for checkpoint stores and job
// directories and must be private to the campaign (the temp-file leak
// invariant scans it).
type Config struct {
	// Seed derives the entire campaign: instance generation, fault
	// schedule, and every engine seed.
	Seed int64
	// Steps is the number of campaign steps (default DefaultSteps).
	Steps int
	// Sites restricts the fault schedule to a subset of
	// faultinject.Sites(); empty schedules every site.
	Sites []string
	// Dir is the campaign scratch directory (required).
	Dir string
	// EpsSkew, when nonzero, multiplies the eps each randomized engine
	// is allowed — an intentionally wrong oracle. Setting it well below
	// 1 (say 0.01) must make the campaign fail, which is how the
	// harness proves it can detect accuracy violations at all.
	EpsSkew float64
	// Duration, when nonzero, stops starting new steps after it
	// elapses; the report then covers the steps that ran.
	Duration time.Duration
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// DefaultSteps is the campaign length when Config.Steps is zero.
const DefaultSteps = 8

// Invariant names, the keys of Report.Invariants and Report.Verdicts.
const (
	// InvExactAgree: every exact engine agrees bit-for-bit (big.Rat
	// equality) with the world-enumeration reference.
	InvExactAgree = "exact-agreement"
	// InvEpsBound: every randomized estimate lands within its reported
	// (possibly honestly widened) eps of the exact value.
	InvEpsBound = "eps-bound"
	// InvTypedErrors: every failure under fault is a typed taxonomy
	// error or carries the injected sentinel; service error bodies
	// carry a failure kind.
	InvTypedErrors = "typed-errors"
	// InvResume: a run interrupted by budget (with disk faults armed on
	// the snapshot store) and resumed is bit-identical to an
	// uninterrupted run with the same seed.
	InvResume = "resume-bit-identical"
	// InvJobs: durable jobs are conserved across drains, restarts, and
	// crash-window journal rewinds — none lost, none double-finalized,
	// resubmits idempotent, resumed results equal the uninterrupted
	// reference.
	InvJobs = "jobs-durable"
	// InvBreaker: circuit breakers tripped by injected crashes re-close
	// once the faults clear.
	InvBreaker = "breaker-reclose"
	// InvGoroutines: no goroutine outlives the campaign.
	InvGoroutines = "goroutine-leaks"
	// InvTmpFiles: no checkpoint temp file survives the campaign.
	InvTmpFiles = "ckpt-tmp-files"
	// InvCluster: a coordinator-merged estimate is bit-identical to the
	// single-node lane-split run — across replica counts, after mid-run
	// replica kills and reassignment, across coordinator restarts, and
	// with sub-jobs conserved (one durable job per lane range, reruns
	// re-attach). Lane-quota conservation rides along: the merge rejects
	// any aggregate set whose quotas disagree with the seeded plan.
	InvCluster = "cluster-bit-identity"
	// InvClusterResume: a fan-out that resumes a lane range from a
	// shipped checkpoint — after a mid-run replica kill, a corrupted
	// shipped frame, a torn journal write, or a coordinator crash and
	// journal recovery — still answers byte-for-byte what an unkilled
	// single-node run answers. A rejected frame degrades to a clean
	// restart (resume-rejected in the trail), never an error or a wrong
	// estimate.
	InvClusterResume = "cluster-resume-bit-identity"
	// InvClusterWork: recovery is work-conserving. After a replica kill
	// the survivor resumes from a shipped sequence number S > 0 that is
	// a true prefix of the dead replica's on-disk progress P, with the
	// waste P - S bounded by a few shipping intervals; after a
	// coordinator crash, recovery re-attaches to the journaled sub-jobs
	// instead of submitting duplicates.
	InvClusterWork = "cluster-work-conservation"
	// InvClusterAudit: a sampled cross-replica audit catches a corrupted
	// lane-range result — the perturbed aggregates never reach a served
	// estimate. Either the range is repaired from a majority and the
	// merged answer stays bit-identical to the single-node reference, or
	// the fan-out is refused with an audit error; a silently wrong
	// estimate is the one forbidden outcome. Audits surviving an armed
	// cluster/audit fault (falling to another candidate or skipping
	// without a false quarantine) ride along.
	InvClusterAudit = "cluster-audit-detects"
	// InvClusterQuarantine: a persistently lying replica converges to
	// quarantined — drained from fan-outs and proxying — while the
	// coordinator keeps serving estimates bit-identical to the
	// single-node reference from the honest survivors, with the audit
	// evidence recorded in both the cluster trail and the fan-out
	// journal.
	InvClusterQuarantine = "cluster-quarantine-converges"
	// InvStoreRecovery: a paged store hit by a write-path fault
	// (journal tear, crash window, torn page write-back) recovers on
	// reopen to exactly the pre-batch or post-batch byte image — never a
	// torn in-between — and the recovered database loads and verifies.
	InvStoreRecovery = "store-recovery"
	// InvStoreCorrupt: a bit flip on the store read path surfaces as a
	// typed ErrCorruptPage, and once the fault clears the same file
	// yields an estimate bit-identical to the in-memory reference —
	// corruption is detected, never silently folded into an answer.
	InvStoreCorrupt = "store-corruption-detected"
	// InvCoverage: every scheduled site actually fired at least once.
	InvCoverage = "site-coverage"
)

// InvariantNames lists every invariant the campaign checks, in report
// order.
func InvariantNames() []string {
	return []string{
		InvExactAgree, InvEpsBound, InvTypedErrors, InvResume,
		InvJobs, InvBreaker, InvCluster, InvClusterResume, InvClusterWork,
		InvClusterAudit, InvClusterQuarantine,
		InvStoreRecovery, InvStoreCorrupt,
		InvGoroutines, InvTmpFiles, InvCoverage,
	}
}

// InvariantStat tallies one invariant across the campaign.
type InvariantStat struct {
	// Checks is the number of times the invariant was evaluated.
	Checks int64 `json:"checks"`
	// Failures counts evaluations that failed.
	Failures int64 `json:"failures"`
	// Examples holds the first few failure messages.
	Examples []string `json:"examples,omitempty"`
}

// Report is the campaign verdict, serialized by cmd/qrelsoak.
type Report struct {
	Seed int64 `json:"seed"`
	// Steps is the planned step count; StepsRun how many executed
	// before the Duration cap (equal when uncapped).
	Steps    int `json:"steps"`
	StepsRun int `json:"steps_run"`
	// ScheduleHash fingerprints the planned fault schedule; equal seeds
	// must produce equal hashes.
	ScheduleHash string `json:"schedule_hash"`
	// Scheduled lists the sites the executed steps armed.
	Scheduled []string `json:"scheduled_sites"`
	// Invariants tallies each invariant; Verdicts is its pass/fail
	// projection (true = no failures), the deterministic part of the
	// reproducibility contract.
	Invariants map[string]*InvariantStat `json:"invariants"`
	Verdicts   map[string]bool           `json:"verdicts"`
	// Sites is the per-site hit/fire coverage accumulated by the
	// faultinject counters.
	Sites map[string]faultinject.SiteCount `json:"sites"`
	// Passed reports that every invariant held.
	Passed    bool  `json:"passed"`
	ElapsedMS int64 `json:"elapsed_ms"`
}
