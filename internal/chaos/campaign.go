package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/big"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/server"
	"qrel/internal/server/client"
	"qrel/internal/store"
	"qrel/internal/testutil"
	"qrel/internal/unreliable"
	"qrel/internal/workload"
)

// errInjected is the sentinel wrapped into every injected error; a
// failure carrying it is an accepted fault outcome alongside the typed
// taxonomy.
var errInjected = errors.New("chaos: injected fault")

// campaignEngines is the differential-oracle panel: every selectable
// engine, all computing (or approximating) the same reliability.
var campaignEngines = []core.Engine{
	core.EngineQFree,
	core.EngineSafePlan,
	core.EngineWorldEnum,
	core.EngineLineageBDD,
	core.EngineLineageKL,
	core.EngineLineageKL53,
	core.EngineMonteCarlo,
	core.EngineMCDirect,
	core.EngineMCRare,
}

// Oracle accuracy for core-phase runs. Delta is tiny so that "every
// randomized estimate within eps" is a deterministic verdict in
// practice: the per-check violation probability is 1e-6, negligible
// across a whole campaign, while Hoeffding keeps sample counts small.
const (
	oracleEps   = 0.12
	oracleDelta = 1e-6
)

// mcSampleCap bounds the Theorem 5.12 relative-error estimator, whose
// sample complexity scales with 1/H and can reach tens of millions of
// draws on low-error instances. At the cap it degrades honestly —
// Degraded=true with a widened eps the oracle still holds it to — so
// the campaign exercises the degradation contract instead of spending
// minutes per step on one engine.
const mcSampleCap = 400_000

// budgetFor returns the per-engine sample budget for oracle runs.
func budgetFor(e core.Engine) core.Budget {
	if e == core.EngineMonteCarlo {
		return core.Budget{MaxSamples: mcSampleCap}
	}
	return core.Budget{}
}

// campaign is the executor state for one Run.
type campaign struct {
	cfg  Config
	plan *Plan
	rep  *Report
}

func (c *campaign) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// check evaluates one invariant instance, tallying it in the report.
func (c *campaign) check(inv string, ok bool, format string, args ...any) {
	s := c.rep.Invariants[inv]
	s.Checks++
	if ok {
		return
	}
	s.Failures++
	msg := fmt.Sprintf(format, args...)
	if len(s.Examples) < 5 {
		s.Examples = append(s.Examples, msg)
	}
	c.logf("FAIL %s: %s", inv, msg)
}

// Run executes one campaign: plan from the seed, drive the workload,
// check invariants, and return the report. The returned error covers
// only configuration and planning problems; invariant failures land in
// Report.Passed / Report.Invariants.
//
// Run arms the process-global fault registry; never run two campaigns
// (or a campaign and fault-injecting tests) concurrently.
func Run(cfg Config) (*Report, error) {
	if cfg.Dir == "" {
		return nil, errors.New("chaos: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("chaos: creating scratch dir: %w", err)
	}
	plan, err := PlanCampaign(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:         cfg.Seed,
		Steps:        len(plan.Steps),
		ScheduleHash: plan.Hash(),
		Invariants:   map[string]*InvariantStat{},
	}
	for _, name := range InvariantNames() {
		rep.Invariants[name] = &InvariantStat{}
	}
	c := &campaign{cfg: cfg, plan: plan, rep: rep}

	faultinject.Reset()
	faultinject.ResetCounters()
	faultinject.SetCounting(true)
	defer func() {
		faultinject.Reset()
		faultinject.SetCounting(false)
	}()
	baseline := testutil.Snapshot()
	start := time.Now()

	ran := 0
	for i := range plan.Steps {
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			c.logf("duration cap reached after %d/%d steps", ran, len(plan.Steps))
			break
		}
		st := &plan.Steps[i]
		c.logf("step %d: n=%d uncertain=%d query=%q workers=%d faults=%d resume=%v service=%v",
			st.Index, st.N, st.Uncertain, st.Query, st.Workers,
			len(st.EngineFaults)+len(st.CkptFaults)+len(st.ServerFaults), st.Resume, st.Service)
		c.runStep(st)
		ran++
	}
	faultinject.Reset()
	rep.StepsRun = ran

	// Campaign-end invariants: coverage over the sites the executed
	// steps scheduled, goroutine leaks, stray checkpoint temp files.
	rep.Scheduled = scheduledSites(plan.Steps[:ran])
	counters := faultinject.Counters()
	for _, site := range rep.Scheduled {
		cnt := counters[site]
		c.check(InvCoverage, cnt.Fires > 0,
			"site %s was scheduled but never fired (hits=%d) — the workload never reached it under fault", site, cnt.Hits)
	}
	http.DefaultClient.CloseIdleConnections()
	leaked := testutil.LeakedSince(baseline, 2*time.Second)
	c.check(InvGoroutines, len(leaked) == 0,
		"%d goroutine(s) outlived the campaign; first stack:\n%s", len(leaked), firstOf(leaked))
	c.checkNoTmpFiles(cfg.Dir, "campaign end")

	rep.Sites = counters
	rep.Verdicts = map[string]bool{}
	rep.Passed = true
	for name, s := range rep.Invariants {
		ok := s.Failures == 0
		rep.Verdicts[name] = ok
		if !ok {
			rep.Passed = false
		}
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, nil
}

func firstOf(stacks []string) string {
	if len(stacks) == 0 {
		return ""
	}
	return stacks[0]
}

func scheduledSites(steps []Step) []string {
	seen := map[string]bool{}
	for i := range steps {
		for _, fs := range [][]PlannedFault{steps[i].EngineFaults, steps[i].CkptFaults, steps[i].ServerFaults, steps[i].ClusterFaults, steps[i].StoreFaults} {
			for _, f := range fs {
				seen[f.Site] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// armFaults arms one phase's planned faults on the global registry.
func (c *campaign) armFaults(fs []PlannedFault) {
	for _, pf := range fs {
		var ft faultinject.Fault
		ft.Times = pf.Times
		switch pf.Kind {
		case KindErr:
			ft.Err = fmt.Errorf("%w at %s", errInjected, pf.Site)
		case KindPanic:
			ft.Panic = "chaos-injected"
		case KindDelay:
			ft.Delay = time.Duration(pf.DelayMS) * time.Millisecond
		case KindProbErr:
			ft.Err = fmt.Errorf("%w at %s", errInjected, pf.Site)
			ft.Prob = pf.Prob
			ft.Seed = pf.Seed
		}
		faultinject.Enable(pf.Site, ft)
	}
}

// acceptableErr reports whether a failure under fault is a legitimate
// outcome: the typed taxonomy, the injected sentinel, or the
// checkpoint corruption errors the disk faults provoke.
func acceptableErr(err error) bool {
	return errors.Is(err, errInjected) ||
		errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, core.ErrBudgetExceeded) ||
		errors.Is(err, core.ErrInfeasible) ||
		errors.Is(err, core.ErrEngineFailed) ||
		errors.Is(err, core.ErrCheckpointMismatch) ||
		errors.Is(err, checkpoint.ErrCorruptCheckpoint) ||
		errors.Is(err, store.ErrCorruptPage)
}

// runStep executes one planned step: clean differential phase, fault
// phase, breaker recovery, and the optional resume and service phases.
func (c *campaign) runStep(st *Step) {
	ctx := context.Background()
	faultinject.Reset()
	rng := mc.NewRand(st.Seed)
	db := workload.RandomUDB(rng, st.N, st.Uncertain)
	f, err := logic.Parse(st.Query, db.A.Voc)
	if err != nil {
		c.check(InvExactAgree, false, "step %d: parsing %q: %v", st.Index, st.Query, err)
		return
	}
	opts := core.Options{Eps: oracleEps, Delta: oracleDelta, Seed: st.Seed, Workers: st.Workers}
	phase := time.Now()
	lap := func(name string) {
		c.logf("step %d: %s phase took %v", st.Index, name, time.Since(phase))
		phase = time.Now()
	}

	// Clean phase: the exact world-enumeration reference (always
	// feasible — Uncertain stays under the enumeration cap), then every
	// engine without faults. Engines that succeed cleanly form the
	// step's applicable set; only they are held to invariants under
	// fault (the others fail on fragment mismatch regardless).
	ref, err := core.ReliabilityWith(ctx, core.EngineWorldEnum, db, f, opts)
	if err != nil || ref.R == nil {
		c.check(InvExactAgree, false, "step %d: exact reference (world-enum) failed: %v", st.Index, err)
		return
	}
	applicable := map[core.Engine]bool{core.EngineWorldEnum: true}
	for _, e := range campaignEngines {
		if e == core.EngineWorldEnum {
			continue
		}
		eopts := opts
		eopts.Budget = budgetFor(e)
		res, err := core.ReliabilityWith(ctx, e, db, f, eopts)
		if err != nil {
			continue
		}
		applicable[e] = true
		c.oracle(st, string(e)+" (clean)", res, ref)
	}

	lap("clean")

	// Fault phase: arm the schedule, re-run every engine (including
	// inapplicable ones — their entry sites still fire) plus the auto
	// ladder, all sharing one breaker set so injected crashes trip it.
	br := server.NewBreakers(server.BreakerConfig{Threshold: 2, Cooldown: 5 * time.Millisecond})
	fopts := opts
	fopts.Breaker = br
	c.armFaults(st.EngineFaults)
	for _, e := range campaignEngines {
		eopts := fopts
		eopts.Budget = budgetFor(e)
		res, err := core.ReliabilityWith(ctx, e, db, f, eopts)
		if err != nil {
			if applicable[e] {
				c.check(InvTypedErrors, acceptableErr(err),
					"step %d: %s under fault: error outside the taxonomy: %v", st.Index, e, err)
			}
			continue
		}
		if applicable[e] {
			c.oracle(st, string(e)+" (fault)", res, ref)
		}
	}
	for i := 0; i < 3; i++ {
		res, err := core.ReliabilityWith(ctx, core.EngineAuto, db, f, fopts)
		if err != nil {
			c.check(InvTypedErrors, acceptableErr(err),
				"step %d: auto dispatch under fault: error outside the taxonomy: %v", st.Index, err)
			continue
		}
		c.oracle(st, "auto (fault)", res, ref)
	}
	faultinject.Reset()
	c.coveragePass(ctx, st, db, f, opts)
	lap("fault")
	c.checkBreakers(ctx, st, br, db, f, opts)
	lap("breaker")

	if st.Resume {
		c.resumePhase(ctx, st, db, f, opts)
		lap("resume")
	}
	if st.Service {
		c.servicePhase(ctx, st, db, ref)
		lap("service")
	}
	if st.Cluster {
		c.clusterPhase(ctx, st, db)
		lap("cluster")
	}
	if st.Store {
		c.storePhase(ctx, st, db, f, opts)
		lap("store")
	}
	faultinject.Reset()
}

// coveragePass guarantees that scheduled worker-site faults fire. In
// the all-armed fault phase a worker site can be shadowed by a
// co-armed entry fault on the only engine that reaches it — an
// injected world-enum error returns before any world worker spawns —
// so each such fault is re-armed alone and a reaching engine driven
// through it. Skipped once the campaign counters already show a fire.
func (c *campaign) coveragePass(ctx context.Context, st *Step, db *unreliable.DB, f logic.Formula, opts core.Options) {
	for _, pf := range st.EngineFaults {
		var reach core.Engine
		switch pf.Site {
		case faultinject.SiteWorldWorker:
			reach = core.EngineWorldEnum
		case faultinject.SiteLaneWorker:
			reach = core.EngineMCDirect
		case faultinject.SiteAnswerSet:
			reach = core.EngineWorldEnum
		default:
			continue
		}
		if faultinject.Counters()[pf.Site].Fires > 0 {
			continue
		}
		faultinject.Reset()
		c.armFaults([]PlannedFault{pf})
		copts := opts
		copts.Workers = 2 // the worker paths only exist in parallel mode
		if _, err := core.ReliabilityWith(ctx, reach, db, f, copts); err != nil {
			c.check(InvTypedErrors, acceptableErr(err),
				"step %d: %s coverage run: error outside the taxonomy: %v", st.Index, reach, err)
		}
		faultinject.Reset()
	}
}

// oracle holds one successful result against the exact reference:
// exact guarantees must match bit-for-bit, randomized ones must land
// within their reported (possibly honestly widened, possibly
// EpsSkew-shrunk) eps.
func (c *campaign) oracle(st *Step, label string, res, ref core.Result) {
	if res.Guarantee == core.Exact {
		ok := res.R != nil && res.H != nil && res.R.Cmp(ref.R) == 0 && res.H.Cmp(ref.H) == 0
		c.check(InvExactAgree, ok,
			"step %d: %s: exact result R=%s disagrees with reference R=%s", st.Index, label, ratStr(res.R), ratStr(ref.R))
		return
	}
	allowed := res.Eps
	if c.cfg.EpsSkew > 0 {
		allowed *= c.cfg.EpsSkew
	}
	refR, _ := ref.R.Float64()
	refH, _ := ref.H.Float64()
	var dist, bound float64
	if res.Guarantee == core.RelativeError {
		dist = math.Abs(res.HFloat - refH)
		bound = allowed*refH + 1e-12
	} else {
		dist = math.Abs(res.RFloat - refR)
		bound = allowed + 1e-12
	}
	c.check(InvEpsBound, dist <= bound,
		"step %d: %s: |estimate-truth| = %.3g exceeds the allowed eps %.3g (guarantee %s, degraded=%v)",
		st.Index, label, dist, bound, res.Guarantee, res.Degraded)
}

func ratStr(r *big.Rat) string {
	if r == nil {
		return "<nil>"
	}
	return r.RatString()
}

// checkBreakers verifies that every rung tripped during the fault
// phase re-closes after the faults clear: probe each engine directly
// through the same breaker set until the snapshot shows all-closed.
func (c *campaign) checkBreakers(ctx context.Context, st *Step, br *server.Breakers, db *unreliable.DB, f logic.Formula, opts core.Options) {
	popts := opts
	popts.Breaker = br
	deadline := time.Now().Add(3 * time.Second)
	for {
		open := openRungs(br)
		if len(open) == 0 {
			c.check(InvBreaker, true, "")
			return
		}
		if time.Now().After(deadline) {
			c.check(InvBreaker, false,
				"step %d: breakers still not closed after faults cleared: %s", st.Index, strings.Join(open, ", "))
			return
		}
		for _, e := range campaignEngines {
			_, _ = core.ReliabilityWith(ctx, e, db, f, popts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func openRungs(br *server.Breakers) []string {
	var out []string
	for name, s := range br.Snapshot() {
		if s.State != "closed" {
			out = append(out, name+"="+s.State)
		}
	}
	sort.Strings(out)
	return out
}

// resumePhase checks the checkpoint bit-identity contract under disk
// faults: an uninterrupted run, then a budget-interrupted run saving
// snapshots with the step's ckpt faults armed (torn writes, bit flips,
// crash windows, failed renames), then a resumed run with the faults
// cleared. The resumed run must reproduce the uninterrupted estimate
// bit-for-bit no matter which snapshots the faults destroyed, and the
// store directory must hold no temp files afterwards.
func (c *campaign) resumePhase(ctx context.Context, st *Step, db *unreliable.DB, f logic.Formula, opts core.Options) {
	full, err := core.ReliabilityWith(ctx, core.EngineMCDirect, db, f, opts)
	if err != nil {
		c.check(InvResume, false, "step %d: uninterrupted mc-direct run failed: %v", st.Index, err)
		return
	}
	if full.Samples < 8 {
		return // nothing to interrupt
	}
	dir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index), "ckpt")
	every := full.Samples / 8
	if every < 1 {
		every = 1
	}

	store1, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		c.check(InvResume, false, "step %d: opening snapshot store: %v", st.Index, err)
		return
	}
	c.armFaults(st.CkptFaults)
	interrupted := opts
	interrupted.Budget = core.Budget{MaxSamples: full.Samples / 2}
	interrupted.Checkpoint = &core.CheckpointConfig{Store: store1, Every: every}
	if _, err := core.ReliabilityWith(ctx, core.EngineMCDirect, db, f, interrupted); err != nil {
		// A crash-window or rename fault aborting the run mid-save is a
		// legitimate interruption — but it must stay typed/injected.
		c.check(InvTypedErrors, acceptableErr(err),
			"step %d: interrupted run under disk fault: error outside the taxonomy: %v", st.Index, err)
	}
	faultinject.Reset()

	store2, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		c.check(InvResume, false, "step %d: reopening snapshot store: %v", st.Index, err)
		return
	}
	resumed := opts
	resumed.Checkpoint = &core.CheckpointConfig{Store: store2, Every: every, Resume: true}
	res, err := core.ReliabilityWith(ctx, core.EngineMCDirect, db, f, resumed)
	ok := err == nil && !res.Degraded && res.Samples == full.Samples &&
		res.HFloat == full.HFloat && res.RFloat == full.RFloat
	c.check(InvResume, ok,
		"step %d: resumed run (err=%v, samples=%d, h=%v, r=%v, degraded=%v) is not bit-identical to the uninterrupted run (samples=%d, h=%v, r=%v)",
		st.Index, err, res.Samples, res.HFloat, res.RFloat, res.Degraded, full.Samples, full.HFloat, full.RFloat)
	// The resumed run's completion snapshot prunes crash-window
	// orphans; nothing transient may survive it.
	c.checkNoTmpFiles(dir, fmt.Sprintf("step %d resume", st.Index))
}

// checkNoTmpFiles scans a directory tree for leftover checkpoint temp
// files.
func (c *campaign) checkNoTmpFiles(root, when string) {
	var stray []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	c.check(InvTmpFiles, len(stray) == 0, "%s: leftover temp file(s): %s", when, strings.Join(stray, ", "))
}

// servicePhase drives a live in-process qreld: a clean reference job
// on its own server, then a chaos server that takes plain requests
// under serving-layer faults, accepts durable jobs, gets drained
// mid-flight (or has a completed job's journal rewound into the crash
// window), restarts on the same directory, and must recover every job
// to the reference result with none lost or double-finalized.
func (c *campaign) servicePhase(ctx context.Context, st *Step, db *unreliable.DB, ref core.Result) {
	stepDir := filepath.Join(c.cfg.Dir, fmt.Sprintf("step-%03d", st.Index))
	jobReq := server.Request{
		DB: "g", Query: st.Query, Engine: string(core.EngineMCDirect),
		Eps: 0.03, Delta: oracleDelta, Seed: st.Seed + 1, Workers: st.Workers,
		IdempotencyKey: fmt.Sprintf("chaos-%d-%d-a", c.cfg.Seed, st.Index),
	}
	refJob := c.runRefJob(ctx, st, db, filepath.Join(stepDir, "jobs-ref"), jobReq)

	srvCfg := server.Config{
		Workers: 2, QueueDepth: 16,
		DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
		CheckpointDir: filepath.Join(stepDir, "jobs"), CheckpointEvery: 2000,
	}
	s1 := server.New(srvCfg)
	s1.Register("g", db)
	ts1 := httptest.NewServer(s1.Handler())

	// Serving-fault sub-phase: plain reliability requests while the
	// step's server faults are armed. Every response must be a valid
	// result (held to the oracle) or a kinded error body.
	c.armFaults(st.ServerFaults)
	for i := 0; i < 4; i++ {
		rq := server.Request{
			DB: "g", Query: st.Query, Eps: 0.1, Delta: oracleDelta,
			Seed: st.Seed + int64(10+i), Workers: st.Workers,
		}
		c.checkServiceResponse(st, ts1.URL, rq, ref)
	}
	faultinject.Reset()

	// Durable jobs: one keyed job (resubmitted once — must dedupe), one
	// sibling job.
	cl := client.New(ts1.URL)
	ja, err := cl.SubmitJob(ctx, jobReq)
	if err != nil {
		c.check(InvJobs, false, "step %d: job submit failed: %v", st.Index, err)
		ts1.Close()
		s1.Close()
		return
	}
	jaDup, err := cl.SubmitJob(ctx, jobReq)
	c.check(InvJobs, err == nil && jaDup != nil && jaDup.ID == ja.ID,
		"step %d: idempotent resubmit returned a different job (want %s, got %+v, err=%v)", st.Index, ja.ID, jaDup, err)
	reqB := jobReq
	reqB.Seed = st.Seed + 2
	reqB.IdempotencyKey = fmt.Sprintf("chaos-%d-%d-b", c.cfg.Seed, st.Index)
	jb, err := cl.SubmitJob(ctx, reqB)
	if err != nil {
		c.check(InvJobs, false, "step %d: second job submit failed: %v", st.Index, err)
		ts1.Close()
		s1.Close()
		return
	}

	if st.Kill {
		// Crash-window variant: let the keyed job finish, then rewind
		// its journal to "running" — the window between the completion
		// snapshot and the journal update. Recovery must finalize it by
		// replaying the store, not by resampling.
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		fin, err := cl.WaitJob(wctx, ja.ID, 2*time.Millisecond)
		cancel()
		if err != nil || fin.State != server.JobDone {
			c.check(InvJobs, false, "step %d: pre-crash job did not finish: %+v err=%v", st.Index, fin, err)
		} else if err := rewindJournal(srvCfg.CheckpointDir, ja.ID); err != nil {
			c.check(InvJobs, false, "step %d: rewinding journal: %v", st.Index, err)
		}
		_ = s1.Drain(ctx) // graceful: lets the sibling job finish
	} else {
		// Mid-flight drain: a pre-canceled deadline cancels in-flight
		// jobs, which must suspend (stay "running") rather than fail.
		time.Sleep(15 * time.Millisecond)
		canceled, cancel := context.WithCancel(ctx)
		cancel()
		_ = s1.Drain(canceled)
	}
	ts1.Close()

	// Restart on the same directory: recovery re-admits every
	// unfinished journal and each job must reach done.
	s2 := server.New(srvCfg)
	s2.Register("g", db)
	ts2 := httptest.NewServer(s2.Handler())
	if _, err := s2.RecoverJobs(); err != nil {
		c.check(InvJobs, false, "step %d: RecoverJobs: %v", st.Index, err)
	}
	cl2 := client.New(ts2.URL)
	finals := map[string]*server.JobStatus{}
	for _, id := range []string{ja.ID, jb.ID} {
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		fin, err := cl2.WaitJob(wctx, id, 2*time.Millisecond)
		cancel()
		ok := err == nil && fin != nil && fin.State == server.JobDone && fin.Result != nil && !fin.Result.Degraded
		c.check(InvJobs, ok, "step %d: job %s after restart: %+v err=%v (want done, full accuracy)", st.Index, id, fin, err)
		if ok {
			finals[id] = fin
		}
	}
	if refJob != nil && finals[ja.ID] != nil {
		got, want := finals[ja.ID].Result, refJob.Result
		c.check(InvJobs, got.R == want.R && got.H == want.H && got.Samples == want.Samples,
			"step %d: recovered job (r=%v h=%v n=%d) diverged from the uninterrupted reference (r=%v h=%v n=%d)",
			st.Index, got.R, got.H, got.Samples, want.R, want.H, want.Samples)
	}
	ts2.Close()
	s2.Close()
}

// runRefJob runs jobReq to completion on a clean throwaway server and
// returns its final status (nil after a counted failure).
func (c *campaign) runRefJob(ctx context.Context, st *Step, db *unreliable.DB, dir string, req server.Request) *server.JobStatus {
	srv := server.New(server.Config{
		Workers: 2, DefaultTimeout: 60 * time.Second, MaxTimeout: 120 * time.Second,
		CheckpointDir: dir, CheckpointEvery: 2000,
	})
	srv.Register("g", db)
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	cl := client.New(ts.URL)
	jst, err := cl.SubmitJob(ctx, req)
	if err != nil {
		c.check(InvJobs, false, "step %d: reference job submit failed: %v", st.Index, err)
		return nil
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	fin, err := cl.WaitJob(wctx, jst.ID, 2*time.Millisecond)
	if err != nil || fin.State != server.JobDone || fin.Result == nil {
		c.check(InvJobs, false, "step %d: reference job did not finish: %+v err=%v", st.Index, fin, err)
		return nil
	}
	return fin
}

// checkServiceResponse posts one reliability request and holds the
// response to the service-level contract: 200 with an oracle-valid
// body, or an error body carrying a failure kind.
func (c *campaign) checkServiceResponse(st *Step, url string, rq server.Request, ref core.Result) {
	body, err := json.Marshal(rq)
	if err != nil {
		c.check(InvTypedErrors, false, "step %d: marshaling request: %v", st.Index, err)
		return
	}
	resp, err := http.Post(url+"/v1/reliability", "application/json", bytes.NewReader(body))
	if err != nil {
		c.check(InvTypedErrors, false, "step %d: service transport failed under fault: %v", st.Index, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ec server.ErrorResponse
		ok := json.NewDecoder(resp.Body).Decode(&ec) == nil && ec.Kind != ""
		c.check(InvTypedErrors, ok,
			"step %d: service error response without a failure kind (status %d)", st.Index, resp.StatusCode)
		return
	}
	var out server.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		c.check(InvTypedErrors, false, "step %d: undecodable 200 body: %v", st.Index, err)
		return
	}
	if out.RExact != "" {
		r, ok := new(big.Rat).SetString(out.RExact)
		c.check(InvExactAgree, ok && r.Cmp(ref.R) == 0,
			"step %d: service exact result %s disagrees with reference %s", st.Index, out.RExact, ratStr(ref.R))
		return
	}
	allowed := out.Eps
	if c.cfg.EpsSkew > 0 {
		allowed *= c.cfg.EpsSkew
	}
	refR, _ := ref.R.Float64()
	dist := math.Abs(out.R - refR)
	c.check(InvEpsBound, dist <= allowed+1e-12,
		"step %d: service estimate |r-truth| = %.3g exceeds the allowed eps %.3g (engine %s)",
		st.Index, dist, allowed+1e-12, out.Engine)
}

// rewindJournal rewrites a finished job's journal back to "running"
// with no result — the on-disk state a crash between the completion
// snapshot and the journal update leaves behind.
func rewindJournal(checkpointDir, id string) error {
	path := filepath.Join(checkpointDir, id, "job.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	st.State = server.JobRunning
	st.Result = nil
	out, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o666)
}
