// Package reductions implements the paper's two hardness constructions
// as executable code, together with the independent exact solvers
// needed to validate them:
//
//   - Proposition 3.2: the reduction from #MONOTONE-2SAT (Valiant) to
//     the expected error of a fixed conjunctive query, plus exact
//     monotone-2SAT counters (brute force and independent-set
//     branching);
//   - Lemma 5.9: the reduction from graph 4-colourability to the
//     complement of the absolute reliability problem of a fixed
//     existential query, plus a backtracking k-colouring solver.
package reductions

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj []map[int]struct{}
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = map[int]struct{}{}
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are allowed
// (they make the graph non-colourable for any k).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return fmt.Errorf("reductions: edge (%d,%d) outside vertex range [0,%d)", u, v, g.N)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Edges returns each undirected edge once (u ≤ v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.N; u++ {
		for v := range g.adj[u] {
			if u <= v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Edges()) }

// Degree returns the degree of v (self-loops count once).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// RandomGraph returns a G(n, p) random graph drawn with rng.
func RandomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// KColoring searches for a proper k-colouring by backtracking over the
// vertices in descending-degree order. It returns the colouring (a
// colour per vertex) and true on success.
func (g *Graph) KColoring(k int) ([]int, bool) {
	if k < 0 {
		return nil, false
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) > g.Degree(order[j]) })
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var assign func(int) bool
	assign = func(pos int) bool {
		if pos == g.N {
			return true
		}
		v := order[pos]
		if g.HasEdge(v, v) {
			return false // self-loop is never properly colourable
		}
		used := make([]bool, k)
		for u := range g.adj[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		for c := 0; c < k; c++ {
			if used[c] {
				continue
			}
			colors[v] = c
			if assign(pos + 1) {
				return true
			}
			colors[v] = -1
		}
		return false
	}
	if !assign(0) {
		return nil, false
	}
	return colors, true
}

// IsProperColoring verifies that colors is a proper colouring of g.
func (g *Graph) IsProperColoring(colors []int) bool {
	if len(colors) != g.N {
		return false
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return false
		}
	}
	return true
}

// MaxISVertices caps the independent-set counter's input size (bitmask
// representation).
const MaxISVertices = 62

// CountIndependentSets counts the independent sets of g (including the
// empty set) with the classic branching recursion
// IS(G) = IS(G − v) + IS(G − N[v]) on a maximum-degree vertex v.
// Vertices with self-loops can never be selected. Exponential in the
// worst case — the problem is #P-complete — but fast on sparse graphs.
func CountIndependentSets(g *Graph) (*big.Int, error) {
	if g.N > MaxISVertices {
		return nil, fmt.Errorf("reductions: %d vertices exceeds independent-set counter limit %d", g.N, MaxISVertices)
	}
	// Bitmask adjacency.
	adj := make([]uint64, g.N)
	selfloop := uint64(0)
	for u := 0; u < g.N; u++ {
		for v := range g.adj[u] {
			if u == v {
				selfloop |= 1 << uint(u)
			} else {
				adj[u] |= 1 << uint(v)
			}
		}
	}
	memo := map[uint64]*big.Int{}
	var count func(mask uint64) *big.Int
	count = func(mask uint64) *big.Int {
		if mask == 0 {
			return big.NewInt(1)
		}
		if r, ok := memo[mask]; ok {
			return r
		}
		// Pick the max-degree vertex within the mask.
		best, bestDeg := -1, -1
		for v := 0; v < g.N; v++ {
			if mask&(1<<uint(v)) == 0 {
				continue
			}
			deg := popcount(adj[v] & mask)
			if deg > bestDeg {
				best, bestDeg = v, deg
			}
		}
		v := uint(best)
		// Exclude v.
		r := new(big.Int).Set(count(mask &^ (1 << v)))
		// Include v (unless self-looped): remove v and its neighbours.
		if selfloop&(1<<v) == 0 {
			r.Add(r, count(mask&^(1<<v)&^adj[best]))
		}
		memo[mask] = r
		return r
	}
	full := uint64(0)
	for v := 0; v < g.N; v++ {
		full |= 1 << uint(v)
	}
	return count(full), nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// PathIndependentSets returns the number of independent sets of the
// path graph on n vertices: the Fibonacci number F(n+2). Used as a
// closed-form cross-check for the counter.
func PathIndependentSets(n int) *big.Int {
	a, b := big.NewInt(1), big.NewInt(1) // F(1), F(2)
	for i := 0; i < n; i++ {
		a, b = b, new(big.Int).Add(a, b)
	}
	return b // F(n+2)
}
