package reductions

import (
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Monotone2CNF is a propositional formula ⋀ (Y_i ∨ Z_i) without
// negations: the input of #MONOTONE-2SAT, the #P-complete problem
// (Valiant) that Proposition 3.2 reduces to query reliability. Clauses
// are pairs of variable indices in [0, NumVars); the two indices may
// coincide (a unit clause).
type Monotone2CNF struct {
	NumVars int
	Clauses [][2]int
}

// Validate checks the variable indices.
func (c Monotone2CNF) Validate() error {
	for i, cl := range c.Clauses {
		if cl[0] < 0 || cl[0] >= c.NumVars || cl[1] < 0 || cl[1] >= c.NumVars {
			return fmt.Errorf("reductions: clause %d = %v outside variable range [0,%d)", i, cl, c.NumVars)
		}
	}
	return nil
}

// Eval reports whether the assignment satisfies the formula.
func (c Monotone2CNF) Eval(a []bool) bool {
	for _, cl := range c.Clauses {
		if !a[cl[0]] && !a[cl[1]] {
			return false
		}
	}
	return true
}

// CountSatBruteForce counts satisfying assignments by enumeration;
// limited to maxVars variables.
func (c Monotone2CNF) CountSatBruteForce(maxVars int) (*big.Int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.NumVars > maxVars || c.NumVars > 30 {
		return nil, fmt.Errorf("reductions: %d variables exceed brute-force budget %d", c.NumVars, maxVars)
	}
	count := new(big.Int)
	one := big.NewInt(1)
	a := make([]bool, c.NumVars)
	for m := uint64(0); m < uint64(1)<<uint(c.NumVars); m++ {
		for i := range a {
			a[i] = m&(1<<uint(i)) != 0
		}
		if c.Eval(a) {
			count.Add(count, one)
		}
	}
	return count, nil
}

// ClauseGraph returns the graph with one vertex per variable and one
// edge {Y_i, Z_i} per clause. An assignment satisfies the formula iff
// its set of FALSE variables is an independent set of this graph, so
// #SAT = #IS(ClauseGraph).
func (c Monotone2CNF) ClauseGraph() (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph(c.NumVars)
	for _, cl := range c.Clauses {
		g.MustAddEdge(cl[0], cl[1])
	}
	return g, nil
}

// CountSat counts satisfying assignments via the independent-set
// branching counter — the scalable exact algorithm used to validate the
// Proposition 3.2 reduction on instances too large for brute force.
func (c Monotone2CNF) CountSat() (*big.Int, error) {
	g, err := c.ClauseGraph()
	if err != nil {
		return nil, err
	}
	return CountIndependentSets(g)
}

// RandomMonotone2CNF draws a random instance with the given number of
// variables and clauses (uniform distinct variable pairs).
func RandomMonotone2CNF(rng *rand.Rand, numVars, numClauses int) Monotone2CNF {
	c := Monotone2CNF{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		y := rng.Intn(numVars)
		z := rng.Intn(numVars)
		for z == y && numVars > 1 {
			z = rng.Intn(numVars)
		}
		c.Clauses = append(c.Clauses, [2]int{y, z})
	}
	return c
}

// Mon2SatQuery is the fixed conjunctive query of Proposition 3.2:
// it expresses, on the structure (A, L, R, S) encoding a formula and an
// assignment, that the assignment does NOT satisfy the formula (both
// chosen literals of some clause are false).
const Mon2SatQuery = "exists x y z . L(x,y) & R(x,z) & S(y) & S(z)"

// Mon2SatInstance is the unreliable database built from a monotone
// 2-CNF by the Proposition 3.2 reduction.
type Mon2SatInstance struct {
	// DB encodes the formula with universe = clauses ∪ variables,
	// relations L, R (certain) and S = all variables, each S-atom with
	// error probability 1/2.
	DB *unreliable.DB
	// Query is the parsed Mon2SatQuery.
	Query logic.Formula
	// NumVars and NumClauses record the instance shape; VarElem maps
	// variable i to its universe element.
	NumVars, NumClauses int
	// VarElem maps variable index to universe element.
	VarElem func(i int) int
}

// BuildMon2SatInstance performs the Proposition 3.2 reduction: given a
// positive 2-CNF it constructs in polynomial time the unreliable
// database whose expected error under Mon2SatQuery is
// #SAT / 2^NumVars.
func BuildMon2SatInstance(c Monotone2CNF) (*Mon2SatInstance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	m := len(c.Clauses)
	n := c.NumVars
	voc := rel.MustVocabulary(
		rel.RelSym{Name: "L", Arity: 2},
		rel.RelSym{Name: "R", Arity: 2},
		rel.RelSym{Name: "S", Arity: 1},
	)
	s, err := rel.NewStructure(m+n, voc)
	if err != nil {
		return nil, err
	}
	varElem := func(i int) int { return m + i }
	for u, cl := range c.Clauses {
		s.MustAdd("L", u, varElem(cl[0]))
		s.MustAdd("R", u, varElem(cl[1]))
	}
	db := unreliable.New(s)
	half := big.NewRat(1, 2)
	for i := 0; i < n; i++ {
		// S holds every variable: the all-false assignment.
		s.MustAdd("S", varElem(i))
		if err := db.SetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{varElem(i)}}, half); err != nil {
			return nil, err
		}
	}
	return &Mon2SatInstance{
		DB:         db,
		Query:      logic.MustParse(Mon2SatQuery, nil),
		NumVars:    n,
		NumClauses: m,
		VarElem:    varElem,
	}, nil
}

// ExpectedCount converts an exact expected error H of the reduction
// instance into the #SAT count it encodes: #SAT = H · 2^NumVars.
func (inst *Mon2SatInstance) ExpectedCount(h *big.Rat) (*big.Int, error) {
	scaled := new(big.Rat).Mul(h, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(inst.NumVars))))
	if !scaled.IsInt() {
		return nil, fmt.Errorf("reductions: H·2^n = %v is not integral; reduction broken", scaled)
	}
	return new(big.Int).Set(scaled.Num()), nil
}
