package reductions

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/core"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge symmetry broken")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0] != [2]int{0, 1} || edges[1] != [2]int{1, 2} {
		t.Errorf("Edges = %v", edges)
	}
}

func TestKColoring(t *testing.T) {
	// Path: 2-colourable.
	path := NewGraph(4)
	path.MustAddEdge(0, 1)
	path.MustAddEdge(1, 2)
	path.MustAddEdge(2, 3)
	colors, ok := path.KColoring(2)
	if !ok || !path.IsProperColoring(colors) {
		t.Error("path not 2-coloured")
	}
	// Triangle: 3 but not 2.
	tri := NewGraph(3)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(2, 0)
	if _, ok := tri.KColoring(2); ok {
		t.Error("triangle 2-coloured")
	}
	if colors, ok := tri.KColoring(3); !ok || !tri.IsProperColoring(colors) {
		t.Error("triangle not 3-coloured")
	}
	// K5: 5 but not 4.
	k5 := NewGraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5.MustAddEdge(u, v)
		}
	}
	if _, ok := k5.KColoring(4); ok {
		t.Error("K5 4-coloured")
	}
	if _, ok := k5.KColoring(5); !ok {
		t.Error("K5 not 5-coloured")
	}
	// Self-loop: never colourable.
	loop := NewGraph(1)
	loop.MustAddEdge(0, 0)
	if _, ok := loop.KColoring(10); ok {
		t.Error("self-loop coloured")
	}
	// Edgeless: 1-colourable, and k = 0 works only for empty vertex set.
	empty := NewGraph(3)
	if _, ok := empty.KColoring(1); !ok {
		t.Error("edgeless graph not 1-coloured")
	}
	if _, ok := NewGraph(0).KColoring(0); !ok {
		t.Error("empty graph should be 0-colourable")
	}
	if _, ok := empty.KColoring(0); ok {
		t.Error("3 vertices coloured with 0 colours")
	}
}

func TestCountIndependentSetsPath(t *testing.T) {
	// Path graph: Fibonacci closed form.
	for n := 0; n <= 12; n++ {
		g := NewGraph(n)
		for i := 0; i+1 < n; i++ {
			g.MustAddEdge(i, i+1)
		}
		got, err := CountIndependentSets(g)
		if err != nil {
			t.Fatal(err)
		}
		want := PathIndependentSets(n)
		if got.Cmp(want) != 0 {
			t.Errorf("n=%d: IS count %v, want %v", n, got, want)
		}
	}
}

func TestCountIndependentSetsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(8)
		g := RandomGraph(rng, n, 0.4)
		got, err := CountIndependentSets(g)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		want := 0
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, e := range g.Edges() {
				if mask&(1<<e[0]) != 0 && mask&(1<<e[1]) != 0 {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		if got.Int64() != int64(want) {
			t.Fatalf("iter %d: IS %v, brute force %d", iter, got, want)
		}
	}
}

func TestCountIndependentSetsSelfLoop(t *testing.T) {
	g := NewGraph(2)
	g.MustAddEdge(0, 0)
	g.MustAddEdge(0, 1)
	// Vertex 0 can never be chosen: sets {} and {1}.
	got, err := CountIndependentSets(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 2 {
		t.Errorf("IS with self-loop = %v, want 2", got)
	}
	big := NewGraph(MaxISVertices + 1)
	if _, err := CountIndependentSets(big); err == nil {
		t.Error("oversized graph accepted")
	}
}

func TestMon2CNFCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(8)
		c := RandomMonotone2CNF(rng, n, 1+rng.Intn(2*n))
		bf, err := c.CountSatBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		is, err := c.CountSat()
		if err != nil {
			t.Fatal(err)
		}
		if bf.Cmp(is) != 0 {
			t.Fatalf("iter %d: brute force %v != IS counter %v for %+v", iter, bf, is, c)
		}
	}
}

func TestMon2CNFValidate(t *testing.T) {
	c := Monotone2CNF{NumVars: 2, Clauses: [][2]int{{0, 5}}}
	if err := c.Validate(); err == nil {
		t.Error("bad clause accepted")
	}
	if _, err := c.CountSatBruteForce(12); err == nil {
		t.Error("bad clause counted")
	}
	big := Monotone2CNF{NumVars: 40}
	if _, err := big.CountSatBruteForce(12); err == nil {
		t.Error("budget not enforced")
	}
}

func TestProposition32Reduction(t *testing.T) {
	// The heart of Proposition 3.2: H_psi(D)·2^n = #SAT, verified with
	// two independent H engines and two independent counters.
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 12; iter++ {
		n := 2 + rng.Intn(5)
		c := RandomMonotone2CNF(rng, n, 1+rng.Intn(6))
		inst, err := BuildMon2SatInstance(c)
		if err != nil {
			t.Fatal(err)
		}
		// Engine 1: exact lineage BDD (scales to large n).
		res, err := core.LineageBDD(context.Background(), inst.DB, inst.Query, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		count, err := inst.ExpectedCount(res.H)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.CountSatBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		if count.Cmp(want) != 0 {
			t.Fatalf("iter %d: reduction count %v, #SAT %v (formula %+v)", iter, count, want, c)
		}
		// Engine 2: world enumeration agrees.
		res2, err := core.WorldEnum(context.Background(), inst.DB, inst.Query, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.H.Cmp(res2.H) != 0 {
			t.Fatalf("iter %d: lineage H %v != enum H %v", iter, res.H, res2.H)
		}
		// Counter 2: independent sets.
		is, err := c.CountSat()
		if err != nil {
			t.Fatal(err)
		}
		if is.Cmp(want) != 0 {
			t.Fatalf("iter %d: IS %v != brute force %v", iter, is, want)
		}
	}
}

func TestProposition32LargeInstance(t *testing.T) {
	// Beyond brute force over worlds: 20 variables (2^20 worlds), but the
	// lineage BDD and the IS counter both handle it; they must agree.
	rng := rand.New(rand.NewSource(33))
	c := RandomMonotone2CNF(rng, 20, 25)
	inst, err := BuildMon2SatInstance(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LineageBDD(context.Background(), inst.DB, inst.Query, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	count, err := inst.ExpectedCount(res.H)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.CountSat()
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(want) != 0 {
		t.Fatalf("reduction count %v, #IS %v", count, want)
	}
}

func TestMon2SatInstanceShape(t *testing.T) {
	c := Monotone2CNF{NumVars: 3, Clauses: [][2]int{{0, 1}, {1, 2}}}
	inst, err := BuildMon2SatInstance(c)
	if err != nil {
		t.Fatal(err)
	}
	// Universe = 2 clauses + 3 variables.
	if inst.DB.A.N != 5 {
		t.Errorf("universe %d, want 5", inst.DB.A.N)
	}
	// All S atoms uncertain at 1/2, L and R certain.
	if inst.DB.NumUncertain() != 3 {
		t.Errorf("%d uncertain atoms, want 3", inst.DB.NumUncertain())
	}
	if !inst.DB.IsPositiveOnly() {
		t.Error("Prop 3.2 reduction must fit de Rougemont's positive-only model")
	}
	// The observed database satisfies psi (the all-false assignment
	// fails the formula).
	obs, err := core.WorldEnum(context.Background(), inst.DB, inst.Query, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if obs.R.Cmp(big.NewRat(1, 1)) == 0 {
		t.Error("instance unexpectedly absolutely reliable")
	}
	if _, err := BuildMon2SatInstance(Monotone2CNF{NumVars: 1, Clauses: [][2]int{{0, 3}}}); err == nil {
		t.Error("invalid CNF accepted")
	}
}

func TestLemma59Reduction(t *testing.T) {
	// D ∉ AR_psi ⟺ G is 4-colourable, for every instance with ≥ 1 edge.
	rng := rand.New(rand.NewSource(34))
	checked4col := 0
	for iter := 0; iter < 10; iter++ {
		n := 3 + rng.Intn(3) // ≤ 5 vertices: 2^(2n) ≤ 1024 worlds
		g := RandomGraph(rng, n, 0.6)
		if g.NumEdges() == 0 {
			g.MustAddEdge(0, 1)
		}
		inst, err := BuildFourColInstance(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AbsoluteReliability(inst.DB, inst.Query, core.Options{MaxEnumAtoms: 12})
		if err != nil {
			t.Fatal(err)
		}
		_, colorable := g.KColoring(4)
		if colorable == res.Reliable {
			t.Fatalf("iter %d: 4-colourable=%v but reliable=%v", iter, colorable, res.Reliable)
		}
		if colorable {
			checked4col++
			// The witness world decodes to a proper 4-colouring.
			colors := ColoringFromWorld(res.Witness)
			if !g.IsProperColoring(colors) {
				t.Fatalf("iter %d: witness decodes to improper colouring %v", iter, colors)
			}
		}
	}
	if checked4col == 0 {
		t.Error("no 4-colourable instances generated; tune the test")
	}
}

func TestLemma59NonColorable(t *testing.T) {
	// K5 is not 4-colourable: the instance must be absolutely reliable
	// (every world still satisfies the "not a colouring" query).
	k5 := NewGraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5.MustAddEdge(u, v)
		}
	}
	inst, err := BuildFourColInstance(k5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AbsoluteReliability(inst.DB, inst.Query, core.Options{MaxEnumAtoms: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reliable {
		t.Error("K5 instance should be absolutely reliable")
	}
}

func TestRandomGraphDeterminism(t *testing.T) {
	g1 := RandomGraph(rand.New(rand.NewSource(7)), 10, 0.3)
	g2 := RandomGraph(rand.New(rand.NewSource(7)), 10, 0.3)
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("random graph not deterministic under fixed seed")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("random graph not deterministic under fixed seed")
		}
	}
}
