package reductions

import (
	"math/big"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// FourColQuery is the fixed existential query of Lemma 5.9: two
// adjacent nodes share the colour encoded by the pair (R1, R2), i.e.
// (R1, R2) is NOT a proper 4-colouring.
const FourColQuery = "exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))"

// FourColInstance is the unreliable database built from a graph by the
// Lemma 5.9 reduction.
type FourColInstance struct {
	// DB has the graph's edge relation (certain), R1 = R2 = ∅, and
	// error probability 1/2 on every R1/R2 atom.
	DB *unreliable.DB
	// Query is the parsed FourColQuery.
	Query logic.Formula
	// Graph is the input graph.
	Graph *Graph
}

// BuildFourColInstance performs the Lemma 5.9 reduction: the graph G is
// 4-colourable iff the resulting database is NOT absolutely reliable
// for FourColQuery. (The paper's footnote quietly ignores E = ∅; for an
// edgeless graph the observed query value is false and every world
// agrees, so the instance is absolutely reliable while G is trivially
// 4-colourable — callers should special-case empty edge sets, as the
// paper does.)
func BuildFourColInstance(g *Graph) (*FourColInstance, error) {
	voc := rel.MustVocabulary(
		rel.RelSym{Name: "E", Arity: 2},
		rel.RelSym{Name: "R1", Arity: 1},
		rel.RelSym{Name: "R2", Arity: 1},
	)
	s, err := rel.NewStructure(g.N, voc)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		s.MustAdd("E", e[0], e[1])
		if e[0] != e[1] {
			s.MustAdd("E", e[1], e[0])
		}
	}
	db := unreliable.New(s)
	half := big.NewRat(1, 2)
	for v := 0; v < g.N; v++ {
		if err := db.SetError(rel.GroundAtom{Rel: "R1", Args: rel.Tuple{v}}, half); err != nil {
			return nil, err
		}
		if err := db.SetError(rel.GroundAtom{Rel: "R2", Args: rel.Tuple{v}}, half); err != nil {
			return nil, err
		}
	}
	return &FourColInstance{
		DB:    db,
		Query: logic.MustParse(FourColQuery, nil),
		Graph: g,
	}, nil
}

// ColoringFromWorld decodes the 4-colouring represented by a possible
// world: colour(v) = 2·[R1(v)] + [R2(v)].
func ColoringFromWorld(b *rel.Structure) []int {
	colors := make([]int, b.N)
	for v := 0; v < b.N; v++ {
		c := 0
		if b.Holds("R1", rel.Tuple{v}) {
			c += 2
		}
		if b.Holds("R2", rel.Tuple{v}) {
			c++
		}
		colors[v] = c
	}
	return colors
}
