package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"qrel/internal/logic"
)

// recordingBreaker vetoes a fixed set of engines and records every
// Allow/Report call.
type recordingBreaker struct {
	mu      sync.Mutex
	deny    map[Engine]bool
	allowed []Engine
	reports map[Engine][]error
}

func newRecordingBreaker(deny ...Engine) *recordingBreaker {
	b := &recordingBreaker{deny: map[Engine]bool{}, reports: map[Engine][]error{}}
	for _, e := range deny {
		b.deny[e] = true
	}
	return b
}

func (b *recordingBreaker) Allow(e Engine) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.allowed = append(b.allowed, e)
	return !b.deny[e]
}

func (b *recordingBreaker) Report(e Engine, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reports[e] = append(b.reports[e], err)
}

func TestBreakerSkipsVetoedRung(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randUDB(rng, 3, 3)
	f := logic.MustParse("S(x)", nil)
	br := newRecordingBreaker(EngineQFree)
	res, err := Reliability(bg, d, f, Options{Breaker: br})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine == string(EngineQFree) {
		t.Fatalf("vetoed engine ran: %q", res.Engine)
	}
	if len(res.FallbackTrail) == 0 || res.FallbackTrail[0].Engine != string(EngineQFree) ||
		res.FallbackTrail[0].Err != breakerSkipped {
		t.Errorf("trail %v, want leading %q step for qfree", res.FallbackTrail, breakerSkipped)
	}
	// The vetoed rung was never attempted, so it must not be Reported.
	if got := br.reports[EngineQFree]; len(got) != 0 {
		t.Errorf("vetoed rung reported %v, want no reports", got)
	}
	// The rung that produced the result must be Reported with success.
	winner := Engine(res.Engine)
	if got := br.reports[winner]; len(got) != 1 || got[0] != nil {
		t.Errorf("winning rung reports %v, want one nil", got)
	}
}

func TestBreakerVetoOnExplicitEngineFails(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randUDB(rng, 3, 3)
	f := logic.MustParse("S(x)", nil)
	br := newRecordingBreaker(EngineQFree)
	_, err := ReliabilityWith(bg, EngineQFree, d, f, Options{Breaker: br})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("error %v, want ErrEngineFailed for an explicitly selected open-breaker engine", err)
	}
	if len(br.reports[EngineQFree]) != 0 {
		t.Errorf("vetoed explicit engine reported %v, want none", br.reports[EngineQFree])
	}
	// An allowed explicit engine reports its outcome.
	br2 := newRecordingBreaker()
	if _, err := ReliabilityWith(bg, EngineQFree, d, f, Options{Breaker: br2}); err != nil {
		t.Fatal(err)
	}
	if got := br2.reports[EngineQFree]; len(got) != 1 || got[0] != nil {
		t.Errorf("explicit engine reports %v, want one nil", got)
	}
}

func TestBreakerVetoOnEveryRungSurfacesEngineFailed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randUDB(rng, 3, 3)
	f := logic.MustParse("S(x)", nil)
	br := newRecordingBreaker(EngineQFree, EngineSafePlan, EngineWorldEnum,
		EngineLineageBDD, EngineLineageKL, EngineMCDirect)
	_, err := Reliability(bg, d, f, Options{Breaker: br})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("error %v, want ErrEngineFailed when every rung is vetoed", err)
	}
}
