package core

import (
	"context"
	"math/big"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// AbsoluteResult is the outcome of an absolute-reliability decision
// (Definition 5.6): whether R_psi(D) = 1, i.e. no possible world changes
// any answer tuple.
type AbsoluteResult struct {
	// Reliable reports D ∈ AR_psi.
	Reliable bool
	// Witness, when Reliable is false, is a world B with
	// psi^B ≠ psi^A.
	Witness *rel.Structure
	// Engine names the decision procedure used.
	Engine string
}

// AbsoluteQF decides the absolute reliability of a quantifier-free
// query in polynomial time (Lemma 5.7): it computes H exactly with the
// Proposition 3.1 engine and tests H = 0.
func AbsoluteQF(db *unreliable.DB, f logic.Formula, opts Options) (AbsoluteResult, error) {
	res, err := QuantifierFree(context.Background(), db, f, opts)
	if err != nil {
		return AbsoluteResult{}, err
	}
	return AbsoluteResult{Reliable: res.H.Sign() == 0, Engine: "qfree-exact"}, nil
}

// AbsoluteWitness decides absolute reliability for an arbitrary
// polynomial-time evaluable query by searching the world space for a
// counterexample — the deterministic simulation of the co-NP procedure
// of Lemma 5.8 ("guess a database B and check whether the truth values
// differ"). Exponential in the number of uncertain atoms, bounded by
// opts.MaxEnumAtoms.
func AbsoluteWitness(db *unreliable.DB, f logic.Formula, opts Options) (AbsoluteResult, error) {
	opts = opts.withDefaults()
	observed, err := answerSet(db.A, f)
	if err != nil {
		return AbsoluteResult{}, err
	}
	var witness *rel.Structure
	var evalErr error
	err = db.ForEachWorld(opts.MaxEnumAtoms, func(b *rel.Structure, _ *big.Rat) bool {
		actual, err := answerSet(b, f)
		if err != nil {
			evalErr = err
			return false
		}
		if symmetricDiffSize(observed, actual) > 0 {
			witness = b
			return false
		}
		return true
	})
	if err != nil {
		return AbsoluteResult{}, err
	}
	if evalErr != nil {
		return AbsoluteResult{}, evalErr
	}
	return AbsoluteResult{Reliable: witness == nil, Witness: witness, Engine: "witness-search"}, nil
}

// AbsoluteReliability dispatches the absolute reliability decision:
// Lemma 5.7's polynomial algorithm for quantifier-free queries,
// otherwise the Lemma 5.8 witness search.
func AbsoluteReliability(db *unreliable.DB, f logic.Formula, opts Options) (AbsoluteResult, error) {
	if logic.IsQuantifierFree(f) {
		return AbsoluteQF(db, f, opts)
	}
	return AbsoluteWitness(db, f, opts)
}
