package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/bdd"
	"qrel/internal/checkpoint"
	"qrel/internal/faultinject"
	"qrel/internal/karpluby"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/prop"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// lineageForm returns a formula whose lineage is an existential kDNF:
// the query itself for existential queries, its NNF negation for
// universal ones (flipped = true). Conjunctive queries are existential.
func lineageForm(f logic.Formula) (logic.Formula, bool, error) {
	switch logic.Classify(f) {
	case logic.ClassQuantifierFree, logic.ClassConjunctive, logic.ClassExistential:
		return logic.NNF(f), false, nil
	case logic.ClassUniversal:
		return logic.NNF(logic.Not{F: f}), true, nil
	default:
		return nil, false, fmt.Errorf("core: lineage engines require an existential or universal query, got %v", logic.Classify(f))
	}
}

// tupleLineage grounds psi(ā) to a kDNF over a fresh atom index and
// returns the DNF together with the per-variable nu probabilities.
// Deterministic atoms (nu ∈ {0, 1}) are constant-folded away before the
// DNF distribution, so the lineage only mentions uncertain atoms — the
// step that makes the Theorem 5.4 pipeline practical on databases whose
// certain part is large. The DNF distribution — the potentially
// exponential step — polls ctx.
func tupleLineage(ctx context.Context, db *unreliable.DB, f logic.Formula, env logic.Env, maxTerms int) (prop.DNF, prop.ProbAssignment, error) {
	ix := logic.NewAtomIndex()
	pf, err := logic.Ground(db.A, f, env, ix)
	if err != nil {
		return prop.DNF{}, nil, err
	}
	nu := prop.ProbAssignment(nuAssignment(db, ix))
	fixed := map[int]bool{}
	for i, p := range nu {
		if p.Sign() == 0 {
			fixed[i] = false
		} else if p.Cmp(big.NewRat(1, 1)) == 0 {
			fixed[i] = true
		}
	}
	pf = prop.Fold(pf, fixed)
	d, err := prop.ToDNFCtx(ctx, pf, ix.Len(), maxTerms)
	if err != nil {
		return prop.DNF{}, nil, err
	}
	return d, nu, nil
}

// LineageBDD computes the exact reliability of an existential or
// universal query by compiling each tuple's Theorem 5.4 lineage to a
// BDD and evaluating nu(psi”) exactly. Exponential in the worst case
// (the problem is #P-hard, Proposition 3.2) but fast on many practical
// lineages; bounded by opts.MaxBDDNodes (and opts.Budget.MaxBDDNodes,
// whichever is smaller). The per-tuple loop and the BDD compilation
// both poll ctx.
func LineageBDD(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteLineageBDD); err != nil {
		return Result{}, err
	}
	lf, flipped, err := lineageForm(f)
	if err != nil {
		return Result{}, err
	}
	one := big.NewRat(1, 1)
	h := new(big.Rat)
	k, err := forEachFreeTuple(ctx, db.A, f, func(env logic.Env, _ rel.Tuple) error {
		d, nu, err := tupleLineage(ctx, db, lf, env, opts.MaxLineageTerms)
		if err != nil {
			return err
		}
		mgr := bdd.New(d.NumVars, opts.MaxBDDNodes).WithContext(ctx)
		root, err := mgr.FromDNF(d)
		if err != nil {
			return err
		}
		p, err := mgr.Prob(root, nu)
		if err != nil {
			return err
		}
		if flipped {
			p.Sub(one, p)
		}
		// H(ā) = Pr[psi(ā)^B ≠ psi(ā)^A].
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			return err
		}
		if obs {
			h.Add(h, new(big.Rat).Sub(one, p))
		} else {
			h.Add(h, p)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Engine: "lineage-bdd", Class: logic.Classify(f)}
	setExact(&res, h, db.A.N, k)
	return res, nil
}

// LineageKL approximates the reliability of an existential or universal
// query with the paper's FPTRAS pipeline: per tuple ā, the Theorem 5.4
// lineage kDNF is handed to the Karp–Luby estimator, and per Corollary
// 5.5 the per-tuple accuracy is (ε/n^k, δ/n^k) so that the summed
// reliability satisfies Pr[|R − estimate| > ε] < δ.
//
// The per-tuple loop polls ctx. opts.Budget.MaxSamples bounds the total
// Karp–Luby samples: the FPTRAS guarantee is relative, so a partial run
// carries no usable bound — when the next tuple's required sample size
// would exceed the remaining budget the engine fails with
// ErrBudgetExceeded, letting the dispatcher degrade to an anytime
// absolute-error estimator instead.
//
// If usePaperReduction is set, each tuple uses the Theorem 5.3 binary
// encoding + #DNF route instead of the direct weighted estimator (the
// E10 ablation compares the two).
func LineageKL(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options, usePaperReduction bool) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteLineageKL); err != nil {
		return Result{}, err
	}
	lf, flipped, err := lineageForm(f)
	if err != nil {
		return Result{}, err
	}
	engine := "lineage-karpluby"
	if usePaperReduction {
		engine = "lineage-karpluby-thm53"
	}
	// The direct weighted estimator has a bit-identical batched variant
	// (karpluby.ProbDNF*Compiled); the Theorem 5.3 reduction route does
	// not. The faultinject probe lets chaos campaigns force the
	// interpreted path mid-run, exercising mixed-mode clusters.
	evalMode := EvalInterpreted
	var evalTrail []FallbackStep
	if opts.Eval != EvalInterpreted && !usePaperReduction {
		if err := faultinject.Hit(faultinject.SiteVMCompile); err != nil {
			evalTrail = []FallbackStep{{Engine: "vm", Err: err.Error()}}
		} else {
			evalMode = EvalCompiled
		}
	}
	parallel := opts.Workers > 0
	src := mc.NewSource(opts.Seed)
	rng := rand.New(src)
	// streamState mirrors MonteCarlo: the parallel mode re-derives every
	// tuple's lanes from mc.TupleSeed(Seed, idx), so snapshots carry the
	// zero PRNG state and resume skips restoring it.
	streamState := func() mc.RNGState {
		if parallel {
			return mc.RNGState{}
		}
		return src.State()
	}
	run, resumeSt, err := newCkptRun(opts.Checkpoint, engine, f, opts)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	epsT := opts.Eps / normF
	deltaT := opts.Delta / normF
	hFloat := 0.0
	samples := 0
	startTuple := 0
	if resumeSt != nil {
		if !parallel {
			if err := src.SetState(resumeSt.RNG); err != nil {
				return Result{}, fmt.Errorf("%w: %v", checkpoint.ErrCorruptCheckpoint, err)
			}
		}
		startTuple = resumeSt.Tuple
		hFloat = resumeSt.HFloat
		samples = resumeSt.Samples
	}
	tupleIdx := 0
	lastSaved := samples
	// saveBoundary snapshots "tuples before nextTuple are fully
	// accumulated; the PRNG stream is at st", making a resumed run
	// bit-identical to an uninterrupted one.
	saveBoundary := func(nextTuple int, st mc.RNGState) error {
		if run == nil {
			return nil
		}
		lastSaved = samples
		return run.save(engineState{Tuple: nextTuple, HFloat: hFloat, Samples: samples, RNG: st})
	}
	_, err = forEachFreeTuple(ctx, db.A, f, func(env logic.Env, _ rel.Tuple) error {
		idx := tupleIdx
		tupleIdx++
		if idx < startTuple {
			// Already accumulated by the restored snapshot.
			return nil
		}
		preTuple := streamState()
		d, nu, err := tupleLineage(ctx, db, lf, env, opts.MaxLineageTerms)
		if err != nil {
			return err
		}
		if opts.Budget.MaxSamples > 0 && len(d.Terms) > 0 {
			need, err := karpluby.SampleSize(epsT, deltaT, len(d.Terms))
			if err != nil {
				return err
			}
			if samples+need > opts.Budget.MaxSamples {
				// Snapshot before failing: rerun with a larger budget (and
				// Resume set) continues here instead of starting over.
				if serr := saveBoundary(idx, preTuple); serr != nil {
					return serr
				}
				return fmt.Errorf("%w: Karp–Luby needs %d more samples with %d of %d already drawn",
					ErrBudgetExceeded, need, samples, opts.Budget.MaxSamples)
			}
		}
		var res karpluby.CountResult
		compiled := evalMode == EvalCompiled
		switch {
		case parallel && usePaperReduction:
			res, err = karpluby.ProbViaReductionPar(ctx, d, nu, epsT, deltaT, mc.TupleSeed(opts.Seed, idx), parFor(opts), nil)
		case parallel && compiled:
			res, err = karpluby.ProbDNFParCompiled(ctx, d, nu, epsT, deltaT, mc.TupleSeed(opts.Seed, idx), parFor(opts), nil)
		case parallel:
			res, err = karpluby.ProbDNFPar(ctx, d, nu, epsT, deltaT, mc.TupleSeed(opts.Seed, idx), parFor(opts), nil)
		case usePaperReduction:
			res, err = karpluby.ProbViaReduction(d, nu, epsT, deltaT, rng)
		case compiled:
			res, err = karpluby.ProbDNFCompiled(d, nu, epsT, deltaT, rng)
		default:
			res, err = karpluby.ProbDNF(d, nu, epsT, deltaT, rng)
		}
		if err != nil {
			// A mid-tuple cancellation in parallel mode surfaces here (the
			// sequential estimator has no context); snapshot the tuple's own
			// start so a restart replays it in full.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				if serr := saveBoundary(idx, preTuple); serr != nil {
					return serr
				}
			}
			return err
		}
		p := res.Float()
		samples += res.Samples
		if flipped {
			p = 1 - p
		}
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			return err
		}
		if obs {
			hFloat += 1 - p
		} else {
			hFloat += p
		}
		if run != nil && samples-lastSaved >= run.every() {
			return saveBoundary(idx+1, streamState())
		}
		return nil
	})
	if err != nil {
		if run != nil && samples != lastSaved &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Final checkpoint on cancellation (graceful drain): the next
			// unprocessed tuple is tupleIdx and the stream is at src.State(),
			// so a restarted run resumes here at full accuracy. The original
			// cancellation error still propagates.
			if serr := saveBoundary(tupleIdx, streamState()); serr != nil {
				return Result{}, serr
			}
		}
		return Result{}, err
	}
	if run != nil && samples != lastSaved {
		// Completion snapshot: resuming a finished run is an instant replay.
		if serr := saveBoundary(tupleIdx, streamState()); serr != nil {
			return Result{}, serr
		}
	}
	rFloat := 1 - hFloat/normF
	return Result{
		HFloat:        hFloat,
		RFloat:        rFloat,
		Arity:         k,
		Engine:        engine,
		Guarantee:     AbsoluteError,
		Eps:           opts.Eps,
		Delta:         opts.Delta,
		Samples:       samples,
		Class:         logic.Classify(f),
		Seed:          opts.Seed,
		Resumed:       run.wasResumed(),
		EvalMode:      evalMode,
		FallbackTrail: evalTrail,
	}, nil
}

// NuExistential computes Pr[B ⊨ psi] for an existential (or universal,
// via complement) Boolean query, exactly with the BDD engine. It is the
// quantity for which Theorem 5.4 provides an FPTRAS; exposed for the
// experiment harness.
func NuExistential(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (*big.Rat, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if len(logic.FreeVars(f)) != 0 {
		return nil, fmt.Errorf("core: NuExistential requires a Boolean query")
	}
	lf, flipped, err := lineageForm(f)
	if err != nil {
		return nil, err
	}
	d, nu, err := tupleLineage(ctx, db, lf, logic.Env{}, opts.MaxLineageTerms)
	if err != nil {
		return nil, err
	}
	mgr := bdd.New(d.NumVars, opts.MaxBDDNodes).WithContext(ctx)
	root, err := mgr.FromDNF(d)
	if err != nil {
		return nil, err
	}
	p, err := mgr.Prob(root, nu)
	if err != nil {
		return nil, err
	}
	if flipped {
		p.Sub(big.NewRat(1, 1), p)
	}
	return p, nil
}
