package core

import (
	"context"
	"errors"
	"fmt"

	"qrel/internal/logic"
	"qrel/internal/unreliable"
)

// Engine identifies a reliability engine for explicit selection.
type Engine string

// Engine names accepted by Reliability's Options-independent variant
// ReliabilityWith.
const (
	EngineAuto        Engine = "auto"
	EngineQFree       Engine = "qfree"
	EngineWorldEnum   Engine = "world-enum"
	EngineLineageBDD  Engine = "lineage-bdd"
	EngineLineageKL   Engine = "lineage-kl"
	EngineLineageKL53 Engine = "lineage-kl-thm53"
	EngineMonteCarlo  Engine = "monte-carlo"
	EngineMCDirect    Engine = "monte-carlo-direct"
	EngineSafePlan    Engine = "safe-plan"
	EngineMCRare      Engine = "monte-carlo-rare"
)

// KnownEngine reports whether e names a selectable engine (EngineAuto
// and the empty string included). Serving layers use it to reject bad
// engine names at admission, before consuming a queue slot.
func KnownEngine(e Engine) bool {
	switch e {
	case EngineAuto, Engine(""), EngineQFree, EngineWorldEnum, EngineLineageBDD,
		EngineLineageKL, EngineLineageKL53, EngineMonteCarlo, EngineMCDirect,
		EngineSafePlan, EngineMCRare:
		return true
	}
	return false
}

// Reliability computes (exactly or approximately) the reliability of f
// on db, dispatching on the paper's query classification:
//
//   - quantifier-free → Proposition 3.1 exact polynomial algorithm;
//   - hierarchical conjunctive without self-joins → the exact
//     polynomial Dalvi–Suciu safe plan;
//   - few uncertain atoms → exact world enumeration (Theorem 4.2);
//   - existential/universal → exact BDD lineage if it fits, otherwise
//     the Karp–Luby FPTRAS with Corollary 5.5 splitting;
//   - other first-order → the Theorem 5.12 Monte Carlo estimator
//     (direct Hamming-sampling variant, see MonteCarloDirect; use
//     EngineMCRare explicitly when error probabilities are small);
//   - second-order with many uncertain atoms → ErrInfeasible: no
//     feasible engine exists (and under standard assumptions cannot
//     exist).
//
// The computation honors ctx and opts.Budget: cancellation returns an
// error matching ErrCanceled (or, for anytime Monte Carlo engines, a
// Degraded partial result), and when an engine exhausts a resource
// budget or crashes, the dispatcher degrades down the ladder above,
// recording each abandoned engine in Result.FallbackTrail.
func Reliability(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	return ReliabilityWith(ctx, EngineAuto, db, f, opts)
}

// ReliabilityWith runs a specific engine, or dispatches when engine is
// EngineAuto (or empty). Every engine runs behind the fault barrier:
// panics surface as ErrEngineFailed, substrate budget errors as
// ErrBudgetExceeded, and context errors as ErrCanceled.
func ReliabilityWith(ctx context.Context, engine Engine, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if !KnownEvalMode(opts.Eval) {
		return Result{}, fmt.Errorf("core: unknown eval mode %q (want %q, %q, or %q)",
			opts.Eval, EvalAuto, EvalCompiled, EvalInterpreted)
	}
	if opts.LaneRange != nil && engine != EngineMCDirect {
		// A lane range is a distribution unit of the lane-split mean
		// estimator; no other engine (and no dispatch ladder) can honor it.
		return Result{}, fmt.Errorf("core: lane-range runs require explicit engine %q, got %q", EngineMCDirect, engine)
	}
	ctx, cancel := withBudgetContext(ctx, opts.Budget)
	defer cancel()
	if opts.Breaker != nil && engine != EngineAuto && engine != Engine("") && !opts.Breaker.Allow(engine) {
		// An explicitly selected engine has no ladder to degrade down, so
		// an open breaker fails the call outright instead of skipping.
		return Result{}, fmt.Errorf("%w: engine %s: circuit breaker open", ErrEngineFailed, engine)
	}
	var res Result
	var err error
	switch engine {
	case EngineQFree:
		res, err = runEngine(string(engine), func() (Result, error) { return QuantifierFree(ctx, db, f, opts) })
	case EngineWorldEnum:
		res, err = runEngine(string(engine), func() (Result, error) { return worldEnumFor(ctx, db, f, opts) })
	case EngineLineageBDD:
		res, err = runEngine(string(engine), func() (Result, error) { return LineageBDD(ctx, db, f, opts) })
	case EngineLineageKL:
		res, err = runEngine(string(engine), func() (Result, error) { return LineageKL(ctx, db, f, opts, false) })
	case EngineLineageKL53:
		res, err = runEngine(string(engine), func() (Result, error) { return LineageKL(ctx, db, f, opts, true) })
	case EngineMonteCarlo:
		res, err = runEngine(string(engine), func() (Result, error) { return MonteCarlo(ctx, db, f, opts) })
	case EngineMCDirect:
		res, err = runEngine(string(engine), func() (Result, error) { return MonteCarloDirect(ctx, db, f, opts) })
	case EngineSafePlan:
		res, err = runEngine(string(engine), func() (Result, error) { return SafePlan(ctx, db, f, opts) })
	case EngineMCRare:
		res, err = runEngine(string(engine), func() (Result, error) { return MonteCarloRare(ctx, db, f, opts) })
	case EngineAuto, Engine(""):
		res, err = dispatch(ctx, db, f, opts)
	default:
		return Result{}, fmt.Errorf("core: unknown engine %q", engine)
	}
	if opts.Breaker != nil && engine != EngineAuto && engine != Engine("") {
		opts.Breaker.Report(engine, err)
	}
	if err != nil {
		return Result{}, err
	}
	res.Budget = opts.Budget
	res.Seed = opts.Seed
	return res, nil
}

// worldEnumFor routes exact world enumeration to the partitioned
// parallel engine when the caller asked for workers. The two paths are
// bit-identical (exact rational partials commute), so the choice never
// changes the result, only the wall clock.
func worldEnumFor(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	if opts.Workers > 1 {
		return WorldEnumParallel(ctx, db, f, opts, opts.Workers)
	}
	return WorldEnum(ctx, db, f, opts)
}

// dispatch walks the degradation ladder. Each rung runs behind the
// fault barrier; a rung that fails for any reason other than
// cancellation is recorded in the trail and the next sound rung is
// tried. Cancellation propagates immediately — a canceled computation
// never silently restarts on a cheaper engine, because the caller's
// deadline has already passed.
func dispatch(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	cls := logic.Classify(f)
	var trail []FallbackStep

	// attempt runs one rung behind the fault barrier; on success the
	// accumulated trail is attached to the result. A rung vetoed by the
	// breaker never runs: it fails with errBreakerOpen (which a later
	// rung absorbs exactly like any other rung failure) and the breaker
	// is not Reported, since nothing was attempted.
	attempt := func(engine Engine, fn func() (Result, error)) (Result, error) {
		if opts.Breaker != nil && !opts.Breaker.Allow(engine) {
			return Result{}, errBreakerOpen
		}
		res, err := runEngine(string(engine), fn)
		if opts.Breaker != nil {
			opts.Breaker.Report(engine, err)
		}
		if err == nil && len(trail) > 0 {
			// Prepend the dispatch trail to any step the engine itself
			// recorded (a compiled-evaluation fallback).
			res.FallbackTrail = append(append([]FallbackStep{}, trail...), res.FallbackTrail...)
		}
		return res, err
	}
	// abandon records a failed rung, unless the failure is cancellation,
	// which must propagate.
	abandon := func(engine Engine, err error) error {
		if errors.Is(err, ErrCanceled) {
			return err
		}
		msg := err.Error()
		if errors.Is(err, errBreakerOpen) {
			msg = breakerSkipped
		}
		trail = append(trail, FallbackStep{Engine: string(engine), Err: msg})
		return nil
	}

	// Proposition 3.1: quantifier-free queries are exactly solvable in
	// polynomial time.
	if cls == logic.ClassQuantifierFree {
		res, err := attempt(EngineQFree, func() (Result, error) { return QuantifierFree(ctx, db, f, opts) })
		if err == nil {
			return res, nil
		}
		if perr := abandon(EngineQFree, err); perr != nil {
			return Result{}, perr
		}
	}
	// Hierarchical conjunctive queries without self-joins: the
	// Dalvi–Suciu extensional plan is exact and polynomial — the best
	// possible outcome, so try it before anything exponential.
	if cls == logic.ClassConjunctive {
		res, err := attempt(EngineSafePlan, func() (Result, error) { return SafePlan(ctx, db, f, opts) })
		if err == nil {
			return res, nil
		}
		// Outside the safe fragment (or non-plain atoms): degrade to the
		// intensional engines.
		if perr := abandon(EngineSafePlan, err); perr != nil {
			return Result{}, perr
		}
	}
	// Small world space: exact enumeration is cheap and exact — but only
	// when the budget admits the 2^u worlds.
	if db.NumUncertain() <= opts.MaxEnumAtoms && opts.Budget.allowsWorlds(db) {
		res, err := attempt(EngineWorldEnum, func() (Result, error) { return worldEnumFor(ctx, db, f, opts) })
		if err == nil {
			return res, nil
		}
		// Second-order evaluation has no weaker engine to degrade to.
		if cls == logic.ClassSecondOrder {
			return Result{}, err
		}
		if perr := abandon(EngineWorldEnum, err); perr != nil {
			return Result{}, perr
		}
	}
	switch cls {
	case logic.ClassConjunctive, logic.ClassExistential, logic.ClassUniversal:
		// Theorem 5.4 route: exact if the lineage BDD stays small, then
		// the FPTRAS, then — if the FPTRAS is over budget or crashes — the
		// budget-bounded anytime absolute-error estimator.
		res, err := attempt(EngineLineageBDD, func() (Result, error) { return LineageBDD(ctx, db, f, opts) })
		if err == nil {
			return res, nil
		}
		if perr := abandon(EngineLineageBDD, err); perr != nil {
			return Result{}, perr
		}
		res, err = attempt(EngineLineageKL, func() (Result, error) { return LineageKL(ctx, db, f, opts, false) })
		if err == nil {
			return res, nil
		}
		if perr := abandon(EngineLineageKL, err); perr != nil {
			return Result{}, perr
		}
		return attempt(EngineMCDirect, func() (Result, error) { return MonteCarloDirect(ctx, db, f, opts) })
	case logic.ClassQuantifierFree, logic.ClassFirstOrder:
		// Theorem 5.12 (also the last resort for a quantifier-free query
		// whose exact engines failed).
		return attempt(EngineMCDirect, func() (Result, error) { return MonteCarloDirect(ctx, db, f, opts) })
	default:
		return Result{}, fmt.Errorf("%w: %v query with %d uncertain atoms (exact enumeration budget %d, world budget %s)",
			ErrInfeasible, cls, db.NumUncertain(), opts.MaxEnumAtoms, opts.Budget)
	}
}
