package core

import (
	"errors"
	"fmt"

	"qrel/internal/bdd"
	"qrel/internal/logic"
	"qrel/internal/prop"
	"qrel/internal/unreliable"
)

// Engine identifies a reliability engine for explicit selection.
type Engine string

// Engine names accepted by Reliability's Options-independent variant
// ReliabilityWith.
const (
	EngineAuto        Engine = "auto"
	EngineQFree       Engine = "qfree"
	EngineWorldEnum   Engine = "world-enum"
	EngineLineageBDD  Engine = "lineage-bdd"
	EngineLineageKL   Engine = "lineage-kl"
	EngineLineageKL53 Engine = "lineage-kl-thm53"
	EngineMonteCarlo  Engine = "monte-carlo"
	EngineMCDirect    Engine = "monte-carlo-direct"
	EngineSafePlan    Engine = "safe-plan"
	EngineMCRare      Engine = "monte-carlo-rare"
)

// Reliability computes (exactly or approximately) the reliability of f
// on db, dispatching on the paper's query classification:
//
//   - quantifier-free → Proposition 3.1 exact polynomial algorithm;
//   - hierarchical conjunctive without self-joins → the exact
//     polynomial Dalvi–Suciu safe plan;
//   - few uncertain atoms → exact world enumeration (Theorem 4.2);
//   - existential/universal → exact BDD lineage if it fits, otherwise
//     the Karp–Luby FPTRAS with Corollary 5.5 splitting;
//   - other first-order → the Theorem 5.12 Monte Carlo estimator
//     (direct Hamming-sampling variant, see MonteCarloDirect; use
//     EngineMCRare explicitly when error probabilities are small);
//   - second-order with many uncertain atoms → an error: no feasible
//     engine exists (and under standard assumptions cannot exist).
func Reliability(db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	return ReliabilityWith(EngineAuto, db, f, opts)
}

// ReliabilityWith runs a specific engine, or dispatches when engine is
// EngineAuto (or empty).
func ReliabilityWith(engine Engine, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	opts = opts.withDefaults()
	switch engine {
	case EngineQFree:
		return QuantifierFree(db, f, opts)
	case EngineWorldEnum:
		return WorldEnum(db, f, opts)
	case EngineLineageBDD:
		return LineageBDD(db, f, opts)
	case EngineLineageKL:
		return LineageKL(db, f, opts, false)
	case EngineLineageKL53:
		return LineageKL(db, f, opts, true)
	case EngineMonteCarlo:
		return MonteCarlo(db, f, opts)
	case EngineMCDirect:
		return MonteCarloDirect(db, f, opts)
	case EngineSafePlan:
		return SafePlan(db, f, opts)
	case EngineMCRare:
		return MonteCarloRare(db, f, opts)
	case EngineAuto, Engine(""):
		return dispatch(db, f, opts)
	default:
		return Result{}, fmt.Errorf("core: unknown engine %q", engine)
	}
}

func dispatch(db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	cls := logic.Classify(f)
	// Proposition 3.1: quantifier-free queries are exactly solvable in
	// polynomial time.
	if cls == logic.ClassQuantifierFree {
		return QuantifierFree(db, f, opts)
	}
	// Hierarchical conjunctive queries without self-joins: the
	// Dalvi–Suciu extensional plan is exact and polynomial — the best
	// possible outcome, so try it before anything exponential.
	if cls == logic.ClassConjunctive {
		if res, err := SafePlan(db, f, opts); err == nil {
			return res, nil
		}
		// Outside the safe fragment (or non-plain atoms): fall through to
		// the intensional engines.
	}
	// Small world space: exact enumeration is cheap and exact.
	if db.NumUncertain() <= opts.MaxEnumAtoms {
		res, err := WorldEnum(db, f, opts)
		if err == nil {
			return res, nil
		}
		// Second-order evaluation can exceed its own budget; fall
		// through only if another engine can take over.
		if cls == logic.ClassSecondOrder {
			return Result{}, err
		}
	}
	switch cls {
	case logic.ClassConjunctive, logic.ClassExistential, logic.ClassUniversal:
		// Theorem 5.4 route: exact if the lineage BDD stays small,
		// otherwise the FPTRAS.
		res, err := LineageBDD(db, f, opts)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, prop.ErrBudget) && !errors.Is(err, bdd.ErrTooLarge) {
			return Result{}, err
		}
		return LineageKL(db, f, opts, false)
	case logic.ClassFirstOrder:
		// Theorem 5.12.
		return MonteCarloDirect(db, f, opts)
	default:
		return Result{}, fmt.Errorf("core: no feasible engine for a %v query with %d uncertain atoms (exact enumeration budget %d)",
			cls, db.NumUncertain(), opts.MaxEnumAtoms)
	}
}
