package core

import "fmt"

// RungBreaker lets a serving layer veto individual rungs of the
// dispatch degradation ladder. The dispatcher consults Allow before
// running a rung: a vetoed rung is skipped (recorded in the
// FallbackTrail) and the next sound rung is tried, exactly as if the
// rung had failed. After every rung that does run, Report delivers the
// outcome (nil on success) so the breaker can track per-engine health —
// typically tripping on repeated ErrEngineFailed (panic recoveries) and
// re-admitting the rung with half-open probes after a cooldown.
//
// Implementations must be safe for concurrent use: one breaker is
// shared by every in-flight computation of a server. The zero case
// (Options.Breaker == nil) costs nothing.
type RungBreaker interface {
	// Allow reports whether the rung may run now. Returning false skips
	// the rung; it is not an error and Report is not called for it.
	Allow(engine Engine) bool
	// Report observes the outcome of a rung that ran: nil for success,
	// otherwise the classified error (ErrEngineFailed for contained
	// crashes). Report is called exactly once per allowed attempt.
	Report(engine Engine, err error)
}

// breakerSkipped is the trail annotation for a rung vetoed by the
// circuit breaker.
const breakerSkipped = "skipped: circuit breaker open"

// errBreakerOpen marks a rung vetoed by the RungBreaker. Inside the
// ladder it is absorbed by the next sound rung like any other rung
// failure; if every remaining rung is also vetoed it surfaces to the
// caller, folding into the taxonomy as ErrEngineFailed (the engine has
// been failing — that is why its breaker is open).
var errBreakerOpen = fmt.Errorf("%w: %s", ErrEngineFailed, breakerSkipped)
