package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"qrel/internal/checkpoint"
	"qrel/internal/logic"
	"qrel/internal/mc"
)

// Checkpoint/resume wiring for the estimation engines. The estimators
// are sampling loops; their complete state at a sample (or answer
// tuple) boundary is a handful of counters plus the serializable PRNG
// state, captured here in an engineState envelope and persisted
// through a checkpoint.Store. Because the envelope pins the PRNG
// stream position, a resumed run consumes exactly the stream an
// uninterrupted run would have: for a fixed seed the final estimate is
// bit-identical, so every (ε, δ) guarantee proved for the
// uninterrupted estimator holds verbatim for the resumed one.

// DefaultCheckpointEvery is the sample interval between periodic
// snapshots when CheckpointConfig.Every is zero.
const DefaultCheckpointEvery = 1 << 14

// ErrCheckpointMismatch reports a snapshot that was taken by a
// different computation (engine, seed, accuracy, or query differ) and
// therefore cannot be resumed into this one.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this computation")

// CheckpointConfig plumbs a snapshot store into the estimation
// engines. One config (and one store directory) belongs to one logical
// job: the snapshot fingerprint pins engine, seed, accuracy, and query,
// and resuming a store written by a different computation fails with
// ErrCheckpointMismatch.
type CheckpointConfig struct {
	// Store is the snapshot store (optional when Publish or ResumeFrame
	// provide the wire-level plumbing instead).
	Store *checkpoint.Store
	// Every is the number of samples between periodic snapshots
	// (default DefaultCheckpointEvery). Engines additionally snapshot
	// when a cancellation stops them — the final checkpoint that makes a
	// drained run resumable — and at completion.
	Every int
	// Resume makes the engine load the newest good snapshot and continue
	// from it; with no snapshot present the run starts fresh.
	Resume bool
	// Publish, when non-nil, receives every snapshot as a CRC-framed
	// payload (checkpoint.EncodeFrame) alongside (or instead of) the
	// store write. seq is the run's total sample count at the boundary —
	// monotonically increasing, so a receiver keeps the largest. This is
	// the shipping hook: a serving layer exposes the latest frame to the
	// cluster coordinator, which re-plants it on a survivor via
	// ResumeFrame when the publishing replica dies.
	Publish func(seq int, frame []byte)
	// ResumeFrame, when non-empty, is a shipped CRC-framed snapshot to
	// resume from. It passes the same fingerprint validation as a
	// store-loaded snapshot (ErrCheckpointMismatch on a different
	// computation, ErrCorruptCheckpoint on a bad frame). When both a
	// store snapshot and a ResumeFrame validate, the one with more
	// samples wins — both are valid boundary states of the same
	// deterministic run, and the fresher one conserves more work.
	ResumeFrame []byte
}

// engineState is the JSON payload of one snapshot: the fingerprint of
// the computation plus the loop state at a boundary.
type engineState struct {
	// Fingerprint: a snapshot resumes only into the identical
	// computation. Lanes is the RNG lane count of the run (0 for the
	// sequential single-stream path): the estimate is a function of the
	// lane count, so resuming across lane counts would silently change
	// it. The worker count is deliberately NOT part of the fingerprint —
	// it only schedules the lanes.
	Engine string  `json:"engine"`
	Seed   int64   `json:"seed"`
	Eps    float64 `json:"eps"`
	Delta  float64 `json:"delta"`
	Query  string  `json:"query"`
	Lanes  int     `json:"lanes,omitempty"`

	// Per-tuple engines (monte-carlo, lineage-karpluby): the index of
	// the next unprocessed answer tuple, the accumulators over completed
	// tuples, and the PRNG state at the boundary.
	Tuple   int         `json:"tuple,omitempty"`
	HFloat  float64     `json:"h_float,omitempty"`
	EpsSum  float64     `json:"eps_sum,omitempty"`
	Samples int         `json:"samples,omitempty"`
	RNG     mc.RNGState `json:"rng,omitempty"`

	// Single-loop engines (monte-carlo-direct, monte-carlo-rare): the
	// estimator loop state.
	Loop *mc.LoopState `json:"loop,omitempty"`
}

// ckptRun carries the checkpoint plumbing of one engine invocation.
// A nil *ckptRun (checkpointing off) is valid and inert.
type ckptRun struct {
	cfg     *CheckpointConfig
	head    engineState // fingerprint fields
	resumed bool
}

// newCkptRun opens the checkpoint plumbing for an engine invocation
// and, when cfg.Resume is set, loads and validates the newest good
// snapshot. Returns (nil, nil, nil) when checkpointing is off.
func newCkptRun(cfg *CheckpointConfig, engine string, f logic.Formula, opts Options) (*ckptRun, *engineState, error) {
	if cfg == nil || (cfg.Store == nil && cfg.Publish == nil && len(cfg.ResumeFrame) == 0) {
		return nil, nil, nil
	}
	run := &ckptRun{cfg: cfg, head: engineState{
		Engine: engine,
		Seed:   opts.Seed,
		Eps:    opts.Eps,
		Delta:  opts.Delta,
		Query:  fmt.Sprint(f),
		Lanes:  laneCountFor(opts),
	}}
	var best *engineState
	if cfg.Resume && cfg.Store != nil {
		payload, err := cfg.Store.LoadLatest()
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// nothing saved yet: a fresh start is the resume
		case err != nil:
			return nil, nil, err
		default:
			st, err := run.validateSnapshot(payload)
			if err != nil {
				return nil, nil, err
			}
			best = st
		}
	}
	if len(cfg.ResumeFrame) > 0 {
		payload, err := checkpoint.DecodeFrame(cfg.ResumeFrame)
		if err != nil {
			return nil, nil, err
		}
		st, err := run.validateSnapshot(payload)
		if err != nil {
			return nil, nil, err
		}
		// Freshness precedence: both states are sample boundaries of the
		// same deterministic run, so the one further along conserves more
		// work without changing the final answer.
		if best == nil || st.Samples > best.Samples {
			best = st
		}
	}
	run.resumed = best != nil
	return run, best, nil
}

// ValidateResumeFrame synchronously holds a shipped resume frame to
// the fingerprint of the computation (engine, options, query) it is
// about to resume, without running anything. It fails exactly as the
// engine itself would at startup — ErrCorruptCheckpoint on a bad
// frame, ErrCheckpointMismatch on a different computation — so the
// serving layer can reject a doomed resume at admission, before a
// durable job is registered under the request's idempotency key. A
// rejection at admission leaves the key unconsumed: the caller's clean
// retry starts a fresh job instead of re-attaching to a failed one.
func ValidateResumeFrame(frame []byte, engine Engine, f logic.Formula, opts Options) error {
	// The engine fingerprints the normalized options (zero eps/delta
	// replaced by the defaults), so the admission check must too.
	opts = opts.withDefaults()
	run := &ckptRun{head: engineState{
		Engine: string(engine),
		Seed:   opts.Seed,
		Eps:    opts.Eps,
		Delta:  opts.Delta,
		Query:  fmt.Sprint(f),
		Lanes:  laneCountFor(opts),
	}}
	payload, err := checkpoint.DecodeFrame(frame)
	if err != nil {
		return err
	}
	_, err = run.validateSnapshot(payload)
	return err
}

// validateSnapshot decodes one snapshot payload and holds it to the
// run's fingerprint.
func (r *ckptRun) validateSnapshot(payload []byte) (*engineState, error) {
	var st engineState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("%w: undecodable snapshot payload: %v", checkpoint.ErrCorruptCheckpoint, err)
	}
	if st.Engine != r.head.Engine || st.Seed != r.head.Seed ||
		st.Eps != r.head.Eps || st.Delta != r.head.Delta || st.Query != r.head.Query {
		return nil, fmt.Errorf("%w: snapshot is for engine=%s seed=%d eps=%v delta=%v query=%q; this run is engine=%s seed=%d eps=%v delta=%v query=%q",
			ErrCheckpointMismatch, st.Engine, st.Seed, st.Eps, st.Delta, st.Query,
			r.head.Engine, r.head.Seed, r.head.Eps, r.head.Delta, r.head.Query)
	}
	if st.Lanes != r.head.Lanes {
		return nil, fmt.Errorf("%w: snapshot was taken with %d RNG lanes, this run uses %d (the estimate depends on the lane count; rerun with the original Workers setting or start fresh)",
			ErrCheckpointMismatch, st.Lanes, r.head.Lanes)
	}
	return &st, nil
}

// every returns the periodic snapshot interval.
func (r *ckptRun) every() int {
	if r.cfg.Every > 0 {
		return r.cfg.Every
	}
	return DefaultCheckpointEvery
}

// laneCountFor returns the RNG lane count of an engine run under opts:
// 0 for the sequential single-stream path, mc.DefaultLanes for the
// lane-split parallel runtime, and the split's total for a lane-range
// run (the mc-level method string additionally pins the subrange).
func laneCountFor(opts Options) int {
	if opts.LaneRange != nil {
		return opts.LaneRange.Total
	}
	if opts.Workers > 0 {
		return mc.DefaultLanes
	}
	return 0
}

// rangeWorkers is the worker count of a lane-range run: at least one
// goroutine even when the caller left Workers at the sequential
// default, since a range run is always lane-split.
func rangeWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return 1
}

// parFor returns the lane-split configuration of a parallel run.
func parFor(opts Options) mc.Par {
	return mc.Par{Lanes: mc.DefaultLanes, Workers: opts.Workers}
}

// save persists one snapshot, stamping the fingerprint, and publishes
// its framed form to the shipping hook when one is set.
func (r *ckptRun) save(st engineState) error {
	st.Engine, st.Seed, st.Eps, st.Delta, st.Query, st.Lanes =
		r.head.Engine, r.head.Seed, r.head.Eps, r.head.Delta, r.head.Query, r.head.Lanes
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("core: marshaling snapshot: %w", err)
	}
	if r.cfg.Publish != nil {
		r.cfg.Publish(st.Samples, checkpoint.EncodeFrame(payload))
	}
	if r.cfg.Store == nil {
		return nil
	}
	return r.cfg.Store.Save(payload)
}

// wasResumed reports whether this run actually restored a snapshot
// (nil-safe).
func (r *ckptRun) wasResumed() bool { return r != nil && r.resumed }

// loopCkpt builds the mc.Ckpt bridging a single-loop estimator to the
// store. Returns nil when checkpointing is off.
func (r *ckptRun) loopCkpt(resume *engineState) *mc.Ckpt {
	if r == nil {
		return nil
	}
	var ls *mc.LoopState
	if resume != nil {
		ls = resume.Loop
	}
	return &mc.Ckpt{
		Every: r.every(),
		Save: func(st mc.LoopState) error {
			return r.save(engineState{Samples: st.Drawn, Loop: &st})
		},
		Resume: ls,
	}
}
