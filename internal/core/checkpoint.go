package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"qrel/internal/checkpoint"
	"qrel/internal/logic"
	"qrel/internal/mc"
)

// Checkpoint/resume wiring for the estimation engines. The estimators
// are sampling loops; their complete state at a sample (or answer
// tuple) boundary is a handful of counters plus the serializable PRNG
// state, captured here in an engineState envelope and persisted
// through a checkpoint.Store. Because the envelope pins the PRNG
// stream position, a resumed run consumes exactly the stream an
// uninterrupted run would have: for a fixed seed the final estimate is
// bit-identical, so every (ε, δ) guarantee proved for the
// uninterrupted estimator holds verbatim for the resumed one.

// DefaultCheckpointEvery is the sample interval between periodic
// snapshots when CheckpointConfig.Every is zero.
const DefaultCheckpointEvery = 1 << 14

// ErrCheckpointMismatch reports a snapshot that was taken by a
// different computation (engine, seed, accuracy, or query differ) and
// therefore cannot be resumed into this one.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this computation")

// CheckpointConfig plumbs a snapshot store into the estimation
// engines. One config (and one store directory) belongs to one logical
// job: the snapshot fingerprint pins engine, seed, accuracy, and query,
// and resuming a store written by a different computation fails with
// ErrCheckpointMismatch.
type CheckpointConfig struct {
	// Store is the snapshot store (required).
	Store *checkpoint.Store
	// Every is the number of samples between periodic snapshots
	// (default DefaultCheckpointEvery). Engines additionally snapshot
	// when a cancellation stops them — the final checkpoint that makes a
	// drained run resumable — and at completion.
	Every int
	// Resume makes the engine load the newest good snapshot and continue
	// from it; with no snapshot present the run starts fresh.
	Resume bool
}

// engineState is the JSON payload of one snapshot: the fingerprint of
// the computation plus the loop state at a boundary.
type engineState struct {
	// Fingerprint: a snapshot resumes only into the identical
	// computation. Lanes is the RNG lane count of the run (0 for the
	// sequential single-stream path): the estimate is a function of the
	// lane count, so resuming across lane counts would silently change
	// it. The worker count is deliberately NOT part of the fingerprint —
	// it only schedules the lanes.
	Engine string  `json:"engine"`
	Seed   int64   `json:"seed"`
	Eps    float64 `json:"eps"`
	Delta  float64 `json:"delta"`
	Query  string  `json:"query"`
	Lanes  int     `json:"lanes,omitempty"`

	// Per-tuple engines (monte-carlo, lineage-karpluby): the index of
	// the next unprocessed answer tuple, the accumulators over completed
	// tuples, and the PRNG state at the boundary.
	Tuple   int         `json:"tuple,omitempty"`
	HFloat  float64     `json:"h_float,omitempty"`
	EpsSum  float64     `json:"eps_sum,omitempty"`
	Samples int         `json:"samples,omitempty"`
	RNG     mc.RNGState `json:"rng,omitempty"`

	// Single-loop engines (monte-carlo-direct, monte-carlo-rare): the
	// estimator loop state.
	Loop *mc.LoopState `json:"loop,omitempty"`
}

// ckptRun carries the checkpoint plumbing of one engine invocation.
// A nil *ckptRun (checkpointing off) is valid and inert.
type ckptRun struct {
	cfg     *CheckpointConfig
	head    engineState // fingerprint fields
	resumed bool
}

// newCkptRun opens the checkpoint plumbing for an engine invocation
// and, when cfg.Resume is set, loads and validates the newest good
// snapshot. Returns (nil, nil, nil) when checkpointing is off.
func newCkptRun(cfg *CheckpointConfig, engine string, f logic.Formula, opts Options) (*ckptRun, *engineState, error) {
	if cfg == nil || cfg.Store == nil {
		return nil, nil, nil
	}
	run := &ckptRun{cfg: cfg, head: engineState{
		Engine: engine,
		Seed:   opts.Seed,
		Eps:    opts.Eps,
		Delta:  opts.Delta,
		Query:  fmt.Sprint(f),
		Lanes:  laneCountFor(opts),
	}}
	if !cfg.Resume {
		return run, nil, nil
	}
	payload, err := cfg.Store.LoadLatest()
	if errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return run, nil, nil // nothing saved yet: a fresh start is the resume
	}
	if err != nil {
		return nil, nil, err
	}
	var st engineState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, nil, fmt.Errorf("%w: undecodable snapshot payload: %v", checkpoint.ErrCorruptCheckpoint, err)
	}
	if st.Engine != run.head.Engine || st.Seed != run.head.Seed ||
		st.Eps != run.head.Eps || st.Delta != run.head.Delta || st.Query != run.head.Query {
		return nil, nil, fmt.Errorf("%w: snapshot is for engine=%s seed=%d eps=%v delta=%v query=%q; this run is engine=%s seed=%d eps=%v delta=%v query=%q",
			ErrCheckpointMismatch, st.Engine, st.Seed, st.Eps, st.Delta, st.Query,
			run.head.Engine, run.head.Seed, run.head.Eps, run.head.Delta, run.head.Query)
	}
	if st.Lanes != run.head.Lanes {
		return nil, nil, fmt.Errorf("%w: snapshot was taken with %d RNG lanes, this run uses %d (the estimate depends on the lane count; rerun with the original Workers setting or start fresh)",
			ErrCheckpointMismatch, st.Lanes, run.head.Lanes)
	}
	run.resumed = true
	return run, &st, nil
}

// every returns the periodic snapshot interval.
func (r *ckptRun) every() int {
	if r.cfg.Every > 0 {
		return r.cfg.Every
	}
	return DefaultCheckpointEvery
}

// laneCountFor returns the RNG lane count of an engine run under opts:
// 0 for the sequential single-stream path, mc.DefaultLanes for the
// lane-split parallel runtime, and the split's total for a lane-range
// run (the mc-level method string additionally pins the subrange).
func laneCountFor(opts Options) int {
	if opts.LaneRange != nil {
		return opts.LaneRange.Total
	}
	if opts.Workers > 0 {
		return mc.DefaultLanes
	}
	return 0
}

// rangeWorkers is the worker count of a lane-range run: at least one
// goroutine even when the caller left Workers at the sequential
// default, since a range run is always lane-split.
func rangeWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return 1
}

// parFor returns the lane-split configuration of a parallel run.
func parFor(opts Options) mc.Par {
	return mc.Par{Lanes: mc.DefaultLanes, Workers: opts.Workers}
}

// save persists one snapshot, stamping the fingerprint.
func (r *ckptRun) save(st engineState) error {
	st.Engine, st.Seed, st.Eps, st.Delta, st.Query, st.Lanes =
		r.head.Engine, r.head.Seed, r.head.Eps, r.head.Delta, r.head.Query, r.head.Lanes
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("core: marshaling snapshot: %w", err)
	}
	return r.cfg.Store.Save(payload)
}

// wasResumed reports whether this run actually restored a snapshot
// (nil-safe).
func (r *ckptRun) wasResumed() bool { return r != nil && r.resumed }

// loopCkpt builds the mc.Ckpt bridging a single-loop estimator to the
// store. Returns nil when checkpointing is off.
func (r *ckptRun) loopCkpt(resume *engineState) *mc.Ckpt {
	if r == nil {
		return nil
	}
	var ls *mc.LoopState
	if resume != nil {
		ls = resume.Loop
	}
	return &mc.Ckpt{
		Every: r.every(),
		Save: func(st mc.LoopState) error {
			return r.save(engineState{Samples: st.Drawn, Loop: &st})
		},
		Resume: ls,
	}
}
