package core

import (
	"math/big"
	"sort"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// AnswerModality classifies the answer tuples of a query on an
// unreliable database in the classic possible/certain sense:
// a tuple is *certain* when it belongs to psi^B in every world of
// positive probability, and *possible* when it belongs to psi^B in at
// least one.
type AnswerModality struct {
	// Certain are the tuples in every world's answer, sorted.
	Certain []rel.Tuple
	// Possible are the tuples in at least one world's answer, sorted
	// (a superset of Certain).
	Possible []rel.Tuple
}

// PossibleCertainAnswers computes the certain and possible answers by
// world enumeration (2^u worlds, bounded by opts.MaxEnumAtoms). The
// observed answer always lies between the two:
// Certain ⊆ psi^A ∩ ... — not in general! psi^A need not contain the
// certain answers when the observed database itself has positive
// probability of being wrong on relevant atoms; the inclusion
// Certain ⊆ Possible is the only guaranteed one (verified in tests).
func PossibleCertainAnswers(db *unreliable.DB, f logic.Formula, opts Options) (AnswerModality, error) {
	opts = opts.withDefaults()
	var (
		certain  map[uint64]rel.Tuple
		possible = map[uint64]rel.Tuple{}
		evalErr  error
	)
	err := db.ForEachWorld(opts.MaxEnumAtoms, func(b *rel.Structure, nu *big.Rat) bool {
		if nu.Sign() == 0 {
			return true
		}
		ans, err := logic.Answer(b, f)
		if err != nil {
			evalErr = err
			return false
		}
		thisWorld := make(map[uint64]rel.Tuple, len(ans))
		for _, t := range ans {
			thisWorld[t.Key()] = t
			if _, seen := possible[t.Key()]; !seen {
				possible[t.Key()] = t
			}
		}
		if certain == nil {
			certain = thisWorld
			return true
		}
		for k := range certain {
			if _, ok := thisWorld[k]; !ok {
				delete(certain, k)
			}
		}
		return true
	})
	if err != nil {
		return AnswerModality{}, err
	}
	if evalErr != nil {
		return AnswerModality{}, evalErr
	}
	return AnswerModality{
		Certain:  sortedTuples(certain),
		Possible: sortedTuples(possible),
	}, nil
}

func sortedTuples(m map[uint64]rel.Tuple) []rel.Tuple {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]rel.Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
