package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"qrel/internal/checkpoint"
	"qrel/internal/logic"
)

func openStore(t *testing.T, dir string, m *checkpoint.Metrics) *checkpoint.Store {
	t.Helper()
	s, err := checkpoint.Open(dir, checkpoint.Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapshotFiles returns the committed snapshot paths in dir, oldest
// first (the zero-padded names sort lexicographically).
func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".qckpt") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}

// TestMonteCarloDirectResumeBitIdentical is the heart of the
// checkpoint contract: a run interrupted by a sample budget, then
// resumed from its snapshot without the budget, must produce the
// bit-identical estimate of an uninterrupted run with the same seed.
func TestMonteCarloDirectResumeBitIdentical(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(42)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.05, Delta: 0.05, Seed: 7}

	full, err := MonteCarloDirect(bg, d, f, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Budget = Budget{MaxSamples: 300}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 100}
	res1, err := MonteCarloDirect(bg, d, f, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded || res1.Samples != 300 {
		t.Fatalf("interrupted run: Degraded=%v Samples=%d, want a 300-sample partial", res1.Degraded, res1.Samples)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 100, Resume: true}
	res2, err := MonteCarloDirect(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("resumed run did not report Resumed")
	}
	if res2.Degraded {
		t.Fatal("resumed run without budget reported Degraded")
	}
	if res2.Samples != full.Samples {
		t.Fatalf("resumed Samples = %d, uninterrupted = %d", res2.Samples, full.Samples)
	}
	if res2.HFloat != full.HFloat || res2.RFloat != full.RFloat {
		t.Fatalf("resumed H = %v R = %v, uninterrupted H = %v R = %v (must be bit-identical)",
			res2.HFloat, res2.RFloat, full.HFloat, full.RFloat)
	}
	if res2.Seed != base.Seed {
		t.Fatalf("Result.Seed = %d, want %d", res2.Seed, base.Seed)
	}
}

// TestMonteCarloTupleResumeBitIdentical exercises the per-tuple
// Theorem 5.12 engine: the budget cuts it off mid-tuple, the boundary
// snapshot excludes the partial tuple's draws, and the resumed run
// replays that tuple in full — matching the uninterrupted run exactly.
func TestMonteCarloTupleResumeBitIdentical(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(43)), 3, 5)
	f := logic.MustParse("E(x,x) | S(x)", nil)
	base := Options{Eps: 0.3, Delta: 0.1, Seed: 11}

	full, err := MonteCarlo(bg, d, f, base)
	if err != nil {
		t.Fatal(err)
	}
	if full.Samples < 100 {
		t.Fatalf("test needs a run long enough to interrupt, got %d samples", full.Samples)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Budget = Budget{MaxSamples: full.Samples / 2}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: full.Samples / 8}
	res1, err := MonteCarlo(bg, d, f, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded {
		t.Fatal("budget-interrupted run did not report Degraded")
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	res2, err := MonteCarlo(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("resumed run did not report Resumed")
	}
	if res2.HFloat != full.HFloat || res2.Samples != full.Samples || res2.Eps != full.Eps {
		t.Fatalf("resumed (H=%v samples=%d eps=%v) != uninterrupted (H=%v samples=%d eps=%v)",
			res2.HFloat, res2.Samples, res2.Eps, full.HFloat, full.Samples, full.Eps)
	}
}

// TestLineageKLBudgetResume: the FPTRAS fails hard on budget
// exhaustion (its relative guarantee admits no partial result), but it
// snapshots first — so a rerun with a larger budget and Resume set
// picks up at the failed tuple instead of starting over, and finishes
// bit-identical to an uninterrupted run.
func TestLineageKLBudgetResume(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(44)), 3, 4)
	f := logic.MustParse("exists y . (E(x,y) & S(y))", nil)
	base := Options{Eps: 0.4, Delta: 0.2, Seed: 13}

	full, err := LineageKL(bg, d, f, base, false)
	if err != nil {
		t.Fatal(err)
	}
	if full.Samples < 10 {
		t.Fatalf("test needs a sampling run, got %d samples", full.Samples)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Budget = Budget{MaxSamples: full.Samples - 1}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil)}
	_, err = LineageKL(bg, d, f, interrupted, false)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("interrupted run: err = %v, want ErrBudgetExceeded", err)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	res2, err := LineageKL(bg, d, f, resumed, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("resumed run did not report Resumed")
	}
	if res2.HFloat != full.HFloat || res2.Samples != full.Samples {
		t.Fatalf("resumed (H=%v samples=%d) != uninterrupted (H=%v samples=%d)",
			res2.HFloat, res2.Samples, full.HFloat, full.Samples)
	}
}

// TestResumeFingerprintMismatch: a snapshot resumes only into the
// identical computation — changing the seed, the query, or the engine
// is rejected with ErrCheckpointMismatch instead of silently producing
// a statistically meaningless splice.
func TestResumeFingerprintMismatch(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(45)), 3, 4)
	f := logic.MustParse("S(x)", nil)
	base := Options{Eps: 0.2, Delta: 0.2, Seed: 1}
	dir := t.TempDir()
	first := base
	first.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil)}
	if _, err := MonteCarloDirect(bg, d, f, first); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func(cfg *CheckpointConfig) error
	}{
		{"different-seed", func(cfg *CheckpointConfig) error {
			opts := base
			opts.Seed = 2
			opts.Checkpoint = cfg
			_, err := MonteCarloDirect(bg, d, f, opts)
			return err
		}},
		{"different-query", func(cfg *CheckpointConfig) error {
			opts := base
			opts.Checkpoint = cfg
			_, err := MonteCarloDirect(bg, d, logic.MustParse("E(x,x)", nil), opts)
			return err
		}},
		{"different-engine", func(cfg *CheckpointConfig) error {
			opts := base
			opts.Checkpoint = cfg
			_, err := MonteCarloRare(bg, d, f, opts)
			return err
		}},
		{"different-eps", func(cfg *CheckpointConfig) error {
			opts := base
			opts.Eps = 0.3
			opts.Checkpoint = cfg
			_, err := MonteCarloDirect(bg, d, f, opts)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
			if err := tc.run(cfg); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
			}
		})
	}
}

// TestResumeCorruptNewestFallsBack: a torn or corrupted newest
// snapshot is rejected (and counted) and the resume restarts from the
// last good snapshot — replaying more of the stream but landing on the
// same bit-identical result.
func TestResumeCorruptNewestFallsBack(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(46)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.05, Delta: 0.05, Seed: 7}
	full, err := MonteCarloDirect(bg, d, f, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Budget = Budget{MaxSamples: 300}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 100}
	if _, err := MonteCarloDirect(bg, d, f, interrupted); err != nil {
		t.Fatal(err)
	}
	snaps := snapshotFiles(t, dir)
	if len(snaps) < 2 {
		t.Fatalf("need >= 2 snapshots for a fallback test, have %d", len(snaps))
	}
	// Flip one payload byte of the newest snapshot: a torn write.
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o666); err != nil {
		t.Fatal(err)
	}

	metrics := &checkpoint.Metrics{}
	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, metrics), Every: 100, Resume: true}
	res2, err := MonteCarloDirect(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("resumed run did not report Resumed")
	}
	if res2.HFloat != full.HFloat || res2.Samples != full.Samples {
		t.Fatalf("resumed (H=%v samples=%d) != uninterrupted (H=%v samples=%d)",
			res2.HFloat, res2.Samples, full.HFloat, full.Samples)
	}
	if metrics.Snapshot().CorruptRejected == 0 {
		t.Fatal("corrupt newest snapshot was not counted as rejected")
	}
}

// TestResumeAllCorruptSurfacesTypedError: when every snapshot is
// mutilated the resume fails with the typed corruption error — never a
// panic, never a silent fresh start that would masquerade as a resume.
func TestResumeAllCorruptSurfacesTypedError(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(47)), 3, 4)
	f := logic.MustParse("S(x)", nil)
	base := Options{Eps: 0.2, Delta: 0.2, Seed: 3}
	dir := t.TempDir()
	first := base
	first.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil)}
	if _, err := MonteCarloDirect(bg, d, f, first); err != nil {
		t.Fatal(err)
	}
	for _, path := range snapshotFiles(t, dir) {
		if err := os.WriteFile(path, make([]byte, 10), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	if _, err := MonteCarloDirect(bg, d, f, resumed); !errors.Is(err, checkpoint.ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}

// TestResumeCompletedRunReplaysInstantly: the completion snapshot lets
// a finished job be re-served without re-sampling — the resume
// restores the final state and draws zero new samples.
func TestResumeCompletedRunReplaysInstantly(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(48)), 3, 5)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.1, Delta: 0.1, Seed: 21}
	dir := t.TempDir()
	first := base
	first.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil)}
	res1, err := MonteCarloDirect(bg, d, f, first)
	if err != nil {
		t.Fatal(err)
	}
	metrics := &checkpoint.Metrics{}
	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, metrics), Resume: true}
	res2, err := MonteCarloDirect(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HFloat != res1.HFloat || res2.Samples != res1.Samples || !res2.Resumed {
		t.Fatalf("replayed result differs: %+v vs %+v", res2, res1)
	}
	// The replay must not write a duplicate snapshot chain entry.
	if w := metrics.Snapshot().Written; w != 0 {
		t.Fatalf("instant replay wrote %d snapshots, want 0", w)
	}
}

// TestReliabilityWithEchoesSeed: the dispatcher stamps the seed on
// every result, exact engines included, so any run can be reproduced.
func TestReliabilityWithEchoesSeed(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(49)), 3, 3)
	f := logic.MustParse("S(x)", nil)
	res, err := ReliabilityWith(bg, EngineQFree, d, f, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 99 {
		t.Fatalf("Result.Seed = %d, want 99", res.Seed)
	}
}
