package core

import (
	"context"
	"fmt"
	"math/big"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// QuantifierFree computes the exact reliability of a quantifier-free
// query in polynomial time (Proposition 3.1, de Rougemont): for each of
// the n^k tuples ā, the ground formula psi(ā) mentions at most n(psi)
// atoms, so its expected error is the sum over the 2^n(psi) truth
// assignments of those atoms — a constant amount of work per tuple. The
// per-tuple loop polls ctx.
func QuantifierFree(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteQFree); err != nil {
		return Result{}, err
	}
	if !logic.IsQuantifierFree(f) {
		return Result{}, fmt.Errorf("core: QuantifierFree engine requires a quantifier-free query, got %v", logic.Classify(f))
	}
	one := big.NewRat(1, 1)
	h := new(big.Rat)
	k, err := forEachFreeTuple(ctx, db.A, f, func(env logic.Env, _ rel.Tuple) error {
		// Ground psi(ā) over a fresh per-tuple atom index: at most
		// n(psi) variables regardless of database size.
		ix := logic.NewAtomIndex()
		pf, err := logic.Ground(db.A, f, env, ix)
		if err != nil {
			return err
		}
		nv := ix.Len()
		if nv > 24 {
			return fmt.Errorf("core: quantifier-free query grounds to %d distinct atoms in one tuple; expected a small constant", nv)
		}
		// Observed truth value.
		obs := make([]bool, nv)
		for i, atom := range ix.Atoms() {
			obs[i] = db.A.Holds(atom.Rel, atom.Args)
		}
		observed := pf.Eval(obs)
		// Probability that each atom holds in the actual database.
		nu := nuAssignment(db, ix)
		// Sum the probability of all assignments where the value differs.
		a := make([]bool, nv)
		for m := uint64(0); m < uint64(1)<<uint(nv); m++ {
			for i := range a {
				a[i] = m&(1<<uint(i)) != 0
			}
			if pf.Eval(a) == observed {
				continue
			}
			w := new(big.Rat).Set(one)
			for i, v := range a {
				if v {
					w.Mul(w, nu[i])
				} else {
					w.Mul(w, new(big.Rat).Sub(one, nu[i]))
				}
			}
			h.Add(h, w)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Engine: "qfree-exact", Class: logic.ClassQuantifierFree}
	setExact(&res, h, db.A.N, k)
	return res, nil
}
