package core

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

func TestPossibleCertainAnswersHand(t *testing.T) {
	// S = {0,1} with S(1) uncertain, S(2) absent-uncertain.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	s.MustAdd("S", 1)
	db := unreliable.New(s)
	db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}, big.NewRat(1, 4))
	db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{2}}, big.NewRat(1, 4))
	f := logic.MustParse("S(x)", nil)
	am, err := PossibleCertainAnswers(db, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Certain) != 1 || !am.Certain[0].Equal(rel.Tuple{0}) {
		t.Errorf("certain = %v, want [(0)]", am.Certain)
	}
	if len(am.Possible) != 3 {
		t.Errorf("possible = %v, want 3 tuples", am.Possible)
	}
}

func TestPossibleCertainInclusion(t *testing.T) {
	// Property: Certain ⊆ Possible, and a tuple is certain iff its
	// per-tuple flip probability is 0 while it is observed... more
	// precisely: certain ⟺ Pr[tuple ∈ psi^B] = 1, possible ⟺ > 0;
	// cross-checked against per-tuple enumeration.
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 10; iter++ {
		db := randUDB(rng, 3, 4)
		f := logic.MustParse("exists y . E(x,y) & S(y)", nil)
		am, err := PossibleCertainAnswers(db, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cset := map[uint64]bool{}
		for _, tp := range am.Certain {
			cset[tp.Key()] = true
		}
		pset := map[uint64]bool{}
		for _, tp := range am.Possible {
			pset[tp.Key()] = true
			if cset[tp.Key()] && !pset[tp.Key()] {
				t.Fatal("certain not possible")
			}
		}
		for k := range cset {
			if !pset[k] {
				t.Fatal("certain tuple missing from possible")
			}
		}
		// Membership probabilities by direct enumeration.
		memb := map[uint64]*big.Rat{}
		err = db.ForEachWorld(12, func(b *rel.Structure, nu *big.Rat) bool {
			ans, err := logic.Answer(b, f)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range ans {
				if memb[tp.Key()] == nil {
					memb[tp.Key()] = new(big.Rat)
				}
				memb[tp.Key()].Add(memb[tp.Key()], nu)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		one := big.NewRat(1, 1)
		for k, p := range memb {
			if (p.Cmp(one) == 0) != cset[k] {
				t.Fatalf("iter %d: certainty mismatch for key %d (p=%v)", iter, k, p)
			}
			if (p.Sign() > 0) != pset[k] {
				t.Fatalf("iter %d: possibility mismatch for key %d", iter, k)
			}
		}
		// No phantom possible tuples.
		for k := range pset {
			if memb[k] == nil || memb[k].Sign() == 0 {
				t.Fatalf("iter %d: phantom possible tuple", iter)
			}
		}
	}
}

func TestPossibleCertainBooleanQuery(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	db := unreliable.New(s)
	f := logic.MustParse("exists x . S(x)", nil)
	am, err := PossibleCertainAnswers(db, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Certainly true sentence: the empty tuple is certain.
	if len(am.Certain) != 1 || len(am.Certain[0]) != 0 {
		t.Errorf("certain = %v", am.Certain)
	}
}
