package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"qrel/internal/bdd"
	"qrel/internal/mc"
	"qrel/internal/prop"
	"qrel/internal/unreliable"
)

// The typed error taxonomy of the fault-tolerant runtime. Every error
// leaving Reliability/ReliabilityWith matches (via errors.Is) exactly
// one of these sentinels or is an input-validation error (unknown
// engine, malformed query, out-of-range parameters).
var (
	// ErrCanceled: the caller's context was canceled or its deadline
	// (including Budget.Timeout) passed before a result was produced.
	ErrCanceled = errors.New("core: computation canceled")
	// ErrBudgetExceeded: a resource budget — enumeration atoms or
	// worlds, BDD nodes, lineage terms, or Monte Carlo samples — was
	// exhausted and no weaker engine could absorb the work.
	ErrBudgetExceeded = errors.New("core: resource budget exceeded")
	// ErrInfeasible: the query sits outside every engine's fragment (a
	// second-order query over a world space too large to enumerate);
	// under standard complexity assumptions no feasible engine exists.
	ErrInfeasible = errors.New("core: no feasible engine for query")
	// ErrEngineFailed: an engine crashed (panicked) or failed
	// internally; the boundary converted the crash into this error.
	ErrEngineFailed = errors.New("core: engine failed")
)

// Budget bounds the resources one reliability computation may consume.
// The zero value means "no additional bounds" (the per-engine structural
// caps in Options still apply). A Budget is enforced uniformly across
// engines and echoed in Result.Budget.
type Budget struct {
	// Timeout is the wall-clock allowance for the whole call; it is
	// applied as a context deadline at the engine boundary.
	Timeout time.Duration
	// MaxSamples caps the total Monte Carlo samples an engine may draw.
	// Anytime estimators return a Degraded partial result at the cap;
	// relative-error estimators (Karp–Luby) fail with ErrBudgetExceeded
	// so that the dispatcher can degrade to an anytime engine.
	MaxSamples int
	// MaxBDDNodes caps the lineage BDD (overrides Options.MaxBDDNodes
	// when smaller).
	MaxBDDNodes int
	// MaxWorlds caps exact world enumeration at this many possible
	// worlds (2^u must be ≤ MaxWorlds).
	MaxWorlds uint64
}

// IsZero reports whether the budget imposes no bounds.
func (b Budget) IsZero() bool { return b == Budget{} }

// allowsWorlds reports whether enumerating db's 2^u world space fits
// within MaxWorlds.
func (b Budget) allowsWorlds(db *unreliable.DB) bool {
	if b.MaxWorlds == 0 {
		return true
	}
	wc := db.WorldCount()
	return wc.IsUint64() && wc.Uint64() <= b.MaxWorlds
}

// String renders the budget compactly for diagnostics.
func (b Budget) String() string {
	if b.IsZero() {
		return "unbounded"
	}
	return fmt.Sprintf("timeout=%v samples=%d bddNodes=%d worlds=%d",
		b.Timeout, b.MaxSamples, b.MaxBDDNodes, b.MaxWorlds)
}

// FallbackStep records one rung of the dispatcher's degradation ladder:
// an engine that was tried and failed before the engine that finally
// produced the result.
type FallbackStep struct {
	// Engine is the name of the engine that failed.
	Engine string
	// Err is the failure, rendered (Result must stay comparable-free but
	// printable; the typed error classification has already routed the
	// dispatch, so the trail keeps the human-readable cause).
	Err string
}

// String renders the step as "engine: cause".
func (s FallbackStep) String() string { return s.Engine + ": " + s.Err }

// classifyErr folds an engine error into the typed taxonomy: context
// errors become ErrCanceled, substrate budget errors become
// ErrBudgetExceeded, and everything else passes through unchanged (it is
// either already classified, an input-validation error, or an engine
// fragment mismatch that the dispatcher handles by falling back).
func classifyErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrInfeasible) || errors.Is(err, ErrEngineFailed) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, mc.ErrNoSamples) {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	if errors.Is(err, prop.ErrBudget) || errors.Is(err, bdd.ErrTooLarge) ||
		errors.Is(err, unreliable.ErrEnumBudget) {
		return fmt.Errorf("%w: %v", ErrBudgetExceeded, err)
	}
	return err
}

// runEngine invokes one engine behind the fault barrier: panics are
// recovered into ErrEngineFailed and errors are folded into the typed
// taxonomy. This is the only place engine code runs when entered through
// Reliability/ReliabilityWith.
func runEngine(name string, fn func() (Result, error)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = fmt.Errorf("%w: engine %s panicked: %v", ErrEngineFailed, name, r)
		}
	}()
	res, err = fn()
	err = classifyErr(err)
	return res, err
}

// orBackground lets exported engines tolerate a nil context from direct
// callers (the facade normalizes before dispatch, but engines are also
// public API inside the module).
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// withBudgetContext applies Budget.Timeout as a context deadline,
// returning the derived context and a cancel function (a no-op when no
// timeout is set).
func withBudgetContext(ctx context.Context, b Budget) (context.Context, context.CancelFunc) {
	if b.Timeout > 0 {
		return context.WithTimeout(ctx, b.Timeout)
	}
	return ctx, func() {}
}
