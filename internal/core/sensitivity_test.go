package core

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

func TestAtomSensitivityHand(t *testing.T) {
	// Query ∃x S(x) on S = {0} with S(0) uncertain at mu = 1/4 and S(1)
	// uncertain at mu = 1/2. Observed: true.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	db := unreliable.New(s)
	a0 := rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}
	a1 := rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}
	db.MustSetError(a0, big.NewRat(1, 4))
	db.MustSetError(a1, big.NewRat(1, 2))
	f := logic.MustParse("exists x . S(x)", nil)

	// Conditioned on S(0)=true the query is certainly true: H = 0.
	// Conditioned on S(0)=false: query true iff S(1), so H = 1/2.
	sens, err := AtomSensitivity(db, f, a0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sens.HTrue.Sign() != 0 {
		t.Errorf("H|true = %v, want 0", sens.HTrue)
	}
	if sens.HFalse.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("H|false = %v, want 1/2", sens.HFalse)
	}
	if sens.Spread.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("spread = %v, want 1/2", sens.Spread)
	}
	// Law of total probability: HResolved equals the unconditional H.
	base, err := WorldEnum(bg, db, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sens.HResolved.Cmp(base.H) != 0 {
		t.Errorf("HResolved = %v, want H = %v", sens.HResolved, base.H)
	}
}

func TestAtomSensitivityCertainAtom(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	db := unreliable.New(s)
	f := logic.MustParse("exists x . S(x)", nil)
	a := rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}
	if _, err := AtomSensitivity(db, f, a, Options{}); err == nil {
		t.Error("sensitivity of a certain atom accepted")
	}
}

func TestRankSensitivities(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := randUDB(rng, 3, 5)
	f := logic.MustParse("exists x y . E(x,y) & S(x)", nil)
	ranked, err := RankSensitivities(db, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 5 {
		t.Fatalf("ranked %d atoms, want 5", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Spread.Cmp(ranked[i].Spread) < 0 {
			t.Error("not sorted by decreasing spread")
		}
	}
	// Law of total probability holds for every atom.
	base, err := WorldEnum(bg, db, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ranked {
		if s.HResolved.Cmp(base.H) != 0 {
			t.Errorf("atom %v: HResolved %v != H %v", s.Atom, s.HResolved, base.H)
		}
	}
}
