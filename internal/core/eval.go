package core

import (
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
	"qrel/internal/vm"
)

// Evaluation modes of the sampling engines (Options.Eval,
// Result.EvalMode). The compiled mode replaces the per-sample
// logic.Eval tree walk with internal/vm bytecode evaluated 64 worlds
// at a time; it is bit-identical to the interpreted mode — same
// estimates, same checkpoints, same lane digests — so the mode is a
// pure performance knob and is deliberately NOT part of the checkpoint
// fingerprint: snapshots interchange freely across modes, and replicas
// of one cluster run may disagree on it without breaking attestation.
const (
	EvalAuto        = "auto"
	EvalCompiled    = "compiled"
	EvalInterpreted = "interpreted"
)

// KnownEvalMode reports whether m names an evaluation mode (the empty
// string reads as EvalAuto). Serving layers use it to reject bad modes
// at admission.
func KnownEvalMode(m string) bool {
	switch m {
	case "", EvalAuto, EvalCompiled, EvalInterpreted:
		return true
	}
	return false
}

// evalPlan is the resolved evaluation mode of one sampling-engine run:
// the per-tuple compiled programs when compilation succeeded, or the
// interpreter with the abandoned compile recorded for the trail.
type evalPlan struct {
	// progs and base hold, per free-variable tuple of the query in
	// rel.ForEachTuple order, the compiled program and the observed
	// truth value psi(ā)^A. Nil in interpreted mode.
	progs []*vm.Program
	base  []bool
	// mode is EvalCompiled or EvalInterpreted.
	mode string
	// trail records the compile failure that forced interpreted mode,
	// for Result.FallbackTrail. Nil when the mode was honored directly.
	trail []FallbackStep
}

func (p evalPlan) compiled() bool { return p.mode == EvalCompiled }

// planEval resolves opts.Eval for a query: unless the interpreter was
// requested explicitly, compile one program per free-variable tuple
// and fall back to the interpreter on any failure — compilation is
// all-or-nothing, so one engine run never mixes modes across tuples.
func planEval(db *unreliable.DB, f logic.Formula, opts Options) evalPlan {
	if opts.Eval == EvalInterpreted {
		return evalPlan{mode: EvalInterpreted}
	}
	progs, base, err := compilePrograms(db, f)
	if err != nil {
		return evalPlan{mode: EvalInterpreted, trail: []FallbackStep{{Engine: "vm", Err: err.Error()}}}
	}
	return evalPlan{mode: EvalCompiled, progs: progs, base: base}
}

// compilePrograms compiles f(ā) for every instantiation ā of its free
// variables, in the same lexicographic tuple order the engines walk,
// along with the observed truth values.
func compilePrograms(db *unreliable.DB, f logic.Formula) ([]*vm.Program, []bool, error) {
	comp := vm.NewCompiler(db)
	vars := logic.FreeVars(f)
	env := logic.Env{}
	var (
		progs    []*vm.Program
		base     []bool
		innerErr error
	)
	rel.ForEachTuple(db.A.N, len(vars), func(t rel.Tuple) bool {
		for i, v := range vars {
			env[v] = t[i]
		}
		p, err := comp.Compile(f, env)
		if err != nil {
			innerErr = err
			return false
		}
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			innerErr = err
			return false
		}
		progs = append(progs, p)
		base = append(base, obs)
		return true
	})
	if innerErr != nil {
		return nil, nil, innerErr
	}
	return progs, base, nil
}
