// Package core implements the paper's primary contribution: computation
// of query reliability on unreliable databases, with one engine per
// complexity result and a dispatcher that mirrors the paper's
// classification.
//
// For a k-ary query psi on an unreliable database D = (A, mu), the
// expected error H_psi(D) is the expected Hamming distance between
// psi^A and psi^B over random worlds B ∈ Omega(D), and the reliability
// is R_psi(D) = 1 − H_psi(D)/n^k (Definition 2.2).
//
// Engines:
//
//   - QuantifierFree — Proposition 3.1: exact, polynomial time.
//   - WorldEnum — Theorem 4.2: exact for any query (incl. second-order)
//     by enumerating the 2^u worlds; exponential in the number of
//     uncertain atoms, which is the deterministic cost of one #P oracle
//     call.
//   - LineageBDD — exact for existential/universal queries via the
//     Theorem 5.4 grounding compiled to a BDD.
//   - LineageKL — Theorem 5.4 + Corollary 5.5: the Karp–Luby FPTRAS on
//     the lineage, with per-tuple (ε/n^k, δ/n^k) splitting.
//   - MonteCarlo — Theorem 5.12: absolute-error randomized estimation
//     for any polynomial-time evaluable query.
//
// The dispatcher Reliability picks the cheapest sound engine and
// reports which guarantee the result carries.
package core

import (
	"context"
	"fmt"
	"math/big"

	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Guarantee describes the strength of a Result.
type Guarantee int

// Guarantee levels.
const (
	// Exact: H and R are exact rationals.
	Exact Guarantee = iota
	// RelativeError: Pr[|value − truth| > Eps·truth] < Delta (FPTRAS).
	RelativeError
	// AbsoluteError: Pr[|value − truth| > Eps] < Delta (Corollary 5.5 /
	// Theorem 5.12).
	AbsoluteError
)

// String names the guarantee.
func (g Guarantee) String() string {
	switch g {
	case Exact:
		return "exact"
	case RelativeError:
		return "relative(eps,delta)"
	case AbsoluteError:
		return "absolute(eps,delta)"
	default:
		return fmt.Sprintf("Guarantee(%d)", int(g))
	}
}

// Result is the outcome of a reliability computation.
type Result struct {
	// H is the exact expected error, nil for randomized engines.
	H *big.Rat
	// R is the exact reliability, nil for randomized engines.
	R *big.Rat
	// HFloat and RFloat are always populated.
	HFloat, RFloat float64
	// Arity is the query arity k; the normalizer is n^k.
	Arity int
	// Engine names the engine that produced the result.
	Engine string
	// Guarantee describes the error semantics.
	Guarantee Guarantee
	// Eps, Delta are the parameters of a randomized guarantee. When
	// Degraded is set, Eps is the honestly widened accuracy the realized
	// sample count supports (anytime estimation), not the requested one.
	Eps, Delta float64
	// Samples is the total number of Monte Carlo samples drawn.
	Samples int
	// Class is the detected query class.
	Class logic.Class
	// Degraded reports that cancellation or a resource budget cut the
	// computation short and the result carries a weakened (but still
	// valid) guarantee — see Eps.
	Degraded bool
	// Seed echoes the PRNG seed the computation ran under (Options.Seed).
	// Recording it in the result is what makes a run reproducible and a
	// checkpoint resumable: rerunning with this seed (and the same query,
	// database, and accuracy) yields bit-identical estimates.
	Seed int64
	// Resumed reports that the computation restored a checkpoint and
	// continued from it rather than starting fresh (see
	// Options.Checkpoint).
	Resumed bool
	// EvalMode reports how the sampling engines evaluated the query per
	// world: EvalCompiled (internal/vm bytecode, 64 worlds per pass) or
	// EvalInterpreted (the logic.Eval tree walk). The two are
	// bit-identical for a fixed seed; the mode only affects throughput.
	// Empty for exact engines, which never sample worlds.
	EvalMode string
	// FallbackTrail records the engines the dispatcher tried and
	// abandoned (budget exhaustion, crashes) before the engine named in
	// Engine produced this result, and any compiled-evaluation fallback
	// (Engine "vm") the winning engine took. Empty when the first choice
	// worked in the requested mode.
	FallbackTrail []FallbackStep
	// LaneRange, for a run restricted to a lane subrange (see
	// Options.LaneRange), carries the raw per-lane aggregates a cluster
	// coordinator merges; HFloat/RFloat are then partial-range values and
	// not meaningful on their own. Nil for whole-run results.
	LaneRange *LaneRangeResult
	// ClusterTrail records, for results assembled by a cluster
	// coordinator, where each lane range ran and every retry, hedge, and
	// reassignment along the way — the cross-replica analogue of
	// FallbackTrail. Empty for single-node results.
	ClusterTrail []ClusterStep
	// Budget echoes the resource budget the computation ran under.
	Budget Budget
}

// setExact fills a Result from exact H with normalizer n^k.
func setExact(res *Result, h *big.Rat, n, k int) {
	res.H = h
	norm := normalizer(n, k)
	r := new(big.Rat).Quo(h, norm)
	r.Sub(big.NewRat(1, 1), r)
	res.R = r
	res.HFloat, _ = h.Float64()
	res.RFloat, _ = r.Float64()
	res.Arity = k
	res.Guarantee = Exact
}

// normalizer returns n^k as a rational (1 for k = 0).
func normalizer(n, k int) *big.Rat {
	v := big.NewInt(1)
	for i := 0; i < k; i++ {
		v.Mul(v, big.NewInt(int64(n)))
	}
	return new(big.Rat).SetInt(v)
}

// DefaultEps and DefaultDelta are the randomized-guarantee parameters
// a zero Options resolves to. They are exported so that layers which
// re-derive the sample plan outside an engine run — the cluster
// coordinator merging per-replica lane aggregates — default exactly as
// the replicas did.
const (
	DefaultEps   = 0.05
	DefaultDelta = 0.05
)

// Options configures the engines; the zero value uses the defaults.
type Options struct {
	// Eps, Delta are the randomized-guarantee parameters
	// (default DefaultEps/DefaultDelta).
	Eps, Delta float64
	// Xi is the Theorem 5.12 padding parameter (default mc.DefaultXi).
	Xi float64
	// Seed seeds the deterministic RNG of randomized engines.
	Seed int64
	// Workers > 0 runs the randomized engines on the lane-split parallel
	// sampling runtime: the sample stream derived from Seed is split
	// into mc.DefaultLanes fixed RNG lanes scheduled on up to Workers
	// goroutines. The estimate is a function of (Seed, lane count) only
	// — any Workers >= 1 yields the identical, bit-reproducible result —
	// but it differs from the Workers == 0 sequential stream, so the
	// lane count is part of the checkpoint fingerprint and a snapshot
	// never silently resumes across the two modes. Workers == 0
	// (default) keeps the legacy sequential single-stream path.
	Workers int
	// Eval selects how the sampling engines evaluate the query per
	// sampled world: EvalAuto (default; compile to internal/vm bytecode
	// and evaluate 64 worlds bit-parallel, falling back to the
	// interpreter for shapes that don't compile), EvalCompiled (same
	// resolution, stated explicitly), or EvalInterpreted (force the
	// logic.Eval tree walk). The modes are bit-identical for a fixed
	// seed — estimates, checkpoints, and lane digests all match — so the
	// mode is not part of the checkpoint fingerprint and snapshots
	// interchange freely across it.
	Eval string
	// MaxEnumAtoms caps exact world enumeration (default 16).
	MaxEnumAtoms int
	// MaxLineageTerms caps the lineage DNF size (default 1<<16).
	MaxLineageTerms int
	// MaxBDDNodes caps the exact BDD engine (default 1<<20).
	MaxBDDNodes int
	// Budget bounds wall-clock time, samples, BDD nodes and worlds
	// uniformly across engines; the zero value imposes no extra bounds.
	Budget Budget
	// Breaker, when non-nil, is consulted before every dispatch rung and
	// observes every rung outcome — see RungBreaker. A serving layer
	// shares one breaker across requests so that an engine crashing
	// repeatedly is skipped process-wide until it recovers.
	Breaker RungBreaker
	// Checkpoint, when non-nil, makes the randomized engines persist
	// their loop state (counters plus PRNG state) through the configured
	// snapshot store and, with Checkpoint.Resume set, continue from the
	// newest good snapshot. A resumed run is bit-identical to an
	// uninterrupted run with the same Seed. Exact engines ignore it.
	Checkpoint *CheckpointConfig
	// LaneRange, when non-nil, restricts the run to the lane subrange
	// [Lo,Hi) of a Total-lane split — the unit of work a cluster
	// coordinator assigns to one replica. Quotas and RNG streams are
	// derived over all Total lanes exactly as a single-node Workers>0 run
	// would, so the per-lane aggregates (Result.LaneRange) merge to the
	// bit-identical whole. Only the monte-carlo-direct engine, selected
	// explicitly, supports it.
	LaneRange *mc.Range
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = DefaultEps
	}
	if o.Eval == "" {
		o.Eval = EvalAuto
	}
	if o.Delta == 0 {
		o.Delta = DefaultDelta
	}
	if o.MaxEnumAtoms == 0 {
		o.MaxEnumAtoms = 16
	}
	if o.MaxLineageTerms == 0 {
		o.MaxLineageTerms = 1 << 16
	}
	if o.MaxBDDNodes == 0 {
		o.MaxBDDNodes = 1 << 20
	}
	// A tighter BDD budget wins over the structural default.
	if o.Budget.MaxBDDNodes > 0 && o.Budget.MaxBDDNodes < o.MaxBDDNodes {
		o.MaxBDDNodes = o.Budget.MaxBDDNodes
	}
	return o
}

// forEachFreeTuple runs fn for every instantiation env of the free
// variables of f over A^k, in lexicographic order, polling ctx between
// tuples — the per-tuple loop is the outermost hot loop of every
// tuple-splitting engine.
func forEachFreeTuple(ctx context.Context, s *rel.Structure, f logic.Formula, fn func(env logic.Env, tuple rel.Tuple) error) (arity int, err error) {
	vars := logic.FreeVars(f)
	env := logic.Env{}
	var innerErr error
	rel.ForEachTuple(s.N, len(vars), func(t rel.Tuple) bool {
		if err := ctx.Err(); err != nil {
			innerErr = err
			return false
		}
		for i, v := range vars {
			env[v] = t[i]
		}
		if err := fn(env, t); err != nil {
			innerErr = err
			return false
		}
		return true
	})
	return len(vars), innerErr
}

// nuAssignment builds the probability assignment for the atoms of an
// index: p[i] = nu(atom_i).
func nuAssignment(db *unreliable.DB, ix *logic.AtomIndex) []*big.Rat {
	p := make([]*big.Rat, ix.Len())
	for i, atom := range ix.Atoms() {
		p[i] = db.NuAtom(atom)
	}
	return p
}
