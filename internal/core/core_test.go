package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// randUDB builds a random unreliable database over E/2, S/1.
func randUDB(rng *rand.Rand, n, uncertain int) *unreliable.DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	for i := 0; i < n; i++ {
		s.MustAdd("E", rng.Intn(n), rng.Intn(n))
		if rng.Intn(2) == 0 {
			s.MustAdd("S", rng.Intn(n))
		}
	}
	d := unreliable.New(s)
	for d.NumUncertain() < uncertain {
		var atom rel.GroundAtom
		if rng.Intn(2) == 0 {
			atom = rel.GroundAtom{Rel: "E", Args: rel.Tuple{rng.Intn(n), rng.Intn(n)}}
		} else {
			atom = rel.GroundAtom{Rel: "S", Args: rel.Tuple{rng.Intn(n)}}
		}
		d.MustSetError(atom, big.NewRat(int64(1+rng.Intn(9)), 10))
	}
	return d
}

func TestQuantifierFreeMatchesWorldEnum(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	queries := []string{
		"S(x)",
		"E(x,y) & !S(x)",
		"E(x,x) | S(x)",
		"S(x) <-> S(y)",
		"E(0,1)",
		"x = y | E(x,y)",
	}
	for iter := 0; iter < 12; iter++ {
		d := randUDB(rng, 2+rng.Intn(2), 1+rng.Intn(5))
		for _, src := range queries {
			f := logic.MustParse(src, nil)
			qf, err := QuantifierFree(bg, d, f, Options{})
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			we, err := WorldEnum(bg, d, f, Options{})
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if qf.H.Cmp(we.H) != 0 {
				t.Fatalf("iter %d %q: qfree H %v != enum H %v", iter, src, qf.H, we.H)
			}
			if qf.R.Cmp(we.R) != 0 {
				t.Fatalf("iter %d %q: qfree R %v != enum R %v", iter, src, qf.R, we.R)
			}
		}
	}
}

func TestQuantifierFreeRejectsQuantified(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(11)), 3, 2)
	f := logic.MustParse("exists x . S(x)", nil)
	if _, err := QuantifierFree(bg, d, f, Options{}); err == nil {
		t.Error("quantified query accepted by qfree engine")
	}
}

func TestLineageBDDMatchesWorldEnum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	queries := []string{
		"exists x . S(x)",
		"exists x y . E(x,y) & S(x) & S(y)",
		"forall x . S(x)",
		"forall x y . E(x,y) -> S(y)",
		"exists y . E(x,y)",
		"exists y . E(x,y) & S(y)",
	}
	for iter := 0; iter < 10; iter++ {
		d := randUDB(rng, 2+rng.Intn(2), 1+rng.Intn(5))
		for _, src := range queries {
			f := logic.MustParse(src, nil)
			lb, err := LineageBDD(bg, d, f, Options{})
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			we, err := WorldEnum(bg, d, f, Options{})
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if lb.H.Cmp(we.H) != 0 {
				t.Fatalf("iter %d %q: bdd H %v != enum H %v", iter, src, lb.H, we.H)
			}
		}
	}
}

func TestLineageBDDRejectsAlternation(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(13)), 3, 2)
	f := logic.MustParse("forall x . exists y . E(x,y)", nil)
	if _, err := LineageBDD(bg, d, f, Options{}); err == nil {
		t.Error("quantifier alternation accepted by lineage engine")
	}
}

func TestLineageKLApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const eps, delta = 0.1, 0.05
	failures, total := 0, 0
	for iter := 0; iter < 8; iter++ {
		d := randUDB(rng, 2, 1+rng.Intn(4))
		for _, src := range []string{"exists x . S(x)", "exists x y . E(x,y) & S(y)"} {
			f := logic.MustParse(src, nil)
			exact, err := WorldEnum(bg, d, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			approx, err := LineageKL(bg, d, f, Options{Eps: eps, Delta: delta, Seed: int64(iter)}, false)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if math.Abs(approx.RFloat-exact.RFloat) > eps {
				failures++
			}
		}
	}
	if failures > 2 {
		t.Errorf("%d of %d approximations exceeded eps", failures, total)
	}
}

func TestLineageKLPaperReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := randUDB(rng, 2, 3)
	f := logic.MustParse("exists x . S(x)", nil)
	exact, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := LineageKL(bg, d, f, Options{Eps: 0.1, Delta: 0.05, Seed: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Engine != "lineage-karpluby-thm53" {
		t.Errorf("engine %q", approx.Engine)
	}
	if math.Abs(approx.RFloat-exact.RFloat) > 0.15 {
		t.Errorf("thm53 route estimate %v, exact %v", approx.RFloat, exact.RFloat)
	}
}

func TestMonteCarloApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := randUDB(rng, 3, 4)
	// Quantifier alternation: only MC engines apply at scale.
	f := logic.MustParse("forall x . exists y . E(x,y)", nil)
	exact, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mcRes, err := MonteCarlo(bg, d, f, Options{Eps: 0.1, Delta: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcRes.RFloat-exact.RFloat) > 0.1 {
		t.Errorf("MC %v, exact %v", mcRes.RFloat, exact.RFloat)
	}
	direct, err := MonteCarloDirect(bg, d, f, Options{Eps: 0.1, Delta: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.RFloat-exact.RFloat) > 0.1 {
		t.Errorf("MC-direct %v, exact %v", direct.RFloat, exact.RFloat)
	}
	if direct.Samples >= mcRes.Samples {
		t.Logf("note: direct used %d samples, per-tuple %d", direct.Samples, mcRes.Samples)
	}
}

func TestMonteCarloKAry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := randUDB(rng, 2, 3)
	f := logic.MustParse("exists y . E(x,y) & S(y)", nil) // unary query
	exact, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineMonteCarlo, EngineMCDirect} {
		res, err := ReliabilityWith(bg, engine, d, f, Options{Eps: 0.1, Delta: 0.05, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.RFloat-exact.RFloat) > 0.1 {
			t.Errorf("%s: %v, exact %v", engine, res.RFloat, exact.RFloat)
		}
		if res.Arity != 1 {
			t.Errorf("%s: arity %d", engine, res.Arity)
		}
	}
}

func TestMonteCarloRejectsSecondOrder(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(18)), 3, 2)
	f := logic.MustParse("existsrel C/1 . exists x . C(x)", nil)
	if _, err := MonteCarlo(bg, d, f, Options{}); err == nil {
		t.Error("second-order accepted by MC engine")
	}
	if _, err := MonteCarloDirect(bg, d, f, Options{}); err == nil {
		t.Error("second-order accepted by MC-direct engine")
	}
}

func TestWorldEnumSecondOrder(t *testing.T) {
	// Non-2-colourability of an uncertain triangle.
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2})
	s := rel.MustStructure(3, voc)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		s.MustAdd("E", e[0], e[1])
		s.MustAdd("E", e[1], e[0])
	}
	d := unreliable.New(s)
	// The closing edge of the triangle is uncertain: present with prob 1/2.
	d.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{2, 0}}, big.NewRat(1, 2))
	d.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{0, 2}}, big.NewRat(1, 2))
	f := logic.MustParse("existsrel C/1 . forall x y . E(x,y) -> ((C(x) & !C(y)) | (!C(x) & C(y)))", nil)
	res, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Observed graph (path) is 2-colourable. Worlds: 4 combinations of
	// the two directed closing edges. The graph stays 2-colourable
	// unless BOTH closing edges appear? No — 2-colourability of the
	// underlying directed structure per the formula: any single directed
	// edge E(2,0) already forces colours of 2 and 0 to differ; path 0-1-2
	// gives 0 and 2 the same colour, so any closing edge breaks it.
	// Pr[no closing edge] = 1/4, so H = 3/4 and R = 1/4.
	if res.H.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("H = %v, want 3/4", res.H)
	}
	if res.R.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("R = %v, want 1/4", res.R)
	}
}

func TestExpectedErrorPerTupleSumsToH(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := randUDB(rng, 3, 4)
	f := logic.MustParse("exists y . E(x,y) & S(y)", nil)
	per, err := ExpectedErrorPerTuple(d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 3 {
		t.Fatalf("%d per-tuple entries, want 3", len(per))
	}
	sum := new(big.Rat)
	for _, te := range per {
		sum.Add(sum, te.H)
	}
	we, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cmp(we.H) != 0 {
		t.Errorf("per-tuple sum %v != H %v", sum, we.H)
	}
}

func TestAbsoluteReliability(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := unreliable.New(s)
	// No uncertainty: absolutely reliable.
	for _, src := range []string{"S(x)", "exists x . S(x)"} {
		res, err := AbsoluteReliability(d, logic.MustParse(src, nil), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reliable {
			t.Errorf("%q: certain database not absolutely reliable", src)
		}
	}
	// Uncertainty on an atom the query depends on.
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 2))
	resQF, err := AbsoluteReliability(d, logic.MustParse("S(x)", nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resQF.Reliable {
		t.Error("uncertain atom should break absolute reliability")
	}
	if resQF.Engine != "qfree-exact" {
		t.Errorf("engine %q for quantifier-free", resQF.Engine)
	}
	resEx, err := AbsoluteReliability(d, logic.MustParse("exists x . S(x)", nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resEx.Reliable || resEx.Witness == nil {
		t.Error("witness search should find a flipping world")
	}
	// Uncertainty on an atom the query ignores: ∃x S(x) still true in
	// every world because S(0) is certain here.
	d2 := unreliable.New(s.Clone())
	d2.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}, big.NewRat(1, 2))
	resIg, err := AbsoluteReliability(d2, logic.MustParse("exists x . S(x)", nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resIg.Reliable {
		t.Error("query not affected by the uncertain atom should stay reliable")
	}
}

func TestDispatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := randUDB(rng, 3, 4)
	cases := []struct {
		src        string
		wantEngine string
	}{
		{"S(x)", "qfree-exact"},
		// Hierarchical conjunctive: the polynomial safe plan wins.
		{"exists x . S(x)", "safe-plan"},
		{"exists x y . S(x) & E(x,y)", "safe-plan"},
		// Self-join: outside the safe fragment, exact enumeration.
		{"exists x y . S(x) & S(y) & E(x,y)", "world-enum"},
		{"forall x . exists y . E(x,y)", "world-enum"},
	}
	for _, c := range cases {
		res, err := Reliability(bg, d, logic.MustParse(c.src, nil), Options{})
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if res.Engine != c.wantEngine {
			t.Errorf("%q: engine %q, want %q", c.src, res.Engine, c.wantEngine)
		}
	}
	// With the enumeration budget forced to 0, non-safe existential
	// queries go to the lineage engine and FO alternation to Monte Carlo.
	optsTiny := Options{MaxEnumAtoms: -1, Eps: 0.2, Delta: 0.1}
	res, err := Reliability(bg, d, logic.MustParse("exists x y . S(x) & S(y) & E(x,y)", nil), optsTiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "lineage-bdd" {
		t.Errorf("tiny budget existential: engine %q, want lineage-bdd", res.Engine)
	}
	res, err = Reliability(bg, d, logic.MustParse("forall x . exists y . E(x,y)", nil), optsTiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "monte-carlo-direct" {
		t.Errorf("tiny budget FO: engine %q, want monte-carlo-direct", res.Engine)
	}
	// Unknown engine name.
	if _, err := ReliabilityWith(bg, "bogus", d, logic.MustParse("S(x)", nil), Options{}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestDispatcherSecondOrderTooBig(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randUDB(rng, 6, 2) // universe 6: SO quantifier budget exceeded
	f := logic.MustParse("existsrel R/2 . exists x y . R(x,y) & E(x,y)", nil)
	if _, err := Reliability(bg, d, f, Options{}); err == nil {
		t.Error("infeasible second-order query should error")
	}
}

func TestResultFields(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randUDB(rng, 3, 2)
	f := logic.MustParse("exists x . S(x)", nil)
	res, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee != Exact {
		t.Errorf("guarantee %v", res.Guarantee)
	}
	if res.Guarantee.String() != "exact" {
		t.Errorf("guarantee string %q", res.Guarantee.String())
	}
	if RelativeError.String() == AbsoluteError.String() {
		t.Error("guarantee strings collide")
	}
	// R + H/n^k = 1 exactly.
	sum := new(big.Rat).Add(res.R, res.H) // k = 0, normalizer 1
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("R + H = %v, want 1", sum)
	}
	// Float mirrors.
	if hf, _ := res.H.Float64(); hf != res.HFloat {
		t.Error("HFloat mismatch")
	}
}

func TestBooleanQueryReliabilityIdentity(t *testing.T) {
	// For a Boolean existential query, H = nu(psi) or 1 − nu(psi)
	// depending on the observed value (proof of Corollary 5.5).
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 10; iter++ {
		d := randUDB(rng, 2, 3)
		f := logic.MustParse("exists x y . E(x,y) & S(x)", nil)
		nu, err := NuExistential(bg, d, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		obs, err := logic.EvalSentence(d.A, f)
		if err != nil {
			t.Fatal(err)
		}
		we, err := WorldEnum(bg, d, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Rat)
		if obs {
			want.Sub(big.NewRat(1, 1), nu)
		} else {
			want.Set(nu)
		}
		if we.H.Cmp(want) != 0 {
			t.Fatalf("iter %d: H %v, want %v (nu %v, obs %v)", iter, we.H, want, nu, obs)
		}
	}
}

func TestNuExistentialRequiresSentence(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(24)), 2, 1)
	if _, err := NuExistential(bg, d, logic.MustParse("S(x)", nil), Options{}); err == nil {
		t.Error("free variables accepted")
	}
}

func TestSafePlanEngineMatchesExact(t *testing.T) {
	// The safe-plan engine agrees exactly with enumeration and the BDD
	// on hierarchical conjunctive queries, Boolean and k-ary.
	rng := rand.New(rand.NewSource(81))
	queries := []string{
		"exists x . S(x)",
		"exists x y . S(x) & E(x,y)",
		"exists y . E(x,y)", // unary
	}
	for iter := 0; iter < 8; iter++ {
		d := randUDB(rng, 3, 5)
		for _, src := range queries {
			f := logic.MustParse(src, nil)
			sp, err := SafePlan(bg, d, f, Options{})
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			we, err := WorldEnum(bg, d, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sp.H.Cmp(we.H) != 0 {
				t.Fatalf("iter %d %q: safe plan H %v != enum H %v", iter, src, sp.H, we.H)
			}
		}
	}
	// Non-hierarchical and self-join queries are refused.
	d := randUDB(rng, 3, 3)
	for _, src := range []string{
		"exists x y . S(x) & S(y) & E(x,y)", // self-join
		"forall x . S(x)",                   // not conjunctive
	} {
		if _, err := SafePlan(bg, d, logic.MustParse(src, nil), Options{}); err == nil {
			t.Errorf("%q accepted by safe plan", src)
		}
	}
}

func TestWorldEnumParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	queries := []string{
		"exists x y . E(x,y) & S(x)",
		"forall x . exists y . E(x,y)",
		"exists y . E(x,y)",
	}
	for iter := 0; iter < 6; iter++ {
		d := randUDB(rng, 3, 6)
		for _, src := range queries {
			f := logic.MustParse(src, nil)
			seq, err := WorldEnum(bg, d, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 8, 100} {
				par, err := WorldEnumParallel(bg, d, f, Options{}, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par.H.Cmp(seq.H) != 0 {
					t.Fatalf("iter %d %q workers=%d: parallel H %v != sequential %v",
						iter, src, workers, par.H, seq.H)
				}
			}
		}
	}
	// Budget enforcement.
	d := randUDB(rng, 3, 6)
	if _, err := WorldEnumParallel(bg, d, logic.MustParse("exists x . S(x)", nil), Options{MaxEnumAtoms: -1}, 4); err == nil {
		t.Error("budget not enforced")
	}
}

func TestMonteCarloRareMatchesExact(t *testing.T) {
	// Small error probabilities: the rare-event estimator must hit the
	// exact reliability with far fewer samples than the plain sampler.
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(4, voc)
	s.MustAdd("E", 0, 1)
	s.MustAdd("E", 1, 2)
	s.MustAdd("S", 0)
	d := unreliable.New(s)
	d.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{0, 1}}, big.NewRat(1, 100))
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 80))
	f := logic.MustParse("exists x y . E(x,y) & S(x)", nil)
	exact, err := WorldEnum(bg, d, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rare, err := MonteCarloRare(bg, d, f, Options{Eps: 0.002, Delta: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rare.RFloat-exact.RFloat) > 0.002 {
		t.Errorf("rare %v, exact %v", rare.RFloat, exact.RFloat)
	}
	plain, err := MonteCarloDirect(bg, d, f, Options{Eps: 0.002, Delta: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rare.Samples*20 > plain.Samples {
		t.Errorf("rare used %d samples vs plain %d; expected ≥20x saving", rare.Samples, plain.Samples)
	}
	if _, err := MonteCarloRare(bg, d, logic.MustParse("existsrel C/1 . exists x . C(x)", nil), Options{}); err == nil {
		t.Error("second-order accepted")
	}
}
