package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/unreliable"
)

// bg is the no-deadline context shared by the non-cancellation tests.
var bg = context.Background()

// secondOrderQuery is expensive to evaluate per world (it quantifies
// over all subsets of the universe), so enumeration over many worlds
// takes long enough for a deadline to fire mid-run.
const secondOrderQuery = "existsrel C/1 . (exists x . C(x)) & (forall x y . C(x) & E(x,y) -> C(y))"

func TestDeadlineBoundsInfeasibleCall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := randUDB(rng, 5, 16) // 2^16 worlds, each with a second-order evaluation
	f := logic.MustParse(secondOrderQuery, nil)
	opts := Options{Budget: Budget{Timeout: 100 * time.Millisecond}}
	start := time.Now()
	_, err := Reliability(bg, d, f, opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from the deadline-bounded second-order call")
	}
	if !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v matches neither ErrCanceled nor ErrBudgetExceeded", err)
	}
	// The acceptance bound is ~200ms; allow slack for loaded CI machines
	// while still proving the call did not run to completion (which takes
	// many seconds).
	if elapsed > time.Second {
		t.Errorf("deadline-bounded call took %v, want well under 1s", elapsed)
	}
}

func TestCanceledContextPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	rng := rand.New(rand.NewSource(7))
	d := randUDB(rng, 3, 4)
	for _, src := range []string{"S(x)", "exists x y . E(x,y) & E(y,x)", "forall x . exists y . E(x,y)"} {
		_, err := Reliability(ctx, d, logic.MustParse(src, nil), Options{})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%q: error %v, want ErrCanceled", src, err)
		}
	}
}

func TestWorldBudgetExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randUDB(rng, 3, 5) // 32 worlds
	f := logic.MustParse("exists x . S(x)", nil)
	_, err := ReliabilityWith(bg, EngineWorldEnum, d, f, Options{Budget: Budget{MaxWorlds: 8}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v, want ErrBudgetExceeded", err)
	}
	// The enumeration-atom budget classifies the same way.
	_, err = ReliabilityWith(bg, EngineWorldEnum, d, f, Options{MaxEnumAtoms: -1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("atom-budget error %v, want ErrBudgetExceeded", err)
	}
}

func TestSecondOrderOverBudgetIsInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randUDB(rng, 3, 5)
	f := logic.MustParse(secondOrderQuery, nil)
	// World budget excludes enumeration and no other engine covers SO.
	_, err := Reliability(bg, d, f, Options{Budget: Budget{MaxWorlds: 4}})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("world-budget error %v, want ErrInfeasible", err)
	}
	// Likewise when the uncertain-atom count exceeds the enumeration cap.
	_, err = Reliability(bg, d, f, Options{MaxEnumAtoms: -1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("atom-cap error %v, want ErrInfeasible", err)
	}
}

func TestPanicRecoveredAsEngineFailed(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "injected crash"})
	rng := rand.New(rand.NewSource(10))
	d := randUDB(rng, 3, 3)
	_, err := ReliabilityWith(bg, EngineQFree, d, logic.MustParse("S(x)", nil), Options{})
	if !errors.Is(err, ErrEngineFailed) {
		t.Fatalf("error %v, want ErrEngineFailed", err)
	}
	if !strings.Contains(err.Error(), "injected crash") {
		t.Errorf("panic payload lost: %v", err)
	}
}

func TestPanicFallsBackToNextEngine(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "qfree down"})
	rng := rand.New(rand.NewSource(11))
	d := randUDB(rng, 3, 3)
	res, err := Reliability(bg, d, logic.MustParse("S(x)", nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "world-enum" {
		t.Errorf("engine %q, want world-enum after the qfree crash", res.Engine)
	}
	if len(res.FallbackTrail) != 1 || res.FallbackTrail[0].Engine != string(EngineQFree) {
		t.Errorf("trail %v, want one qfree step", res.FallbackTrail)
	}
}

func TestAnytimeMonteCarloDirectDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := randUDB(rng, 3, 6)
	f := logic.MustParse("forall x . exists y . E(x,y)", nil)
	opts := Options{Eps: 0.01, Delta: 0.05, Budget: Budget{MaxSamples: 100}}
	res, err := ReliabilityWith(bg, EngineMCDirect, d, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("100-sample run against eps=0.01 not marked Degraded")
	}
	if res.Samples > 100 {
		t.Errorf("drew %d samples, budget 100", res.Samples)
	}
	if res.Eps <= 0.01 || res.Eps > 1 {
		t.Errorf("widened eps %v outside (0.01, 1]", res.Eps)
	}
	if res.RFloat < -res.Eps || res.RFloat > 1+res.Eps {
		t.Errorf("degraded estimate R=%v implausible", res.RFloat)
	}
}

func TestAnytimeMonteCarloCancellationMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := randUDB(rng, 4, 10)
	f := logic.MustParse("forall x . exists y . E(x,y)", nil)
	// A deadline that fires mid-sampling: eps=0.004 needs ~115k samples.
	opts := Options{Eps: 0.004, Delta: 0.05, Budget: Budget{Timeout: 50 * time.Millisecond}}
	res, err := ReliabilityWith(bg, EngineMCDirect, d, f, opts)
	if err != nil {
		// Machine too fast/slow: the only acceptable error is a cancel
		// before the first sample.
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("unexpected error %v", err)
		}
		t.Skip("canceled before the first sample on this machine")
	}
	if !res.Degraded {
		t.Skip("sampling finished inside the deadline on this machine")
	}
	if res.Eps <= 0.004 || res.Eps > 1 {
		t.Errorf("widened eps %v outside (0.004, 1]", res.Eps)
	}
	if res.Samples <= 0 {
		t.Errorf("degraded result with %d samples", res.Samples)
	}
}

func TestFallbackTrailConjunctiveUnsafe(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(14))
	d := randUDB(rng, 3, 4)
	// Self-join: conjunctive but outside the safe-plan fragment.
	f := logic.MustParse("exists x y . E(x,y) & E(y,x)", nil)
	opts := Options{Eps: 0.2, Delta: 0.1, MaxEnumAtoms: -1}

	// Rung 1 (safe plan) fails naturally; rung 2 (BDD) is crashed by
	// fault injection; the Karp–Luby FPTRAS must take over.
	faultinject.Enable(faultinject.SiteLineageBDD, faultinject.Fault{Err: fmt.Errorf("bdd knocked out")})
	res, err := Reliability(bg, d, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "lineage-karpluby" {
		t.Fatalf("engine %q, want lineage-karpluby", res.Engine)
	}
	wantTrail := []string{string(EngineSafePlan), string(EngineLineageBDD)}
	if len(res.FallbackTrail) != len(wantTrail) {
		t.Fatalf("trail %v, want engines %v", res.FallbackTrail, wantTrail)
	}
	for i, want := range wantTrail {
		if res.FallbackTrail[i].Engine != want {
			t.Errorf("trail[%d] = %v, want engine %s", i, res.FallbackTrail[i], want)
		}
	}

	// Knock out Karp–Luby as well: the anytime direct estimator is the
	// last rung.
	faultinject.Enable(faultinject.SiteLineageKL, faultinject.Fault{Err: fmt.Errorf("kl knocked out")})
	res, err = Reliability(bg, d, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "monte-carlo-direct" {
		t.Fatalf("engine %q, want monte-carlo-direct", res.Engine)
	}
	if len(res.FallbackTrail) != 3 {
		t.Fatalf("trail %v, want 3 steps", res.FallbackTrail)
	}
}

func TestFallbackKLOverSampleBudget(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(15))
	d := randUDB(rng, 3, 4)
	f := logic.MustParse("exists x y . E(x,y) & E(y,x)", nil)
	// A tight eps makes Karp–Luby's required sample size enormous; the
	// sample budget rejects it up front and the anytime estimator absorbs
	// the work. The BDD rung is crashed by injection (a tiny lineage can
	// fit any node budget, so MaxBDDNodes alone is not a reliable kill).
	faultinject.Enable(faultinject.SiteLineageBDD, faultinject.Fault{Err: fmt.Errorf("bdd knocked out")})
	opts := Options{
		Eps: 0.05, Delta: 0.05, MaxEnumAtoms: -1,
		Budget: Budget{MaxSamples: 200},
	}
	res, err := Reliability(bg, d, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "monte-carlo-direct" {
		t.Fatalf("engine %q, want monte-carlo-direct", res.Engine)
	}
	if !res.Degraded {
		t.Error("200-sample anytime run against eps=0.05 not marked Degraded")
	}
	if res.Samples > 200 {
		t.Errorf("drew %d samples, budget 200", res.Samples)
	}
	trailEngines := make([]string, len(res.FallbackTrail))
	for i, s := range res.FallbackTrail {
		trailEngines[i] = s.Engine
	}
	want := []string{string(EngineSafePlan), string(EngineLineageBDD), string(EngineLineageKL)}
	if len(trailEngines) != len(want) {
		t.Fatalf("trail %v, want %v", trailEngines, want)
	}
	for i := range want {
		if trailEngines[i] != want[i] {
			t.Fatalf("trail %v, want %v", trailEngines, want)
		}
	}
	if !strings.Contains(res.FallbackTrail[2].Err, "budget") {
		t.Errorf("KL step should record a budget failure, got %q", res.FallbackTrail[2].Err)
	}
}

func TestBudgetEchoedInResult(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := randUDB(rng, 3, 3)
	b := Budget{Timeout: time.Minute, MaxSamples: 1 << 20, MaxBDDNodes: 1 << 16, MaxWorlds: 1 << 20}
	res, err := Reliability(bg, d, logic.MustParse("S(x)", nil), Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != b {
		t.Errorf("Result.Budget = %v, want %v", res.Budget, b)
	}
	if res.Degraded || len(res.FallbackTrail) != 0 {
		t.Errorf("healthy run reported Degraded=%v trail=%v", res.Degraded, res.FallbackTrail)
	}
}

func TestWorldEnumParallelWorkerErrorCancelsSiblings(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(17))
	d := randUDB(rng, 3, 8) // 256 worlds across the pool
	f := logic.MustParse("exists x . S(x)", nil)
	injected := fmt.Errorf("worker blew up")
	faultinject.Enable(faultinject.SiteWorldWorker, faultinject.Fault{Err: injected, Times: 1})
	_, err := WorldEnumParallel(bg, d, f, Options{}, 4)
	if !errors.Is(err, injected) {
		t.Errorf("error %v, want the injected worker error (not a context error)", err)
	}
	faultinject.Reset()

	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := WorldEnumParallel(ctx, d, f, Options{}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled enumeration error %v, want context.Canceled", err)
	}
}

func TestFaultInjectionEveryLadderRung(t *testing.T) {
	// Prove each rung's failure is absorbed by the next: knock out the
	// engines one by one and check the dispatcher lands where the ladder
	// says it must.
	rng := rand.New(rand.NewSource(18))
	d := randUDB(rng, 3, 4)
	f := logic.MustParse("exists x y . E(x,y) & E(y,x)", nil)
	opts := Options{Eps: 0.2, Delta: 0.1}
	cases := []struct {
		name       string
		sites      []string
		wantEngine string
		wantTrail  int
	}{
		{"none", nil, "world-enum", 1}, // safe plan fails naturally (self-join)
		{"world-enum out", []string{faultinject.SiteWorldEnum}, "lineage-bdd", 2},
		{"bdd out too", []string{faultinject.SiteWorldEnum, faultinject.SiteLineageBDD}, "lineage-karpluby", 3},
		{"kl out too", []string{faultinject.SiteWorldEnum, faultinject.SiteLineageBDD, faultinject.SiteLineageKL}, "monte-carlo-direct", 4},
	}
	for _, c := range cases {
		faultinject.Reset()
		for _, site := range c.sites {
			faultinject.Enable(site, faultinject.Fault{Err: fmt.Errorf("%s injected down", site)})
		}
		res, err := Reliability(bg, d, f, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Engine != c.wantEngine {
			t.Errorf("%s: engine %q, want %q", c.name, res.Engine, c.wantEngine)
		}
		if len(res.FallbackTrail) != c.wantTrail {
			t.Errorf("%s: trail %v, want %d steps", c.name, res.FallbackTrail, c.wantTrail)
		}
	}
	faultinject.Reset()
}

func TestClassifyErr(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{context.Canceled, ErrCanceled},
		{context.DeadlineExceeded, ErrCanceled},
		{fmt.Errorf("wrapped: %w", unreliable.ErrEnumBudget), ErrBudgetExceeded},
		{ErrInfeasible, ErrInfeasible},
	}
	for _, c := range cases {
		if got := classifyErr(c.err); !errors.Is(got, c.want) {
			t.Errorf("classifyErr(%v) = %v, want Is(%v)", c.err, got, c.want)
		}
	}
	if classifyErr(nil) != nil {
		t.Error("classifyErr(nil) != nil")
	}
	plain := fmt.Errorf("plain")
	if classifyErr(plain) != plain {
		t.Error("plain errors must pass through unchanged")
	}
}

func TestBudgetString(t *testing.T) {
	if got := (Budget{}).String(); got != "unbounded" {
		t.Errorf("zero budget renders %q", got)
	}
	b := Budget{Timeout: time.Second, MaxSamples: 10, MaxBDDNodes: 20, MaxWorlds: 30}
	if got := b.String(); !strings.Contains(got, "samples=10") || !strings.Contains(got, "worlds=30") {
		t.Errorf("budget renders %q", got)
	}
}

// TestAnytimeDegradedStillBrackets checks the degraded interval remains
// valid: the widened [R−eps, R+eps] must contain the exact reliability.
func TestAnytimeDegradedStillBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 5; iter++ {
		d := randUDB(rng, 3, 5)
		f := logic.MustParse("exists x y . E(x,y)", nil)
		exact, err := WorldEnum(bg, d, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		deg, err := ReliabilityWith(bg, EngineMCDirect, d, f,
			Options{Eps: 0.01, Delta: 0.05, Seed: int64(iter), Budget: Budget{MaxSamples: 150}})
		if err != nil {
			t.Fatal(err)
		}
		if !deg.Degraded {
			t.Fatal("budgeted run not degraded")
		}
		lo, hi := deg.RFloat-deg.Eps, deg.RFloat+deg.Eps
		if exact.RFloat < lo-1e-12 || exact.RFloat > hi+1e-12 {
			// A single Hoeffding miss at delta=0.05 is possible but five
			// seeds in a row all landing inside is the overwhelming case;
			// report the miss with its seed for reproducibility.
			t.Errorf("iter %d: exact R=%v outside degraded interval [%v, %v]", iter, exact.RFloat, lo, hi)
		}
	}
}
