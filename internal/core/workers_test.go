package core

import (
	"errors"
	"math/rand"
	"testing"

	"qrel/internal/logic"
)

// TestWorkersDeterministicAcrossCounts pins the engine-level lane
// contract: with Workers > 0 the result is a function of the seed and
// the fixed lane count only, so every worker count produces the
// byte-identical Result fields.
func TestWorkersDeterministicAcrossCounts(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(51)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.2, Delta: 0.1, Seed: 13, Workers: 1}

	engines := map[string]func(opts Options) (Result, error){
		"montecarlo-direct": func(opts Options) (Result, error) { return MonteCarloDirect(bg, d, f, opts) },
		"montecarlo":        func(opts Options) (Result, error) { return MonteCarlo(bg, d, f, opts) },
		"montecarlo-rare":   func(opts Options) (Result, error) { return MonteCarloRare(bg, d, f, opts) },
		"lineage-kl":        func(opts Options) (Result, error) { return LineageKL(bg, d, f, opts, false) },
	}
	for name, run := range engines {
		ref, err := run(base)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		for _, w := range []int{2, 7} {
			opts := base
			opts.Workers = w
			got, err := run(opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if got.HFloat != ref.HFloat || got.RFloat != ref.RFloat || got.Samples != ref.Samples {
				t.Errorf("%s workers=%d: H=%v R=%v Samples=%d, workers=1: H=%v R=%v Samples=%d",
					name, w, got.HFloat, got.RFloat, got.Samples, ref.HFloat, ref.RFloat, ref.Samples)
			}
		}
	}
}

// TestWorkersParallelResumeBitIdentical interrupts a parallel direct
// estimate with a sample budget and resumes it: the multi-lane snapshot
// round-trips through the store and the resumed run matches the
// uninterrupted one exactly.
func TestWorkersParallelResumeBitIdentical(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(52)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.05, Delta: 0.05, Seed: 21, Workers: 4}

	full, err := MonteCarloDirect(bg, d, f, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Budget = Budget{MaxSamples: 300}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 64}
	if _, err := MonteCarloDirect(bg, d, f, interrupted); err != nil {
		t.Fatal(err)
	}

	resumed := base
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	res, err := MonteCarloDirect(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("resumed run did not report Resumed")
	}
	if res.HFloat != full.HFloat || res.RFloat != full.RFloat || res.Samples != full.Samples {
		t.Fatalf("resumed H=%v R=%v Samples=%d, uninterrupted H=%v R=%v Samples=%d",
			res.HFloat, res.RFloat, res.Samples, full.HFloat, full.RFloat, full.Samples)
	}
}

// TestWorkersLaneFingerprintMismatch requires a snapshot taken on the
// sequential stream to be rejected by a lane-split run and vice versa:
// the estimate depends on the lane count, so silently resuming across
// it would change the answer.
func TestWorkersLaneFingerprintMismatch(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(53)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.05, Delta: 0.05, Seed: 33}

	dir := t.TempDir()
	seq := base
	seq.Budget = Budget{MaxSamples: 200}
	seq.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 64}
	if _, err := MonteCarloDirect(bg, d, f, seq); err != nil {
		t.Fatal(err)
	}

	par := base
	par.Workers = 4
	par.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	if _, err := MonteCarloDirect(bg, d, f, par); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("sequential snapshot into parallel run: err = %v, want ErrCheckpointMismatch", err)
	}

	// And the reverse: parallel snapshot into a sequential run.
	dir2 := t.TempDir()
	par2 := base
	par2.Workers = 4
	par2.Budget = Budget{MaxSamples: 200}
	par2.Checkpoint = &CheckpointConfig{Store: openStore(t, dir2, nil), Every: 64}
	if _, err := MonteCarloDirect(bg, d, f, par2); err != nil {
		t.Fatal(err)
	}
	seq2 := base
	seq2.Checkpoint = &CheckpointConfig{Store: openStore(t, dir2, nil), Resume: true}
	if _, err := MonteCarloDirect(bg, d, f, seq2); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("parallel snapshot into sequential run: err = %v, want ErrCheckpointMismatch", err)
	}
}
