package core

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"qrel/internal/logic"
	"qrel/internal/unreliable"
)

// WorldEnumParallel is WorldEnum with the 2^u world space partitioned
// across a worker pool: each worker enumerates a contiguous block of
// flip masks, accumulates its partial expected error exactly, and the
// partials are summed at the end. The result is bit-identical to the
// sequential engine (exact rational arithmetic commutes); the speedup
// is near-linear because world evaluation dominates.
func WorldEnumParallel(db *unreliable.DB, f logic.Formula, opts Options, workers int) (Result, error) {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	u := db.NumUncertain()
	if u > opts.MaxEnumAtoms || u > unreliable.MaxEnumAtoms {
		return Result{}, fmt.Errorf("core: %d uncertain atoms exceed enumeration budget %d", u, opts.MaxEnumAtoms)
	}
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	total := uint64(1) << uint(u)
	if workers > int(total) {
		workers = int(total)
	}
	type partial struct {
		h   *big.Rat
		err error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			h := new(big.Rat)
			for mask := lo; mask < hi; mask++ {
				b := db.World(mask)
				actual, err := answerSet(b, f)
				if err != nil {
					parts[w] = partial{err: err}
					return
				}
				if diff := symmetricDiffSize(observed, actual); diff > 0 {
					nu := db.WorldProb(mask)
					h.Add(h, nu.Mul(nu, big.NewRat(int64(diff), 1)))
				}
			}
			parts[w] = partial{h: h}
		}(w, lo, hi)
	}
	wg.Wait()
	h := new(big.Rat)
	for _, p := range parts {
		if p.err != nil {
			return Result{}, p.err
		}
		h.Add(h, p.h)
	}
	res := Result{Engine: "world-enum-parallel", Class: logic.Classify(f)}
	setExact(&res, h, db.A.N, k)
	return res, nil
}
