package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/unreliable"
)

// WorldEnumParallel is WorldEnum with the 2^u world space partitioned
// across a worker pool: each worker enumerates a contiguous block of
// flip masks, accumulates its partial expected error exactly, and the
// partials are summed at the end. The result is bit-identical to the
// sequential engine (exact rational arithmetic commutes); the speedup
// is near-linear because world evaluation dominates.
//
// Workers poll a derived context every few masks: the first worker to
// fail cancels its siblings, and an external cancellation (ctx or
// opts.Budget.Timeout) stops the whole pool promptly instead of
// finishing the enumeration.
func WorldEnumParallel(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options, workers int) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteWorldEnum); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	u := db.NumUncertain()
	if u > opts.MaxEnumAtoms || u > unreliable.MaxEnumAtoms {
		return Result{}, fmt.Errorf("%w: %d uncertain atoms exceed enumeration budget %d",
			unreliable.ErrEnumBudget, u, opts.MaxEnumAtoms)
	}
	if !opts.Budget.allowsWorlds(db) {
		return Result{}, fmt.Errorf("%w: world space %v exceeds budget of %d worlds",
			ErrBudgetExceeded, db.WorldCount(), opts.Budget.MaxWorlds)
	}
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	total := uint64(1) << uint(u)
	if workers > int(total) {
		workers = int(total)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// ctxPollMasks balances cancellation latency against Err() overhead in
	// the per-mask loop.
	const ctxPollMasks = 64
	type partial struct {
		h   *big.Rat
		err error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			fail := func(err error) {
				parts[w] = partial{err: err}
				cancel() // stop the sibling workers promptly
			}
			h := new(big.Rat)
			for mask := lo; mask < hi; mask++ {
				if (mask-lo)%ctxPollMasks == 0 {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				if err := faultinject.Hit(faultinject.SiteWorldWorker); err != nil {
					fail(err)
					return
				}
				b := db.World(mask)
				actual, err := answerSet(b, f)
				if err != nil {
					fail(err)
					return
				}
				if diff := symmetricDiffSize(observed, actual); diff > 0 {
					nu := db.WorldProb(mask)
					h.Add(h, nu.Mul(nu, big.NewRat(int64(diff), 1)))
				}
			}
			parts[w] = partial{h: h}
		}(w, lo, hi)
	}
	wg.Wait()
	// Prefer a root-cause error over the context errors of the workers
	// that were merely canceled in its wake.
	var firstErr error
	for _, p := range parts {
		if p.err == nil {
			continue
		}
		if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(p.err)) {
			firstErr = p.err
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	h := new(big.Rat)
	for _, p := range parts {
		h.Add(h, p.h)
	}
	res := Result{Engine: "world-enum-parallel", Class: logic.Classify(f)}
	setExact(&res, h, db.A.N, k)
	return res, nil
}

// isCtxErr reports whether err is a bare cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
