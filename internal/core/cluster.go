package core

import "qrel/internal/mc"

// Cluster-facing result plumbing. A coordinator (internal/cluster)
// splits a monte-carlo-direct estimation into disjoint lane ranges, runs
// each on a replica via Options.LaneRange, and merges the raw per-lane
// aggregates back into the single-node estimate. These types carry the
// two halves of that story through Result: the aggregates themselves
// (LaneRangeResult, produced by the engine) and the operational trail of
// where every range ran (ClusterStep, produced by the coordinator).

// LaneRangeResult is the payload of a lane-range run: the raw per-lane
// aggregates of the lanes [Range.Lo, Range.Hi), plus everything the
// merge needs to cross-check consistency across replicas.
type LaneRangeResult struct {
	// Range is the lane subrange this run executed.
	Range mc.Range
	// Method names the base estimator ("hoeffding").
	Method string
	// Requested is the full-run sample size implied by (Eps, Delta) —
	// identical on every replica of the same request.
	Requested int
	// NormF is the n^k normalizer of the query on this database; the
	// merged mean times NormF is HFloat. Identical on every replica.
	NormF float64
	// Lanes holds the raw per-lane aggregates in lane-index order.
	Lanes []mc.LaneAgg
}

// ClusterStep is one event in a coordinator's fan-out: a lane range
// dispatched, retried, hedged, or reassigned on a replica. The ordered
// trail is the cross-replica analogue of FallbackTrail — it tells the
// operator how the cluster degraded and recovered without changing what
// it computed.
type ClusterStep struct {
	// Replica is the replica the event concerns (its base URL or ID).
	Replica string
	// Lo, Hi delimit the lane range involved; [0,0) for whole-job events
	// such as proxying.
	Lo, Hi int
	// Event classifies the step: "assign", "proxy", "retry", "hedge",
	// "reassign", "breaker-skip", "done", "resume" (the range was
	// re-planted from a shipped checkpoint), "resume-rejected" (a shipped
	// checkpoint failed validation and the range restarted clean).
	//
	// The integrity layer adds: "attest" (a sub-response's lane-digest
	// attestation verified, Digest carries it), "attest-fail" (the digest
	// disagreed with the aggregates and the attempt was discarded),
	// "quarantine-skip" (a quarantined or probation replica was passed
	// over during target selection), "audit-ok" (an audit re-execution
	// byte-matched the original), "audit-mismatch" (it did not; a
	// tie-break follows), "audit-liar" (the tie-break identified the
	// replica whose aggregates diverge from the majority), "audit-replant"
	// (a range won by the liar was re-executed on an honest replica),
	// "audit-unresolved" (no third replica could tie-break — the fan-out
	// is refused rather than served unverified), "audit-skipped" (no
	// eligible auditor, or the audit send itself failed), and the health
	// transitions "suspect", "quarantine", "probation", "readmit".
	Event string
	// Err carries the failure that triggered a retry or reassignment.
	Err string `json:",omitempty"`
	// Source and Seq are set on "resume"/"resume-rejected" events: the
	// replica whose shipped checkpoint was involved and the total sample
	// count it captured. Audit events reuse Source for the counterparty
	// replica (the original executor on "audit-ok"/"audit-mismatch", the
	// tie-breaker on "audit-liar").
	Source string `json:",omitempty"`
	Seq    int    `json:",omitempty"`
	// Digest is the lane-aggregate attestation digest involved in
	// "attest" and audit events (mc.RangeDigest of the verified frame).
	Digest string `json:",omitempty"`
}
