package core

import (
	"context"
	"math/big"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/safeplan"
	"qrel/internal/unreliable"
)

// SafePlan computes the exact reliability of a hierarchical conjunctive
// query without self-joins in polynomial time via the Dalvi–Suciu
// extensional plan (independent join / independent project). For k-ary
// queries, each tuple's instantiation psi(ā) is evaluated by its own
// plan. Queries outside the safe fragment get
// safeplan.ErrNotHierarchical (or a validation error); the dispatcher
// then falls back to the intensional engines. The per-tuple loop polls
// ctx.
func SafePlan(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteSafePlan); err != nil {
		return Result{}, err
	}
	one := big.NewRat(1, 1)
	h := new(big.Rat)
	vars := logic.FreeVars(f)
	k, err := forEachFreeTuple(ctx, db.A, f, func(env logic.Env, tuple rel.Tuple) error {
		bound := f
		if len(vars) > 0 {
			subst := make(map[string]logic.Term, len(vars))
			for i, v := range vars {
				subst[v] = logic.Elem(tuple[i])
			}
			bound = logic.Substitute(f, subst)
		}
		q, err := safeplan.FromFormula(bound)
		if err != nil {
			return err
		}
		p, err := q.Prob(db)
		if err != nil {
			return err
		}
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			return err
		}
		if obs {
			h.Add(h, new(big.Rat).Sub(one, p))
		} else {
			h.Add(h, p)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Engine: "safe-plan", Class: logic.Classify(f)}
	setExact(&res, h, db.A.N, k)
	return res, nil
}
