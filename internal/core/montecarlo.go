package core

import (
	"fmt"
	"math/rand"

	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// MonteCarlo approximates the reliability of an arbitrary
// polynomial-time evaluable query (here: any first-order query, whose
// data complexity is polynomial) with absolute error ε and confidence
// 1−δ, per Theorem 5.12. Per tuple ā it runs the paper's padded
// estimator at accuracy (ε/n^k, δ/n^k) and sums, exactly as in the
// k-ary case of the proof.
func MonteCarlo(db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		// Second-order evaluation is not polynomial-time; Theorem 5.12
		// does not apply. (WorldEnum still handles small instances.)
		return Result{}, fmt.Errorf("core: MonteCarlo requires a polynomial-time evaluable query, got %v", cls)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	epsT := opts.Eps / normF
	deltaT := opts.Delta / normF
	hFloat := 0.0
	samples := 0
	ev := func(env logic.Env) func(*rel.Structure) (bool, error) {
		frozen := env.Clone()
		return func(b *rel.Structure) (bool, error) { return logic.Eval(b, f, frozen) }
	}
	_, err := forEachFreeTuple(db.A, f, func(env logic.Env, _ rel.Tuple) error {
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			return err
		}
		est, err := mc.EstimateNuPadded(db, ev(env), opts.Xi, epsT, deltaT, rng)
		if err != nil {
			return err
		}
		samples += est.Samples
		if obs {
			hFloat += 1 - est.Value
		} else {
			hFloat += est.Value
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		HFloat:    hFloat,
		RFloat:    1 - hFloat/normF,
		Arity:     k,
		Engine:    "monte-carlo",
		Guarantee: AbsoluteError,
		Eps:       opts.Eps,
		Delta:     opts.Delta,
		Samples:   samples,
		Class:     logic.Classify(f),
	}, nil
}

// MonteCarloDirect approximates the reliability by sampling worlds and
// averaging the normalized Hamming distance |psi^A Δ psi^B| / n^k
// directly — a single Hoeffding-bounded estimator instead of Corollary
// 5.5's n^k per-tuple estimators. It needs one query evaluation per
// sampled world per tuple but only ⌈ln(2/δ)/2ε²⌉ worlds total, which is
// dramatically cheaper for k > 0; the E10 ablation quantifies the gap.
func MonteCarloDirect(db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		return Result{}, fmt.Errorf("core: MonteCarloDirect requires a polynomial-time evaluable query, got %v", cls)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	est, err := mc.EstimateMean(db, func(b *rel.Structure) (float64, error) {
		actual, err := answerSet(b, f)
		if err != nil {
			return 0, err
		}
		return float64(symmetricDiffSize(observed, actual)) / normF, nil
	}, opts.Eps, opts.Delta, rng)
	if err != nil {
		return Result{}, err
	}
	return Result{
		HFloat:    est.Value * normF,
		RFloat:    1 - est.Value,
		Arity:     k,
		Engine:    "monte-carlo-direct",
		Guarantee: AbsoluteError,
		Eps:       opts.Eps,
		Delta:     opts.Delta,
		Samples:   est.Samples,
		Class:     logic.Classify(f),
	}, nil
}

// MonteCarloRare is MonteCarloDirect with rare-event conditioning: it
// estimates the normalized Hamming distance — which is zero whenever no
// atom flips — conditioned on the flip event, cutting the sample count
// by a factor Z² where Z = Pr[some atom flips]. The estimator of choice
// when error probabilities are small (the regime the paper's
// introduction cares about: "even if the error probabilities of the
// atomic statements are small...").
func MonteCarloRare(db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		return Result{}, fmt.Errorf("core: MonteCarloRare requires a polynomial-time evaluable query, got %v", cls)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	est, err := mc.EstimateMeanRare(db, func(b *rel.Structure) (float64, error) {
		actual, err := answerSet(b, f)
		if err != nil {
			return 0, err
		}
		return float64(symmetricDiffSize(observed, actual)) / normF, nil
	}, opts.Eps, opts.Delta, rng)
	if err != nil {
		return Result{}, err
	}
	return Result{
		HFloat:    est.Value * normF,
		RFloat:    1 - est.Value,
		Arity:     k,
		Engine:    "monte-carlo-rare",
		Guarantee: AbsoluteError,
		Eps:       opts.Eps,
		Delta:     opts.Delta,
		Samples:   est.Samples,
		Class:     logic.Classify(f),
	}, nil
}
