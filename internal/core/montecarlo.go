package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qrel/internal/checkpoint"
	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// MonteCarlo approximates the reliability of an arbitrary
// polynomial-time evaluable query (here: any first-order query, whose
// data complexity is polynomial) with absolute error ε and confidence
// 1−δ, per Theorem 5.12. Per tuple ā it runs the paper's padded
// estimator at accuracy (ε/n^k, δ/n^k) and sums, exactly as in the
// k-ary case of the proof.
//
// Anytime semantics: when ctx is canceled or opts.Budget.MaxSamples
// runs out mid-computation, tuples already estimated keep their
// (possibly widened) per-tuple accuracy, each unestimated tuple
// contributes the midpoint 1/2 with worst-case error 1/2, and the
// result carries Degraded = true with Eps honestly re-summed from the
// realized per-tuple errors. Only a cancellation that arrives before
// any sample at all is an error.
func MonteCarlo(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteMonteCarlo); err != nil {
		return Result{}, err
	}
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		// Second-order evaluation is not polynomial-time; Theorem 5.12
		// does not apply. (WorldEnum still handles small instances.)
		return Result{}, fmt.Errorf("core: MonteCarlo requires a polynomial-time evaluable query, got %v", cls)
	}
	parallel := opts.Workers > 0
	src := mc.NewSource(opts.Seed)
	rng := rand.New(src)
	// streamState is the PRNG fingerprint of a snapshot boundary. The
	// parallel mode has no single sequential stream — every tuple's lanes
	// re-derive deterministically from mc.TupleSeed(Seed, idx) — so it
	// saves the zero state and resume skips restoring it; the Lanes
	// fingerprint field keeps the two modes from resuming each other.
	streamState := func() mc.RNGState {
		if parallel {
			return mc.RNGState{}
		}
		return src.State()
	}
	run, resumeSt, err := newCkptRun(opts.Checkpoint, "monte-carlo", f, opts)
	if err != nil {
		return Result{}, err
	}
	plan := planEval(db, f, opts)
	vars := logic.FreeVars(f)
	k := len(vars)
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	epsT := opts.Eps / normF
	deltaT := opts.Delta / normF
	hFloat := 0.0
	epsSum := 0.0
	samples := 0
	startTuple := 0
	if resumeSt != nil {
		if !parallel {
			if err := src.SetState(resumeSt.RNG); err != nil {
				return Result{}, fmt.Errorf("%w: %v", checkpoint.ErrCorruptCheckpoint, err)
			}
		}
		startTuple = resumeSt.Tuple
		hFloat = resumeSt.HFloat
		epsSum = resumeSt.EpsSum
		samples = resumeSt.Samples
	}
	degraded := false
	stopped := false // ctx canceled or budget exhausted: midpoint-fill the rest
	ev := func(env logic.Env) func(*rel.Structure) (bool, error) {
		frozen := env.Clone()
		return func(b *rel.Structure) (bool, error) { return logic.Eval(b, f, frozen) }
	}
	env := logic.Env{}
	tupleIdx := 0
	lastSaved := samples
	var ckErr error
	// saveBoundary snapshots "tuples before nextTuple are fully
	// accumulated; the PRNG stream is at st". A run resumed from such a
	// snapshot replays exactly the stream an uninterrupted run consumes,
	// so the final estimate is bit-identical.
	saveBoundary := func(nextTuple int, st mc.RNGState) bool {
		if run == nil {
			return true
		}
		lastSaved = samples
		if err := run.save(engineState{Tuple: nextTuple, HFloat: hFloat, EpsSum: epsSum, Samples: samples, RNG: st}); err != nil {
			ckErr = err
			return false
		}
		return true
	}
	var innerErr error
	rel.ForEachTuple(db.A.N, k, func(t rel.Tuple) bool {
		idx := tupleIdx
		tupleIdx++
		if idx < startTuple {
			// Already accumulated by the restored snapshot.
			return true
		}
		budgetLeft := 0 // unlimited
		if opts.Budget.MaxSamples > 0 {
			budgetLeft = opts.Budget.MaxSamples - samples
		}
		if !stopped && (ctx.Err() != nil || (opts.Budget.MaxSamples > 0 && budgetLeft <= 0)) {
			stopped, degraded = true, true
			// The boundary snapshot that makes a drained run resumable: a
			// restart replays from tuple idx at full accuracy.
			if !saveBoundary(idx, streamState()) {
				return false
			}
		}
		if stopped {
			hFloat += 0.5
			epsSum += 0.5
			return true
		}
		for i, v := range vars {
			env[v] = t[i]
		}
		obs, err := logic.Eval(db.A, f, env)
		if err != nil {
			innerErr = err
			return false
		}
		preTuple := streamState()
		var est mc.Estimate
		switch {
		case plan.compiled() && parallel:
			est, err = mc.EstimateNuPaddedParCompiled(ctx, db, plan.progs[idx], opts.Xi, epsT, deltaT, budgetLeft,
				mc.TupleSeed(opts.Seed, idx), parFor(opts), nil)
		case plan.compiled():
			est, err = mc.EstimateNuPaddedCompiled(ctx, db, plan.progs[idx], opts.Xi, epsT, deltaT, budgetLeft, rng)
		case parallel:
			est, err = mc.EstimateNuPaddedPar(ctx, db, ev(env), opts.Xi, epsT, deltaT, budgetLeft,
				mc.TupleSeed(opts.Seed, idx), parFor(opts), nil)
		default:
			est, err = mc.EstimateNuPadded(ctx, db, ev(env), opts.Xi, epsT, deltaT, budgetLeft, rng)
		}
		if errors.Is(err, mc.ErrNoSamples) {
			// Canceled before this tuple could draw anything: snapshot its
			// start, then fill it (and the rest) with the midpoint.
			stopped, degraded = true, true
			if !saveBoundary(idx, preTuple) {
				return false
			}
			hFloat += 0.5
			epsSum += 0.5
			return true
		}
		if err != nil {
			innerErr = err
			return false
		}
		if est.Partial {
			// The tuple was cut short mid-estimation. Snapshot the state at
			// its start — excluding the partial draws — so a resumed run
			// replays it in full; keep its widened contribution only for
			// this run's degraded result.
			stopped, degraded = true, true
			if !saveBoundary(idx, preTuple) {
				return false
			}
		}
		samples += est.Samples
		epsSum += est.Eps
		if obs {
			hFloat += 1 - est.Value
		} else {
			hFloat += est.Value
		}
		if run != nil && !stopped && samples-lastSaved >= run.every() {
			if !saveBoundary(idx+1, streamState()) {
				return false
			}
		}
		return true
	})
	if ckErr != nil {
		return Result{}, ckErr
	}
	if innerErr != nil {
		return Result{}, innerErr
	}
	if run != nil && !stopped && samples != lastSaved {
		// Completion snapshot: resuming a finished run is an instant replay.
		if !saveBoundary(tupleIdx, streamState()) {
			return Result{}, ckErr
		}
	}
	if degraded && samples == 0 {
		// Nothing was estimated at all; there is no partial result to
		// report honestly.
		return Result{}, fmt.Errorf("%w: canceled or out of budget before any sample", mc.ErrNoSamples)
	}
	eps := opts.Eps
	if degraded {
		eps = math.Min(1, epsSum/normF)
	}
	return Result{
		HFloat:        hFloat,
		RFloat:        1 - hFloat/normF,
		Arity:         k,
		Engine:        "monte-carlo",
		Guarantee:     AbsoluteError,
		Eps:           eps,
		Delta:         opts.Delta,
		Samples:       samples,
		Class:         logic.Classify(f),
		Degraded:      degraded,
		Seed:          opts.Seed,
		Resumed:       run.wasResumed(),
		EvalMode:      plan.mode,
		FallbackTrail: plan.trail,
	}, nil
}

// MonteCarloDirect approximates the reliability by sampling worlds and
// averaging the normalized Hamming distance |psi^A Δ psi^B| / n^k
// directly — a single Hoeffding-bounded estimator instead of Corollary
// 5.5's n^k per-tuple estimators. It needs one query evaluation per
// sampled world per tuple but only ⌈ln(2/δ)/2ε²⌉ worlds total, which is
// dramatically cheaper for k > 0; the E10 ablation quantifies the gap.
//
// This is the runtime's anytime engine of last resort: a cancellation
// or sample budget mid-run yields the partial estimate with Degraded =
// true and the honestly widened Hoeffding Eps for the realized sample
// count.
func MonteCarloDirect(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteMCDirect); err != nil {
		return Result{}, err
	}
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		return Result{}, fmt.Errorf("core: MonteCarloDirect requires a polynomial-time evaluable query, got %v", cls)
	}
	src := mc.NewSource(opts.Seed)
	run, resumeSt, err := newCkptRun(opts.Checkpoint, "monte-carlo-direct", f, opts)
	if err != nil {
		return Result{}, err
	}
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	stat := func(b *rel.Structure) (float64, error) {
		actual, err := answerSet(b, f)
		if err != nil {
			return 0, err
		}
		return float64(symmetricDiffSize(observed, actual)) / normF, nil
	}
	plan := planEval(db, f, opts)
	var cm *mc.CompiledMean
	if plan.compiled() {
		cm = &mc.CompiledMean{Progs: plan.progs, Base: plan.base, NormF: normF}
	}
	if opts.LaneRange != nil {
		// Lane-range mode: execute only the assigned subrange of the
		// Total-lane split and return the raw per-lane aggregates for the
		// coordinator to merge. HFloat/RFloat are partial-range values.
		var rr mc.RangeResult
		if cm != nil {
			rr, err = mc.EstimateMeanRangeCompiled(ctx, db, cm, opts.Eps, opts.Delta, opts.Budget.MaxSamples,
				opts.Seed, *opts.LaneRange, rangeWorkers(opts), run.loopCkpt(resumeSt))
		} else {
			rr, err = mc.EstimateMeanRange(ctx, db, stat, opts.Eps, opts.Delta, opts.Budget.MaxSamples,
				opts.Seed, *opts.LaneRange, rangeWorkers(opts), run.loopCkpt(resumeSt))
		}
		if err != nil {
			return Result{}, err
		}
		drawn, sum := rr.Drawn(), 0.0
		for _, a := range rr.Lanes {
			sum += a.Sum
		}
		return Result{
			HFloat:        sum * normF / float64(drawn),
			RFloat:        1 - sum/float64(drawn),
			Arity:         k,
			Engine:        "monte-carlo-direct",
			Guarantee:     AbsoluteError,
			Eps:           opts.Eps,
			Delta:         opts.Delta,
			Samples:       drawn,
			Class:         logic.Classify(f),
			Seed:          opts.Seed,
			Resumed:       run.wasResumed(),
			EvalMode:      plan.mode,
			FallbackTrail: plan.trail,
			LaneRange:     &LaneRangeResult{Range: rr.Range, Method: rr.Method, Requested: rr.Requested, NormF: normF, Lanes: rr.Lanes},
		}, nil
	}
	var est mc.Estimate
	switch {
	case cm != nil && opts.Workers > 0:
		est, err = mc.EstimateMeanParCompiled(ctx, db, cm, opts.Eps, opts.Delta, opts.Budget.MaxSamples,
			opts.Seed, parFor(opts), run.loopCkpt(resumeSt))
	case cm != nil:
		est, err = mc.EstimateMeanCkCompiled(ctx, db, cm, opts.Eps, opts.Delta, opts.Budget.MaxSamples, src, run.loopCkpt(resumeSt))
	case opts.Workers > 0:
		est, err = mc.EstimateMeanPar(ctx, db, stat, opts.Eps, opts.Delta, opts.Budget.MaxSamples,
			opts.Seed, parFor(opts), run.loopCkpt(resumeSt))
	default:
		est, err = mc.EstimateMeanCk(ctx, db, stat, opts.Eps, opts.Delta, opts.Budget.MaxSamples, src, run.loopCkpt(resumeSt))
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		HFloat:        est.Value * normF,
		RFloat:        1 - est.Value,
		Arity:         k,
		Engine:        "monte-carlo-direct",
		Guarantee:     AbsoluteError,
		Eps:           est.Eps,
		Delta:         opts.Delta,
		Samples:       est.Samples,
		Class:         logic.Classify(f),
		Degraded:      est.Partial,
		Seed:          opts.Seed,
		Resumed:       run.wasResumed(),
		EvalMode:      plan.mode,
		FallbackTrail: plan.trail,
	}, nil
}

// MonteCarloRare is MonteCarloDirect with rare-event conditioning: it
// estimates the normalized Hamming distance — which is zero whenever no
// atom flips — conditioned on the flip event, cutting the sample count
// by a factor Z² where Z = Pr[some atom flips]. The estimator of choice
// when error probabilities are small (the regime the paper's
// introduction cares about: "even if the error probabilities of the
// atomic statements are small..."). Anytime semantics match
// MonteCarloDirect.
func MonteCarloRare(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteMCRare); err != nil {
		return Result{}, err
	}
	if cls := logic.Classify(f); cls == logic.ClassSecondOrder {
		return Result{}, fmt.Errorf("core: MonteCarloRare requires a polynomial-time evaluable query, got %v", cls)
	}
	src := mc.NewSource(opts.Seed)
	run, resumeSt, err := newCkptRun(opts.Checkpoint, "monte-carlo-rare", f, opts)
	if err != nil {
		return Result{}, err
	}
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	normF := float64(1)
	for i := 0; i < k; i++ {
		normF *= float64(db.A.N)
	}
	stat := func(b *rel.Structure) (float64, error) {
		actual, err := answerSet(b, f)
		if err != nil {
			return 0, err
		}
		return float64(symmetricDiffSize(observed, actual)) / normF, nil
	}
	var est mc.Estimate
	if opts.Workers > 0 {
		est, err = mc.EstimateMeanRarePar(ctx, db, stat, opts.Eps, opts.Delta, opts.Budget.MaxSamples,
			opts.Seed, parFor(opts), run.loopCkpt(resumeSt))
	} else {
		est, err = mc.EstimateMeanRareCk(ctx, db, stat, opts.Eps, opts.Delta, opts.Budget.MaxSamples, src, run.loopCkpt(resumeSt))
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		HFloat:    est.Value * normF,
		RFloat:    1 - est.Value,
		Arity:     k,
		Engine:    "monte-carlo-rare",
		Guarantee: AbsoluteError,
		Eps:       est.Eps,
		Delta:     opts.Delta,
		Samples:   est.Samples,
		Class:     logic.Classify(f),
		Degraded:  est.Partial,
		Seed:      opts.Seed,
		Resumed:   run.wasResumed(),
		// Rare-event conditioning samples worlds conditioned on the flip
		// event, a stream the batch layout doesn't cover yet.
		EvalMode: EvalInterpreted,
	}, nil
}
