package core

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Sensitivity reports how much one uncertain atom drives a query's
// risk: the reliability conditioned on the atom being true and false,
// and the resulting resolution value — how much the expected error
// would shrink if the atom's truth were verified (the expected value of
// perfect information about this atom).
type Sensitivity struct {
	// Atom is the analyzed ground atom.
	Atom rel.GroundAtom
	// Nu is Pr[atom holds in the actual database].
	Nu *big.Rat
	// HGiven true/false are the conditional expected errors.
	HTrue, HFalse *big.Rat
	// Resolution = H − (nu·HTrue + (1−nu)·HFalse): zero by the law of
	// total probability when H itself is measured against the same
	// observed answer, so it is reported for the *verified* variants —
	// see HResolved.
	//
	// HResolved is the expected error remaining after the atom is
	// verified: nu·HTrue + (1−nu)·HFalse. Verification helps when
	// HResolved < H... for answer-flip risk the two coincide; the useful
	// signal is the spread |HTrue − HFalse|.
	HResolved *big.Rat
	// Spread is |HTrue − HFalse|: atoms with a large spread dominate
	// the query's uncertainty.
	Spread *big.Rat
}

// AtomSensitivity computes the Sensitivity of one uncertain atom for a
// query, using exact world enumeration on the conditioned databases.
func AtomSensitivity(db *unreliable.DB, f logic.Formula, atom rel.GroundAtom, opts Options) (Sensitivity, error) {
	opts = opts.withDefaults()
	nu := db.NuAtom(atom)
	one := big.NewRat(1, 1)
	if nu.Sign() == 0 || nu.Cmp(one) == 0 {
		return Sensitivity{}, fmt.Errorf("core: atom %v is certain; sensitivity undefined", atom)
	}
	condT, err := db.Condition(atom, true)
	if err != nil {
		return Sensitivity{}, err
	}
	condF, err := db.Condition(atom, false)
	if err != nil {
		return Sensitivity{}, err
	}
	// The conditional H must be measured against the ORIGINAL observed
	// answer (the user still holds psi^A), so evaluate with WorldEnum on
	// databases whose observed structure is unchanged: Condition keeps A
	// and only reshapes mu, which is exactly what we need.
	resT, err := WorldEnum(context.Background(), condT, f, opts)
	if err != nil {
		return Sensitivity{}, err
	}
	resF, err := WorldEnum(context.Background(), condF, f, opts)
	if err != nil {
		return Sensitivity{}, err
	}
	resolved := new(big.Rat).Mul(nu, resT.H)
	resolved.Add(resolved, new(big.Rat).Mul(new(big.Rat).Sub(one, nu), resF.H))
	spread := new(big.Rat).Sub(resT.H, resF.H)
	if spread.Sign() < 0 {
		spread.Neg(spread)
	}
	return Sensitivity{
		Atom:      atom,
		Nu:        nu,
		HTrue:     resT.H,
		HFalse:    resF.H,
		HResolved: resolved,
		Spread:    spread,
	}, nil
}

// RankSensitivities computes sensitivities for every uncertain atom and
// returns them sorted by decreasing spread — the triage list: verify
// the top atoms first to pin down the query's risk. Exponential in the
// number of uncertain atoms (two world enumerations per atom); bounded
// by opts.MaxEnumAtoms.
func RankSensitivities(db *unreliable.DB, f logic.Formula, opts Options) ([]Sensitivity, error) {
	atoms := db.UncertainAtoms()
	out := make([]Sensitivity, 0, len(atoms))
	for _, atom := range atoms {
		s, err := AtomSensitivity(db, f, atom, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Spread.Cmp(out[j].Spread) > 0 })
	return out, nil
}
