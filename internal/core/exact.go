package core

import (
	"context"
	"fmt"
	"math/big"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// WorldEnum computes the exact expected error and reliability of an
// arbitrary query — first-order or second-order — by enumerating the
// possible worlds of Omega(D):
//
//	H_psi(D) = Σ_B nu(B) · |psi^A Δ psi^B|.
//
// This is the deterministic simulation of the FP^#P algorithm of
// Theorem 4.2 (see package sharpp for the oracle view); its running
// time is 2^u query evaluations for u uncertain atoms, bounded by
// opts.MaxEnumAtoms and opts.Budget.MaxWorlds. The enumeration polls
// ctx between worlds.
func WorldEnum(ctx context.Context, db *unreliable.DB, f logic.Formula, opts Options) (Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := faultinject.Hit(faultinject.SiteWorldEnum); err != nil {
		return Result{}, err
	}
	if !opts.Budget.allowsWorlds(db) {
		return Result{}, fmt.Errorf("%w: world space %v exceeds budget of %d worlds",
			ErrBudgetExceeded, db.WorldCount(), opts.Budget.MaxWorlds)
	}
	observed, err := answerSet(db.A, f)
	if err != nil {
		return Result{}, err
	}
	k := len(logic.FreeVars(f))
	h := new(big.Rat)
	var evalErr error
	err = db.ForEachWorldCtx(ctx, opts.MaxEnumAtoms, func(b *rel.Structure, nu *big.Rat) bool {
		actual, err := answerSet(b, f)
		if err != nil {
			evalErr = err
			return false
		}
		diff := symmetricDiffSize(observed, actual)
		if diff == 0 {
			return true
		}
		h.Add(h, new(big.Rat).Mul(nu, big.NewRat(int64(diff), 1)))
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if evalErr != nil {
		return Result{}, evalErr
	}
	res := Result{Engine: "world-enum", Class: logic.Classify(f)}
	setExact(&res, h, db.A.N, k)
	return res, nil
}

// answerSet computes psi^A as a set of tuple keys.
func answerSet(s *rel.Structure, f logic.Formula) (map[uint64]struct{}, error) {
	if err := faultinject.Hit(faultinject.SiteAnswerSet); err != nil {
		return nil, err
	}
	ans, err := logic.Answer(s, f)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]struct{}, len(ans))
	for _, t := range ans {
		out[t.Key()] = struct{}{}
	}
	return out, nil
}

// symmetricDiffSize returns |a Δ b|.
func symmetricDiffSize(a, b map[uint64]struct{}) int {
	diff := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			diff++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			diff++
		}
	}
	return diff
}

// ExpectedErrorPerTuple computes, for every tuple ā ∈ A^k, the exact
// expected error H_psi(ā)(D) = Pr[psi(ā)^B ≠ psi(ā)^A] by world
// enumeration. The sum of the returned values is H_psi(D); the
// per-tuple values tell the user which answer tuples are unreliable.
func ExpectedErrorPerTuple(db *unreliable.DB, f logic.Formula, opts Options) ([]TupleError, error) {
	opts = opts.withDefaults()
	observed, err := answerSet(db.A, f)
	if err != nil {
		return nil, err
	}
	vars := logic.FreeVars(f)
	count := rel.TupleCount(db.A.N, len(vars))
	out := make([]TupleError, 0, count)
	idx := map[uint64]int{}
	rel.ForEachTuple(db.A.N, len(vars), func(t rel.Tuple) bool {
		idx[t.Key()] = len(out)
		_, inObs := observed[t.Key()]
		out = append(out, TupleError{Tuple: t.Clone(), Observed: inObs, H: new(big.Rat)})
		return true
	})
	var evalErr error
	err = db.ForEachWorld(opts.MaxEnumAtoms, func(b *rel.Structure, nu *big.Rat) bool {
		actual, err := answerSet(b, f)
		if err != nil {
			evalErr = err
			return false
		}
		for key, i := range idx {
			_, inActual := actual[key]
			if inActual != out[i].Observed {
				out[i].H.Add(out[i].H, nu)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// TupleError is the expected error of one answer tuple.
type TupleError struct {
	// Tuple is the instantiation of the free variables.
	Tuple rel.Tuple
	// Observed reports whether the tuple is in psi^A.
	Observed bool
	// H is Pr[psi(ā)^B ≠ psi(ā)^A].
	H *big.Rat
}
