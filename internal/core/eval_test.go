package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/mc"
)

// The eval-mode contract: compiled and interpreted runs are
// byte-identical — estimates, checkpoints, lane aggregates, digests —
// for any seed and worker count, so the mode is a pure throughput knob
// that replicas, snapshots, and clusters can disagree on freely.

// evalEngines enumerates the sampling engines with a compiled path and
// a query each engine accepts.
var evalEngines = []struct {
	name   string
	engine Engine
	query  string
	opts   Options
}{
	{"monte-carlo-direct", EngineMCDirect, "E(x,y) & S(x)", Options{Eps: 0.1, Delta: 0.1, Seed: 7}},
	{"monte-carlo", EngineMonteCarlo, "E(x,x) | S(x)", Options{Eps: 0.3, Delta: 0.1, Seed: 11}},
	{"lineage-kl", EngineLineageKL, "exists x y . E(x,y) & S(x)", Options{Eps: 0.3, Delta: 0.2, Seed: 13}},
}

func sameEstimate(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.HFloat != b.HFloat || a.RFloat != b.RFloat || a.Samples != b.Samples || a.Eps != b.Eps {
		t.Fatalf("%s: compiled (H=%v R=%v n=%d eps=%v) != interpreted (H=%v R=%v n=%d eps=%v)",
			label, a.HFloat, a.RFloat, a.Samples, a.Eps, b.HFloat, b.RFloat, b.Samples, b.Eps)
	}
}

func TestEvalModesBitIdentical(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(42)), 3, 6)
	for _, tc := range evalEngines {
		f := logic.MustParse(tc.query, nil)
		for _, w := range []int{0, 1, 2, 4, 7} {
			opts := tc.opts
			opts.Workers = w
			opts.Eval = EvalInterpreted
			want, err := ReliabilityWith(bg, tc.engine, d, f, opts)
			if err != nil {
				t.Fatalf("%s workers=%d interpreted: %v", tc.name, w, err)
			}
			if want.EvalMode != EvalInterpreted {
				t.Fatalf("%s: interpreted run reports EvalMode %q", tc.name, want.EvalMode)
			}
			opts.Eval = EvalCompiled
			got, err := ReliabilityWith(bg, tc.engine, d, f, opts)
			if err != nil {
				t.Fatalf("%s workers=%d compiled: %v", tc.name, w, err)
			}
			if got.EvalMode != EvalCompiled {
				t.Fatalf("%s: compiled run reports EvalMode %q (trail %v)", tc.name, got.EvalMode, got.FallbackTrail)
			}
			sameEstimate(t, tc.name, got, want)
			// The default resolves to compiled for these shapes.
			opts.Eval = ""
			auto, err := ReliabilityWith(bg, tc.engine, d, f, opts)
			if err != nil {
				t.Fatalf("%s workers=%d auto: %v", tc.name, w, err)
			}
			if auto.EvalMode != EvalCompiled {
				t.Fatalf("%s: auto resolved to %q", tc.name, auto.EvalMode)
			}
			sameEstimate(t, tc.name+" (auto)", auto, want)
		}
	}
}

// TestEvalModeLaneRangeDigest pins the cluster-facing half of the
// contract: a lane-range run produces the same per-lane aggregates —
// and therefore the same attestation digest — in both modes, so
// replicas of one fan-out may disagree on eval mode without tripping
// attestation.
func TestEvalModeLaneRangeDigest(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(44)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	for _, r := range []mc.Range{{Lo: 0, Hi: 3, Total: 8}, {Lo: 3, Hi: 8, Total: 8}} {
		lr := r
		base := Options{Eps: 0.1, Delta: 0.1, Seed: 7, Workers: 2, LaneRange: &lr}
		base.Eval = EvalInterpreted
		want, err := ReliabilityWith(bg, EngineMCDirect, d, f, base)
		if err != nil {
			t.Fatalf("range %v interpreted: %v", r, err)
		}
		base.Eval = EvalCompiled
		got, err := ReliabilityWith(bg, EngineMCDirect, d, f, base)
		if err != nil {
			t.Fatalf("range %v compiled: %v", r, err)
		}
		sameEstimate(t, "lane-range", got, want)
		dg, dw := mc.RangeDigest(got.LaneRange.Lanes), mc.RangeDigest(want.LaneRange.Lanes)
		if dg != dw {
			t.Fatalf("range %v: compiled lane digest %s != interpreted %s", r, dg, dw)
		}
	}
}

// TestEvalModeOutsideCheckpointFingerprint: a snapshot written by an
// interpreted run resumes under a compiled run (and finishes
// byte-identical to an uninterrupted run) — the eval mode must not
// join the checkpoint fingerprint.
func TestEvalModeOutsideCheckpointFingerprint(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(42)), 3, 6)
	f := logic.MustParse("E(x,y) & S(x)", nil)
	base := Options{Eps: 0.05, Delta: 0.05, Seed: 7}

	base.Eval = EvalInterpreted
	full, err := MonteCarloDirect(bg, d, f, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted := base
	interrupted.Eval = EvalInterpreted
	interrupted.Budget = Budget{MaxSamples: 300}
	interrupted.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Every: 100}
	if _, err := MonteCarloDirect(bg, d, f, interrupted); err != nil {
		t.Fatal(err)
	}

	resumed := base
	resumed.Eval = EvalCompiled
	resumed.Checkpoint = &CheckpointConfig{Store: openStore(t, dir, nil), Resume: true}
	res, err := MonteCarloDirect(bg, d, f, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("compiled run did not resume the interpreted snapshot")
	}
	if res.HFloat != full.HFloat || res.Samples != full.Samples {
		t.Fatalf("compiled resume of interpreted snapshot: H=%v n=%d, uninterrupted H=%v n=%d",
			res.HFloat, res.Samples, full.HFloat, full.Samples)
	}
}

// TestEvalCompileFaultFallsBack: an injected vm/compile fault forces
// the interpreter, recorded in the trail, with the result unchanged.
func TestEvalCompileFaultFallsBack(t *testing.T) {
	defer faultinject.Reset()
	d := randUDB(rand.New(rand.NewSource(42)), 3, 6)
	for _, tc := range evalEngines {
		f := logic.MustParse(tc.query, nil)
		opts := tc.opts
		opts.Eval = EvalInterpreted
		want, err := ReliabilityWith(bg, tc.engine, d, f, opts)
		if err != nil {
			t.Fatalf("%s interpreted: %v", tc.name, err)
		}
		faultinject.Enable(faultinject.SiteVMCompile, faultinject.Fault{Err: errors.New("injected compile failure")})
		opts.Eval = EvalCompiled
		got, err := ReliabilityWith(bg, tc.engine, d, f, opts)
		faultinject.Reset()
		if err != nil {
			t.Fatalf("%s with compile fault: %v", tc.name, err)
		}
		if got.EvalMode != EvalInterpreted {
			t.Fatalf("%s: fault did not force interpreted mode, got %q", tc.name, got.EvalMode)
		}
		found := false
		for _, s := range got.FallbackTrail {
			if s.Engine == "vm" && strings.Contains(s.Err, "injected compile failure") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: trail %v lacks the vm fallback step", tc.name, got.FallbackTrail)
		}
		sameEstimate(t, tc.name+" (fault fallback)", got, want)
	}
}

func TestUnknownEvalModeRejected(t *testing.T) {
	d := randUDB(rand.New(rand.NewSource(42)), 3, 2)
	f := logic.MustParse("S(x)", nil)
	if _, err := ReliabilityWith(bg, EngineMCDirect, d, f, Options{Eval: "bogus"}); err == nil {
		t.Fatal("expected an error for eval mode \"bogus\"")
	}
}
