package sharpp

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// fixture: universe {0,1,2}, S/1 with S(0) observed; uncertain atoms
// S(0) (mu 1/4), S(1) (mu 1/3), S(2) (mu 1/6).
func fixtureDB() *unreliable.DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	d := unreliable.New(s)
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 4))
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}, big.NewRat(1, 3))
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{2}}, big.NewRat(1, 6))
	return d
}

// predSomeS: ∃x S(x).
func predSomeS(b *rel.Structure) (bool, error) {
	for i := 0; i < b.N; i++ {
		if b.Holds("S", rel.Tuple{i}) {
			return true, nil
		}
	}
	return false, nil
}

// exactProb computes Pr[accept] by direct enumeration, independently of
// the oracle machinery.
func exactProb(t *testing.T, d *unreliable.DB, accept func(*rel.Structure) (bool, error)) *big.Rat {
	t.Helper()
	total := new(big.Rat)
	err := d.ForEachWorld(20, func(b *rel.Structure, nu *big.Rat) bool {
		ok, err := accept(b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			total.Add(total, nu)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestOracleProbMatchesEnumeration(t *testing.T) {
	d := fixtureDB()
	o, err := CountAcceptingPaths(d, predSomeS, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := exactProb(t, d, predSomeS)
	if o.Prob().Cmp(want) != 0 {
		t.Errorf("oracle prob %v, want %v", o.Prob(), want)
	}
	if o.Worlds != 8 {
		t.Errorf("visited %d worlds, want 8", o.Worlds)
	}
	// g = 4·3·6 = 72 (product of denominators).
	if o.G.Int64() != 72 {
		t.Errorf("g = %v, want 72", o.G)
	}
}

func TestOracleAllAndNone(t *testing.T) {
	d := fixtureDB()
	o, err := CountAcceptingPaths(d, func(*rel.Structure) (bool, error) { return true, nil }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if o.Accepting.Cmp(o.G) != 0 {
		t.Errorf("always-accept count %v, want g = %v", o.Accepting, o.G)
	}
	o, err = CountAcceptingPaths(d, func(*rel.Structure) (bool, error) { return false, nil }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if o.Accepting.Sign() != 0 {
		t.Errorf("never-accept count %v, want 0", o.Accepting)
	}
}

func TestOracleBudget(t *testing.T) {
	d := fixtureDB()
	if _, err := CountAcceptingPaths(d, predSomeS, 2); err == nil {
		t.Error("budget not enforced")
	}
}

func TestPaddingEncodeExtract(t *testing.T) {
	pad := Padding{Q: 5, T: 8}
	// Sum of up to 2^5 numbers with adversarial junk.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		total := new(big.Int)
		wantSum := 0
		n := 1 + rng.Intn(32)
		for i := 0; i < n; i++ {
			y := new(big.Int).Rand(rng, big.NewInt(1<<30))
			z := new(big.Int).Rand(rng, big.NewInt(1<<8))
			b := rng.Intn(2) == 0
			if b {
				wantSum++
			}
			enc, err := pad.Encode(y, b, z)
			if err != nil {
				t.Fatal(err)
			}
			total.Add(total, enc)
		}
		if got := pad.ExtractSum(total); got.Int64() != int64(wantSum) {
			t.Fatalf("trial %d: extracted %v, want %d", trial, got, wantSum)
		}
	}
}

func TestPaddingValidation(t *testing.T) {
	pad := Padding{Q: 3, T: 4}
	if _, err := pad.Encode(big.NewInt(1), true, big.NewInt(16)); err == nil {
		t.Error("oversized junk suffix accepted")
	}
	if _, err := pad.Encode(big.NewInt(-1), true, big.NewInt(0)); err == nil {
		t.Error("negative junk prefix accepted")
	}
	if _, err := (Padding{Q: -1}).Encode(big.NewInt(0), true, big.NewInt(0)); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestCountViaPaddingMatchesDirect(t *testing.T) {
	d := fixtureDB()
	want := exactProb(t, d, predSomeS)
	// Junk must not matter: several junk seeds, identical result.
	for seed := int64(0); seed < 5; seed++ {
		po, err := CountViaPadding(d, predSomeS, rand.New(rand.NewSource(seed)), 10)
		if err != nil {
			t.Fatal(err)
		}
		if po.Prob().Cmp(want) != 0 {
			t.Errorf("seed %d: padded prob %v, want %v", seed, po.Prob(), want)
		}
		// The raw total is junk-contaminated: it must differ from the
		// clean accepting count scaled into the window (with overwhelming
		// probability), demonstrating that extraction is doing real work.
		clean := new(big.Int).Lsh(po.Accepting, uint(po.Padding.Q+po.Padding.T))
		if po.Total.Cmp(clean) == 0 {
			t.Logf("seed %d: junk happened to be zero", seed)
		}
	}
}

func TestExpectedError(t *testing.T) {
	d := fixtureDB()
	o, err := CountAcceptingPaths(d, predSomeS, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := o.Prob()
	// Observed database satisfies ∃x S(x), so H = 1 − p.
	h := ExpectedError(o, true)
	sum := new(big.Rat).Add(h, p)
	if sum.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("H + p = %v, want 1", sum)
	}
	// If the query were false on A, H = p.
	if ExpectedError(o, false).Cmp(p) != 0 {
		t.Error("H for unobserved query should equal p")
	}
}

func TestOraclePropagatesEvalError(t *testing.T) {
	d := fixtureDB()
	boom := func(*rel.Structure) (bool, error) { return false, errTest }
	if _, err := CountAcceptingPaths(d, boom, 10); err == nil {
		t.Error("eval error swallowed")
	}
	if _, err := CountViaPadding(d, boom, rand.New(rand.NewSource(1)), 10); err == nil {
		t.Error("eval error swallowed in padded variant")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
