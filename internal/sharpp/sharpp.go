// Package sharpp implements the counting machinery of Section 4: the
// nondeterministic path-counting oracle of Theorem 4.2 (a #P-function
// whose accepting-path count encodes g·Pr[B ⊨ psi]) and the arithmetic
// skeleton of the Regan–Schwentick padding (Theorem 4.1) that lets a
// single bit of a #P-function carry the answer of an arbitrary
// PH-query, with "junk" bits provably unable to interfere.
//
// The package simulates the nondeterministic machine by exhaustive
// weighted world enumeration — the deterministic cost of evaluating a
// #P oracle, which is exactly the exponential blow-up the theorem hides
// inside the oracle call.
package sharpp

import (
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Oracle is the result of simulating the Theorem 4.2 counting machine.
type Oracle struct {
	// Accepting is the number of accepting computation paths:
	// Σ_B nu(B)·g·accept(B).
	Accepting *big.Int
	// G is the normalizer: every world contributes nu(B)·g ∈ ℕ paths.
	G *big.Int
	// Worlds is the number of enumerated worlds.
	Worlds int
}

// Prob returns Pr[accept] = Accepting / G.
func (o Oracle) Prob() *big.Rat {
	return new(big.Rat).SetFrac(o.Accepting, o.G)
}

// CountAcceptingPaths simulates the machine M from the proof of Theorem
// 4.2 for a polynomial-time evaluable query: it guesses the truth
// values of all uncertain atoms (one world B per leaf), splits each
// leaf nu(B)·g times, and accepts where accept(B) holds. The returned
// count divided by g is exactly Pr[B ⊨ psi]. budget caps the number of
// uncertain atoms (2^u worlds are enumerated).
func CountAcceptingPaths(db *unreliable.DB, accept func(*rel.Structure) (bool, error), budget int) (Oracle, error) {
	g := db.G()
	total := new(big.Int)
	worlds := 0
	var evalErr error
	err := db.ForEachWorld(budget, func(b *rel.Structure, nu *big.Rat) bool {
		worlds++
		ok, err := accept(b)
		if err != nil {
			evalErr = err
			return false
		}
		if !ok {
			return true
		}
		// nu(B)·g is integral by the choice of g.
		leaf := new(big.Rat).Mul(nu, new(big.Rat).SetInt(g))
		if !leaf.IsInt() {
			evalErr = fmt.Errorf("sharpp: nu(B)·g = %v not integral; g computation broken", leaf)
			return false
		}
		total.Add(total, leaf.Num())
		return true
	})
	if err != nil {
		return Oracle{}, err
	}
	if evalErr != nil {
		return Oracle{}, evalErr
	}
	return Oracle{Accepting: total, G: g, Worlds: worlds}, nil
}

// Padding carries the parameters of the Regan–Schwentick encoding: each
// leaf contributes a number whose binary representation is
//
//	y 0^Q b 0^Q z   with |z| = T,
//
// i.e. y·2^(2Q+T+1) + b·2^(Q+T) + z. Summing at most 2^Q such numbers
// keeps the sum of the b bits visible in the bit window
// [Q+T, 2Q+T] of the total: the z parts sum to < 2^(Q+T) and cannot
// carry into the window, and the window's capacity 2^(Q+1) exceeds the
// number of summands.
type Padding struct {
	Q int // zero-run length; at most 2^Q numbers may be summed
	T int // junk suffix width
}

// Encode returns y·2^(2Q+T+1) + b·2^(Q+T) + z, validating z < 2^T and
// y, z ≥ 0.
func (p Padding) Encode(y *big.Int, b bool, z *big.Int) (*big.Int, error) {
	if p.Q < 0 || p.T < 0 {
		return nil, fmt.Errorf("sharpp: invalid padding %+v", p)
	}
	if z.Sign() < 0 || z.BitLen() > p.T {
		return nil, fmt.Errorf("sharpp: junk suffix %v does not fit in %d bits", z, p.T)
	}
	if y.Sign() < 0 {
		return nil, fmt.Errorf("sharpp: negative junk prefix %v", y)
	}
	v := new(big.Int).Lsh(y, uint(2*p.Q+p.T+1))
	if b {
		bit := new(big.Int).Lsh(big.NewInt(1), uint(p.Q+p.T))
		v.Add(v, bit)
	}
	return v.Add(v, z), nil
}

// ExtractSum recovers Σ b_i from the sum of at most 2^Q encoded numbers:
// the bit window [Q+T, 2Q+T] of the total.
func (p Padding) ExtractSum(total *big.Int) *big.Int {
	window := new(big.Int).Rsh(total, uint(p.Q+p.T))
	mask := new(big.Int).Lsh(big.NewInt(1), uint(p.Q+1))
	mask.Sub(mask, big.NewInt(1))
	return window.And(window, mask)
}

// PaddedOracle is the result of the padded simulation.
type PaddedOracle struct {
	Oracle
	// Total is the raw padded #P-count, junk included.
	Total *big.Int
	// Padding is the encoding geometry used.
	Padding Padding
}

// CountViaPadding simulates the general (PH-query) branch of the proof
// of Theorem 4.2: each leaf runs the Regan–Schwentick machine whose
// accepting-path count has the padded form with the query answer as the
// distinguished bit, and adversarial junk y, z drawn from junkRng. The
// sum of the relevant bits — recovered by ExtractSum — equals
// g·Pr[B ⊨ psi] no matter the junk. budget caps the uncertain atoms.
func CountViaPadding(db *unreliable.DB, accept func(*rel.Structure) (bool, error), junkRng *rand.Rand, budget int) (PaddedOracle, error) {
	g := db.G()
	// Fewer than 2^Q leaves are summed: the machine has g leaves total.
	pad := Padding{Q: g.BitLen() + 1, T: 16}
	total := new(big.Int)
	worlds := 0
	var evalErr error
	err := db.ForEachWorld(budget, func(b *rel.Structure, nu *big.Rat) bool {
		worlds++
		ok, err := accept(b)
		if err != nil {
			evalErr = err
			return false
		}
		leaves := new(big.Rat).Mul(nu, new(big.Rat).SetInt(g))
		if !leaves.IsInt() {
			evalErr = fmt.Errorf("sharpp: nu(B)·g = %v not integral", leaves)
			return false
		}
		// Each of the nu(B)·g leaves contributes one padded number with
		// its own junk; we draw one junk pair per world and multiply,
		// which is a sum of identical leaves (still < 2^Q total).
		y := new(big.Int).Rand(junkRng, big.NewInt(1<<20))
		z := new(big.Int).Rand(junkRng, new(big.Int).Lsh(big.NewInt(1), uint(pad.T)))
		enc, err := pad.Encode(y, ok, z)
		if err != nil {
			evalErr = err
			return false
		}
		total.Add(total, enc.Mul(enc, leaves.Num()))
		return true
	})
	if err != nil {
		return PaddedOracle{}, err
	}
	if evalErr != nil {
		return PaddedOracle{}, evalErr
	}
	accepting := pad.ExtractSum(total)
	return PaddedOracle{
		Oracle:  Oracle{Accepting: accepting, G: g, Worlds: worlds},
		Total:   total,
		Padding: pad,
	}, nil
}

// ExpectedError computes H_psi(D) for a Boolean query from the oracle
// count: Pr[psi^B ≠ psi^A], i.e. 1 − Pr[psi] when A ⊨ psi and Pr[psi]
// otherwise (the FP part of the FP^#P algorithm).
func ExpectedError(o Oracle, observed bool) *big.Rat {
	p := o.Prob()
	if observed {
		return p.Sub(big.NewRat(1, 1), p)
	}
	return p
}
