package mc

import (
	"context"
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// bg is the no-deadline context shared by the non-cancellation tests.
var bg = context.Background()

// oneAtomDB is a database with a single uncertain fact S(0), mu = 1/4.
// Pr[B ⊨ S(0)] = 3/4.
func oneAtomDB() *unreliable.DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := unreliable.New(s)
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 4))
	return d
}

func predS0(b *rel.Structure) (bool, error) { return b.Holds("S", rel.Tuple{0}), nil }

func TestHoeffdingSampleSize(t *testing.T) {
	n, err := HoeffdingSampleSize(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(2/0.05) / (2 * 0.05 * 0.05)))
	if n != want {
		t.Errorf("HoeffdingSampleSize = %d, want %d", n, want)
	}
	for _, bad := range [][2]float64{{0, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := HoeffdingSampleSize(bad[0], bad[1]); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
	if _, err := HoeffdingSampleSize(1e-9, 0.5); err == nil {
		t.Error("absurd sample size accepted")
	}
}

func TestPaperSampleSize(t *testing.T) {
	n, err := PaperSampleSize(0.25, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(9 / (2 * 0.25 * 0.01) * math.Log(1/0.05)))
	if n != want {
		t.Errorf("PaperSampleSize = %d, want %d", n, want)
	}
	for _, bad := range [][3]float64{{0, 0.1, 0.1}, {0.5, 0.1, 0.1}, {0.25, 0, 0.1}, {0.25, 0.1, 1}} {
		if _, err := PaperSampleSize(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}

func TestEstimateNuConverges(t *testing.T) {
	d := oneAtomDB()
	rng := rand.New(rand.NewSource(1))
	est, err := EstimateNu(bg, d, predS0, 0.02, 0.01, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-0.75) > 0.02 {
		t.Errorf("estimate %v, want 0.75 ± 0.02", est.Value)
	}
	if est.Method != "hoeffding" {
		t.Errorf("method %q", est.Method)
	}
	if est.Samples < 1000 {
		t.Errorf("suspiciously few samples: %d", est.Samples)
	}
}

func TestEstimateNuPaddedConverges(t *testing.T) {
	d := oneAtomDB()
	rng := rand.New(rand.NewSource(2))
	est, err := EstimateNuPadded(bg, d, predS0, 0.25, 0.05, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-0.75) > 0.05 {
		t.Errorf("padded estimate %v, want 0.75 ± 0.05", est.Value)
	}
	// Default xi kicks in on 0.
	est2, err := EstimateNuPadded(bg, d, predS0, 0, 0.05, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est2.Value-0.75) > 0.05 {
		t.Errorf("default-xi estimate %v", est2.Value)
	}
}

func TestEstimateNuPaddedStructuralMatches(t *testing.T) {
	d := oneAtomDB()
	rng := rand.New(rand.NewSource(3))
	est, err := EstimateNuPaddedStructural(bg, d, predS0, 0.25, 0.05, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-0.75) > 0.05 {
		t.Errorf("structural padded estimate %v, want 0.75 ± 0.05", est.Value)
	}
}

func TestEstimateExtremeProbabilities(t *testing.T) {
	// Certain query: nu = 1; padded estimator must recover ≈ 1.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := unreliable.New(s) // no uncertainty at all
	rng := rand.New(rand.NewSource(4))
	est, err := EstimateNuPadded(bg, d, predS0, 0.25, 0.05, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-1) > 0.05 {
		t.Errorf("certain-true estimate %v", est.Value)
	}
	est, err = EstimateNuPadded(bg, d, func(b *rel.Structure) (bool, error) {
		return b.Holds("S", rel.Tuple{1}), nil
	}, 0.25, 0.05, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value > 0.05 {
		t.Errorf("certain-false estimate %v", est.Value)
	}
}

func TestEstimateAnytimePartial(t *testing.T) {
	d := oneAtomDB()
	rng := rand.New(rand.NewSource(6))
	// eps=0.01 needs ~18k Hoeffding samples; a 200-sample budget forces a
	// partial result with an honestly widened interval.
	est, err := EstimateNu(bg, d, predS0, 0.01, 0.05, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial {
		t.Fatal("200-sample run not marked Partial")
	}
	if est.Samples != 200 {
		t.Errorf("samples %d, want exactly the budget", est.Samples)
	}
	wantEps := math.Sqrt(math.Log(2/0.05) / (2 * 200))
	if math.Abs(est.Eps-wantEps) > 1e-12 {
		t.Errorf("widened eps %v, want Hoeffding eps at t'=200: %v", est.Eps, wantEps)
	}
	// The widened interval still brackets the truth generously.
	if math.Abs(est.Value-0.75) > est.Eps {
		t.Errorf("partial estimate %v ± %v misses 0.75", est.Value, est.Eps)
	}
}

func TestEstimateCanceledBeforeFirstSample(t *testing.T) {
	d := oneAtomDB()
	ctx, cancel := context.WithCancel(bg)
	cancel()
	rng := rand.New(rand.NewSource(7))
	if _, err := EstimateNu(ctx, d, predS0, 0.1, 0.1, 0, rng); !errors.Is(err, ErrNoSamples) {
		t.Errorf("EstimateNu error %v, want ErrNoSamples", err)
	}
	if _, err := EstimateNuPadded(ctx, d, predS0, 0.25, 0.1, 0.1, 0, rng); !errors.Is(err, ErrNoSamples) {
		t.Errorf("EstimateNuPadded error %v, want ErrNoSamples", err)
	}
}

func TestEstimateMeanValidation(t *testing.T) {
	d := oneAtomDB()
	rng := rand.New(rand.NewSource(5))
	if _, err := EstimateMean(bg, d, func(*rel.Structure) (float64, error) { return 2, nil }, 0.1, 0.1, 0, rng); err == nil {
		t.Error("out-of-range sample value accepted")
	}
	if _, err := EstimateMean(bg, d, func(*rel.Structure) (float64, error) {
		return 0, errTest
	}, 0.1, 0.1, 0, rng); err == nil {
		t.Error("predicate error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestPadDB(t *testing.T) {
	d := oneAtomDB()
	xi := big.NewRat(1, 4)
	padded, rc, rd, err := PadDB(d, xi)
	if err != nil {
		t.Fatal(err)
	}
	// Original facts survive.
	if !padded.A.Holds("S", rel.Tuple{0}) {
		t.Error("original fact lost")
	}
	// Pad relation empty, both atoms at xi.
	if padded.A.Rel(PadRel).Len() != 0 {
		t.Error("pad relation not empty")
	}
	if padded.ErrorProb(rc).Cmp(xi) != 0 || padded.ErrorProb(rd).Cmp(xi) != 0 {
		t.Error("pad error probabilities wrong")
	}
	// Constants distinct.
	if padded.A.Consts["c_pad"] == padded.A.Consts["d_pad"] {
		t.Error("pad constants equal")
	}
	// Original error preserved.
	if padded.ErrorProb(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}).Cmp(big.NewRat(1, 4)) != 0 {
		t.Error("original error probability lost")
	}
	// Exact marginal of the padded query via enumeration:
	// E[(S0 ∨ Rc) ∧ Rd] = ξ(ν + ξ(1−ν)) with ν = 3/4, ξ = 1/4:
	// p = 1/4 · (3/4 + 1/16) = 13/64.
	total := new(big.Rat)
	padded.ForEachWorld(10, func(b *rel.Structure, nu *big.Rat) bool {
		if (b.Holds("S", rel.Tuple{0}) || b.Holds(rc.Rel, rc.Args)) && b.Holds(rd.Rel, rd.Args) {
			total.Add(total, nu)
		}
		return true
	})
	if total.Cmp(big.NewRat(13, 64)) != 0 {
		t.Errorf("padded exact probability %v, want 13/64", total)
	}
	// Errors: universe too small; name collision.
	tiny := unreliable.New(rel.MustStructure(1, rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})))
	if _, _, _, err := PadDB(tiny, xi); err == nil {
		t.Error("1-element universe accepted")
	}
	if _, _, _, err := PadDB(padded, xi); err == nil {
		t.Error("double padding accepted")
	}
}

func TestPaddedCoverageBounds(t *testing.T) {
	// The padded expectation p must satisfy ξ² ≤ p ≤ ξ for any query; we
	// verify via enumeration on a database with nu spanning {0, 1/2, 1}.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	d := unreliable.New(s)
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}, big.NewRat(1, 2))
	xi := big.NewRat(1, 4)
	padded, rc, rd, err := PadDB(d, xi)
	if err != nil {
		t.Fatal(err)
	}
	for elem := 0; elem < 3; elem++ {
		p := new(big.Rat)
		padded.ForEachWorld(10, func(b *rel.Structure, nu *big.Rat) bool {
			if (b.Holds("S", rel.Tuple{elem}) || b.Holds(rc.Rel, rc.Args)) && b.Holds(rd.Rel, rd.Args) {
				p.Add(p, nu)
			}
			return true
		})
		xi2 := big.NewRat(1, 16)
		if p.Cmp(xi2) < 0 || p.Cmp(xi) > 0 {
			t.Errorf("element %d: padded p = %v outside [ξ², ξ]", elem, p)
		}
	}
}
