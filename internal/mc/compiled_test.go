package mc_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
	"qrel/internal/vm"
	"qrel/internal/workload"
)

// Bit-identity of the compiled estimators against the interpreted
// ones: same seed, same lanes — byte-for-byte the same estimate, the
// same published LoopStates, the same lane aggregates and attestation
// digests, for every worker count. These tests pin the tentpole
// contract that lets compiled and interpreted replicas interoperate
// in one cluster.

func compiledTestDB(t *testing.T, seed int64) *unreliable.DB {
	t.Helper()
	return workload.RandomUDB(rand.New(rand.NewSource(seed)), 4, 8)
}

func mustParse(t *testing.T, db *unreliable.DB, src string) logic.Formula {
	t.Helper()
	f, err := logic.Parse(src, db.A.Voc)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

func mustCompile(t *testing.T, db *unreliable.DB, f logic.Formula) *vm.Program {
	t.Helper()
	p, err := vm.Compile(db, f, logic.Env{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func collectCkpt(every int, dst *[]mc.LoopState) *mc.Ckpt {
	return &mc.Ckpt{Every: every, Save: func(st mc.LoopState) error {
		*dst = append(*dst, st)
		return nil
	}}
}

func TestCompiledPaddedBitIdentical(t *testing.T) {
	db := compiledTestDB(t, 11)
	q := mustParse(t, db, "forall x . exists y . E(x,y)")
	prog := mustCompile(t, db, q)
	pred := func(b *rel.Structure) (bool, error) { return logic.EvalSentence(b, q) }
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 7} {
		var intSaves, compSaves []mc.LoopState
		want, err := mc.EstimateNuPaddedPar(ctx, db, pred, 0, 0.2, 0.1, 0, 1998, mc.Par{Workers: w}, collectCkpt(101, &intSaves))
		if err != nil {
			t.Fatalf("workers=%d interpreted: %v", w, err)
		}
		got, err := mc.EstimateNuPaddedParCompiled(ctx, db, prog, 0, 0.2, 0.1, 0, 1998, mc.Par{Workers: w}, collectCkpt(101, &compSaves))
		if err != nil {
			t.Fatalf("workers=%d compiled: %v", w, err)
		}
		if got != want {
			t.Fatalf("workers=%d: compiled estimate %+v != interpreted %+v", w, got, want)
		}
		if len(intSaves) == 0 || len(compSaves) == 0 {
			t.Fatalf("workers=%d: no checkpoints published", w)
		}
		if !reflect.DeepEqual(intSaves[len(intSaves)-1], compSaves[len(compSaves)-1]) {
			t.Fatalf("workers=%d: final snapshots differ:\n%+v\n%+v", w, intSaves[len(intSaves)-1], compSaves[len(compSaves)-1])
		}
		if w == 1 && !reflect.DeepEqual(intSaves, compSaves) {
			t.Fatalf("sequential snapshot streams differ:\n%+v\n%+v", intSaves, compSaves)
		}
	}
}

// meanFixture returns the interpreted statistic and its compiled form
// for a boolean sentence (the 0-ary answer-set symmetric difference).
func meanFixture(t *testing.T, db *unreliable.DB, src string) (func(*rel.Structure) (float64, error), *mc.CompiledMean) {
	q := mustParse(t, db, src)
	obs, err := logic.EvalSentence(db.A, q)
	if err != nil {
		t.Fatalf("observed eval: %v", err)
	}
	stat := func(b *rel.Structure) (float64, error) {
		v, err := logic.EvalSentence(b, q)
		if err != nil {
			return 0, err
		}
		if v != obs {
			return 1, nil
		}
		return 0, nil
	}
	cm := &mc.CompiledMean{Progs: []*vm.Program{mustCompile(t, db, q)}, Base: []bool{obs}, NormF: 1}
	return stat, cm
}

func TestCompiledMeanBitIdentical(t *testing.T) {
	db := compiledTestDB(t, 13)
	stat, cm := meanFixture(t, db, "exists x y . E(x,y) & E(y,x)")
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 7} {
		var intSaves, compSaves []mc.LoopState
		want, err := mc.EstimateMeanPar(ctx, db, stat, 0.1, 0.1, 0, 1998, mc.Par{Workers: w}, collectCkpt(53, &intSaves))
		if err != nil {
			t.Fatalf("workers=%d interpreted: %v", w, err)
		}
		got, err := mc.EstimateMeanParCompiled(ctx, db, cm, 0.1, 0.1, 0, 1998, mc.Par{Workers: w}, collectCkpt(53, &compSaves))
		if err != nil {
			t.Fatalf("workers=%d compiled: %v", w, err)
		}
		if got != want {
			t.Fatalf("workers=%d: compiled estimate %+v != interpreted %+v", w, got, want)
		}
		if !reflect.DeepEqual(intSaves[len(intSaves)-1], compSaves[len(compSaves)-1]) {
			t.Fatalf("workers=%d: final snapshots differ", w)
		}
		if w == 1 && !reflect.DeepEqual(intSaves, compSaves) {
			t.Fatalf("sequential snapshot streams differ")
		}
	}
}

func TestCompiledMeanRangeBitIdentical(t *testing.T) {
	db := compiledTestDB(t, 17)
	stat, cm := meanFixture(t, db, "forall x . exists y . E(x,y)")
	ctx := context.Background()
	for _, r := range []mc.Range{{Lo: 0, Hi: 3, Total: 8}, {Lo: 3, Hi: 8, Total: 8}, {Lo: 0, Hi: 8, Total: 8}} {
		want, err := mc.EstimateMeanRange(ctx, db, stat, 0.1, 0.1, 0, 1998, r, 3, nil)
		if err != nil {
			t.Fatalf("range %v interpreted: %v", r, err)
		}
		got, err := mc.EstimateMeanRangeCompiled(ctx, db, cm, 0.1, 0.1, 0, 1998, r, 3, nil)
		if err != nil {
			t.Fatalf("range %v compiled: %v", r, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("range %v: compiled result differs:\n%+v\n%+v", r, got, want)
		}
		if dg, dw := mc.RangeDigest(got.Lanes), mc.RangeDigest(want.Lanes); dg != dw {
			t.Fatalf("range %v: digest %s != %s", r, dg, dw)
		}
	}
}

// TestCompiledResumesInterpretedCheckpoint proves snapshot
// interchange across eval modes: a snapshot written mid-run by the
// interpreted sequential estimator resumes under the compiled one
// (and vice versa) with the final estimate byte-identical to an
// uninterrupted run.
func TestCompiledResumesInterpretedCheckpoint(t *testing.T) {
	db := compiledTestDB(t, 19)
	stat, cm := meanFixture(t, db, "exists y . E(0,y) & S(y)")
	ctx := context.Background()
	var saves []mc.LoopState
	want, err := mc.EstimateMeanCk(ctx, db, stat, 0.1, 0.1, 0, mc.NewSource(1998), collectCkpt(37, &saves))
	if err != nil {
		t.Fatalf("interpreted full run: %v", err)
	}
	if len(saves) < 3 {
		t.Fatalf("want several periodic snapshots, got %d", len(saves))
	}
	mid := saves[1]
	got, err := mc.EstimateMeanCkCompiled(ctx, db, cm, 0.1, 0.1, 0, mc.NewSource(1998), &mc.Ckpt{Resume: &mid})
	if err != nil {
		t.Fatalf("compiled resume: %v", err)
	}
	if got != want {
		t.Fatalf("compiled resume of interpreted snapshot: %+v != %+v", got, want)
	}
	// And the reverse direction: compiled writes, interpreted resumes.
	var compSaves []mc.LoopState
	if _, err := mc.EstimateMeanCkCompiled(ctx, db, cm, 0.1, 0.1, 0, mc.NewSource(1998), collectCkpt(37, &compSaves)); err != nil {
		t.Fatalf("compiled full run: %v", err)
	}
	mid2 := compSaves[1]
	got2, err := mc.EstimateMeanCk(ctx, db, stat, 0.1, 0.1, 0, mc.NewSource(1998), &mc.Ckpt{Resume: &mid2})
	if err != nil {
		t.Fatalf("interpreted resume: %v", err)
	}
	if got2 != want {
		t.Fatalf("interpreted resume of compiled snapshot: %+v != %+v", got2, want)
	}
}

// TestCompiledSequentialMatchesInterpreted covers the Source-less
// sequential entry points (Drawer's rand.Rand fallback).
func TestCompiledSequentialMatchesInterpreted(t *testing.T) {
	db := compiledTestDB(t, 23)
	q := mustParse(t, db, "forall x . S(x) -> exists y . E(x,y)")
	prog := mustCompile(t, db, q)
	pred := func(b *rel.Structure) (bool, error) { return logic.EvalSentence(b, q) }
	ctx := context.Background()
	want, err := mc.EstimateNuPadded(ctx, db, pred, 0, 0.25, 0.1, 0, mc.NewRand(77))
	if err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	got, err := mc.EstimateNuPaddedCompiled(ctx, db, prog, 0, 0.25, 0.1, 0, mc.NewRand(77))
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if got != want {
		t.Fatalf("sequential compiled %+v != interpreted %+v", got, want)
	}
}
