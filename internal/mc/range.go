package mc

import (
	"context"
	"fmt"
	"sort"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Lane-range runs: the distribution primitive behind the qrelcoord
// cluster. A lane-split estimation (see lanes.go) is a pure function of
// (seed, lane count): lane i's RNG stream and sample quota are derived
// from the seed and the *total* lane count alone, never from where the
// lane runs. A Range therefore names a contiguous subset [Lo,Hi) of the
// Total-lane split, and EstimateMeanRange executes exactly those lanes
// — same streams, same quotas, same per-sample code as the single-node
// run. MergeMean reassembles the full-run estimate from per-lane
// aggregates in lane-index order, reproducing the single-node float
// operation sequence bit for bit, for any partition of the lanes across
// nodes.

// Range selects the lane subrange [Lo,Hi) of a Total-lane split.
type Range struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
}

// Validate rejects malformed ranges (0 ≤ Lo < Hi ≤ Total required).
func (r Range) Validate() error {
	if r.Total <= 0 || r.Lo < 0 || r.Hi <= r.Lo || r.Hi > r.Total {
		return fmt.Errorf("mc: invalid lane range [%d,%d) of %d", r.Lo, r.Hi, r.Total)
	}
	return nil
}

// Len is the number of lanes in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Full reports whether the range covers the whole split.
func (r Range) Full() bool { return r.Lo == 0 && r.Hi == r.Total }

func (r Range) String() string { return fmt.Sprintf("%d-%d/%d", r.Lo, r.Hi, r.Total) }

// rangeMethod scopes an estimator's checkpoint method string to a lane
// range. A full range keeps the base name, so full-range checkpoints
// interchange with plain lane-split runs; a proper subrange embeds the
// range, so RestoreLanes rejects resuming one range's snapshot into
// another (their lane streams differ).
func rangeMethod(base string, r Range) string {
	if r.Full() {
		return base
	}
	return fmt.Sprintf("%s@%s", base, r)
}

// RangeMethod is the exported form of the range-scoped method string —
// the coordinator uses it to validate that a shipped snapshot belongs
// to the lane range it is about to resume.
func RangeMethod(base string, r Range) string { return rangeMethod(base, r) }

// SplitRanges partitions a total-lane split into parts contiguous
// near-equal ranges, in order: range i gets ⌊total/parts⌋ lanes plus
// one of the total%parts remainder lanes. parts is clamped to total.
func SplitRanges(total, parts int) []Range {
	if parts > total {
		parts = total
	}
	if parts <= 0 {
		return nil
	}
	q, rem := total/parts, total%parts
	out := make([]Range, parts)
	lo := 0
	for i := range out {
		n := q
		if i < rem {
			n++
		}
		out[i] = Range{Lo: lo, Hi: lo + n, Total: total}
		lo += n
	}
	return out
}

// LaneAgg is one lane's raw aggregate — the unit a range run ships back
// to the coordinator. Merging must happen on these raw per-lane values
// in lane-index order (never on per-node subtotals): float addition is
// not associative, and only the lane-order sum reproduces the
// single-node estimate bit for bit.
type LaneAgg struct {
	Idx   int     `json:"idx"`
	Quota int     `json:"quota"`
	Drawn int     `json:"drawn"`
	Hits  int     `json:"hits"`
	Sum   float64 `json:"sum"`
}

// RangeResult is the output of a lane-range run: the per-lane raw
// aggregates plus the full-run sample size the accuracy parameters
// imply (identical on every node, carried for cross-checking).
type RangeResult struct {
	Range     Range     `json:"range"`
	Method    string    `json:"method"`
	Requested int       `json:"requested"`
	Lanes     []LaneAgg `json:"lanes"`
}

// Drawn is the total number of samples the range actually drew.
func (rr RangeResult) Drawn() int {
	n := 0
	for _, a := range rr.Lanes {
		n += a.Drawn
	}
	return n
}

// EstimateMeanRange runs the lanes [rng.Lo,rng.Hi) of the rng.Total-lane
// Hoeffding mean estimation for (seed, eps, delta, maxSamples). The
// split and the quota assignment are computed over all rng.Total lanes
// exactly as EstimateMeanPar would, then only the subrange is executed;
// the returned per-lane aggregates are bit-identical to what those
// lanes produce in a single-node run. Checkpoints (ck) are scoped to
// the range via the method string, so a subrange snapshot resumes only
// the same subrange.
func EstimateMeanRange(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, seed int64, rng Range, workers int, ck *Ckpt) (RangeResult, error) {
	if err := rng.Validate(); err != nil {
		return RangeResult{}, err
	}
	requested, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		if maxSamples <= 0 {
			return RangeResult{}, err
		}
		requested = maxSamples + 1 // any realized count reads as partial
	}
	t, _ := clampSamples(requested, maxSamples)
	all := SplitLanes(seed, rng.Total)
	AssignQuotas(all, t)
	sub := all[rng.Lo:rng.Hi]
	workers = Par{Lanes: rng.Len(), Workers: workers}.withDefaults().Workers
	if err := sampleAssignedLanes(ctx, rangeMethod("hoeffding", rng), sub, workers, ck, meanStep(db, f)); err != nil {
		return RangeResult{}, err
	}
	drawn, _, _ := laneTotals(sub)
	if drawn == 0 {
		return RangeResult{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	res := RangeResult{Range: rng, Method: "hoeffding", Requested: requested, Lanes: make([]LaneAgg, 0, len(sub))}
	for _, ln := range sub {
		res.Lanes = append(res.Lanes, LaneAgg{Idx: ln.Idx, Quota: ln.Quota, Drawn: ln.Drawn, Hits: ln.Hits, Sum: ln.Sum})
	}
	return res, nil
}

// MergeMean reassembles the full-run Hoeffding Estimate from per-lane
// aggregates collected across range runs. It demands exact coverage of
// the total-lane split — every lane present exactly once, with exactly
// the quota AssignQuotas would have given it (lane-quota conservation:
// reassignment may move a lane between nodes but never change what it
// owes) — and then accumulates Drawn/Sum in lane-index order, which is
// the same float operation sequence as the single-node laneTotals, so
// the merged Value is bit-identical to EstimateMeanPar's for the same
// (seed, eps, delta, maxSamples).
func MergeMean(aggs []LaneAgg, total int, eps, delta float64, maxSamples int) (Estimate, error) {
	if total <= 0 {
		return Estimate{}, fmt.Errorf("mc: merge over %d lanes", total)
	}
	if len(aggs) != total {
		return Estimate{}, fmt.Errorf("mc: lane coverage: %d aggregates for a %d-lane split", len(aggs), total)
	}
	requested, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	q, rem := t/total, t%total
	sorted := append([]LaneAgg(nil), aggs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Idx < sorted[j].Idx })
	var drawn, hits int
	var sum float64
	for i, a := range sorted {
		if a.Idx != i {
			return Estimate{}, fmt.Errorf("mc: lane coverage: lane %d missing or duplicated (got idx %d)", i, a.Idx)
		}
		want := q
		if i < rem {
			want++
		}
		if a.Quota != want {
			return Estimate{}, fmt.Errorf("mc: lane %d quota %d, want %d — quota conservation violated", i, a.Quota, want)
		}
		if a.Drawn < 0 || a.Drawn > a.Quota || a.Hits < 0 || a.Hits > a.Drawn {
			return Estimate{}, fmt.Errorf("mc: implausible aggregate for lane %d: drawn=%d hits=%d quota=%d", i, a.Drawn, a.Hits, a.Quota)
		}
		drawn += a.Drawn
		hits += a.Hits
		sum += a.Sum
	}
	_ = hits // the mean estimator carries hits only for diagnostics
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: no lane drew a sample", ErrNoSamples)
	}
	est := Estimate{Value: sum / float64(drawn), Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "hoeffding"}
	if drawn < requested {
		est.Partial = true
		est.Eps = WidenedHoeffdingEps(delta, drawn)
	}
	return est, nil
}
