package mc

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// rareDB: three uncertain facts with small error probabilities.
func rareDB() *unreliable.DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	s.MustAdd("S", 1)
	s.MustAdd("S", 2)
	d := unreliable.New(s)
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 100))
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{1}}, big.NewRat(1, 50))
	d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{2}}, big.NewRat(1, 200))
	return d
}

// flipped counts how many S facts are missing in the world.
func flippedFrac(b *rel.Structure) (float64, error) {
	missing := 0
	for i := 0; i < 3; i++ {
		if !b.Holds("S", rel.Tuple{i}) {
			missing++
		}
	}
	return float64(missing) / 3, nil
}

func TestFlipEventProb(t *testing.T) {
	d := rareDB()
	// Z = 1 − (99/100)(49/50)(199/200).
	want := big.NewRat(1, 1)
	want.Sub(want, new(big.Rat).Mul(big.NewRat(99, 100),
		new(big.Rat).Mul(big.NewRat(49, 50), big.NewRat(199, 200))))
	if got := FlipEventProb(d); got.Cmp(want) != 0 {
		t.Errorf("Z = %v, want %v", got, want)
	}
	// A mu = 1 atom forces Z = 1.
	d2 := rareDB()
	d2.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 1))
	if FlipEventProb(d2).Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("sure flip should force Z = 1")
	}
}

func TestConditionalSamplerDistribution(t *testing.T) {
	// Compare conditional sample frequencies against exact conditional
	// world probabilities by enumeration.
	d := rareDB()
	z := FlipEventProb(d)
	// Exact conditional distribution over worlds with ≥1 flip.
	type worldKey string
	exact := map[worldKey]float64{}
	d.ForEachWorld(10, func(b *rel.Structure, nu *big.Rat) bool {
		flips := 0
		for i := 0; i < 3; i++ {
			if !b.Holds("S", rel.Tuple{i}) {
				flips++
			}
		}
		if flips == 0 {
			return true
		}
		cond := new(big.Rat).Quo(nu, z)
		f, _ := cond.Float64()
		exact[worldKey(b.String())] = f
		return true
	})
	rng := rand.New(rand.NewSource(1))
	counts := map[worldKey]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		b, err := SampleWorldConditional(d, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[worldKey(b.String())]++
	}
	for k, p := range exact {
		got := float64(counts[k]) / trials
		if math.Abs(got-p) > 0.01+p/5 {
			t.Errorf("world %s: frequency %.5f, exact %.5f", k, got, p)
		}
	}
	// No samples outside the event.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != trials {
		t.Errorf("%d of %d samples fell outside the flip event", trials-total, trials)
	}
}

func TestEstimateMeanRareMatchesExact(t *testing.T) {
	d := rareDB()
	// Exact E[flippedFrac] = (1/100 + 1/50 + 1/200)/3 by linearity.
	exact := (1.0/100 + 1.0/50 + 1.0/200) / 3
	rng := rand.New(rand.NewSource(2))
	est, err := EstimateMeanRare(bg, d, flippedFrac, 0.001, 0.02, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-exact) > 0.001 {
		t.Errorf("rare-event estimate %v, exact %v", est.Value, exact)
	}
	// The saving: unconditional Hoeffding at eps = 0.001 needs ~2.3M
	// samples; the conditional estimator needs Z² of that (Z ≈ 0.035).
	plain, err := HoeffdingSampleSize(0.001, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples*100 > plain {
		t.Errorf("rare-event used %d samples, plain needs %d; expected ≥100x saving", est.Samples, plain)
	}
}

func TestEstimateMeanRareEdgeCases(t *testing.T) {
	// No uncertainty at all: statistic is identically zero.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	d := unreliable.New(s)
	est, err := EstimateMeanRare(bg, d, func(*rel.Structure) (float64, error) { return 0, nil }, 0.01, 0.05, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.Samples != 0 {
		t.Errorf("certain database: %+v", est)
	}
	if _, err := SampleWorldConditional(d, rand.New(rand.NewSource(1))); err == nil {
		t.Error("conditional sampling from a certain database accepted")
	}
	// mu = 1 atom: falls back to the plain estimator (Z = 1).
	d2 := rareDB()
	d2.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 1))
	est2, err := EstimateMeanRare(bg, d2, flippedFrac, 0.05, 0.05, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if est2.Method != "hoeffding" {
		t.Errorf("method %q, want plain fallback", est2.Method)
	}
	// Parameter validation.
	if _, err := EstimateMeanRare(bg, rareDB(), flippedFrac, 0, 0.5, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad eps accepted")
	}
}
