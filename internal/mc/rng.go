package mc

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// This file provides the serializable PRNG used by every randomized
// engine. The stock math/rand source hides its state, so a sampling
// loop interrupted by a crash could never resume on the same random
// stream; Source is a xoshiro256** generator (Blackman & Vigna) whose
// 256-bit state can be captured at any sample boundary and restored
// later, making a resumed run bit-identical to an uninterrupted run
// with the same seed. All engines construct their generator through
// NewRand, so the checkpoint/resume guarantee holds whether or not a
// particular run checkpoints.

// RNGState is the serializable 256-bit state of a Source. The zero
// value is invalid (xoshiro's state must never be all-zero); states
// obtained from Source.State are always valid.
type RNGState [4]uint64

// IsZero reports the invalid all-zero state.
func (st RNGState) IsZero() bool { return st == RNGState{} }

// Source is a serializable rand.Source64: xoshiro256** seeded through
// splitmix64, per the reference implementation's recommendation. Not
// safe for concurrent use (neither is rand.Rand).
type Source struct {
	s [4]uint64
}

// NewSource returns a Source deterministically seeded from seed.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// NewRand returns a *rand.Rand over a fresh Source. This is how every
// engine turns Options.Seed into its generator.
func NewRand(seed int64) *rand.Rand { return rand.New(NewSource(seed)) }

// Seed resets the source to the deterministic state derived from seed
// by four rounds of splitmix64 (which cannot produce the forbidden
// all-zero xoshiro state from any input).
func (s *Source) Seed(seed int64) {
	x := uint64(seed)
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	if s.s == [4]uint64{} {
		s.s[0] = 1 // unreachable in practice; keep the invariant anyway
	}
}

// Uint64 advances the generator (xoshiro256**).
func (s *Source) Uint64() uint64 {
	r := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return r
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State captures the current state; restoring it with SetState resumes
// the stream at exactly this point.
func (s *Source) State() RNGState { return RNGState(s.s) }

// SetState restores a state captured by State. The all-zero state is
// rejected: it is xoshiro's absorbing fixed point and can only come
// from a zero-valued (never-captured) snapshot.
func (s *Source) SetState(st RNGState) error {
	if st.IsZero() {
		return fmt.Errorf("mc: refusing to restore all-zero RNG state")
	}
	s.s = st
	return nil
}

// Jump and LongJump polynomials from the reference xoshiro256**
// implementation (Blackman & Vigna). Applying the polynomial advances
// the stream by a fixed power of two, so a seed plus a jump count
// names a deterministic position in the stream.
var (
	jumpPoly     = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	longJumpPoly = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
)

// applyJump advances the state by the given jump polynomial.
func (s *Source) applyJump(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, word := range poly {
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				s0 ^= s.s[0]
				s1 ^= s.s[1]
				s2 ^= s.s[2]
				s3 ^= s.s[3]
			}
			s.Uint64()
		}
	}
	s.s = [4]uint64{s0, s1, s2, s3}
}

// Jump advances the stream by 2^128 draws: the subsequence starting at
// the jumped state is disjoint from the next 2^128 draws of the
// un-jumped source. Used to derive non-overlapping substreams from one
// seed.
func (s *Source) Jump() { s.applyJump(jumpPoly) }

// LongJump advances the stream by 2^192 draws, partitioning the period
// into 2^64 starting points each 2^192 apart — one per sampling lane.
// Lane i of a lane-split run uses the seed's base state advanced by i
// LongJumps (see SplitLanes).
func (s *Source) LongJump() { s.applyJump(longJumpPoly) }
