// Package mc implements the randomized absolute-error approximation
// algorithms of Section 5: plain Monte Carlo estimation of query
// probabilities and expected errors over the world space Omega(D)
// (Corollary 5.5), and the ξ-padding estimator of Theorem 5.12 with its
// sample-size bound derived from Lemma 5.11.
package mc

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// ErrNoSamples is wrapped in errors returned when an estimator is
// canceled (or budgeted to zero) before drawing a single sample: with no
// data there is no partial estimate to degrade to.
var ErrNoSamples = fmt.Errorf("mc: canceled before any sample was drawn")

// Estimate is the result of a randomized approximation.
type Estimate struct {
	// Value is the estimated quantity.
	Value float64
	// Samples is the number of sampled worlds actually drawn.
	Samples int
	// Requested is the sample size implied by the requested accuracy;
	// Samples < Requested when the run was cut short.
	Requested int
	// Eps and Delta are the guarantee parameters the estimate satisfies:
	// Pr[|Value − truth| > Eps] < Delta. When Partial is set, Eps is the
	// honestly *widened* accuracy achievable with the samples actually
	// drawn (same Delta) — the anytime guarantee.
	Eps, Delta float64
	// Partial reports an anytime estimate: the run was stopped early by
	// cancellation or a sample budget, and Eps was recomputed from the
	// realized sample count.
	Partial bool
	// Method names the estimator ("hoeffding", "padded", "rare-event").
	Method string
}

// anytime tracks the cooperative-stopping state shared by the sampling
// loops: a context polled every stride samples and an optional hard cap
// on the number of samples.
//
// The contract implemented by every estimator in this package: when the
// run is cut short after ≥ 1 samples, the estimator returns the partial
// mean with Partial = true and a widened Eps valid at the same Delta;
// when it is cut short before the first sample, it returns an error
// wrapping ErrNoSamples and the context's error.
const ctxPollStride = 64

// clampSamples applies the budget cap to the requested sample size,
// reporting whether the cap bit (partial from the start) was taken.
func clampSamples(t, maxSamples int) (int, bool) {
	if maxSamples > 0 && t > maxSamples {
		return maxSamples, true
	}
	return t, false
}

// WidenedHoeffdingEps returns the absolute error achievable by a
// t-sample mean of [0,1] variables at confidence 1 − delta:
// ε(t) = sqrt(ln(2/δ) / 2t) — the inverse of HoeffdingSampleSize,
// capped at 1 (an absolute error of 1 on a [0,1] quantity is vacuous
// but honest).
func WidenedHoeffdingEps(delta float64, t int) float64 {
	if t <= 0 {
		return 1
	}
	return math.Min(1, math.Sqrt(math.Log(2/delta)/(2*float64(t))))
}

// widenedPaddedEps inverts PaperSampleSize at the realized sample count:
// the padded estimator run at ε/2 with t = (9/2ξ(ε/2)²)·ln(1/δ) samples
// achieves, after t' samples, ε(t') = 2·sqrt(9·ln(1/δ) / (2ξt')).
func widenedPaddedEps(xi, delta float64, t int) float64 {
	if t <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Sqrt(9*math.Log(1/delta)/(2*xi*float64(t))))
}

// HoeffdingSampleSize returns the number of samples of a [0,1]-valued
// variable needed so that the sample mean deviates from the expectation
// by more than eps with probability below delta:
// t = ⌈ln(2/δ) / (2ε²)⌉.
func HoeffdingSampleSize(eps, delta float64) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("mc: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	t := math.Log(2/delta) / (2 * eps * eps)
	if t > 1e9 {
		return 0, fmt.Errorf("mc: sample size %.3g exceeds 1e9; relax eps/delta", t)
	}
	return int(math.Ceil(t)), nil
}

// PaperSampleSize returns the paper's t(ε, δ) from the proof of Theorem
// 5.12: t = ⌈(9 / 2ξε²) · ln(1/δ)⌉.
func PaperSampleSize(xi, eps, delta float64) (int, error) {
	if xi <= 0 || xi >= 0.5 {
		return 0, fmt.Errorf("mc: xi must lie in (0, 1/2), got %v", xi)
	}
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("mc: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	t := 9 / (2 * xi * eps * eps) * math.Log(1/delta)
	if t > 1e9 {
		return 0, fmt.Errorf("mc: sample size %.3g exceeds 1e9; relax eps/delta", t)
	}
	return int(math.Ceil(t)), nil
}

// EstimateMean estimates E[f(B)] for a [0,1]-valued polynomial-time
// computable f over random worlds B ∈ Omega(D), with absolute error eps
// and confidence 1−delta (Hoeffding).
//
// The estimator is *anytime*: when ctx is canceled or maxSamples
// (0 = unlimited) stops the loop early, the partial mean is returned
// with Partial = true and Eps widened to the accuracy the realized
// sample count supports. Only a stop before the very first sample is an
// error (wrapping ErrNoSamples).
func EstimateMean(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return estimateMeanLoop(ctx, db, f, eps, delta, maxSamples, rng, nil, nil)
}

// estimateMeanLoop is the sequential single-lane path behind
// EstimateMean and EstimateMeanCk; src and ck are nil for
// uncheckpointed runs. It consumes the same RNG stream the seed
// implementation did, so existing seeds and snapshots stay
// bit-identical.
func estimateMeanLoop(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, rng *rand.Rand, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateMeanLanes(ctx, db, f, eps, delta, maxSamples, []*Lane{{Src: src, Rng: rng}}, 1, ck)
}

// EstimateMeanPar is EstimateMean over a lane-split parallel runtime:
// the seed derives par.Lanes non-overlapping RNG lanes, driven by up
// to par.Workers goroutines. The estimate depends on (seed, lane
// count) only — any worker count yields the bit-identical value — and
// multi-lane checkpoints resume under any worker count too.
func EstimateMeanPar(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, seed int64, par Par, ck *Ckpt) (Estimate, error) {
	lanes, workers := LanesFor(seed, par)
	return estimateMeanLanes(ctx, db, f, eps, delta, maxSamples, lanes, workers, ck)
}

// estimateMeanLanes is the shared lane-pool estimator behind
// EstimateMean(Ck) and EstimateMeanPar.
func estimateMeanLanes(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, lanes []*Lane, workers int, ck *Ckpt) (Estimate, error) {
	requested, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		// The requested accuracy is unaffordable; with a sample budget we
		// can still run an anytime pass, otherwise surface the error.
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1 // any realized count reads as partial
	}
	t, _ := clampSamples(requested, maxSamples)
	err = sampleLanes(ctx, "hoeffding", lanes, workers, t, ck, meanStep(db, f))
	if err != nil {
		return Estimate{}, err
	}
	// Drawn is the true total across lanes; a cancelled parallel run
	// widens eps from this total, never from a single lane's count.
	drawn, _, sum := laneTotals(lanes)
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	est := Estimate{Value: sum / float64(drawn), Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "hoeffding"}
	if drawn < requested {
		est.Partial = true
		est.Eps = WidenedHoeffdingEps(delta, drawn)
	}
	return est, nil
}

// meanStep builds the per-lane draw step of the Hoeffding mean
// estimator. It is shared by estimateMeanLanes and EstimateMeanRange so
// a lane draws the bit-identical sample sequence no matter which node
// (or which run shape) executes it.
func meanStep(db *unreliable.DB, f func(*rel.Structure) (float64, error)) func(ln *Lane) func() error {
	return func(ln *Lane) func() error {
		buf := db.NewWorldBuf()
		return func() error {
			b := db.SampleWorldInto(ln.Rng, buf)
			v, err := f(b)
			if err != nil {
				return fmt.Errorf("mc: evaluating sample %d: %w", ln.Drawn, err)
			}
			if v < 0 || v > 1 {
				return fmt.Errorf("mc: sample value %v outside [0,1]", v)
			}
			ln.Sum += v
			return nil
		}
	}
}

// EstimateNu estimates nu(psi) = Pr[B ⊨ psi] by plain Monte Carlo with
// the Hoeffding sample size.
func EstimateNu(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return EstimateMean(ctx, db, func(b *rel.Structure) (float64, error) {
		v, err := pred(b)
		if err != nil {
			return 0, err
		}
		if v {
			return 1, nil
		}
		return 0, nil
	}, eps, delta, maxSamples, rng)
}

// DefaultXi is the ξ used by EstimateNuPadded when the caller passes 0.
// The paper fixes ξ ∈ (0, 1/2) before seeing the database or the
// accuracy parameters.
const DefaultXi = 0.25

// EstimateNuPadded estimates nu(psi) with the construction from the
// proof of Theorem 5.12: the query is padded to
// psi' = (psi ∨ Rc) ∧ Rd with two fresh ξ-probability atoms, giving a
// variable X with ξ² ≤ E[X] = p ≤ ξ < 1/2 that satisfies the
// preconditions of Lemma 5.11; the estimate is recovered as
// α = (X̃ − ξ²)/(ξ − ξ²). Following the paper, the algorithm runs at
// ε/2 so the final guarantee is Pr[|α − nu(psi)| > ε] < δ.
//
// The padding is realized algebraically by two independent Bernoulli(ξ)
// coins per sample, which has exactly the distribution of the paper's
// database modification D' (see PadDB for the literal structural
// construction, equivalence verified in tests and E8).
//
// Anytime semantics match EstimateMean: an early stop (ctx canceled or
// maxSamples reached, 0 = unlimited) yields the partial estimate with
// Partial = true and Eps widened by inverting the Theorem 5.12 sample
// bound at the realized count.
func EstimateNuPadded(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return estimateNuPaddedLoop(ctx, db, pred, xi, eps, delta, maxSamples, rng, nil, nil)
}

// estimateNuPaddedLoop is the sequential single-lane path behind
// EstimateNuPadded and EstimateNuPaddedCk; src and ck are nil for
// uncheckpointed runs.
func estimateNuPaddedLoop(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, rng *rand.Rand, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateNuPaddedLanes(ctx, db, pred, xi, eps, delta, maxSamples, []*Lane{{Src: src, Rng: rng}}, 1, ck)
}

// EstimateNuPaddedPar is EstimateNuPadded over the lane-split parallel
// runtime; see EstimateMeanPar for the determinism contract.
func EstimateNuPaddedPar(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, seed int64, par Par, ck *Ckpt) (Estimate, error) {
	lanes, workers := LanesFor(seed, par)
	return estimateNuPaddedLanes(ctx, db, pred, xi, eps, delta, maxSamples, lanes, workers, ck)
}

// estimateNuPaddedLanes is the shared lane-pool estimator behind
// EstimateNuPadded(Ck) and EstimateNuPaddedPar.
func estimateNuPaddedLanes(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, lanes []*Lane, workers int, ck *Ckpt) (Estimate, error) {
	if xi == 0 {
		xi = DefaultXi
	}
	half := eps / 2
	requested, err := PaperSampleSize(xi, half, delta)
	if err != nil {
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	err = sampleLanes(ctx, "padded", lanes, workers, t, ck, func(ln *Lane) func() error {
		buf := db.NewWorldBuf()
		return func() error {
			b := db.SampleWorldInto(ln.Rng, buf)
			v, err := pred(b)
			if err != nil {
				return fmt.Errorf("mc: evaluating sample %d: %w", ln.Drawn, err)
			}
			rc := ln.Rng.Float64() < xi
			rd := ln.Rng.Float64() < xi
			if (v || rc) && rd {
				ln.Hits++
			}
			return nil
		}
	})
	if err != nil {
		return Estimate{}, err
	}
	drawn, hits, _ := laneTotals(lanes)
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	xTilde := float64(hits) / float64(drawn)
	alpha := (xTilde - xi*xi) / (xi - xi*xi)
	// The algebra can leave [0,1] by sampling noise; probabilities can't.
	alpha = math.Max(0, math.Min(1, alpha))
	est := Estimate{Value: alpha, Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "padded"}
	if drawn < requested {
		est.Partial = true
		est.Eps = widenedPaddedEps(xi, delta, drawn)
	}
	return est, nil
}

// PadRel is the name of the fresh unary relation added by PadDB.
const PadRel = "R_pad"

// PadDB performs the literal database modification from the proof of
// Theorem 5.12: it extends the vocabulary with a fresh empty unary
// relation R and two constants c ≠ d, and gives the atoms Rc and Rd
// error probability ξ. The universe must have at least two elements to
// interpret c and d distinctly. The returned atoms are Rc and Rd; a
// query psi over the original vocabulary evaluates identically on the
// padded worlds, so psi' = (psi ∨ Rc) ∧ Rd realizes the padded variable.
func PadDB(db *unreliable.DB, xi *big.Rat) (*unreliable.DB, rel.GroundAtom, rel.GroundAtom, error) {
	var zero rel.GroundAtom
	if db.A.N < 2 {
		return nil, zero, zero, fmt.Errorf("mc: universe of size %d cannot interpret two distinct constants", db.A.N)
	}
	if _, exists := db.A.Voc.Rel(PadRel); exists {
		return nil, zero, zero, fmt.Errorf("mc: vocabulary already contains %q", PadRel)
	}
	voc := db.A.Voc.Clone()
	if err := voc.AddRel(rel.RelSym{Name: PadRel, Arity: 1}); err != nil {
		return nil, zero, zero, err
	}
	if err := voc.AddConst("c_pad"); err != nil {
		return nil, zero, zero, err
	}
	if err := voc.AddConst("d_pad"); err != nil {
		return nil, zero, zero, err
	}
	a, err := rel.NewStructure(db.A.N, voc)
	if err != nil {
		return nil, zero, zero, err
	}
	for _, sym := range db.A.Voc.Rels {
		for _, tup := range db.A.Rel(sym.Name).Tuples() {
			if err := a.Add(sym.Name, tup); err != nil {
				return nil, zero, zero, err
			}
		}
	}
	for name, e := range db.A.Consts {
		if err := a.SetConst(name, e); err != nil {
			return nil, zero, zero, err
		}
	}
	if err := a.SetConst("c_pad", 0); err != nil {
		return nil, zero, zero, err
	}
	if err := a.SetConst("d_pad", 1); err != nil {
		return nil, zero, zero, err
	}
	padded := unreliable.New(a)
	db.A.ForEachGroundAtom(func(atom rel.GroundAtom) bool {
		mu := db.ErrorProb(atom)
		if mu.Sign() != 0 {
			padded.MustSetError(atom, mu)
		}
		return true
	})
	rc := rel.GroundAtom{Rel: PadRel, Args: rel.Tuple{0}}
	rd := rel.GroundAtom{Rel: PadRel, Args: rel.Tuple{1}}
	if err := padded.SetError(rc, xi); err != nil {
		return nil, zero, zero, err
	}
	if err := padded.SetError(rd, xi); err != nil {
		return nil, zero, zero, err
	}
	return padded, rc, rd, nil
}

// EstimateNuPaddedStructural is EstimateNuPadded implemented with the
// paper's literal database modification: the padded database D' is
// materialized with PadDB and the samples evaluate
// psi' = (psi ∨ Rc) ∧ Rd on its worlds. It exists to validate the
// algebraic shortcut; the two estimators have identical sample
// distributions.
func EstimateNuPaddedStructural(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	if xi == 0 {
		xi = DefaultXi
	}
	xiRat := new(big.Rat).SetFloat64(xi)
	padded, rc, rd, err := PadDB(db, xiRat)
	if err != nil {
		return Estimate{}, err
	}
	xiF, _ := xiRat.Float64()
	half := eps / 2
	requested, err := PaperSampleSize(xiF, half, delta)
	if err != nil {
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	hits := 0
	drawn := 0
	buf := padded.NewWorldBuf()
	for i := 0; i < t; i++ {
		if i%ctxPollStride == 0 && ctx.Err() != nil {
			break
		}
		b := padded.SampleWorldInto(rng, buf)
		v, err := pred(b)
		if err != nil {
			return Estimate{}, fmt.Errorf("mc: evaluating sample %d: %w", i, err)
		}
		if (v || b.Holds(rc.Rel, rc.Args)) && b.Holds(rd.Rel, rd.Args) {
			hits++
		}
		drawn++
	}
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	xTilde := float64(hits) / float64(drawn)
	alpha := (xTilde - xiF*xiF) / (xiF - xiF*xiF)
	alpha = math.Max(0, math.Min(1, alpha))
	est := Estimate{Value: alpha, Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "padded-structural"}
	if drawn < requested {
		est.Partial = true
		est.Eps = widenedPaddedEps(xiF, delta, drawn)
	}
	return est, nil
}
