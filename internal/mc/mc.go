// Package mc implements the randomized absolute-error approximation
// algorithms of Section 5: plain Monte Carlo estimation of query
// probabilities and expected errors over the world space Omega(D)
// (Corollary 5.5), and the ξ-padding estimator of Theorem 5.12 with its
// sample-size bound derived from Lemma 5.11.
package mc

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Estimate is the result of a randomized approximation.
type Estimate struct {
	// Value is the estimated quantity.
	Value float64
	// Samples is the number of sampled worlds.
	Samples int
	// Eps and Delta are the guarantee parameters the sample size was
	// derived from: Pr[|Value − truth| > Eps] < Delta.
	Eps, Delta float64
	// Method names the estimator ("hoeffding", "padded").
	Method string
}

// HoeffdingSampleSize returns the number of samples of a [0,1]-valued
// variable needed so that the sample mean deviates from the expectation
// by more than eps with probability below delta:
// t = ⌈ln(2/δ) / (2ε²)⌉.
func HoeffdingSampleSize(eps, delta float64) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("mc: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	t := math.Log(2/delta) / (2 * eps * eps)
	if t > 1e9 {
		return 0, fmt.Errorf("mc: sample size %.3g exceeds 1e9; relax eps/delta", t)
	}
	return int(math.Ceil(t)), nil
}

// PaperSampleSize returns the paper's t(ε, δ) from the proof of Theorem
// 5.12: t = ⌈(9 / 2ξε²) · ln(1/δ)⌉.
func PaperSampleSize(xi, eps, delta float64) (int, error) {
	if xi <= 0 || xi >= 0.5 {
		return 0, fmt.Errorf("mc: xi must lie in (0, 1/2), got %v", xi)
	}
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("mc: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	t := 9 / (2 * xi * eps * eps) * math.Log(1/delta)
	if t > 1e9 {
		return 0, fmt.Errorf("mc: sample size %.3g exceeds 1e9; relax eps/delta", t)
	}
	return int(math.Ceil(t)), nil
}

// EstimateMean estimates E[f(B)] for a [0,1]-valued polynomial-time
// computable f over random worlds B ∈ Omega(D), with absolute error eps
// and confidence 1−delta (Hoeffding).
func EstimateMean(db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, rng *rand.Rand) (Estimate, error) {
	t, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		return Estimate{}, err
	}
	sum := 0.0
	for i := 0; i < t; i++ {
		b := db.SampleWorld(rng)
		v, err := f(b)
		if err != nil {
			return Estimate{}, fmt.Errorf("mc: evaluating sample %d: %w", i, err)
		}
		if v < 0 || v > 1 {
			return Estimate{}, fmt.Errorf("mc: sample value %v outside [0,1]", v)
		}
		sum += v
	}
	return Estimate{Value: sum / float64(t), Samples: t, Eps: eps, Delta: delta, Method: "hoeffding"}, nil
}

// EstimateNu estimates nu(psi) = Pr[B ⊨ psi] by plain Monte Carlo with
// the Hoeffding sample size.
func EstimateNu(db *unreliable.DB, pred func(*rel.Structure) (bool, error), eps, delta float64, rng *rand.Rand) (Estimate, error) {
	return EstimateMean(db, func(b *rel.Structure) (float64, error) {
		v, err := pred(b)
		if err != nil {
			return 0, err
		}
		if v {
			return 1, nil
		}
		return 0, nil
	}, eps, delta, rng)
}

// DefaultXi is the ξ used by EstimateNuPadded when the caller passes 0.
// The paper fixes ξ ∈ (0, 1/2) before seeing the database or the
// accuracy parameters.
const DefaultXi = 0.25

// EstimateNuPadded estimates nu(psi) with the construction from the
// proof of Theorem 5.12: the query is padded to
// psi' = (psi ∨ Rc) ∧ Rd with two fresh ξ-probability atoms, giving a
// variable X with ξ² ≤ E[X] = p ≤ ξ < 1/2 that satisfies the
// preconditions of Lemma 5.11; the estimate is recovered as
// α = (X̃ − ξ²)/(ξ − ξ²). Following the paper, the algorithm runs at
// ε/2 so the final guarantee is Pr[|α − nu(psi)| > ε] < δ.
//
// The padding is realized algebraically by two independent Bernoulli(ξ)
// coins per sample, which has exactly the distribution of the paper's
// database modification D' (see PadDB for the literal structural
// construction, equivalence verified in tests and E8).
func EstimateNuPadded(db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, rng *rand.Rand) (Estimate, error) {
	if xi == 0 {
		xi = DefaultXi
	}
	half := eps / 2
	t, err := PaperSampleSize(xi, half, delta)
	if err != nil {
		return Estimate{}, err
	}
	hits := 0
	for i := 0; i < t; i++ {
		b := db.SampleWorld(rng)
		v, err := pred(b)
		if err != nil {
			return Estimate{}, fmt.Errorf("mc: evaluating sample %d: %w", i, err)
		}
		rc := rng.Float64() < xi
		rd := rng.Float64() < xi
		if (v || rc) && rd {
			hits++
		}
	}
	xTilde := float64(hits) / float64(t)
	alpha := (xTilde - xi*xi) / (xi - xi*xi)
	// The algebra can leave [0,1] by sampling noise; probabilities can't.
	alpha = math.Max(0, math.Min(1, alpha))
	return Estimate{Value: alpha, Samples: t, Eps: eps, Delta: delta, Method: "padded"}, nil
}

// PadRel is the name of the fresh unary relation added by PadDB.
const PadRel = "R_pad"

// PadDB performs the literal database modification from the proof of
// Theorem 5.12: it extends the vocabulary with a fresh empty unary
// relation R and two constants c ≠ d, and gives the atoms Rc and Rd
// error probability ξ. The universe must have at least two elements to
// interpret c and d distinctly. The returned atoms are Rc and Rd; a
// query psi over the original vocabulary evaluates identically on the
// padded worlds, so psi' = (psi ∨ Rc) ∧ Rd realizes the padded variable.
func PadDB(db *unreliable.DB, xi *big.Rat) (*unreliable.DB, rel.GroundAtom, rel.GroundAtom, error) {
	var zero rel.GroundAtom
	if db.A.N < 2 {
		return nil, zero, zero, fmt.Errorf("mc: universe of size %d cannot interpret two distinct constants", db.A.N)
	}
	if _, exists := db.A.Voc.Rel(PadRel); exists {
		return nil, zero, zero, fmt.Errorf("mc: vocabulary already contains %q", PadRel)
	}
	voc := db.A.Voc.Clone()
	if err := voc.AddRel(rel.RelSym{Name: PadRel, Arity: 1}); err != nil {
		return nil, zero, zero, err
	}
	if err := voc.AddConst("c_pad"); err != nil {
		return nil, zero, zero, err
	}
	if err := voc.AddConst("d_pad"); err != nil {
		return nil, zero, zero, err
	}
	a, err := rel.NewStructure(db.A.N, voc)
	if err != nil {
		return nil, zero, zero, err
	}
	for _, sym := range db.A.Voc.Rels {
		for _, tup := range db.A.Rel(sym.Name).Tuples() {
			if err := a.Add(sym.Name, tup); err != nil {
				return nil, zero, zero, err
			}
		}
	}
	for name, e := range db.A.Consts {
		if err := a.SetConst(name, e); err != nil {
			return nil, zero, zero, err
		}
	}
	if err := a.SetConst("c_pad", 0); err != nil {
		return nil, zero, zero, err
	}
	if err := a.SetConst("d_pad", 1); err != nil {
		return nil, zero, zero, err
	}
	padded := unreliable.New(a)
	db.A.ForEachGroundAtom(func(atom rel.GroundAtom) bool {
		mu := db.ErrorProb(atom)
		if mu.Sign() != 0 {
			padded.MustSetError(atom, mu)
		}
		return true
	})
	rc := rel.GroundAtom{Rel: PadRel, Args: rel.Tuple{0}}
	rd := rel.GroundAtom{Rel: PadRel, Args: rel.Tuple{1}}
	if err := padded.SetError(rc, xi); err != nil {
		return nil, zero, zero, err
	}
	if err := padded.SetError(rd, xi); err != nil {
		return nil, zero, zero, err
	}
	return padded, rc, rd, nil
}

// EstimateNuPaddedStructural is EstimateNuPadded implemented with the
// paper's literal database modification: the padded database D' is
// materialized with PadDB and the samples evaluate
// psi' = (psi ∨ Rc) ∧ Rd on its worlds. It exists to validate the
// algebraic shortcut; the two estimators have identical sample
// distributions.
func EstimateNuPaddedStructural(db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, rng *rand.Rand) (Estimate, error) {
	if xi == 0 {
		xi = DefaultXi
	}
	xiRat := new(big.Rat).SetFloat64(xi)
	padded, rc, rd, err := PadDB(db, xiRat)
	if err != nil {
		return Estimate{}, err
	}
	xiF, _ := xiRat.Float64()
	half := eps / 2
	t, err := PaperSampleSize(xiF, half, delta)
	if err != nil {
		return Estimate{}, err
	}
	hits := 0
	for i := 0; i < t; i++ {
		b := padded.SampleWorld(rng)
		v, err := pred(b)
		if err != nil {
			return Estimate{}, fmt.Errorf("mc: evaluating sample %d: %w", i, err)
		}
		if (v || b.Holds(rc.Rel, rc.Args)) && b.Holds(rd.Rel, rd.Args) {
			hits++
		}
	}
	xTilde := float64(hits) / float64(t)
	alpha := (xTilde - xiF*xiF) / (xiF - xiF*xiF)
	alpha = math.Max(0, math.Min(1, alpha))
	return Estimate{Value: alpha, Samples: t, Eps: eps, Delta: delta, Method: "padded-structural"}, nil
}
