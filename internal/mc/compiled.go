package mc

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"qrel/internal/unreliable"
	"qrel/internal/vm"
)

// Compiled estimators: the same estimation loops as mc.go, with the
// per-sample world materialization + tree-walk oracle replaced by
// bit-parallel bytecode evaluation (internal/vm) over batches of up
// to 64 worlds. The RNG draw sequence is preserved *per sample*: a
// batch draws each sample's world bits (and any auxiliary coins) in
// the scalar order before the next sample's, only the formula
// evaluation is deferred and vectorized. Combined with the boundary
// alignment of sampleAssignedLanesBatch, a compiled run is
// byte-identical — estimate, LoopState checkpoints, lane aggregates,
// RangeDigest — to the interpreted run for the same seed, worker
// count, and lane range.

// CompiledMean is the compiled form of the mean-of-symmetric-
// difference statistic (the monte-carlo-direct engine): one program
// per answer-domain tuple, the observed answer per tuple, and the
// normalization denominator. For each sampled world, the statistic is
// |{t : prog_t(world) != base_t}| / normF — exactly
// |answerSet(world) Δ answerSet(observed)| / normF.
type CompiledMean struct {
	Progs []*vm.Program
	Base  []bool
	NormF float64
}

// step builds the batched per-lane step of the compiled mean
// estimator.
func (cm *CompiledMean) step(db *unreliable.DB) func(ln *Lane) func(m int) error {
	muF := db.UncertainMuF()
	need := 1
	for _, p := range cm.Progs {
		if n := p.StackNeed(); n > need {
			need = n
		}
	}
	return func(ln *Lane) func(m int) error {
		d := NewDrawer(ln)
		cols := make([]uint64, len(muF))
		stack := make([]uint64, need)
		var counts [64]int
		return func(m int) error {
			for i := range cols {
				cols[i] = 0
			}
			for s := 0; s < m; s++ {
				bit := uint64(1) << uint(s)
				for i, mu := range muF {
					if d.Float64() < mu {
						cols[i] |= bit
					}
				}
			}
			full := batchFull(m)
			for s := 0; s < m; s++ {
				counts[s] = 0
			}
			for ti, p := range cm.Progs {
				v := p.EvalBatch(cols, full, stack)
				if cm.Base[ti] {
					v ^= full
				}
				for v != 0 {
					counts[bits.TrailingZeros64(v)]++
					v &= v - 1
				}
			}
			// Fold per-sample, in sample order, with the identical float
			// division the scalar step performs — Sum is order-sensitive.
			for s := 0; s < m; s++ {
				ln.Sum += float64(counts[s]) / cm.NormF
			}
			return nil
		}
	}
}

// EstimateMeanCompiled is EstimateMean with a compiled statistic; see
// EstimateMean for the anytime contract.
func EstimateMeanCompiled(ctx context.Context, db *unreliable.DB, cm *CompiledMean, eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return estimateMeanLanesCompiled(ctx, db, cm, eps, delta, maxSamples, []*Lane{{Rng: rng}}, 1, nil)
}

// EstimateMeanCkCompiled is EstimateMeanCk with a compiled statistic.
func EstimateMeanCkCompiled(ctx context.Context, db *unreliable.DB, cm *CompiledMean, eps, delta float64, maxSamples int, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateMeanLanesCompiled(ctx, db, cm, eps, delta, maxSamples, []*Lane{{Src: src, Rng: rand.New(src)}}, 1, ck)
}

// EstimateMeanParCompiled is EstimateMeanPar with a compiled
// statistic.
func EstimateMeanParCompiled(ctx context.Context, db *unreliable.DB, cm *CompiledMean, eps, delta float64, maxSamples int, seed int64, par Par, ck *Ckpt) (Estimate, error) {
	lanes, workers := LanesFor(seed, par)
	return estimateMeanLanesCompiled(ctx, db, cm, eps, delta, maxSamples, lanes, workers, ck)
}

func estimateMeanLanesCompiled(ctx context.Context, db *unreliable.DB, cm *CompiledMean, eps, delta float64, maxSamples int, lanes []*Lane, workers int, ck *Ckpt) (Estimate, error) {
	requested, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1 // any realized count reads as partial
	}
	t, _ := clampSamples(requested, maxSamples)
	err = sampleLanesBatch(ctx, "hoeffding", lanes, workers, t, ck, cm.step(db))
	if err != nil {
		return Estimate{}, err
	}
	drawn, _, sum := laneTotals(lanes)
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	est := Estimate{Value: sum / float64(drawn), Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "hoeffding"}
	if drawn < requested {
		est.Partial = true
		est.Eps = WidenedHoeffdingEps(delta, drawn)
	}
	return est, nil
}

// EstimateMeanRangeCompiled is EstimateMeanRange with a compiled
// statistic: the lane subrange [rng.Lo,rng.Hi) of the rng.Total-lane
// split, producing per-lane aggregates byte-identical to both the
// interpreted range run and the corresponding lanes of a single-node
// run.
func EstimateMeanRangeCompiled(ctx context.Context, db *unreliable.DB, cm *CompiledMean, eps, delta float64, maxSamples int, seed int64, rng Range, workers int, ck *Ckpt) (RangeResult, error) {
	if err := rng.Validate(); err != nil {
		return RangeResult{}, err
	}
	requested, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		if maxSamples <= 0 {
			return RangeResult{}, err
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	all := SplitLanes(seed, rng.Total)
	AssignQuotas(all, t)
	sub := all[rng.Lo:rng.Hi]
	workers = Par{Lanes: rng.Len(), Workers: workers}.withDefaults().Workers
	if err := sampleAssignedLanesBatch(ctx, rangeMethod("hoeffding", rng), sub, workers, ck, cm.step(db)); err != nil {
		return RangeResult{}, err
	}
	drawn, _, _ := laneTotals(sub)
	if drawn == 0 {
		return RangeResult{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	res := RangeResult{Range: rng, Method: "hoeffding", Requested: requested, Lanes: make([]LaneAgg, 0, len(sub))}
	for _, ln := range sub {
		res.Lanes = append(res.Lanes, LaneAgg{Idx: ln.Idx, Quota: ln.Quota, Drawn: ln.Drawn, Hits: ln.Hits, Sum: ln.Sum})
	}
	return res, nil
}

// paddedStepCompiled builds the batched per-lane step of the padded
// estimator: per sample, the world bits then the two Bernoulli(ξ)
// padding coins, in the scalar order; per batch, one bit-parallel
// evaluation and a popcount into Hits.
func paddedStepCompiled(db *unreliable.DB, prog *vm.Program, xi float64) func(ln *Lane) func(m int) error {
	muF := db.UncertainMuF()
	return func(ln *Lane) func(m int) error {
		d := NewDrawer(ln)
		cols := make([]uint64, len(muF))
		stack := prog.NewStack()
		return func(m int) error {
			for i := range cols {
				cols[i] = 0
			}
			var rc, rd uint64
			for s := 0; s < m; s++ {
				bit := uint64(1) << uint(s)
				for i, mu := range muF {
					if d.Float64() < mu {
						cols[i] |= bit
					}
				}
				if d.Float64() < xi {
					rc |= bit
				}
				if d.Float64() < xi {
					rd |= bit
				}
			}
			v := prog.EvalBatch(cols, batchFull(m), stack)
			ln.Hits += bits.OnesCount64((v | rc) & rd)
			return nil
		}
	}
}

// EstimateNuPaddedCompiled is EstimateNuPadded with a compiled query
// program.
func EstimateNuPaddedCompiled(ctx context.Context, db *unreliable.DB, prog *vm.Program, xi, eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return estimateNuPaddedLanesCompiled(ctx, db, prog, xi, eps, delta, maxSamples, []*Lane{{Rng: rng}}, 1, nil)
}

// EstimateNuPaddedCkCompiled is EstimateNuPaddedCk with a compiled
// query program.
func EstimateNuPaddedCkCompiled(ctx context.Context, db *unreliable.DB, prog *vm.Program, xi, eps, delta float64, maxSamples int, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateNuPaddedLanesCompiled(ctx, db, prog, xi, eps, delta, maxSamples, []*Lane{{Src: src, Rng: rand.New(src)}}, 1, ck)
}

// EstimateNuPaddedParCompiled is EstimateNuPaddedPar with a compiled
// query program.
func EstimateNuPaddedParCompiled(ctx context.Context, db *unreliable.DB, prog *vm.Program, xi, eps, delta float64, maxSamples int, seed int64, par Par, ck *Ckpt) (Estimate, error) {
	lanes, workers := LanesFor(seed, par)
	return estimateNuPaddedLanesCompiled(ctx, db, prog, xi, eps, delta, maxSamples, lanes, workers, ck)
}

func estimateNuPaddedLanesCompiled(ctx context.Context, db *unreliable.DB, prog *vm.Program, xi, eps, delta float64, maxSamples int, lanes []*Lane, workers int, ck *Ckpt) (Estimate, error) {
	if xi == 0 {
		xi = DefaultXi
	}
	half := eps / 2
	requested, err := PaperSampleSize(xi, half, delta)
	if err != nil {
		if maxSamples <= 0 {
			return Estimate{}, err
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	err = sampleLanesBatch(ctx, "padded", lanes, workers, t, ck, paddedStepCompiled(db, prog, xi))
	if err != nil {
		return Estimate{}, err
	}
	drawn, hits, _ := laneTotals(lanes)
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	xTilde := float64(hits) / float64(drawn)
	alpha := (xTilde - xi*xi) / (xi - xi*xi)
	// The algebra can leave [0,1] by sampling noise; probabilities can't.
	alpha = math.Max(0, math.Min(1, alpha))
	est := Estimate{Value: alpha, Samples: drawn, Requested: requested, Eps: eps, Delta: delta, Method: "padded"}
	if drawn < requested {
		est.Partial = true
		est.Eps = widenedPaddedEps(xi, delta, drawn)
	}
	return est, nil
}
