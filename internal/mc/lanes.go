package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"qrel/internal/faultinject"
)

// Lane-split parallel sampling. A sampling run is divided into a fixed
// number of RNG lanes: lane i draws from the seed's base xoshiro256**
// state advanced by i LongJumps (2^192 apart, so the lanes never
// overlap), and owns a fixed quota of the total sample count. Lanes are
// executed by a pool of workers, but the estimate is a function of
// (seed, lane count) only: per-lane aggregates accumulate in sample
// order within the lane and are merged in lane-index order, so the
// W-worker estimate for seed s is bit-identical to the 1-worker
// estimate for seed s, for any W. The lane count is therefore part of
// the checkpoint fingerprint, while the worker count is free to change
// between runs (and across a kill/resume).

// DefaultLanes is the number of RNG lanes a lane-split run uses. It is
// a property of the computation (it determines the estimate), not of
// the machine: worker counts only schedule the lanes.
const DefaultLanes = 8

// Par configures a lane-split parallel estimation run.
type Par struct {
	// Lanes is the number of RNG lanes the sample stream is split into
	// (default DefaultLanes). The estimate for a seed depends on the
	// lane count, never on Workers.
	Lanes int
	// Workers caps the goroutines driving the lanes (default
	// GOMAXPROCS, always clamped to Lanes).
	Workers int
}

func (p Par) withDefaults() Par {
	if p.Lanes <= 0 {
		p.Lanes = DefaultLanes
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Workers > p.Lanes {
		p.Workers = p.Lanes
	}
	return p
}

// Lane is one deterministic RNG lane of a lane-split run: a private
// substream, a fixed sample quota, and the partial aggregates
// accumulated in sample order. Lanes are merged in index order.
type Lane struct {
	// Idx is the lane index (merge order).
	Idx int
	// Src is the lane's serializable substream; Rng draws from it.
	Src *Source
	Rng *rand.Rand
	// Quota is the number of samples this lane owns of the run total.
	Quota int
	// Drawn, Hits, Sum are the lane's progress and partial aggregates.
	Drawn int
	Hits  int
	Sum   float64
}

// SplitLanes derives n non-overlapping lanes from one seed: lane i
// starts at the seed's base state advanced by i LongJumps (2^192
// draws apart).
func SplitLanes(seed int64, n int) []*Lane {
	base := NewSource(seed)
	lanes := make([]*Lane, n)
	for i := 0; i < n; i++ {
		src := &Source{s: base.s}
		lanes[i] = &Lane{Idx: i, Src: src, Rng: rand.New(src)}
		base.LongJump()
	}
	return lanes
}

// LanesFor builds the lane set and effective worker count of a
// lane-split run.
func LanesFor(seed int64, par Par) ([]*Lane, int) {
	par = par.withDefaults()
	return SplitLanes(seed, par.Lanes), par.Workers
}

// AssignQuotas splits total samples over the lanes deterministically:
// lane i gets ⌊total/L⌋ plus one of the total%L remainder slots, in
// index order.
func AssignQuotas(lanes []*Lane, total int) {
	q, rem := total/len(lanes), total%len(lanes)
	for i, ln := range lanes {
		ln.Quota = q
		if i < rem {
			ln.Quota++
		}
	}
}

// TupleSeed derives the deterministic lane seed of answer tuple idx in
// a tuple-splitting parallel engine (splitmix64 finalizer over the run
// seed and the tuple index).
func TupleSeed(seed int64, idx int) int64 {
	x := uint64(seed) ^ (0x9e3779b97f4a7c15 * (uint64(idx) + 1))
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// isCtxErr reports a pure cancellation error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunLanes drives fn over the lanes with at most workers goroutines.
// The first real error cancels the sibling lanes via the derived
// context and is returned (root-cause errors are preferred over the
// cancellations they provoke — same pattern as core.WorldEnumParallel).
// fn must treat cancellation of its ctx as a clean early stop when the
// estimator is anytime (return nil with the lane partially drawn), or
// return ctx.Err() when it is not.
func RunLanes(ctx context.Context, lanes []*Lane, workers int, fn func(ctx context.Context, ln *Lane) error) error {
	if workers > len(lanes) {
		workers = len(lanes)
	}
	if workers <= 1 {
		for _, ln := range lanes {
			if err := faultinject.Hit(faultinject.SiteLaneWorker); err != nil {
				return err
			}
			if err := fn(ctx, ln); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(lanes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(lanes) {
					return
				}
				if err := faultinject.Hit(faultinject.SiteLaneWorker); err != nil {
					errs[i] = err
					cancel()
					return
				}
				if err := fn(ctx, lanes[i]); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(err)) {
			firstErr = err
		}
	}
	return firstErr
}

// LaneCkpt serializes concurrent per-lane snapshot publication into
// Ckpt.Save calls. Each lane publishes its state at sample boundaries;
// a persisted snapshot assembles the last published state of every
// lane. Lanes are independent streams, so the assembled states need
// not be from the same instant — any combination of per-lane
// boundaries is a valid resume point. With a single lane the snapshot
// is written in the legacy (PR 3) single-lane format, so sequential
// runs stay byte-compatible with existing stores.
type LaneCkpt struct {
	ck     *Ckpt
	method string
	inert  bool
	// base is the global index of the first lane: a lane-range run (see
	// Range) publishes lanes whose Idx starts at Range.Lo, stored here
	// positionally.
	base int

	mu         sync.Mutex
	lanes      []LaneState
	savedDrawn int // total Drawn at the last persisted (or restored) snapshot
}

// NewLaneCkpt builds the checkpoint publisher for a lane run; it is
// inert (all methods no-ops) when ck is nil, has no Save hook, or the
// lanes carry no serializable Source.
func NewLaneCkpt(method string, lanes []*Lane, ck *Ckpt) *LaneCkpt {
	lc := &LaneCkpt{ck: ck, method: method}
	if ck == nil || ck.Save == nil {
		lc.inert = true
		return lc
	}
	for _, ln := range lanes {
		if ln.Src == nil {
			lc.inert = true
			return lc
		}
	}
	lc.base = lanes[0].Idx
	lc.lanes = make([]LaneState, len(lanes))
	for i, ln := range lanes {
		lc.lanes[i] = LaneState{Drawn: ln.Drawn, Hits: ln.Hits, Sum: ln.Sum, RNG: ln.Src.State()}
		lc.savedDrawn += ln.Drawn
	}
	return lc
}

// PerLaneEvery translates the run-total snapshot interval ck.Every
// into a per-lane interval (0 disables periodic saves).
func (lc *LaneCkpt) PerLaneEvery(nLanes int) int {
	if lc.inert || lc.ck.Every <= 0 {
		return 0
	}
	e := lc.ck.Every / nLanes
	if e < 1 {
		e = 1
	}
	return e
}

// Publish records ln's current state at a sample boundary; with save
// set it also persists the assembled multi-lane snapshot (skipped when
// nothing was drawn since the last persisted one).
func (lc *LaneCkpt) Publish(ln *Lane, save bool) error {
	if lc.inert {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lanes[ln.Idx-lc.base] = LaneState{Drawn: ln.Drawn, Hits: ln.Hits, Sum: ln.Sum, RNG: ln.Src.State()}
	if !save {
		return nil
	}
	return lc.saveLocked()
}

// FinalSave persists the boundary snapshot after the lanes joined:
// after a cancellation it is the state a restart resumes from; after
// completion it makes a re-run an instant replay.
func (lc *LaneCkpt) FinalSave() error {
	if lc.inert {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.saveLocked()
}

func (lc *LaneCkpt) saveLocked() error {
	st := LoopState{Method: lc.method}
	for _, l := range lc.lanes {
		st.Drawn += l.Drawn
		st.Hits += l.Hits
		st.Sum += l.Sum
	}
	if st.Drawn == lc.savedDrawn {
		return nil
	}
	st.RNG = lc.lanes[0].RNG
	if len(lc.lanes) > 1 {
		st.LaneCount = len(lc.lanes)
		st.Lanes = append([]LaneState(nil), lc.lanes...)
	}
	lc.savedDrawn = st.Drawn
	return lc.ck.Save(st)
}

// ErrResumeMismatch reports a snapshot that cannot resume the run at
// hand: wrong estimator method (including a different lane range), a
// lane-count mismatch, an implausible state, or an undecodable RNG
// state. It separates "this snapshot belongs to a different
// computation" from disk corruption — a caller holding a shipped
// snapshot falls back to a clean restart on it rather than failing.
var ErrResumeMismatch = errors.New("mc: snapshot does not match this run")

// RestoreLanes applies ck.Resume (if any) to the lanes: a multi-lane
// (v2) snapshot restores per-lane counters and RNG states; a legacy
// single-lane snapshot restores only into a single-lane run. Lane
// count mismatches are rejected — the estimate is a function of the
// lane count, so resuming across counts would silently change it.
// Every rejection wraps ErrResumeMismatch.
func RestoreLanes(method string, lanes []*Lane, ck *Ckpt) error {
	if ck == nil || ck.Resume == nil {
		return nil
	}
	st := ck.Resume
	if st.Method != method {
		return fmt.Errorf("%w: snapshot was taken by estimator %q, cannot resume %q", ErrResumeMismatch, st.Method, method)
	}
	for _, ln := range lanes {
		if ln.Src == nil {
			return fmt.Errorf("%w: resuming requires a serializable Source", ErrResumeMismatch)
		}
	}
	if st.LaneCount == 0 {
		if len(lanes) != 1 {
			return fmt.Errorf("%w: single-lane snapshot cannot resume a %d-lane run", ErrResumeMismatch, len(lanes))
		}
		if st.Drawn < 0 || st.Hits < 0 || st.Hits > st.Drawn {
			return fmt.Errorf("%w: implausible snapshot state drawn=%d hits=%d", ErrResumeMismatch, st.Drawn, st.Hits)
		}
		ln := lanes[0]
		if err := ln.Src.SetState(st.RNG); err != nil {
			return fmt.Errorf("%w: %v", ErrResumeMismatch, err)
		}
		ln.Drawn, ln.Hits, ln.Sum = st.Drawn, st.Hits, st.Sum
		return nil
	}
	if st.LaneCount != len(lanes) || len(st.Lanes) != st.LaneCount {
		return fmt.Errorf("%w: snapshot has %d lanes (%d lane states), cannot resume a %d-lane run",
			ErrResumeMismatch, st.LaneCount, len(st.Lanes), len(lanes))
	}
	for i, ln := range lanes {
		ls := st.Lanes[i]
		if ls.Drawn < 0 || ls.Hits < 0 || ls.Hits > ls.Drawn {
			return fmt.Errorf("%w: implausible snapshot state for lane %d: drawn=%d hits=%d", ErrResumeMismatch, i, ls.Drawn, ls.Hits)
		}
		if err := ln.Src.SetState(ls.RNG); err != nil {
			return fmt.Errorf("%w: lane %d: %v", ErrResumeMismatch, i, err)
		}
		ln.Drawn, ln.Hits, ln.Sum = ls.Drawn, ls.Hits, ls.Sum
	}
	return nil
}

// sampleLanes is the shared skeleton of every sampling estimator in
// this package: assign quotas, restore a snapshot, run the lanes with
// periodic checkpoint publication, and persist the final boundary.
// setup builds the per-lane draw step (owning the lane's scratch
// buffers); step draws exactly one sample from ln.Rng and updates
// ln.Sum/ln.Hits. Anytime semantics: cancellation stops lanes cleanly
// at a sample boundary, leaving the partial aggregates valid.
func sampleLanes(ctx context.Context, method string, lanes []*Lane, workers, total int, ck *Ckpt,
	setup func(ln *Lane) func() error) error {
	AssignQuotas(lanes, total)
	return sampleAssignedLanes(ctx, method, lanes, workers, ck, setup)
}

// sampleAssignedLanes is sampleLanes with the quota assignment lifted
// out: lane-range runs (see EstimateMeanRange) assign quotas over the
// *full* lane split and then drive only their subrange through this
// skeleton, so a lane's quota never depends on which node runs it.
func sampleAssignedLanes(ctx context.Context, method string, lanes []*Lane, workers int, ck *Ckpt,
	setup func(ln *Lane) func() error) error {
	if err := RestoreLanes(method, lanes, ck); err != nil {
		return err
	}
	lc := NewLaneCkpt(method, lanes, ck)
	every := lc.PerLaneEvery(len(lanes))
	err := RunLanes(ctx, lanes, workers, func(ctx context.Context, ln *Lane) error {
		step := setup(ln)
		lastSave := ln.Drawn
		for ln.Drawn < ln.Quota {
			if ln.Drawn%ctxPollStride == 0 && ctx.Err() != nil {
				break
			}
			if every > 0 && ln.Drawn-lastSave >= every {
				lastSave = ln.Drawn
				if err := lc.Publish(ln, true); err != nil {
					return err
				}
			}
			if err := step(); err != nil {
				return err
			}
			ln.Drawn++
		}
		return lc.Publish(ln, false)
	})
	if err != nil {
		return err
	}
	return lc.FinalSave()
}

// laneTotals merges the per-lane aggregates in lane-index order.
func laneTotals(lanes []*Lane) (drawn, hits int, sum float64) {
	for _, ln := range lanes {
		drawn += ln.Drawn
		hits += ln.Hits
		sum += ln.Sum
	}
	return drawn, hits, sum
}
