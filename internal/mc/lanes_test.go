package mc

import (
	"context"
	"errors"
	"math"
	"math/big"
	"sync/atomic"
	"testing"

	"qrel/internal/faultinject"
	"qrel/internal/rel"
	"qrel/internal/testutil"
	"qrel/internal/unreliable"
)

// manyAtomDB is a database with several uncertain atoms so lane streams
// exercise multi-flip world draws.
func manyAtomDB() *unreliable.DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(8, voc)
	d := unreliable.New(s)
	for i := 0; i < 8; i++ {
		s.MustAdd("S", i)
		d.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{i}}, big.NewRat(int64(i+1), 10))
	}
	return d
}

// statS counts the fraction of S-facts present in a sampled world.
func statS(b *rel.Structure) (float64, error) {
	n := 0
	for i := 0; i < 8; i++ {
		if b.Holds("S", rel.Tuple{i}) {
			n++
		}
	}
	return float64(n) / 8, nil
}

func predAnyS(b *rel.Structure) (bool, error) {
	for i := 0; i < 8; i++ {
		if !b.Holds("S", rel.Tuple{i}) {
			return true, nil
		}
	}
	return false, nil
}

// TestLaneDeterminismAcrossWorkers is the core contract of the lane
// runtime: the estimate is a function of (seed, lane count) only — any
// worker count W >= 1 produces the byte-identical Estimate, because W
// only schedules the fixed lanes.
func TestLaneDeterminismAcrossWorkers(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed = 42

	baseMean, err := EstimateMeanPar(bg, d, statS, 0.05, 0.1, 0, seed, Par{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	basePadded, err := EstimateNuPaddedPar(bg, d, predAnyS, 0.25, 0.1, 0.1, 0, seed, Par{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseRare, err := EstimateMeanRarePar(bg, d, statS, 0.05, 0.1, 0, seed, Par{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseMean.Samples == 0 || basePadded.Samples == 0 || baseRare.Samples == 0 {
		t.Fatal("baseline drew no samples")
	}

	for _, w := range []int{2, 4, 7} {
		mean, err := EstimateMeanPar(bg, d, statS, 0.05, 0.1, 0, seed, Par{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mean != baseMean {
			t.Errorf("EstimateMeanPar workers=%d: %+v != workers=1 %+v", w, mean, baseMean)
		}
		padded, err := EstimateNuPaddedPar(bg, d, predAnyS, 0.25, 0.1, 0.1, 0, seed, Par{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if padded != basePadded {
			t.Errorf("EstimateNuPaddedPar workers=%d: %+v != workers=1 %+v", w, padded, basePadded)
		}
		rare, err := EstimateMeanRarePar(bg, d, statS, 0.05, 0.1, 0, seed, Par{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rare != baseRare {
			t.Errorf("EstimateMeanRarePar workers=%d: %+v != workers=1 %+v", w, rare, baseRare)
		}
	}
}

// TestLaneCancelWidensEps is the regression test for the partial-result
// accounting fix: a canceled parallel run must report Drawn as the true
// total across all lanes and widen eps from that total — not from any
// single lane's count.
func TestLaneCancelWidensEps(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	ctx, cancel := context.WithCancel(bg)
	var calls atomic.Int64
	f := func(b *rel.Structure) (float64, error) {
		if calls.Add(1) == 2000 {
			cancel()
		}
		return statS(b)
	}
	const delta = 0.1
	est, err := EstimateMeanPar(ctx, d, f, 0.01, delta, 0, 7, Par{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial {
		t.Fatal("canceled run not marked Partial")
	}
	if est.Samples < 2000 || est.Samples >= est.Requested {
		t.Fatalf("Samples = %d, want cross-lane total in [2000, %d)", est.Samples, est.Requested)
	}
	want := WidenedHoeffdingEps(delta, est.Samples)
	if math.Abs(est.Eps-want) > 1e-15 {
		t.Errorf("widened eps %v, want WidenedHoeffdingEps(delta, %d) = %v", est.Eps, est.Samples, want)
	}
}

// TestLaneKillResume kills a multi-lane run mid-flight, checkpoints it,
// resumes from the snapshot, and requires the final estimate to be
// bit-identical to an uninterrupted run of the same seed.
func TestLaneKillResume(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed, eps, delta = 9, 0.02, 0.1

	uninterrupted, err := EstimateMeanPar(bg, d, statS, eps, delta, 0, seed, Par{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var snap *LoopState
	save := func(st LoopState) error {
		snap = &st
		return nil
	}
	ctx, cancel := context.WithCancel(bg)
	var calls atomic.Int64
	killer := func(b *rel.Structure) (float64, error) {
		if calls.Add(1) == 1500 {
			cancel()
		}
		return statS(b)
	}
	first, err := EstimateMeanPar(ctx, d, killer, eps, delta, 0, seed, Par{Workers: 3}, &Ckpt{Every: 256, Save: save})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Partial {
		t.Fatal("killed run not marked Partial")
	}
	if snap == nil {
		t.Fatal("no checkpoint was saved")
	}
	if snap.LaneCount != DefaultLanes || len(snap.Lanes) != DefaultLanes {
		t.Fatalf("snapshot has LaneCount=%d, %d lane states; want %d", snap.LaneCount, len(snap.Lanes), DefaultLanes)
	}

	resumed, err := EstimateMeanPar(bg, d, statS, eps, delta, 0, seed, Par{Workers: 3}, &Ckpt{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != uninterrupted {
		t.Errorf("resumed estimate %+v != uninterrupted %+v", resumed, uninterrupted)
	}
}

// TestRestoreLanesRejectsMismatch covers the snapshot/run lane-count
// compatibility rules: a single-lane snapshot cannot seed a multi-lane
// run, and lane counts must match exactly.
func TestRestoreLanesRejectsMismatch(t *testing.T) {
	single := &LoopState{Method: "hoeffding", Drawn: 10, Sum: 5, RNG: NewSource(1).State()}
	lanes := SplitLanes(1, DefaultLanes)
	if err := RestoreLanes("hoeffding", lanes, &Ckpt{Resume: single}); err == nil {
		t.Error("single-lane snapshot restored into multi-lane run")
	}

	multi := &LoopState{Method: "hoeffding", LaneCount: 4, RNG: NewSource(1).State()}
	for i := 0; i < 4; i++ {
		multi.Lanes = append(multi.Lanes, LaneState{RNG: NewSource(int64(i + 1)).State()})
	}
	if err := RestoreLanes("hoeffding", lanes, &Ckpt{Resume: multi}); err == nil {
		t.Errorf("%d-lane snapshot restored into %d-lane run", 4, DefaultLanes)
	}
	if err := RestoreLanes("padded", SplitLanes(1, 4), &Ckpt{Resume: multi}); err == nil {
		t.Error("snapshot restored into a different estimator")
	}
}

// TestLaneWorkerFaultInjection injects a failure into one lane worker
// and requires the estimator to surface it (not a context error) while
// sibling lanes are canceled rather than left running.
func TestLaneWorkerFaultInjection(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	defer faultinject.Reset()
	d := manyAtomDB()
	boom := errors.New("injected lane failure")
	for _, workers := range []int{1, 4} {
		faultinject.Reset()
		faultinject.Enable(faultinject.SiteLaneWorker, faultinject.Fault{Err: boom, Times: 1})
		_, err := EstimateMeanPar(bg, d, statS, 0.05, 0.1, 0, 3, Par{Workers: workers}, nil)
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error %v, want injected fault", workers, err)
		}
	}
}

// TestRunLanesPrefersRealError makes RunLanes report the causal failure
// when sibling lanes die of the cancellation it triggered.
func TestRunLanesPrefersRealError(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	lanes := SplitLanes(5, 4)
	boom := errors.New("lane 2 failed")
	err := RunLanes(bg, lanes, 4, func(ctx context.Context, ln *Lane) error {
		if ln.Idx == 2 {
			return boom
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Errorf("RunLanes error %v, want the non-context lane error", err)
	}
}

// TestAssignQuotas checks the fixed-quota split: totals are preserved
// and remainders go to the lowest-index lanes.
func TestAssignQuotas(t *testing.T) {
	lanes := SplitLanes(1, 8)
	AssignQuotas(lanes, 19)
	sum := 0
	for i, ln := range lanes {
		sum += ln.Quota
		want := 19 / 8
		if i < 19%8 {
			want++
		}
		if ln.Quota != want {
			t.Errorf("lane %d quota %d, want %d", i, ln.Quota, want)
		}
	}
	if sum != 19 {
		t.Errorf("quotas sum to %d, want 19", sum)
	}
}
