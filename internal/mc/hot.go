package mc

import "math/bits"

// HotRNG is a lane Source's xoshiro256** state hoisted into plain
// struct fields for the duration of one evaluation batch. The compiled
// samplers draw tens of values per sample; going through
// (*Source).Uint64 pays a non-inlined call plus four state loads and
// stores per draw, which profiling shows dominates the batched Karp–Luby
// loop. HotRNG's methods are small enough to inline, so a batch loop
// that keeps a HotRNG in a local variable gets the whole generator step
// compiled into the loop body with the state words held in registers.
//
// The value stream is exactly (*Source).Uint64's, and the derived draws
// replicate Drawer's (hence math/rand's) derivations bit for bit. Usage
// contract: obtain the state with Drawer.Hot at the start of a batch and
// write it back with Drawer.PutHot before the batch ends — in
// particular before any checkpoint captures Source.State — so snapshots
// and lane digests never observe a stale generator.
type HotRNG struct {
	s0, s1, s2, s3 uint64
}

// Hot returns the drawer's generator state as a HotRNG. ok is false
// when the lane has no serializable Source (a plain *rand.Rand lane);
// callers must then stay on the Drawer methods.
func (d Drawer) Hot() (h HotRNG, ok bool) {
	if d.src == nil {
		return HotRNG{}, false
	}
	return HotRNG{d.src.s[0], d.src.s[1], d.src.s[2], d.src.s[3]}, true
}

// PutHot writes a HotRNG's state back into the drawer's Source,
// resuming the shared stream where the batch left off.
func (d Drawer) PutHot(h HotRNG) {
	d.src.s = [4]uint64{h.s0, h.s1, h.s2, h.s3}
}

// Uint64 advances the generator: the xoshiro256** step of
// (*Source).Uint64 over the hoisted state words.
func (h *HotRNG) Uint64() uint64 {
	r := bits.RotateLeft64(h.s1*5, 7) * 9
	t := h.s1 << 17
	h.s2 ^= h.s0
	h.s3 ^= h.s1
	h.s1 ^= h.s2
	h.s0 ^= h.s3
	h.s2 ^= t
	h.s3 = bits.RotateLeft64(h.s3, 45)
	return r
}

// Intn2 replicates Drawer.Intn2 (rand.Rand.Intn(2)).
func (h *HotRNG) Intn2() int { return int(int32(int64(h.Uint64()>>1)>>32) & 1) }

// Byte replicates Drawer.Byte (rand.Rand.Intn(256)).
func (h *HotRNG) Byte() byte { return byte(int32(int64(h.Uint64()>>1)>>32) & 255) }

// Float64 replicates Drawer.Float64 (rand.Rand.Float64), with the
// astronomically rare retry-on-1.0 outlined so the fast path stays
// inlinable.
func (h *HotRNG) Float64() float64 {
	f := float64(int64(h.Uint64()>>1)) / (1 << 63)
	if f == 1 {
		return h.float64Retry()
	}
	return f
}

func (h *HotRNG) float64Retry() float64 {
	for {
		f := float64(int64(h.Uint64()>>1)) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}
