package mc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Result attestation. A lane-range run is a pure function of
// (seed, range, accuracy), so its raw per-lane aggregates are the whole
// truth of what a replica computed — and RangeDigest condenses them
// into one comparable fingerprint. Replicas attach the digest to every
// lane-range response (Response.LaneDigest); the coordinator recomputes
// it over the aggregates it is about to merge and refuses any
// sub-response whose digest disagrees (wire or memory corruption
// between the sampling loop and the merge). Two replicas that executed
// the same lane range MUST produce equal digests — the exact-equality
// oracle the coordinator's sampled audits byte-compare.

// RangeDigest fingerprints a set of raw per-lane aggregates. The
// encoding is canonical: lanes are ordered by index and every field —
// including the float Sum, via its IEEE-754 bit pattern — is serialized
// little-endian into the SHA-256 input, so the digest is independent of
// slice order but sensitive to every bit of every aggregate. An empty
// or nil slice digests to a defined value (the hash of a zero lane
// count), so the function is total.
func RangeDigest(lanes []LaneAgg) string {
	sorted := lanes
	if !sort.SliceIsSorted(lanes, func(i, j int) bool { return lanes[i].Idx < lanes[j].Idx }) {
		sorted = append([]LaneAgg(nil), lanes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Idx < sorted[j].Idx })
	}
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(sorted)))
	for _, a := range sorted {
		put(uint64(int64(a.Idx)))
		put(uint64(int64(a.Quota)))
		put(uint64(int64(a.Drawn)))
		put(uint64(int64(a.Hits)))
		put(math.Float64bits(a.Sum))
	}
	return hex.EncodeToString(h.Sum(nil))
}
