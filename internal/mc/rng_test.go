package mc

import (
	"encoding/json"
	"testing"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed sources diverge at draw %d: %d vs %d", i, av, bv)
		}
	}
	c := NewSource(43)
	same := 0
	a = NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestSourceStateRoundTrip(t *testing.T) {
	a := NewSource(7)
	for i := 0; i < 123; i++ {
		a.Uint64()
	}
	st := a.State()

	// Continue the original; replay a restored copy: streams must match.
	b := NewSource(0)
	if err := b.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("restored source diverges at draw %d", i)
		}
	}
}

func TestRNGStateJSONRoundTrip(t *testing.T) {
	a := NewSource(99)
	a.Uint64()
	st := a.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back RNGState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("JSON round trip changed state: %v vs %v", back, st)
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	var s Source
	if err := s.SetState(RNGState{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestNewRandUsableByRand(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestJumpDeterministicAndDisjoint(t *testing.T) {
	// Jump is a deterministic function of the state.
	a, b := NewSource(11), NewSource(11)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-state jumps diverge at draw %d: %d vs %d", i, av, bv)
		}
	}
	// A jumped stream does not collide with the base stream's prefix.
	base, jumped := NewSource(11), NewSource(11)
	jumped.Jump()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[base.Uint64()] = true
	}
	same := 0
	for i := 0; i < 1000; i++ {
		if seen[jumped.Uint64()] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream shares %d/1000 values with the base prefix", same)
	}
}

func TestLongJumpDiffersFromJump(t *testing.T) {
	j, lj := NewSource(5), NewSource(5)
	j.Jump()
	lj.LongJump()
	diff := false
	for i := 0; i < 16; i++ {
		if j.Uint64() != lj.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Jump and LongJump landed on the same stream")
	}
	// LongJump preserves determinism too.
	a, b := NewSource(5), NewSource(5)
	a.LongJump()
	b.LongJump()
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-state long jumps diverge")
	}
}

func TestSplitLanesDeterministic(t *testing.T) {
	la, lb := SplitLanes(99, DefaultLanes), SplitLanes(99, DefaultLanes)
	for i := range la {
		if la[i].Src.State() != lb[i].Src.State() {
			t.Fatalf("lane %d state differs between identical splits", i)
		}
	}
	// Distinct lanes are distinct streams.
	states := map[RNGState]bool{}
	for _, ln := range la {
		st := ln.Src.State()
		if states[st] {
			t.Fatal("two lanes share an RNG state")
		}
		states[st] = true
	}
}
