package mc

import (
	"math"
	"testing"
)

func digestLanes() []LaneAgg {
	return []LaneAgg{
		{Idx: 0, Quota: 100, Drawn: 100, Hits: 40, Sum: 40.25},
		{Idx: 1, Quota: 100, Drawn: 99, Hits: 38, Sum: 38.5},
		{Idx: 2, Quota: 99, Drawn: 99, Hits: 41, Sum: 41},
	}
}

// TestRangeDigestDeterministic: equal aggregates digest equally, and
// the digest is independent of slice order (the canonical encoding
// sorts by lane index).
func TestRangeDigestDeterministic(t *testing.T) {
	a, b := digestLanes(), digestLanes()
	if RangeDigest(a) != RangeDigest(b) {
		t.Fatal("equal aggregates produced different digests")
	}
	shuffled := []LaneAgg{b[2], b[0], b[1]}
	if RangeDigest(a) != RangeDigest(shuffled) {
		t.Error("digest depends on slice order; it must be canonical")
	}
	if RangeDigest(nil) != RangeDigest([]LaneAgg{}) {
		t.Error("nil and empty slices must digest equally")
	}
	if RangeDigest(nil) == RangeDigest(a) {
		t.Error("empty digest collides with a non-empty one")
	}
}

// TestRangeDigestSensitivity: perturbing any single field of any lane —
// including the float Sum by one ULP — must change the digest. This is
// the property the coordinator's audits rest on: a lying replica cannot
// alter an aggregate without altering the fingerprint.
func TestRangeDigestSensitivity(t *testing.T) {
	base := RangeDigest(digestLanes())
	mutations := []struct {
		name string
		mut  func([]LaneAgg)
	}{
		{"idx", func(l []LaneAgg) { l[1].Idx = 5 }},
		{"quota", func(l []LaneAgg) { l[0].Quota++ }},
		{"drawn", func(l []LaneAgg) { l[2].Drawn-- }},
		{"hits", func(l []LaneAgg) { l[1].Hits++ }},
		{"sum-ulp", func(l []LaneAgg) { l[0].Sum = math.Nextafter(l[0].Sum, math.Inf(1)) }},
		{"sum-sign", func(l []LaneAgg) { l[2].Sum = -l[2].Sum }},
		{"dropped-lane", func(l []LaneAgg) { l[2] = l[1] }},
	}
	for _, m := range mutations {
		lanes := digestLanes()
		m.mut(lanes)
		if RangeDigest(lanes) == base {
			t.Errorf("%s: mutated aggregates digest identically to the original", m.name)
		}
	}
	// A dropped trailing lane changes the digest too (length is encoded).
	if RangeDigest(digestLanes()[:2]) == base {
		t.Error("truncated aggregate set digests identically to the original")
	}
}
