package mc

import (
	"context"
	"math/rand"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Checkpoint plumbing for the sampling loops. Every estimator in this
// package is a loop drawing i.i.d. samples from a PRNG stream; its
// complete state at a sample boundary is the number of samples drawn,
// the running aggregate (sum or hit count), and the PRNG state. A
// LoopState captures exactly that, so a run resumed from a snapshot
// consumes the identical remainder of the stream an uninterrupted run
// would have — the resumed estimate is bit-identical, and every
// statistical guarantee derived for the uninterrupted run carries over
// unchanged.

// LoopState is the serializable state of one estimator loop at a
// sample boundary. Single-lane (sequential) runs write the legacy
// fields only; lane-split parallel runs additionally set LaneCount and
// Lanes (the versioned multi-lane schema), with the legacy fields
// carrying the cross-lane totals.
type LoopState struct {
	// Method names the estimator that produced the state ("hoeffding",
	// "padded", "rare-event", "karp-luby"); restoring into a different
	// estimator is rejected.
	Method string `json:"method"`
	// Drawn is the number of samples already drawn (total across lanes).
	Drawn int `json:"drawn"`
	// Hits is the success count of counting estimators (total across
	// lanes).
	Hits int `json:"hits,omitempty"`
	// Sum is the running sum of mean estimators (total across lanes).
	Sum float64 `json:"sum,omitempty"`
	// RNG is the PRNG state immediately after sample Drawn (lane 0's
	// state in a multi-lane snapshot; Lanes is authoritative there).
	RNG RNGState `json:"rng"`
	// LaneCount > 0 marks a multi-lane snapshot with one entry per lane
	// in Lanes. A snapshot resumes only into a run with the identical
	// lane count — the estimate is a function of it. Zero (legacy
	// single-lane snapshots) resumes only into sequential runs.
	LaneCount int `json:"lane_count,omitempty"`
	// Lanes holds the per-lane states of a multi-lane snapshot, in lane
	// index order.
	Lanes []LaneState `json:"lanes,omitempty"`
}

// LaneState is the serializable state of one lane at a sample boundary.
type LaneState struct {
	// Drawn is the number of samples this lane has drawn.
	Drawn int `json:"drawn"`
	// Hits / Sum are the lane's partial aggregates.
	Hits int     `json:"hits,omitempty"`
	Sum  float64 `json:"sum,omitempty"`
	// RNG is the lane's PRNG state immediately after its sample Drawn.
	RNG RNGState `json:"rng"`
}

// Ckpt wires periodic checkpointing into a sampling loop. The loop
// calls Save at sample boundaries: every Every samples, on context
// cancellation (so a drained or deadline-hit run remains resumable),
// and once more at completion. A Save error aborts the run — silent
// loss of durability is not an option in the robustness line. Resume,
// when non-nil, restores the loop to a previously saved state before
// the first draw.
type Ckpt struct {
	// Every is the number of samples between periodic snapshots
	// (<= 0 disables periodic saves; boundary saves still fire).
	Every int
	// Save persists one snapshot; an error aborts the estimator.
	Save func(LoopState) error
	// Resume, when non-nil, is the state to continue from.
	Resume *LoopState
}

// EstimateMeanCk is EstimateMean over a serializable source with
// checkpoint/resume plumbing. With ck == nil it is EstimateMean.
func EstimateMeanCk(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateMeanLoop(ctx, db, f, eps, delta, maxSamples, rand.New(src), src, ck)
}

// EstimateNuPaddedCk is EstimateNuPadded over a serializable source
// with checkpoint/resume plumbing. With ck == nil it is
// EstimateNuPadded.
func EstimateNuPaddedCk(ctx context.Context, db *unreliable.DB, pred func(*rel.Structure) (bool, error), xi, eps, delta float64, maxSamples int, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateNuPaddedLoop(ctx, db, pred, xi, eps, delta, maxSamples, rand.New(src), src, ck)
}

// EstimateMeanRareCk is EstimateMeanRare over a serializable source
// with checkpoint/resume plumbing. With ck == nil it is
// EstimateMeanRare.
func EstimateMeanRareCk(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateMeanRareLoop(ctx, db, f, eps, delta, maxSamples, rand.New(src), src, ck)
}
