package mc

import "math/rand"

// Drawer reproduces a lane's math/rand draw stream without the
// rand.Rand call overhead. The batched samplers draw tens of values
// per sample, so the interface dispatch and lock-free-ness checks
// inside rand.Rand are a measurable fraction of the hot loop; Drawer
// inlines the exact value derivations math/rand performs over a
// rand.Source64 — same draws, same order, same values — directly
// against the lane's Source.
//
// The contract is bit-identity with the methods the scalar samplers
// call on ln.Rng: Float64 with rand's retry-on-1.0 derivation from
// Int63, and the power-of-two Intn cases (Intn(2), Intn(256)) via the
// Int31 masking path. Equivalence is locked down by
// TestDrawerMatchesRand; if a Go release ever changed math/rand's
// derivations (it has not since Go 1), that test fails loudly.
//
// When a lane has no serializable Source (plain sequential estimators
// constructed from a caller-supplied *rand.Rand), Drawer degrades to
// calling the rand.Rand methods themselves — identical values either
// way, just without the bypass.
type Drawer struct {
	src *Source
	rng *rand.Rand
}

// NewDrawer builds the drawer of one lane.
func NewDrawer(ln *Lane) Drawer { return Drawer{src: ln.Src, rng: ln.Rng} }

// Float64 replicates rand.Rand.Float64: float64(Int63())/2^63 with
// the (astronomically rare) retry when the division rounds to 1.0.
func (d Drawer) Float64() float64 {
	if d.src == nil {
		return d.rng.Float64()
	}
	for {
		f := float64(int64(d.src.Uint64()>>1)) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// Intn2 replicates rand.Rand.Intn(2): the power-of-two Int31n path,
// Int31() & 1 with Int31 = int32(Int63() >> 32).
func (d Drawer) Intn2() int {
	if d.src == nil {
		return d.rng.Intn(2)
	}
	return int(int32(int64(d.src.Uint64()>>1)>>32) & 1)
}

// Byte replicates rand.Rand.Intn(256) the same way.
func (d Drawer) Byte() byte {
	if d.src == nil {
		return byte(d.rng.Intn(256))
	}
	return byte(int32(int64(d.src.Uint64()>>1)>>32) & 255)
}
