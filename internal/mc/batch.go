package mc

import "context"

// Batched lane execution. The compiled samplers evaluate up to 64
// worlds per pass (internal/vm bit-parallel programs), so their lane
// loop advances Drawn in batches instead of single steps. Everything
// observable is kept aligned with the scalar loop in
// sampleAssignedLanes: batches never cross a ctxPollStride boundary
// (the context is polled at exactly the same Drawn values), never
// cross a checkpoint boundary (periodic snapshots are published at
// exactly the same Drawn values), and never overrun the quota — so
// for the same RNG streams, a batched run's checkpoints and final
// aggregates are byte-identical to the scalar run's.

// batchSize returns how many samples the next batch may draw: at most
// 64, clamped to the remaining quota, to the next context-poll
// boundary, and to the next periodic-checkpoint boundary (every = 0
// disables the latter). Always ≥ 1 when drawn < quota.
func batchSize(drawn, quota, every, lastSave int) int {
	m := quota - drawn
	if m > 64 {
		m = 64
	}
	if r := ctxPollStride - drawn%ctxPollStride; m > r {
		m = r
	}
	if every > 0 {
		if r := every - (drawn - lastSave); m > r {
			m = r
		}
	}
	return m
}

// batchFull returns the live-worlds mask of an m-world batch.
func batchFull(m int) uint64 { return ^uint64(0) >> uint(64-m) }

// sampleLanesBatch is sampleLanes with a batched step: setup builds a
// per-lane batch step that draws exactly m samples' worth of RNG
// values (in the scalar per-sample order) and folds them into the
// lane aggregates.
func sampleLanesBatch(ctx context.Context, method string, lanes []*Lane, workers, total int, ck *Ckpt,
	setup func(ln *Lane) func(m int) error) error {
	AssignQuotas(lanes, total)
	return sampleAssignedLanesBatch(ctx, method, lanes, workers, ck, setup)
}

// sampleAssignedLanesBatch mirrors sampleAssignedLanes for batched
// steps; see the boundary-alignment contract above.
func sampleAssignedLanesBatch(ctx context.Context, method string, lanes []*Lane, workers int, ck *Ckpt,
	setup func(ln *Lane) func(m int) error) error {
	if err := RestoreLanes(method, lanes, ck); err != nil {
		return err
	}
	lc := NewLaneCkpt(method, lanes, ck)
	every := lc.PerLaneEvery(len(lanes))
	err := RunLanes(ctx, lanes, workers, func(ctx context.Context, ln *Lane) error {
		step := setup(ln)
		lastSave := ln.Drawn
		for ln.Drawn < ln.Quota {
			if ln.Drawn%ctxPollStride == 0 && ctx.Err() != nil {
				break
			}
			if every > 0 && ln.Drawn-lastSave >= every {
				lastSave = ln.Drawn
				if err := lc.Publish(ln, true); err != nil {
					return err
				}
			}
			m := batchSize(ln.Drawn, ln.Quota, every, lastSave)
			if err := step(m); err != nil {
				return err
			}
			ln.Drawn += m
		}
		return lc.Publish(ln, false)
	})
	if err != nil {
		return err
	}
	return lc.FinalSave()
}
