package mc

import (
	"math/rand"
	"testing"
)

// TestDrawerMatchesRand locks down the bit-identity contract between
// Drawer's inlined derivations and the math/rand methods the scalar
// samplers call. The two streams must agree value-for-value under an
// arbitrary interleaving of draw kinds, because the batched samplers
// interleave world draws with pick and padding draws per sample.
func TestDrawerMatchesRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1998, 1 << 40} {
		a := NewSource(seed)
		b := NewSource(seed)
		ref := rand.New(b)
		d := Drawer{src: a}
		mix := rand.New(NewSource(seed ^ 0x5eed))
		for i := 0; i < 20000; i++ {
			switch mix.Intn(3) {
			case 0:
				if got, want := d.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, got, want)
				}
			case 1:
				if got, want := d.Intn2(), ref.Intn(2); got != want {
					t.Fatalf("seed %d draw %d: Intn2 %v != %v", seed, i, got, want)
				}
			default:
				if got, want := d.Byte(), byte(ref.Intn(256)); got != want {
					t.Fatalf("seed %d draw %d: Byte %v != %v", seed, i, got, want)
				}
			}
			if a.State() != b.State() {
				t.Fatalf("seed %d draw %d: source states diverged", seed, i)
			}
		}
	}
}

// TestDrawerRandFallback checks the Source-less degradation: a Drawer
// over a bare *rand.Rand consumes the rand methods themselves.
func TestDrawerRandFallback(t *testing.T) {
	ref := rand.New(NewSource(3))
	got := rand.New(NewSource(3))
	d := Drawer{rng: got}
	for i := 0; i < 1000; i++ {
		if a, b := d.Float64(), ref.Float64(); a != b {
			t.Fatalf("draw %d: Float64 %v != %v", i, a, b)
		}
		if a, b := d.Intn2(), ref.Intn(2); a != b {
			t.Fatalf("draw %d: Intn2 %v != %v", i, a, b)
		}
		if a, b := d.Byte(), byte(ref.Intn(256)); a != b {
			t.Fatalf("draw %d: Byte %v != %v", i, a, b)
		}
	}
}
