package mc

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// This file implements a rare-event variance reduction for the
// absolute-error estimators: when every error probability is small, the
// world B equals the observed database A with probability close to 1,
// and any [0,1] statistic f with f(A) = 0 — such as the normalized
// Hamming distance |psi^A Δ psi^B|/n^k — is almost always sampled at 0.
// Conditioning on the event "at least one atom flipped" (whose
// probability Z is computable exactly in closed form) and estimating
// the conditional mean needs a factor Z² fewer samples for the same
// absolute error: E[f] = Z · E[f | ≥1 flip].

// FlipEventProb returns Z = 1 − Π (1 − mu_i), the probability that at
// least one uncertain atom flips (mu = 1 atoms make it 1).
func FlipEventProb(db *unreliable.DB) *big.Rat {
	one := big.NewRat(1, 1)
	none := new(big.Rat).Set(one)
	if len(db.SureFlips()) > 0 {
		return one
	}
	for _, atom := range db.UncertainAtoms() {
		none.Mul(none, new(big.Rat).Sub(one, db.ErrorProb(atom)))
	}
	return none.Sub(one, none)
}

// SampleWorldConditional draws a world conditioned on at least one
// uncertain atom flipping, with exactly the conditional distribution:
// the index of the first flipped atom i is drawn with probability
// mu_i·Π_{j<i}(1−mu_j)/Z, atoms before i are kept, atom i flipped, and
// atoms after i flip independently. Returns an error when the flip
// event has probability zero.
func SampleWorldConditional(db *unreliable.DB, rng *rand.Rand) (*rel.Structure, error) {
	atoms := db.UncertainAtoms()
	if len(db.SureFlips()) > 0 {
		// A deterministic flip exists: every world is in the event.
		return db.SampleWorld(rng), nil
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("mc: no uncertain atoms; the flip event has probability 0")
	}
	mus := make([]float64, len(atoms))
	for i, a := range atoms {
		mu, _ := db.ErrorProb(a).Float64()
		mus[i] = mu
	}
	// Draw the first flipped index from its exact distribution.
	zf, _ := FlipEventProb(db).Float64()
	if zf <= 0 {
		return nil, fmt.Errorf("mc: flip event has probability 0")
	}
	r := rng.Float64() * zf
	first := len(atoms) - 1
	prefixKeep := 1.0
	for i, mu := range mus {
		p := prefixKeep * mu
		if r < p {
			first = i
			break
		}
		r -= p
		prefixKeep *= 1 - mu
	}
	b := db.A.Clone()
	// Atoms before first: kept; atom first: flipped; after: Bernoulli.
	a := atoms[first]
	b.Rel(a.Rel).Toggle(a.Args)
	for i := first + 1; i < len(atoms); i++ {
		if rng.Float64() < mus[i] {
			ai := atoms[i]
			b.Rel(ai.Rel).Toggle(ai.Args)
		}
	}
	return b, nil
}

// EstimateMeanRare estimates E[f(B)] for a [0,1]-valued statistic with
// f(A) = 0 whenever no atom flips (true for the normalized Hamming
// distance), with absolute error eps and confidence 1−delta, by
// conditioning on the flip event: the estimate is Z·mean of t samples
// of f on conditional worlds, with t = ⌈Z²·ln(2/δ)/(2ε²)⌉ — a factor Z²
// below the unconditional Hoeffding size. Falls back to EstimateMean
// when Z ≥ 1 (a sure flip exists).
//
// Anytime semantics match EstimateMean: an early stop (ctx canceled or
// maxSamples reached, 0 = unlimited) yields the partial estimate with
// Partial = true and Eps = Z·ε_Hoeffding(t') widened to the realized
// sample count.
func EstimateMeanRare(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, rng *rand.Rand) (Estimate, error) {
	return estimateMeanRareLoop(ctx, db, f, eps, delta, maxSamples, rng, nil, nil)
}

// estimateMeanRareLoop is the sequential single-lane path behind
// EstimateMeanRare and EstimateMeanRareCk; src and ck are nil for
// uncheckpointed runs.
func estimateMeanRareLoop(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, rng *rand.Rand, src *Source, ck *Ckpt) (Estimate, error) {
	return estimateMeanRareLanes(ctx, db, f, eps, delta, maxSamples, []*Lane{{Src: src, Rng: rng}}, 1, ck)
}

// EstimateMeanRarePar is EstimateMeanRare over the lane-split parallel
// runtime; see EstimateMeanPar for the determinism contract.
func EstimateMeanRarePar(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, seed int64, par Par, ck *Ckpt) (Estimate, error) {
	lanes, workers := LanesFor(seed, par)
	return estimateMeanRareLanes(ctx, db, f, eps, delta, maxSamples, lanes, workers, ck)
}

// condSampler draws conditional worlds without per-sample allocation,
// consuming the RNG exactly like SampleWorldConditional: one Float64
// for the first-flip index, then one per later atom. The flip-event
// data (mus, zf) is shared read-only across lanes; the world buffer is
// per-lane.
type condSampler struct {
	mus []float64
	zf  float64
	buf *unreliable.WorldBuf
}

func (cs *condSampler) sample(rng *rand.Rand) *rel.Structure {
	r := rng.Float64() * cs.zf
	first := len(cs.mus) - 1
	prefixKeep := 1.0
	for i, mu := range cs.mus {
		p := prefixKeep * mu
		if r < p {
			first = i
			break
		}
		r -= p
		prefixKeep *= 1 - mu
	}
	cs.buf.Reset()
	cs.buf.ToggleUncertain(first)
	for i := first + 1; i < len(cs.mus); i++ {
		if rng.Float64() < cs.mus[i] {
			cs.buf.ToggleUncertain(i)
		}
	}
	return cs.buf.World()
}

// estimateMeanRareLanes is the shared lane-pool estimator behind
// EstimateMeanRare(Ck) and EstimateMeanRarePar.
func estimateMeanRareLanes(ctx context.Context, db *unreliable.DB, f func(*rel.Structure) (float64, error), eps, delta float64, maxSamples int, lanes []*Lane, workers int, ck *Ckpt) (Estimate, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return Estimate{}, fmt.Errorf("mc: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	z := FlipEventProb(db)
	zf, _ := z.Float64()
	if zf <= 0 {
		// Nothing can flip: the statistic is identically 0.
		return Estimate{Value: 0, Samples: 0, Eps: eps, Delta: delta, Method: "rare-event"}, nil
	}
	if zf >= 1 {
		// Z is a function of the database alone, so a job that fell back
		// here on its first run falls back identically on resume.
		return estimateMeanLanes(ctx, db, f, eps, delta, maxSamples, lanes, workers, ck)
	}
	// Conditional mean must be estimated to eps/Z absolute error.
	requested := int(math.Ceil(zf * zf * math.Log(2/delta) / (2 * eps * eps)))
	if requested < 1 {
		requested = 1
	}
	if requested > 1e9 {
		if maxSamples <= 0 {
			return Estimate{}, fmt.Errorf("mc: sample size %d exceeds 1e9; relax eps/delta", requested)
		}
		requested = maxSamples + 1
	}
	t, _ := clampSamples(requested, maxSamples)
	// zf < 1 here, so there are no sure flips and at least one uncertain
	// atom: the conditional sampler's preconditions hold.
	atoms := db.UncertainAtoms()
	mus := make([]float64, len(atoms))
	for i, a := range atoms {
		mus[i], _ = db.ErrorProb(a).Float64()
	}
	err := sampleLanes(ctx, "rare-event", lanes, workers, t, ck, func(ln *Lane) func() error {
		cs := &condSampler{mus: mus, zf: zf, buf: db.NewWorldBuf()}
		return func() error {
			b := cs.sample(ln.Rng)
			v, err := f(b)
			if err != nil {
				return fmt.Errorf("mc: evaluating sample %d: %w", ln.Drawn, err)
			}
			if v < 0 || v > 1 {
				return fmt.Errorf("mc: sample value %v outside [0,1]", v)
			}
			ln.Sum += v
			return nil
		}
	})
	if err != nil {
		return Estimate{}, err
	}
	drawn, _, sum := laneTotals(lanes)
	if drawn == 0 {
		return Estimate{}, fmt.Errorf("%w: %v", ErrNoSamples, ctx.Err())
	}
	est := Estimate{
		Value:     zf * sum / float64(drawn),
		Samples:   drawn,
		Requested: requested,
		Eps:       eps,
		Delta:     delta,
		Method:    "rare-event",
	}
	if drawn < requested {
		est.Partial = true
		// The conditional mean is known to ε_H(t') absolute error; scaling
		// by Z scales the error bound by Z as well.
		est.Eps = math.Min(1, zf*WidenedHoeffdingEps(delta, drawn))
	}
	return est, nil
}
