package mc

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"qrel/internal/rel"
	"qrel/internal/testutil"
)

// rangeAggs runs every range of the partition and pools the per-lane
// aggregates, as the cluster coordinator does.
func rangeAggs(t *testing.T, ranges []Range, seed int64, eps, delta float64, maxSamples, workers int) []LaneAgg {
	t.Helper()
	d := manyAtomDB()
	var aggs []LaneAgg
	for _, r := range ranges {
		rr, err := EstimateMeanRange(bg, d, statS, eps, delta, maxSamples, seed, r, workers, nil)
		if err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
		aggs = append(aggs, rr.Lanes...)
	}
	return aggs
}

// TestRangeMergeBitIdentical is the distribution contract: any
// contiguous partition of the lane split, run range by range and merged
// with MergeMean, equals the single-node parallel estimate bit for bit.
func TestRangeMergeBitIdentical(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed, eps, delta = 42, 0.05, 0.1

	base, err := EstimateMeanPar(bg, d, statS, eps, delta, 0, seed, Par{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 4, 8} {
		aggs := rangeAggs(t, SplitRanges(DefaultLanes, parts), seed, eps, delta, 0, 2)
		merged, err := MergeMean(aggs, DefaultLanes, eps, delta, 0)
		if err != nil {
			t.Fatalf("parts=%d: merge: %v", parts, err)
		}
		if merged != base {
			t.Errorf("parts=%d: merged %+v != single-node %+v", parts, merged, base)
		}
	}
}

// TestRangeMergePartialBudget checks the anytime path survives the
// split: under a sample budget the merged estimate carries the same
// Partial flag and widened eps as the single-node budgeted run.
func TestRangeMergePartialBudget(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed, eps, delta, budget = 7, 0.01, 0.1, 900

	base, err := EstimateMeanPar(bg, d, statS, eps, delta, budget, seed, Par{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Partial {
		t.Fatalf("budgeted baseline not Partial: %+v", base)
	}
	aggs := rangeAggs(t, SplitRanges(DefaultLanes, 3), seed, eps, delta, budget, 2)
	merged, err := MergeMean(aggs, DefaultLanes, eps, delta, budget)
	if err != nil {
		t.Fatal(err)
	}
	if merged != base {
		t.Errorf("merged %+v != single-node %+v", merged, base)
	}
}

// TestRangeWorkerInvariance: a range's aggregates depend only on
// (seed, range, total), never on the worker count driving it.
func TestRangeWorkerInvariance(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	r := Range{Lo: 2, Hi: 6, Total: DefaultLanes}
	base, err := EstimateMeanRange(bg, d, statS, 0.05, 0.1, 0, 11, r, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := EstimateMeanRange(bg, d, statS, 0.05, 0.1, 0, 11, r, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Lanes) != len(base.Lanes) {
			t.Fatalf("workers=%d: %d lanes, want %d", w, len(got.Lanes), len(base.Lanes))
		}
		for i := range got.Lanes {
			if got.Lanes[i] != base.Lanes[i] {
				t.Errorf("workers=%d lane %d: %+v != %+v", w, i, got.Lanes[i], base.Lanes[i])
			}
		}
	}
}

// TestSplitRanges checks the contiguous near-equal partition.
func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct{ total, parts int }{{8, 1}, {8, 2}, {8, 3}, {8, 8}, {8, 12}, {5, 2}} {
		ranges := SplitRanges(tc.total, tc.parts)
		wantParts := tc.parts
		if wantParts > tc.total {
			wantParts = tc.total
		}
		if len(ranges) != wantParts {
			t.Fatalf("SplitRanges(%d,%d): %d ranges, want %d", tc.total, tc.parts, len(ranges), wantParts)
		}
		next := 0
		for i, r := range ranges {
			if err := r.Validate(); err != nil {
				t.Fatalf("SplitRanges(%d,%d)[%d] = %v: %v", tc.total, tc.parts, i, r, err)
			}
			if r.Lo != next || r.Total != tc.total {
				t.Fatalf("SplitRanges(%d,%d)[%d] = %v, want contiguous from %d", tc.total, tc.parts, i, r, next)
			}
			next = r.Hi
		}
		if next != tc.total {
			t.Fatalf("SplitRanges(%d,%d) covers [0,%d), want [0,%d)", tc.total, tc.parts, next, tc.total)
		}
	}
}

// TestMergeMeanRejectsBadCoverage: a merge must refuse lane sets that
// lost, duplicated, or re-quota'd a lane — silent acceptance would turn
// a reassignment bug into a wrong answer.
func TestMergeMeanRejectsBadCoverage(t *testing.T) {
	aggs := rangeAggs(t, SplitRanges(DefaultLanes, 2), 3, 0.05, 0.1, 0, 2)

	missing := append([]LaneAgg(nil), aggs[:DefaultLanes-1]...)
	if _, err := MergeMean(missing, DefaultLanes, 0.05, 0.1, 0); err == nil {
		t.Error("merge accepted a missing lane")
	}
	dup := append([]LaneAgg(nil), aggs...)
	dup[DefaultLanes-1] = dup[0]
	if _, err := MergeMean(dup, DefaultLanes, 0.05, 0.1, 0); err == nil {
		t.Error("merge accepted a duplicated lane")
	}
	reQuota := append([]LaneAgg(nil), aggs...)
	reQuota[3].Quota++
	if _, err := MergeMean(reQuota, DefaultLanes, 0.05, 0.1, 0); err == nil {
		t.Error("merge accepted a quota-conservation violation")
	}
	overdrawn := append([]LaneAgg(nil), aggs...)
	overdrawn[2].Drawn = overdrawn[2].Quota + 1
	if _, err := MergeMean(overdrawn, DefaultLanes, 0.05, 0.1, 0); err == nil {
		t.Error("merge accepted an overdrawn lane")
	}
}

// TestRangeCheckpointScoping: a subrange's snapshot resumes only the
// same subrange (the method string embeds the range), and a killed
// range run resumed from its snapshot merges to the bit-identical
// full-run estimate.
func TestRangeCheckpointScoping(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed, eps, delta = 9, 0.02, 0.1
	left := Range{Lo: 0, Hi: 4, Total: DefaultLanes}
	right := Range{Lo: 4, Hi: 8, Total: DefaultLanes}

	base, err := EstimateMeanPar(bg, d, statS, eps, delta, 0, seed, Par{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the left range mid-flight, keeping its last snapshot.
	var snap *LoopState
	save := func(st LoopState) error { snap = &st; return nil }
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	var calls atomic.Int64
	killer := func(b *rel.Structure) (float64, error) {
		if calls.Add(1) == 1500 {
			cancel()
		}
		return statS(b)
	}
	killed, err := EstimateMeanRange(ctx, d, killer, eps, delta, 0, seed, left, 3, &Ckpt{Every: 128, Save: save})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint was saved")
	}
	if killed.Drawn() >= quotaOf(t, left, eps, delta) {
		t.Fatalf("killed range completed (%d samples); cancel fired too late", killed.Drawn())
	}
	if !strings.Contains(snap.Method, left.String()) {
		t.Fatalf("snapshot method %q does not embed the range %v", snap.Method, left)
	}

	// Another range must refuse the snapshot.
	if _, err := EstimateMeanRange(bg, d, statS, eps, delta, 0, seed, right, 3, &Ckpt{Resume: snap}); err == nil {
		t.Error("right range resumed from the left range's snapshot")
	}

	// The same range resumes to completion, and the merge with a fresh
	// right-range run equals the uninterrupted single-node estimate.
	resumed, err := EstimateMeanRange(bg, d, statS, eps, delta, 0, seed, left, 3, &Ckpt{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	rightRun, err := EstimateMeanRange(bg, d, statS, eps, delta, 0, seed, right, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeMean(append(append([]LaneAgg(nil), resumed.Lanes...), rightRun.Lanes...), DefaultLanes, eps, delta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged != base {
		t.Errorf("resume-then-merge %+v != uninterrupted %+v", merged, base)
	}
}

// TestSplitRangesProperty is the seeded property test over arbitrary
// (total, parts): the partition must tile [0, total) exactly — every
// lane in exactly one range, ranges contiguous and ordered — and must
// conserve the sample quota: the ranges' quotas sum to the full run's
// Hoeffding sample size, so no partition can silently add or drop
// samples.
func TestSplitRangesProperty(t *testing.T) {
	rng := NewRand(1234)
	for i := 0; i < 500; i++ {
		total := 1 + rng.Intn(64)
		parts := 1 + rng.Intn(80) // deliberately often > total
		ranges := SplitRanges(total, parts)

		wantParts := parts
		if wantParts > total {
			wantParts = total
		}
		if len(ranges) != wantParts {
			t.Fatalf("SplitRanges(%d,%d): %d ranges, want %d", total, parts, len(ranges), wantParts)
		}
		covered := make([]int, total)
		next := 0
		maxLen, minLen := 0, total+1
		for j, r := range ranges {
			if err := r.Validate(); err != nil {
				t.Fatalf("SplitRanges(%d,%d)[%d] = %v: %v", total, parts, j, r, err)
			}
			if r.Total != total || r.Lo != next {
				t.Fatalf("SplitRanges(%d,%d)[%d] = %v, want contiguous from %d over %d", total, parts, j, r, next, total)
			}
			for lane := r.Lo; lane < r.Hi; lane++ {
				covered[lane]++
			}
			if n := r.Len(); n > maxLen {
				maxLen = n
			}
			if n := r.Len(); n < minLen {
				minLen = n
			}
			next = r.Hi
		}
		if next != total {
			t.Fatalf("SplitRanges(%d,%d) covers [0,%d), want [0,%d)", total, parts, next, total)
		}
		for lane, n := range covered {
			if n != 1 {
				t.Fatalf("SplitRanges(%d,%d): lane %d covered %d times", total, parts, lane, n)
			}
		}
		if maxLen-minLen > 1 {
			t.Fatalf("SplitRanges(%d,%d): range lengths span [%d,%d], want near-equal", total, parts, minLen, maxLen)
		}

		// Quota conservation: the per-range quotas of a Hoeffding run sum
		// to exactly the single-node sample size.
		eps := 0.02 + 0.08*rng.Float64()
		full, err := HoeffdingSampleSize(eps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, r := range ranges {
			sum += quotaOf(t, r, eps, 0.1)
		}
		if sum != full {
			t.Fatalf("SplitRanges(%d,%d) quotas sum to %d, want %d (eps=%v)", total, parts, sum, full, eps)
		}
	}
}

// TestRangeResumeWorkerMatrix pins the recovery contract the cluster
// coordinator leans on: a range killed mid-run and resumed from its
// shipped snapshot merges to the bit-identical full estimate no matter
// how many workers drive the resumed run — the worker count schedules
// lanes, it never touches the sample streams.
func TestRangeResumeWorkerMatrix(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	d := manyAtomDB()
	const seed, eps, delta = 13, 0.02, 0.1
	left := Range{Lo: 0, Hi: 4, Total: DefaultLanes}
	right := Range{Lo: 4, Hi: 8, Total: DefaultLanes}

	base, err := EstimateMeanPar(bg, d, statS, eps, delta, 0, seed, Par{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rightRun, err := EstimateMeanRange(bg, d, statS, eps, delta, 0, seed, right, 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One mid-run snapshot of the left range, taken by a 2-worker run.
	var snap *LoopState
	save := func(st LoopState) error { snap = &st; return nil }
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	var calls atomic.Int64
	killer := func(b *rel.Structure) (float64, error) {
		if calls.Add(1) == 1500 {
			cancel()
		}
		return statS(b)
	}
	if _, err := EstimateMeanRange(ctx, d, killer, eps, delta, 0, seed, left, 2, &Ckpt{Every: 128, Save: save}); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint was saved")
	}

	for _, w := range []int{1, 2, 4, 7} {
		resumed, err := EstimateMeanRange(bg, d, statS, eps, delta, 0, seed, left, w, &Ckpt{Resume: snap})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		merged, err := MergeMean(append(append([]LaneAgg(nil), resumed.Lanes...), rightRun.Lanes...), DefaultLanes, eps, delta, 0)
		if err != nil {
			t.Fatalf("workers=%d: merge: %v", w, err)
		}
		if merged != base {
			t.Errorf("workers=%d: resume-then-merge %+v != uninterrupted %+v", w, merged, base)
		}
	}
}

// quotaOf computes the sample quota a range owns for the accuracy
// parameters.
func quotaOf(t *testing.T, r Range, eps, delta float64) int {
	t.Helper()
	total, err := HoeffdingSampleSize(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	q, rem := total/r.Total, total%r.Total
	n := 0
	for i := r.Lo; i < r.Hi; i++ {
		n += q
		if i < rem {
			n++
		}
	}
	return n
}
