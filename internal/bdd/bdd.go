// Package bdd implements reduced ordered binary decision diagrams with
// exact weighted model counting over big.Rat probabilities. It is the
// exact lineage-evaluation engine: the probability nu(psi”) of a
// grounded query (Theorem 5.4) is computed by compiling the lineage DNF
// to a BDD and performing one bottom-up weighted count. This is the
// standard exact baseline that the Karp–Luby FPTRAS is compared against
// in the E6/E10 experiments.
package bdd

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"qrel/internal/prop"
)

// Terminal node identifiers.
const (
	False = 0
	True  = 1
)

type node struct {
	v      int // variable index; numVars for terminals
	lo, hi int
}

// BDD is a multi-rooted reduced ordered BDD over a fixed number of
// variables with the natural variable order 0 < 1 < ... < numVars-1.
// The zero value is not usable; construct with New.
type BDD struct {
	numVars int
	nodes   []node
	unique  map[node]int
	cache   map[uint64]int // packed (op, a, b) -> node, see applyKey
	maxNode int

	// ctx, when set via WithContext, is polled every ctxCheckEvery node
	// allocations so runaway compilations stop soon after cancellation.
	ctx      context.Context
	ctxCount int
}

// ctxCheckEvery is the allocation stride between context polls during
// compilation: frequent enough that cancellation latency is microseconds,
// rare enough to stay off the profile.
const ctxCheckEvery = 1024

// Binary operation codes for the apply cache.
const (
	opAnd = iota
	opOr
	opNot
)

// applyKey packs an apply-cache entry (op, x, y) into one uint64: the
// op in the top two bits, the operands in 31 bits each. Node ids are
// bounded by the node budget, which the int32-sized cache has always
// capped below 2^31, so the packing is collision-free — and a uint64
// map key hashes without the memory loads of an array key.
func applyKey(op, x, y int) uint64 {
	return uint64(op)<<62 | uint64(uint32(x))<<31 | uint64(uint32(y))
}

// tableSizeHint pre-sizes the unique and apply tables from the node
// budget, clamped so a huge budget does not preallocate a huge empty
// map.
func tableSizeHint(maxNodes int) int {
	const clamp = 4096
	if maxNodes > clamp {
		return clamp
	}
	return maxNodes
}

// DefaultMaxNodes caps BDD growth; compilation fails with ErrTooLarge
// beyond it.
const DefaultMaxNodes = 1 << 22

// ErrTooLarge is wrapped in errors returned when a BDD exceeds its node
// budget.
var ErrTooLarge = fmt.Errorf("bdd: node budget exceeded")

// New creates an empty BDD manager over numVars variables with the
// given node budget (0 means DefaultMaxNodes).
func New(numVars, maxNodes int) *BDD {
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	hint := tableSizeHint(maxNodes)
	b := &BDD{
		numVars: numVars,
		unique:  make(map[node]int, hint),
		cache:   make(map[uint64]int, hint),
		maxNode: maxNodes,
		nodes:   make([]node, 0, hint),
	}
	b.nodes = append(b.nodes,
		node{v: numVars, lo: False, hi: False}, // False terminal
		node{v: numVars, lo: True, hi: True},   // True terminal
	)
	return b
}

// WithContext attaches a cancellation context to the manager: node
// allocation fails with the context's error once ctx is done. Returns
// the manager for chaining.
func (b *BDD) WithContext(ctx context.Context) *BDD {
	b.ctx = ctx
	return b
}

// NumVars returns the number of variables of the manager.
func (b *BDD) NumVars() int { return b.numVars }

// NumNodes returns the total number of allocated nodes (including the
// two terminals).
func (b *BDD) NumNodes() int { return len(b.nodes) }

// mk returns the canonical node (v, lo, hi), applying the reduction
// rules.
func (b *BDD) mk(v, lo, hi int) (int, error) {
	if lo == hi {
		return lo, nil
	}
	n := node{v: v, lo: lo, hi: hi}
	if id, ok := b.unique[n]; ok {
		return id, nil
	}
	if len(b.nodes) >= b.maxNode {
		return 0, fmt.Errorf("%w: %d nodes", ErrTooLarge, b.maxNode)
	}
	if b.ctx != nil {
		if b.ctxCount++; b.ctxCount >= ctxCheckEvery {
			b.ctxCount = 0
			if err := b.ctx.Err(); err != nil {
				return 0, fmt.Errorf("bdd: compilation canceled: %w", err)
			}
		}
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, n)
	b.unique[n] = id
	return id, nil
}

// Lit returns the BDD of a single literal.
func (b *BDD) Lit(l prop.Lit) (int, error) {
	if l.Var < 0 || l.Var >= b.numVars {
		return 0, fmt.Errorf("bdd: literal %v outside variable range [0,%d)", l, b.numVars)
	}
	if l.Neg {
		return b.mk(l.Var, True, False)
	}
	return b.mk(l.Var, False, True)
}

// Not returns the negation of the function rooted at a.
func (b *BDD) Not(a int) (int, error) {
	switch a {
	case False:
		return True, nil
	case True:
		return False, nil
	}
	key := applyKey(opNot, a, 0)
	if r, ok := b.cache[key]; ok {
		return r, nil
	}
	n := b.nodes[a]
	lo, err := b.Not(n.lo)
	if err != nil {
		return 0, err
	}
	hi, err := b.Not(n.hi)
	if err != nil {
		return 0, err
	}
	r, err := b.mk(n.v, lo, hi)
	if err != nil {
		return 0, err
	}
	b.cache[key] = r
	return r, nil
}

// And returns the conjunction of the functions rooted at x and y.
func (b *BDD) And(x, y int) (int, error) { return b.apply(opAnd, x, y) }

// Or returns the disjunction of the functions rooted at x and y.
func (b *BDD) Or(x, y int) (int, error) { return b.apply(opOr, x, y) }

func (b *BDD) apply(op, x, y int) (int, error) {
	switch op {
	case opAnd:
		if x == False || y == False {
			return False, nil
		}
		if x == True {
			return y, nil
		}
		if y == True {
			return x, nil
		}
		if x == y {
			return x, nil
		}
	case opOr:
		if x == True || y == True {
			return True, nil
		}
		if x == False {
			return y, nil
		}
		if y == False {
			return x, nil
		}
		if x == y {
			return x, nil
		}
	}
	if x > y {
		x, y = y, x // both ops are commutative
	}
	key := applyKey(op, x, y)
	if r, ok := b.cache[key]; ok {
		return r, nil
	}
	nx, ny := b.nodes[x], b.nodes[y]
	v := nx.v
	if ny.v < v {
		v = ny.v
	}
	xl, xh := x, x
	if nx.v == v {
		xl, xh = nx.lo, nx.hi
	}
	yl, yh := y, y
	if ny.v == v {
		yl, yh = ny.lo, ny.hi
	}
	lo, err := b.apply(op, xl, yl)
	if err != nil {
		return 0, err
	}
	hi, err := b.apply(op, xh, yh)
	if err != nil {
		return 0, err
	}
	r, err := b.mk(v, lo, hi)
	if err != nil {
		return 0, err
	}
	b.cache[key] = r
	return r, nil
}

// FromTerm compiles a conjunctive term into a BDD chain.
func (b *BDD) FromTerm(t prop.Term) (int, error) {
	nt, sat := t.Normalize()
	if !sat {
		return False, nil
	}
	// Build bottom-up: literals sorted ascending, chain from the last.
	sort.Slice(nt, func(i, j int) bool { return nt[i].Var < nt[j].Var })
	root := True
	for i := len(nt) - 1; i >= 0; i-- {
		l := nt[i]
		if l.Var < 0 || l.Var >= b.numVars {
			return 0, fmt.Errorf("bdd: literal %v outside variable range [0,%d)", l, b.numVars)
		}
		var err error
		if l.Neg {
			root, err = b.mk(l.Var, root, False)
		} else {
			root, err = b.mk(l.Var, False, root)
		}
		if err != nil {
			return 0, err
		}
	}
	return root, nil
}

// FromDNF compiles a DNF formula into a BDD by OR-ing its term chains.
func (b *BDD) FromDNF(d prop.DNF) (int, error) {
	if d.NumVars > b.numVars {
		return 0, fmt.Errorf("bdd: DNF has %d variables, manager %d", d.NumVars, b.numVars)
	}
	root := False
	for _, t := range d.Terms {
		tn, err := b.FromTerm(t)
		if err != nil {
			return 0, err
		}
		root, err = b.Or(root, tn)
		if err != nil {
			return 0, err
		}
	}
	return root, nil
}

// FromFormula compiles an arbitrary propositional formula.
func (b *BDD) FromFormula(f prop.Formula) (int, error) {
	switch g := f.(type) {
	case prop.FTrue:
		return True, nil
	case prop.FFalse:
		return False, nil
	case prop.FVar:
		return b.Lit(prop.Pos(int(g)))
	case prop.FNot:
		inner, err := b.FromFormula(g.F)
		if err != nil {
			return 0, err
		}
		return b.Not(inner)
	case prop.FAnd:
		root := True
		for _, h := range g {
			hn, err := b.FromFormula(h)
			if err != nil {
				return 0, err
			}
			root, err = b.And(root, hn)
			if err != nil {
				return 0, err
			}
		}
		return root, nil
	case prop.FOr:
		root := False
		for _, h := range g {
			hn, err := b.FromFormula(h)
			if err != nil {
				return 0, err
			}
			root, err = b.Or(root, hn)
			if err != nil {
				return 0, err
			}
		}
		return root, nil
	default:
		return 0, fmt.Errorf("bdd: unknown formula node %T", f)
	}
}

// Eval evaluates the function rooted at n under the assignment.
func (b *BDD) Eval(n int, a []bool) bool {
	for n > True {
		nd := b.nodes[n]
		if a[nd.v] {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

// Size returns the number of nodes reachable from n (including
// terminals).
func (b *BDD) Size(n int) int {
	// Node ids are dense indices into b.nodes, so a flat visited slice
	// replaces the set: one allocation, O(1) membership.
	seen := make([]bool, len(b.nodes))
	count := 0
	var visit func(int)
	visit = func(m int) {
		if seen[m] {
			return
		}
		seen[m] = true
		count++
		if m > True {
			visit(b.nodes[m].lo)
			visit(b.nodes[m].hi)
		}
	}
	visit(n)
	return count
}

// Prob computes the exact probability that the function rooted at n is
// true when variable v is independently true with probability p[v].
// One bottom-up pass, linear in the BDD size.
func (b *BDD) Prob(n int, p prop.ProbAssignment) (*big.Rat, error) {
	if err := p.Validate(b.numVars); err != nil {
		return nil, err
	}
	one := big.NewRat(1, 1)
	// Dense node ids make a slice the natural memo; nil marks unvisited.
	memo := make([]*big.Rat, len(b.nodes))
	memo[False] = new(big.Rat)
	memo[True] = big.NewRat(1, 1)
	var visit func(int) *big.Rat
	visit = func(m int) *big.Rat {
		if r := memo[m]; r != nil {
			return r
		}
		nd := b.nodes[m]
		lo := visit(nd.lo)
		hi := visit(nd.hi)
		// P = (1 - p_v)·lo + p_v·hi. Variables skipped between levels
		// contribute a factor (p + (1-p)) = 1 and need no correction.
		r := new(big.Rat).Mul(new(big.Rat).Sub(one, p[nd.v]), lo)
		r.Add(r, new(big.Rat).Mul(p[nd.v], hi))
		memo[m] = r
		return r
	}
	return visit(n), nil
}

// Count returns the number of satisfying assignments of the function
// rooted at n over all numVars variables.
func (b *BDD) Count(n int) *big.Int {
	// f(m) = #models over variables [var(m), numVars).
	// Dense node ids make a slice the natural memo; nil marks unvisited.
	memo := make([]*big.Int, len(b.nodes))
	var visit func(int) *big.Int
	visit = func(m int) *big.Int {
		if r := memo[m]; r != nil {
			return r
		}
		nd := b.nodes[m]
		if m <= True {
			r := big.NewInt(int64(m)) // False: 0 models, True: 1 (empty assignment)
			memo[m] = r
			return r
		}
		lo := visit(nd.lo)
		hi := visit(nd.hi)
		gapLo := uint(b.nodes[nd.lo].v - nd.v - 1)
		gapHi := uint(b.nodes[nd.hi].v - nd.v - 1)
		r := new(big.Int).Lsh(lo, gapLo)
		r.Add(r, new(big.Int).Lsh(hi, gapHi))
		memo[m] = r
		return r
	}
	root := visit(n)
	// Variables above the root are free.
	return new(big.Int).Lsh(root, uint(b.nodes[n].v))
}
