package bdd

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/prop"
)

// BenchmarkBDDApply measures DNF compilation — the apply-heavy hot path
// of the exact lineage engine: every term chain is OR-ed into the root,
// exercising mk, the unique table, and the packed apply cache.
func BenchmarkBDDApply(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := randDNF(rng, 40, 120, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(d.NumVars, 0)
		if _, err := m.FromDNF(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBDDProb measures the bottom-up weighted count over a compiled
// lineage BDD — the slice-indexed memo path.
func BenchmarkBDDProb(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := randDNF(rng, 40, 120, 4)
	m := New(d.NumVars, 0)
	root, err := m.FromDNF(d)
	if err != nil {
		b.Fatal(err)
	}
	p := make(prop.ProbAssignment, d.NumVars)
	for i := range p {
		p[i] = new(big.Rat).SetFrac64(int64(1+rng.Intn(9)), 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Prob(root, p); err != nil {
			b.Fatal(err)
		}
	}
}
