package bdd

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/prop"
)

func TestOrderValidate(t *testing.T) {
	if err := (Order{0, 1, 2}).Validate(3); err != nil {
		t.Error(err)
	}
	bad := []Order{{0, 1}, {0, 0, 1}, {0, 1, 3}, {-1, 0, 1}}
	for _, o := range bad {
		if err := o.Validate(3); err == nil {
			t.Errorf("order %v accepted", o)
		}
	}
}

func TestOrdersArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		d := randDNF(rng, 4+rng.Intn(8), 1+rng.Intn(8), 3)
		for _, o := range []Order{NaturalOrder(d.NumVars), FrequencyOrder(d), FirstOccurrenceOrder(d)} {
			if err := o.Validate(d.NumVars); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

func TestOrderPreservesCountAndProb(t *testing.T) {
	// Property: any order yields the same model count and probability.
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 40; iter++ {
		nv := 4 + rng.Intn(6)
		d := randDNF(rng, nv, 1+rng.Intn(6), 3)
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			p[i] = big.NewRat(int64(1+rng.Intn(9)), 10)
		}
		// Reference under the natural order.
		mgr0 := New(nv, 0)
		root0, err := mgr0.FromDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		wantCount := mgr0.Count(root0)
		wantProb, err := mgr0.Prob(root0, p)
		if err != nil {
			t.Fatal(err)
		}
		// Random permutation.
		o := Order(rng.Perm(nv))
		mgr, root, _, err := CompileOrdered(d, o, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := mgr.Count(root); got.Cmp(wantCount) != 0 {
			t.Fatalf("iter %d: count %v under order %v, want %v", iter, got, o, wantCount)
		}
		pp, err := o.PermuteProbs(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mgr.Prob(root, pp)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(wantProb) != 0 {
			t.Fatalf("iter %d: prob %v under order %v, want %v", iter, got, o, wantProb)
		}
	}
}

func TestFrequencyOrderShrinksSharedVariable(t *testing.T) {
	// x_{n-1} occurs in every term; placing it at the root (frequency
	// order) should not be larger than the natural order that buries it.
	const n = 12
	d := prop.DNF{NumVars: n}
	for i := 0; i+1 < n; i += 2 {
		d.Terms = append(d.Terms, prop.Term{prop.Pos(i), prop.Pos(n - 1)})
	}
	_, _, sizeNat, err := CompileOrdered(d, NaturalOrder(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sizeFreq, err := CompileOrdered(d, FrequencyOrder(d), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sizeFreq > sizeNat {
		t.Errorf("frequency order size %d > natural %d", sizeFreq, sizeNat)
	}
}

func TestBestStaticOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDNF(rng, 10, 8, 3)
	mgr, root, o, err := BestStaticOrder(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(d.NumVars); err != nil {
		t.Fatal(err)
	}
	// Count must match the natural-order reference.
	ref := New(d.NumVars, 0)
	refRoot, _ := ref.FromDNF(d)
	if mgr.Count(root).Cmp(ref.Count(refRoot)) != 0 {
		t.Error("best-order BDD counts differently")
	}
	// Best size is minimal among the three candidates.
	for _, cand := range []Order{NaturalOrder(d.NumVars), FrequencyOrder(d), FirstOccurrenceOrder(d)} {
		_, _, size, err := CompileOrdered(d, cand, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mgr.Size(root) > size {
			t.Errorf("best order size %d beaten by %d", mgr.Size(root), size)
		}
	}
}

func TestCompileOrderedErrors(t *testing.T) {
	d := prop.MustDNF(3, prop.Term{prop.Pos(0)})
	if _, _, _, err := CompileOrdered(d, Order{0, 1}, 0); err == nil {
		t.Error("short order accepted")
	}
	if _, err := (Order{1, 0}).PermuteProbs(prop.ProbAssignment{big.NewRat(1, 2)}); err == nil {
		t.Error("mismatched probability length accepted")
	}
}
