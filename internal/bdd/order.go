package bdd

import (
	"fmt"
	"sort"

	"qrel/internal/prop"
)

// This file provides static variable-ordering heuristics. A BDD's size
// is notoriously order-sensitive; the manager itself always uses the
// natural order 0 < 1 < ..., so reordering is expressed by renaming the
// formula's variables before compilation and permuting the probability
// assignment accordingly.

// Order is a variable order: Order[level] is the original variable
// placed at that level (level 0 is the BDD root).
type Order []int

// Validate checks that the order is a permutation of 0..n-1.
func (o Order) Validate(numVars int) error {
	if len(o) != numVars {
		return fmt.Errorf("bdd: order has %d entries, formula %d variables", len(o), numVars)
	}
	seen := make([]bool, numVars)
	for _, v := range o {
		if v < 0 || v >= numVars || seen[v] {
			return fmt.Errorf("bdd: order %v is not a permutation of 0..%d", o, numVars-1)
		}
		seen[v] = true
	}
	return nil
}

// NaturalOrder returns the identity order.
func NaturalOrder(numVars int) Order {
	o := make(Order, numVars)
	for i := range o {
		o[i] = i
	}
	return o
}

// FrequencyOrder orders variables by decreasing occurrence count in the
// DNF (ties by index): frequently-shared variables near the root tend
// to merge more subfunctions.
func FrequencyOrder(d prop.DNF) Order {
	count := make([]int, d.NumVars)
	for _, t := range d.Terms {
		for _, l := range t {
			count[l.Var]++
		}
	}
	o := NaturalOrder(d.NumVars)
	sort.SliceStable(o, func(i, j int) bool { return count[o[i]] > count[o[j]] })
	return o
}

// FirstOccurrenceOrder orders variables by their first appearance in
// the term list, keeping together variables that co-occur in early
// terms (a cheap locality heuristic for lineage DNFs, whose terms
// enumerate witnesses tuple by tuple).
func FirstOccurrenceOrder(d prop.DNF) Order {
	seen := make([]bool, d.NumVars)
	o := make(Order, 0, d.NumVars)
	for _, t := range d.Terms {
		for _, l := range t {
			if !seen[l.Var] {
				seen[l.Var] = true
				o = append(o, l.Var)
			}
		}
	}
	for v := 0; v < d.NumVars; v++ {
		if !seen[v] {
			o = append(o, v)
		}
	}
	return o
}

// Rename returns the DNF with each original variable v replaced by its
// level under the order, so that compiling the result with the natural
// manager order realizes the requested order.
func (o Order) Rename(d prop.DNF) (prop.DNF, error) {
	if err := o.Validate(d.NumVars); err != nil {
		return prop.DNF{}, err
	}
	level := make([]int, d.NumVars)
	for lv, v := range o {
		level[v] = lv
	}
	out := prop.DNF{NumVars: d.NumVars, Terms: make([]prop.Term, len(d.Terms))}
	for i, t := range d.Terms {
		nt := make(prop.Term, len(t))
		for j, l := range t {
			nt[j] = prop.Lit{Var: level[l.Var], Neg: l.Neg}
		}
		out.Terms[i] = nt
	}
	return out, nil
}

// PermuteProbs returns the probability assignment matching a renamed
// formula: entry at a variable's level holds that variable's
// probability.
func (o Order) PermuteProbs(p prop.ProbAssignment) (prop.ProbAssignment, error) {
	if err := o.Validate(len(p)); err != nil {
		return nil, err
	}
	out := make(prop.ProbAssignment, len(p))
	for lv, v := range o {
		out[lv] = p[v]
	}
	return out, nil
}

// CompileOrdered compiles the DNF under the given order into a fresh
// manager and returns the manager, root and reachable size.
func CompileOrdered(d prop.DNF, o Order, maxNodes int) (*BDD, int, int, error) {
	renamed, err := o.Rename(d)
	if err != nil {
		return nil, 0, 0, err
	}
	mgr := New(d.NumVars, maxNodes)
	root, err := mgr.FromDNF(renamed)
	if err != nil {
		return nil, 0, 0, err
	}
	return mgr, root, mgr.Size(root), nil
}

// BestStaticOrder compiles the DNF under the natural, frequency and
// first-occurrence orders and returns whichever yields the smallest
// BDD. All three are cheap; the win on structured lineages can be
// orders of magnitude (experiment E10).
func BestStaticOrder(d prop.DNF, maxNodes int) (*BDD, int, Order, error) {
	type cand struct {
		name string
		o    Order
	}
	cands := []cand{
		{"natural", NaturalOrder(d.NumVars)},
		{"frequency", FrequencyOrder(d)},
		{"first-occurrence", FirstOccurrenceOrder(d)},
	}
	var (
		bestMgr  *BDD
		bestRoot int
		bestOrd  Order
		bestSize = -1
	)
	var firstErr error
	for _, c := range cands {
		mgr, root, size, err := CompileOrdered(d, c.o, maxNodes)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if bestSize < 0 || size < bestSize {
			bestMgr, bestRoot, bestOrd, bestSize = mgr, root, c.o, size
		}
	}
	if bestSize < 0 {
		return nil, 0, nil, firstErr
	}
	return bestMgr, bestRoot, bestOrd, nil
}
