package bdd

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"qrel/internal/prop"
)

// TestQuickBDDEquivalence checks, for arbitrary seeds, that the BDD of
// a random DNF evaluates identically to the DNF on arbitrary
// assignments, and that the model count matches brute force.
func TestQuickBDDEquivalence(t *testing.T) {
	f := func(seed int64, probeRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(8)
		d := randDNF(rng, nv, 1+rng.Intn(6), 3)
		mgr := New(nv, 0)
		root, err := mgr.FromDNF(d)
		if err != nil {
			return false
		}
		// Random probe assignment.
		a := make([]bool, nv)
		for i := range a {
			a[i] = probeRaw&(1<<uint(i%16)) != 0
		}
		if mgr.Eval(root, a) != d.Eval(a) {
			return false
		}
		want, err := d.CountBruteForce(12)
		if err != nil {
			return false
		}
		return mgr.Count(root).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegationInvolution checks Not(Not(x)) == x node identity and
// Prob(f) + Prob(!f) = 1 for random formulas and probabilities.
func TestQuickNegationInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(6)
		d := randDNF(rng, nv, 1+rng.Intn(5), 3)
		mgr := New(nv, 0)
		root, err := mgr.FromDNF(d)
		if err != nil {
			return false
		}
		neg, err := mgr.Not(root)
		if err != nil {
			return false
		}
		back, err := mgr.Not(neg)
		if err != nil || back != root {
			return false
		}
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			p[i] = big.NewRat(int64(rng.Intn(11)), 10)
		}
		pf, err1 := mgr.Prob(root, p)
		pn, err2 := mgr.Prob(neg, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return new(big.Rat).Add(pf, pn).Cmp(big.NewRat(1, 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan checks And/Or duality through Not on random pairs.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 4 + rng.Intn(4)
		d1 := randDNF(rng, nv, 1+rng.Intn(4), 3)
		d2 := randDNF(rng, nv, 1+rng.Intn(4), 3)
		mgr := New(nv, 0)
		a, err1 := mgr.FromDNF(d1)
		b, err2 := mgr.FromDNF(d2)
		if err1 != nil || err2 != nil {
			return false
		}
		ab, err := mgr.And(a, b)
		if err != nil {
			return false
		}
		notAB, err := mgr.Not(ab)
		if err != nil {
			return false
		}
		na, err1 := mgr.Not(a)
		nb, err2 := mgr.Not(b)
		if err1 != nil || err2 != nil {
			return false
		}
		orN, err := mgr.Or(na, nb)
		if err != nil {
			return false
		}
		// Canonicity: De Morgan duals are the identical node.
		return notAB == orN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
