package bdd

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/prop"
)

func randDNF(rng *rand.Rand, numVars, numTerms, width int) prop.DNF {
	d := prop.DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		w := 1 + rng.Intn(width)
		t := make(prop.Term, 0, w)
		for j := 0; j < w; j++ {
			t = append(t, prop.Lit{Var: rng.Intn(numVars), Neg: rng.Intn(2) == 0})
		}
		d.Terms = append(d.Terms, t)
	}
	return d
}

func TestTerminalsAndLiterals(t *testing.T) {
	b := New(2, 0)
	if b.NumNodes() != 2 {
		t.Fatalf("fresh manager has %d nodes", b.NumNodes())
	}
	x0, err := b.Lit(prop.Pos(0))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Eval(x0, []bool{true, false}) || b.Eval(x0, []bool{false, false}) {
		t.Error("positive literal wrong")
	}
	nx0, _ := b.Lit(prop.Negd(0))
	if b.Eval(nx0, []bool{true, false}) || !b.Eval(nx0, []bool{false, false}) {
		t.Error("negative literal wrong")
	}
	if _, err := b.Lit(prop.Pos(5)); err == nil {
		t.Error("out-of-range literal accepted")
	}
	// Canonicity: same literal twice yields same node.
	x0b, _ := b.Lit(prop.Pos(0))
	if x0 != x0b {
		t.Error("unique table failed")
	}
}

func TestBooleanOps(t *testing.T) {
	b := New(3, 0)
	x0, _ := b.Lit(prop.Pos(0))
	x1, _ := b.Lit(prop.Pos(1))
	and, err := b.And(x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	or, _ := b.Or(x0, x1)
	not, _ := b.Not(x0)
	for m := 0; m < 8; m++ {
		a := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		if b.Eval(and, a) != (a[0] && a[1]) {
			t.Errorf("And wrong at %v", a)
		}
		if b.Eval(or, a) != (a[0] || a[1]) {
			t.Errorf("Or wrong at %v", a)
		}
		if b.Eval(not, a) != !a[0] {
			t.Errorf("Not wrong at %v", a)
		}
	}
	// Identities.
	if r, _ := b.And(x0, True); r != x0 {
		t.Error("x & true != x")
	}
	if r, _ := b.Or(x0, False); r != x0 {
		t.Error("x | false != x")
	}
	if r, _ := b.And(x0, False); r != False {
		t.Error("x & false != false")
	}
	nn, _ := b.Not(not)
	if nn != x0 {
		t.Error("double negation not canonical")
	}
}

func TestFromDNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 80; iter++ {
		nv := 3 + rng.Intn(7)
		d := randDNF(rng, nv, 1+rng.Intn(8), 4)
		b := New(nv, 0)
		root, err := b.FromDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 1<<nv; m++ {
			a := make([]bool, nv)
			for i := range a {
				a[i] = m&(1<<i) != 0
			}
			if b.Eval(root, a) != d.Eval(a) {
				t.Fatalf("iter %d: BDD and DNF disagree at %v for %v", iter, a, d)
			}
		}
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 60; iter++ {
		nv := 3 + rng.Intn(8)
		d := randDNF(rng, nv, 1+rng.Intn(8), 4)
		b := New(nv, 0)
		root, err := b.FromDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.CountBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Count(root); got.Cmp(want) != 0 {
			t.Fatalf("iter %d: Count = %v, want %v for %v", iter, got, want, d)
		}
	}
}

func TestCountEdgeCases(t *testing.T) {
	b := New(5, 0)
	if got := b.Count(True); got.Int64() != 32 {
		t.Errorf("Count(True) = %v, want 32", got)
	}
	if got := b.Count(False); got.Int64() != 0 {
		t.Errorf("Count(False) = %v, want 0", got)
	}
	// A single variable at level 3: half the assignments.
	x3, _ := b.Lit(prop.Pos(3))
	if got := b.Count(x3); got.Int64() != 16 {
		t.Errorf("Count(x3) = %v, want 16", got)
	}
}

func TestProbMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 60; iter++ {
		nv := 3 + rng.Intn(6)
		d := randDNF(rng, nv, 1+rng.Intn(6), 3)
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			p[i] = big.NewRat(int64(rng.Intn(11)), 10)
		}
		b := New(nv, 0)
		root, err := b.FromDNF(d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.ProbBruteForce(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Prob(root, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("iter %d: Prob = %v, want %v for %v", iter, got, want, d)
		}
	}
}

func TestProbValidation(t *testing.T) {
	b := New(2, 0)
	x0, _ := b.Lit(prop.Pos(0))
	if _, err := b.Prob(x0, prop.ProbAssignment{big.NewRat(1, 2)}); err == nil {
		t.Error("short probability assignment accepted")
	}
}

func TestFromFormula(t *testing.T) {
	// (x0 & !x1) | !(x2 | x0)
	f := prop.FOr{
		prop.FAnd{prop.FVar(0), prop.FNot{F: prop.FVar(1)}},
		prop.FNot{F: prop.FOr{prop.FVar(2), prop.FVar(0)}},
	}
	b := New(3, 0)
	root, err := b.FromFormula(f)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		a := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		if b.Eval(root, a) != f.Eval(a) {
			t.Errorf("FromFormula wrong at %v", a)
		}
	}
	tn, _ := b.FromFormula(prop.FTrue{})
	fn, _ := b.FromFormula(prop.FFalse{})
	if tn != True || fn != False {
		t.Error("constants wrong")
	}
}

func TestContradictoryTerm(t *testing.T) {
	b := New(2, 0)
	n, err := b.FromTerm(prop.Term{prop.Pos(0), prop.Negd(0)})
	if err != nil || n != False {
		t.Errorf("contradictory term = %d, %v; want False", n, err)
	}
	// Empty term is True.
	n, err = b.FromTerm(prop.Term{})
	if err != nil || n != True {
		t.Errorf("empty term = %d, %v; want True", n, err)
	}
}

func TestNodeBudget(t *testing.T) {
	// Force growth beyond a tiny budget.
	b := New(20, 8)
	d := randDNF(rand.New(rand.NewSource(45)), 20, 10, 4)
	_, err := b.FromDNF(d)
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}

func TestSize(t *testing.T) {
	b := New(3, 0)
	x0, _ := b.Lit(prop.Pos(0))
	if got := b.Size(x0); got != 3 { // node + two terminals
		t.Errorf("Size(lit) = %d, want 3", got)
	}
	if got := b.Size(True); got != 1 {
		t.Errorf("Size(True) = %d, want 1", got)
	}
}

func TestCanonicityProperty(t *testing.T) {
	// Equivalent formulas compile to the identical root node.
	b := New(4, 0)
	d1 := prop.MustDNF(4, prop.Term{prop.Pos(0), prop.Pos(1)}, prop.Term{prop.Pos(0), prop.Negd(1)})
	d2 := prop.MustDNF(4, prop.Term{prop.Pos(0)})
	r1, _ := b.FromDNF(d1)
	r2, _ := b.FromDNF(d2)
	if r1 != r2 {
		t.Error("equivalent formulas got different roots (canonicity broken)")
	}
}
