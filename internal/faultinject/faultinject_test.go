package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit(SiteSafePlan); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("boom")
	Enable(SiteLineageBDD, Fault{Err: want})
	if err := Hit(SiteLineageBDD); !errors.Is(err, want) {
		t.Fatalf("Hit = %v, want %v", err, want)
	}
	// Other sites are unaffected.
	if err := Hit(SiteLineageKL); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
	Disable(SiteLineageBDD)
	if err := Hit(SiteLineageBDD); err != nil {
		t.Fatalf("disabled site returned %v", err)
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("transient")
	Enable(SiteAnswerSet, Fault{Err: want, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Hit(SiteAnswerSet); !errors.Is(err, want) {
			t.Fatalf("firing %d: Hit = %v, want %v", i, err, want)
		}
	}
	if err := Hit(SiteAnswerSet); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteWorldEnum, Fault{Panic: "forced"})
	defer func() {
		if recover() == nil {
			t.Fatalf("Hit did not panic")
		}
	}()
	_ = Hit(SiteWorldEnum)
}

func TestDelayInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteMCDirect, Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit(SiteMCDirect); err != nil {
		t.Fatalf("Hit = %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", d)
	}
}

func TestConcurrentHits(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("concurrent")
	Enable(SiteWorldWorker, Fault{Err: want, Times: 64})
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Hit(SiteWorldWorker) != nil {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 64 {
		t.Fatalf("fault fired %d times, want exactly 64", total)
	}
}
