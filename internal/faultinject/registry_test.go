package faultinject

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestSitesCoversEveryConstant parses faultinject.go and checks that
// every Site* constant declared there appears in the allSites registry
// (and vice versa) — the acceptance contract that a new injection site
// cannot be added without becoming schedulable by the chaos campaign.
func TestSitesCoversEveryConstant(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "faultinject.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing faultinject.go: %v", err)
	}
	declared := map[string]string{} // const name -> value
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Site") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				declared[name.Name] = strings.Trim(lit.Value, `"`)
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Site* constants; the parse is broken")
	}
	registered := map[string]bool{}
	for _, s := range Sites() {
		registered[s] = true
	}
	for name, value := range declared {
		if !registered[value] {
			t.Errorf("constant %s = %q is missing from the allSites registry (Sites())", name, value)
		}
	}
	values := map[string]bool{}
	for _, v := range declared {
		values[v] = true
	}
	for _, s := range Sites() {
		if !values[s] {
			t.Errorf("Sites() lists %q, which matches no Site* constant", s)
		}
	}
	if got, want := len(Sites()), len(declared); got != want {
		t.Errorf("Sites() has %d entries, %d Site* constants declared", got, want)
	}
}

func TestKnownSite(t *testing.T) {
	if !KnownSite(SiteQFree) {
		t.Error("KnownSite(SiteQFree) = false")
	}
	if KnownSite("engine/no-such-site") {
		t.Error("KnownSite accepted an unregistered site")
	}
}

// TestProbFaultDeterministic: two faults armed with the same (Prob,
// Seed) fire on the identical subsequence of Hits, and the firing rate
// tracks Prob.
func TestProbFaultDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("prob")
	const n = 2000
	run := func(seed int64) []bool {
		Enable(SiteQFree, Fault{Err: want, Prob: 0.3, Seed: seed})
		defer Disable(SiteQFree)
		out := make([]bool, n)
		for i := range out {
			out[i] = Hit(SiteQFree) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: run A fired=%v, run B fired=%v (same seed must fire identically)", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	if fired < n*2/10 || fired > n*4/10 {
		t.Errorf("Prob=0.3 fired %d/%d times; expected roughly 30%%", fired, n)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced the identical firing sequence")
	}
}

// TestProbTimesCountsFires: with Prob set, Times bounds fires, not
// hits.
func TestProbTimesCountsFires(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("bounded")
	Enable(SiteAnswerSet, Fault{Err: want, Prob: 0.5, Seed: 3, Times: 4})
	fired := 0
	for i := 0; i < 10000 && fired < 5; i++ {
		if Hit(SiteAnswerSet) != nil {
			fired++
		}
	}
	if fired != 4 {
		t.Fatalf("fault fired %d times, want exactly Times=4", fired)
	}
}

// TestCounters: counting records hits at every site (armed or not) and
// fires only where a fault actually applied.
func TestCounters(t *testing.T) {
	Reset()
	defer Reset()
	SetCounting(true)
	defer SetCounting(false)
	ResetCounters()

	for i := 0; i < 5; i++ {
		_ = Hit(SiteMonteCarlo) // unarmed: hits only
	}
	Enable(SiteMCRare, Fault{Err: errors.New("x"), Times: 2})
	for i := 0; i < 3; i++ {
		_ = Hit(SiteMCRare)
	}
	got := Counters()
	if c := got[SiteMonteCarlo]; c.Hits != 5 || c.Fires != 0 {
		t.Errorf("%s counters = %+v, want 5 hits / 0 fires", SiteMonteCarlo, c)
	}
	if c := got[SiteMCRare]; c.Hits != 3 || c.Fires != 2 {
		t.Errorf("%s counters = %+v, want 3 hits / 2 fires", SiteMCRare, c)
	}

	ResetCounters()
	if len(Counters()) != 0 {
		t.Error("ResetCounters left counters behind")
	}
}

// TestCountingOffIsFree: with counting off and nothing armed, Hit
// records nothing.
func TestCountingOffIsFree(t *testing.T) {
	Reset()
	SetCounting(false)
	ResetCounters()
	_ = Hit(SiteWorldEnum)
	if len(Counters()) != 0 {
		t.Error("Hit recorded a counter with counting off")
	}
}
