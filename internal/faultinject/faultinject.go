// Package faultinject provides a process-wide fault injection registry
// for the reliability engines. Production code calls Hit at well-known
// sites (engine entry points and the shared query-evaluation path);
// with no faults armed and counting off, Hit is two atomic loads and
// returns nil. Tests arm faults — evaluation failures, delays, forced
// panics, and seeded probabilistic variants of each — to prove that
// every rung of the dispatcher's degradation ladder actually fires and
// that the engine boundary converts panics into the typed error
// taxonomy. The chaos campaign (internal/chaos) additionally turns on
// per-site hit/fire counting so it can fail a run on sites its
// workload never reached.
//
// The registry is safe for concurrent use (the parallel world-enum
// engine hits it from many goroutines under -race).
package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection sites. Engines pass these to Hit; tests pass them
// to Enable. Keeping them here (rather than as loose strings at call
// sites) makes the set of injectable points discoverable.
const (
	SiteQFree       = "engine/qfree"
	SiteWorldEnum   = "engine/world-enum"
	SiteSafePlan    = "engine/safe-plan"
	SiteLineageBDD  = "engine/lineage-bdd"
	SiteLineageKL   = "engine/lineage-kl"
	SiteMonteCarlo  = "engine/monte-carlo"
	SiteMCDirect    = "engine/monte-carlo-direct"
	SiteMCRare      = "engine/monte-carlo-rare"
	SiteAnswerSet   = "eval/answer-set"
	SiteWorldWorker = "eval/world-worker"
	// SiteLaneWorker fires once per lane claimed by a lane-pool worker
	// (mc.RunLanes) before the lane starts sampling; the race tests arm
	// it to prove first-error cancellation of sibling lanes.
	SiteLaneWorker = "mc/lane-worker"
	// Serving-layer sites (internal/server): SiteServerAdmit fires in
	// the admission path before a request is queued (delays there hold
	// the HTTP goroutine, not a worker); SiteServerHandle fires inside a
	// pool worker just before the reliability computation (delays there
	// keep workers busy, which is how the shedding tests saturate the
	// queue deterministically).
	SiteServerAdmit  = "server/admit"
	SiteServerHandle = "server/handle"
	// Disk-fault sites (internal/checkpoint). Each simulates one failure
	// window of the write-temp + fsync + rename protocol; arm with any
	// non-nil Err (the error value doubles as the trigger).
	//
	//   SiteCkptShortWrite — only half the snapshot bytes reach the disk
	//   but the rename still happens: a torn snapshot is committed, which
	//   the CRC check must reject on load.
	//   SiteCkptBitFlip — one payload byte is flipped after the write:
	//   silent media corruption, again caught only by the CRC.
	//   SiteCkptRename — the rename fails: Save errors, the previous
	//   snapshot stays the newest good one.
	//   SiteCkptCrash — the process "dies" between the temp write and the
	//   rename: Save errors, an orphaned .tmp file is left behind and
	//   must be ignored (and cleaned up) by later loads and saves.
	SiteCkptShortWrite = "ckpt/short-write"
	SiteCkptBitFlip    = "ckpt/bit-flip"
	SiteCkptRename     = "ckpt/rename"
	SiteCkptCrash      = "ckpt/crash-window"
	// Cluster-coordinator sites (internal/cluster). SiteClusterProbe
	// fires inside every replica health probe (an armed error reads as a
	// failed probe — the partition simulation); SiteClusterSend fires
	// before every sub-request a coordinator sends to a replica (an armed
	// error reads as a transport failure, a delay as a slow replica that
	// trips hedging); SiteClusterReassign fires when a lane range is
	// reassigned from a failed replica to a survivor — the kill path's
	// coverage proof.
	SiteClusterProbe    = "cluster/probe"
	SiteClusterSend     = "cluster/send"
	SiteClusterReassign = "cluster/reassign"
	// SiteClusterCkptShip fires when a coordinator accepts a shipped
	// checkpoint frame (an armed fault corrupts the frame in flight, so
	// validation must reject it and the range must restart clean);
	// SiteClusterJournalCrash fires inside every fan-out journal write
	// (an armed fault simulates a crash mid-write: a torn file reaches
	// the journal path and the write reports failure).
	SiteClusterCkptShip     = "cluster/ckpt-ship"
	SiteClusterJournalCrash = "cluster/journal-crash"
	// SiteClusterComputeCorrupt fires on a replica's pool worker after a
	// lane-range computation succeeds; an armed fault silently perturbs
	// one lane's Sum aggregate before the result (and its attestation
	// digest) is rendered — the one corruption class attestation cannot
	// catch, detectable only by a coordinator audit re-executing the
	// range on a different replica. SiteClusterAudit fires before each
	// audit re-execution the coordinator dispatches; an armed error makes
	// that audit fall to the next candidate replica (or be skipped),
	// proving audit scheduling degrades without poisoning health state.
	SiteClusterComputeCorrupt = "cluster/compute-corrupt"
	SiteClusterAudit          = "cluster/audit"
	// SiteVMCompile fires inside vm.Compile before a formula is lowered
	// to bytecode; an armed error makes compilation fail, forcing the
	// engine onto the interpreted evaluator mid-campaign (recorded in
	// the fallback trail). Because the compiled and interpreted paths
	// consume the identical RNG stream, every bit-identity invariant
	// must hold even when replicas disagree on eval mode.
	SiteVMCompile = "vm/compile"
	// Paged-store sites (internal/store). Each simulates one failure
	// window of the journal-then-apply commit protocol or of the page
	// read path:
	//
	//   SiteStoreJournalTear — only half the journal record reaches the
	//   disk before the "crash": recovery must discard the torn tail
	//   and roll the commit back cleanly.
	//   SiteStoreCrash — the process dies after the journal fsync but
	//   before any page is applied: recovery must replay the record and
	//   complete the commit.
	//   SiteStoreShortWrite — a heap page write-back is torn after the
	//   journal is durable: recovery must repair the page from the
	//   journal image.
	//   SiteStoreBitFlip — one bit of a page flips on the read path
	//   (silent media corruption): the per-page CRC must reject it as a
	//   typed ErrCorruptPage, never serve the tuples.
	SiteStoreJournalTear = "store/journal-tear"
	SiteStoreCrash       = "store/crash-window"
	SiteStoreShortWrite  = "store/short-write"
	SiteStoreBitFlip     = "store/bit-flip"
)

// allSites is the canonical registry behind Sites. Every Site* constant
// above MUST appear here; TestSitesCoversEveryConstant parses this file
// and fails on any omission, so a new site cannot be added without
// becoming schedulable by the chaos campaign.
var allSites = []string{
	SiteQFree,
	SiteWorldEnum,
	SiteSafePlan,
	SiteLineageBDD,
	SiteLineageKL,
	SiteMonteCarlo,
	SiteMCDirect,
	SiteMCRare,
	SiteAnswerSet,
	SiteWorldWorker,
	SiteLaneWorker,
	SiteServerAdmit,
	SiteServerHandle,
	SiteCkptShortWrite,
	SiteCkptBitFlip,
	SiteCkptRename,
	SiteCkptCrash,
	SiteClusterProbe,
	SiteClusterSend,
	SiteClusterReassign,
	SiteClusterCkptShip,
	SiteClusterJournalCrash,
	SiteClusterComputeCorrupt,
	SiteClusterAudit,
	SiteVMCompile,
	SiteStoreJournalTear,
	SiteStoreCrash,
	SiteStoreShortWrite,
	SiteStoreBitFlip,
}

// Sites returns every registered injection site, sorted. The chaos
// campaign plans its fault schedule over this list; a site missing from
// it can never be scheduled, which is why the registry is test-enforced
// against the Site* constants.
func Sites() []string {
	out := make([]string, len(allSites))
	copy(out, allSites)
	sort.Strings(out)
	return out
}

// KnownSite reports whether site names a registered injection site.
func KnownSite(site string) bool {
	for _, s := range allSites {
		if s == site {
			return true
		}
	}
	return false
}

// Fault describes one armed fault. The zero value is a no-op; set at
// least one of Err, Delay, or Panic.
type Fault struct {
	// Err is returned by Hit as an injected evaluation failure.
	Err error
	// Delay is slept before Hit returns (combinable with Err/Panic), for
	// deadline and cancellation tests.
	Delay time.Duration
	// Panic, when non-empty, makes Hit panic with this message after the
	// delay — exercising the engine-boundary recovery.
	Panic string
	// Times bounds how often the fault fires; 0 means every firing Hit
	// until Disable/Reset. A fault with Times = 1 fires exactly once.
	// With Prob set, only Hits whose probability draw succeeds count.
	Times int
	// Prob, when in (0, 1), makes the fault fire probabilistically: each
	// Hit draws from the fault's private deterministic RNG (seeded by
	// Seed) and fires only when the draw lands below Prob. Zero (and
	// anything >= 1) fires on every Hit, as before.
	Prob float64
	// Seed seeds the fault's private RNG for Prob draws. Two faults
	// armed with the same (Prob, Seed) fire on the identical subsequence
	// of Hits — the property the chaos campaign's reproducibility
	// contract rests on.
	Seed int64
}

// armedFault is the registry's record of one Enable call: the fault
// plus its private splitmix64 state for Prob draws.
type armedFault struct {
	Fault
	rng uint64
}

var (
	mu     sync.Mutex
	faults = map[string]*armedFault{}
	// armed counts registered faults so the disarmed fast path costs two
	// atomic loads and no lock.
	armed atomic.Int64
	// counting gates the per-site hit/fire counters; off (the default)
	// keeps the disarmed fast path lock-free.
	counting atomic.Bool
	hits     = map[string]int64{}
	fires    = map[string]int64{}
)

// splitmix64 advances *x and returns the next output — the same
// generator the sampling RNG seeds itself with, small enough to inline
// here (this package must stay import-free below mc).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Enable arms a fault at a site, replacing any previous fault there.
func Enable(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; !ok {
		armed.Add(1)
	}
	af := &armedFault{Fault: f, rng: uint64(f.Seed)}
	faults[site] = af
}

// Disable removes the fault at a site, if any.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; ok {
		delete(faults, site)
		armed.Add(-1)
	}
}

// Reset removes every armed fault. Tests should defer this. Counters
// and the counting switch are left alone — a chaos campaign resets
// faults between steps while accumulating coverage across them.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = map[string]*armedFault{}
	armed.Store(0)
}

// SetCounting turns per-site hit/fire counting on or off. While on,
// every Hit records its site (armed or not) and every firing fault
// records a fire — the coverage signal the chaos campaign fails on
// when its workload never reaches a scheduled site.
func SetCounting(on bool) {
	counting.Store(on)
}

// ResetCounters zeroes the per-site hit/fire counters.
func ResetCounters() {
	mu.Lock()
	defer mu.Unlock()
	hits = map[string]int64{}
	fires = map[string]int64{}
}

// SiteCount is one site's counter snapshot.
type SiteCount struct {
	// Hits counts Hit calls at the site while counting was on, armed or
	// not — "did the workload reach this code path at all".
	Hits int64 `json:"hits"`
	// Fires counts faults actually applied (error returned, panic
	// raised, or delay slept) at the site while counting was on.
	Fires int64 `json:"fires"`
}

// Counters snapshots the per-site hit/fire counters accumulated since
// the last ResetCounters. Sites never hit are absent.
func Counters() map[string]SiteCount {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]SiteCount, len(hits))
	for s, h := range hits {
		out[s] = SiteCount{Hits: h, Fires: fires[s]}
	}
	for s, f := range fires {
		if _, ok := out[s]; !ok {
			out[s] = SiteCount{Fires: f}
		}
	}
	return out
}

// Hit is called by production code at an injection site. With no fault
// armed at the site it returns nil; otherwise it applies the fault's
// delay, panics if requested, and returns the injected error. Armed
// faults with Prob set fire only when their deterministic draw
// succeeds.
func Hit(site string) error {
	if armed.Load() == 0 && !counting.Load() {
		return nil
	}
	mu.Lock()
	if counting.Load() {
		hits[site]++
	}
	f, ok := faults[site]
	var fire Fault
	if ok {
		fire = f.Fault
		if f.Prob > 0 && f.Prob < 1 {
			if u := float64(splitmix64(&f.rng)>>11) / (1 << 53); u >= f.Prob {
				ok = false
			}
		}
	}
	if ok {
		if f.Times > 0 {
			f.Times--
			if f.Times == 0 {
				delete(faults, site)
				armed.Add(-1)
			}
		}
		if counting.Load() {
			fires[site]++
		}
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	if fire.Delay > 0 {
		time.Sleep(fire.Delay)
	}
	if fire.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, fire.Panic))
	}
	return fire.Err
}
