// Package faultinject provides a process-wide fault injection registry
// for the reliability engines. Production code calls Hit at well-known
// sites (engine entry points and the shared query-evaluation path);
// with no faults armed, Hit is a single atomic load and returns nil.
// Tests arm faults — evaluation failures, delays, and forced panics —
// to prove that every rung of the dispatcher's degradation ladder
// actually fires and that the engine boundary converts panics into the
// typed error taxonomy.
//
// The registry is safe for concurrent use (the parallel world-enum
// engine hits it from many goroutines under -race).
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection sites. Engines pass these to Hit; tests pass them
// to Enable. Keeping them here (rather than as loose strings at call
// sites) makes the set of injectable points discoverable.
const (
	SiteQFree       = "engine/qfree"
	SiteWorldEnum   = "engine/world-enum"
	SiteSafePlan    = "engine/safe-plan"
	SiteLineageBDD  = "engine/lineage-bdd"
	SiteLineageKL   = "engine/lineage-kl"
	SiteMonteCarlo  = "engine/monte-carlo"
	SiteMCDirect    = "engine/monte-carlo-direct"
	SiteMCRare      = "engine/monte-carlo-rare"
	SiteAnswerSet   = "eval/answer-set"
	SiteWorldWorker = "eval/world-worker"
	// SiteLaneWorker fires once per lane claimed by a lane-pool worker
	// (mc.RunLanes) before the lane starts sampling; the race tests arm
	// it to prove first-error cancellation of sibling lanes.
	SiteLaneWorker = "mc/lane-worker"
	// Serving-layer sites (internal/server): SiteServerAdmit fires in
	// the admission path before a request is queued (delays there hold
	// the HTTP goroutine, not a worker); SiteServerHandle fires inside a
	// pool worker just before the reliability computation (delays there
	// keep workers busy, which is how the shedding tests saturate the
	// queue deterministically).
	SiteServerAdmit  = "server/admit"
	SiteServerHandle = "server/handle"
	// Disk-fault sites (internal/checkpoint). Each simulates one failure
	// window of the write-temp + fsync + rename protocol; arm with any
	// non-nil Err (the error value doubles as the trigger).
	//
	//   SiteCkptShortWrite — only half the snapshot bytes reach the disk
	//   but the rename still happens: a torn snapshot is committed, which
	//   the CRC check must reject on load.
	//   SiteCkptBitFlip — one payload byte is flipped after the write:
	//   silent media corruption, again caught only by the CRC.
	//   SiteCkptRename — the rename fails: Save errors, the previous
	//   snapshot stays the newest good one.
	//   SiteCkptCrash — the process "dies" between the temp write and the
	//   rename: Save errors, an orphaned .tmp file is left behind and
	//   must be ignored (and cleaned up) by later loads and saves.
	SiteCkptShortWrite = "ckpt/short-write"
	SiteCkptBitFlip    = "ckpt/bit-flip"
	SiteCkptRename     = "ckpt/rename"
	SiteCkptCrash      = "ckpt/crash-window"
)

// Fault describes one armed fault. The zero value is a no-op; set at
// least one of Err, Delay, or Panic.
type Fault struct {
	// Err is returned by Hit as an injected evaluation failure.
	Err error
	// Delay is slept before Hit returns (combinable with Err/Panic), for
	// deadline and cancellation tests.
	Delay time.Duration
	// Panic, when non-empty, makes Hit panic with this message after the
	// delay — exercising the engine-boundary recovery.
	Panic string
	// Times bounds how often the fault fires; 0 means every Hit until
	// Disable/Reset. A fault with Times = 1 fires exactly once.
	Times int
}

var (
	mu     sync.Mutex
	faults = map[string]*Fault{}
	// armed counts registered faults so the disarmed fast path costs one
	// atomic load and no lock.
	armed atomic.Int64
)

// Enable arms a fault at a site, replacing any previous fault there.
func Enable(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; !ok {
		armed.Add(1)
	}
	cp := f
	faults[site] = &cp
}

// Disable removes the fault at a site, if any.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; ok {
		delete(faults, site)
		armed.Add(-1)
	}
}

// Reset removes every armed fault. Tests should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = map[string]*Fault{}
	armed.Store(0)
}

// Hit is called by production code at an injection site. With no fault
// armed at the site it returns nil; otherwise it applies the fault's
// delay, panics if requested, and returns the injected error.
func Hit(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := faults[site]
	if ok && f.Times > 0 {
		f.Times--
		if f.Times == 0 {
			delete(faults, site)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, f.Panic))
	}
	return f.Err
}
