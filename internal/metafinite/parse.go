package metafinite

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses an aggregate term in the concrete syntax produced by
// Term.String:
//
//	term     := sum ( ('+'|'-') sum )*          (left associative)
//	sum      := factor ( '*' factor )*
//	factor   := number | rational               e.g. 3, 3/2
//	          | ident '(' foterm, ... ')'       function application
//	          | AGG '_' var '(' term ')'        sum_x(...), avg_y(...)
//	          | 'min'|'max' '(' term ',' term ')'
//	          | '[' term ('='|'<') term ']'     characteristic functions
//	          | '(' term ')'
//	foterm   := ident | number | '#' number     variable / element
//
// where AGG ∈ {sum, prod, min, max, avg, count}. An identifier of the
// form agg_v followed by '(' is always read as an aggregate binding v.
func Parse(src string) (Term, error) {
	toks, err := lexTerm(src)
	if err != nil {
		return nil, err
	}
	p := &termParser{toks: toks}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("metafinite: unexpected %q at end of term", p.toks[p.pos].text)
	}
	return t, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Term {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type mtok struct {
	kind string // ident number ( ) [ ] , + - * / = < #
	text string
	pos  int
}

func lexTerm(src string) ([]mtok, error) {
	var toks []mtok
	i := 0
	single := map[byte]string{
		'(': "(", ')': ")", '[': "[", ']': "]", ',': ",",
		'+': "+", '-': "-", '*': "*", '/': "/", '=': "=", '<': "<", '#': "#",
	}
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case single[c] != "":
			toks = append(toks, mtok{single[c], string(c), i})
			i++
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, mtok{"number", src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, mtok{"ident", src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("metafinite: position %d: unexpected character %q", i, rune(c))
		}
	}
	return toks, nil
}

type termParser struct {
	toks []mtok
	pos  int
}

func (p *termParser) peek() (mtok, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return mtok{}, false
}

func (p *termParser) accept(kind string) bool {
	if t, ok := p.peek(); ok && t.kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *termParser) expect(kind string) (mtok, error) {
	if t, ok := p.peek(); ok {
		if t.kind == kind {
			p.pos++
			return t, nil
		}
		return mtok{}, fmt.Errorf("metafinite: position %d: expected %q, found %q", t.pos, kind, t.text)
	}
	return mtok{}, fmt.Errorf("metafinite: expected %q, found end of input", kind)
}

func (p *termParser) parseTerm() (Term, error) {
	left, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept("+") {
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = Add{L: left, R: right}
			continue
		}
		if p.accept("-") {
			right, err := p.parseProduct()
			if err != nil {
				return nil, err
			}
			left = Sub{L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *termParser) parseProduct() (Term, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.accept("*") {
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = Mul{L: left, R: right}
	}
	return left, nil
}

// aggOf maps an identifier like "sum_x" to its constructor and bound
// variable.
func aggOf(word string) (func(v string, body Term) Term, string, bool) {
	base, v, ok := strings.Cut(word, "_")
	if !ok || v == "" {
		return nil, "", false
	}
	switch base {
	case "sum":
		return func(v string, b Term) Term { return SumAgg{Var: v, Body: b} }, v, true
	case "prod":
		return func(v string, b Term) Term { return ProdAgg{Var: v, Body: b} }, v, true
	case "min":
		return func(v string, b Term) Term { return MinAgg{Var: v, Body: b} }, v, true
	case "max":
		return func(v string, b Term) Term { return MaxAgg{Var: v, Body: b} }, v, true
	case "avg":
		return func(v string, b Term) Term { return AvgAgg{Var: v, Body: b} }, v, true
	case "count":
		return func(v string, b Term) Term { return CountAgg{Var: v, Body: b} }, v, true
	default:
		return nil, "", false
	}
}

func (p *termParser) parseFactor() (Term, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("metafinite: unexpected end of term")
	}
	switch t.kind {
	case "number":
		p.pos++
		num, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metafinite: bad number %q", t.text)
		}
		if p.accept("/") {
			den, err := p.expect("number")
			if err != nil {
				return nil, err
			}
			d, err := strconv.ParseInt(den.text, 10, 64)
			if err != nil || d == 0 {
				return nil, fmt.Errorf("metafinite: bad denominator %q", den.text)
			}
			return Num{V: big.NewRat(num, d)}, nil
		}
		return Num{V: big.NewRat(num, 1)}, nil
	case "(":
		p.pos++
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case "[":
		p.pos++
		left, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		isEq := p.accept("=")
		if !isEq {
			if _, err := p.expect("<"); err != nil {
				return nil, err
			}
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		if isEq {
			return CharEq{L: left, R: right}, nil
		}
		return CharLess{L: left, R: right}, nil
	case "ident":
		p.pos++
		// min(a, b) / max(a, b) binary forms.
		if t.text == "min" || t.text == "max" {
			if _, err := p.expect("("); err != nil {
				return nil, err
			}
			a, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
			b, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			if t.text == "min" {
				return Min2{L: a, R: b}, nil
			}
			return Max2{L: a, R: b}, nil
		}
		// Aggregates: agg_v(term).
		if mk, v, ok := aggOf(t.text); ok {
			if next, has := p.peek(); has && next.kind == "(" {
				p.pos++
				body, err := p.parseTerm()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				return mk(v, body), nil
			}
		}
		// Function application.
		if _, err := p.expect("("); err != nil {
			return nil, fmt.Errorf("metafinite: position %d: %q is not a number, aggregate, or function application", t.pos, t.text)
		}
		app := FApp{Fn: t.text}
		if p.accept(")") {
			return app, nil
		}
		for {
			fo, err := p.parseFOTerm()
			if err != nil {
				return nil, err
			}
			app.Args = append(app.Args, fo)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return app, nil
		}
	default:
		return nil, fmt.Errorf("metafinite: position %d: unexpected %q", t.pos, t.text)
	}
}

func (p *termParser) parseFOTerm() (FOTerm, error) {
	if p.accept("#") {
		n, err := p.expect("number")
		if err != nil {
			return FOTerm{}, err
		}
		e, err := strconv.Atoi(n.text)
		if err != nil {
			return FOTerm{}, fmt.Errorf("metafinite: bad element %q", n.text)
		}
		return E(e), nil
	}
	if t, ok := p.peek(); ok && t.kind == "number" {
		p.pos++
		e, err := strconv.Atoi(t.text)
		if err != nil {
			return FOTerm{}, fmt.Errorf("metafinite: bad element %q", t.text)
		}
		return E(e), nil
	}
	t, err := p.expect("ident")
	if err != nil {
		return FOTerm{}, err
	}
	return V(t.text), nil
}
