package metafinite

import "testing"

// FuzzParse checks the aggregate-term parser never panics and that
// parsed terms print/parse stably.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"sum_x(salary(x) + 100)",
		"max_x(min(salary(x), 500)) * [1 < 2]",
		"count_x([salary(x) < avg_y(salary(y))])",
		"3/0",
		"sum_(x)",
		"((((1))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		term, err := Parse(src)
		if err != nil {
			return
		}
		printed := term.String()
		t2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not reparse: %v", printed, err)
		}
		if t2.String() != printed {
			t.Fatalf("print/parse unstable: %q -> %q", printed, t2.String())
		}
	})
}
