package metafinite

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"qrel/internal/rel"
)

// This file implements a line-oriented text format for unreliable
// functional databases, used by cmd/aggrel:
//
//	# comment
//	universe 4
//	func salary/1
//	func dept/1
//	salary 0 = 100                      # observed value (certain)
//	salary 1 = 200                      # observed value ...
//	salary 1 ~ 200:3/4 250:1/4          # ... with a distribution
//	dept 0 = 2
//
// '=' lines set the observed database; '~' lines set the Definition 6.1
// distribution of a site (probabilities must sum to 1). A '~' line
// without a preceding '=' leaves the observed value at the default 0.

// ParseUDB reads an unreliable functional database in the text format.
func ParseUDB(r io.Reader) (*UDB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		db    *FDB
		u     *UDB
		n     = -1
		syms  []FuncSym
		line  int
		began bool
	)
	ensure := func() error {
		if began {
			return nil
		}
		if n < 0 {
			return fmt.Errorf("metafinite: line %d: universe size not declared", line)
		}
		var err error
		db, err = NewFDB(n, syms...)
		if err != nil {
			return err
		}
		u = NewUDB(db)
		began = true
		return nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "universe":
			if n >= 0 {
				return nil, fmt.Errorf("metafinite: line %d: duplicate universe declaration", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("metafinite: line %d: want 'universe <n>'", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("metafinite: line %d: bad universe size %q", line, fields[1])
			}
			n = v
		case "func":
			if began {
				return nil, fmt.Errorf("metafinite: line %d: func declaration after values", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("metafinite: line %d: want 'func <name>/<arity>'", line)
			}
			name, arityStr, ok := strings.Cut(fields[1], "/")
			if !ok {
				return nil, fmt.Errorf("metafinite: line %d: want 'func <name>/<arity>'", line)
			}
			arity, err := strconv.Atoi(arityStr)
			if err != nil {
				return nil, fmt.Errorf("metafinite: line %d: bad arity %q", line, arityStr)
			}
			syms = append(syms, FuncSym{Name: name, Arity: arity})
		default:
			if err := ensure(); err != nil {
				return nil, err
			}
			ft, ok := db.Funcs[fields[0]]
			if !ok {
				return nil, fmt.Errorf("metafinite: line %d: unknown function %q", line, fields[0])
			}
			rest := fields[1:]
			if len(rest) < ft.Arity+2 {
				return nil, fmt.Errorf("metafinite: line %d: %s needs %d elements and a value", line, fields[0], ft.Arity)
			}
			args := make(rel.Tuple, ft.Arity)
			for i := 0; i < ft.Arity; i++ {
				e, err := strconv.Atoi(rest[i])
				if err != nil {
					return nil, fmt.Errorf("metafinite: line %d: bad element %q", line, rest[i])
				}
				args[i] = e
			}
			op := rest[ft.Arity]
			vals := rest[ft.Arity+1:]
			switch op {
			case "=":
				if len(vals) != 1 {
					return nil, fmt.Errorf("metafinite: line %d: '=' takes exactly one value", line)
				}
				v, ok := new(big.Rat).SetString(vals[0])
				if !ok {
					return nil, fmt.Errorf("metafinite: line %d: bad value %q", line, vals[0])
				}
				if err := db.SetFRat(fields[0], v, args...); err != nil {
					return nil, fmt.Errorf("metafinite: line %d: %w", line, err)
				}
			case "~":
				var dist []Weighted
				for _, pair := range vals {
					vs, ps, ok := strings.Cut(pair, ":")
					if !ok {
						return nil, fmt.Errorf("metafinite: line %d: want value:prob, got %q", line, pair)
					}
					v, ok1 := new(big.Rat).SetString(vs)
					p, ok2 := new(big.Rat).SetString(ps)
					if !ok1 || !ok2 {
						return nil, fmt.Errorf("metafinite: line %d: bad pair %q", line, pair)
					}
					dist = append(dist, Weighted{Value: v, P: p})
				}
				if err := u.SetDist(Site{Fn: fields[0], Args: args}, dist); err != nil {
					return nil, fmt.Errorf("metafinite: line %d: %w", line, err)
				}
			default:
				return nil, fmt.Errorf("metafinite: line %d: expected '=' or '~', got %q", line, op)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metafinite: reading database: %w", err)
	}
	if err := ensure(); err != nil {
		return nil, err
	}
	return u, nil
}

// WriteUDB writes the database in the text format; parsing the output
// reconstructs an equivalent database.
func WriteUDB(w io.Writer, u *UDB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "universe %d\n", u.Obs.N)
	names := make([]string, 0, len(u.Obs.Funcs))
	for name := range u.Obs.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(bw, "func %s/%d\n", name, u.Obs.Funcs[name].Arity)
	}
	for _, name := range names {
		ft := u.Obs.Funcs[name]
		keys := make([]uint64, 0, len(ft.vals))
		for k := range ft.vals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			args := rel.KeyToTuple(k, ft.Arity)
			fmt.Fprintf(bw, "%s%s = %s\n", name, spaced(args), ft.vals[k].RatString())
		}
	}
	// Distributions in canonical site order.
	siteKeys := make([]rel.AtomKey, 0, len(u.dist))
	for k := range u.dist {
		siteKeys = append(siteKeys, k)
	}
	sort.Slice(siteKeys, func(i, j int) bool {
		if siteKeys[i].Rel != siteKeys[j].Rel {
			return siteKeys[i].Rel < siteKeys[j].Rel
		}
		return siteKeys[i].Tup < siteKeys[j].Tup
	})
	for _, k := range siteKeys {
		s := u.site[k]
		fmt.Fprintf(bw, "%s%s ~", s.Fn, spaced(s.Args))
		for _, c := range u.dist[k] {
			fmt.Fprintf(bw, " %s:%s", c.Value.RatString(), c.P.RatString())
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func spaced(t rel.Tuple) string {
	var b strings.Builder
	for _, e := range t {
		fmt.Fprintf(&b, " %d", e)
	}
	return b.String()
}
