package metafinite

import (
	"bytes"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"qrel/internal/rel"
)

const sampleUDB = `
# HR database
universe 3
func salary/1
func dept/1
salary 0 = 100
salary 1 = 200
salary 2 = 300
salary 1 ~ 200:3/4 250:1/4
dept 0 = 1
dept 1 = 1
dept 2 = 2
`

func TestParseUDBBasic(t *testing.T) {
	u, err := ParseUDB(strings.NewReader(sampleUDB))
	if err != nil {
		t.Fatal(err)
	}
	if u.Obs.N != 3 {
		t.Errorf("universe %d", u.Obs.N)
	}
	if got := u.Obs.Funcs["salary"].Get(rel.Tuple{1}); got.Cmp(big.NewRat(200, 1)) != 0 {
		t.Errorf("salary(1) = %v", got)
	}
	d := u.Dist(Site{Fn: "salary", Args: rel.Tuple{1}})
	if len(d) != 2 || d[1].P.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("dist = %v", d)
	}
	if len(u.UncertainSites()) != 1 {
		t.Error("uncertain site count wrong")
	}
	// Reliability end to end from the parsed database.
	term := MustParse("sum_x(salary(x))")
	res, err := WorldEnum(u, term, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("H = %v, want 1/4", res.H)
	}
}

func TestParseUDBErrors(t *testing.T) {
	cases := map[string]string{
		"no universe":       "func f/1\nf 0 = 1\n",
		"dup universe":      "universe 2\nuniverse 3\n",
		"bad universe":      "universe x\n",
		"bad func":          "universe 2\nfunc f\n",
		"bad arity":         "universe 2\nfunc f/x\n",
		"func after values": "universe 2\nfunc f/1\nf 0 = 1\nfunc g/1\n",
		"unknown func":      "universe 2\ng 0 = 1\n",
		"short line":        "universe 2\nfunc f/1\nf 0\n",
		"bad op":            "universe 2\nfunc f/1\nf 0 ? 1\n",
		"two values for =":  "universe 2\nfunc f/1\nf 0 = 1 2\n",
		"bad value":         "universe 2\nfunc f/1\nf 0 = nope\n",
		"bad pair":          "universe 2\nfunc f/1\nf 0 ~ 1\n",
		"bad prob":          "universe 2\nfunc f/1\nf 0 ~ 1:x\n",
		"dist not 1":        "universe 2\nfunc f/1\nf 0 ~ 1:1/2\n",
		"bad element":       "universe 2\nfunc f/1\nf x = 1\n",
		"element range":     "universe 2\nfunc f/1\nf 5 = 1\n",
	}
	for name, src := range cases {
		if _, err := ParseUDB(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestUDBCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 15; iter++ {
		u := NewUDB(salaryDB())
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				continue
			}
			obs := u.Obs.Funcs["salary"].Get(rel.Tuple{i})
			u.MustSetDist(Site{Fn: "salary", Args: rel.Tuple{i}}, []Weighted{
				{Value: obs, P: big.NewRat(2, 3)},
				{Value: new(big.Rat).Add(obs, big.NewRat(int64(1+rng.Intn(50)), 1)), P: big.NewRat(1, 3)},
			})
		}
		var buf bytes.Buffer
		if err := WriteUDB(&buf, u); err != nil {
			t.Fatal(err)
		}
		back, err := ParseUDB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, buf.String())
		}
		// Same observed values and distributions ⇒ same reliability of a
		// canonical query.
		term := MustParse("sum_x(salary(x)) + max_x(salary(x))")
		r1, err := WorldEnum(u, term, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := WorldEnum(back, term, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r1.H.Cmp(r2.H) != 0 {
			t.Fatalf("iter %d: codec changed reliability: %v vs %v\n%s", iter, r1.H, r2.H, buf.String())
		}
	}
}
