package metafinite

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want *big.Rat // evaluated on salaryDB with empty env
	}{
		{"7", big.NewRat(7, 1)},
		{"3/2", big.NewRat(3, 2)},
		{"1 + 2 * 3", big.NewRat(7, 1)},
		{"(1 + 2) * 3", big.NewRat(9, 1)},
		{"10 - 4 - 3", big.NewRat(3, 1)}, // left associative
		{"salary(#1)", big.NewRat(200, 1)},
		{"salary(1)", big.NewRat(200, 1)}, // bare number element
		{"min(3, 4) + max(3, 4)", big.NewRat(7, 1)},
		{"[1 = 1] + [2 < 1]", big.NewRat(1, 1)},
		{"sum_x(salary(x))", big.NewRat(600, 1)},
		{"avg_x(salary(x))", big.NewRat(200, 1)},
		{"count_x([salary(x) < 250])", big.NewRat(2, 1)},
		{"max_x(salary(x)) - min_x(salary(x))", big.NewRat(200, 1)},
		{"prod_x(2)", big.NewRat(8, 1)},
	}
	db := salaryDB()
	for _, c := range cases {
		term, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := term.Eval(db, Env{})
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got.Cmp(c.want) != 0 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"[1 = 1",
		"[1 ? 1]",
		"salary(",
		"salary(x))",
		"sum_(salary(x))",
		"3/0",
		"min(1)",
		"@",
		"salary(#x)",
		"unknownword",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// randTerm builds a random term over salary/1 with variables from
// scope.
func randTerm(rng *rand.Rand, depth int, scope []string) Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return NumInt(int64(rng.Intn(20)))
		case 1:
			return Num{V: big.NewRat(int64(1+rng.Intn(9)), int64(1+rng.Intn(9)))}
		default:
			if len(scope) == 0 {
				return FApp{Fn: "salary", Args: []FOTerm{E(rng.Intn(3))}}
			}
			return FApp{Fn: "salary", Args: []FOTerm{V(scope[rng.Intn(len(scope))])}}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return Add{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 1:
		return Sub{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 2:
		return Mul{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 3:
		return Min2{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 4:
		return CharEq{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 5:
		return CharLess{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	case 6:
		v := "v" + string(rune('a'+len(scope)))
		inner := randTerm(rng, depth-1, append(scope, v))
		switch rng.Intn(4) {
		case 0:
			return SumAgg{Var: v, Body: inner}
		case 1:
			return MinAgg{Var: v, Body: inner}
		case 2:
			return AvgAgg{Var: v, Body: inner}
		default:
			return CountAgg{Var: v, Body: inner}
		}
	default:
		return Max2{randTerm(rng, depth-1, scope), randTerm(rng, depth-1, scope)}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Property: Parse(term.String()) evaluates identically.
	rng := rand.New(rand.NewSource(21))
	db := salaryDB()
	for iter := 0; iter < 120; iter++ {
		term := randTerm(rng, 3, nil)
		src := term.String()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("iter %d: Parse(%q): %v", iter, src, err)
		}
		want, err := term.Eval(db, Env{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Eval(db, Env{})
		if err != nil {
			t.Fatalf("iter %d: Eval(reparsed %q): %v", iter, src, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("iter %d: round trip changed value of %q: %v vs %v", iter, src, got, want)
		}
	}
}

func TestParsedAggregateReliability(t *testing.T) {
	// End to end: parse an aggregate query and compute its reliability.
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(100, 1, 2), w(150, 1, 2)})
	term := MustParse("sum_x(salary(x))")
	res, err := WorldEnum(u, term, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("H = %v, want 1/2", res.H)
	}
}
