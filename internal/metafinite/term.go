package metafinite

import (
	"fmt"
	"math/big"
	"strings"

	"qrel/internal/rel"
)

// Env assigns universe elements to first-order variables.
type Env map[string]int

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Term is a metafinite query term: it evaluates on a functional
// database, under an environment for its free first-order variables, to
// a rational number. Booleans are encoded as 0/1, following the paper's
// convention that the interpreted structure contains 0, 1 and the
// Boolean operations.
type Term interface {
	fmt.Stringer
	// Eval computes the term's value.
	Eval(db *FDB, env Env) (*big.Rat, error)
	// freeVars accumulates free first-order variables in first-seen
	// order.
	freeVars(bound map[string]int, emit func(string))
}

// Num is a rational constant.
type Num struct{ V *big.Rat }

// NumInt builds an integer constant.
func NumInt(v int64) Num { return Num{V: big.NewRat(v, 1)} }

// FApp is a function application f(t1, ..., tk); the arguments are
// first-order terms (variables or elements), never numbers — variables
// range over the finite universe only.
type FApp struct {
	Fn   string
	Args []FOTerm
}

// FOTerm is a first-order term: a variable name or a concrete element.
type FOTerm struct {
	Var  string // non-empty for a variable
	Elem int    // used when Var is empty
}

// V makes a variable FOTerm.
func V(name string) FOTerm { return FOTerm{Var: name} }

// E makes an element FOTerm.
func E(e int) FOTerm { return FOTerm{Elem: e} }

// String renders the first-order term.
func (t FOTerm) String() string {
	if t.Var != "" {
		return t.Var
	}
	return fmt.Sprintf("#%d", t.Elem)
}

// Binary arithmetic over terms.
type (
	// Add is L + R.
	Add struct{ L, R Term }
	// Sub is L − R.
	Sub struct{ L, R Term }
	// Mul is L · R.
	Mul struct{ L, R Term }
	// Min2 is min(L, R).
	Min2 struct{ L, R Term }
	// Max2 is max(L, R).
	Max2 struct{ L, R Term }
	// CharEq is the characteristic function [L = R] ∈ {0, 1}.
	CharEq struct{ L, R Term }
	// CharLess is the characteristic function [L < R] ∈ {0, 1}.
	CharLess struct{ L, R Term }
)

// Aggregate terms: multiset operations binding a first-order variable
// (the paper's generalization of quantifiers).
type (
	// SumAgg is Σ_v Body.
	SumAgg struct {
		Var  string
		Body Term
	}
	// ProdAgg is Π_v Body.
	ProdAgg struct {
		Var  string
		Body Term
	}
	// MinAgg is min_v Body.
	MinAgg struct {
		Var  string
		Body Term
	}
	// MaxAgg is max_v Body.
	MaxAgg struct {
		Var  string
		Body Term
	}
	// AvgAgg is (Σ_v Body) / n — the SQL AVG.
	AvgAgg struct {
		Var  string
		Body Term
	}
	// CountAgg is Σ_v [Body ≠ 0] — the SQL COUNT(·) over a 0/1
	// condition.
	CountAgg struct {
		Var  string
		Body Term
	}
)

// Eval implements Term.
func (t Num) Eval(*FDB, Env) (*big.Rat, error) {
	if t.V == nil {
		return nil, fmt.Errorf("metafinite: nil numeric constant")
	}
	return new(big.Rat).Set(t.V), nil
}

// Eval implements Term.
func (t FApp) Eval(db *FDB, env Env) (*big.Rat, error) {
	f, ok := db.Funcs[t.Fn]
	if !ok {
		return nil, fmt.Errorf("metafinite: unknown function %q", t.Fn)
	}
	if len(t.Args) != f.Arity {
		return nil, fmt.Errorf("metafinite: %s expects %d args, got %d", t.Fn, f.Arity, len(t.Args))
	}
	tup := make(rel.Tuple, len(t.Args))
	for i, a := range t.Args {
		e, err := a.resolve(db, env)
		if err != nil {
			return nil, err
		}
		tup[i] = e
	}
	return f.Get(tup), nil
}

func (t FOTerm) resolve(db *FDB, env Env) (int, error) {
	if t.Var != "" {
		e, ok := env[t.Var]
		if !ok {
			return 0, fmt.Errorf("metafinite: unbound variable %q", t.Var)
		}
		return e, nil
	}
	if t.Elem < 0 || t.Elem >= db.N {
		return 0, fmt.Errorf("metafinite: element %d outside universe [0,%d)", t.Elem, db.N)
	}
	return t.Elem, nil
}

func evalBin(db *FDB, env Env, l, r Term, op func(a, b *big.Rat) *big.Rat) (*big.Rat, error) {
	a, err := l.Eval(db, env)
	if err != nil {
		return nil, err
	}
	b, err := r.Eval(db, env)
	if err != nil {
		return nil, err
	}
	return op(a, b), nil
}

// Eval implements Term.
func (t Add) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat { return a.Add(a, b) })
}

// Eval implements Term.
func (t Sub) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat { return a.Sub(a, b) })
}

// Eval implements Term.
func (t Mul) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat { return a.Mul(a, b) })
}

// Eval implements Term.
func (t Min2) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat {
		if a.Cmp(b) <= 0 {
			return a
		}
		return b
	})
}

// Eval implements Term.
func (t Max2) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat {
		if a.Cmp(b) >= 0 {
			return a
		}
		return b
	})
}

// Eval implements Term.
func (t CharEq) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat {
		if a.Cmp(b) == 0 {
			return big.NewRat(1, 1)
		}
		return new(big.Rat)
	})
}

// Eval implements Term.
func (t CharLess) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalBin(db, env, t.L, t.R, func(a, b *big.Rat) *big.Rat {
		if a.Cmp(b) < 0 {
			return big.NewRat(1, 1)
		}
		return new(big.Rat)
	})
}

// evalAgg folds Body over all bindings of v.
func evalAgg(db *FDB, env Env, v string, body Term, init *big.Rat, fold func(acc, x *big.Rat) *big.Rat) (*big.Rat, error) {
	env = env.Clone()
	var acc *big.Rat
	if init != nil {
		acc = new(big.Rat).Set(init)
	}
	for e := 0; e < db.N; e++ {
		env[v] = e
		x, err := body.Eval(db, env)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			// nil init: the first element seeds the fold (min/max).
			acc = x
			continue
		}
		acc = fold(acc, x)
	}
	return acc, nil
}

// Eval implements Term.
func (t SumAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalAgg(db, env, t.Var, t.Body, new(big.Rat), func(acc, x *big.Rat) *big.Rat { return acc.Add(acc, x) })
}

// Eval implements Term.
func (t ProdAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalAgg(db, env, t.Var, t.Body, big.NewRat(1, 1), func(acc, x *big.Rat) *big.Rat { return acc.Mul(acc, x) })
}

// Eval implements Term. Min over an empty universe is an error.
func (t MinAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	if db.N == 0 {
		return nil, fmt.Errorf("metafinite: min over empty universe")
	}
	return evalAgg(db, env, t.Var, t.Body, nil, func(acc, x *big.Rat) *big.Rat {
		if x.Cmp(acc) < 0 {
			return x
		}
		return acc
	})
}

// Eval implements Term. Max over an empty universe is an error.
func (t MaxAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	if db.N == 0 {
		return nil, fmt.Errorf("metafinite: max over empty universe")
	}
	return evalAgg(db, env, t.Var, t.Body, nil, func(acc, x *big.Rat) *big.Rat {
		if x.Cmp(acc) > 0 {
			return x
		}
		return acc
	})
}

// Eval implements Term. Avg over an empty universe is an error.
func (t AvgAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	if db.N == 0 {
		return nil, fmt.Errorf("metafinite: avg over empty universe")
	}
	sum, err := (SumAgg{Var: t.Var, Body: t.Body}).Eval(db, env)
	if err != nil {
		return nil, err
	}
	return sum.Quo(sum, big.NewRat(int64(db.N), 1)), nil
}

// Eval implements Term.
func (t CountAgg) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalAgg(db, env, t.Var, t.Body, new(big.Rat), func(acc, x *big.Rat) *big.Rat {
		if x.Sign() != 0 {
			return acc.Add(acc, big.NewRat(1, 1))
		}
		return acc
	})
}

// String renderings in a Σ_v(...) style.
func (t Num) String() string      { return t.V.RatString() }
func (t FApp) String() string     { return t.Fn + "(" + joinFO(t.Args) + ")" }
func (t Add) String() string      { return "(" + t.L.String() + " + " + t.R.String() + ")" }
func (t Sub) String() string      { return "(" + t.L.String() + " - " + t.R.String() + ")" }
func (t Mul) String() string      { return "(" + t.L.String() + " * " + t.R.String() + ")" }
func (t Min2) String() string     { return "min(" + t.L.String() + ", " + t.R.String() + ")" }
func (t Max2) String() string     { return "max(" + t.L.String() + ", " + t.R.String() + ")" }
func (t CharEq) String() string   { return "[" + t.L.String() + " = " + t.R.String() + "]" }
func (t CharLess) String() string { return "[" + t.L.String() + " < " + t.R.String() + "]" }
func (t SumAgg) String() string   { return "sum_" + t.Var + "(" + t.Body.String() + ")" }
func (t ProdAgg) String() string  { return "prod_" + t.Var + "(" + t.Body.String() + ")" }
func (t MinAgg) String() string   { return "min_" + t.Var + "(" + t.Body.String() + ")" }
func (t MaxAgg) String() string   { return "max_" + t.Var + "(" + t.Body.String() + ")" }
func (t AvgAgg) String() string   { return "avg_" + t.Var + "(" + t.Body.String() + ")" }
func (t CountAgg) String() string { return "count_" + t.Var + "(" + t.Body.String() + ")" }

func joinFO(args []FOTerm) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// freeVars implementations.
func (t Num) freeVars(map[string]int, func(string)) {}

func (t FApp) freeVars(bound map[string]int, emit func(string)) {
	for _, a := range t.Args {
		if a.Var != "" && bound[a.Var] == 0 {
			emit(a.Var)
		}
	}
}

func binFree(l, r Term, bound map[string]int, emit func(string)) {
	l.freeVars(bound, emit)
	r.freeVars(bound, emit)
}

func (t Add) freeVars(b map[string]int, e func(string))      { binFree(t.L, t.R, b, e) }
func (t Sub) freeVars(b map[string]int, e func(string))      { binFree(t.L, t.R, b, e) }
func (t Mul) freeVars(b map[string]int, e func(string))      { binFree(t.L, t.R, b, e) }
func (t Min2) freeVars(b map[string]int, e func(string))     { binFree(t.L, t.R, b, e) }
func (t Max2) freeVars(b map[string]int, e func(string))     { binFree(t.L, t.R, b, e) }
func (t CharEq) freeVars(b map[string]int, e func(string))   { binFree(t.L, t.R, b, e) }
func (t CharLess) freeVars(b map[string]int, e func(string)) { binFree(t.L, t.R, b, e) }

func aggFree(v string, body Term, bound map[string]int, emit func(string)) {
	bound[v]++
	body.freeVars(bound, emit)
	bound[v]--
}

func (t SumAgg) freeVars(b map[string]int, e func(string))   { aggFree(t.Var, t.Body, b, e) }
func (t ProdAgg) freeVars(b map[string]int, e func(string))  { aggFree(t.Var, t.Body, b, e) }
func (t MinAgg) freeVars(b map[string]int, e func(string))   { aggFree(t.Var, t.Body, b, e) }
func (t MaxAgg) freeVars(b map[string]int, e func(string))   { aggFree(t.Var, t.Body, b, e) }
func (t AvgAgg) freeVars(b map[string]int, e func(string))   { aggFree(t.Var, t.Body, b, e) }
func (t CountAgg) freeVars(b map[string]int, e func(string)) { aggFree(t.Var, t.Body, b, e) }

// FreeVars returns the free first-order variables of the term in
// first-seen order.
func FreeVars(t Term) []string {
	var out []string
	seen := map[string]struct{}{}
	t.freeVars(map[string]int{}, func(v string) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	})
	return out
}

// IsQuantifierFree reports whether the term contains no aggregate
// (multiset) operations — the fragment of Theorem 6.2 (i).
func IsQuantifierFree(t Term) bool {
	switch u := t.(type) {
	case Num, FApp:
		return true
	case Add:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case Sub:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case Mul:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case Min2:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case Max2:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case CharEq:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	case CharLess:
		return IsQuantifierFree(u.L) && IsQuantifierFree(u.R)
	default:
		return false
	}
}

// Sites collects the ground function applications the term touches when
// evaluated under env — for a quantifier-free term, a constant number
// independent of the database size (the analogue of the atom set in
// Proposition 3.1).
func Sites(t Term, db *FDB, env Env) ([]Site, error) {
	seen := map[rel.AtomKey]struct{}{}
	var out []Site
	var walk func(Term, Env) error
	walk = func(u Term, env Env) error {
		switch v := u.(type) {
		case Num:
			return nil
		case FApp:
			f, ok := db.Funcs[v.Fn]
			if !ok {
				return fmt.Errorf("metafinite: unknown function %q", v.Fn)
			}
			if len(v.Args) != f.Arity {
				return fmt.Errorf("metafinite: %s expects %d args, got %d", v.Fn, f.Arity, len(v.Args))
			}
			tup := make(rel.Tuple, len(v.Args))
			for i, a := range v.Args {
				e, err := a.resolve(db, env)
				if err != nil {
					return err
				}
				tup[i] = e
			}
			s := Site{Fn: v.Fn, Args: tup}
			if _, ok := seen[s.Key()]; !ok {
				seen[s.Key()] = struct{}{}
				out = append(out, s)
			}
			return nil
		case Add:
			return walk2(walk, v.L, v.R, env)
		case Sub:
			return walk2(walk, v.L, v.R, env)
		case Mul:
			return walk2(walk, v.L, v.R, env)
		case Min2:
			return walk2(walk, v.L, v.R, env)
		case Max2:
			return walk2(walk, v.L, v.R, env)
		case CharEq:
			return walk2(walk, v.L, v.R, env)
		case CharLess:
			return walk2(walk, v.L, v.R, env)
		case SumAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		case ProdAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		case MinAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		case MaxAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		case AvgAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		case CountAgg:
			return walkAgg(walk, db, v.Var, v.Body, env)
		default:
			return fmt.Errorf("metafinite: unknown term %T", u)
		}
	}
	if err := walk(t, env); err != nil {
		return nil, err
	}
	return out, nil
}

func walk2(walk func(Term, Env) error, l, r Term, env Env) error {
	if err := walk(l, env); err != nil {
		return err
	}
	return walk(r, env)
}

func walkAgg(walk func(Term, Env) error, db *FDB, v string, body Term, env Env) error {
	env = env.Clone()
	for e := 0; e < db.N; e++ {
		env[v] = e
		if err := walk(body, env); err != nil {
			return err
		}
	}
	return nil
}
