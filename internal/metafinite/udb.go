package metafinite

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"qrel/internal/rel"
)

// Weighted is one outcome of an uncertain function value: the value r
// with probability nu(f(ā) = r).
type Weighted struct {
	Value *big.Rat
	P     *big.Rat
}

// UDB is an unreliable functional database (Definition 6.1): an
// observed functional database together with, for finitely many sites
// f(ā), a finite-support distribution over the value in the actual
// database. Sites without a distribution keep their observed value with
// probability 1. Distinct sites are independent.
type UDB struct {
	// Obs is the observed database.
	Obs *FDB

	dist map[rel.AtomKey][]Weighted
	site map[rel.AtomKey]Site

	dirty     bool
	uncertain []Site // sites with ≥ 2 support points, canonical order
}

// NewUDB wraps an observed functional database. The database is used by
// reference; callers must not mutate it afterwards.
func NewUDB(obs *FDB) *UDB {
	return &UDB{Obs: obs, dist: map[rel.AtomKey][]Weighted{}, site: map[rel.AtomKey]Site{}}
}

// SetDist assigns the distribution of the site. Probabilities must be
// nonnegative and sum to exactly 1 (the paper's consistency condition);
// zero-probability outcomes are dropped; duplicate values are rejected.
func (u *UDB) SetDist(s Site, choices []Weighted) error {
	f, ok := u.Obs.Funcs[s.Fn]
	if !ok {
		return fmt.Errorf("metafinite: unknown function %q", s.Fn)
	}
	if len(s.Args) != f.Arity {
		return fmt.Errorf("metafinite: site %v has wrong arity for %s/%d", s, s.Fn, f.Arity)
	}
	for _, a := range s.Args {
		if a < 0 || a >= u.Obs.N {
			return fmt.Errorf("metafinite: site %v outside universe [0,%d)", s, u.Obs.N)
		}
	}
	total := new(big.Rat)
	kept := make([]Weighted, 0, len(choices))
	seen := map[string]struct{}{}
	for _, c := range choices {
		if c.P == nil || c.Value == nil {
			return fmt.Errorf("metafinite: site %v has nil outcome", s)
		}
		if c.P.Sign() < 0 {
			return fmt.Errorf("metafinite: site %v has negative probability %v", s, c.P)
		}
		total.Add(total, c.P)
		if c.P.Sign() == 0 {
			continue
		}
		key := c.Value.RatString()
		if _, dup := seen[key]; dup {
			return fmt.Errorf("metafinite: site %v lists value %v twice", s, c.Value)
		}
		seen[key] = struct{}{}
		kept = append(kept, Weighted{Value: new(big.Rat).Set(c.Value), P: new(big.Rat).Set(c.P)})
	}
	if total.Cmp(big.NewRat(1, 1)) != 0 {
		return fmt.Errorf("metafinite: site %v probabilities sum to %v, want 1", s, total)
	}
	k := s.Key()
	u.dist[k] = kept
	u.site[k] = Site{Fn: s.Fn, Args: s.Args.Clone()}
	u.dirty = true
	return nil
}

// MustSetDist is SetDist that panics on error.
func (u *UDB) MustSetDist(s Site, choices []Weighted) {
	if err := u.SetDist(s, choices); err != nil {
		panic(err)
	}
}

// Dist returns the distribution of a site (observed value with
// probability 1 when unset).
func (u *UDB) Dist(s Site) []Weighted {
	if d, ok := u.dist[s.Key()]; ok {
		out := make([]Weighted, len(d))
		for i, c := range d {
			out[i] = Weighted{Value: new(big.Rat).Set(c.Value), P: new(big.Rat).Set(c.P)}
		}
		return out
	}
	return []Weighted{{Value: u.Obs.Funcs[s.Fn].Get(s.Args), P: big.NewRat(1, 1)}}
}

func (u *UDB) refresh() {
	if !u.dirty {
		return
	}
	u.uncertain = u.uncertain[:0]
	keys := make([]rel.AtomKey, 0, len(u.dist))
	for k, d := range u.dist {
		if len(d) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rel != keys[j].Rel {
			return keys[i].Rel < keys[j].Rel
		}
		return keys[i].Tup < keys[j].Tup
	})
	for _, k := range keys {
		u.uncertain = append(u.uncertain, u.site[k])
	}
	u.dirty = false
}

// UncertainSites returns the sites with at least two possible values,
// in canonical order.
func (u *UDB) UncertainSites() []Site {
	u.refresh()
	return append([]Site(nil), u.uncertain...)
}

// WorldCount returns the number of possible worlds with positive
// probability: the product of the support sizes.
func (u *UDB) WorldCount() *big.Int {
	u.refresh()
	c := big.NewInt(1)
	for _, s := range u.uncertain {
		c.Mul(c, big.NewInt(int64(len(u.dist[s.Key()]))))
	}
	return c
}

// baseWorld applies all deterministic overrides (single-support
// distributions) to a clone of the observed database.
func (u *UDB) baseWorld() *FDB {
	b := u.Obs.Clone()
	for k, d := range u.dist {
		if len(d) == 1 {
			s := u.site[k]
			b.Funcs[s.Fn].Set(s.Args, d[0].Value)
		}
	}
	return b
}

// MaxEnumWorlds caps exact world enumeration.
const MaxEnumWorlds = 1 << 22

// ForEachWorld enumerates the possible worlds with their probabilities.
// The database passed to fn is freshly cloned per world. budget caps
// the number of worlds; fn returning false stops early.
func (u *UDB) ForEachWorld(budget int, fn func(b *FDB, p *big.Rat) bool) error {
	u.refresh()
	count := u.WorldCount()
	if budget > MaxEnumWorlds || budget <= 0 {
		budget = MaxEnumWorlds
	}
	if count.Cmp(big.NewInt(int64(budget))) > 0 {
		return fmt.Errorf("metafinite: %v worlds exceed enumeration budget %d", count, budget)
	}
	// Mixed-radix counter over the uncertain sites.
	radix := make([]int, len(u.uncertain))
	for i, s := range u.uncertain {
		radix[i] = len(u.dist[s.Key()])
	}
	digits := make([]int, len(radix))
	for {
		b := u.baseWorld()
		p := big.NewRat(1, 1)
		for i, s := range u.uncertain {
			c := u.dist[s.Key()][digits[i]]
			b.Funcs[s.Fn].Set(s.Args, c.Value)
			p.Mul(p, c.P)
		}
		if !fn(b, p) {
			return nil
		}
		// Increment.
		i := 0
		for i < len(digits) {
			digits[i]++
			if digits[i] < radix[i] {
				break
			}
			digits[i] = 0
			i++
		}
		if i == len(digits) {
			return nil
		}
		if len(digits) == 0 {
			return nil
		}
	}
}

// SampleWorld draws a random world using float64 approximations of the
// outcome probabilities.
func (u *UDB) SampleWorld(rng *rand.Rand) *FDB {
	u.refresh()
	b := u.baseWorld()
	for _, s := range u.uncertain {
		d := u.dist[s.Key()]
		r := rng.Float64()
		acc := 0.0
		chosen := d[len(d)-1]
		for _, c := range d {
			pf, _ := c.P.Float64()
			acc += pf
			if r < acc {
				chosen = c
				break
			}
		}
		b.Funcs[s.Fn].Set(s.Args, chosen.Value)
	}
	return b
}

// ValidateWorldProbabilities checks Σ_B nu(B) = 1 by enumeration.
func (u *UDB) ValidateWorldProbabilities(budget int) error {
	total := new(big.Rat)
	err := u.ForEachWorld(budget, func(_ *FDB, p *big.Rat) bool {
		total.Add(total, p)
		return true
	})
	if err != nil {
		return err
	}
	if total.Cmp(big.NewRat(1, 1)) != 0 {
		return fmt.Errorf("metafinite: world probabilities sum to %v, want 1", total)
	}
	return nil
}
