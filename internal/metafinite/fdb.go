// Package metafinite implements Section 6 of the paper: unreliable
// functional databases over an infinite interpreted domain (here: the
// rational numbers with arithmetic, min/max and the multiset operations
// Σ, Π, min, max, count, avg), in the style of metafinite model theory
// (Grädel & Gurevich). Queries are terms whose first-order variables
// range over the finite universe only; aggregates play the role of
// quantifiers.
//
// The package provides the functional-database model (Definition 6.1),
// a term language with evaluation, exact reliability engines for
// quantifier-free (Theorem 6.2 (i)) and first-order (Theorem 6.2 (ii))
// queries, a budgeted second-order aggregate (Theorem 6.2 (iii)), and a
// Monte Carlo estimator mirroring Theorem 5.12.
package metafinite

import (
	"fmt"
	"math/big"

	"qrel/internal/rel"
)

// FuncSym is a function symbol: a name with an arity; the function maps
// A^arity into the rationals.
type FuncSym struct {
	Name  string
	Arity int
}

// String renders the symbol as "f/2".
func (s FuncSym) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Arity) }

// FTable is one function f : A^k → ℚ, stored sparsely with a default
// value for unlisted tuples.
type FTable struct {
	Arity   int
	Default *big.Rat
	vals    map[uint64]*big.Rat
}

// NewFTable returns a table of the given arity with default value 0.
func NewFTable(arity int) *FTable {
	return &FTable{Arity: arity, Default: new(big.Rat), vals: map[uint64]*big.Rat{}}
}

// Get returns f(t).
func (f *FTable) Get(t rel.Tuple) *big.Rat {
	if v, ok := f.vals[t.Key()]; ok {
		return new(big.Rat).Set(v)
	}
	return new(big.Rat).Set(f.Default)
}

// Set assigns f(t) = v.
func (f *FTable) Set(t rel.Tuple, v *big.Rat) {
	if len(t) != f.Arity {
		panic(fmt.Sprintf("metafinite: tuple %v for arity-%d function", t, f.Arity))
	}
	f.vals[t.Key()] = new(big.Rat).Set(v)
}

// Clone returns a deep copy.
func (f *FTable) Clone() *FTable {
	c := &FTable{Arity: f.Arity, Default: new(big.Rat).Set(f.Default), vals: make(map[uint64]*big.Rat, len(f.vals))}
	for k, v := range f.vals {
		c.vals[k] = new(big.Rat).Set(v)
	}
	return c
}

// FDB is a functional database (A, F): a finite universe {0..N-1} and
// finitely many functions into ℚ.
type FDB struct {
	N     int
	Funcs map[string]*FTable
}

// NewFDB returns a functional database with the given universe size and
// function symbols (all initially constant 0).
func NewFDB(n int, syms ...FuncSym) (*FDB, error) {
	if n < 0 || n > rel.MaxUniverse {
		return nil, fmt.Errorf("metafinite: universe size %d out of range", n)
	}
	db := &FDB{N: n, Funcs: map[string]*FTable{}}
	for _, s := range syms {
		if s.Arity < 0 || s.Arity > rel.MaxArity {
			return nil, fmt.Errorf("metafinite: function %s arity out of range", s)
		}
		if _, dup := db.Funcs[s.Name]; dup {
			return nil, fmt.Errorf("metafinite: duplicate function %q", s.Name)
		}
		db.Funcs[s.Name] = NewFTable(s.Arity)
	}
	return db, nil
}

// MustFDB is NewFDB that panics on error.
func MustFDB(n int, syms ...FuncSym) *FDB {
	db, err := NewFDB(n, syms...)
	if err != nil {
		panic(err)
	}
	return db
}

// SetF assigns fn(args...) = v for integer-valued v (convenience).
func (db *FDB) SetF(fn string, v int64, args ...int) error {
	return db.SetFRat(fn, big.NewRat(v, 1), args...)
}

// SetFRat assigns fn(args...) = v.
func (db *FDB) SetFRat(fn string, v *big.Rat, args ...int) error {
	f, ok := db.Funcs[fn]
	if !ok {
		return fmt.Errorf("metafinite: unknown function %q", fn)
	}
	if len(args) != f.Arity {
		return fmt.Errorf("metafinite: %s expects %d args, got %d", fn, f.Arity, len(args))
	}
	for _, a := range args {
		if a < 0 || a >= db.N {
			return fmt.Errorf("metafinite: element %d outside universe [0,%d)", a, db.N)
		}
	}
	f.Set(rel.Tuple(args), v)
	return nil
}

// Clone returns a deep copy of the database.
func (db *FDB) Clone() *FDB {
	c := &FDB{N: db.N, Funcs: make(map[string]*FTable, len(db.Funcs))}
	for name, f := range db.Funcs {
		c.Funcs[name] = f.Clone()
	}
	return c
}

// Site identifies a ground function application f(ā) — the unit of
// unreliability in the functional model.
type Site struct {
	Fn   string
	Args rel.Tuple
}

// String renders the site as "f(1,2)".
func (s Site) String() string { return s.atom().String() }

func (s Site) atom() rel.GroundAtom { return rel.GroundAtom{Rel: s.Fn, Args: s.Args} }

// Key returns a comparable map key for the site.
func (s Site) Key() rel.AtomKey { return s.atom().Key() }
