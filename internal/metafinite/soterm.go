package metafinite

import (
	"fmt"
	"math/big"

	"qrel/internal/rel"
)

// This file implements the second-order multiset operations of Section
// 6 (Theorem 6.2 (iii)): terms of the form Σ_S F(S, x̄) where S ranges
// over all relations of a fixed arity on the universe. The bound set
// variable is exposed to the body as a 0/1-valued function of the same
// name (its characteristic function), so the body is an ordinary term.
// Evaluation enumerates the 2^(n^arity) relations and is guarded by
// MaxSOCells — second-order metafinite queries reach the counting
// hierarchy (FP^CH), so this cannot be improved in general.

// MaxSOCells bounds the tuple-space size n^arity a second-order
// aggregate may quantify over.
const MaxSOCells = 20

// Second-order aggregates; Set is the bound set-variable name, visible
// in Body as a 0/1 function of arity Arity.
type (
	// SOSum is Σ_S Body.
	SOSum struct {
		Set   string
		Arity int
		Body  Term
	}
	// SOMax is max_S Body.
	SOMax struct {
		Set   string
		Arity int
		Body  Term
	}
	// SOMin is min_S Body.
	SOMin struct {
		Set   string
		Arity int
		Body  Term
	}
)

// InSet returns the 0/1 membership term [ā ∈ S] for use inside a
// second-order aggregate body: simply the characteristic function
// application S(ā).
func InSet(set string, args ...FOTerm) Term { return FApp{Fn: set, Args: args} }

func (t SOSum) String() string {
	return fmt.Sprintf("sumset_%s/%d(%s)", t.Set, t.Arity, t.Body)
}

func (t SOMax) String() string {
	return fmt.Sprintf("maxset_%s/%d(%s)", t.Set, t.Arity, t.Body)
}

func (t SOMin) String() string {
	return fmt.Sprintf("minset_%s/%d(%s)", t.Set, t.Arity, t.Body)
}

func (t SOSum) freeVars(b map[string]int, e func(string)) { t.Body.freeVars(b, e) }
func (t SOMax) freeVars(b map[string]int, e func(string)) { t.Body.freeVars(b, e) }
func (t SOMin) freeVars(b map[string]int, e func(string)) { t.Body.freeVars(b, e) }

// evalSO enumerates all relations of the given arity, evaluating the
// body with the set's characteristic function installed, and folds the
// values. init nil means "seed with the first value" (min/max).
func evalSO(db *FDB, env Env, set string, arity int, body Term, init *big.Rat, fold func(acc, x *big.Rat) *big.Rat) (*big.Rat, error) {
	if arity < 0 || arity > rel.MaxArity {
		return nil, fmt.Errorf("metafinite: second-order arity %d out of range", arity)
	}
	cells := rel.TupleCount(db.N, arity)
	if cells < 0 || cells > MaxSOCells {
		return nil, fmt.Errorf("metafinite: second-order aggregate over %s/%d: %d cells exceed budget %d",
			set, arity, cells, MaxSOCells)
	}
	if _, clash := db.Funcs[set]; clash {
		return nil, fmt.Errorf("metafinite: set variable %q shadows a database function", set)
	}
	tuples := make([]rel.Tuple, 0, cells)
	rel.ForEachTuple(db.N, arity, func(tp rel.Tuple) bool {
		tuples = append(tuples, tp.Clone())
		return true
	})
	scratch := db.Clone()
	char := NewFTable(arity)
	scratch.Funcs[set] = char
	one := big.NewRat(1, 1)
	zero := new(big.Rat)
	var acc *big.Rat
	if init != nil {
		acc = new(big.Rat).Set(init)
	}
	for mask := uint64(0); mask < uint64(1)<<uint(cells); mask++ {
		for i, tp := range tuples {
			if mask&(1<<uint(i)) != 0 {
				char.Set(tp, one)
			} else {
				char.Set(tp, zero)
			}
		}
		x, err := body.Eval(scratch, env)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = x
			continue
		}
		acc = fold(acc, x)
	}
	return acc, nil
}

// Eval implements Term.
func (t SOSum) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalSO(db, env, t.Set, t.Arity, t.Body, new(big.Rat),
		func(acc, x *big.Rat) *big.Rat { return acc.Add(acc, x) })
}

// Eval implements Term.
func (t SOMax) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalSO(db, env, t.Set, t.Arity, t.Body, nil,
		func(acc, x *big.Rat) *big.Rat {
			if x.Cmp(acc) > 0 {
				return x
			}
			return acc
		})
}

// Eval implements Term.
func (t SOMin) Eval(db *FDB, env Env) (*big.Rat, error) {
	return evalSO(db, env, t.Set, t.Arity, t.Body, nil,
		func(acc, x *big.Rat) *big.Rat {
			if x.Cmp(acc) < 0 {
				return x
			}
			return acc
		})
}
