package metafinite

import (
	"math/big"
	"testing"
)

func TestSOSumHand(t *testing.T) {
	// Universe {0,1}; Σ_S count_x([x ∈ S]) over the 4 subsets:
	// |∅| + |{0}| + |{1}| + |{0,1}| = 0 + 1 + 1 + 2 = 4.
	db := MustFDB(2)
	body := CountAgg{Var: "x", Body: InSet("S", V("x"))}
	term := SOSum{Set: "S", Arity: 1, Body: body}
	got, err := term.Eval(db, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("sumset = %v, want 4", got)
	}
	// Max over subsets of |S| is 2, min is 0.
	maxT := SOMax{Set: "S", Arity: 1, Body: body}
	minT := SOMin{Set: "S", Arity: 1, Body: body}
	if v, _ := maxT.Eval(db, Env{}); v.Cmp(big.NewRat(2, 1)) != 0 {
		t.Errorf("maxset = %v, want 2", v)
	}
	if v, _ := minT.Eval(db, Env{}); v.Sign() != 0 {
		t.Errorf("minset = %v, want 0", v)
	}
}

func TestSOSumCountsSubsetsWeighted(t *testing.T) {
	// Σ_S Π_x ([x ∈ S]·w + (1−[x ∈ S])) with w = 2 counts each subset
	// with weight 2^|S|: over n=2 that is (1+2)² = 9 (binomial theorem).
	db := MustFDB(2)
	member := InSet("S", V("x"))
	weight := Add{
		L: Mul{L: member, R: NumInt(2)},
		R: Sub{L: NumInt(1), R: member},
	}
	term := SOSum{Set: "S", Arity: 1, Body: ProdAgg{Var: "x", Body: weight}}
	got, err := term.Eval(db, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewRat(9, 1)) != 0 {
		t.Errorf("weighted sumset = %v, want 9", got)
	}
}

func TestSOBudgetAndValidation(t *testing.T) {
	// 6 elements, arity 2: 36 cells > MaxSOCells.
	db := MustFDB(6)
	term := SOSum{Set: "S", Arity: 2, Body: NumInt(1)}
	if _, err := term.Eval(db, Env{}); err == nil {
		t.Error("SO budget not enforced")
	}
	// Set variable clashing with a database function.
	db2 := MustFDB(2, FuncSym{"S", 1})
	term2 := SOSum{Set: "S", Arity: 1, Body: NumInt(1)}
	if _, err := term2.Eval(db2, Env{}); err == nil {
		t.Error("function shadowing accepted")
	}
	// Arity out of range.
	term3 := SOSum{Set: "S", Arity: 9, Body: NumInt(1)}
	if _, err := term3.Eval(db2, Env{}); err == nil {
		t.Error("oversized arity accepted")
	}
}

func TestSOClassification(t *testing.T) {
	term := SOSum{Set: "S", Arity: 1, Body: NumInt(1)}
	if IsQuantifierFree(term) {
		t.Error("SO aggregate classified quantifier-free")
	}
	if len(FreeVars(term)) != 0 {
		t.Error("closed SO term has free variables")
	}
	open := SOSum{Set: "S", Arity: 1, Body: Add{L: InSet("S", V("x")), R: FApp{Fn: "f", Args: []FOTerm{V("y")}}}}
	fv := FreeVars(open)
	if len(fv) != 2 {
		t.Errorf("FreeVars = %v", fv)
	}
}

func TestSOReliability(t *testing.T) {
	// Theorem 6.2 (iii) exercised end to end: the reliability of a
	// second-order aggregate on an unreliable functional database, via
	// world enumeration. Query: max_S of Σ_x [x∈S]·f(x) — i.e. the sum
	// of the positive part of f (choose S = {x : f(x) > 0}).
	db := MustFDB(2, FuncSym{"f", 1})
	db.SetF("f", 5, 0)
	db.SetF("f", -3, 1)
	u := NewUDB(db)
	u.MustSetDist(Site{Fn: "f", Args: []int{1}}, []Weighted{
		{Value: big.NewRat(-3, 1), P: big.NewRat(1, 2)},
		{Value: big.NewRat(2, 1), P: big.NewRat(1, 2)},
	})
	body := SumAgg{Var: "x", Body: Mul{L: InSet("S", V("x")), R: FApp{Fn: "f", Args: []FOTerm{V("x")}}}}
	term := SOMax{Set: "S", Arity: 1, Body: body}
	// Observed: positive part = 5. World with f(1)=2: positive part 7.
	obs, err := term.Eval(u.Obs, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Cmp(big.NewRat(5, 1)) != 0 {
		t.Fatalf("observed = %v, want 5", obs)
	}
	res, err := WorldEnum(u, term, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("H = %v, want 1/2", res.H)
	}
}

func TestSOStrings(t *testing.T) {
	term := SOSum{Set: "S", Arity: 1, Body: NumInt(1)}
	if got := term.String(); got != "sumset_S/1(1)" {
		t.Errorf("String = %q", got)
	}
	if got := (SOMax{Set: "T", Arity: 2, Body: NumInt(0)}).String(); got != "maxset_T/2(0)" {
		t.Errorf("String = %q", got)
	}
	if got := (SOMin{Set: "T", Arity: 2, Body: NumInt(0)}).String(); got != "minset_T/2(0)" {
		t.Errorf("String = %q", got)
	}
}
