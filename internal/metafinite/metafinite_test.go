package metafinite

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// salaryDB: universe of 3 employees, salary/1 and dept/1 functions.
func salaryDB() *FDB {
	db := MustFDB(3, FuncSym{"salary", 1}, FuncSym{"dept", 1})
	db.SetF("salary", 100, 0)
	db.SetF("salary", 200, 1)
	db.SetF("salary", 300, 2)
	db.SetF("dept", 1, 0)
	db.SetF("dept", 1, 1)
	db.SetF("dept", 2, 2)
	return db
}

func w(value, num, den int64) Weighted {
	return Weighted{Value: big.NewRat(value, 1), P: big.NewRat(num, den)}
}

func TestTermEvaluation(t *testing.T) {
	db := salaryDB()
	cases := []struct {
		term Term
		want *big.Rat
	}{
		{NumInt(7), big.NewRat(7, 1)},
		{FApp{Fn: "salary", Args: []FOTerm{E(1)}}, big.NewRat(200, 1)},
		{Add{NumInt(1), NumInt(2)}, big.NewRat(3, 1)},
		{Sub{NumInt(1), NumInt(2)}, big.NewRat(-1, 1)},
		{Mul{NumInt(3), NumInt(4)}, big.NewRat(12, 1)},
		{Min2{NumInt(3), NumInt(4)}, big.NewRat(3, 1)},
		{Max2{NumInt(3), NumInt(4)}, big.NewRat(4, 1)},
		{CharEq{NumInt(3), NumInt(3)}, big.NewRat(1, 1)},
		{CharEq{NumInt(3), NumInt(4)}, new(big.Rat)},
		{CharLess{NumInt(3), NumInt(4)}, big.NewRat(1, 1)},
		{CharLess{NumInt(4), NumInt(3)}, new(big.Rat)},
		{SumAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}, big.NewRat(600, 1)},
		{ProdAgg{"x", NumInt(2)}, big.NewRat(8, 1)},
		{MinAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}, big.NewRat(100, 1)},
		{MaxAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}, big.NewRat(300, 1)},
		{AvgAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}, big.NewRat(200, 1)},
		{CountAgg{"x", CharEq{FApp{Fn: "dept", Args: []FOTerm{V("x")}}, NumInt(1)}}, big.NewRat(2, 1)},
	}
	for _, c := range cases {
		got, err := c.term.Eval(db, Env{})
		if err != nil {
			t.Fatalf("%v: %v", c.term, err)
		}
		if got.Cmp(c.want) != 0 {
			t.Errorf("%v = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestTermErrors(t *testing.T) {
	db := salaryDB()
	bad := []Term{
		FApp{Fn: "nope", Args: []FOTerm{E(0)}},
		FApp{Fn: "salary", Args: []FOTerm{E(0), E(1)}},
		FApp{Fn: "salary", Args: []FOTerm{V("unbound")}},
		FApp{Fn: "salary", Args: []FOTerm{E(9)}},
	}
	for _, term := range bad {
		if _, err := term.Eval(db, Env{}); err == nil {
			t.Errorf("%v: expected error", term)
		}
	}
	empty := MustFDB(0)
	for _, term := range []Term{
		MinAgg{"x", NumInt(0)}, MaxAgg{"x", NumInt(0)}, AvgAgg{"x", NumInt(0)},
	} {
		if _, err := term.Eval(empty, Env{}); err == nil {
			t.Errorf("%v over empty universe: expected error", term)
		}
	}
}

func TestFreeVarsAndClassification(t *testing.T) {
	tm := Add{
		FApp{Fn: "salary", Args: []FOTerm{V("x")}},
		SumAgg{"y", FApp{Fn: "salary", Args: []FOTerm{V("y")}}},
	}
	fv := FreeVars(tm)
	if len(fv) != 1 || fv[0] != "x" {
		t.Errorf("FreeVars = %v", fv)
	}
	if IsQuantifierFree(tm) {
		t.Error("aggregate term classified quantifier-free")
	}
	qf := Mul{FApp{Fn: "salary", Args: []FOTerm{V("x")}}, NumInt(2)}
	if !IsQuantifierFree(qf) {
		t.Error("arithmetic term misclassified")
	}
}

func TestSites(t *testing.T) {
	db := salaryDB()
	tm := Add{
		FApp{Fn: "salary", Args: []FOTerm{E(0)}},
		FApp{Fn: "salary", Args: []FOTerm{E(0)}}, // duplicate site
	}
	sites, err := Sites(tm, db, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 {
		t.Errorf("Sites = %v, want 1 distinct site", sites)
	}
	agg := SumAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}
	sites, err = Sites(agg, db, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Errorf("aggregate sites = %v, want 3", sites)
	}
}

func TestUDBValidation(t *testing.T) {
	u := NewUDB(salaryDB())
	s := Site{Fn: "salary", Args: []int{0}}
	if err := u.SetDist(Site{Fn: "nope", Args: []int{0}}, []Weighted{w(1, 1, 1)}); err == nil {
		t.Error("unknown function accepted")
	}
	if err := u.SetDist(Site{Fn: "salary", Args: []int{0, 1}}, []Weighted{w(1, 1, 1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := u.SetDist(Site{Fn: "salary", Args: []int{9}}, []Weighted{w(1, 1, 1)}); err == nil {
		t.Error("out-of-universe site accepted")
	}
	if err := u.SetDist(s, []Weighted{w(1, 1, 2)}); err == nil {
		t.Error("sub-normalized distribution accepted")
	}
	if err := u.SetDist(s, []Weighted{w(1, 1, 2), w(1, 1, 2)}); err == nil {
		t.Error("duplicate values accepted")
	}
	if err := u.SetDist(s, []Weighted{w(1, -1, 2), w(2, 3, 2)}); err == nil {
		t.Error("negative probability accepted")
	}
	// Zero-probability outcomes dropped.
	if err := u.SetDist(s, []Weighted{w(100, 1, 1), w(999, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := u.Dist(s); len(got) != 1 {
		t.Errorf("Dist kept zero-probability outcome: %v", got)
	}
	// Unset site: observed value with probability 1.
	d := u.Dist(Site{Fn: "salary", Args: []int{1}})
	if len(d) != 1 || d[0].Value.Cmp(big.NewRat(200, 1)) != 0 || d[0].P.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("default dist = %v", d)
	}
}

func TestWorldEnumeration(t *testing.T) {
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(100, 2, 3), w(150, 1, 3)})
	u.MustSetDist(Site{Fn: "salary", Args: []int{1}}, []Weighted{w(200, 1, 2), w(210, 1, 4), w(220, 1, 4)})
	if got := u.WorldCount().Int64(); got != 6 {
		t.Errorf("WorldCount = %d, want 6", got)
	}
	if err := u.ValidateWorldProbabilities(100); err != nil {
		t.Fatal(err)
	}
	if len(u.UncertainSites()) != 2 {
		t.Error("uncertain site count wrong")
	}
	// Budget enforcement.
	if err := u.ForEachWorld(3, func(*FDB, *big.Rat) bool { return true }); err == nil {
		t.Error("budget not enforced")
	}
}

func TestQuantifierFreeMatchesWorldEnum(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for iter := 0; iter < 15; iter++ {
		db := salaryDB()
		u := NewUDB(db)
		// Random uncertainty on a few sites.
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				continue
			}
			base := db.Funcs["salary"].Get([]int{i})
			delta := big.NewRat(int64(10+rng.Intn(50)), 1)
			u.MustSetDist(Site{Fn: "salary", Args: []int{i}}, []Weighted{
				{Value: base, P: big.NewRat(3, 4)},
				{Value: new(big.Rat).Add(base, delta), P: big.NewRat(1, 4)},
			})
		}
		terms := []Term{
			FApp{Fn: "salary", Args: []FOTerm{V("x")}},
			Add{FApp{Fn: "salary", Args: []FOTerm{V("x")}}, FApp{Fn: "salary", Args: []FOTerm{E(0)}}},
			CharLess{FApp{Fn: "salary", Args: []FOTerm{V("x")}}, NumInt(250)},
			Max2{FApp{Fn: "salary", Args: []FOTerm{E(0)}}, FApp{Fn: "salary", Args: []FOTerm{E(1)}}},
		}
		for _, tm := range terms {
			qf, err := QuantifierFree(u, tm, 0)
			if err != nil {
				t.Fatalf("iter %d %v: %v", iter, tm, err)
			}
			we, err := WorldEnum(u, tm, 0)
			if err != nil {
				t.Fatal(err)
			}
			if qf.H.Cmp(we.H) != 0 {
				t.Fatalf("iter %d %v: qfree H %v != enum H %v", iter, tm, qf.H, we.H)
			}
			if qf.R.Cmp(we.R) != 0 {
				t.Fatalf("iter %d %v: R mismatch", iter, tm)
			}
		}
	}
}

func TestQuantifierFreeRejectsAggregates(t *testing.T) {
	u := NewUDB(salaryDB())
	if _, err := QuantifierFree(u, SumAgg{"x", NumInt(1)}, 0); err == nil {
		t.Error("aggregate accepted by quantifier-free engine")
	}
}

func TestAggregateReliabilityExact(t *testing.T) {
	// Hand-computed: salary(0) ∈ {100 w.p. 1/2, 150 w.p. 1/2};
	// query SUM salary. Observed sum 600; actual 600 or 650 w.p. 1/2.
	// H = 1/2, R = 1/2 (Boolean query k = 0).
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(100, 1, 2), w(150, 1, 2)})
	sum := SumAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}
	res, err := WorldEnum(u, sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("H = %v, want 1/2", res.H)
	}
	if res.R.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("R = %v, want 1/2", res.R)
	}
	// MAX is insensitive to this change (300 stays maximal): H = 0.
	max := MaxAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}
	res, err = WorldEnum(u, max, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Sign() != 0 {
		t.Errorf("max H = %v, want 0", res.H)
	}
}

func TestDeterministicOverride(t *testing.T) {
	// A single-support distribution that differs from the observed value
	// forces H = 1 for the touched tuple.
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(999, 1, 1)})
	tm := FApp{Fn: "salary", Args: []FOTerm{V("x")}}
	res, err := QuantifierFree(u, tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("H = %v, want 1 (one certainly-wrong tuple)", res.H)
	}
	we, err := WorldEnum(u, tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if we.H.Cmp(res.H) != 0 {
		t.Error("engines disagree on deterministic override")
	}
}

func TestMetafiniteMonteCarlo(t *testing.T) {
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(100, 1, 2), w(150, 1, 2)})
	u.MustSetDist(Site{Fn: "salary", Args: []int{2}}, []Weighted{w(300, 3, 4), w(400, 1, 4)})
	avg := AvgAgg{"x", FApp{Fn: "salary", Args: []FOTerm{V("x")}}}
	exact, err := WorldEnum(u, avg, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarlo(u, avg, 0.03, 0.01, rand.New(rand.NewSource(60)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.RFloat-exact.RFloat) > 0.03 {
		t.Errorf("MC R %v, exact %v", est.RFloat, exact.RFloat)
	}
	if est.Samples == 0 || est.Engine != "mf-monte-carlo" {
		t.Errorf("result metadata wrong: %+v", est)
	}
	// Parameter validation propagates.
	if _, err := MonteCarlo(u, avg, 0, 0.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad eps accepted")
	}
}

func TestKAryMetafiniteReliability(t *testing.T) {
	// Unary query: salary(x). One uncertain site with flip prob 1/4
	// affects exactly one of three tuples: H = 1/4, R = 1 − (1/4)/3.
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{1}}, []Weighted{w(200, 3, 4), w(250, 1, 4)})
	tm := FApp{Fn: "salary", Args: []FOTerm{V("x")}}
	res, err := QuantifierFree(u, tm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.H.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("H = %v, want 1/4", res.H)
	}
	want := new(big.Rat).Sub(big.NewRat(1, 1), big.NewRat(1, 12))
	if res.R.Cmp(want) != 0 {
		t.Errorf("R = %v, want %v", res.R, want)
	}
	if res.Arity != 1 {
		t.Errorf("arity %d", res.Arity)
	}
}

func TestSampleWorldDistribution(t *testing.T) {
	u := NewUDB(salaryDB())
	u.MustSetDist(Site{Fn: "salary", Args: []int{0}}, []Weighted{w(100, 1, 4), w(150, 3, 4)})
	rng := rand.New(rand.NewSource(70))
	count := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		b := u.SampleWorld(rng)
		if b.Funcs["salary"].Get([]int{0}).Cmp(big.NewRat(150, 1)) == 0 {
			count++
		}
	}
	freq := float64(count) / trials
	if freq < 0.72 || freq > 0.78 {
		t.Errorf("sample frequency %.4f, want ≈ 0.75", freq)
	}
}

func TestFDBValidation(t *testing.T) {
	if _, err := NewFDB(-1); err == nil {
		t.Error("negative universe accepted")
	}
	if _, err := NewFDB(3, FuncSym{"f", 1}, FuncSym{"f", 2}); err == nil {
		t.Error("duplicate function accepted")
	}
	if _, err := NewFDB(3, FuncSym{"f", 9}); err == nil {
		t.Error("oversized arity accepted")
	}
	db := MustFDB(3, FuncSym{"f", 1})
	if err := db.SetF("g", 1, 0); err == nil {
		t.Error("unknown function set")
	}
	if err := db.SetF("f", 1, 0, 1); err == nil {
		t.Error("wrong arity set")
	}
	if err := db.SetF("f", 1, 9); err == nil {
		t.Error("out-of-universe set")
	}
}

func TestTermStrings(t *testing.T) {
	tm := SumAgg{"x", Add{FApp{Fn: "f", Args: []FOTerm{V("x"), E(2)}}, NumInt(1)}}
	want := "sum_x((f(x,#2) + 1))"
	if got := tm.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
