package metafinite

import (
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/mc"
	"qrel/internal/rel"
)

// Result is the outcome of a metafinite reliability computation: the
// expected error H (expected number of tuples where the query value on
// the actual database differs from the observed value) and the
// reliability R = 1 − H/n^k.
type Result struct {
	// H and R are exact; nil for the Monte Carlo engine.
	H, R *big.Rat
	// HFloat and RFloat are always populated.
	HFloat, RFloat float64
	// Arity is the number of free first-order variables.
	Arity int
	// Engine names the engine.
	Engine string
	// Samples counts Monte Carlo samples (0 for exact engines).
	Samples int
}

func exactResult(h *big.Rat, n, k int, engine string) Result {
	norm := big.NewRat(1, 1)
	for i := 0; i < k; i++ {
		norm.Mul(norm, big.NewRat(int64(n), 1))
	}
	r := new(big.Rat).Quo(h, norm)
	r.Sub(big.NewRat(1, 1), r)
	hf, _ := h.Float64()
	rf, _ := r.Float64()
	return Result{H: h, R: r, HFloat: hf, RFloat: rf, Arity: k, Engine: engine}
}

// forEachTuple binds the free variables of t over A^k.
func forEachTuple(db *FDB, t Term, fn func(env Env) error) (int, error) {
	vars := FreeVars(t)
	env := Env{}
	var innerErr error
	rel.ForEachTuple(db.N, len(vars), func(tp rel.Tuple) bool {
		for i, v := range vars {
			env[v] = tp[i]
		}
		if err := fn(env); err != nil {
			innerErr = err
			return false
		}
		return true
	})
	return len(vars), innerErr
}

// MaxSiteCombos caps the per-tuple joint-support enumeration of the
// quantifier-free engine.
const MaxSiteCombos = 1 << 20

// QuantifierFree computes the exact reliability of a quantifier-free
// (aggregate-free) term in polynomial time — Theorem 6.2 (i). For each
// tuple ā, the term touches a constant number of sites f(b̄); the engine
// enumerates the joint support of the uncertain ones, weights each
// combination, and compares the value against the observed value.
func QuantifierFree(u *UDB, t Term, budget int) (Result, error) {
	if !IsQuantifierFree(t) {
		return Result{}, fmt.Errorf("metafinite: QuantifierFree engine requires an aggregate-free term")
	}
	if budget <= 0 || budget > MaxSiteCombos {
		budget = MaxSiteCombos
	}
	u.refresh()
	base := u.baseWorld()
	h := new(big.Rat)
	k, err := forEachTuple(u.Obs, t, func(env Env) error {
		sites, err := Sites(t, u.Obs, env)
		if err != nil {
			return err
		}
		// Keep only uncertain sites; deterministic overrides are already
		// in base.
		var unc []Site
		combos := 1
		for _, s := range sites {
			d := u.dist[s.Key()]
			if len(d) >= 2 {
				unc = append(unc, s)
				combos *= len(d)
				if combos > budget {
					return fmt.Errorf("metafinite: %d site combinations exceed budget %d", combos, budget)
				}
			}
		}
		// The reliability compares against the query value on the
		// OBSERVED database (Definition 2.2), not on the base world with
		// deterministic overrides applied.
		observed, err := t.Eval(u.Obs, env)
		if err != nil {
			return err
		}
		// Enumerate the joint support with a mixed-radix counter.
		scratch := base.Clone()
		digits := make([]int, len(unc))
		for {
			p := big.NewRat(1, 1)
			for i, s := range unc {
				c := u.dist[s.Key()][digits[i]]
				scratch.Funcs[s.Fn].Set(s.Args, c.Value)
				p.Mul(p, c.P)
			}
			v, err := t.Eval(scratch, env)
			if err != nil {
				return err
			}
			if v.Cmp(observed) != 0 {
				h.Add(h, p)
			}
			i := 0
			for i < len(digits) {
				digits[i]++
				if digits[i] < len(u.dist[unc[i].Key()]) {
					break
				}
				digits[i] = 0
				i++
			}
			if i == len(digits) {
				break
			}
			if len(digits) == 0 {
				break
			}
		}
		// Restore scratch for the next tuple.
		for _, s := range unc {
			scratch.Funcs[s.Fn].Set(s.Args, base.Funcs[s.Fn].Get(s.Args))
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return exactResult(h, u.Obs.N, k, "mf-qfree-exact"), nil
}

// WorldEnum computes the exact reliability of an arbitrary term —
// aggregates included — by enumerating the possible worlds (Theorem
// 6.2 (ii): first-order metafinite reliability is in FP^#P; this is the
// deterministic simulation of the oracle).
func WorldEnum(u *UDB, t Term, budget int) (Result, error) {
	vars := FreeVars(t)
	k := len(vars)
	// Observed values per tuple (on the observed database).
	observed := map[uint64]*big.Rat{}
	_, err := forEachTuple(u.Obs, t, func(env Env) error {
		v, err := t.Eval(u.Obs, env)
		if err != nil {
			return err
		}
		observed[envKey(env, vars)] = v
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	h := new(big.Rat)
	var evalErr error
	err = u.ForEachWorld(budget, func(b *FDB, p *big.Rat) bool {
		diff := 0
		_, err := forEachTuple(b, t, func(env Env) error {
			v, err := t.Eval(b, env)
			if err != nil {
				return err
			}
			if v.Cmp(observed[envKey(env, vars)]) != 0 {
				diff++
			}
			return nil
		})
		if err != nil {
			evalErr = err
			return false
		}
		if diff > 0 {
			h.Add(h, new(big.Rat).Mul(p, big.NewRat(int64(diff), 1)))
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if evalErr != nil {
		return Result{}, evalErr
	}
	return exactResult(h, u.Obs.N, k, "mf-world-enum"), nil
}

func envKey(env Env, vars []string) uint64 {
	t := make(rel.Tuple, len(vars))
	for i, v := range vars {
		t[i] = env[v]
	}
	return t.Key()
}

// MonteCarlo estimates the reliability of an arbitrary term with
// absolute error eps and confidence 1−delta by sampling worlds and
// averaging the normalized Hamming distance — the metafinite analogue
// of Theorem 5.12 (the queries are polynomial-time evaluable because
// the interpreted operations are).
func MonteCarlo(u *UDB, t Term, eps, delta float64, rng *rand.Rand) (Result, error) {
	vars := FreeVars(t)
	k := len(vars)
	observed := map[uint64]*big.Rat{}
	_, err := forEachTuple(u.Obs, t, func(env Env) error {
		v, err := t.Eval(u.Obs, env)
		if err != nil {
			return err
		}
		observed[envKey(env, vars)] = v
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	samples, err := mc.HoeffdingSampleSize(eps, delta)
	if err != nil {
		return Result{}, err
	}
	norm := 1.0
	for i := 0; i < k; i++ {
		norm *= float64(u.Obs.N)
	}
	sum := 0.0
	for i := 0; i < samples; i++ {
		b := u.SampleWorld(rng)
		diff := 0
		_, err := forEachTuple(b, t, func(env Env) error {
			v, err := t.Eval(b, env)
			if err != nil {
				return err
			}
			if v.Cmp(observed[envKey(env, vars)]) != 0 {
				diff++
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		sum += float64(diff) / norm
	}
	hNorm := sum / float64(samples)
	return Result{
		HFloat:  hNorm * norm,
		RFloat:  1 - hNorm,
		Arity:   k,
		Engine:  "mf-monte-carlo",
		Samples: samples,
	}, nil
}
