package workload

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/metafinite"
)

func TestRandomUDBDeterminism(t *testing.T) {
	a := RandomUDB(rand.New(rand.NewSource(1)), 5, 4)
	b := RandomUDB(rand.New(rand.NewSource(1)), 5, 4)
	if !a.A.Equal(b.A) {
		t.Error("structures differ under the same seed")
	}
	if a.NumUncertain() != b.NumUncertain() {
		t.Error("uncertainty differs under the same seed")
	}
	c := RandomUDB(rand.New(rand.NewSource(2)), 5, 4)
	if a.A.Equal(c.A) {
		t.Error("different seeds produced identical structures (suspicious)")
	}
	if err := a.ValidateWorldProbabilities(10); err != nil {
		t.Error(err)
	}
}

func TestAddUncertaintyClampsToVocabulary(t *testing.T) {
	// A 2-element graph structure has only 2² + 2 = 6 distinct ground
	// atoms. Asking for more used to rejection-sample forever; now the
	// count clamps to the vocabulary total.
	rng := rand.New(rand.NewSource(8))
	s := RandomStructure(rng, 2, 0.5, 0.5)
	db := AddUncertainty(rng, s, 1000, 10)
	if got := db.NumUncertain(); got != 6 {
		t.Errorf("NumUncertain = %d, want all 6 ground atoms", got)
	}
	// Sane requests are unaffected.
	db = AddUncertainty(rng, RandomStructure(rng, 4, 0.5, 0.5), 5, 10)
	if got := db.NumUncertain(); got != 5 {
		t.Errorf("NumUncertain = %d, want 5", got)
	}
}

func TestRandomKDNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := RandomKDNF(rng, 20, 15, 3)
	if len(d.Terms) != 15 {
		t.Errorf("terms %d", len(d.Terms))
	}
	for _, tm := range d.Terms {
		if len(tm) != 3 {
			t.Errorf("term width %d, want 3", len(tm))
		}
		seen := map[int]bool{}
		for _, l := range tm {
			if seen[l.Var] {
				t.Error("duplicate variable inside term")
			}
			seen[l.Var] = true
		}
	}
	// k > numVars clamps.
	d = RandomKDNF(rng, 2, 3, 5)
	if d.Width() > 2 {
		t.Error("width not clamped")
	}
}

func TestSparseKDNFIsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := SparseKDNF(rng, 30, 10, 4)
	for _, tm := range d.Terms {
		for _, l := range tm {
			if l.Neg {
				t.Fatal("sparse kDNF must be positive")
			}
		}
		if len(tm) != 4 {
			t.Fatalf("term width %d", len(tm))
		}
	}
}

func TestRandomProbsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := RandomProbs(rng, 10, 7)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	one := big.NewRat(1, 1)
	for _, pr := range p {
		if pr.Sign() == 0 || pr.Cmp(one) >= 0 {
			t.Errorf("probability %v at boundary", pr)
		}
	}
}

func TestCensusDB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db, err := CensusDB(rng, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if db.A.N != 11 {
		t.Errorf("universe %d", db.A.N)
	}
	// Every person lives somewhere.
	livesIn := db.A.Rel("LivesIn")
	if livesIn.Len() != 8 {
		t.Errorf("LivesIn has %d tuples, want 8", livesIn.Len())
	}
	// All census queries parse and are answerable by some engine.
	for name, src := range CensusQueries {
		f, err := logic.Parse(src, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if db.NumUncertain() <= 16 {
			if _, err := core.Reliability(context.Background(), db, f, core.Options{}); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
	if _, err := CensusDB(rng, 1, 1); err == nil {
		t.Error("tiny census accepted")
	}
}

func TestSalaryUDB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u, err := SalaryUDB(rng, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Obs.N != 10 {
		t.Errorf("universe %d", u.Obs.N)
	}
	if len(u.UncertainSites()) == 0 {
		t.Error("no uncertain salaries generated")
	}
	// The SUM query is answerable exactly when few sites are uncertain.
	if len(u.UncertainSites()) <= 12 {
		sum := metafinite.SumAgg{Var: "x", Body: metafinite.FApp{Fn: "salary", Args: []metafinite.FOTerm{metafinite.V("x")}}}
		if _, err := metafinite.WorldEnum(u, sum, 0); err != nil {
			t.Error(err)
		}
	}
}
