// Package workload provides seeded, deterministic generators for the
// experiment harness, benchmarks and examples: random unreliable
// relational databases, graph databases, kDNF formulas, probability
// assignments, metafinite databases, and a synthetic census scenario.
// The paper reports no datasets; these generators define the workloads
// used to reproduce each proposition's complexity shape (see
// EXPERIMENTS.md).
package workload

import (
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/metafinite"
	"qrel/internal/prop"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// GraphVoc is the vocabulary used by the random graph databases.
func GraphVoc() *rel.Vocabulary {
	return rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
}

// RandomStructure draws a structure over E/2, S/1 with edge density p
// and label density q.
func RandomStructure(rng *rand.Rand, n int, p, q float64) *rel.Structure {
	s := rel.MustStructure(n, GraphVoc())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				s.MustAdd("E", i, j)
			}
		}
		if rng.Float64() < q {
			s.MustAdd("S", i)
		}
	}
	return s
}

// AddUncertainty gives `count` distinct random ground atoms of s an
// error probability drawn uniformly from {1/d, ..., (d−1)/d}. The graph
// vocabulary has only n²+n distinct ground atoms (n² edges, n labels);
// a larger `count` is clamped to that total instead of rejection-sampling
// forever for atoms that do not exist.
func AddUncertainty(rng *rand.Rand, s *rel.Structure, count, d int) *unreliable.DB {
	db := unreliable.New(s)
	if d < 2 {
		d = 10
	}
	if max := s.N*s.N + s.N; count > max {
		count = max
	}
	for db.NumUncertain() < count {
		var atom rel.GroundAtom
		if rng.Intn(2) == 0 {
			atom = rel.GroundAtom{Rel: "E", Args: rel.Tuple{rng.Intn(s.N), rng.Intn(s.N)}}
		} else {
			atom = rel.GroundAtom{Rel: "S", Args: rel.Tuple{rng.Intn(s.N)}}
		}
		db.MustSetError(atom, big.NewRat(int64(1+rng.Intn(d-1)), int64(d)))
	}
	return db
}

// RandomUDB combines RandomStructure and AddUncertainty.
func RandomUDB(rng *rand.Rand, n, uncertain int) *unreliable.DB {
	return AddUncertainty(rng, RandomStructure(rng, n, 0.3, 0.5), uncertain, 10)
}

// RandomKDNF draws a kDNF with exactly k literals per term over
// distinct variables.
func RandomKDNF(rng *rand.Rand, numVars, numTerms, k int) prop.DNF {
	if k > numVars {
		k = numVars
	}
	d := prop.DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		perm := rng.Perm(numVars)[:k]
		t := make(prop.Term, 0, k)
		for _, v := range perm {
			t = append(t, prop.Lit{Var: v, Neg: rng.Intn(2) == 0})
		}
		d.Terms = append(d.Terms, t)
	}
	return d
}

// RandomProbs draws variable probabilities with denominator d.
func RandomProbs(rng *rand.Rand, numVars, d int) prop.ProbAssignment {
	p := make(prop.ProbAssignment, numVars)
	for i := range p {
		p[i] = big.NewRat(int64(1+rng.Intn(d-1)), int64(d))
	}
	return p
}

// SparseKDNF draws a kDNF whose terms are all-positive over a small
// window of variables, producing the low-probability union instances
// where naive Monte Carlo fails but Karp–Luby retains its relative
// error guarantee (experiment E4).
func SparseKDNF(rng *rand.Rand, numVars, numTerms, k int) prop.DNF {
	d := prop.DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		start := rng.Intn(numVars - k + 1)
		t := make(prop.Term, 0, k)
		for j := 0; j < k; j++ {
			t = append(t, prop.Pos(start+j))
		}
		d.Terms = append(d.Terms, t)
	}
	return d
}

// CensusQueries are the example queries of the census scenario, keyed
// by a short name. They exercise the quantifier-free, conjunctive and
// universal fragments on the census vocabulary.
var CensusQueries = map[string]string{
	// quantifier-free: is this person recorded employed and married to
	// someone?
	"inconsistent": "Employed(x) & Retired(x)",
	// conjunctive: someone employed lives in a flagged district.
	"flagged-worker": "exists x y . Employed(x) & LivesIn(x,y) & Flagged(y)",
	// universal: every retired person is unemployed.
	"retired-clean": "forall x . Retired(x) -> !Employed(x)",
	// unary: people with an employed spouse.
	"spouse-employed": "exists y . Married(x,y) & Employed(y)",
}

// CensusDB generates a synthetic census with `people` persons and
// `districts` districts: relations Employed/1, Retired/1, Married/2,
// LivesIn/2, Flagged/1 over a universe of people followed by districts.
// A fraction of the person attributes carries digitization error
// probabilities — the dirty-data motivation of the paper's
// introduction.
func CensusDB(rng *rand.Rand, people, districts int) (*unreliable.DB, error) {
	if people < 2 || districts < 1 {
		return nil, fmt.Errorf("workload: census needs ≥ 2 people and ≥ 1 district")
	}
	voc := rel.MustVocabulary(
		rel.RelSym{Name: "Employed", Arity: 1},
		rel.RelSym{Name: "Retired", Arity: 1},
		rel.RelSym{Name: "Married", Arity: 2},
		rel.RelSym{Name: "LivesIn", Arity: 2},
		rel.RelSym{Name: "Flagged", Arity: 1},
	)
	n := people + districts
	s, err := rel.NewStructure(n, voc)
	if err != nil {
		return nil, err
	}
	district := func(i int) int { return people + i }
	for p := 0; p < people; p++ {
		if rng.Float64() < 0.6 {
			s.MustAdd("Employed", p)
		} else if rng.Float64() < 0.5 {
			s.MustAdd("Retired", p)
		}
		s.MustAdd("LivesIn", p, district(rng.Intn(districts)))
	}
	// Marriages: disjoint pairs.
	perm := rng.Perm(people)
	for i := 0; i+1 < len(perm); i += 2 {
		if rng.Float64() < 0.5 {
			s.MustAdd("Married", perm[i], perm[i+1])
			s.MustAdd("Married", perm[i+1], perm[i])
		}
	}
	for d := 0; d < districts; d++ {
		if rng.Float64() < 0.3 {
			s.MustAdd("Flagged", district(d))
		}
	}
	db := unreliable.New(s)
	// Digitization noise: employment status of some people is uncertain.
	for p := 0; p < people; p++ {
		if rng.Float64() < 0.25 {
			db.MustSetError(rel.GroundAtom{Rel: "Employed", Args: rel.Tuple{p}}, big.NewRat(1, int64(5+rng.Intn(15))))
		}
		if rng.Float64() < 0.1 {
			db.MustSetError(rel.GroundAtom{Rel: "Retired", Args: rel.Tuple{p}}, big.NewRat(1, int64(8+rng.Intn(12))))
		}
	}
	return db, nil
}

// SalaryUDB generates a metafinite salary database with n employees,
// uncertain salaries on a fraction of them — the Section 6 aggregate
// scenario.
func SalaryUDB(rng *rand.Rand, n int, uncertainFrac float64) (*metafinite.UDB, error) {
	db, err := metafinite.NewFDB(n, metafinite.FuncSym{Name: "salary", Arity: 1}, metafinite.FuncSym{Name: "dept", Arity: 1})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		base := int64(300 + rng.Intn(700))
		if err := db.SetF("salary", base, i); err != nil {
			return nil, err
		}
		if err := db.SetF("dept", int64(rng.Intn(4)), i); err != nil {
			return nil, err
		}
	}
	u := metafinite.NewUDB(db)
	for i := 0; i < n; i++ {
		if rng.Float64() >= uncertainFrac {
			continue
		}
		site := metafinite.Site{Fn: "salary", Args: rel.Tuple{i}}
		obs := db.Funcs["salary"].Get(rel.Tuple{i})
		bump := new(big.Rat).Add(obs, big.NewRat(int64(10+rng.Intn(100)), 1))
		if err := u.SetDist(site, []metafinite.Weighted{
			{Value: obs, P: big.NewRat(4, 5)},
			{Value: bump, P: big.NewRat(1, 5)},
		}); err != nil {
			return nil, err
		}
	}
	return u, nil
}
