// Package karpluby implements the Karp–Luby Monte Carlo algorithms the
// paper builds on: the FPTRAS for #DNF (Theorem 5.2, from Karp & Luby,
// FOCS 1983), its weighted variant for Prob-DNF, and the paper's own
// reduction from Prob-kDNF to #DNF via binary-encoded probabilities
// (Theorem 5.3). Sample sizes follow Lemma 5.11.
package karpluby

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/mc"
	"qrel/internal/prop"
)

// SampleSize returns the number of iterations t for which the Karp–Luby
// zero-one estimator achieves relative error ε with confidence 1 − δ,
// given the coverage lower bound p ≥ 1/m for a DNF with m terms: by
// Lemma 5.11, 2·exp(−2ε²tp / 9(1−p)) < δ as soon as
// t ≥ (9/2)·(1/p)·ln(2/δ)/ε². We use the worst case p = 1/m.
func SampleSize(eps, delta float64, m int) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("karpluby: need eps > 0 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	if m <= 0 {
		return 0, fmt.Errorf("karpluby: DNF with %d terms", m)
	}
	t := 4.5 * float64(m) * math.Log(2/delta) / (eps * eps)
	if t > 1e9 {
		return 0, fmt.Errorf("karpluby: sample size %.3g exceeds 1e9; relax eps/delta", t)
	}
	return int(math.Ceil(t)), nil
}

// Lemma511Bound returns the right-hand side of Lemma 5.11:
// 2·exp(−2ε²tp / 9(1−p)), the failure probability of a t-sample mean of
// [0,1] variables with expectation p < 0.5 exceeding relative error ε.
func Lemma511Bound(eps float64, t int, p float64) float64 {
	if p <= 0 || p >= 1 {
		return 1
	}
	return 2 * math.Exp(-2*eps*eps*float64(t)*p/(9*(1-p)))
}

// bigScratch holds the reusable buffers of randBigBelowScratch so the
// per-iteration term draw of the counting loop allocates nothing.
type bigScratch struct {
	buf []byte
	v   *big.Int
}

// randBigBelowScratch draws a uniform big.Int in [0, n), reusing the
// scratch buffers; the result aliases sc.v and is valid until the next
// call.
func randBigBelowScratch(rng *rand.Rand, n *big.Int, sc *bigScratch) *big.Int {
	if sc.v == nil {
		sc.v = new(big.Int)
	}
	if n.Sign() <= 0 {
		return sc.v.SetInt64(0)
	}
	// Rejection sampling over the enclosing power of two.
	bits := n.BitLen()
	nb := (bits + 7) / 8
	if cap(sc.buf) < nb {
		sc.buf = make([]byte, nb)
	}
	buf := sc.buf[:nb]
	mask := byte(0xff >> (uint(nb*8 - bits)))
	v := sc.v
	for {
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		buf[0] &= mask
		v.SetBytes(buf)
		if v.Cmp(n) < 0 {
			return v
		}
	}
}

// randBigBelow draws a uniform big.Int in [0, n).
func randBigBelow(rng *rand.Rand, n *big.Int) *big.Int {
	var sc bigScratch
	return randBigBelowScratch(rng, n, &sc)
}

// CountResult reports a Karp–Luby estimate.
type CountResult struct {
	// Estimate is the estimated count (for CountDNF) or probability (for
	// ProbDNF).
	Estimate *big.Rat
	// Samples is the number of Monte Carlo iterations performed.
	Samples int
	// Hits is the number of iterations whose zero-one variable was 1.
	Hits int
}

// Float returns the estimate as a float64.
func (r CountResult) Float() float64 {
	f, _ := r.Estimate.Float64()
	return f
}

// CountDNF estimates #DNF — the number of satisfying assignments of d —
// with relative error eps and confidence 1−delta, implementing the
// Karp–Luby coverage algorithm (Theorem 5.2):
//
//	U := Σ_i |sat(T_i)|;
//	repeat t times: pick term i with probability |sat(T_i)|/U, pick a
//	uniform assignment a ⊨ T_i, count a hit iff i is the first term
//	satisfied by a;
//	output U · hits/t.
//
// The estimator is unbiased with expectation #DNF/U ≥ 1/m, so Lemma
// 5.11 gives the (ε, δ) guarantee for t = SampleSize(eps, delta, m).
func CountDNF(d prop.DNF, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	return countDNFLoop(d, eps, delta, rng, nil, nil)
}

// CountDNFCk is CountDNF over a serializable source with
// checkpoint/resume plumbing (see mc.Ckpt): the loop state — iteration
// count, hit count, PRNG state — is snapshotted every ck.Every
// iterations and at completion, and a run resumed from a snapshot is
// bit-identical to an uninterrupted one.
func CountDNFCk(d prop.DNF, eps, delta float64, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return countDNFLoop(d, eps, delta, rand.New(src), src, ck)
}

// CountDNFPar is CountDNF over the lane-split parallel runtime: the
// sample stream derived from seed is split into par.Lanes fixed RNG
// lanes scheduled on par.Workers goroutines, and the estimate is
// bit-identical for any worker count (see mc.Par).
func CountDNFPar(ctx context.Context, d prop.DNF, eps, delta float64, seed int64, par mc.Par, ck *mc.Ckpt) (CountResult, error) {
	lanes, workers := mc.LanesFor(seed, par)
	return countDNFLanes(ctx, d, eps, delta, lanes, workers, ck)
}

// countDNFLoop is the sequential single-lane path behind CountDNF and
// CountDNFCk; src and ck are nil for uncheckpointed runs.
func countDNFLoop(d prop.DNF, eps, delta float64, rng *rand.Rand, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return countDNFLanes(context.Background(), d, eps, delta, []*mc.Lane{{Src: src, Rng: rng}}, 1, ck)
}

func countDNFLanes(ctx context.Context, d prop.DNF, eps, delta float64, lanes []*mc.Lane, workers int, ck *mc.Ckpt) (CountResult, error) {
	norm := normalizedTerms(d)
	if len(norm) == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	t, err := SampleSize(eps, delta, len(norm))
	if err != nil {
		return CountResult{}, err
	}
	// Per-term satisfying-assignment counts as cumulative sums.
	cum, total := termWeights(norm, d.NumVars)
	if total.Sign() == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	err = runKLLanes(ctx, lanes, workers, t, ck, func(ln *mc.Lane) func() {
		a := make([]bool, d.NumVars)
		sc := &bigScratch{}
		return func() {
			i := pickCumulativeScratch(ln.Rng, cum, total, sc)
			sampleTermAssignment(ln.Rng, norm[i], a, nil)
			if firstSatisfied(norm, a) == i {
				ln.Hits++
			}
		}
	})
	if err != nil {
		return CountResult{}, err
	}
	hits := 0
	for _, ln := range lanes {
		hits += ln.Hits
	}
	est := new(big.Rat).SetInt(total)
	est.Mul(est, big.NewRat(int64(hits), int64(t)))
	return CountResult{Estimate: est, Samples: t, Hits: hits}, nil
}

// ProbDNF estimates Prob-DNF — the probability that d holds when
// variable v is independently true with probability p[v] — with relative
// error eps and confidence 1−delta, using the weighted Karp–Luby
// estimator: terms are drawn proportionally to Pr[T_i], the free
// variables are completed by independent ν-biased coin flips, and a hit
// is counted iff the drawn term is the first satisfied one. This is the
// direct engine; the paper's own route via binary encoding is
// implemented by Reduce (Theorem 5.3). Both are compared in experiment
// E10.
func ProbDNF(d prop.DNF, p prop.ProbAssignment, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	return probDNFLoop(d, p, eps, delta, rng, nil, nil)
}

// ProbDNFCk is ProbDNF over a serializable source with
// checkpoint/resume plumbing (see mc.Ckpt); a run resumed from a
// snapshot is bit-identical to an uninterrupted one.
func ProbDNFCk(d prop.DNF, p prop.ProbAssignment, eps, delta float64, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return probDNFLoop(d, p, eps, delta, rand.New(src), src, ck)
}

// ProbDNFPar is ProbDNF over the lane-split parallel runtime; see
// CountDNFPar for the determinism contract.
func ProbDNFPar(ctx context.Context, d prop.DNF, p prop.ProbAssignment, eps, delta float64, seed int64, par mc.Par, ck *mc.Ckpt) (CountResult, error) {
	lanes, workers := mc.LanesFor(seed, par)
	return probDNFLanes(ctx, d, p, eps, delta, lanes, workers, ck)
}

// probDNFLoop is the sequential single-lane path behind ProbDNF and
// ProbDNFCk; src and ck are nil for uncheckpointed runs.
func probDNFLoop(d prop.DNF, p prop.ProbAssignment, eps, delta float64, rng *rand.Rand, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return probDNFLanes(context.Background(), d, p, eps, delta, []*mc.Lane{{Src: src, Rng: rng}}, 1, ck)
}

func probDNFLanes(ctx context.Context, d prop.DNF, p prop.ProbAssignment, eps, delta float64, lanes []*mc.Lane, workers int, ck *mc.Ckpt) (CountResult, error) {
	if err := p.Validate(d.NumVars); err != nil {
		return CountResult{}, err
	}
	norm := normalizedTerms(d)
	if len(norm) == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	t, err := SampleSize(eps, delta, len(norm))
	if err != nil {
		return CountResult{}, err
	}
	// Float probabilities for sampling; exact rationals for the final
	// scaling.
	pf := make([]float64, d.NumVars)
	for i := range pf {
		pf[i], _ = p[i].Float64()
	}
	weightsExact := new(big.Rat)
	cum := make([]float64, len(norm))
	sum := 0.0
	for i, tm := range norm {
		w := p.TermProb(tm)
		weightsExact.Add(weightsExact, w)
		wf, _ := w.Float64()
		sum += wf
		cum[i] = sum
	}
	if weightsExact.Sign() == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	err = runKLLanes(ctx, lanes, workers, t, ck, func(ln *mc.Lane) func() {
		a := make([]bool, d.NumVars)
		return func() {
			r := ln.Rng.Float64() * sum
			i := 0
			for i < len(cum)-1 && cum[i] <= r {
				i++
			}
			sampleTermAssignment(ln.Rng, norm[i], a, pf)
			if firstSatisfied(norm, a) == i {
				ln.Hits++
			}
		}
	})
	if err != nil {
		return CountResult{}, err
	}
	hits := 0
	for _, ln := range lanes {
		hits += ln.Hits
	}
	est := new(big.Rat).Set(weightsExact)
	est.Mul(est, big.NewRat(int64(hits), int64(t)))
	return CountResult{Estimate: est, Samples: t, Hits: hits}, nil
}

// normalizedTerms returns the satisfiable normalized terms of d.
func normalizedTerms(d prop.DNF) []prop.Term {
	out := make([]prop.Term, 0, len(d.Terms))
	for _, t := range d.Terms {
		if nt, sat := t.Normalize(); sat {
			out = append(out, nt)
		}
	}
	return out
}

// pickCumulative draws an index proportional to the big.Int weights
// described by the cumulative sums cum (with grand total).
func pickCumulative(rng *rand.Rand, cum []*big.Int, total *big.Int) int {
	var sc bigScratch
	return pickCumulativeScratch(rng, cum, total, &sc)
}

// pickCumulativeScratch is pickCumulative with caller-owned scratch
// buffers, for allocation-free draws in the hot sampling loops.
func pickCumulativeScratch(rng *rand.Rand, cum []*big.Int, total *big.Int, sc *bigScratch) int {
	r := randBigBelowScratch(rng, total, sc)
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid].Cmp(r) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleTermAssignment fills a with a random assignment satisfying the
// normalized term: fixed literals as dictated, free variables uniform
// (probs == nil) or independently true with probability probs[v].
func sampleTermAssignment(rng *rand.Rand, t prop.Term, a []bool, probs []float64) {
	for v := range a {
		if probs == nil {
			a[v] = rng.Intn(2) == 0
		} else {
			a[v] = rng.Float64() < probs[v]
		}
	}
	for _, l := range t {
		a[l.Var] = !l.Neg
	}
}

// firstSatisfied returns the index of the first term satisfied by a, or
// -1.
func firstSatisfied(terms []prop.Term, a []bool) int {
	for i, t := range terms {
		if t.Eval(a) {
			return i
		}
	}
	return -1
}
