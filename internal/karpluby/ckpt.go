package karpluby

import (
	"context"

	"qrel/internal/mc"
)

// Lane-pool plumbing for the Karp–Luby iteration loops, built on the
// shared runtime in the mc package: the sample stream is split into
// fixed RNG lanes merged in lane-index order, so the W-worker estimate
// for a seed is bit-identical to the 1-worker estimate, and the
// complete loop state at an iteration boundary — per-lane iteration
// counts, hit counts, and PRNG states — snapshots and resumes
// bit-identically.

// klMethod tags Karp–Luby snapshots; restoring a snapshot taken by a
// different estimator is rejected.
const klMethod = "karp-luby"

// ctxPollStride matches the mc package: lanes poll their context once
// every this many iterations.
const ctxPollStride = 64

// runKLLanes drives the Karp–Luby iteration lanes: assign quotas,
// restore a snapshot, run with periodic checkpoint publication, and
// persist the final boundary. setup builds the per-lane iteration step
// (owning the lane's scratch buffers); the step draws exactly one
// sample from ln.Rng and bumps ln.Hits on a hit.
//
// Unlike the mc estimators, Karp–Luby is not anytime — a partial hit
// count has no widened-eps interpretation under the relative-error
// guarantee — so cancellation aborts with ctx.Err() rather than
// returning a partial estimate. Periodic snapshots still make the run
// resumable.
func runKLLanes(ctx context.Context, lanes []*mc.Lane, workers, total int, ck *mc.Ckpt, setup func(ln *mc.Lane) func()) error {
	mc.AssignQuotas(lanes, total)
	if err := mc.RestoreLanes(klMethod, lanes, ck); err != nil {
		return err
	}
	lc := mc.NewLaneCkpt(klMethod, lanes, ck)
	every := lc.PerLaneEvery(len(lanes))
	err := mc.RunLanes(ctx, lanes, workers, func(ctx context.Context, ln *mc.Lane) error {
		step := setup(ln)
		lastSave := ln.Drawn
		for ln.Drawn < ln.Quota {
			if ln.Drawn%ctxPollStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			if every > 0 && ln.Drawn-lastSave >= every {
				lastSave = ln.Drawn
				if err := lc.Publish(ln, true); err != nil {
					return err
				}
			}
			step()
			ln.Drawn++
		}
		return lc.Publish(ln, false)
	})
	if err != nil {
		return err
	}
	return lc.FinalSave()
}
