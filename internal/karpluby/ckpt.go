package karpluby

import (
	"fmt"

	"qrel/internal/mc"
)

// Checkpoint plumbing for the Karp–Luby iteration loops, mirroring the
// contract of the mc package: the complete loop state at an iteration
// boundary is (iterations done, hits, PRNG state), so a resumed run
// draws the identical remainder of the sample stream and its estimate
// is bit-identical to an uninterrupted run with the same seed.

// klMethod tags Karp–Luby snapshots; restoring a snapshot taken by a
// different estimator is rejected.
const klMethod = "karp-luby"

// restoreLoop applies ck.Resume (if any) to the loop counters.
func restoreLoop(ck *mc.Ckpt, src *mc.Source, iter, hits *int) error {
	if ck == nil || ck.Resume == nil {
		return nil
	}
	st := ck.Resume
	if st.Method != klMethod {
		return fmt.Errorf("karpluby: snapshot was taken by estimator %q, cannot resume %q", st.Method, klMethod)
	}
	if src == nil {
		return fmt.Errorf("karpluby: resuming requires a serializable source")
	}
	if st.Drawn < 0 || st.Hits < 0 || st.Hits > st.Drawn {
		return fmt.Errorf("karpluby: implausible snapshot state drawn=%d hits=%d", st.Drawn, st.Hits)
	}
	if err := src.SetState(st.RNG); err != nil {
		return err
	}
	*iter = st.Drawn
	*hits = st.Hits
	return nil
}

// maybeSaveLoop snapshots every ck.Every iterations.
func maybeSaveLoop(ck *mc.Ckpt, src *mc.Source, iter, hits int) error {
	if ck == nil || ck.Save == nil || ck.Every <= 0 || iter == 0 || iter%ck.Every != 0 {
		return nil
	}
	if ck.Resume != nil && iter == ck.Resume.Drawn {
		return nil // the resumed boundary is already persisted
	}
	return ck.Save(mc.LoopState{Method: klMethod, Drawn: iter, Hits: hits, RNG: src.State()})
}

// finalSaveLoop snapshots the completed loop so a re-run replays
// instantly instead of resampling.
func finalSaveLoop(ck *mc.Ckpt, src *mc.Source, iter, hits int) error {
	if ck == nil || ck.Save == nil {
		return nil
	}
	if ck.Resume != nil && iter == ck.Resume.Drawn {
		return nil
	}
	return ck.Save(mc.LoopState{Method: klMethod, Drawn: iter, Hits: hits, RNG: src.State()})
}
