package karpluby

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/mc"
	"qrel/internal/prop"
)

// sameCount compares CountResults by value (Estimate is a *big.Rat).
func sameCount(a, b CountResult) bool {
	return a.Samples == b.Samples && a.Hits == b.Hits && a.Estimate.Cmp(b.Estimate) == 0
}

// TestCountDNFParDeterministicAcrossWorkers pins the lane contract for
// the #DNF FPTRAS: any worker count yields the byte-identical count.
func TestCountDNFParDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := randDNF(rng, 20, 25, 3)
	ctx := context.Background()
	base, err := CountDNFPar(ctx, d, 0.2, 0.1, 23, mc.Par{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Samples == 0 {
		t.Fatal("baseline drew no samples")
	}
	for _, w := range []int{2, 4, 7} {
		got, err := CountDNFPar(ctx, d, 0.2, 0.1, 23, mc.Par{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCount(got, base) {
			t.Errorf("workers=%d: %+v != workers=1 %+v", w, got, base)
		}
	}
}

// TestProbDNFParDeterministicAcrossWorkers does the same for the
// weighted estimator.
func TestProbDNFParDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	d := randDNF(rng, 10, 8, 3)
	p := make(prop.ProbAssignment, 10)
	for i := range p {
		p[i] = big.NewRat(int64(1+rng.Intn(8)), 9)
	}
	ctx := context.Background()
	base, err := ProbDNFPar(ctx, d, p, 0.2, 0.1, 29, mc.Par{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		got, err := ProbDNFPar(ctx, d, p, 0.2, 0.1, 29, mc.Par{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCount(got, base) {
			t.Errorf("workers=%d: %+v != workers=1 %+v", w, got, base)
		}
	}
}

// TestCountDNFParResume kills a parallel count via checkpoint, resumes,
// and requires the bit-identical result of an uninterrupted run.
func TestCountDNFParResume(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d := randDNF(rng, 20, 25, 3)
	ctx := context.Background()

	uninterrupted, err := CountDNFPar(ctx, d, 0.2, 0.1, 31, mc.Par{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var snap *mc.LoopState
	killCtx, cancel := context.WithCancel(ctx)
	_, err = CountDNFPar(killCtx, d, 0.2, 0.1, 31, mc.Par{Workers: 2}, &mc.Ckpt{
		Every: 128,
		Save: func(st mc.LoopState) error {
			if snap == nil && st.Drawn > 0 && st.Drawn < uninterrupted.Samples {
				snap = &st
				cancel() // kill the run once a mid-flight snapshot exists
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("killed run returned no error (Karp–Luby lanes are not anytime)")
	}
	if snap == nil {
		t.Fatal("no mid-flight checkpoint was captured")
	}

	resumed, err := CountDNFPar(ctx, d, 0.2, 0.1, 31, mc.Par{Workers: 2}, &mc.Ckpt{Resume: snap})
	if err != nil {
		t.Fatal(err)
	}
	if !sameCount(resumed, uninterrupted) {
		t.Errorf("resumed %+v != uninterrupted %+v", resumed, uninterrupted)
	}
}
