package karpluby

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/prop"
)

func TestReduceDyadic(t *testing.T) {
	// Probabilities with power-of-two denominators: no illegal
	// assignments, ν(φ) = #φ'' / 2^bits.
	d := prop.MustDNF(2, prop.Term{prop.Pos(0), prop.Negd(1)})
	p := prop.ProbAssignment{big.NewRat(3, 4), big.NewRat(1, 2)}
	red, err := Reduce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if red.Illegal().Sign() != 0 {
		t.Errorf("dyadic reduction has %v illegal assignments", red.Illegal())
	}
	count, err := red.PhiPP.CountBruteForce(12)
	if err != nil {
		t.Fatal(err)
	}
	got := red.Recover(new(big.Rat).SetInt(count))
	want, _ := d.ProbBruteForce(p, 12)
	if got.Cmp(want) != 0 {
		t.Errorf("recovered %v, want %v", got, want)
	}
}

func TestReduceNonDyadicExact(t *testing.T) {
	// The heart of Theorem 5.3: non-power-of-two denominators, legal /
	// illegal accounting. Cross-check against direct brute force.
	rng := rand.New(rand.NewSource(5))
	denoms := []int64{2, 3, 4, 5, 6, 7}
	for iter := 0; iter < 40; iter++ {
		nv := 2 + rng.Intn(3)
		d := randDNF(rng, nv, 1+rng.Intn(4), 2)
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			q := denoms[rng.Intn(len(denoms))]
			p[i] = big.NewRat(rng.Int63n(q+1), q)
		}
		got, err := ProbExactViaReduction(d, p, 24)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, err := d.ProbBruteForce(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("iter %d: reduction gives %v, brute force %v (probs %v, dnf %v)",
				iter, got, want, p, d)
		}
	}
}

func TestReduceExtremeProbabilities(t *testing.T) {
	// ν ∈ {0, 1} must behave like constants.
	d := prop.MustDNF(2, prop.Term{prop.Pos(0)}, prop.Term{prop.Pos(1)})
	cases := []struct {
		p    prop.ProbAssignment
		want *big.Rat
	}{
		{prop.ProbAssignment{big.NewRat(1, 1), big.NewRat(0, 1)}, big.NewRat(1, 1)},
		{prop.ProbAssignment{big.NewRat(0, 1), big.NewRat(0, 1)}, new(big.Rat)},
		{prop.ProbAssignment{big.NewRat(0, 1), big.NewRat(1, 3)}, big.NewRat(1, 3)},
	}
	for i, c := range cases {
		got, err := ProbExactViaReduction(d, c.p, 24)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Cmp(c.want) != 0 {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestReduceLegalCount(t *testing.T) {
	d := prop.MustDNF(3, prop.Term{prop.Pos(0), prop.Pos(1), prop.Pos(2)})
	p := prop.ProbAssignment{big.NewRat(1, 3), big.NewRat(2, 5), big.NewRat(1, 2)}
	red, err := Reduce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if red.Legal.Int64() != 3*5*2 {
		t.Errorf("Legal = %v, want 30", red.Legal)
	}
	// Bits: ⌈log₂3⌉=2, ⌈log₂5⌉=3, ⌈log₂2⌉=1.
	if red.Bits != 6 {
		t.Errorf("Bits = %d, want 6", red.Bits)
	}
	if got := red.Illegal().Int64(); got != 64-30 {
		t.Errorf("Illegal = %v, want 34", got)
	}
}

func TestReducePolynomialBlowup(t *testing.T) {
	// For fixed width k, the size of φ'' must grow polynomially in the
	// probability bit-length (the paper: exponential in k only).
	d := prop.MustDNF(2, prop.Term{prop.Pos(0), prop.Negd(1)})
	var prevTerms int
	for _, q := range []int64{3, 13, 211, 3001, 65521} {
		p := prop.ProbAssignment{big.NewRat(1, q), big.NewRat(2, q)}
		red, err := Reduce(d, p)
		if err != nil {
			t.Fatal(err)
		}
		terms := len(red.PhiPP.Terms)
		ell := big.NewInt(q).BitLen()
		// ℓ² per substituted pair plus 2·ℓ illegal terms is a generous
		// quadratic cap.
		if terms > 2*ell*ell+4*ell {
			t.Errorf("q=%d: %d terms exceeds quadratic cap (ell=%d)", q, terms, ell)
		}
		if terms < prevTerms {
			// Not strictly monotone in theory, but must grow overall.
			t.Logf("q=%d: terms %d < previous %d", q, terms, prevTerms)
		}
		prevTerms = terms
	}
}

func TestProbViaReductionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const eps, delta = 0.15, 0.05
	failures, instances := 0, 20
	for iter := 0; iter < instances; iter++ {
		nv := 2 + rng.Intn(2)
		d := randDNF(rng, nv, 1+rng.Intn(3), 2)
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			p[i] = big.NewRat(int64(1+rng.Intn(4)), 5)
		}
		exact, err := d.ProbBruteForce(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProbViaReduction(d, p, eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Sign() == 0 {
			continue
		}
		// The #φ'' estimate has relative error ε, but after subtracting
		// the illegal count the guarantee on ν(φ) weakens when the legal
		// fraction is small; accept 4ε here (E5 quantifies this).
		diff := new(big.Rat).Sub(got.Estimate, exact)
		diff.Quo(diff, exact)
		if f, _ := diff.Float64(); math.Abs(f) > 4*eps {
			failures++
		}
	}
	if failures > 4 {
		t.Errorf("%d of %d instances badly off", failures, instances)
	}
}

func TestReduceValidation(t *testing.T) {
	d := prop.MustDNF(1, prop.Term{prop.Pos(0)})
	if _, err := Reduce(d, prop.ProbAssignment{}); err == nil {
		t.Error("missing probabilities accepted")
	}
	if _, err := Reduce(d, prop.ProbAssignment{big.NewRat(5, 4)}); err == nil {
		t.Error("probability > 1 accepted")
	}
}
